package rica_test

import (
	"testing"
	"time"

	"rica"
)

func TestSimulateBasics(t *testing.T) {
	s := rica.Simulate(rica.SimConfig{
		Protocol:     rica.ProtocolRICA,
		MeanSpeedKmh: 20,
		Rate:         10,
		Duration:     20 * time.Second,
		Seed:         1,
	})
	if s.Generated == 0 || s.Delivered == 0 {
		t.Fatalf("empty run: %+v", s)
	}
	if s.DeliveryRatio <= 0.5 {
		t.Fatalf("delivery ratio %.2f implausibly low", s.DeliveryRatio)
	}
}

func TestSimulateDeterminism(t *testing.T) {
	cfg := rica.SimConfig{
		Protocol: rica.ProtocolAODV, MeanSpeedKmh: 30, Rate: 10,
		Duration: 15 * time.Second, Seed: 9,
	}
	a, b := rica.Simulate(cfg), rica.Simulate(cfg)
	if a.Delivered != b.Delivered || a.AvgDelay != b.AvgDelay {
		t.Fatal("same SimConfig produced different runs")
	}
}

func TestSimulateCustomFlows(t *testing.T) {
	s := rica.Simulate(rica.SimConfig{
		Protocol:     rica.ProtocolRICA,
		MeanSpeedKmh: 10,
		Rate:         10,
		Duration:     15 * time.Second,
		Seed:         2,
		Flows: []rica.Flow{
			{Src: 0, Dst: 49, Rate: 20},
			{Src: 10, Dst: 30, Rate: 5},
		},
	})
	// ~25 packets/s for 15 s.
	if s.Generated < 200 || s.Generated > 550 {
		t.Fatalf("generated %d with custom flows, want ≈375", s.Generated)
	}
}

func TestSimulateBufferCapOverride(t *testing.T) {
	base := rica.SimConfig{
		Protocol: rica.ProtocolAODV, MeanSpeedKmh: 0, Rate: 20,
		Duration: 20 * time.Second, Seed: 3,
	}
	tiny := base
	tiny.BufferCap = 1
	def := rica.Simulate(base)
	small := rica.Simulate(tiny)
	if small.Dropped == nil || small.DeliveryRatio >= def.DeliveryRatio {
		t.Fatalf("1-packet buffers did not hurt delivery: %.2f vs %.2f",
			small.DeliveryRatio, def.DeliveryRatio)
	}
}

func TestParseProtocolRoundTrip(t *testing.T) {
	for _, p := range rica.AllProtocols() {
		got, err := rica.ParseProtocol(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip failed for %v", p)
		}
	}
}
