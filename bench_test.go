// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§III), plus ablations of RICA's design choices. Each
// benchmark iteration executes the figure's full experiment at a reduced
// scale (the -trials/-duration of the ricasim CLI reach paper scale); the
// reported ns/op measures the cost of reproducing that figure once.
package rica_test

import (
	"fmt"
	"testing"
	"time"

	"rica"
	"rica/internal/experiment"
	"rica/internal/network"
	ricaproto "rica/internal/routing/rica"
	"rica/internal/world"
)

// benchOptions is the reduced grid benchmarks run per iteration.
func benchOptions() rica.Options {
	return rica.Options{
		Speeds:   []float64{0, 36, 72},
		Trials:   1,
		Duration: 20 * time.Second,
		BaseSeed: 1,
	}
}

// benchSweep regenerates Figures 2/3/4 at one load and reports the metric
// values as benchmark outputs.
func benchSweep(b *testing.B, load float64, m rica.Metric) {
	b.ReportAllocs()
	var last rica.SweepResult
	for i := 0; i < b.N; i++ {
		last = rica.Sweep(load, benchOptions())
	}
	reportSweep(b, last, m)
}

func reportSweep(b *testing.B, s rica.SweepResult, m rica.Metric) {
	for _, p := range s.Order {
		cells := s.Cells[p]
		final := cells[len(cells)-1].Mean
		var v float64
		switch m {
		case rica.MetricDelay:
			v = final.DelayMs
		case rica.MetricDelivery:
			v = final.DeliveryPercent
		case rica.MetricOverhead:
			v = final.OverheadKbps
		}
		b.ReportMetric(v, p.String()+"@72kmh")
	}
}

// Figure 2: average end-to-end delay vs mobile speed.
func BenchmarkFigure2a(b *testing.B) { benchSweep(b, 10, rica.MetricDelay) }
func BenchmarkFigure2b(b *testing.B) { benchSweep(b, 20, rica.MetricDelay) }

// Figure 3: successful percentage of packet delivery vs mobile speed.
func BenchmarkFigure3a(b *testing.B) { benchSweep(b, 10, rica.MetricDelivery) }
func BenchmarkFigure3b(b *testing.B) { benchSweep(b, 20, rica.MetricDelivery) }

// Figure 4: routing overhead vs mobile speed.
func BenchmarkFigure4a(b *testing.B) { benchSweep(b, 10, rica.MetricOverhead) }
func BenchmarkFigure4b(b *testing.B) { benchSweep(b, 20, rica.MetricOverhead) }

// Figure 5: route quality (link throughput and hop counts) at 72 km/h.
func benchQuality(b *testing.B, report func(*testing.B, rica.QualityResult)) {
	b.ReportAllocs()
	var last rica.QualityResult
	for i := 0; i < b.N; i++ {
		last = rica.Quality(72, 10, benchOptions())
	}
	report(b, last)
}

func BenchmarkFigure5a(b *testing.B) {
	benchQuality(b, func(b *testing.B, q rica.QualityResult) {
		for _, p := range q.Order {
			b.ReportMetric(q.Cells[p].Mean.LinkThroughputK, p.String()+"-kbps")
		}
	})
}

func BenchmarkFigure5b(b *testing.B) {
	benchQuality(b, func(b *testing.B, q rica.QualityResult) {
		for _, p := range q.Order {
			b.ReportMetric(q.Cells[p].Mean.CSIHops, p.String()+"-hops")
		}
	})
}

// Figure 6: aggregate network throughput over time.
func benchSeries(b *testing.B, load float64) {
	b.ReportAllocs()
	var last rica.SeriesResult
	for i := 0; i < b.N; i++ {
		last = rica.Series(load, rica.Figure6SpeedKmh, rica.Options{
			Trials: 1, Duration: 40 * time.Second, BaseSeed: 1,
		})
	}
	for _, p := range last.Order {
		b.ReportMetric(last.MeanSeries(p), p.String()+"-kbps")
	}
}

func BenchmarkFigure6a(b *testing.B) { benchSeries(b, 20) }
func BenchmarkFigure6b(b *testing.B) { benchSeries(b, 60) }

// --- Ablations of RICA's design choices (DESIGN.md §7) -------------------

// ricaVariant runs RICA with a modified protocol configuration.
func ricaVariant(b *testing.B, mutate func(*ricaproto.Config)) rica.Summary {
	cfg := world.DefaultConfig(36, 10)
	cfg.Duration = 20 * time.Second
	cfg.Seed = 1
	pcfg := ricaproto.DefaultConfig()
	mutate(&pcfg)
	w := world.New(cfg, func(env network.Env, _ *world.World, _ int) network.Agent {
		return ricaproto.New(env, pcfg)
	})
	return w.Run()
}

// BenchmarkAblationCheckInterval sweeps the CSI-checking period: shorter
// intervals track the channel more closely at a proportional overhead
// cost.
func BenchmarkAblationCheckInterval(b *testing.B) {
	for _, interval := range []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second, 2 * time.Second} {
		interval := interval
		b.Run(interval.String(), func(b *testing.B) {
			var s rica.Summary
			for i := 0; i < b.N; i++ {
				s = ricaVariant(b, func(c *ricaproto.Config) { c.CheckInterval = interval })
			}
			b.ReportMetric(s.DeliveryRatio*100, "delivery%")
			b.ReportMetric(s.OverheadBps/1000, "overhead-kbps")
			b.ReportMetric(float64(s.AvgDelay.Milliseconds()), "delay-ms")
		})
	}
}

// BenchmarkAblationTTL compares TTL-scoped checking packets (the paper's
// bandwidth-saving design) against full network floods.
func BenchmarkAblationTTL(b *testing.B) {
	for _, full := range []bool{false, true} {
		full := full
		name := "scoped"
		if full {
			name = "full-flood"
		}
		b.Run(name, func(b *testing.B) {
			var s rica.Summary
			for i := 0; i < b.N; i++ {
				s = ricaVariant(b, func(c *ricaproto.Config) { c.FullFloodCSIC = full })
			}
			b.ReportMetric(s.DeliveryRatio*100, "delivery%")
			b.ReportMetric(s.OverheadBps/1000, "overhead-kbps")
		})
	}
}

// BenchmarkAblationCollectWindow compares the destination's 40 ms RREQ
// gathering window against AODV-style first-RREQ replies.
func BenchmarkAblationCollectWindow(b *testing.B) {
	for _, window := range []time.Duration{0, 10 * time.Millisecond, 40 * time.Millisecond, 100 * time.Millisecond} {
		window := window
		b.Run(window.String(), func(b *testing.B) {
			var s rica.Summary
			for i := 0; i < b.N; i++ {
				s = ricaVariant(b, func(c *ricaproto.Config) { c.CollectWindow = window })
			}
			b.ReportMetric(s.DeliveryRatio*100, "delivery%")
			b.ReportMetric(float64(s.AvgDelay.Milliseconds()), "delay-ms")
		})
	}
}

// BenchmarkAblationBuffer sweeps the per-link buffer capacity the paper
// fixes at 10 packets.
func BenchmarkAblationBuffer(b *testing.B) {
	for _, cap := range []int{5, 10, 20} {
		cap := cap
		b.Run(sizeName(cap), func(b *testing.B) {
			var s rica.Summary
			for i := 0; i < b.N; i++ {
				s = rica.Simulate(rica.SimConfig{
					Protocol: rica.ProtocolRICA, MeanSpeedKmh: 36, Rate: 20,
					Duration: 20 * time.Second, Seed: 1, BufferCap: cap,
				})
			}
			b.ReportMetric(s.DeliveryRatio*100, "delivery%")
			b.ReportMetric(float64(s.AvgDelay.Milliseconds()), "delay-ms")
		})
	}
}

func sizeName(n int) string {
	switch n {
	case 5:
		return "cap-5"
	case 10:
		return "cap-10"
	default:
		return "cap-20"
	}
}

// BenchmarkSimulationThroughput measures raw simulator speed: events
// executed per wall second for a mid-scale RICA run.
func BenchmarkSimulationThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		r := experiment.Run(experiment.RunConfig{
			Protocol: experiment.RICA, MeanSpeedKmh: 36, Rate: 10,
			Duration: 30 * time.Second, Trials: 1, BaseSeed: int64(i + 1),
		})
		for _, s := range r.Trials {
			events += s.Events
		}
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// BenchmarkInstrumentedThroughput is BenchmarkSimulationThroughput with
// the full observability surface engaged: a caller-supplied registry, a
// hub aggregating it (the -statsaddr path), and the pool stats callback.
// Its allocation budget in scripts/alloc_budget.txt matches the plain
// benchmark's — the gate that counters, gauges, and histogram observes
// stay allocation-free on the hot path.
func BenchmarkInstrumentedThroughput(b *testing.B) {
	b.ReportAllocs()
	hub := rica.NewObsHub()
	hub.PoolFunc = rica.PoolStats
	var events uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		reg := rica.NewObsRegistry()
		hub.Attach(reg)
		s := rica.Simulate(rica.SimConfig{
			Protocol: rica.ProtocolRICA, MeanSpeedKmh: 36, Rate: 10,
			Duration: 30 * time.Second, Seed: int64(i + 1), Obs: reg,
		})
		hub.Detach(reg)
		events += s.Events
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
	if snap := hub.Snapshot(); snap.EventsDispatched != events {
		b.Fatalf("hub folded %d events, runs reported %d", snap.EventsDispatched, events)
	}
}

// BenchmarkShardedThroughput measures single-run multicore scaling:
// events per wall second on the metro-500 scenario (500 terminals, the
// densest catalog entry) at 1, 2, 4, and 8 spatial shards. The 1-shard
// sub-benchmark is the serial baseline; results are bit-identical across
// shard counts (pinned by TestShardedSimulationBitIdentical), so any
// ratio between sub-benchmarks is pure wall-clock. scripts/bench.sh
// records the sweep as the BENCH JSON's "scaling" array.
func BenchmarkShardedThroughput(b *testing.B) {
	spec, err := rica.ScenarioByName("metro-500")
	if err != nil {
		b.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := rica.RunBatch(rica.BatchConfig{
					Scenarios: []rica.Scenario{spec},
					Protocols: []rica.Protocol{rica.ProtocolRICA},
					Trials:    1,
					BaseSeed:  int64(i + 1),
					Workers:   1, // one cell: all parallelism comes from the shards
					Shards:    shards,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, c := range res.Cells {
					events += c.Events
				}
			}
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(events)/secs, "events/sec")
			}
		})
	}
}

// BenchmarkGossipThroughput measures the epidemic workload: gossip-200
// (200 terminals, push-rumor traffic where every delivery mints a new
// sender) under RICA at a truncated horizon. This is the flood-heaviest
// traffic shape the engine runs; the allocs/op budget in
// scripts/alloc_budget.txt guards the per-push path against creeping
// allocations.
func BenchmarkGossipThroughput(b *testing.B) {
	spec, err := rica.ScenarioByName("gossip-200")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s, err := rica.SimulateScenario(rica.ScenarioRun{
			Scenario: spec, Protocol: rica.ProtocolRICA,
			Seed: int64(i + 1), MaxDuration: 5 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += s.Events
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// BenchmarkJammerThroughput measures the interference workload: the
// jammer-grid scenario (two CSMA-oblivious noise sources inside a
// static lattice) under RICA. Jam bursts ride the common-channel airtime
// path without the data-plane lifecycle, so the budget in
// scripts/alloc_budget.txt pins the burst scheduling loop specifically.
func BenchmarkJammerThroughput(b *testing.B) {
	spec, err := rica.ScenarioByName("jammer-grid")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events uint64
	start := time.Now()
	for i := 0; i < b.N; i++ {
		s, err := rica.SimulateScenario(rica.ScenarioRun{
			Scenario: spec, Protocol: rica.ProtocolRICA,
			Seed: int64(i + 1), MaxDuration: 10 * time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		events += s.Events
	}
	if secs := time.Since(start).Seconds(); secs > 0 {
		b.ReportMetric(float64(events)/secs, "events/sec")
	}
}

// BenchmarkAblationAdaptiveCheck compares the fixed 1 s checking period
// against the volatility-adaptive one (the paper's aside that the period
// should follow "the change speed of the link CSI").
func BenchmarkAblationAdaptiveCheck(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		adaptive := adaptive
		name := "fixed-1s"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var s rica.Summary
			for i := 0; i < b.N; i++ {
				s = ricaVariant(b, func(c *ricaproto.Config) { c.AdaptiveCheck = adaptive })
			}
			b.ReportMetric(s.DeliveryRatio*100, "delivery%")
			b.ReportMetric(s.OverheadBps/1000, "overhead-kbps")
			b.ReportMetric(float64(s.AvgDelay.Milliseconds()), "delay-ms")
		})
	}
}
