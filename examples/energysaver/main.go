// Energysaver exercises the repository's energy-accounting extension.
// The paper motivates channel awareness partly by battery life ("the
// inefficient use of channel ... can increase the consumption of the
// limited battery power in each mobile terminal"): a class-D hop keeps
// the radio on air five times longer per bit than a class-A hop, so
// routing over good links is an energy optimization too. This example
// compares the five protocols' transmit energy per delivered megabit.
package main

import (
	"fmt"
	"time"

	"rica"
)

func main() {
	fmt.Println("Transmit energy per protocol — 36 km/h mean, 10 packets/s per flow, 90 s:")
	fmt.Printf("%-10s%12s%12s%12s%16s%10s\n",
		"protocol", "control J", "data J", "total J", "J per Mbit", "deliv %")
	for _, p := range rica.AllProtocols() {
		s := rica.Simulate(rica.SimConfig{
			Protocol:     p,
			MeanSpeedKmh: 36,
			Rate:         10,
			Duration:     90 * time.Second,
			Seed:         11,
		})
		fmt.Printf("%-10s%12.1f%12.1f%12.1f%16.2f%10.1f\n",
			p.String(),
			s.Energy.ControlJ,
			s.Energy.DataJ,
			s.Energy.TotalJ(),
			s.Energy.PerDeliveredBitJ*1e6,
			s.DeliveryRatio*100)
	}
	fmt.Println("\nJ per Mbit is the battery-facing figure of merit. BGCA's guarded")
	fmt.Println("routes are the most frugal; RICA buys its delivery lead at roughly")
	fmt.Println("AODV's per-bit price despite the checking packets (better links")
	fmt.Println("offset the control energy); the link-state flood burns energy")
	fmt.Println("network-wide without delivering for it.")
}
