// Protocolduel pits all five protocols against the identical random
// universe — the same terminal trajectories, the same fading sample paths,
// the same Poisson arrivals — at a demanding operating point (72 km/h
// mean, 20 packets/s per flow) and prints a side-by-side scorecard,
// including the route-quality columns of the paper's Figure 5.
package main

import (
	"fmt"
	"time"

	"rica"
)

func main() {
	fmt.Println("Five-protocol duel: 72 km/h mean speed, 20 packets/s per flow, 60 s, one seed.")
	fmt.Printf("%-10s%10s%12s%12s%12s%10s%10s\n",
		"protocol", "deliv %", "delay", "ovh kbps", "link kbps", "CSI hops", "max hops")
	for _, p := range rica.AllProtocols() {
		s := rica.Simulate(rica.SimConfig{
			Protocol:     p,
			MeanSpeedKmh: 72,
			Rate:         20,
			Duration:     60 * time.Second,
			Seed:         42,
		})
		fmt.Printf("%-10s%10.1f%12v%12.1f%12.0f%10.2f%10d\n",
			p.String(),
			s.DeliveryRatio*100,
			s.AvgDelay.Round(time.Millisecond),
			s.OverheadBps/1000,
			s.AvgLinkThroughputBps/1000,
			s.AvgCSIHops,
			s.MaxHops)
	}
	fmt.Println("\nmax hops far beyond the network diameter (~8) betray routing loops —")
	fmt.Println("the link-state pathology the paper attributes to flooded updates that")
	fmt.Println("cannot keep per-terminal views consistent under mobility.")
}
