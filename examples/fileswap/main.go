// Fileswap models the paper's motivating scenario: personal devices in an
// ad hoc network swapping files peer-to-peer. Three device pairs exchange
// data in both directions (six flows) while everyone wanders the field;
// the example transfers the same "files" under RICA and under AODV and
// compares how much of each transfer completed and how fast chunks moved.
package main

import (
	"fmt"
	"time"

	"rica"
)

func main() {
	// Three bidirectional swaps: each side pushes 512-byte chunks at
	// 15 packets/s (≈61 kbps of goodput demand per direction).
	flows := []rica.Flow{
		{Src: 3, Dst: 27, Rate: 15}, {Src: 27, Dst: 3, Rate: 15},
		{Src: 11, Dst: 40, Rate: 15}, {Src: 40, Dst: 11, Rate: 15},
		{Src: 19, Dst: 35, Rate: 15}, {Src: 35, Dst: 19, Rate: 15},
	}
	const duration = 90 * time.Second

	fmt.Println("Peer-to-peer file swapping, 3 device pairs × 2 directions, 36 km/h mean:")
	fmt.Printf("%-10s%14s%14s%12s%14s\n", "protocol", "chunks sent", "chunks recv", "complete", "mean delay")
	for _, p := range []rica.Protocol{rica.ProtocolRICA, rica.ProtocolAODV} {
		s := rica.Simulate(rica.SimConfig{
			Protocol:     p,
			MeanSpeedKmh: 36,
			Rate:         15, // drives BGCA-style defaults; flows below override the workload
			Duration:     duration,
			Seed:         7,
			Flows:        flows,
		})
		fmt.Printf("%-10s%14d%14d%11.1f%%%14v\n",
			p.String(), s.Generated, s.Delivered, s.DeliveryRatio*100,
			s.AvgDelay.Round(time.Millisecond))
	}
	fmt.Println("\nThe receiver-initiated CSI checking keeps the swap on high-class")
	fmt.Println("links as devices move, which is what the delivery gap shows.")
}
