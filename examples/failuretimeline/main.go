// Failuretimeline watches a network break and repair itself in real
// time. It replays the partition-heal scenario — a 7-terminal chain
// whose only bridge (terminal 3) is radio-dead for the first 40 s — with
// per-interval telemetry attached, and prints the recovery curve: the
// delivery ratio sits depressed while the cross traffic is partitioned,
// then climbs as the bridge heals and the routing protocol re-discovers
// the end-to-end route. The same timeline also shows the route-table
// churn spike at the heal, the per-interval delay percentiles, and the
// drop reasons shifting from no-route to none.
//
// Run with:
//
//	go run ./examples/failuretimeline
package main

import (
	"fmt"
	"os"
	"strings"
	"time"

	"rica"
)

// interval is the telemetry bucket width: 5 s is coarse enough to smooth
// Poisson noise on a 3-flow workload, fine enough to see the heal edge.
const interval = 5 * time.Second

func main() {
	spec, err := rica.ScenarioByName("partition-heal")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var sink rica.MemoryTimelineSink
	_, err = rica.RunBatch(rica.BatchConfig{
		Scenarios: []rica.Scenario{spec},
		Protocols: []rica.Protocol{rica.ProtocolRICA, rica.ProtocolAODV},
		Trials:    1,
		Telemetry: &rica.BatchTelemetry{Interval: interval, Sink: &sink},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("partition-heal: chain 0–6, bridge terminal 3 dead until t=40s, %v buckets\n\n", interval)
	for _, run := range sink.Runs {
		fmt.Printf("%s delivery ratio per interval:\n", run.Run.Protocol)
		for _, p := range run.Timeline.Points {
			marker := " "
			if p.StartS < 40 {
				marker = "✗" // bridge down
			}
			bar := strings.Repeat("█", int(p.DeliveryRatio*40+0.5))
			fmt.Printf("  t=%3.0fs %s %5.1f%% %s\n", p.StartS, marker, p.DeliveryRatio*100, bar)
		}
		fmt.Println()
	}
	fmt.Println("✗ = bridge down. Watch the curve step up after t=40s as routes re-form;")
	fmt.Println("the interval timeline is what end-of-run aggregates average away.")
}
