// Packettrace shows the simulator's observability surface: it runs a
// short RICA session while recording the packet-level event history, then
// prints the opening exchange — the first data packets triggering a route
// discovery flood, the reply, the receiver-initiated checking packets,
// and the first deliveries.
package main

import (
	"fmt"
	"time"

	"rica"
)

func main() {
	summary, events := rica.SimulateTraced(rica.SimConfig{
		Protocol:     rica.ProtocolRICA,
		MeanSpeedKmh: 20,
		Rate:         10,
		Duration:     3 * time.Second,
		Seed:         4,
		Flows:        []rica.Flow{{Src: 12, Dst: 33, Rate: 10}},
	}, 4096)

	fmt.Println("First 45 events of a single RICA flow (terminal 12 → 33):")
	for i, e := range events {
		if i >= 45 {
			break
		}
		fmt.Println(" ", e)
	}
	fmt.Printf("\n%d events total; delivered %d/%d packets, mean delay %v.\n",
		len(events), summary.Delivered, summary.Generated,
		summary.AvgDelay.Round(time.Millisecond))
	fmt.Println("Watch for: GEN at the source, the RREQ flood (CTL), the unicast")
	fmt.Println("RREP retracing it, periodic CSIC broadcasts from terminal 33, and")
	fmt.Println("DLV lines whose hop counts follow the route the checks selected.")
}
