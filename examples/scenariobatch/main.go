// Scenariobatch mass-executes part of the scenario catalog through the
// parallel batch engine: three structurally different workloads — a
// 9-hop relay chain, a partitioned chain that heals mid-run, and bursty
// hotspot clusters — each under two routing protocols and several seeds,
// with live per-cell progress and a mean/p50/p95 aggregate scorecard.
// The same grid and base seed always reproduce bit-identical results,
// however many workers the host machine offers.
package main

import (
	"fmt"
	"os"
	"time"

	"rica"
)

func main() {
	var specs []rica.Scenario
	for _, name := range []string{"chain-10", "partition-heal", "hotspot-burst"} {
		spec, err := rica.ScenarioByName(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Trim the horizons so the demo finishes in seconds; the outage
		// schedule of partition-heal (bridge dead until t=40s) still fits.
		spec.Duration = rica.ScenarioDuration(45 * time.Second)
		specs = append(specs, spec)
	}

	res, err := rica.RunBatch(rica.BatchConfig{
		Scenarios: specs,
		Protocols: []rica.Protocol{rica.ProtocolRICA, rica.ProtocolAODV},
		Trials:    3,
		OnProgress: func(p rica.BatchProgress) {
			fmt.Fprintf(os.Stderr, "[%2d/%d] %-15s %-5s seed=%d  delivery %5.1f%%\n",
				p.Done, p.Total, p.Cell.Scenario, p.Cell.Protocol, p.Cell.Seed,
				p.Cell.DeliveryPct)
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Cross-trial aggregates (mean over 3 seeds):")
	fmt.Print(res.Table())
	fmt.Println()

	// The partition-heal rows make the failure schedule visible: the
	// cross-partition flow contributes nothing until the bridge heals at
	// t = 40 s, so delivery sits well below the healthy chain's.
	for _, a := range res.Aggregates {
		if a.Scenario == "partition-heal" {
			fmt.Printf("partition-heal/%s delivery p50 %.1f%% (p95 %.1f%%) — depressed while the bridge is down\n",
				a.Protocol, a.DeliveryPct.P50, a.DeliveryPct.P95)
		}
	}
}
