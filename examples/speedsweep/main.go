// Speedsweep reproduces the shape of the paper's Figures 2 and 3 at a
// reduced scale: it sweeps the mean terminal speed from 0 to 72 km/h and
// prints how delay and delivery respond for every protocol. Expect RICA
// and BGCA to stay fast and reliable while AODV and the link-state
// baseline fall apart as mobility grows.
package main

import (
	"fmt"
	"time"

	"rica"
)

func main() {
	opts := rica.Options{
		Speeds:   []float64{0, 24, 48, 72},
		Trials:   2,
		Duration: 45 * time.Second,
		BaseSeed: 1,
	}
	fmt.Println("Sweeping mean speed at 10 packets/s per flow (reduced scale)...")
	sweep := rica.Sweep(10, opts)
	fmt.Println()
	fmt.Println(sweep.Table(rica.MetricDelay))
	fmt.Println(sweep.Table(rica.MetricDelivery))
	fmt.Println(sweep.Table(rica.MetricOverhead))
	fmt.Println("Full paper scale: go run ./cmd/ricasim -figure all -trials 25 -duration 500s")
}
