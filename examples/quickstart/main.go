// Quickstart: run one RICA simulation in the paper's environment — 50
// terminals roaming a 1 km² field at a 36 km/h mean speed, 10 Poisson
// flows of 10 packets/s — and print the headline metrics.
package main

import (
	"fmt"
	"time"

	"rica"
)

func main() {
	summary := rica.Simulate(rica.SimConfig{
		Protocol:     rica.ProtocolRICA,
		MeanSpeedKmh: 36,
		Rate:         10,
		Duration:     60 * time.Second,
		Seed:         1,
	})

	fmt.Println("RICA, 50 terminals, 36 km/h mean, 10 packets/s per flow, 60 s:")
	fmt.Printf("  generated packets:   %d\n", summary.Generated)
	fmt.Printf("  delivered packets:   %d (%.1f%%)\n", summary.Delivered, summary.DeliveryRatio*100)
	fmt.Printf("  mean e2e delay:      %v\n", summary.AvgDelay.Round(time.Millisecond))
	fmt.Printf("  routing overhead:    %.1f kbps\n", summary.OverheadBps/1000)
	fmt.Printf("  per-hop link rate:   %.0f kbps (channel classes the routes used)\n",
		summary.AvgLinkThroughputBps/1000)
	fmt.Printf("  mean route length:   %.2f hops (%.2f in CSI hop distance)\n",
		summary.AvgHops, summary.AvgCSIHops)
	for reason, n := range summary.Dropped {
		fmt.Printf("  dropped (%s): %d\n", reason, n)
	}
}
