package rica_test

import (
	"testing"
	"time"

	"rica"
)

// catalogHorizon picks a truncated horizon per scenario so the full
// catalog × protocol grid stays CI-sized; the big fields get the
// shortest leash.
func catalogHorizon(name string) time.Duration {
	switch name {
	case "metro-500", "gossip-200":
		return 2 * time.Second
	default:
		return 4 * time.Second
	}
}

// TestInvariantCatalog holds every built-in scenario × protocol cell to
// the simulation invariants, on both engines: the serial run must
// replay bit-identically and close its conservation and ledger books,
// and the sharded run must land on the very same fingerprint. The leak
// law is deliberately not checked here — the golden tests run in
// parallel in this binary and share the process-global packet pool;
// the scenario fuzz sweep covers leaks in its own process.
func TestInvariantCatalog(t *testing.T) {
	names := rica.ScenarioNames()
	if testing.Short() {
		names = names[:3]
	}
	for _, name := range names {
		spec, err := rica.ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range rica.AllProtocols() {
			spec, p := spec, p
			t.Run(name+"/"+p.String(), func(t *testing.T) {
				t.Parallel()
				run := func(shards int) rica.Summary {
					s, err := rica.SimulateScenario(rica.ScenarioRun{
						Scenario: spec, Protocol: p, Seed: 3,
						Shards: shards, MaxDuration: catalogHorizon(spec.Name),
					})
					if err != nil {
						t.Fatal(err)
					}
					return s
				}
				serial := run(1)
				if err := rica.CheckInvariants(serial); err != nil {
					t.Errorf("serial run: %v", err)
				}
				want := rica.Fingerprint(serial)
				if got := rica.Fingerprint(run(1)); got != want {
					t.Errorf("serial replay diverged\n got: %s\nwant: %s", got, want)
				}
				sharded := run(2)
				if err := rica.CheckInvariants(sharded); err != nil {
					t.Errorf("sharded run: %v", err)
				}
				if got := rica.Fingerprint(sharded); got != want {
					t.Errorf("sharded run diverged from serial\n got: %s\nwant: %s", got, want)
				}

				// Timeline monotonicity: re-run the cell as a 1×1×1 batch
				// with interval telemetry and hold the emitted timeline to
				// the cumulative-counters-never-decrease laws.
				truncated := spec
				truncated.Duration = rica.ScenarioDuration(catalogHorizon(spec.Name))
				sink := &rica.MemoryTimelineSink{}
				if _, err := rica.RunBatch(rica.BatchConfig{
					Scenarios: []rica.Scenario{truncated},
					Protocols: []rica.Protocol{p},
					Trials:    1,
					BaseSeed:  3,
					Telemetry: &rica.BatchTelemetry{Interval: time.Second, Sink: sink},
				}); err != nil {
					t.Fatalf("timeline batch: %v", err)
				}
				if n := len(sink.Runs); n != 1 {
					t.Fatalf("timeline batch emitted %d timelines, want 1", n)
				}
				if err := rica.CheckTimelineInvariants(sink.Runs[0].Timeline); err != nil {
					t.Errorf("timeline laws: %v", err)
				}
			})
		}
	}
}
