package rica_test

import (
	"path/filepath"
	"testing"
	"time"

	"rica"
	"rica/internal/durable"
)

// TestCheckpointWriteSyncsDir: the atomic snapshot write (temp + fsync +
// rename) must also fsync the parent directory — without it a machine
// crash right after the rename can roll the directory entry back and
// lose the snapshot the process believed durable. Regression test for
// the missing-dir-sync gap; uses the durable package's test observer,
// so it must not run in parallel.
func TestCheckpointWriteSyncsDir(t *testing.T) {
	dir := t.TempDir()
	var synced []string
	durable.OnSync = func(d string) { synced = append(synced, d) }
	defer func() { durable.OnSync = nil }()

	spec, err := rica.ScenarioByName("chain-10")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = rica.ScenarioDuration(4 * time.Second)
	path := filepath.Join(dir, "run.ckpt")
	_, interrupted, err := rica.RunCheckpointed(rica.ScenarioRun{
		Scenario: spec, Protocol: rica.ProtocolRICA, Seed: 3,
	}, path, time.Second, nil)
	if err != nil || interrupted {
		t.Fatalf("RunCheckpointed: interrupted=%v err=%v", interrupted, err)
	}
	if len(synced) == 0 {
		t.Fatal("periodic snapshot writes never synced the checkpoint directory")
	}
	for _, d := range synced {
		if d != dir {
			t.Fatalf("synced unexpected directory %s (want only %s)", d, dir)
		}
	}
}
