// Package timeseries turns one simulation run into an interval-bucketed
// telemetry timeline. Where the metrics package answers "what was the
// mean over the whole run", this package answers "what happened between
// second 40 and second 41": per-interval delivery ratio, end-to-end delay
// percentiles, control overhead, drops broken down by reason, goodput,
// and route-table churn. That is the view that makes transients — route
// convergence after a discovery flood, the delivery dip and recovery
// around a node failure, a control-channel saturation episode — visible
// at all.
//
// A Collector implements network.Recorder (and the optional
// network.RouteRecorder extension), so it attaches to a run exactly like
// the metrics collector does; WrapRecorder tees the data-plane events to
// both. Collectors are strictly per-run: they hold no global state, so
// parallel batch cells each collect independently and the batch engine
// emits the finished timelines in deterministic grid order.
//
// Finished timelines flow into a Sink — JSONL (one object per interval),
// CSV (one row per interval), or in-memory for programmatic access.
package timeseries

import (
	"sort"
	"time"

	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
)

// DefaultInterval is the bucket width used when a configuration leaves
// the interval zero: one second, fine enough to see failure/heal
// transients, coarse enough to keep timelines small.
const DefaultInterval = time.Second

// Collector accumulates one run's events into fixed-width interval
// buckets. The zero value is not usable; construct with NewCollector.
// It implements network.Recorder and network.RouteRecorder and exposes
// the same control-plane hooks as metrics.Collector, so the world wires
// it alongside (never instead of) the aggregate metrics.
type Collector struct {
	interval time.Duration
	buckets  []bucket

	// Streaming mode (NewStreamingCollector): instead of retaining every
	// delivery's delay until Timeline sorts it, one fixed-size log-bucketed
	// histogram is recycled across intervals. Simulation time is monotone,
	// so when a delivery lands in a later interval the open one is sealed —
	// its p50/p95 frozen from the histogram — and the histogram reset.
	// Memory per interval is therefore a constant ~15 KiB shared histogram
	// instead of one time.Duration per delivery.
	streaming bool
	hist      obs.Histogram
	histIdx   int // interval the histogram currently covers
}

// bucket accumulates the raw counters of one interval.
type bucket struct {
	generated     int
	delivered     int
	delaySum      time.Duration
	delays        []time.Duration
	deliveredBits int64

	// Streaming mode only: quantiles frozen when the interval was sealed.
	p50, p95 time.Duration
	sealed   bool

	drops [4]int // indexed by network.DropReason - 1

	controlPkts int64
	controlBits int64
	controlDrop int64
	ackBits     int64

	routeInstalls      int
	routeInvalidations int
}

var (
	_ network.Recorder      = (*Collector)(nil)
	_ network.RouteRecorder = (*Collector)(nil)
)

// NewCollector builds a collector bucketing a run of the given horizon
// into interval-wide buckets. A non-positive interval falls back to
// DefaultInterval; the horizon pre-sizes the timeline so every run over
// the same horizon yields the same number of points, events or not.
func NewCollector(interval, horizon time.Duration) *Collector {
	if interval <= 0 {
		interval = DefaultInterval
	}
	n := 0
	if horizon > 0 {
		// ceil(horizon/interval): the partial last interval gets a bucket.
		n = int((horizon + interval - 1) / interval)
	}
	return &Collector{interval: interval, buckets: make([]bucket, n)}
}

// NewStreamingCollector builds a collector whose per-interval delay
// quantiles come from a recycled fixed-size histogram instead of
// retained samples: memory is constant per interval regardless of
// delivery volume. The trade-off is approximation — p50/p95 are bucket
// midpoints, within ~3.2 % relative of the exact nearest-rank sample
// (see obs.Histogram.Quantile). The exact collector remains the default
// and the golden oracle; use streaming for very long or very hot runs
// where retaining every delay is the dominant allocation.
func NewStreamingCollector(interval, horizon time.Duration) *Collector {
	c := NewCollector(interval, horizon)
	c.streaming = true
	return c
}

// Streaming reports whether this collector uses the bounded-memory
// histogram path for delay quantiles.
func (c *Collector) Streaming() bool { return c.streaming }

// Interval reports the bucket width.
func (c *Collector) Interval() time.Duration { return c.interval }

// at returns the bucket covering virtual time now, growing the timeline
// if an event lands past the pre-sized horizon (e.g. a delivery completing
// exactly at the horizon boundary).
func (c *Collector) at(now time.Duration) *bucket {
	idx := int(now / c.interval)
	if idx < 0 {
		idx = 0
	}
	for idx >= len(c.buckets) {
		c.buckets = append(c.buckets, bucket{})
	}
	return &c.buckets[idx]
}

// DataGenerated implements network.Recorder.
func (c *Collector) DataGenerated(_ *packet.Packet, now time.Duration) {
	c.at(now).generated++
}

// DataDelivered implements network.Recorder.
func (c *Collector) DataDelivered(pkt *packet.Packet, now time.Duration) {
	b := c.at(now)
	b.delivered++
	delay := now - pkt.CreatedAt
	b.delaySum += delay
	if c.streaming {
		idx := int(now / c.interval)
		if idx != c.histIdx {
			// Deliveries arrive in simulation-time order, so the previously
			// open interval is complete: freeze its quantiles and recycle the
			// histogram for the new one.
			c.seal()
			c.histIdx = idx
		}
		c.hist.Observe(uint64(delay))
	} else {
		b.delays = append(b.delays, delay)
	}
	b.deliveredBits += int64(pkt.Size * 8)
}

// seal freezes the open streaming interval's quantiles out of the shared
// histogram and resets it.
func (c *Collector) seal() {
	if c.histIdx < len(c.buckets) {
		b := &c.buckets[c.histIdx]
		b.p50 = time.Duration(c.hist.Quantile(0.50))
		b.p95 = time.Duration(c.hist.Quantile(0.95))
		b.sealed = true
	}
	c.hist.Reset()
}

// DataDropped implements network.Recorder.
func (c *Collector) DataDropped(_ *packet.Packet, reason network.DropReason, now time.Duration) {
	b := c.at(now)
	if i := int(reason) - 1; i >= 0 && i < len(b.drops) {
		b.drops[i]++
	}
}

// ControlTransmitted observes a routing packet put on the common channel
// (chained after the metrics hook on mac.CommonChannel.OnTransmit).
func (c *Collector) ControlTransmitted(pkt *packet.Packet, _ int, now time.Duration) {
	b := c.at(now)
	b.controlPkts++
	b.controlBits += int64(pkt.Size * 8)
}

// ControlDropped observes a routing packet abandoned to congestion
// (chained on mac.CommonChannel.OnDropped).
func (c *Collector) ControlDropped(_ *packet.Packet, _ int, now time.Duration) {
	c.at(now).controlDrop++
}

// AckTransmitted observes a data-channel acknowledgment (chained on
// mac.DataPlane.OnAck); ACK bits count toward control overhead, matching
// the aggregate metrics.
func (c *Collector) AckTransmitted(sizeBytes int, now time.Duration) {
	c.at(now).ackBits += int64(sizeBytes * 8)
}

// RouteInstalled implements network.RouteRecorder: one route-table entry
// was installed or replaced somewhere in the network.
func (c *Collector) RouteInstalled(_ int, now time.Duration) {
	c.at(now).routeInstalls++
}

// RouteInvalidated implements network.RouteRecorder: one route-table
// entry transitioned from valid to invalid (explicit invalidation, a
// link-break fan-out, or idle expiry).
func (c *Collector) RouteInvalidated(_ int, now time.Duration) {
	c.at(now).routeInvalidations++
}

// Point is one interval's derived measurements. All fields are fixed
// (no maps), so equal runs serialize to identical bytes regardless of
// batch parallelism.
type Point struct {
	// Index is the interval's ordinal; StartS its start in simulated
	// seconds (Index × interval).
	Index  int     `json:"i"`
	StartS float64 `json:"t_s"`
	// Generated and Delivered count data packets entering and reaching
	// their destinations during this interval.
	Generated int `json:"generated"`
	Delivered int `json:"delivered"`
	// DeliveryRatio is Delivered/Generated for the interval — zero when
	// nothing was generated, and possibly above 1 when packets generated
	// earlier are delivered here.
	DeliveryRatio float64 `json:"delivery_ratio"`
	// AvgDelayMs, P50DelayMs and P95DelayMs summarize the end-to-end
	// delays of the interval's deliveries.
	AvgDelayMs float64 `json:"avg_delay_ms"`
	P50DelayMs float64 `json:"p50_delay_ms"`
	P95DelayMs float64 `json:"p95_delay_ms"`
	// GoodputKbps is delivered data bits over the interval.
	GoodputKbps float64 `json:"goodput_kbps"`
	// ControlPackets and ControlDropped count common-channel routing
	// transmissions and congestion losses; OverheadKbps is routing bits
	// plus ACK bits over the interval.
	ControlPackets int64   `json:"control_packets"`
	ControlDropped int64   `json:"control_dropped"`
	OverheadKbps   float64 `json:"overhead_kbps"`
	// The drop counters attribute the interval's data losses by cause.
	DropCongestion int `json:"drop_congestion"`
	DropExpired    int `json:"drop_expired"`
	DropNoRoute    int `json:"drop_no_route"`
	DropLinkBreak  int `json:"drop_link_break"`
	// RouteInstalls and RouteInvalidations measure route-table churn:
	// entries written and entries killed across all terminals. For the
	// link-state baseline, installs count shortest-path-tree recomputes.
	RouteInstalls      int `json:"route_installs"`
	RouteInvalidations int `json:"route_invalidations"`
}

// Timeline is one run's finished interval series.
type Timeline struct {
	// IntervalS is the bucket width in seconds.
	IntervalS float64 `json:"interval_s"`
	// Points holds one entry per interval, covering the whole horizon in
	// order; intervals without events are present with zero counters.
	Points []Point `json:"points"`
}

// Timeline freezes the collected buckets into a timeline. The collector
// stays usable (freezing is a pure read), so a caller may snapshot
// mid-run, but the canonical use is once, after the run completes.
func (c *Collector) Timeline() Timeline {
	secs := c.interval.Seconds()
	tl := Timeline{IntervalS: secs, Points: make([]Point, len(c.buckets))}
	for i := range c.buckets {
		b := &c.buckets[i]
		p := Point{
			Index:          i,
			StartS:         float64(i) * secs,
			Generated:      b.generated,
			Delivered:      b.delivered,
			GoodputKbps:    float64(b.deliveredBits) / secs / 1000,
			ControlPackets: b.controlPkts,
			ControlDropped: b.controlDrop,
			OverheadKbps:   float64(b.controlBits+b.ackBits) / secs / 1000,
			DropCongestion: b.drops[network.DropCongestion-1],
			DropExpired:    b.drops[network.DropExpired-1],
			DropNoRoute:    b.drops[network.DropNoRoute-1],
			DropLinkBreak:  b.drops[network.DropLinkBreak-1],

			RouteInstalls:      b.routeInstalls,
			RouteInvalidations: b.routeInvalidations,
		}
		if b.generated > 0 {
			p.DeliveryRatio = float64(b.delivered) / float64(b.generated)
		}
		if b.delivered > 0 {
			p.AvgDelayMs = float64(b.delaySum) / float64(b.delivered) / float64(time.Millisecond)
			switch {
			case !c.streaming:
				p.P50DelayMs = float64(durationQuantile(b.delays, 0.50)) / float64(time.Millisecond)
				p.P95DelayMs = float64(durationQuantile(b.delays, 0.95)) / float64(time.Millisecond)
			case b.sealed:
				p.P50DelayMs = float64(b.p50) / float64(time.Millisecond)
				p.P95DelayMs = float64(b.p95) / float64(time.Millisecond)
			case i == c.histIdx:
				// Still-open interval: read the live histogram without
				// resetting it, keeping Timeline a pure read.
				p.P50DelayMs = float64(c.hist.Quantile(0.50)) / float64(time.Millisecond)
				p.P95DelayMs = float64(c.hist.Quantile(0.95)) / float64(time.Millisecond)
			}
		}
		tl.Points[i] = p
	}
	return tl
}

// durationQuantile is the nearest-rank q-quantile of samples, sorting the
// slice in place (mirrors metrics.Quantile for durations).
func durationQuantile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	idx := int(q*float64(len(samples)-1) + 0.5)
	return samples[idx]
}

// WrapRecorder decorates a network.Recorder so the data-plane lifecycle
// events flow into c as well as the wrapped recorder. The returned
// recorder also implements network.RouteRecorder, so node runtimes
// forward route-table churn to c.
func WrapRecorder(inner network.Recorder, c *Collector) network.Recorder {
	return &tee{inner: inner, c: c}
}

// tee fans data-plane events out to the timeseries collector after the
// wrapped recorder (the aggregate metrics) has seen them.
type tee struct {
	inner network.Recorder
	c     *Collector
}

var (
	_ network.Recorder      = (*tee)(nil)
	_ network.RouteRecorder = (*tee)(nil)
)

func (t *tee) DataGenerated(pkt *packet.Packet, now time.Duration) {
	t.inner.DataGenerated(pkt, now)
	t.c.DataGenerated(pkt, now)
}

func (t *tee) DataDelivered(pkt *packet.Packet, now time.Duration) {
	t.inner.DataDelivered(pkt, now)
	t.c.DataDelivered(pkt, now)
}

func (t *tee) DataDropped(pkt *packet.Packet, reason network.DropReason, now time.Duration) {
	t.inner.DataDropped(pkt, reason, now)
	t.c.DataDropped(pkt, reason, now)
}

func (t *tee) RouteInstalled(node int, now time.Duration) {
	if rr, ok := t.inner.(network.RouteRecorder); ok {
		rr.RouteInstalled(node, now)
	}
	t.c.RouteInstalled(node, now)
}

func (t *tee) RouteInvalidated(node int, now time.Duration) {
	if rr, ok := t.inner.(network.RouteRecorder); ok {
		rr.RouteInvalidated(node, now)
	}
	t.c.RouteInvalidated(node, now)
}

// StateDigest hashes the collector's raw mid-run state — bucket
// counters, drop breakdowns, sealed quantiles, and an order-insensitive
// fold of retained delay samples — into one FNV-1a word. Unlike
// Timeline it is a strict read: no interval is sealed, no slice is
// sorted, so capturing a digest mid-run cannot perturb anything.
// Checkpoint verification compares digests across processes.
func (c *Collector) StateDigest() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(c.interval))
	if c.streaming {
		mix(1)
	}
	mix(uint64(c.histIdx))
	mix(uint64(len(c.buckets)))
	for i := range c.buckets {
		b := &c.buckets[i]
		mix(uint64(b.generated))
		mix(uint64(b.delivered))
		mix(uint64(b.delaySum))
		mix(uint64(len(b.delays)))
		// Order-insensitive: Timeline's quantile sort may permute delays
		// in place, and the sample multiset is what must match.
		var sum, xor uint64
		for _, d := range b.delays {
			sum += uint64(d)
			xor ^= uint64(d) * prime64
		}
		mix(sum)
		mix(xor)
		mix(uint64(b.deliveredBits))
		mix(uint64(b.p50))
		mix(uint64(b.p95))
		if b.sealed {
			mix(1)
		} else {
			mix(0)
		}
		for _, d := range b.drops {
			mix(uint64(d))
		}
		mix(uint64(b.controlPkts))
		mix(uint64(b.controlBits))
		mix(uint64(b.controlDrop))
		mix(uint64(b.ackBits))
		mix(uint64(b.routeInstalls))
		mix(uint64(b.routeInvalidations))
	}
	return h
}
