package timeseries

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rica/internal/packet"
)

// feedDeliveries replays the same synthetic delivery stream into both
// collectors: monotone delivery times (as the kernel guarantees) with
// log-uniform random delays spanning sub-millisecond to seconds.
func feedDeliveries(t *testing.T, exact, streaming *Collector, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	now := time.Duration(0)
	for i := 0; i < n; i++ {
		now += time.Duration(rng.Intn(int(40 * time.Millisecond)))
		delay := time.Duration(math.Exp(rng.Float64()*8)) * time.Microsecond
		pkt := &packet.Packet{Size: 512, CreatedAt: now - delay}
		exact.DataDelivered(pkt, now)
		streaming.DataDelivered(pkt, now)
	}
}

// TestStreamingQuantilesTrackExact is the property test behind the
// documented error bound: per interval, the streaming p50/p95 must stay
// within ~4 % relative of the exact nearest-rank quantile, and every
// other field of the timeline must match exactly (streaming changes how
// quantiles are computed, nothing else).
func TestStreamingQuantilesTrackExact(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		horizon := 30 * time.Second
		exact := NewCollector(time.Second, horizon)
		streaming := NewStreamingCollector(time.Second, horizon)
		if !streaming.Streaming() || exact.Streaming() {
			t.Fatal("Streaming() flag wrong")
		}
		feedDeliveries(t, exact, streaming, seed, 4000)

		te, ts := exact.Timeline(), streaming.Timeline()
		if len(te.Points) != len(ts.Points) {
			t.Fatalf("timeline lengths differ: %d vs %d", len(te.Points), len(ts.Points))
		}
		for i := range te.Points {
			pe, ps := te.Points[i], ts.Points[i]
			if pe.Delivered != ps.Delivered || pe.AvgDelayMs != ps.AvgDelayMs ||
				pe.GoodputKbps != ps.GoodputKbps {
				t.Fatalf("interval %d: non-quantile fields diverged: %+v vs %+v", i, pe, ps)
			}
			for _, q := range []struct {
				name          string
				exact, approx float64
			}{
				{"p50", pe.P50DelayMs, ps.P50DelayMs},
				{"p95", pe.P95DelayMs, ps.P95DelayMs},
			} {
				if q.exact == 0 {
					if q.approx != 0 {
						t.Fatalf("interval %d %s: approx %g for exact 0", i, q.name, q.approx)
					}
					continue
				}
				rel := math.Abs(q.approx-q.exact) / q.exact
				if rel > 0.04 {
					t.Fatalf("seed %d interval %d %s: streaming %g vs exact %g (rel err %.4f > 0.04)",
						seed, i, q.name, q.approx, q.exact, rel)
				}
			}
		}
	}
}

// TestStreamingRetainsNoSamples is the bounded-memory property: the
// streaming collector must never append to a bucket's delay slice — its
// footprint is the one shared histogram regardless of delivery volume.
func TestStreamingRetainsNoSamples(t *testing.T) {
	horizon := 10 * time.Second
	c := NewStreamingCollector(time.Second, horizon)
	exact := NewCollector(time.Second, horizon)
	feedDeliveries(t, exact, c, 42, 20000)
	for i := range c.buckets {
		if c.buckets[i].delays != nil {
			t.Fatalf("streaming bucket %d retained %d samples", i, len(c.buckets[i].delays))
		}
	}
	// And the exact collector (the baseline being replaced) does retain.
	retained := 0
	for i := range exact.buckets {
		retained += len(exact.buckets[i].delays)
	}
	if retained != 20000 {
		t.Fatalf("exact collector retained %d samples, want 20000", retained)
	}
}

// TestStreamingMidRunSnapshot: Timeline() is a pure read — snapshotting
// mid-run must answer the open interval from the live histogram without
// resetting it, and the final timeline must be unaffected.
func TestStreamingMidRunSnapshot(t *testing.T) {
	c := NewStreamingCollector(time.Second, 5*time.Second)
	pkt := &packet.Packet{Size: 512, CreatedAt: 0}
	c.DataDelivered(pkt, 100*time.Millisecond) // delay 100 ms, interval 0
	mid := c.Timeline()
	if got := mid.Points[0].P50DelayMs; math.Abs(got-100) > 5 {
		t.Fatalf("open-interval p50 = %g ms, want ~100", got)
	}
	// A later delivery seals interval 0; its quantiles must survive.
	pkt2 := &packet.Packet{Size: 512, CreatedAt: 3 * time.Second}
	c.DataDelivered(pkt2, 3*time.Second+200*time.Millisecond)
	final := c.Timeline()
	if got := final.Points[0].P50DelayMs; math.Abs(got-100) > 5 {
		t.Fatalf("sealed interval 0 p50 = %g ms, want ~100", got)
	}
	if got := final.Points[3].P50DelayMs; math.Abs(got-200) > 10 {
		t.Fatalf("open interval 3 p50 = %g ms, want ~200", got)
	}
}
