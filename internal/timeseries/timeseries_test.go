package timeseries

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
)

func pkt(size int, createdAt time.Duration) *packet.Packet {
	return &packet.Packet{Type: packet.TypeData, Size: size, Src: 1, Dst: 2, CreatedAt: createdAt}
}

func TestBucketing(t *testing.T) {
	c := NewCollector(time.Second, 5*time.Second)

	c.DataGenerated(pkt(512, 0), 100*time.Millisecond)
	c.DataGenerated(pkt(512, 0), 900*time.Millisecond)
	c.DataDelivered(pkt(512, 100*time.Millisecond), 600*time.Millisecond)
	// Second interval: one generation, one delivery of an older packet.
	c.DataGenerated(pkt(512, 0), 1500*time.Millisecond)
	c.DataDelivered(pkt(512, 200*time.Millisecond), 1200*time.Millisecond)
	// Fourth interval: a drop.
	c.DataDropped(pkt(512, 0), network.DropLinkBreak, 3500*time.Millisecond)

	tl := c.Timeline()
	if len(tl.Points) != 5 {
		t.Fatalf("points = %d, want 5 (horizon/interval)", len(tl.Points))
	}
	if tl.IntervalS != 1 {
		t.Fatalf("IntervalS = %g, want 1", tl.IntervalS)
	}
	p0 := tl.Points[0]
	if p0.Generated != 2 || p0.Delivered != 1 {
		t.Fatalf("interval 0 = %+v, want 2 generated / 1 delivered", p0)
	}
	if p0.DeliveryRatio != 0.5 {
		t.Fatalf("interval 0 ratio = %g, want 0.5", p0.DeliveryRatio)
	}
	if want := 500.0; p0.AvgDelayMs != want {
		t.Fatalf("interval 0 avg delay = %g ms, want %g", p0.AvgDelayMs, want)
	}
	p1 := tl.Points[1]
	if p1.Generated != 1 || p1.Delivered != 1 || p1.DeliveryRatio != 1 {
		t.Fatalf("interval 1 = %+v", p1)
	}
	p3 := tl.Points[3]
	if p3.DropLinkBreak != 1 || p3.DropCongestion != 0 {
		t.Fatalf("interval 3 drops = %+v", p3)
	}
	// Untouched interval is present, zeroed.
	if p2 := tl.Points[2]; p2.Generated != 0 || p2.Delivered != 0 || p2.StartS != 2 {
		t.Fatalf("interval 2 = %+v, want zeros at t=2s", p2)
	}
}

func TestGrowsPastHorizon(t *testing.T) {
	c := NewCollector(time.Second, 2*time.Second)
	c.DataDelivered(pkt(512, 0), 4500*time.Millisecond) // straggler past horizon
	tl := c.Timeline()
	if len(tl.Points) != 5 {
		t.Fatalf("points = %d, want 5 after growth", len(tl.Points))
	}
	if tl.Points[4].Delivered != 1 {
		t.Fatalf("straggler missing: %+v", tl.Points[4])
	}
}

func TestZeroIntervalAndHorizonDefaults(t *testing.T) {
	c := NewCollector(0, 0)
	if c.Interval() != DefaultInterval {
		t.Fatalf("interval = %v, want %v", c.Interval(), DefaultInterval)
	}
	if tl := c.Timeline(); len(tl.Points) != 0 {
		t.Fatalf("empty collector has %d points", len(tl.Points))
	}
}

func TestDelayPercentiles(t *testing.T) {
	c := NewCollector(time.Second, time.Second)
	// Delays 10ms..100ms, all in interval 0.
	for i := 1; i <= 10; i++ {
		d := time.Duration(i) * 10 * time.Millisecond
		c.DataDelivered(pkt(512, 0), d)
	}
	p := c.Timeline().Points[0]
	if p.P50DelayMs < 50 || p.P50DelayMs > 60 {
		t.Fatalf("p50 = %g ms, want ≈ 50-60", p.P50DelayMs)
	}
	if p.P95DelayMs < 90 || p.P95DelayMs > 100 {
		t.Fatalf("p95 = %g ms, want ≈ 90-100", p.P95DelayMs)
	}
	if want := 55.0; p.AvgDelayMs != want {
		t.Fatalf("avg = %g ms, want %g", p.AvgDelayMs, want)
	}
}

func TestControlAndChurnCounters(t *testing.T) {
	c := NewCollector(time.Second, 2*time.Second)
	ctl := &packet.Packet{Type: packet.TypeRREQ, Size: 25}
	c.ControlTransmitted(ctl, 0, 100*time.Millisecond)
	c.ControlTransmitted(ctl, 1, 200*time.Millisecond)
	c.ControlDropped(ctl, 2, 300*time.Millisecond)
	c.AckTransmitted(25, 400*time.Millisecond)
	c.RouteInstalled(3, 500*time.Millisecond)
	c.RouteInstalled(4, 1500*time.Millisecond)
	c.RouteInvalidated(3, 1600*time.Millisecond)

	tl := c.Timeline()
	p0, p1 := tl.Points[0], tl.Points[1]
	if p0.ControlPackets != 2 || p0.ControlDropped != 1 {
		t.Fatalf("interval 0 control = %+v", p0)
	}
	// 2×25 bytes control + 25 bytes ACK = 600 bits over 1 s = 0.6 kbps.
	if want := 0.6; p0.OverheadKbps != want {
		t.Fatalf("overhead = %g kbps, want %g", p0.OverheadKbps, want)
	}
	if p0.RouteInstalls != 1 || p0.RouteInvalidations != 0 {
		t.Fatalf("interval 0 churn = %+v", p0)
	}
	if p1.RouteInstalls != 1 || p1.RouteInvalidations != 1 {
		t.Fatalf("interval 1 churn = %+v", p1)
	}
}

type countingRec struct{ gen, dlv, drp int }

func (r *countingRec) DataGenerated(*packet.Packet, time.Duration)                   { r.gen++ }
func (r *countingRec) DataDelivered(*packet.Packet, time.Duration)                   { r.dlv++ }
func (r *countingRec) DataDropped(*packet.Packet, network.DropReason, time.Duration) { r.drp++ }

func TestWrapRecorderTees(t *testing.T) {
	inner := &countingRec{}
	c := NewCollector(time.Second, time.Second)
	w := WrapRecorder(inner, c)
	w.DataGenerated(pkt(512, 0), 0)
	w.DataDelivered(pkt(512, 0), 100*time.Millisecond)
	w.DataDropped(pkt(512, 0), network.DropExpired, 200*time.Millisecond)
	if inner.gen != 1 || inner.dlv != 1 || inner.drp != 1 {
		t.Fatalf("inner missed events: %+v", inner)
	}
	p := c.Timeline().Points[0]
	if p.Generated != 1 || p.Delivered != 1 || p.DropExpired != 1 {
		t.Fatalf("collector missed events: %+v", p)
	}
	// The tee must surface the RouteRecorder extension even though the
	// inner recorder lacks it.
	rr, ok := w.(network.RouteRecorder)
	if !ok {
		t.Fatal("wrapped recorder does not implement RouteRecorder")
	}
	rr.RouteInstalled(0, 300*time.Millisecond)
	if got := c.Timeline().Points[0].RouteInstalls; got != 1 {
		t.Fatalf("route installs = %d, want 1", got)
	}
}

func TestJSONLSink(t *testing.T) {
	c := NewCollector(time.Second, 2*time.Second)
	c.DataGenerated(pkt(512, 0), 100*time.Millisecond)
	c.DataDelivered(pkt(512, 0), 600*time.Millisecond)

	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	run := Run{Scenario: "chain-10", Protocol: "RICA", Seed: 7}
	if err := sink.Emit(run, c.Timeline()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2 (one per interval)", len(lines))
	}
	var row map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if row["scenario"] != "chain-10" || row["protocol"] != "RICA" || row["seed"] != float64(7) {
		t.Fatalf("row metadata = %v", row)
	}
	if row["generated"] != float64(1) || row["delivered"] != float64(1) {
		t.Fatalf("row counters = %v", row)
	}
	if _, ok := row["route_installs"]; !ok {
		t.Fatalf("row missing churn column: %v", row)
	}
}

func TestCSVSink(t *testing.T) {
	c := NewCollector(time.Second, time.Second)
	c.DataGenerated(pkt(512, 0), 0)

	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	if err := sink.Emit(Run{Scenario: "a", Protocol: "AODV", Seed: 1}, c.Timeline()); err != nil {
		t.Fatal(err)
	}
	if err := sink.Emit(Run{Scenario: "b", Protocol: "AODV", Seed: 1}, c.Timeline()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "scenario,protocol,seed,") {
		t.Fatalf("header = %q", lines[0])
	}
	if got, want := len(strings.Split(lines[1], ",")), len(strings.Split(lines[0], ",")); got != want {
		t.Fatalf("row has %d columns, header has %d", got, want)
	}
	if !strings.HasPrefix(lines[1], "a,AODV,1,") || !strings.HasPrefix(lines[2], "b,AODV,1,") {
		t.Fatalf("rows = %q, %q", lines[1], lines[2])
	}
}

func TestCSVSinkEscapesFreeTextFields(t *testing.T) {
	c := NewCollector(time.Second, time.Second)
	c.DataGenerated(pkt(512, 0), 0)

	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	run := Run{Scenario: `urban, "dense"`, Protocol: "RICA", Seed: 1}
	if err := sink.Emit(run, c.Timeline()); err != nil {
		t.Fatal(err)
	}
	// encoding/csv must read the row back with exactly the header's
	// column count and the original name intact.
	rows, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) != 2 || len(rows[1]) != len(rows[0]) {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][0] != `urban, "dense"` {
		t.Fatalf("scenario field round-tripped as %q", rows[1][0])
	}
}

func TestMemorySinkRetainsOrder(t *testing.T) {
	var sink MemorySink
	c := NewCollector(time.Second, time.Second)
	for _, name := range []string{"x", "y", "z"} {
		if err := sink.Emit(Run{Scenario: name}, c.Timeline()); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(sink.Runs))
	}
	for i, want := range []string{"x", "y", "z"} {
		if sink.Runs[i].Run.Scenario != want {
			t.Fatalf("run %d = %q, want %q", i, sink.Runs[i].Run.Scenario, want)
		}
	}
}
