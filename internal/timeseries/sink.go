package timeseries

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Run identifies the simulation a timeline came from — the batch engine
// stamps the scenario/protocol/seed cell coordinates, standalone runs
// fill in what they know.
type Run struct {
	Scenario string `json:"scenario,omitempty"`
	Protocol string `json:"protocol,omitempty"`
	Seed     int64  `json:"seed"`
}

// Sink consumes finished timelines, one Emit per simulation run. The
// batch engine calls Emit serially, in deterministic grid order, after
// all cells have completed — implementations need no locking, and equal
// batches produce byte-identical streams regardless of parallelism.
type Sink interface {
	Emit(run Run, tl Timeline) error
}

// JSONLSink streams timelines as JSON Lines: one object per interval,
// carrying the run coordinates alongside every Point field, so the
// output is trivially greppable and loads straight into dataframe
// tooling without nested-JSON handling.
type JSONLSink struct {
	w io.Writer
}

// NewJSONLSink builds a sink writing JSON Lines to w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// jsonlRow flattens the run coordinates into each interval object.
type jsonlRow struct {
	Run
	IntervalS float64 `json:"interval_s"`
	Point
}

// Emit implements Sink.
func (s *JSONLSink) Emit(run Run, tl Timeline) error {
	enc := json.NewEncoder(s.w) // Encode appends the newline per row
	for _, p := range tl.Points {
		if err := enc.Encode(jsonlRow{Run: run, IntervalS: tl.IntervalS, Point: p}); err != nil {
			return err
		}
	}
	return nil
}

// csvHeader names the CSV columns, aligned with the Fprintf in Emit.
const csvHeader = "scenario,protocol,seed,interval_s,i,t_s," +
	"generated,delivered,delivery_ratio," +
	"avg_delay_ms,p50_delay_ms,p95_delay_ms,goodput_kbps," +
	"control_packets,control_dropped,overhead_kbps," +
	"drop_congestion,drop_expired,drop_no_route,drop_link_break," +
	"route_installs,route_invalidations\n"

// CSVSink streams timelines as comma-separated values: a header once,
// then one row per interval with the run coordinates in the leading
// columns.
type CSVSink struct {
	w           io.Writer
	wroteHeader bool
}

// NewCSVSink builds a sink writing CSV to w.
func NewCSVSink(w io.Writer) *CSVSink { return &CSVSink{w: w} }

// csvField quotes a string field per RFC 4180 when it contains a comma,
// quote, or newline — scenario names are free text, and a raw comma
// would shift every downstream column.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Emit implements Sink.
func (s *CSVSink) Emit(run Run, tl Timeline) error {
	if !s.wroteHeader {
		if _, err := io.WriteString(s.w, csvHeader); err != nil {
			return err
		}
		s.wroteHeader = true
	}
	for _, p := range tl.Points {
		_, err := fmt.Fprintf(s.w,
			"%s,%s,%d,%g,%d,%g,%d,%d,%.4f,%.3f,%.3f,%.3f,%.3f,%d,%d,%.3f,%d,%d,%d,%d,%d,%d\n",
			csvField(run.Scenario), csvField(run.Protocol), run.Seed, tl.IntervalS, p.Index, p.StartS,
			p.Generated, p.Delivered, p.DeliveryRatio,
			p.AvgDelayMs, p.P50DelayMs, p.P95DelayMs, p.GoodputKbps,
			p.ControlPackets, p.ControlDropped, p.OverheadKbps,
			p.DropCongestion, p.DropExpired, p.DropNoRoute, p.DropLinkBreak,
			p.RouteInstalls, p.RouteInvalidations)
		if err != nil {
			return err
		}
	}
	return nil
}

// Emitted is one timeline retained by a MemorySink.
type Emitted struct {
	Run      Run
	Timeline Timeline
}

// MemorySink retains every emitted timeline in order, for programmatic
// consumers (examples, tests, custom plotting).
type MemorySink struct {
	// Runs holds the emitted timelines in emission (grid) order.
	Runs []Emitted
}

// Emit implements Sink.
func (s *MemorySink) Emit(run Run, tl Timeline) error {
	s.Runs = append(s.Runs, Emitted{Run: run, Timeline: tl})
	return nil
}
