package scenario

import (
	"fmt"
	"sort"
	"time"
)

// builtins is the named scenario catalog. Every entry must validate and
// compile (enforced by TestRegistryCompleteness); keep the set spanning
// the axes the batch engine exists to explore — density, mobility,
// structure, burstiness, and failure churn.
var builtins = map[string]Spec{
	"paper-baseline": {
		Name:        "paper-baseline",
		Description: "The paper's §III.A environment: 50 waypoint terminals on 1000×1000 m, 10 Poisson flows at 10 pkt/s, 500 s.",
		Topology: Topology{
			Kind: TopoWaypoint, N: 50, Width: 1000, Height: 1000,
			MeanSpeedKmh: 36, Pause: Duration(3 * time.Second),
		},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 10, Rate: 10},
		Duration: Duration(500 * time.Second),
	},
	"dense-urban": {
		Name:        "dense-urban",
		Description: "60 slow terminals packed into 700×700 m: short links, heavy spatial reuse, contention-bound.",
		Topology: Topology{
			Kind: TopoWaypoint, N: 60, Width: 700, Height: 700,
			MeanSpeedKmh: 12, Pause: Duration(5 * time.Second),
		},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 15, Rate: 10},
		Duration: Duration(60 * time.Second),
	},
	"sparse-rural": {
		Name:        "sparse-rural",
		Description: "30 terminals thinly spread over 2000×2000 m: long partitions, routes exist only opportunistically.",
		Topology: Topology{
			Kind: TopoWaypoint, N: 30, Width: 2000, Height: 2000,
			MeanSpeedKmh: 24, Pause: Duration(3 * time.Second),
		},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 6, Rate: 5},
		Duration: Duration(120 * time.Second),
	},
	"grid-8x8": {
		Name:        "grid-8x8",
		Description: "Static 8×8 lattice at 140 m spacing carrying CBR flows: pure multi-hop forwarding, no mobility noise.",
		Topology:    Topology{Kind: TopoGrid, Rows: 8, Cols: 8, Spacing: 140},
		Traffic:     Traffic{Kind: TrafficCBR, Flows: 12, Rate: 8},
		Duration:    Duration(60 * time.Second),
	},
	"chain-10": {
		Name:        "chain-10",
		Description: "A 10-terminal, 9-hop static chain with a single end-to-end flow: the canonical relaying stress.",
		Topology:    Topology{Kind: TopoChain, N: 10, Spacing: 200},
		Traffic:     Traffic{Kind: TrafficPoisson, Rate: 8, Pairs: []Pair{{Src: 0, Dst: 9}}},
		Duration:    Duration(60 * time.Second),
	},
	"partition-heal": {
		Name:        "partition-heal",
		Description: "A 7-terminal chain whose middle relay is dead for the first 40 s: cross traffic is partitioned, then the bridge heals.",
		Topology:    Topology{Kind: TopoChain, N: 7, Spacing: 200},
		Traffic: Traffic{
			Kind: TrafficPoisson, Rate: 8,
			Pairs: []Pair{{Src: 0, Dst: 6}, {Src: 1, Dst: 2}, {Src: 5, Dst: 4}},
		},
		Outages:  []Outage{{Node: 3, From: 0, Until: Duration(40 * time.Second)}},
		Duration: Duration(120 * time.Second),
	},
	"hotspot-burst": {
		Name:        "hotspot-burst",
		Description: "Three static hotspot clusters with phase-locked on-off bursts: synchronized surges hammer the inter-cluster bridges.",
		Topology: Topology{
			Kind: TopoClusters,
			Clusters: []Cluster{
				{X: 300, Y: 300, Radius: 150, Count: 12},
				{X: 700, Y: 300, Radius: 150, Count: 12},
				{X: 500, Y: 650, Radius: 150, Count: 12},
			},
		},
		Traffic: Traffic{
			Kind: TrafficOnOff, Flows: 10, Rate: 25,
			On: Duration(5 * time.Second), Off: Duration(5 * time.Second),
		},
		Duration: Duration(60 * time.Second),
	},
	"metro-500": {
		Name:        "metro-500",
		Description: "500 waypoint terminals over 10 km² at the paper's density: the dense-field stress the spatial-grid radio core exists for.",
		Topology: Topology{
			Kind: TopoWaypoint, N: 500, Width: 3160, Height: 3160,
			MeanSpeedKmh: 36, Pause: Duration(3 * time.Second),
		},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 50, Rate: 10},
		Duration: Duration(60 * time.Second),
	},
	"churn-heavy": {
		Name:        "churn-heavy",
		Description: "The paper's field at 72 km/h with a rolling outage schedule: one terminal after another blinks out for 15 s.",
		Topology: Topology{
			Kind: TopoWaypoint, N: 50, Width: 1000, Height: 1000,
			MeanSpeedKmh: 72, Pause: Duration(3 * time.Second),
		},
		Traffic: Traffic{Kind: TrafficPoisson, Flows: 10, Rate: 10},
		Outages: []Outage{
			{Node: 0, From: Duration(10 * time.Second), Until: Duration(25 * time.Second)},
			{Node: 1, From: Duration(30 * time.Second), Until: Duration(45 * time.Second)},
			{Node: 2, From: Duration(50 * time.Second), Until: Duration(65 * time.Second)},
			{Node: 3, From: Duration(70 * time.Second), Until: Duration(85 * time.Second)},
			{Node: 4, From: Duration(90 * time.Second), Until: Duration(105 * time.Second)},
		},
		Duration: Duration(120 * time.Second),
	},
	"gossip-200": {
		Name:        "gossip-200",
		Description: "200 waypoint terminals carrying a 2-rumor push epidemic: every delivery mints a new sender, the flood-heaviest shape on-demand discovery can face.",
		Topology: Topology{
			Kind: TopoWaypoint, N: 200, Width: 2000, Height: 2000,
			MeanSpeedKmh: 18, Pause: Duration(3 * time.Second),
		},
		Traffic:  Traffic{Kind: TrafficGossip, Rate: 2, Rumors: 2, Pushes: 6},
		Duration: Duration(30 * time.Second),
	},
	"jammer-grid": {
		Name:        "jammer-grid",
		Description: "A static 6×6 lattice with two interior jammers spraying CSMA-oblivious noise bursts: carrier sense and collisions under deliberate interference.",
		Topology:    Topology{Kind: TopoGrid, Rows: 6, Cols: 6, Spacing: 140},
		Traffic:     Traffic{Kind: TrafficCBR, Flows: 8, Rate: 6},
		Adversaries: []Adversary{
			{Node: 14, Behavior: AdversaryJam, Rate: 40, Size: 256},
			{Node: 21, Behavior: AdversaryJam, Rate: 25, Size: 512},
		},
		Duration: Duration(45 * time.Second),
	},
	"churn-storm": {
		Name:        "churn-storm",
		Description: "A fast waypoint field where rolling 5-terminal waves blink out every 6 s for 5 s: routes decay faster than discovery amortizes them.",
		Topology: Topology{
			Kind: TopoWaypoint, N: 40, Width: 1200, Height: 1200,
			MeanSpeedKmh: 36, Pause: Duration(3 * time.Second),
		},
		Traffic: Traffic{Kind: TrafficPoisson, Flows: 8, Rate: 8},
		Churn: &Churn{
			Nodes: 5, Waves: 8,
			Period: Duration(6 * time.Second), Down: Duration(5 * time.Second),
			From: Duration(5 * time.Second),
		},
		Duration: Duration(60 * time.Second),
	},
	"byzantine-drop": {
		Name:        "byzantine-drop",
		Description: "A static 5×5 lattice with two byzantine relays that route honestly but discard most transit data: selective forwarding against every protocol's repair logic.",
		Topology:    Topology{Kind: TopoGrid, Rows: 5, Cols: 5, Spacing: 160},
		Traffic:     Traffic{Kind: TrafficPoisson, Flows: 6, Rate: 8},
		Adversaries: []Adversary{
			{Node: 12, Behavior: AdversaryDrop, DropProb: 0.75},
			{Node: 6, Behavior: AdversaryDrop, DropProb: 0.5},
		},
		Duration: Duration(45 * time.Second),
	},
}

// Names lists the built-in scenario names, sorted.
func Names() []string {
	out := make([]string, 0, len(builtins))
	for name := range builtins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName fetches a built-in scenario.
func ByName(name string) (Spec, error) {
	s, ok := builtins[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}
