package scenario

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestRegistryCompleteness: the catalog carries at least the eight
// documented built-ins, and every entry validates and compiles to a
// runnable configuration.
func TestRegistryCompleteness(t *testing.T) {
	want := []string{
		"paper-baseline", "dense-urban", "sparse-rural", "grid-8x8",
		"chain-10", "partition-heal", "hotspot-burst", "churn-heavy",
	}
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry has %d scenarios, want ≥ 8", len(names))
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing built-in %q", w)
		}
	}
	for _, name := range names {
		spec, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("%q: spec.Name = %q", name, spec.Name)
		}
		if spec.Description == "" {
			t.Errorf("%q: no description", name)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%q does not validate: %v", name, err)
		}
		cfg, err := spec.Compile()
		if err != nil {
			t.Errorf("%q does not compile: %v", name, err)
			continue
		}
		if cfg.Duration <= 0 {
			t.Errorf("%q compiled with no horizon", name)
		}
		if n := spec.Topology.NodeCount(); n < 2 {
			t.Errorf("%q places %d terminals", name, n)
		}
		if cfg.StaticPositions != nil && len(cfg.StaticPositions) != spec.Topology.NodeCount() {
			t.Errorf("%q: %d positions for %d terminals",
				name, len(cfg.StaticPositions), spec.Topology.NodeCount())
		}
	}
}

// TestJSONRoundTrip: every built-in survives encode → decode unchanged,
// so specs can be persisted and reloaded without drift.
func TestJSONRoundTrip(t *testing.T) {
	for _, name := range Names() {
		spec, _ := ByName(name)
		data, err := spec.JSON()
		if err != nil {
			t.Fatalf("%q: marshal: %v", name, err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%q: parse: %v", name, err)
		}
		if !reflect.DeepEqual(spec, back) {
			t.Errorf("%q: round trip drifted:\n got %+v\nwant %+v", name, back, spec)
		}
	}
}

// TestParseJSONDurationForms: durations decode from both "90s" strings
// and bare seconds.
func TestParseJSONDurationForms(t *testing.T) {
	spec, err := ParseJSON([]byte(`{
		"name": "t",
		"topology": {"kind": "chain", "n": 3, "spacing": 200},
		"traffic": {"kind": "poisson", "rate": 5, "pairs": [{"src": 0, "dst": 2}]},
		"duration": 90
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(spec.Duration) != 90*time.Second {
		t.Errorf("numeric duration = %v, want 90s", time.Duration(spec.Duration))
	}
	spec, err = ParseJSON([]byte(`{
		"name": "t",
		"topology": {"kind": "chain", "n": 3, "spacing": 200},
		"traffic": {"kind": "poisson", "rate": 5, "pairs": [{"src": 0, "dst": 2}]},
		"duration": "2m"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if time.Duration(spec.Duration) != 2*time.Minute {
		t.Errorf("string duration = %v, want 2m", time.Duration(spec.Duration))
	}
}

// TestParseJSONRejectsUnknownFields: typos in hand-written specs fail
// loudly instead of silently doing nothing.
func TestParseJSONRejectsUnknownFields(t *testing.T) {
	_, err := ParseJSON([]byte(`{
		"name": "t",
		"topologee": {"kind": "chain", "n": 3, "spacing": 200}
	}`))
	if err == nil || !strings.Contains(err.Error(), "topologee") {
		t.Errorf("unknown field accepted, err = %v", err)
	}
}

// TestValidateRejects: the structural errors Validate exists to catch.
func TestValidateRejects(t *testing.T) {
	base := func() Spec {
		return Spec{
			Name:     "t",
			Topology: Topology{Kind: TopoChain, N: 6, Spacing: 200},
			Traffic:  Traffic{Kind: TrafficPoisson, Flows: 2, Rate: 5},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"missing name", func(s *Spec) { s.Name = "" }},
		{"unknown topology", func(s *Spec) { s.Topology.Kind = "torus" }},
		{"unknown traffic", func(s *Spec) { s.Traffic.Kind = "fractal" }},
		{"zero rate", func(s *Spec) { s.Traffic.Rate = 0 }},
		{"too many flows", func(s *Spec) { s.Traffic.Flows = 4 }},
		{"pair out of range", func(s *Spec) { s.Traffic.Pairs = []Pair{{Src: 0, Dst: 6}} }},
		{"self pair", func(s *Spec) { s.Traffic.Pairs = []Pair{{Src: 1, Dst: 1}} }},
		{"outage unknown node", func(s *Spec) {
			s.Outages = []Outage{{Node: 9, From: 0, Until: Duration(time.Second)}}
		}},
		{"empty outage window", func(s *Spec) {
			s.Outages = []Outage{{Node: 1, From: Duration(5 * time.Second), Until: Duration(5 * time.Second)}}
		}},
		{"onoff without windows", func(s *Spec) { s.Traffic.Kind = TrafficOnOff }},
		{"negative pause", func(s *Spec) {
			s.Topology = Topology{
				Kind: TopoWaypoint, N: 10, Width: 500, Height: 500,
				Pause: Duration(-time.Second),
			}
		}},
	}
	for _, c := range cases {
		s := base()
		c.mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: validated", c.name)
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("base spec must validate: %v", err)
	}
}

// TestZeroPauseIsLiteral: "pause": "0s" means continuous motion, not a
// silent fallback to the paper's 3 s default — the same sentinel trap
// SimConfig.SeedZero exists to avoid.
func TestZeroPauseIsLiteral(t *testing.T) {
	spec := Spec{
		Name:     "t",
		Topology: Topology{Kind: TopoWaypoint, N: 10, Width: 500, Height: 500, MeanSpeedKmh: 20},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 2, Rate: 5},
	}
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Pause != 0 {
		t.Errorf("zero pause compiled to %v", cfg.Pause)
	}
}

// TestCompileIsPure: compiling the same spec twice yields deeply equal
// configurations — placement (including cluster packing) must not draw
// randomness.
func TestCompileIsPure(t *testing.T) {
	for _, name := range []string{"hotspot-burst", "grid-8x8", "partition-heal"} {
		spec, _ := ByName(name)
		a, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		b, _ := spec.Compile()
		// Config holds a *trace.Recorder (nil here) and plain data
		// otherwise; DeepEqual is exact.
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%q: two compilations differ", name)
		}
	}
}

// TestClusterPlacementStaysInDisc: sunflower packing keeps every terminal
// inside its cluster's radius.
func TestClusterPlacementStaysInDisc(t *testing.T) {
	topo := Topology{
		Kind:     TopoClusters,
		Clusters: []Cluster{{X: 100, Y: 200, Radius: 50, Count: 20}},
	}
	pts := topo.placements()
	if len(pts) != 20 {
		t.Fatalf("placed %d terminals, want 20", len(pts))
	}
	for i, p := range pts {
		dx, dy := p.X-100, p.Y-200
		if dx*dx+dy*dy > 50*50+1e-9 {
			t.Errorf("terminal %d at (%g, %g) escapes the disc", i, p.X, p.Y)
		}
	}
}
