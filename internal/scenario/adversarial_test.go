package scenario

import (
	"math"
	"strings"
	"testing"
	"time"

	"rica/internal/world"
)

// advBase returns a valid spec with room for adversarial mutations.
func advBase() Spec {
	return Spec{
		Name:     "adv-base",
		Topology: Topology{Kind: TopoGrid, Rows: 3, Cols: 3, Spacing: 150},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 2, Rate: 5},
	}
}

func TestValidateRejectsAdversarialSpecs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string // the offending field must appear in the error
	}{
		{"drop_prob above one", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryDrop, DropProb: 1.5}}
		}, "drop_prob"},
		{"negative drop_prob", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryDrop, DropProb: -0.1}}
		}, "drop_prob"},
		{"NaN drop_prob", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryDrop, DropProb: math.NaN()}}
		}, "drop_prob"},
		{"dropper with jam fields", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryDrop, DropProb: 0.5, Rate: 10}}
		}, "rate"},
		{"jammer without rate", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryJam}}
		}, "rate"},
		{"jammer with NaN rate", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryJam, Rate: math.NaN()}}
		}, "rate"},
		{"jammer burst too large", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryJam, Rate: 10, Size: MaxJamBytes + 1}}
		}, "size"},
		{"jammer with drop fields", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryJam, Rate: 10, DropProb: 0.5}}
		}, "drop_prob"},
		{"unknown behaviour", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: "wormhole"}}
		}, "behavior"},
		{"adversary node out of range", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 9, Behavior: AdversaryDrop, DropProb: 0.5}}
		}, "node"},
		{"empty adversary window", func(s *Spec) {
			s.Adversaries = []Adversary{{
				Node: 4, Behavior: AdversaryDrop, DropProb: 0.5,
				From: Duration(5 * time.Second), Until: Duration(5 * time.Second),
			}}
		}, "window"},
		{"inverted adversary window", func(s *Spec) {
			s.Adversaries = []Adversary{{
				Node: 4, Behavior: AdversaryDrop, DropProb: 0.5,
				From: Duration(9 * time.Second), Until: Duration(3 * time.Second),
			}}
		}, "window"},
		{"churn exceeding node count", func(s *Spec) {
			s.Churn = &Churn{Nodes: 10, Waves: 2, Period: Duration(time.Second), Down: Duration(time.Second)}
		}, "churn.nodes"},
		{"churn without nodes", func(s *Spec) {
			s.Churn = &Churn{Waves: 2, Period: Duration(time.Second), Down: Duration(time.Second)}
		}, "churn.nodes"},
		{"churn wave flood", func(s *Spec) {
			s.Churn = &Churn{Nodes: 1, Waves: MaxChurnWaves + 1, Period: Duration(time.Second), Down: Duration(time.Second)}
		}, "churn.waves"},
		{"churn without period", func(s *Spec) {
			s.Churn = &Churn{Nodes: 1, Waves: 2, Down: Duration(time.Second)}
		}, "churn.period"},
		{"churn without downtime", func(s *Spec) {
			s.Churn = &Churn{Nodes: 1, Waves: 2, Period: Duration(time.Second)}
		}, "churn.down"},
		{"churn schedule past the horizon bound", func(s *Spec) {
			s.Churn = &Churn{
				Nodes: 1, Waves: MaxChurnWaves,
				Period: MaxDuration / 2, Down: Duration(time.Second),
			}
		}, "churn"},
		{"gossip without rumors", func(s *Spec) {
			s.Traffic = Traffic{Kind: TrafficGossip, Rate: 2}
		}, "rumors"},
		{"gossip rumor flood", func(s *Spec) {
			s.Traffic = Traffic{Kind: TrafficGossip, Rate: 2, Rumors: MaxGossipRumors + 1}
		}, "rumors"},
		{"gossip push flood", func(s *Spec) {
			s.Traffic = Traffic{Kind: TrafficGossip, Rate: 2, Rumors: 1, Pushes: MaxGossipPushes + 1}
		}, "pushes"},
		{"gossip with pairs", func(s *Spec) {
			s.Traffic = Traffic{Kind: TrafficGossip, Rate: 2, Rumors: 1, Pairs: []Pair{{Src: 0, Dst: 1}}}
		}, "pairs"},
		{"gossip with flows", func(s *Spec) {
			s.Traffic = Traffic{Kind: TrafficGossip, Rate: 2, Rumors: 1, Flows: 3}
		}, "flows"},
		{"rumors on poisson traffic", func(s *Spec) {
			s.Traffic.Rumors = 2
		}, "rumors"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := advBase()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("spec validated; want an error naming %q", tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not name %q", err, tc.wantSub)
			}
		})
	}
}

func TestValidateAcceptsAdversarialSpecs(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"full-run dropper (zero until)", func(s *Spec) {
			s.Adversaries = []Adversary{{Node: 4, Behavior: AdversaryDrop, DropProb: 0.5}}
		}},
		{"boundary drop probabilities", func(s *Spec) {
			s.Adversaries = []Adversary{
				{Node: 4, Behavior: AdversaryDrop, DropProb: 0},
				{Node: 5, Behavior: AdversaryDrop, DropProb: 1},
			}
		}},
		{"windowed jammer with default size", func(s *Spec) {
			s.Adversaries = []Adversary{{
				Node: 4, Behavior: AdversaryJam, Rate: 20,
				From: Duration(time.Second), Until: Duration(3 * time.Second),
			}}
		}},
		{"overlapping churn waves", func(s *Spec) {
			s.Churn = &Churn{
				Nodes: 2, Waves: 3,
				Period: Duration(time.Second), Down: Duration(5 * time.Second),
			}
		}},
		{"gossip with default pushes", func(s *Spec) {
			s.Traffic = Traffic{Kind: TrafficGossip, Rate: 2, Rumors: 3}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := advBase()
			tc.mutate(&s)
			if err := s.Validate(); err != nil {
				t.Fatalf("spec rejected: %v", err)
			}
			if _, err := s.Compile(); err != nil {
				t.Fatalf("spec failed to compile: %v", err)
			}
		})
	}
}

func TestCompileLowersGossip(t *testing.T) {
	s := advBase()
	s.Traffic = Traffic{Kind: TrafficGossip, Rate: 2.5, Rumors: 4}
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gossip == nil {
		t.Fatal("gossip traffic compiled without a gossip config")
	}
	if cfg.Gossip.Rumors != 4 || cfg.Gossip.Rate != 2.5 {
		t.Errorf("gossip config = %+v", cfg.Gossip)
	}
	if cfg.Gossip.Pushes != DefaultGossipPushes {
		t.Errorf("pushes = %d, want default %d", cfg.Gossip.Pushes, DefaultGossipPushes)
	}
	if cfg.Flows == nil || len(cfg.Flows) != 0 {
		t.Errorf("gossip must compile an empty non-nil flow list, got %#v", cfg.Flows)
	}
	s.Traffic.Pushes = 7
	cfg, err = s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gossip.Pushes != 7 {
		t.Errorf("explicit pushes = %d, want 7", cfg.Gossip.Pushes)
	}
}

func TestCompileLowersAdversaries(t *testing.T) {
	s := advBase()
	s.Adversaries = []Adversary{
		{Node: 4, Behavior: AdversaryDrop, DropProb: 0.75,
			From: Duration(time.Second), Until: Duration(4 * time.Second)},
		{Node: 2, Behavior: AdversaryJam, Rate: 30, Size: 256},
	}
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	wantD := []world.Dropper{{Node: 4, Prob: 0.75, From: time.Second, Until: 4 * time.Second}}
	wantJ := []world.Jammer{{Node: 2, Rate: 30, Size: 256}}
	if len(cfg.Droppers) != 1 || cfg.Droppers[0] != wantD[0] {
		t.Errorf("droppers = %+v, want %+v", cfg.Droppers, wantD)
	}
	if len(cfg.Jammers) != 1 || cfg.Jammers[0] != wantJ[0] {
		t.Errorf("jammers = %+v, want %+v", cfg.Jammers, wantJ)
	}
}

func TestCompileExpandsChurn(t *testing.T) {
	s := advBase() // 9 terminals
	s.Outages = []Outage{{Node: 8, From: Duration(time.Second), Until: Duration(2 * time.Second)}}
	s.Churn = &Churn{
		Nodes: 4, Waves: 3,
		Period: Duration(6 * time.Second), Down: Duration(5 * time.Second),
		From: Duration(2 * time.Second),
	}
	cfg, err := s.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Outages) != 1+4*3 {
		t.Fatalf("outages = %d, want explicit 1 + churn 12", len(cfg.Outages))
	}
	// The explicit outage leads, untouched.
	if cfg.Outages[0] != (world.Outage{Node: 8, From: time.Second, Until: 2 * time.Second}) {
		t.Errorf("explicit outage perturbed: %+v", cfg.Outages[0])
	}
	// Wave w downs nodes (w*4+k) mod 9 at 2s + w*6s for 5 s each — the
	// rolling frontier wraps back to node 0 partway through wave 2.
	for w := 0; w < 3; w++ {
		start := 2*time.Second + time.Duration(w)*6*time.Second
		for k := 0; k < 4; k++ {
			got := cfg.Outages[1+w*4+k]
			want := world.Outage{Node: (w*4 + k) % 9, From: start, Until: start + 5*time.Second}
			if got != want {
				t.Errorf("churn outage [%d,%d] = %+v, want %+v", w, k, got, want)
			}
		}
	}
}

func TestOutageEdgeCases(t *testing.T) {
	t.Run("zero-length window rejected", func(t *testing.T) {
		s := advBase()
		s.Outages = []Outage{{Node: 1, From: Duration(5 * time.Second), Until: Duration(5 * time.Second)}}
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), "empty") {
			t.Fatalf("zero-length outage window: err = %v, want an \"empty\" rejection", err)
		}
	})
	t.Run("overlapping windows on one node compile", func(t *testing.T) {
		s := advBase()
		s.Outages = []Outage{
			{Node: 1, From: Duration(time.Second), Until: Duration(6 * time.Second)},
			{Node: 1, From: Duration(4 * time.Second), Until: Duration(9 * time.Second)},
		}
		cfg, err := s.Compile()
		if err != nil {
			t.Fatalf("overlapping outage windows rejected: %v", err)
		}
		if len(cfg.Outages) != 2 {
			t.Fatalf("outages = %d, want both windows (the oracle ORs them)", len(cfg.Outages))
		}
	})
	t.Run("outage spanning the final instant compiles", func(t *testing.T) {
		s := advBase()
		s.Duration = Duration(10 * time.Second)
		s.Outages = []Outage{{Node: 1, From: Duration(8 * time.Second), Until: Duration(20 * time.Second)}}
		if _, err := s.Compile(); err != nil {
			t.Fatalf("outage past the horizon rejected: %v", err)
		}
	})
	t.Run("churn spilling past the horizon compiles", func(t *testing.T) {
		s := advBase()
		s.Duration = Duration(10 * time.Second)
		s.Churn = &Churn{
			Nodes: 1, Waves: 4,
			Period: Duration(4 * time.Second), Down: Duration(3 * time.Second),
		}
		// The last wave starts at 12 s, past the 10 s horizon — legal; the
		// oracle simply never gets asked about it.
		if _, err := s.Compile(); err != nil {
			t.Fatalf("churn spilling past the horizon rejected: %v", err)
		}
	})
}

func TestAdversarialSpecsRoundTripJSON(t *testing.T) {
	for _, name := range []string{"gossip-200", "jammer-grid", "churn-storm", "byzantine-drop"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := s.JSON()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		redata, err := back.JSON()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if string(data) != string(redata) {
			t.Errorf("%s JSON round trip diverged:\n%s\nvs\n%s", name, data, redata)
		}
	}
}
