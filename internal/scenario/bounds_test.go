package scenario

import (
	"strings"
	"testing"
	"time"
)

// validBase returns a spec that passes validation, for mutation tests.
func validBase() Spec {
	return Spec{
		Name:     "base",
		Topology: Topology{Kind: TopoChain, N: 5, Spacing: 200},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 1, Rate: 5},
	}
}

func TestSanityBoundsRejectAbsurdSpecs(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Spec)
		wantSub string // the offending field must appear in the error
	}{
		{"huge grid spacing", func(s *Spec) {
			s.Topology = Topology{Kind: TopoGrid, Rows: 2, Cols: 2, Spacing: 1e306}
		}, "spacing"},
		{"huge chain spacing", func(s *Spec) {
			s.Topology.Spacing = 1e9
		}, "spacing"},
		{"huge waypoint field", func(s *Spec) {
			s.Topology = Topology{Kind: TopoWaypoint, N: 5, Width: 1e12, Height: 100}
		}, "width"},
		{"relativistic speed", func(s *Spec) {
			s.Topology = Topology{Kind: TopoWaypoint, N: 5, Width: 100, Height: 100, MeanSpeedKmh: 1e300}
		}, "mean_speed_kmh"},
		{"distant static position", func(s *Spec) {
			s.Topology = Topology{Kind: TopoStatic, Positions: []Point{{X: 0, Y: 0}, {X: 1e308, Y: 0}}}
		}, "positions"},
		{"runaway cluster", func(s *Spec) {
			s.Topology = Topology{Kind: TopoClusters, Clusters: []Cluster{
				{X: 1e300, Y: 0, Radius: 10, Count: 2},
			}}
		}, "cluster"},
		{"too many terminals", func(s *Spec) {
			s.Topology = Topology{Kind: TopoChain, N: MaxNodes + 1, Spacing: 1}
		}, "terminals"},
		{"firehose rate", func(s *Spec) {
			s.Traffic.Rate = 1e12
		}, "rate"},
		{"micrometre range", func(s *Spec) {
			s.RangeM = 1e-300
		}, "range_m"},
		{"kilometre-scale range", func(s *Spec) {
			s.RangeM = 1e9
		}, "range_m"},
		{"geological duration", func(s *Spec) {
			s.Duration = Duration(1000 * 24 * time.Hour)
		}, "duration"},
		{"overflowing flow count", func(s *Spec) {
			// 2*Flows would overflow int64 and go negative; the disjointness
			// check must not be fooled by it.
			s.Traffic.Flows = 1 << 62
		}, "flows"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validBase()
			tc.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("absurd spec validated")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name the offending field (%q)", err, tc.wantSub)
			}
		})
	}
}

func TestAbsurdSpecsDoNotCompile(t *testing.T) {
	// The 1e306 spacing used to pass validation and panic inside the
	// spatial index mid-run; Compile must now refuse it outright.
	s := validBase()
	s.Topology = Topology{Kind: TopoGrid, Rows: 2, Cols: 2, Spacing: 1e306}
	if _, err := s.Compile(); err == nil {
		t.Fatal("Compile accepted a grid the spatial index cannot represent")
	}
}

func TestSaneSpecsStillValidate(t *testing.T) {
	// The bounds must not reject realistic scenarios — the largest
	// built-in (metro-500) and a generous hand-rolled field both pass.
	big := Spec{
		Name: "big",
		Topology: Topology{
			Kind: TopoWaypoint, N: 1000, Width: 10_000, Height: 10_000, MeanSpeedKmh: 120,
		},
		Traffic:  Traffic{Kind: TrafficPoisson, Flows: 100, Rate: 50},
		RangeM:   500,
		Duration: Duration(time.Hour),
	}
	if err := big.Validate(); err != nil {
		t.Fatalf("sane large spec rejected: %v", err)
	}
}
