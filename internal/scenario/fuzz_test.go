package scenario_test

import (
	"math/rand"
	"testing"
	"time"

	"rica"
	"rica/internal/scenario"
)

// The fuzz harness runs whole simulations per input, so every input must
// be cheap: parse, bound the work, run under the invariant harness at a
// truncated horizon. Inputs that fail to parse are the negative half of
// Validate's job and simply end the case; inputs that parse but violate
// a simulation invariant (conservation, ledger agreement, replay
// determinism, packet leak) — or panic — are fuzzing finds.
//
// Serial-use only: rica.VerifyScenario reads the process-global packet
// pool gauge, so nothing here calls t.Parallel.

// verifyUnder runs spec under the invariant harness and fails the test
// with the offending spec attached.
func verifyUnder(t *testing.T, spec rica.Scenario, p rica.Protocol, horizon time.Duration) {
	t.Helper()
	if _, err := rica.VerifyScenario(rica.ScenarioRun{
		Scenario: spec, Protocol: p, MaxDuration: horizon,
	}); err != nil {
		js, _ := spec.JSON()
		t.Fatalf("invariants violated under %s:\n%s\n%v", p, js, err)
	}
}

// tooHeavy bounds the simulation work one fuzz input may demand. The
// engine itself handles far bigger scenarios; a fuzzing round just has
// to execute thousands of inputs, so anything slow is skipped rather
// than simulated. Mutator-generated specs always pass these bounds —
// only hand-mangled corpus bytes land here.
func tooHeavy(s rica.Scenario) bool {
	if s.Topology.NodeCount() > 64 {
		return true
	}
	tr := s.Traffic
	if tr.Rate > 200 || tr.Flows > 16 || len(tr.Pairs) > 16 || tr.Rumors > 16 || tr.Pushes > 16 {
		return true
	}
	// A sub-millisecond burst cycle degenerates into an event storm.
	if tr.Kind == scenario.TrafficOnOff &&
		(tr.On < scenario.Duration(5*time.Millisecond) || tr.Off < scenario.Duration(5*time.Millisecond)) {
		return true
	}
	if len(s.Outages) > 64 || len(s.Adversaries) > 16 {
		return true
	}
	jam := 0.0
	for _, a := range s.Adversaries {
		jam += a.Rate
	}
	if jam > 500 {
		return true
	}
	if c := s.Churn; c != nil && c.Nodes*c.Waves > 2000 {
		return true
	}
	return false
}

// FuzzScenario feeds arbitrary bytes through the JSON parser and runs
// every spec that survives validation under the full invariant harness.
// Seeds cover the adversarial catalog plus mutator-drawn specs; the
// checked-in corpus under testdata/fuzz/FuzzScenario keeps regression
// inputs replaying on every plain `go test`.
func FuzzScenario(f *testing.F) {
	for _, name := range []string{"chain-10", "grid-8x8", "jammer-grid", "byzantine-drop", "churn-storm"} {
		spec, err := scenario.ByName(name)
		if err != nil {
			f.Fatal(err)
		}
		js, err := spec.JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(js)
	}
	rng := rand.New(rand.NewSource(11))
	var m scenario.Mutator
	for i := 0; i < 4; i++ {
		js, err := m.Random(rng).JSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(js)
	}
	protocols := rica.AllProtocols()
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := scenario.ParseJSON(data)
		if err != nil {
			return // rejected inputs are Validate working as intended
		}
		if tooHeavy(spec) {
			return
		}
		// Derive the protocol from the input so the corpus exercises all
		// five protocols without five separate fuzz targets.
		sum := 0
		for _, b := range data {
			sum += int(b)
		}
		verifyUnder(t, spec, protocols[sum%len(protocols)], time.Second)
	})
}

// TestMutatorAlwaysValid pins the mutator's contract: every Random spec
// and every Mutate result validates and compiles, whatever the rng does.
func TestMutatorAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var m scenario.Mutator
	spec := m.Random(rng)
	for i := 0; i < 300; i++ {
		if err := spec.Validate(); err != nil {
			t.Fatalf("iteration %d produced an invalid spec: %v", i, err)
		}
		if _, err := spec.Compile(); err != nil {
			t.Fatalf("iteration %d produced an uncompilable spec: %v", i, err)
		}
		if rng.Intn(4) == 0 {
			spec = m.Random(rng)
		} else {
			spec = m.Mutate(spec, rng)
		}
	}
}

// TestMutatorIsReproducible pins that equal rng seeds replay the same
// spec stream — a fuzzing failure can always be re-derived.
func TestMutatorIsReproducible(t *testing.T) {
	var m scenario.Mutator
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	sa, sb := m.Random(a), m.Random(b)
	for i := 0; i < 50; i++ {
		ja, _ := sa.JSON()
		jb, _ := sb.JSON()
		if string(ja) != string(jb) {
			t.Fatalf("iteration %d diverged:\n%s\nvs\n%s", i, ja, jb)
		}
		sa, sb = m.Mutate(sa, a), m.Mutate(sb, b)
	}
}

// TestFuzzerMutationSweep is the sweep the CI fuzz-smoke job cannot
// afford per input: 500+ mutated specs, every one validated, compiled,
// and executed twice under the invariant harness. Zero panics, zero
// violations.
func TestFuzzerMutationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("hundreds of verified simulations")
	}
	const sweep = 520
	rng := rand.New(rand.NewSource(7))
	var m scenario.Mutator
	var pool []rica.Scenario
	for _, name := range []string{"chain-10", "grid-8x8", "hotspot-burst", "byzantine-drop"} {
		spec, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, spec)
	}
	for i := 0; i < 4; i++ {
		pool = append(pool, m.Random(rng))
	}
	protocols := rica.AllProtocols()
	for i := 0; i < sweep; i++ {
		spec := m.Mutate(pool[rng.Intn(len(pool))], rng)
		if err := spec.Validate(); err != nil {
			t.Fatalf("mutant %d failed validation: %v", i, err)
		}
		verifyUnder(t, spec, protocols[i%len(protocols)], 800*time.Millisecond)
		// Occasionally graft the mutant back into the pool so mutation
		// chains compound instead of orbiting the same bases.
		if rng.Intn(4) == 0 {
			pool[rng.Intn(len(pool))] = spec
		}
	}
}
