package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Fuzz-sweep bounds. Validate's sanity limits (MaxNodes, MaxRate, ...)
// keep specs simulable at all; these much tighter caps keep a *fuzzing
// round* simulable — every repaired spec stays small enough that one
// run finishes in milliseconds, so a corpus of hundreds sweeps in
// seconds. Mutator.repair clamps into these.
const (
	fuzzMaxNodes   = 20
	fuzzMaxFlows   = 4
	fuzzMaxRate    = 40.0
	fuzzMaxRumors  = 8
	fuzzMaxPushes  = 8
	fuzzMaxWaves   = 6
	fuzzMaxHorizon = Duration(2 * time.Second)
)

// Mutator generates and perturbs scenario specs for property-based
// testing. Random draws a fresh well-formed spec; Mutate applies a few
// random edits to an existing one. Both funnel through a repair pass, so
// every returned spec passes Validate — the fuzzer's job is to explore
// the space of *valid* workloads (adversaries, churn, gossip, every
// topology) and assert the simulation invariants hold on each, not to
// re-test Validate's rejections. All randomness comes from the caller's
// rng, so a seeded sweep is reproducible.
type Mutator struct{}

// Random draws a fresh scenario: a random topology kind, traffic kind,
// and a sprinkling of adversaries, churn, and outages.
func (m Mutator) Random(rng *rand.Rand) Spec {
	s := Spec{
		Name:     fmt.Sprintf("fuzz-%08x", rng.Uint32()),
		Duration: Duration(time.Duration(1 + rng.Intn(int(fuzzMaxHorizon)))),
	}
	switch rng.Intn(4) {
	case 0:
		s.Topology = Topology{
			Kind: TopoWaypoint, N: 2 + rng.Intn(fuzzMaxNodes-1),
			Width: 200 + 800*rng.Float64(), Height: 200 + 800*rng.Float64(),
			MeanSpeedKmh: 80 * rng.Float64(),
			Pause:        Duration(time.Duration(rng.Intn(int(2 * time.Second)))),
		}
	case 1:
		s.Topology = Topology{
			Kind: TopoGrid, Rows: 1 + rng.Intn(4), Cols: 2 + rng.Intn(4),
			Spacing: 80 + 150*rng.Float64(),
		}
	case 2:
		s.Topology = Topology{
			Kind: TopoChain, N: 2 + rng.Intn(8), Spacing: 100 + 150*rng.Float64(),
		}
	default:
		nc := 1 + rng.Intn(3)
		t := Topology{Kind: TopoClusters}
		for i := 0; i < nc; i++ {
			t.Clusters = append(t.Clusters, Cluster{
				X: 500 * rng.Float64(), Y: 500 * rng.Float64(),
				Radius: 50 + 100*rng.Float64(), Count: 1 + rng.Intn(6),
			})
		}
		s.Topology = t
	}
	s.Traffic = Traffic{
		Kind: []TrafficKind{TrafficPoisson, TrafficCBR, TrafficOnOff, TrafficGossip}[rng.Intn(4)],
		Rate: 1 + (fuzzMaxRate-1)*rng.Float64(),
	}
	for rng.Intn(3) == 0 {
		m.addAdversary(&s, rng)
	}
	if rng.Intn(4) == 0 {
		m.addChurn(&s, rng)
	}
	if rng.Intn(4) == 0 {
		m.addOutage(&s, rng)
	}
	m.repair(&s, rng)
	return s
}

// Mutate deep-copies spec, applies one to three random edits, and
// repairs the result back into validity.
func (m Mutator) Mutate(spec Spec, rng *rand.Rand) Spec {
	s := clone(spec)
	for edits := 1 + rng.Intn(3); edits > 0; edits-- {
		mutatorEdits[rng.Intn(len(mutatorEdits))](m, &s, rng)
	}
	m.repair(&s, rng)
	return s
}

type edit func(Mutator, *Spec, *rand.Rand)

// mutatorEdits is the mutation table. Each entry may leave the spec
// invalid — repair cleans up after it — but should steer toward
// interesting shapes rather than noise.
var mutatorEdits = []edit{
	func(_ Mutator, s *Spec, rng *rand.Rand) { // resize the population
		switch s.Topology.Kind {
		case TopoGrid:
			s.Topology.Rows += rng.Intn(3) - 1
			s.Topology.Cols += rng.Intn(3) - 1
		case TopoClusters:
			if len(s.Topology.Clusters) > 0 {
				s.Topology.Clusters[rng.Intn(len(s.Topology.Clusters))].Count += rng.Intn(5) - 2
			}
		default:
			s.Topology.N += rng.Intn(7) - 3
		}
	},
	func(_ Mutator, s *Spec, rng *rand.Rand) { // switch topology kind
		kinds := []TopologyKind{TopoWaypoint, TopoGrid, TopoChain, TopoClusters}
		s.Topology.Kind = kinds[rng.Intn(len(kinds))]
	},
	func(_ Mutator, s *Spec, rng *rand.Rand) { // scale the load
		s.Traffic.Rate *= 0.25 + 3*rng.Float64()
	},
	func(_ Mutator, s *Spec, rng *rand.Rand) { // switch traffic kind
		kinds := []TrafficKind{TrafficPoisson, TrafficCBR, TrafficOnOff, TrafficGossip}
		s.Traffic.Kind = kinds[rng.Intn(len(kinds))]
	},
	func(_ Mutator, s *Spec, rng *rand.Rand) { // jiggle gossip shape
		s.Traffic.Kind = TrafficGossip
		s.Traffic.Rumors += rng.Intn(5) - 2
		s.Traffic.Pushes += rng.Intn(5) - 2
	},
	func(m Mutator, s *Spec, rng *rand.Rand) { m.addAdversary(s, rng) },
	func(_ Mutator, s *Spec, rng *rand.Rand) { // drop an adversary
		if len(s.Adversaries) > 0 {
			i := rng.Intn(len(s.Adversaries))
			s.Adversaries = append(s.Adversaries[:i], s.Adversaries[i+1:]...)
		}
	},
	func(_ Mutator, s *Spec, rng *rand.Rand) { // perturb an adversary
		if len(s.Adversaries) == 0 {
			return
		}
		a := &s.Adversaries[rng.Intn(len(s.Adversaries))]
		a.Node += rng.Intn(5) - 2
		switch a.Behavior {
		case AdversaryDrop:
			a.DropProb += 0.4*rng.Float64() - 0.2
		case AdversaryJam:
			a.Rate *= 0.5 + rng.Float64()
			a.Size += rng.Intn(512) - 256
		}
		a.From = Duration(time.Duration(rng.Intn(int(fuzzMaxHorizon))))
		if rng.Intn(2) == 0 {
			a.Until = a.From + Duration(time.Duration(rng.Intn(int(time.Second))))
		} else {
			a.Until = 0
		}
	},
	func(m Mutator, s *Spec, rng *rand.Rand) { m.addChurn(s, rng) },
	func(_ Mutator, s *Spec, _ *rand.Rand) { s.Churn = nil },
	func(m Mutator, s *Spec, rng *rand.Rand) { m.addOutage(s, rng) },
	func(_ Mutator, s *Spec, rng *rand.Rand) { // stretch or shrink the horizon
		s.Duration = Duration(time.Duration(1 + rng.Intn(int(fuzzMaxHorizon))))
	},
	func(_ Mutator, s *Spec, rng *rand.Rand) { // pin explicit pairs
		s.Traffic.Pairs = append(s.Traffic.Pairs, Pair{Src: rng.Intn(30), Dst: rng.Intn(30)})
	},
	func(_ Mutator, s *Spec, rng *rand.Rand) { // radio/buffer overrides
		s.RangeM = 100 + 300*rng.Float64()
		s.BufferCap = rng.Intn(20)
		s.BufferLifetime = Duration(time.Duration(rng.Intn(int(2 * time.Second))))
	},
}

func (m Mutator) addAdversary(s *Spec, rng *rand.Rand) {
	a := Adversary{Node: rng.Intn(30)}
	if rng.Intn(2) == 0 {
		a.Behavior = AdversaryDrop
		a.DropProb = rng.Float64()
	} else {
		a.Behavior = AdversaryJam
		a.Rate = 1 + 40*rng.Float64()
		a.Size = rng.Intn(1024)
	}
	s.Adversaries = append(s.Adversaries, a)
}

func (Mutator) addChurn(s *Spec, rng *rand.Rand) {
	s.Churn = &Churn{
		Nodes: 1 + rng.Intn(4), Waves: 1 + rng.Intn(fuzzMaxWaves),
		Period: Duration(time.Duration(1 + rng.Intn(int(500*time.Millisecond)))),
		Down:   Duration(time.Duration(1 + rng.Intn(int(500*time.Millisecond)))),
		From:   Duration(time.Duration(rng.Intn(int(time.Second)))),
	}
}

func (Mutator) addOutage(s *Spec, rng *rand.Rand) {
	from := Duration(time.Duration(rng.Intn(int(fuzzMaxHorizon))))
	s.Outages = append(s.Outages, Outage{
		Node: rng.Intn(30), From: from,
		Until: from + Duration(time.Duration(1+rng.Intn(int(time.Second)))),
	})
}

// repair clamps a (possibly mangled) spec back into Validate's good
// graces without discarding the mutation's intent: counts and rates are
// clamped, dangling node references are wrapped onto real terminals,
// windows are re-ordered, and kind-specific fields that would be
// rejected on the current kind are cleared. Repaired specs always
// validate; TestMutatorAlwaysValid holds it to that.
func (Mutator) repair(s *Spec, rng *rand.Rand) {
	if s.Name == "" {
		s.Name = fmt.Sprintf("fuzz-%08x", rng.Uint32())
	}
	t := &s.Topology
	switch t.Kind {
	case TopoGrid:
		t.Rows = clampInt(t.Rows, 1, 5)
		t.Cols = clampInt(t.Cols, 1, 5)
		if t.Rows*t.Cols < 2 {
			t.Cols = 2
		}
		t.Spacing = clampF(t.Spacing, 50, 300)
	case TopoChain:
		t.N = clampInt(t.N, 2, fuzzMaxNodes)
		t.Spacing = clampF(t.Spacing, 50, 300)
	case TopoClusters:
		if len(t.Clusters) == 0 {
			t.Clusters = []Cluster{{X: 200, Y: 200, Radius: 100, Count: 4}}
		}
		total := 0
		for i := range t.Clusters {
			c := &t.Clusters[i]
			c.Count = clampInt(c.Count, 1, 8)
			c.Radius = clampF(c.Radius, 30, 200)
			c.X = clampF(c.X, -1000, 1000)
			c.Y = clampF(c.Y, -1000, 1000)
			total += c.Count
		}
		if total < 2 {
			t.Clusters[0].Count = 2
		}
	default:
		t.Kind = TopoWaypoint
		t.N = clampInt(t.N, 2, fuzzMaxNodes)
		t.Width = clampF(t.Width, 100, 2000)
		t.Height = clampF(t.Height, 100, 2000)
		t.MeanSpeedKmh = clampF(t.MeanSpeedKmh, 0, 100)
		t.Pause = clampD(t.Pause, 0, Duration(5*time.Second))
	}
	n := t.NodeCount()

	tr := &s.Traffic
	tr.Rate = clampF(tr.Rate, 0.5, fuzzMaxRate)
	switch tr.Kind {
	case TrafficGossip:
		tr.Rumors = clampInt(tr.Rumors, 1, fuzzMaxRumors)
		tr.Pushes = clampInt(tr.Pushes, 0, fuzzMaxPushes)
		tr.Pairs, tr.Flows = nil, 0
		tr.On, tr.Off = 0, 0
	case TrafficOnOff:
		tr.Rumors, tr.Pushes = 0, 0
		tr.On = clampD(tr.On, Duration(10*time.Millisecond), Duration(time.Second))
		tr.Off = clampD(tr.Off, Duration(10*time.Millisecond), Duration(time.Second))
		repairFlows(tr, n, rng)
	case TrafficCBR:
		tr.Rumors, tr.Pushes = 0, 0
		tr.On, tr.Off = 0, 0
		repairFlows(tr, n, rng)
	default:
		tr.Kind = TrafficPoisson
		tr.Rumors, tr.Pushes = 0, 0
		tr.On, tr.Off = 0, 0
		repairFlows(tr, n, rng)
	}

	for i := range s.Outages {
		o := &s.Outages[i]
		o.Node = wrapNode(o.Node, n)
		o.From = clampD(o.From, 0, fuzzMaxHorizon)
		if o.Until <= o.From {
			o.Until = o.From + Duration(100*time.Millisecond)
		}
	}
	for i := range s.Adversaries {
		a := &s.Adversaries[i]
		a.Node = wrapNode(a.Node, n)
		switch a.Behavior {
		case AdversaryJam:
			a.Rate = clampF(a.Rate, 1, 60)
			a.Size = clampInt(a.Size, 0, MaxJamBytes)
			a.DropProb = 0
		default:
			a.Behavior = AdversaryDrop
			if math.IsNaN(a.DropProb) {
				a.DropProb = 0.5
			}
			a.DropProb = clampF(a.DropProb, 0, 1)
			a.Rate, a.Size = 0, 0
		}
		a.From = clampD(a.From, 0, fuzzMaxHorizon)
		if a.Until != 0 && a.Until <= a.From {
			a.Until = a.From + Duration(100*time.Millisecond)
		}
		a.Until = clampD(a.Until, 0, fuzzMaxHorizon+Duration(time.Second))
	}
	if c := s.Churn; c != nil {
		c.Nodes = clampInt(c.Nodes, 1, n)
		c.Waves = clampInt(c.Waves, 1, fuzzMaxWaves)
		c.Period = clampD(c.Period, Duration(10*time.Millisecond), Duration(time.Second))
		c.Down = clampD(c.Down, Duration(10*time.Millisecond), Duration(time.Second))
		c.From = clampD(c.From, 0, fuzzMaxHorizon)
	}

	if s.RangeM != 0 {
		s.RangeM = clampF(s.RangeM, MinRangeM, 1000)
	}
	s.BufferCap = clampInt(s.BufferCap, 0, 50)
	s.BufferLifetime = clampD(s.BufferLifetime, 0, Duration(3*time.Second))
	s.Duration = clampD(s.Duration, Duration(50*time.Millisecond), fuzzMaxHorizon)
}

// repairFlows settles the flow count for pair-or-flow traffic kinds:
// explicit pairs are wrapped onto real distinct terminals, and without
// pairs the flow count lands in [1, n/2] (disjoint pairs must fit).
func repairFlows(tr *Traffic, n int, rng *rand.Rand) {
	for i := 0; i < len(tr.Pairs); i++ {
		p := &tr.Pairs[i]
		p.Src = wrapNode(p.Src, n)
		p.Dst = wrapNode(p.Dst, n)
		if p.Src == p.Dst {
			p.Dst = (p.Dst + 1) % n
		}
	}
	if len(tr.Pairs) > 0 {
		tr.Flows = 0
		return
	}
	tr.Flows = clampInt(tr.Flows, 1, max(1, min(fuzzMaxFlows, n/2)))
	_ = rng
}

// clone deep-copies a spec so mutations never alias the original's
// slices or churn block.
func clone(s Spec) Spec {
	c := s
	c.Topology.Clusters = append([]Cluster(nil), s.Topology.Clusters...)
	c.Topology.Positions = append([]Point(nil), s.Topology.Positions...)
	c.Traffic.Pairs = append([]Pair(nil), s.Traffic.Pairs...)
	c.Outages = append([]Outage(nil), s.Outages...)
	c.Adversaries = append([]Adversary(nil), s.Adversaries...)
	if s.Churn != nil {
		ch := *s.Churn
		c.Churn = &ch
	}
	return c
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v, lo, hi float64) float64 {
	if !(v >= lo) { // NaN lands on lo
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampD(v, lo, hi Duration) Duration {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// wrapNode maps any int onto a real terminal id in [0, n).
func wrapNode(v, n int) int {
	v %= n
	if v < 0 {
		v += n
	}
	return v
}
