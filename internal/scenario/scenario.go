// Package scenario provides a declarative description of simulation
// workloads. A Spec names a topology (mobile waypoint field, static grid,
// chain, clusters, or scripted positions), a traffic pattern (Poisson,
// CBR, or bursty on-off), an optional node failure/heal schedule, and
// channel/buffer overrides, and compiles down to a ready-to-run
// world.Config. Specs serialize to JSON, so scenarios can be stored,
// shared, and mass-executed by the batch engine; a registry of named
// built-ins covers the paper's baseline and a spread of stress cases.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"rica/internal/geom"
	"rica/internal/traffic"
	"rica/internal/world"
)

// Duration is a time.Duration that serializes as a human-readable string
// ("90s", "2m"); decoding also accepts a bare number of seconds.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("scenario: duration must be a string or seconds: %s", b)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// TopologyKind selects how terminals are placed (and whether they move).
type TopologyKind string

// The supported topology kinds.
const (
	TopoWaypoint TopologyKind = "waypoint" // random-waypoint mobility in a field
	TopoGrid     TopologyKind = "grid"     // static Rows×Cols lattice
	TopoChain    TopologyKind = "chain"    // static line of N terminals
	TopoClusters TopologyKind = "clusters" // static hotspot clusters
	TopoStatic   TopologyKind = "static"   // scripted positions
)

// Topology describes terminal placement. Only the fields of the selected
// Kind are consulted; Validate rejects kind/field mismatches that matter.
type Topology struct {
	Kind TopologyKind `json:"kind"`

	// Waypoint fields. Pause is the waypoint dwell time, applied as
	// written — zero (or omitted) means terminals move continuously, with
	// no hidden fallback to the paper's 3 s.
	N            int      `json:"n,omitempty"`
	Width        float64  `json:"width,omitempty"`
	Height       float64  `json:"height,omitempty"`
	MeanSpeedKmh float64  `json:"mean_speed_kmh,omitempty"`
	Pause        Duration `json:"pause,omitempty"`

	// Grid fields (N is Rows×Cols implicitly).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Spacing separates adjacent grid columns/rows and chain neighbours,
	// in metres.
	Spacing float64 `json:"spacing,omitempty"`

	// Cluster fields.
	Clusters []Cluster `json:"clusters,omitempty"`

	// Static fields.
	Positions []Point `json:"positions,omitempty"`
}

// Cluster is one static hotspot: Count terminals packed in a disc.
type Cluster struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Radius float64 `json:"radius"`
	Count  int     `json:"count"`
}

// Point is a scripted terminal position in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// NodeCount reports how many terminals the topology places.
func (t Topology) NodeCount() int {
	switch t.Kind {
	case TopoWaypoint:
		return t.N
	case TopoGrid:
		return t.Rows * t.Cols
	case TopoChain:
		return t.N
	case TopoClusters:
		n := 0
		for _, c := range t.Clusters {
			n += c.Count
		}
		return n
	case TopoStatic:
		return len(t.Positions)
	default:
		return 0
	}
}

// TrafficKind selects the workload's arrival process.
type TrafficKind string

// The supported traffic kinds.
const (
	TrafficPoisson TrafficKind = "poisson"
	TrafficCBR     TrafficKind = "cbr"
	TrafficOnOff   TrafficKind = "onoff"
	TrafficGossip  TrafficKind = "gossip" // epidemic push-rumor dissemination
)

// pattern maps the kind to the traffic package's arrival process.
func (k TrafficKind) pattern() traffic.Pattern {
	switch k {
	case TrafficCBR:
		return traffic.CBR
	case TrafficOnOff:
		return traffic.OnOff
	default:
		return traffic.Poisson
	}
}

// Pair pins one flow's endpoints.
type Pair struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Traffic describes the offered load.
type Traffic struct {
	Kind TrafficKind `json:"kind"`
	// Flows is the number of random disjoint source/destination pairs to
	// draw per trial; ignored when Pairs pins the endpoints explicitly.
	Flows int `json:"flows,omitempty"`
	// Rate is packets/s per flow (during On windows for onoff traffic).
	Rate float64 `json:"rate"`
	// Pairs, when non-empty, pins every flow's endpoints.
	Pairs []Pair `json:"pairs,omitempty"`
	// On and Off set the burst cycle of onoff traffic.
	On  Duration `json:"on,omitempty"`
	Off Duration `json:"off,omitempty"`
	// Rumors and Pushes shape gossip traffic: Rumors independent
	// epidemics are seeded at random terminals, and every infected
	// terminal pushes each rumor to Pushes random targets at Rate
	// pushes/s. Gossip needs no flows or pairs — the pushes are the
	// workload.
	Rumors int `json:"rumors,omitempty"`
	Pushes int `json:"pushes,omitempty"`
}

// Outage schedules one node failure: the terminal's radio is silent
// during [From, Until) and heals at Until.
type Outage struct {
	Node  int      `json:"node"`
	From  Duration `json:"from"`
	Until Duration `json:"until"`
}

// AdversaryKind selects a misbehaviour.
type AdversaryKind string

// The supported adversary behaviours.
const (
	// AdversaryDrop is a byzantine forwarder: the terminal participates
	// in routing honestly but discards a fraction of the transit data it
	// is asked to relay.
	AdversaryDrop AdversaryKind = "drop"
	// AdversaryJam is an always-on noise source: the terminal puts
	// periodic carrier bursts on the common channel, ignoring CSMA,
	// colliding with whatever overlaps them.
	AdversaryJam AdversaryKind = "jam"
)

// Adversary plants one misbehaving terminal. Only the fields of the
// selected Behavior are consulted; the window [From, Until) bounds the
// misbehaviour, with a zero Until meaning the whole run.
type Adversary struct {
	Node     int           `json:"node"`
	Behavior AdversaryKind `json:"behavior"`
	// DropProb is the drop behaviour's per-packet discard probability.
	DropProb float64 `json:"drop_prob,omitempty"`
	// Rate is the jam behaviour's bursts/s; Size the burst's bytes
	// (default packet.SizeJam).
	Rate float64 `json:"rate,omitempty"`
	Size int     `json:"size,omitempty"`
	// From and Until bound the misbehaviour window.
	From  Duration `json:"from,omitempty"`
	Until Duration `json:"until,omitempty"`
}

// Churn generates a storm of short node outages without writing each one
// out: wave w (0-based) starts at From + w×Period and takes down Nodes
// terminals — ids (w×Nodes+k) mod n, a rolling frontier over the node
// set — for Down each. Waves may overlap when Down exceeds Period.
type Churn struct {
	// Nodes is how many terminals each wave takes down.
	Nodes int `json:"nodes"`
	// Waves is how many waves to schedule.
	Waves int `json:"waves"`
	// Period separates consecutive wave starts.
	Period Duration `json:"period"`
	// Down is each victim's outage length.
	Down Duration `json:"down"`
	// From delays the first wave.
	From Duration `json:"from,omitempty"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Topology    Topology `json:"topology"`
	Traffic     Traffic  `json:"traffic"`
	// Outages is the node failure & heal schedule.
	Outages []Outage `json:"outages,omitempty"`
	// Adversaries plants misbehaving terminals (droppers, jammers).
	Adversaries []Adversary `json:"adversaries,omitempty"`
	// Churn schedules a storm of rolling short outages on top of any
	// explicit Outages.
	Churn *Churn `json:"churn,omitempty"`
	// RangeM overrides the radio reception range in metres (default 250).
	RangeM float64 `json:"range_m,omitempty"`
	// BufferCap and BufferLifetime override the store-and-forward buffers
	// (defaults: 10 packets, 3 s).
	BufferCap      int      `json:"buffer_cap,omitempty"`
	BufferLifetime Duration `json:"buffer_lifetime,omitempty"`
	// Duration is the simulated horizon (default: the paper's 500 s).
	Duration Duration `json:"duration,omitempty"`
	// Seed selects the random universe of a standalone run; the batch
	// engine overrides it per cell. Zero keeps the library default.
	Seed int64 `json:"seed,omitempty"`
}

// ParseJSON decodes a Spec from JSON, rejecting unknown fields so typos
// in hand-written scenario files fail loudly, and validates the result.
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// JSON encodes the spec, indented for human editing.
func (s Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Sanity bounds for spec fields. JSON happily expresses a 10^306-metre
// grid spacing or a 10^300 km/h speed; those parse, but downstream the
// spatial index or the mobility model melts (integer-overflow panics,
// unbounded rebuild loops). Validation rejects them up front, naming the
// offending field, so a bad spec is an error message and never a panic.
const (
	// MaxNodes bounds how many terminals a topology may place.
	MaxNodes = 100_000
	// MaxCoordM bounds every coordinate and extent in metres (50 km —
	// far beyond any ad hoc radio deployment).
	MaxCoordM = 50_000
	// MaxSpeedKmh bounds the waypoint mean speed.
	MaxSpeedKmh = 1_000
	// MaxRate bounds the per-flow offered load in packets/s.
	MaxRate = 100_000
	// MaxDuration bounds the horizon and every schedule timestamp.
	MaxDuration = Duration(24 * time.Hour)
	// MinRangeM and MaxRangeM bound the radio range override: the range
	// is also the spatial index's cell size, so a micrometre range would
	// explode the cell count.
	MinRangeM = 10
	MaxRangeM = 10_000
	// MaxGossipRumors bounds how many epidemics gossip traffic seeds.
	MaxGossipRumors = 256
	// MaxGossipPushes bounds each infection's push budget.
	MaxGossipPushes = 64
	// MaxChurnWaves bounds the churn storm's wave count.
	MaxChurnWaves = 10_000
	// MaxJamBytes bounds one jam burst (32× the jam default — half a
	// second of carrier at 250 kbps, already far past plausible).
	MaxJamBytes = 4_096
)

// Validate checks the spec for structural errors. A valid spec always
// compiles — and runs without panicking: besides shape checks (topology
// and traffic kinds, endpoint ranges), validation enforces the package's
// sanity bounds on sizes, coordinates, speeds, rates, and durations.
func (s Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: "+format, append([]any{s.Name}, args...)...)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	n := s.Topology.NodeCount()
	if n > MaxNodes {
		return fail("topology places %d terminals; max %d", n, MaxNodes)
	}
	switch s.Topology.Kind {
	case TopoWaypoint:
		if s.Topology.N < 2 {
			return fail("waypoint topology needs n ≥ 2, got %d", s.Topology.N)
		}
		if s.Topology.Width <= 0 || s.Topology.Height <= 0 {
			return fail("waypoint topology needs a positive field, got %g×%g",
				s.Topology.Width, s.Topology.Height)
		}
		if s.Topology.Width > MaxCoordM || s.Topology.Height > MaxCoordM {
			return fail("topology.width/height %g×%g exceeds the %d m bound",
				s.Topology.Width, s.Topology.Height, MaxCoordM)
		}
		if s.Topology.MeanSpeedKmh < 0 {
			return fail("negative mean speed %g", s.Topology.MeanSpeedKmh)
		}
		if s.Topology.MeanSpeedKmh > MaxSpeedKmh {
			return fail("topology.mean_speed_kmh %g exceeds the %d km/h bound",
				s.Topology.MeanSpeedKmh, MaxSpeedKmh)
		}
		if s.Topology.Pause < 0 {
			return fail("negative pause %v", time.Duration(s.Topology.Pause))
		}
		if s.Topology.Pause > MaxDuration {
			return fail("topology.pause %v exceeds the %v bound",
				time.Duration(s.Topology.Pause), time.Duration(MaxDuration))
		}
	case TopoGrid:
		if s.Topology.Rows < 1 || s.Topology.Cols < 1 ||
			s.Topology.Rows > MaxNodes || s.Topology.Cols > MaxNodes || n < 2 || n > MaxNodes {
			return fail("grid topology needs 2 ≤ rows×cols ≤ %d, got %d×%d",
				MaxNodes, s.Topology.Rows, s.Topology.Cols)
		}
		if s.Topology.Spacing <= 0 {
			return fail("grid topology needs positive spacing")
		}
		if extent := s.Topology.Spacing * float64(max(s.Topology.Rows, s.Topology.Cols)-1); extent > MaxCoordM {
			return fail("topology.spacing %g m spans %g m; the grid must fit in %d m",
				s.Topology.Spacing, extent, MaxCoordM)
		}
	case TopoChain:
		if s.Topology.N < 2 {
			return fail("chain topology needs n ≥ 2, got %d", s.Topology.N)
		}
		if s.Topology.Spacing <= 0 {
			return fail("chain topology needs positive spacing")
		}
		if extent := s.Topology.Spacing * float64(s.Topology.N-1); extent > MaxCoordM {
			return fail("topology.spacing %g m spans %g m; the chain must fit in %d m",
				s.Topology.Spacing, extent, MaxCoordM)
		}
	case TopoClusters:
		if len(s.Topology.Clusters) == 0 || n < 2 {
			return fail("clusters topology needs clusters totalling ≥ 2 terminals")
		}
		for i, c := range s.Topology.Clusters {
			if c.Count < 1 || c.Radius <= 0 {
				return fail("cluster %d needs count ≥ 1 and positive radius", i)
			}
			if math.Abs(c.X)+c.Radius > MaxCoordM || math.Abs(c.Y)+c.Radius > MaxCoordM {
				return fail("cluster %d (x=%g y=%g radius=%g) reaches beyond the %d m bound",
					i, c.X, c.Y, c.Radius, MaxCoordM)
			}
		}
	case TopoStatic:
		if n < 2 {
			return fail("static topology needs ≥ 2 positions, got %d", n)
		}
		for i, p := range s.Topology.Positions {
			if math.Abs(p.X) > MaxCoordM || math.Abs(p.Y) > MaxCoordM {
				return fail("positions[%d] (%g, %g) outside the ±%d m bound", i, p.X, p.Y, MaxCoordM)
			}
		}
	default:
		return fail("unknown topology kind %q", s.Topology.Kind)
	}

	switch s.Traffic.Kind {
	case TrafficPoisson, TrafficCBR:
	case TrafficOnOff:
		if s.Traffic.On <= 0 || s.Traffic.Off <= 0 {
			return fail("onoff traffic needs positive on and off windows")
		}
		if s.Traffic.On > MaxDuration || s.Traffic.Off > MaxDuration {
			return fail("traffic.on/off windows exceed the %v bound", time.Duration(MaxDuration))
		}
	case TrafficGossip:
		if s.Traffic.Rumors < 1 || s.Traffic.Rumors > MaxGossipRumors {
			return fail("gossip traffic needs 1 ≤ rumors ≤ %d, got %d",
				MaxGossipRumors, s.Traffic.Rumors)
		}
		if s.Traffic.Pushes < 0 || s.Traffic.Pushes > MaxGossipPushes {
			return fail("traffic.pushes %d outside [0, %d]", s.Traffic.Pushes, MaxGossipPushes)
		}
		if len(s.Traffic.Pairs) > 0 {
			return fail("gossip traffic draws its own targets; pairs must be empty")
		}
		if s.Traffic.Flows != 0 {
			return fail("gossip traffic needs no flows (the pushes are the workload), got %d",
				s.Traffic.Flows)
		}
	default:
		return fail("unknown traffic kind %q", s.Traffic.Kind)
	}
	if s.Traffic.Kind != TrafficGossip && (s.Traffic.Rumors != 0 || s.Traffic.Pushes != 0) {
		return fail("traffic.rumors/pushes only apply to gossip traffic, kind is %q", s.Traffic.Kind)
	}
	if s.Traffic.Rate <= 0 {
		return fail("traffic rate must be positive, got %g", s.Traffic.Rate)
	}
	if s.Traffic.Rate > MaxRate {
		return fail("traffic.rate %g exceeds the %d packets/s bound", s.Traffic.Rate, MaxRate)
	}
	if len(s.Traffic.Pairs) == 0 && s.Traffic.Kind != TrafficGossip {
		if s.Traffic.Flows < 1 {
			return fail("traffic needs flows ≥ 1 or explicit pairs")
		}
		// Flows > n/2 rather than 2*Flows > n: the multiplication would
		// overflow for absurd (but parseable) flow counts and wave them
		// through.
		if s.Traffic.Flows > n/2 {
			return fail("%d disjoint flows need 2×%d terminals, topology has %d",
				s.Traffic.Flows, s.Traffic.Flows, n)
		}
	}
	for i, p := range s.Traffic.Pairs {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n || p.Src == p.Dst {
			return fail("pair %d (%d→%d) out of range for %d terminals", i, p.Src, p.Dst, n)
		}
	}
	for i, o := range s.Outages {
		if o.Node < 0 || o.Node >= n {
			return fail("outage %d names terminal %d of %d", i, o.Node, n)
		}
		if o.Until <= o.From {
			return fail("outage %d window [%v, %v) is empty", i,
				time.Duration(o.From), time.Duration(o.Until))
		}
		if o.From > MaxDuration || o.Until > MaxDuration {
			return fail("outage %d window exceeds the %v bound", i, time.Duration(MaxDuration))
		}
	}
	for i, a := range s.Adversaries {
		if a.Node < 0 || a.Node >= n {
			return fail("adversaries[%d].node names terminal %d of %d", i, a.Node, n)
		}
		switch a.Behavior {
		case AdversaryDrop:
			// !(p ∈ [0,1]) rather than p < 0 || p > 1, so a NaN drop_prob
			// (which compares false against everything) is rejected too.
			if !(a.DropProb >= 0 && a.DropProb <= 1) {
				return fail("adversaries[%d].drop_prob %g outside [0, 1]", i, a.DropProb)
			}
			if a.Rate != 0 || a.Size != 0 {
				return fail("adversaries[%d]: rate/size only apply to jam behaviour", i)
			}
		case AdversaryJam:
			if !(a.Rate > 0 && a.Rate <= MaxRate) {
				return fail("adversaries[%d].rate %g outside (0, %d] bursts/s", i, a.Rate, MaxRate)
			}
			if a.Size < 0 || a.Size > MaxJamBytes {
				return fail("adversaries[%d].size %d outside [0, %d] bytes", i, a.Size, MaxJamBytes)
			}
			if a.DropProb != 0 {
				return fail("adversaries[%d]: drop_prob only applies to drop behaviour", i)
			}
		default:
			return fail("adversaries[%d]: unknown behavior %q (have drop, jam)", i, a.Behavior)
		}
		if a.From < 0 || a.Until < 0 {
			return fail("adversaries[%d] window has a negative bound", i)
		}
		if a.Until != 0 && a.Until <= a.From {
			return fail("adversaries[%d] window [%v, %v) is empty", i,
				time.Duration(a.From), time.Duration(a.Until))
		}
		if a.From > MaxDuration || a.Until > MaxDuration {
			return fail("adversaries[%d] window exceeds the %v bound", i, time.Duration(MaxDuration))
		}
	}
	if c := s.Churn; c != nil {
		if c.Nodes < 1 {
			return fail("churn.nodes must be ≥ 1, got %d", c.Nodes)
		}
		if c.Nodes > n {
			return fail("churn.nodes %d exceeds the topology's %d terminals", c.Nodes, n)
		}
		if c.Waves < 1 || c.Waves > MaxChurnWaves {
			return fail("churn.waves %d outside [1, %d]", c.Waves, MaxChurnWaves)
		}
		if c.Period <= 0 || c.Period > MaxDuration {
			return fail("churn.period %v outside (0, %v]",
				time.Duration(c.Period), time.Duration(MaxDuration))
		}
		if c.Down <= 0 || c.Down > MaxDuration {
			return fail("churn.down %v outside (0, %v]",
				time.Duration(c.Down), time.Duration(MaxDuration))
		}
		if c.From < 0 || c.From > MaxDuration {
			return fail("churn.from %v outside [0, %v]",
				time.Duration(c.From), time.Duration(MaxDuration))
		}
		// The storm's last heal must land within the timestamp bound.
		// Computed in float64 so a near-MaxInt64 period times 10^4 waves
		// can't overflow its way past the check.
		end := float64(c.From) + float64(c.Waves-1)*float64(c.Period) + float64(c.Down)
		if end > float64(MaxDuration) {
			return fail("churn schedule ends at %g s, beyond the %v bound",
				end/float64(time.Second), time.Duration(MaxDuration))
		}
	}
	if s.RangeM < 0 || s.BufferCap < 0 || s.Duration < 0 {
		return fail("negative override")
	}
	if s.RangeM != 0 && (s.RangeM < MinRangeM || s.RangeM > MaxRangeM) {
		return fail("range_m %g outside the sane [%d, %d] m window", s.RangeM, MinRangeM, MaxRangeM)
	}
	if s.Duration > MaxDuration {
		return fail("duration %v exceeds the %v bound", time.Duration(s.Duration), time.Duration(MaxDuration))
	}
	if s.BufferLifetime < 0 || s.BufferLifetime > MaxDuration {
		return fail("buffer_lifetime %v outside [0, %v]",
			time.Duration(s.BufferLifetime), time.Duration(MaxDuration))
	}
	return nil
}

// Compile validates the spec and lowers it to a runnable world
// configuration. Compilation is pure: equal specs compile to equal
// configs, and all randomness stays behind the config's seed.
func (s Spec) Compile() (world.Config, error) {
	if err := s.Validate(); err != nil {
		return world.Config{}, err
	}
	cfg := world.DefaultConfig(s.Topology.MeanSpeedKmh, s.Traffic.Rate)

	switch s.Topology.Kind {
	case TopoWaypoint:
		cfg.N = s.Topology.N
		cfg.Field = geom.Field{Width: s.Topology.Width, Height: s.Topology.Height}
		cfg.Pause = time.Duration(s.Topology.Pause)
	default:
		cfg.StaticPositions = s.Topology.placements()
		cfg.MaxSpeed = 0
	}

	switch {
	case s.Traffic.Kind == TrafficGossip:
		pushes := s.Traffic.Pushes
		if pushes == 0 {
			pushes = DefaultGossipPushes
		}
		cfg.Gossip = &traffic.GossipConfig{
			Rumors: s.Traffic.Rumors, Rate: s.Traffic.Rate, Pushes: pushes,
		}
		cfg.Flows = []traffic.Flow{} // empty but non-nil: no flow workload
	case len(s.Traffic.Pairs) > 0:
		flows := make([]traffic.Flow, len(s.Traffic.Pairs))
		for i, p := range s.Traffic.Pairs {
			flows[i] = traffic.Flow{
				Src: p.Src, Dst: p.Dst, Rate: s.Traffic.Rate,
				Pattern: s.Traffic.Kind.pattern(),
				On:      time.Duration(s.Traffic.On),
				Off:     time.Duration(s.Traffic.Off),
			}
		}
		cfg.Flows = flows
	default:
		cfg.NumFlows = s.Traffic.Flows
		cfg.FlowPattern = s.Traffic.Kind.pattern()
		cfg.FlowOn = time.Duration(s.Traffic.On)
		cfg.FlowOff = time.Duration(s.Traffic.Off)
	}

	if len(s.Outages) > 0 || s.Churn != nil {
		cfg.Outages = make([]world.Outage, len(s.Outages), len(s.Outages)+churnOutages(s.Churn))
		for i, o := range s.Outages {
			cfg.Outages[i] = world.Outage{
				Node: o.Node, From: time.Duration(o.From), Until: time.Duration(o.Until),
			}
		}
		cfg.Outages = appendChurn(cfg.Outages, s.Churn, s.Topology.NodeCount())
	}

	for _, a := range s.Adversaries {
		switch a.Behavior {
		case AdversaryDrop:
			cfg.Droppers = append(cfg.Droppers, world.Dropper{
				Node: a.Node, Prob: a.DropProb,
				From: time.Duration(a.From), Until: time.Duration(a.Until),
			})
		case AdversaryJam:
			cfg.Jammers = append(cfg.Jammers, world.Jammer{
				Node: a.Node, Rate: a.Rate, Size: a.Size,
				From: time.Duration(a.From), Until: time.Duration(a.Until),
			})
		}
	}

	if s.RangeM > 0 {
		cfg.Channel.Range = s.RangeM
	}
	if s.BufferCap > 0 {
		cfg.Node.BufferCap = s.BufferCap
	}
	if s.BufferLifetime > 0 {
		cfg.Node.BufferLifetime = time.Duration(s.BufferLifetime)
	}
	if s.Duration > 0 {
		cfg.Duration = time.Duration(s.Duration)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg, nil
}

// DefaultGossipPushes is the push budget compiled in when a gossip spec
// leaves pushes zero (each infection forwards to three random targets —
// the classic epidemic fan-out).
const DefaultGossipPushes = 3

// churnOutages counts the individual outages a churn storm expands to.
func churnOutages(c *Churn) int {
	if c == nil {
		return 0
	}
	return c.Nodes * c.Waves
}

// appendChurn expands the churn storm into concrete outages: wave w
// (0-based) starts at From + w×Period and takes down terminals
// (w×Nodes+k) mod n for Down each — a rolling frontier that sweeps the
// whole node set and wraps around.
func appendChurn(out []world.Outage, c *Churn, n int) []world.Outage {
	if c == nil {
		return out
	}
	for w := 0; w < c.Waves; w++ {
		start := time.Duration(c.From) + time.Duration(w)*time.Duration(c.Period)
		for k := 0; k < c.Nodes; k++ {
			out = append(out, world.Outage{
				Node:  (w*c.Nodes + k) % n,
				From:  start,
				Until: start + time.Duration(c.Down),
			})
		}
	}
	return out
}

// placements realizes a static topology's terminal positions. Placement
// is fully deterministic (cluster packing uses a golden-angle sunflower
// spiral, not a random draw), so compilation never consumes randomness.
func (t Topology) placements() []geom.Point {
	switch t.Kind {
	case TopoGrid:
		out := make([]geom.Point, 0, t.Rows*t.Cols)
		for r := 0; r < t.Rows; r++ {
			for c := 0; c < t.Cols; c++ {
				out = append(out, geom.Point{
					X: float64(c) * t.Spacing,
					Y: float64(r) * t.Spacing,
				})
			}
		}
		return out
	case TopoChain:
		out := make([]geom.Point, t.N)
		for i := range out {
			out[i] = geom.Point{X: float64(i) * t.Spacing}
		}
		return out
	case TopoClusters:
		var out []geom.Point
		const golden = 2.399963229728653 // radians
		for _, cl := range t.Clusters {
			for k := 0; k < cl.Count; k++ {
				r := cl.Radius * math.Sqrt((float64(k)+0.5)/float64(cl.Count))
				th := float64(k) * golden
				out = append(out, geom.Point{
					X: cl.X + r*math.Cos(th),
					Y: cl.Y + r*math.Sin(th),
				})
			}
		}
		return out
	case TopoStatic:
		out := make([]geom.Point, len(t.Positions))
		for i, p := range t.Positions {
			out[i] = geom.Point{X: p.X, Y: p.Y}
		}
		return out
	default:
		return nil
	}
}
