// Package scenario provides a declarative description of simulation
// workloads. A Spec names a topology (mobile waypoint field, static grid,
// chain, clusters, or scripted positions), a traffic pattern (Poisson,
// CBR, or bursty on-off), an optional node failure/heal schedule, and
// channel/buffer overrides, and compiles down to a ready-to-run
// world.Config. Specs serialize to JSON, so scenarios can be stored,
// shared, and mass-executed by the batch engine; a registry of named
// built-ins covers the paper's baseline and a spread of stress cases.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"time"

	"rica/internal/geom"
	"rica/internal/traffic"
	"rica/internal/world"
)

// Duration is a time.Duration that serializes as a human-readable string
// ("90s", "2m"); decoding also accepts a bare number of seconds.
type Duration time.Duration

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("scenario: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var secs float64
	if err := json.Unmarshal(b, &secs); err != nil {
		return fmt.Errorf("scenario: duration must be a string or seconds: %s", b)
	}
	*d = Duration(secs * float64(time.Second))
	return nil
}

// TopologyKind selects how terminals are placed (and whether they move).
type TopologyKind string

// The supported topology kinds.
const (
	TopoWaypoint TopologyKind = "waypoint" // random-waypoint mobility in a field
	TopoGrid     TopologyKind = "grid"     // static Rows×Cols lattice
	TopoChain    TopologyKind = "chain"    // static line of N terminals
	TopoClusters TopologyKind = "clusters" // static hotspot clusters
	TopoStatic   TopologyKind = "static"   // scripted positions
)

// Topology describes terminal placement. Only the fields of the selected
// Kind are consulted; Validate rejects kind/field mismatches that matter.
type Topology struct {
	Kind TopologyKind `json:"kind"`

	// Waypoint fields. Pause is the waypoint dwell time, applied as
	// written — zero (or omitted) means terminals move continuously, with
	// no hidden fallback to the paper's 3 s.
	N            int      `json:"n,omitempty"`
	Width        float64  `json:"width,omitempty"`
	Height       float64  `json:"height,omitempty"`
	MeanSpeedKmh float64  `json:"mean_speed_kmh,omitempty"`
	Pause        Duration `json:"pause,omitempty"`

	// Grid fields (N is Rows×Cols implicitly).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Spacing separates adjacent grid columns/rows and chain neighbours,
	// in metres.
	Spacing float64 `json:"spacing,omitempty"`

	// Cluster fields.
	Clusters []Cluster `json:"clusters,omitempty"`

	// Static fields.
	Positions []Point `json:"positions,omitempty"`
}

// Cluster is one static hotspot: Count terminals packed in a disc.
type Cluster struct {
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Radius float64 `json:"radius"`
	Count  int     `json:"count"`
}

// Point is a scripted terminal position in metres.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// NodeCount reports how many terminals the topology places.
func (t Topology) NodeCount() int {
	switch t.Kind {
	case TopoWaypoint:
		return t.N
	case TopoGrid:
		return t.Rows * t.Cols
	case TopoChain:
		return t.N
	case TopoClusters:
		n := 0
		for _, c := range t.Clusters {
			n += c.Count
		}
		return n
	case TopoStatic:
		return len(t.Positions)
	default:
		return 0
	}
}

// TrafficKind selects the workload's arrival process.
type TrafficKind string

// The supported traffic kinds.
const (
	TrafficPoisson TrafficKind = "poisson"
	TrafficCBR     TrafficKind = "cbr"
	TrafficOnOff   TrafficKind = "onoff"
)

// pattern maps the kind to the traffic package's arrival process.
func (k TrafficKind) pattern() traffic.Pattern {
	switch k {
	case TrafficCBR:
		return traffic.CBR
	case TrafficOnOff:
		return traffic.OnOff
	default:
		return traffic.Poisson
	}
}

// Pair pins one flow's endpoints.
type Pair struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// Traffic describes the offered load.
type Traffic struct {
	Kind TrafficKind `json:"kind"`
	// Flows is the number of random disjoint source/destination pairs to
	// draw per trial; ignored when Pairs pins the endpoints explicitly.
	Flows int `json:"flows,omitempty"`
	// Rate is packets/s per flow (during On windows for onoff traffic).
	Rate float64 `json:"rate"`
	// Pairs, when non-empty, pins every flow's endpoints.
	Pairs []Pair `json:"pairs,omitempty"`
	// On and Off set the burst cycle of onoff traffic.
	On  Duration `json:"on,omitempty"`
	Off Duration `json:"off,omitempty"`
}

// Outage schedules one node failure: the terminal's radio is silent
// during [From, Until) and heals at Until.
type Outage struct {
	Node  int      `json:"node"`
	From  Duration `json:"from"`
	Until Duration `json:"until"`
}

// Spec is one complete declarative scenario.
type Spec struct {
	Name        string   `json:"name"`
	Description string   `json:"description,omitempty"`
	Topology    Topology `json:"topology"`
	Traffic     Traffic  `json:"traffic"`
	// Outages is the node failure & heal schedule.
	Outages []Outage `json:"outages,omitempty"`
	// RangeM overrides the radio reception range in metres (default 250).
	RangeM float64 `json:"range_m,omitempty"`
	// BufferCap and BufferLifetime override the store-and-forward buffers
	// (defaults: 10 packets, 3 s).
	BufferCap      int      `json:"buffer_cap,omitempty"`
	BufferLifetime Duration `json:"buffer_lifetime,omitempty"`
	// Duration is the simulated horizon (default: the paper's 500 s).
	Duration Duration `json:"duration,omitempty"`
	// Seed selects the random universe of a standalone run; the batch
	// engine overrides it per cell. Zero keeps the library default.
	Seed int64 `json:"seed,omitempty"`
}

// ParseJSON decodes a Spec from JSON, rejecting unknown fields so typos
// in hand-written scenario files fail loudly, and validates the result.
func ParseJSON(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// JSON encodes the spec, indented for human editing.
func (s Spec) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Sanity bounds for spec fields. JSON happily expresses a 10^306-metre
// grid spacing or a 10^300 km/h speed; those parse, but downstream the
// spatial index or the mobility model melts (integer-overflow panics,
// unbounded rebuild loops). Validation rejects them up front, naming the
// offending field, so a bad spec is an error message and never a panic.
const (
	// MaxNodes bounds how many terminals a topology may place.
	MaxNodes = 100_000
	// MaxCoordM bounds every coordinate and extent in metres (50 km —
	// far beyond any ad hoc radio deployment).
	MaxCoordM = 50_000
	// MaxSpeedKmh bounds the waypoint mean speed.
	MaxSpeedKmh = 1_000
	// MaxRate bounds the per-flow offered load in packets/s.
	MaxRate = 100_000
	// MaxDuration bounds the horizon and every schedule timestamp.
	MaxDuration = Duration(24 * time.Hour)
	// MinRangeM and MaxRangeM bound the radio range override: the range
	// is also the spatial index's cell size, so a micrometre range would
	// explode the cell count.
	MinRangeM = 10
	MaxRangeM = 10_000
)

// Validate checks the spec for structural errors. A valid spec always
// compiles — and runs without panicking: besides shape checks (topology
// and traffic kinds, endpoint ranges), validation enforces the package's
// sanity bounds on sizes, coordinates, speeds, rates, and durations.
func (s Spec) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("scenario %q: "+format, append([]any{s.Name}, args...)...)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	n := s.Topology.NodeCount()
	if n > MaxNodes {
		return fail("topology places %d terminals; max %d", n, MaxNodes)
	}
	switch s.Topology.Kind {
	case TopoWaypoint:
		if s.Topology.N < 2 {
			return fail("waypoint topology needs n ≥ 2, got %d", s.Topology.N)
		}
		if s.Topology.Width <= 0 || s.Topology.Height <= 0 {
			return fail("waypoint topology needs a positive field, got %g×%g",
				s.Topology.Width, s.Topology.Height)
		}
		if s.Topology.Width > MaxCoordM || s.Topology.Height > MaxCoordM {
			return fail("topology.width/height %g×%g exceeds the %d m bound",
				s.Topology.Width, s.Topology.Height, MaxCoordM)
		}
		if s.Topology.MeanSpeedKmh < 0 {
			return fail("negative mean speed %g", s.Topology.MeanSpeedKmh)
		}
		if s.Topology.MeanSpeedKmh > MaxSpeedKmh {
			return fail("topology.mean_speed_kmh %g exceeds the %d km/h bound",
				s.Topology.MeanSpeedKmh, MaxSpeedKmh)
		}
		if s.Topology.Pause < 0 {
			return fail("negative pause %v", time.Duration(s.Topology.Pause))
		}
		if s.Topology.Pause > MaxDuration {
			return fail("topology.pause %v exceeds the %v bound",
				time.Duration(s.Topology.Pause), time.Duration(MaxDuration))
		}
	case TopoGrid:
		if s.Topology.Rows < 1 || s.Topology.Cols < 1 ||
			s.Topology.Rows > MaxNodes || s.Topology.Cols > MaxNodes || n < 2 || n > MaxNodes {
			return fail("grid topology needs 2 ≤ rows×cols ≤ %d, got %d×%d",
				MaxNodes, s.Topology.Rows, s.Topology.Cols)
		}
		if s.Topology.Spacing <= 0 {
			return fail("grid topology needs positive spacing")
		}
		if extent := s.Topology.Spacing * float64(max(s.Topology.Rows, s.Topology.Cols)-1); extent > MaxCoordM {
			return fail("topology.spacing %g m spans %g m; the grid must fit in %d m",
				s.Topology.Spacing, extent, MaxCoordM)
		}
	case TopoChain:
		if s.Topology.N < 2 {
			return fail("chain topology needs n ≥ 2, got %d", s.Topology.N)
		}
		if s.Topology.Spacing <= 0 {
			return fail("chain topology needs positive spacing")
		}
		if extent := s.Topology.Spacing * float64(s.Topology.N-1); extent > MaxCoordM {
			return fail("topology.spacing %g m spans %g m; the chain must fit in %d m",
				s.Topology.Spacing, extent, MaxCoordM)
		}
	case TopoClusters:
		if len(s.Topology.Clusters) == 0 || n < 2 {
			return fail("clusters topology needs clusters totalling ≥ 2 terminals")
		}
		for i, c := range s.Topology.Clusters {
			if c.Count < 1 || c.Radius <= 0 {
				return fail("cluster %d needs count ≥ 1 and positive radius", i)
			}
			if math.Abs(c.X)+c.Radius > MaxCoordM || math.Abs(c.Y)+c.Radius > MaxCoordM {
				return fail("cluster %d (x=%g y=%g radius=%g) reaches beyond the %d m bound",
					i, c.X, c.Y, c.Radius, MaxCoordM)
			}
		}
	case TopoStatic:
		if n < 2 {
			return fail("static topology needs ≥ 2 positions, got %d", n)
		}
		for i, p := range s.Topology.Positions {
			if math.Abs(p.X) > MaxCoordM || math.Abs(p.Y) > MaxCoordM {
				return fail("positions[%d] (%g, %g) outside the ±%d m bound", i, p.X, p.Y, MaxCoordM)
			}
		}
	default:
		return fail("unknown topology kind %q", s.Topology.Kind)
	}

	switch s.Traffic.Kind {
	case TrafficPoisson, TrafficCBR:
	case TrafficOnOff:
		if s.Traffic.On <= 0 || s.Traffic.Off <= 0 {
			return fail("onoff traffic needs positive on and off windows")
		}
		if s.Traffic.On > MaxDuration || s.Traffic.Off > MaxDuration {
			return fail("traffic.on/off windows exceed the %v bound", time.Duration(MaxDuration))
		}
	default:
		return fail("unknown traffic kind %q", s.Traffic.Kind)
	}
	if s.Traffic.Rate <= 0 {
		return fail("traffic rate must be positive, got %g", s.Traffic.Rate)
	}
	if s.Traffic.Rate > MaxRate {
		return fail("traffic.rate %g exceeds the %d packets/s bound", s.Traffic.Rate, MaxRate)
	}
	if len(s.Traffic.Pairs) == 0 {
		if s.Traffic.Flows < 1 {
			return fail("traffic needs flows ≥ 1 or explicit pairs")
		}
		// Flows > n/2 rather than 2*Flows > n: the multiplication would
		// overflow for absurd (but parseable) flow counts and wave them
		// through.
		if s.Traffic.Flows > n/2 {
			return fail("%d disjoint flows need 2×%d terminals, topology has %d",
				s.Traffic.Flows, s.Traffic.Flows, n)
		}
	}
	for i, p := range s.Traffic.Pairs {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n || p.Src == p.Dst {
			return fail("pair %d (%d→%d) out of range for %d terminals", i, p.Src, p.Dst, n)
		}
	}
	for i, o := range s.Outages {
		if o.Node < 0 || o.Node >= n {
			return fail("outage %d names terminal %d of %d", i, o.Node, n)
		}
		if o.Until <= o.From {
			return fail("outage %d window [%v, %v) is empty", i,
				time.Duration(o.From), time.Duration(o.Until))
		}
		if o.From > MaxDuration || o.Until > MaxDuration {
			return fail("outage %d window exceeds the %v bound", i, time.Duration(MaxDuration))
		}
	}
	if s.RangeM < 0 || s.BufferCap < 0 || s.Duration < 0 {
		return fail("negative override")
	}
	if s.RangeM != 0 && (s.RangeM < MinRangeM || s.RangeM > MaxRangeM) {
		return fail("range_m %g outside the sane [%d, %d] m window", s.RangeM, MinRangeM, MaxRangeM)
	}
	if s.Duration > MaxDuration {
		return fail("duration %v exceeds the %v bound", time.Duration(s.Duration), time.Duration(MaxDuration))
	}
	if s.BufferLifetime < 0 || s.BufferLifetime > MaxDuration {
		return fail("buffer_lifetime %v outside [0, %v]",
			time.Duration(s.BufferLifetime), time.Duration(MaxDuration))
	}
	return nil
}

// Compile validates the spec and lowers it to a runnable world
// configuration. Compilation is pure: equal specs compile to equal
// configs, and all randomness stays behind the config's seed.
func (s Spec) Compile() (world.Config, error) {
	if err := s.Validate(); err != nil {
		return world.Config{}, err
	}
	cfg := world.DefaultConfig(s.Topology.MeanSpeedKmh, s.Traffic.Rate)

	switch s.Topology.Kind {
	case TopoWaypoint:
		cfg.N = s.Topology.N
		cfg.Field = geom.Field{Width: s.Topology.Width, Height: s.Topology.Height}
		cfg.Pause = time.Duration(s.Topology.Pause)
	default:
		cfg.StaticPositions = s.Topology.placements()
		cfg.MaxSpeed = 0
	}

	if len(s.Traffic.Pairs) > 0 {
		flows := make([]traffic.Flow, len(s.Traffic.Pairs))
		for i, p := range s.Traffic.Pairs {
			flows[i] = traffic.Flow{
				Src: p.Src, Dst: p.Dst, Rate: s.Traffic.Rate,
				Pattern: s.Traffic.Kind.pattern(),
				On:      time.Duration(s.Traffic.On),
				Off:     time.Duration(s.Traffic.Off),
			}
		}
		cfg.Flows = flows
	} else {
		cfg.NumFlows = s.Traffic.Flows
		cfg.FlowPattern = s.Traffic.Kind.pattern()
		cfg.FlowOn = time.Duration(s.Traffic.On)
		cfg.FlowOff = time.Duration(s.Traffic.Off)
	}

	if len(s.Outages) > 0 {
		cfg.Outages = make([]world.Outage, len(s.Outages))
		for i, o := range s.Outages {
			cfg.Outages[i] = world.Outage{
				Node: o.Node, From: time.Duration(o.From), Until: time.Duration(o.Until),
			}
		}
	}

	if s.RangeM > 0 {
		cfg.Channel.Range = s.RangeM
	}
	if s.BufferCap > 0 {
		cfg.Node.BufferCap = s.BufferCap
	}
	if s.BufferLifetime > 0 {
		cfg.Node.BufferLifetime = time.Duration(s.BufferLifetime)
	}
	if s.Duration > 0 {
		cfg.Duration = time.Duration(s.Duration)
	}
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg, nil
}

// placements realizes a static topology's terminal positions. Placement
// is fully deterministic (cluster packing uses a golden-angle sunflower
// spiral, not a random draw), so compilation never consumes randomness.
func (t Topology) placements() []geom.Point {
	switch t.Kind {
	case TopoGrid:
		out := make([]geom.Point, 0, t.Rows*t.Cols)
		for r := 0; r < t.Rows; r++ {
			for c := 0; c < t.Cols; c++ {
				out = append(out, geom.Point{
					X: float64(c) * t.Spacing,
					Y: float64(r) * t.Spacing,
				})
			}
		}
		return out
	case TopoChain:
		out := make([]geom.Point, t.N)
		for i := range out {
			out[i] = geom.Point{X: float64(i) * t.Spacing}
		}
		return out
	case TopoClusters:
		var out []geom.Point
		const golden = 2.399963229728653 // radians
		for _, cl := range t.Clusters {
			for k := 0; k < cl.Count; k++ {
				r := cl.Radius * math.Sqrt((float64(k)+0.5)/float64(cl.Count))
				th := float64(k) * golden
				out = append(out, geom.Point{
					X: cl.X + r*math.Cos(th),
					Y: cl.Y + r*math.Sin(th),
				})
			}
		}
		return out
	case TopoStatic:
		out := make([]geom.Point, len(t.Positions))
		for i, p := range t.Positions {
			out[i] = geom.Point{X: p.X, Y: p.Y}
		}
		return out
	default:
		return nil
	}
}
