package packet_test

import (
	"testing"
	"time"

	"rica"
	"rica/internal/packet"
)

// TestNoPooledPacketLeaksAcrossCatalog runs scenario-catalog cells and
// asserts the process-global pool's live count returns to its baseline:
// every pooled packet a run got was released by delivery, a recorded
// drop, MAC recycling, or the end-of-run drain. A positive residue is a
// genuine leak — some subsystem parked a packet past the horizon without
// implementing drain. Runs are sequential so the live count is exact.
func TestNoPooledPacketLeaksAcrossCatalog(t *testing.T) {
	names := rica.ScenarioNames()
	if testing.Short() {
		names = []string{"chain-10", "partition-heal", "churn-heavy"}
	}
	protocols := rica.AllProtocols()
	for _, name := range names {
		if name == "metro-500" && testing.Short() {
			continue
		}
		spec, err := rica.ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// Shorten the horizon: leak detection needs the full lifecycle
		// (generate, forward, query, drain), not the full duration. The
		// big fields keep only a few seconds so the catalog stays fast.
		d := 8 * time.Second
		if name == "metro-500" {
			d = 2 * time.Second
		}
		spec.Duration = rica.ScenarioDuration(d)
		for _, p := range protocols {
			p := p
			t.Run(name+"/"+p.String(), func(t *testing.T) {
				live0 := packet.Live()
				_, err := rica.RunBatch(rica.BatchConfig{
					Scenarios: []rica.Scenario{spec},
					Protocols: []rica.Protocol{p},
					Trials:    1,
					Workers:   1,
				})
				if err != nil {
					t.Fatal(err)
				}
				if live := packet.Live(); live != live0 {
					t.Fatalf("run leaked %d pooled packets (live %d → %d)",
						live-live0, live0, live)
				}
			})
		}
	}
}
