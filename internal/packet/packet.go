// Package packet defines the packet taxonomy shared by the MAC, network
// and routing layers: data and acknowledgment packets on the CDMA data
// channels, and the routing/control packets that ride the common channel
// (RREQ, RREP, CSI-checking, RUPD, REER, local queries, beacons, LSAs).
//
// Packets are plain in-memory structs — this is a simulator, so there is
// no wire encoding — but every type carries the byte size it would occupy
// on air, because the paper's routing-overhead metric (Figure 4) counts
// transmitted routing bits.
package packet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Type discriminates packets. The zero value is invalid so that a
// forgotten initialization fails loudly.
type Type int

// Packet types. Data and Ack use CDMA data channels; everything else is a
// routing packet on the common channel.
const (
	TypeInvalid Type = iota
	TypeData         // application payload, store-and-forward
	TypeAck          // per-hop data acknowledgment (PN(B,A) code)
	TypeRREQ         // route request flood
	TypeRREP         // route reply, unicast along reverse path
	TypeCSIC         // RICA CSI-checking packet, TTL-scoped broadcast
	TypeRUPD         // RICA route update from the source
	TypeREER         // route error, unicast upstream
	TypeLQ           // localized query (ABR local repair, BGCA partial reroute)
	TypeLREP         // localized query reply
	TypeBeacon       // ABR associativity beacon
	TypeLSA          // link-state advertisement flood
	TypeJam          // adversarial noise burst on the common channel
)

var typeNames = map[Type]string{
	TypeData:   "DATA",
	TypeAck:    "ACK",
	TypeRREQ:   "RREQ",
	TypeRREP:   "RREP",
	TypeCSIC:   "CSIC",
	TypeRUPD:   "RUPD",
	TypeREER:   "REER",
	TypeLQ:     "LQ",
	TypeLREP:   "LREP",
	TypeBeacon: "BEACON",
	TypeLSA:    "LSA",
	TypeJam:    "JAM",
}

// String returns the conventional short name of the type.
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// IsRouting reports whether the type is a routing/control packet, i.e.
// whether its bits count toward the paper's routing-overhead metric when
// transmitted on the common channel. Data ACKs also count toward overhead
// (paper §III.A) but travel on data channels; callers account them there.
func (t Type) IsRouting() bool {
	switch t {
	case TypeRREQ, TypeRREP, TypeCSIC, TypeRUPD, TypeREER, TypeLQ, TypeLREP, TypeBeacon, TypeLSA:
		return true
	default:
		return false
	}
}

// Broadcast is the To value of a link-level broadcast.
const Broadcast = -1

// Default on-air sizes in bytes, patterned after the corresponding IETF
// MANET packet formats (AODV RFC 3561 sizes for RREQ/RREP/RERR; small
// fixed beacons). The data payload size is the paper's 512 bytes.
const (
	SizeData     = 512
	SizeAck      = 8
	SizeRREQ     = 24
	SizeRREP     = 20
	SizeCSIC     = 20
	SizeRUPD     = 16
	SizeREER     = 16
	SizeLQ       = 24
	SizeLREP     = 20
	SizeBeacon   = 12
	SizeLSABase  = 24 // LSA header; add SizeLSAEntry per advertised link
	SizeLSAEntry = 8
	// SizeJam is the default on-air size of an adversarial noise burst:
	// 128 bytes ≈ 4 ms of carrier on the 250 kbps common channel, long
	// enough to destroy any control packet it overlaps.
	SizeJam = 128
)

// SizeOf reports the default on-air size for a packet type. LSA sizes
// depend on the entry count; use LSASize for those.
func SizeOf(t Type) int {
	switch t {
	case TypeData:
		return SizeData
	case TypeAck:
		return SizeAck
	case TypeRREQ:
		return SizeRREQ
	case TypeRREP:
		return SizeRREP
	case TypeCSIC:
		return SizeCSIC
	case TypeRUPD:
		return SizeRUPD
	case TypeREER:
		return SizeREER
	case TypeLQ:
		return SizeLQ
	case TypeLREP:
		return SizeLREP
	case TypeBeacon:
		return SizeBeacon
	case TypeLSA:
		return SizeLSABase
	case TypeJam:
		return SizeJam
	default:
		panic(fmt.Sprintf("packet: SizeOf(%v)", t))
	}
}

// LSASize reports the on-air size of an LSA advertising n links.
func LSASize(entries int) int { return SizeLSABase + SizeLSAEntry*entries }

// Packet is the unit of transmission at every layer. Fields divide into
// identity (Type, ID), end-to-end addressing (Src, Dst), link-level
// addressing (From, To), protocol state (BroadcastID, TTL, HopCount,
// GeoHops, Via), and measurement bookkeeping (CreatedAt, Traversed*).
type Packet struct {
	Type Type
	// ID is unique per simulation run; it identifies a packet across hops
	// for duplicate suppression and metrics tracing.
	ID uint64
	// Src and Dst are the end-to-end endpoints (flow source/destination for
	// data; protocol roles for control packets, e.g. a CSIC's Src is the
	// data source being served even though the packet originates at Dst).
	Src, Dst int
	// From and To are per-hop: sender and intended receiver of this
	// transmission. To == Broadcast for floods.
	From, To int
	// Size is the on-air size in bytes.
	Size int
	// CreatedAt is the generation time of the end-to-end packet (data) or
	// of the control exchange; end-to-end delay = delivery − CreatedAt.
	CreatedAt time.Duration

	// BroadcastID identifies a flood instance: (Origin of flood, Dst,
	// BroadcastID) dedupe rebroadcasts. Each new flood increments it.
	BroadcastID uint32
	// TTL bounds flood scope in geographic hops; ≤ 0 means unlimited for
	// full floods. Decremented per rebroadcast.
	TTL int
	// HopCount accumulates the CSI-based hop distance (RICA/BGCA floods)
	// or plain hop count (AODV), per the originating protocol.
	HopCount float64
	// GeoHops counts geographic (per-transmission) hops taken so far.
	GeoHops int
	// Via names the terminal a rebroadcast CSIC was received from, so the
	// overhearing downstream terminal can learn its possible upstream
	// (paper §II.C). Also used by REER for the reporting terminal's ID.
	Via int

	// TraversedHops, TraversedBps and TraversedCSI accumulate, for
	// delivered data packets, the geographic hop count, the sum of per-hop
	// class throughputs, and the sum of per-hop CSI hop distances (the
	// paper's "hop" unit); figures 5(a)/5(b) average these.
	TraversedHops int
	TraversedBps  float64
	TraversedCSI  float64

	// Payload carries protocol-specific content (e.g. LSA link lists).
	Payload any

	// pooled and refs implement the reuse protocol below; they ride along
	// at the end of the struct and are never copied by CopyFrom.
	pooled bool
	refs   int32
}

// Packet reuse. The broadcast fan-out in the MAC layer hands every
// receiver its own mutable copy of the on-air packet; at fifty terminals
// that is the single largest allocation source in a run. Packets therefore
// come from a pool with a small reference-count protocol:
//
//   - Get returns a zeroed pooled packet holding one reference.
//   - Clone returns a pooled copy of any packet, holding one reference.
//   - Release drops a reference; at zero the packet returns to the pool.
//   - Retain adds a reference — a control handler that wants to keep the
//     packet it was handed beyond the call must Retain (or Clone) it,
//     because the MAC layer Releases delivery copies as soon as the
//     handler returns.
//
// Packets built with a plain composite literal are not pooled: Retain and
// Release are no-ops on them, so tests and cold paths keep ordinary GC
// semantics, and a pooled packet that is never Released is simply
// collected. Only explicitly Released packets are ever reused.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// Pool accounting. The pool is process-global (parallel batch cells and
// experiment trials share it), so these are process-global atomics: Gets
// and Releases count checkout/checkin, live is their difference, and
// highWater tracks the peak of live. A sequential run that drains cleanly
// ends with Live() == 0; anything else is a leak — a pooled packet whose
// last reference was never Released.
var (
	poolGets     atomic.Uint64
	poolReleases atomic.Uint64
	poolLive     atomic.Int64
	poolHigh     atomic.Int64
)

// Get returns a zeroed packet from the pool holding one reference.
// Every packet in the pool is already zeroed — Release clears before
// Put, and the pool's New starts zero — so only the header is written.
func Get() *Packet {
	p := pool.Get().(*Packet)
	p.pooled = true
	p.refs = 1
	poolGets.Add(1)
	if live := poolLive.Add(1); live > poolHigh.Load() {
		// Benign race between parallel runs: a concurrent peak may be
		// recorded slightly low, never high. The sequential paths that
		// assert on it are exact.
		poolHigh.Store(live)
	}
	return p
}

// Live reports how many pooled packets are currently checked out
// (Get/Clone minus final Release), process-wide.
func Live() int64 { return poolLive.Load() }

// PoolStats reports the process-global pool accounting: total checkouts,
// total checkins (final releases), currently live, and the high-water
// mark of live.
func PoolStats() (gets, releases uint64, live, highWater int64) {
	return poolGets.Load(), poolReleases.Load(), poolLive.Load(), poolHigh.Load()
}

// CopyFrom overwrites p's packet fields with src's, preserving p's own
// pool membership and reference count.
func (p *Packet) CopyFrom(src *Packet) {
	pooled, refs := p.pooled, p.refs
	*p = *src
	p.pooled, p.refs = pooled, refs
}

// Retain adds a reference to a pooled packet; no-op otherwise.
func (p *Packet) Retain() {
	if p.pooled {
		p.refs++
	}
}

// Release drops a reference; the last one returns the packet to the pool.
// Releasing a non-pooled packet is a no-op; releasing a pooled packet more
// often than it was retained panics, because the slot may already belong
// to another owner.
func (p *Packet) Release() {
	if !p.pooled {
		return
	}
	p.refs--
	if p.refs > 0 {
		return
	}
	if p.refs < 0 {
		panic("packet: Release of an already-freed packet")
	}
	poolReleases.Add(1)
	poolLive.Add(-1)
	*p = Packet{}
	pool.Put(p)
}

// Sole reports whether the caller's reference is the only one on this
// pooled packet — i.e. nobody Retained it. The MAC delivery loop uses it
// to keep its working copy as a private scratch instead of cycling it
// through the shared pool.
func (p *Packet) Sole() bool { return p.pooled && p.refs == 1 }

// Clone returns a shallow copy; rebroadcast paths copy the packet so each
// hop can edit TTL/HopCount without aliasing the original. Payload is
// shared — protocols treat payloads as immutable once attached. The copy
// is pooled (one reference): callers that hand it to the MAC layer get
// automatic reuse, and callers that drop it leave it to the collector.
func (p *Packet) Clone() *Packet {
	q := Get()
	q.CopyFrom(p)
	return q
}

// FloodKey identifies a flood instance for duplicate suppression tables.
// Fields are deliberately narrow — terminal ids fit int32, the kind fits
// a byte — so the whole key is 16 bytes: these keys are hashed and
// compared once per received flood copy, and halving the key halves that
// work. Build keys with Packet.Key or MakeFloodKey.
type FloodKey struct {
	Origin      int32
	Dst         int32
	BroadcastID uint32
	Kind        uint8
}

// Type reports the flood's packet kind as a packet.Type.
func (k FloodKey) Type() Type { return Type(k.Kind) }

// MakeFloodKey assembles a flood key from full-width components (reverse
// lookups that reconstruct a key from packet fields use it).
func MakeFloodKey(origin, dst int, broadcastID uint32, kind Type) FloodKey {
	return FloodKey{Origin: int32(origin), Dst: int32(dst), BroadcastID: broadcastID, Kind: uint8(kind)}
}

// Key builds the duplicate-suppression key for flood packets. Origin is
// taken from Src for source-originated floods (RREQ, LQ, LSA) and Dst for
// destination-originated ones (CSIC); the packet type disambiguates.
func (p *Packet) Key() FloodKey {
	origin := p.Src
	if p.Type == TypeCSIC {
		origin = p.Dst
	}
	return MakeFloodKey(origin, p.Dst, p.BroadcastID, p.Type)
}

// PoolSnapshot is the pool accounting in struct form, for embedding in
// process-level snapshots (the checkpoint file's informational POOL
// section). Process-global — concurrent runs share the pool — so it is
// recorded for operators but exempt from checkpoint verification.
type PoolSnapshot struct {
	Gets, Releases  uint64
	Live, HighWater int64
}

// SnapshotPool reads the process-global pool accounting.
func SnapshotPool() PoolSnapshot {
	gets, releases, live, high := PoolStats()
	return PoolSnapshot{Gets: gets, Releases: releases, Live: live, HighWater: high}
}
