package packet

import (
	"testing"
	"time"
)

func TestTypeStrings(t *testing.T) {
	cases := map[Type]string{
		TypeData:   "DATA",
		TypeAck:    "ACK",
		TypeRREQ:   "RREQ",
		TypeRREP:   "RREP",
		TypeCSIC:   "CSIC",
		TypeRUPD:   "RUPD",
		TypeREER:   "REER",
		TypeLQ:     "LQ",
		TypeLREP:   "LREP",
		TypeBeacon: "BEACON",
		TypeLSA:    "LSA",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", int(ty), got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type String = %q", got)
	}
}

func TestIsRoutingPartition(t *testing.T) {
	routing := []Type{TypeRREQ, TypeRREP, TypeCSIC, TypeRUPD, TypeREER, TypeLQ, TypeLREP, TypeBeacon, TypeLSA}
	for _, ty := range routing {
		if !ty.IsRouting() {
			t.Errorf("%v.IsRouting() = false, want true", ty)
		}
	}
	for _, ty := range []Type{TypeData, TypeAck, TypeInvalid} {
		if ty.IsRouting() {
			t.Errorf("%v.IsRouting() = true, want false", ty)
		}
	}
}

func TestSizeOfCoversAllValidTypes(t *testing.T) {
	for _, ty := range []Type{TypeData, TypeAck, TypeRREQ, TypeRREP, TypeCSIC, TypeRUPD, TypeREER, TypeLQ, TypeLREP, TypeBeacon, TypeLSA} {
		if s := SizeOf(ty); s <= 0 {
			t.Errorf("SizeOf(%v) = %d, want positive", ty, s)
		}
	}
	if SizeOf(TypeData) != 512 {
		t.Errorf("data packet size = %d, want the paper's 512 bytes", SizeOf(TypeData))
	}
}

func TestSizeOfInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SizeOf(TypeInvalid) did not panic")
		}
	}()
	SizeOf(TypeInvalid)
}

func TestLSASize(t *testing.T) {
	if got := LSASize(0); got != SizeLSABase {
		t.Errorf("LSASize(0) = %d, want %d", got, SizeLSABase)
	}
	if got := LSASize(5); got != SizeLSABase+5*SizeLSAEntry {
		t.Errorf("LSASize(5) = %d", got)
	}
}

func TestCloneIsIndependentShallowCopy(t *testing.T) {
	p := &Packet{
		Type: TypeRREQ, ID: 7, Src: 1, Dst: 2, From: 3, To: Broadcast,
		Size: SizeRREQ, CreatedAt: time.Second, BroadcastID: 4, TTL: 5,
		HopCount: 3.33, GeoHops: 2,
	}
	q := p.Clone()
	if !q.pooled || q.refs != 1 {
		t.Fatalf("clone pool state = (%v, %d), want a pooled packet with one reference", q.pooled, q.refs)
	}
	cmp := *q
	cmp.pooled, cmp.refs = p.pooled, p.refs // pool bookkeeping is not packet identity
	if cmp != *p {
		t.Fatal("clone differs from original")
	}
	q.HopCount = 99
	q.TTL = 0
	if p.HopCount != 3.33 || p.TTL != 5 {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestFloodKeyDistinguishesDirections(t *testing.T) {
	rreq := &Packet{Type: TypeRREQ, Src: 1, Dst: 2, BroadcastID: 9}
	csic := &Packet{Type: TypeCSIC, Src: 1, Dst: 2, BroadcastID: 9}
	if rreq.Key() == csic.Key() {
		t.Fatal("RREQ and CSIC floods with equal ids must have distinct keys")
	}
	if rreq.Key().Origin != 1 {
		t.Errorf("RREQ flood origin = %d, want Src 1", rreq.Key().Origin)
	}
	if csic.Key().Origin != 2 {
		t.Errorf("CSIC flood origin = %d, want Dst 2 (receiver-initiated)", csic.Key().Origin)
	}
}

func TestFloodKeyDedupesRebroadcasts(t *testing.T) {
	orig := &Packet{Type: TypeRREQ, Src: 1, Dst: 2, BroadcastID: 3, From: 1, TTL: 8, HopCount: 0}
	hop := orig.Clone()
	hop.From = 5
	hop.TTL = 7
	hop.HopCount = 1.67
	hop.GeoHops = 1
	if orig.Key() != hop.Key() {
		t.Fatal("rebroadcast changed the flood key; duplicate suppression would fail")
	}
	next := &Packet{Type: TypeRREQ, Src: 1, Dst: 2, BroadcastID: 4}
	if orig.Key() == next.Key() {
		t.Fatal("new broadcast id must produce a new key")
	}
}

func TestPoolRoundTripAndCopyFrom(t *testing.T) {
	p := Get()
	if !p.pooled || p.refs != 1 {
		t.Fatalf("Get() pool state = (%v, %d), want (true, 1)", p.pooled, p.refs)
	}
	src := &Packet{Type: TypeRREQ, ID: 9, Src: 1, Dst: 2, HopCount: 1.5}
	p.CopyFrom(src)
	if p.Type != TypeRREQ || p.ID != 9 || p.HopCount != 1.5 {
		t.Fatal("CopyFrom did not copy packet fields")
	}
	if !p.pooled || p.refs != 1 {
		t.Fatal("CopyFrom clobbered pool bookkeeping")
	}
	p.Retain()
	p.Release()
	if !p.pooled || p.refs != 1 {
		t.Fatal("Retain/Release pair changed the reference count")
	}
	p.Release() // final reference: back to the pool
}

func TestReleaseNonPooledIsNoOp(t *testing.T) {
	p := &Packet{Type: TypeData}
	p.Retain()
	p.Release()
	p.Release() // must not panic: plain packets keep GC semantics
	if p.Type != TypeData {
		t.Fatal("Release zeroed a non-pooled packet")
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	// A second Release would hand the same slot to two owners; the pool
	// must refuse loudly when the reference count goes negative.
	p := Get()
	p.Release()
	p.pooled = true // simulate a stale alias still pointing at the slot
	p.refs = 0
	defer func() {
		if recover() == nil {
			t.Fatal("double Release did not panic")
		}
	}()
	p.Release()
}
