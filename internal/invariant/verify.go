package invariant

import (
	"fmt"

	"rica/internal/metrics"
	"rica/internal/packet"
)

// Verify executes run twice and holds the pair to every invariant the
// harness knows: each summary must pass CheckSummary, the two
// fingerprints must be bit-identical (replay determinism — run must be a
// pure function of its captured configuration), and the pooled-packet
// gauge must return to its pre-call level after each run (zero leak).
// It returns the first run's summary.
//
// The leak check reads the process-global pool gauge, so Verify is
// serial-use only: calling it concurrently with any other simulation —
// including via t.Parallel — makes the gauge baseline meaningless.
func Verify(run func() metrics.Summary) (metrics.Summary, error) {
	baseline := packet.Live()
	first := run()
	if err := CheckSummary(first); err != nil {
		return first, err
	}
	if live := packet.Live(); live != baseline {
		return first, ViolationSet{{
			Law:    "zero-leak",
			Detail: fmt.Sprintf("pooled packets live %d → %d after first run", baseline, live),
		}}
	}
	second := run()
	if err := CheckSummary(second); err != nil {
		return first, fmt.Errorf("replay run: %w", err)
	}
	if live := packet.Live(); live != baseline {
		return first, ViolationSet{{
			Law:    "zero-leak",
			Detail: fmt.Sprintf("pooled packets live %d → %d after replay run", baseline, packet.Live()),
		}}
	}
	if a, b := Fingerprint(first), Fingerprint(second); a != b {
		return first, ViolationSet{{
			Law:    "replay-determinism",
			Detail: fmt.Sprintf("same configuration, diverging fingerprints:\n  %s\n  %s", a, b),
		}}
	}
	return first, nil
}
