// Package invariant checks the simulator's conservation laws on any
// completed run. The checks are deliberately post-hoc — they consume
// only a metrics.Summary (plus the pooled-packet gauge for leak
// detection), so the same harness applies to a hand-built world, a
// compiled scenario, the serial engine, or the sharded one. The fuzzer
// and the catalog sweep both fail through this package, which keeps "the
// simulation is self-consistent" defined in exactly one place.
//
// The laws, in strength order:
//
//  1. Packet conservation — every generated data packet is delivered,
//     dropped for a recorded reason, or still in flight when the horizon
//     lands (the world drains in-flight packets and counts them in
//     Obs.DrainData).
//  2. Ledger agreement — independently maintained counters that describe
//     the same events must agree: the delay histogram's sample count is
//     the delivery count, the traffic layer's generation counter is the
//     collector's, the adversary-drop counter matches the drop ledger.
//  3. Replay determinism — running the identical closure twice yields
//     bit-identical fingerprints (checked by Verify).
//  4. Zero leak — the pooled-packet gauge returns to its pre-run level
//     once the run completes (checked by Verify; serial use only, since
//     the gauge is process-global).
package invariant

import (
	"fmt"
	"sort"
	"strings"

	"rica/internal/metrics"
	"rica/internal/network"
)

// Fingerprint renders a Summary into an exact, platform-independent
// string: integers verbatim, floats in hex notation (%x) so equality
// means bit-equality, durations in nanoseconds. This is the golden-test
// oracle format — the root package's recorded fingerprints are
// Fingerprint outputs, so the format is load-bearing and must not
// change without regenerating them.
func Fingerprint(s metrics.Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gen=%d del=%d", s.Generated, s.Delivered)
	reasons := make([]network.DropReason, 0, len(s.Dropped))
	for r := range s.Dropped {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool { return reasons[i] < reasons[j] })
	for _, r := range reasons {
		fmt.Fprintf(&b, " drop[%s]=%d", r, s.Dropped[r])
	}
	fmt.Fprintf(&b, " delay=%d ratio=%x ovh=%x ctl=%d ctldrop=%d",
		s.AvgDelay.Nanoseconds(), s.DeliveryRatio, s.OverheadBps,
		s.ControlPackets, s.ControlDropped)
	fmt.Fprintf(&b, " lt=%x hops=%x csi=%x hopsall=%x csiall=%x maxhops=%d",
		s.AvgLinkThroughputBps, s.AvgHops, s.AvgCSIHops,
		s.AvgHopsAll, s.AvgCSIHopsAll, s.MaxHops)
	fmt.Fprintf(&b, " p50=%d p99=%d max=%d goodput=%x",
		s.Delay.P50.Nanoseconds(), s.Delay.P99.Nanoseconds(),
		s.Delay.Max.Nanoseconds(), s.GoodputBps)
	return b.String()
}

// Violation describes one broken invariant. Law names the rule in a
// stable, grep-friendly form; Detail carries the observed numbers.
type Violation struct {
	Law    string
	Detail string
}

func (v Violation) Error() string { return v.Law + ": " + v.Detail }

// ViolationSet is the error returned when one or more invariants fail;
// it lists every violation rather than stopping at the first, because a
// single underlying bug (say, a lost drop callback) typically breaks
// several ledgers at once and the full set localizes it faster.
type ViolationSet []Violation

func (vs ViolationSet) Error() string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.Error()
	}
	return fmt.Sprintf("%d invariant violation(s): %s", len(vs), strings.Join(parts, "; "))
}

// CheckSummary validates every post-hoc invariant a single Summary can
// witness. A nil error means the run's ledgers are self-consistent. The
// replay and leak laws need control over execution and are checked by
// Verify instead.
func CheckSummary(s metrics.Summary) error {
	var vs ViolationSet
	fail := func(law, format string, args ...any) {
		vs = append(vs, Violation{Law: law, Detail: fmt.Sprintf(format, args...)})
	}

	if s.Generated < 0 || s.Delivered < 0 {
		fail("non-negative", "generated=%d delivered=%d", s.Generated, s.Delivered)
	}
	for r, n := range s.Dropped {
		if n < 0 {
			fail("non-negative", "drop[%s]=%d", r, n)
		}
	}
	drops := s.DropTotal()

	if s.Obs != nil {
		// Packet conservation: the world layer counts every data packet
		// still in flight at the horizon as it drains them back to the
		// pool, closing the ledger exactly.
		inFlight := int(s.Obs.DrainData)
		if got := s.Delivered + drops + inFlight; got != s.Generated {
			fail("packet-conservation",
				"delivered %d + dropped %d + in-flight %d = %d, want generated %d",
				s.Delivered, drops, inFlight, got, s.Generated)
		}
		if s.Obs.DelayCount != uint64(s.Delivered) {
			fail("delay-ledger", "delay histogram holds %d samples, %d packets delivered",
				s.Obs.DelayCount, s.Delivered)
		}
		if s.Obs.TrafficGenerated != uint64(s.Generated) {
			fail("generation-ledger", "traffic layer generated %d, collector recorded %d",
				s.Obs.TrafficGenerated, s.Generated)
		}
		if adv := s.Dropped[network.DropAdversary]; s.Obs.AdversaryDrops != uint64(adv) {
			fail("adversary-ledger", "obs counted %d adversary drops, drop ledger %d",
				s.Obs.AdversaryDrops, adv)
		}
		if s.Events != 0 && s.Obs.EventsDispatched != s.Events {
			fail("event-ledger", "obs dispatched %d events, summary reports %d",
				s.Obs.EventsDispatched, s.Events)
		}
		if done := s.Obs.EventsDispatched + s.Obs.TimersCancelled; done > s.Obs.EventsScheduled {
			fail("event-ledger", "dispatched %d + cancelled %d exceeds scheduled %d",
				s.Obs.EventsDispatched, s.Obs.TimersCancelled, s.Obs.EventsScheduled)
		}
		if s.Obs.DrainReleased < s.Obs.DrainData {
			fail("drain-ledger", "total drained %d below data drained %d",
				s.Obs.DrainReleased, s.Obs.DrainData)
		}
	} else if s.Delivered+drops > s.Generated {
		// Without the drain counter the in-flight term is unknown, but it
		// cannot be negative.
		fail("packet-conservation", "delivered %d + dropped %d exceeds generated %d",
			s.Delivered, drops, s.Generated)
	}

	switch {
	case s.Generated > 0:
		if want := float64(s.Delivered) / float64(s.Generated); s.DeliveryRatio != want {
			fail("ratio-consistency", "delivery ratio %v, delivered/generated = %v",
				s.DeliveryRatio, want)
		}
	case s.DeliveryRatio != 0:
		fail("ratio-consistency", "delivery ratio %v with zero packets generated", s.DeliveryRatio)
	}
	if s.DeliveryRatio < 0 || s.DeliveryRatio > 1 {
		fail("ratio-consistency", "delivery ratio %v outside [0, 1]", s.DeliveryRatio)
	}

	if vs == nil {
		return nil
	}
	return vs
}
