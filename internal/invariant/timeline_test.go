package invariant

import (
	"strings"
	"testing"

	"rica/internal/timeseries"
)

// tlPoints builds a well-formed timeline from (generated, delivered,
// dropped-congestion) triples at 1 s intervals.
func tlPoints(rows ...[3]int) timeseries.Timeline {
	tl := timeseries.Timeline{IntervalS: 1}
	for i, r := range rows {
		tl.Points = append(tl.Points, timeseries.Point{
			Index: i, StartS: float64(i),
			Generated: r[0], Delivered: r[1], DropCongestion: r[2],
		})
	}
	return tl
}

func TestCheckTimelineAccepts(t *testing.T) {
	cases := map[string]timeseries.Timeline{
		"empty":    {IntervalS: 1},
		"zero-row": tlPoints([3]int{0, 0, 0}),
		// Deliveries lagging generation across intervals is legal: the
		// second interval delivers more than it generates.
		"carryover": tlPoints([3]int{5, 1, 0}, [3]int{1, 4, 1}),
		"balanced":  tlPoints([3]int{3, 3, 0}, [3]int{2, 1, 1}),
	}
	for name, tl := range cases {
		if err := CheckTimeline(tl); err != nil {
			t.Errorf("%s: unexpected violation: %v", name, err)
		}
	}
}

func TestCheckTimelineRejects(t *testing.T) {
	negative := tlPoints([3]int{4, 1, 0}, [3]int{-2, 0, 0})
	overdrawn := tlPoints([3]int{1, 0, 0}, [3]int{0, 2, 0})
	shuffled := tlPoints([3]int{1, 0, 0}, [3]int{1, 1, 0})
	shuffled.Points[1].Index = 0
	skewed := tlPoints([3]int{1, 0, 0}, [3]int{1, 1, 0})
	skewed.Points[1].StartS = 7

	cases := map[string]struct {
		tl  timeseries.Timeline
		law string
	}{
		"negative delta":      {negative, "timeline-monotone"},
		"prefix overdraw":     {overdrawn, "timeline-conservation"},
		"shuffled index":      {shuffled, "timeline-index"},
		"start-time skew":     {skewed, "timeline-index"},
		"nonpositive spacing": {timeseries.Timeline{IntervalS: 0, Points: make([]timeseries.Point, 1)}, "timeline-interval"},
	}
	for name, c := range cases {
		err := CheckTimeline(c.tl)
		if err == nil {
			t.Errorf("%s: violation undetected", name)
			continue
		}
		if !strings.Contains(err.Error(), c.law) {
			t.Errorf("%s: error %q does not name law %s", name, err, c.law)
		}
	}
}

// TestCheckTimelineHorizonOverdrawOnly: a violation in the final
// interval only (books balanced until the horizon) is still caught —
// the law is per-prefix, not end-to-end.
func TestCheckTimelineHorizonOverdrawOnly(t *testing.T) {
	tl := tlPoints([3]int{2, 1, 1}, [3]int{0, 1, 0})
	if err := CheckTimeline(tl); err == nil {
		t.Fatal("final-interval overdraw undetected")
	}
}
