package invariant

import (
	"strings"
	"testing"
	"time"

	"rica/internal/metrics"
	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
)

// consistent builds a Summary every check accepts: 10 generated, 6
// delivered, 3 dropped, 1 still in flight, with agreeing ledgers.
func consistent() metrics.Summary {
	return metrics.Summary{
		Generated: 10,
		Delivered: 6,
		Dropped: map[network.DropReason]int{
			network.DropCongestion: 2,
			network.DropAdversary:  1,
		},
		DeliveryRatio: 0.6,
		Events:        500,
		Obs: &obs.Snapshot{
			EventsDispatched: 500,
			EventsScheduled:  620,
			TimersCancelled:  100,
			TrafficGenerated: 10,
			AdversaryDrops:   1,
			DrainReleased:    4,
			DrainData:        1,
			DelayCount:       6,
		},
	}
}

func TestCheckSummaryAcceptsConsistentRun(t *testing.T) {
	if err := CheckSummary(consistent()); err != nil {
		t.Fatalf("consistent summary rejected: %v", err)
	}
}

func TestCheckSummaryViolations(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*metrics.Summary)
		wantLaw string
	}{
		{"lost packet", func(s *metrics.Summary) { s.Obs.DrainData = 0 }, "packet-conservation"},
		{"phantom delivery", func(s *metrics.Summary) { s.Delivered++ }, "packet-conservation"},
		{"delay ledger", func(s *metrics.Summary) { s.Obs.DelayCount = 5 }, "delay-ledger"},
		{"generation ledger", func(s *metrics.Summary) { s.Obs.TrafficGenerated = 9 }, "generation-ledger"},
		{"adversary ledger", func(s *metrics.Summary) { s.Obs.AdversaryDrops = 7 }, "adversary-ledger"},
		{"event count", func(s *metrics.Summary) { s.Events = 400 }, "event-ledger"},
		{"over-dispatch", func(s *metrics.Summary) { s.Obs.EventsScheduled = 400 }, "event-ledger"},
		{"drain split", func(s *metrics.Summary) { s.Obs.DrainReleased = 0 }, "drain-ledger"},
		{"negative drops", func(s *metrics.Summary) {
			s.Dropped[network.DropCongestion] = -2
		}, "non-negative"},
		{"stale ratio", func(s *metrics.Summary) { s.DeliveryRatio = 0.5 }, "ratio-consistency"},
		{"ratio from nothing", func(s *metrics.Summary) {
			*s = metrics.Summary{DeliveryRatio: 1}
		}, "ratio-consistency"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := consistent()
			tc.mutate(&s)
			err := CheckSummary(s)
			if err == nil {
				t.Fatalf("mutation not flagged")
			}
			if !strings.Contains(err.Error(), tc.wantLaw) {
				t.Fatalf("violation %q does not cite law %q", err, tc.wantLaw)
			}
		})
	}
}

func TestCheckSummaryWithoutObs(t *testing.T) {
	s := consistent()
	s.Obs = nil
	// In flight is unknowable without the drain counter: 6+3 ≤ 10 passes.
	if err := CheckSummary(s); err != nil {
		t.Fatalf("obs-less summary rejected: %v", err)
	}
	s.Delivered = 9 // 9+3 > 10
	if err := CheckSummary(s); err == nil || !strings.Contains(err.Error(), "packet-conservation") {
		t.Fatalf("obs-less over-accounting not flagged: %v", err)
	}
}

func TestViolationSetListsEveryLaw(t *testing.T) {
	s := consistent()
	s.Obs.DelayCount = 0
	s.Obs.TrafficGenerated = 0
	err := CheckSummary(s)
	vs, ok := err.(ViolationSet)
	if !ok {
		t.Fatalf("error is %T, want ViolationSet", err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want both broken ledgers: %v", len(vs), err)
	}
}

func TestFingerprintFormat(t *testing.T) {
	s := consistent()
	s.AvgDelay = 1500 * time.Microsecond
	got := Fingerprint(s)
	// The format is the golden-test oracle; pin its load-bearing pieces.
	for _, want := range []string{
		"gen=10 del=6",
		"drop[congestion]=2",
		"drop[adversary]=1",
		"delay=1500000",
		"ratio=0x1.3333333333333p-01",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("fingerprint %q missing %q", got, want)
		}
	}
	// Drop reasons render in enum order regardless of map iteration.
	if c, a := strings.Index(got, "drop[congestion]"), strings.Index(got, "drop[adversary]"); a < c {
		t.Errorf("drop reasons out of enum order: %q", got)
	}
}

func TestVerifyPassesDeterministicRun(t *testing.T) {
	runs := 0
	s, err := Verify(func() metrics.Summary {
		runs++
		return consistent()
	})
	if err != nil {
		t.Fatalf("deterministic run rejected: %v", err)
	}
	if runs != 2 {
		t.Fatalf("Verify ran the closure %d times, want 2 (replay check)", runs)
	}
	if s.Generated != 10 {
		t.Fatalf("Verify returned the wrong summary: %+v", s)
	}
}

func TestVerifyCatchesNondeterminism(t *testing.T) {
	runs := 0
	_, err := Verify(func() metrics.Summary {
		runs++
		s := consistent()
		if runs == 2 {
			s.Delivered, s.Dropped[network.DropCongestion] = 5, 3
			s.DeliveryRatio = 0.5
			s.Obs.DelayCount = 5
		}
		return s
	})
	if err == nil || !strings.Contains(err.Error(), "replay-determinism") {
		t.Fatalf("diverging replay not flagged: %v", err)
	}
}

func TestVerifyCatchesLeak(t *testing.T) {
	var leaked *packet.Packet
	_, err := Verify(func() metrics.Summary {
		if leaked == nil {
			leaked = packet.Get() // never released: the gauge stays high
		}
		return consistent()
	})
	if err == nil || !strings.Contains(err.Error(), "zero-leak") {
		t.Fatalf("leaked packet not flagged: %v", err)
	}
	leaked.Release() // restore the process-global gauge for other tests
}

func TestVerifyStopsOnFirstRunViolation(t *testing.T) {
	runs := 0
	_, err := Verify(func() metrics.Summary {
		runs++
		s := consistent()
		s.Obs.DrainData = 0
		return s
	})
	if err == nil || !strings.Contains(err.Error(), "packet-conservation") {
		t.Fatalf("broken first run not flagged: %v", err)
	}
	if runs != 1 {
		t.Fatalf("Verify replayed a run that already failed (%d runs)", runs)
	}
}
