package invariant

import (
	"fmt"

	"rica/internal/timeseries"
)

// Timeline monotonicity laws. The interval timeline reports per-bucket
// deltas of counters that are cumulative by nature: packets generated,
// delivered, dropped, control transmissions, route churn. Integrated
// over time those totals can only grow — a negative bucket means a
// counter ran backwards. And because a packet must be generated before
// it is delivered or dropped, the cumulative books must balance at
// every interval boundary, not just at the horizon: at any prefix of
// the timeline, delivered + dropped can never exceed generated.
//
// CheckTimeline holds a finished timeline to those laws:
//
//  1. Indexing — Points[i].Index == i and StartS strictly increases by
//     the interval width (a shuffled or duplicated timeline fails
//     before any counter is read).
//  2. Per-interval non-negativity — every counter delta ≥ 0, which is
//     exactly "every cumulative counter is non-decreasing".
//  3. Prefix conservation — cumulative delivered + cumulative drops ≤
//     cumulative generated after every interval.
func CheckTimeline(tl timeseries.Timeline) error {
	var vs ViolationSet
	fail := func(law, format string, args ...any) {
		vs = append(vs, Violation{Law: law, Detail: fmt.Sprintf(format, args...)})
	}
	if tl.IntervalS <= 0 && len(tl.Points) > 0 {
		fail("timeline-interval", "interval %v s with %d points", tl.IntervalS, len(tl.Points))
	}

	var cumGen, cumDel, cumDrop int64
	for i, p := range tl.Points {
		if p.Index != i {
			fail("timeline-index", "point %d carries index %d", i, p.Index)
			break // indices are unusable; counter laws would misattribute
		}
		want := float64(i) * tl.IntervalS
		if diff := p.StartS - want; diff > 1e-9 || diff < -1e-9 {
			fail("timeline-index", "point %d starts at %v s, want %v s", i, p.StartS, want)
		}

		counters := []struct {
			name string
			v    int64
		}{
			{"generated", int64(p.Generated)},
			{"delivered", int64(p.Delivered)},
			{"control_packets", p.ControlPackets},
			{"control_dropped", p.ControlDropped},
			{"drop_congestion", int64(p.DropCongestion)},
			{"drop_expired", int64(p.DropExpired)},
			{"drop_no_route", int64(p.DropNoRoute)},
			{"drop_link_break", int64(p.DropLinkBreak)},
			{"route_installs", int64(p.RouteInstalls)},
			{"route_invalidations", int64(p.RouteInvalidations)},
		}
		for _, c := range counters {
			if c.v < 0 {
				fail("timeline-monotone", "interval %d: cumulative %s decreases (delta %d)", i, c.name, c.v)
			}
		}

		cumGen += int64(p.Generated)
		cumDel += int64(p.Delivered)
		cumDrop += int64(p.DropCongestion + p.DropExpired + p.DropNoRoute + p.DropLinkBreak)
		if cumDel+cumDrop > cumGen {
			fail("timeline-conservation",
				"after interval %d: cumulative delivered %d + dropped %d exceeds generated %d",
				i, cumDel, cumDrop, cumGen)
		}
	}
	if vs != nil {
		return vs
	}
	return nil
}
