package trace

import (
	"strings"
	"testing"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
)

func ev(id uint64, at time.Duration) Event {
	return Event{At: at, Kind: KindControl, PacketID: id, PacketType: packet.TypeRREQ}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRecorder(3)
	for i := uint64(1); i <= 5; i++ {
		r.Record(ev(i, time.Duration(i)))
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []uint64{3, 4, 5} {
		if got[i].PacketID != want {
			t.Fatalf("events = %+v, want ids 3,4,5", got)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestPartialRing(t *testing.T) {
	r := NewRecorder(10)
	r.Record(ev(1, 1))
	r.Record(ev(2, 2))
	got := r.Events()
	if len(got) != 2 || got[0].PacketID != 1 || got[1].PacketID != 2 {
		t.Fatalf("events = %+v", got)
	}
}

func TestFilterKeepsCounting(t *testing.T) {
	r := NewRecorder(10)
	r.Filter = func(e Event) bool { return e.Kind == KindDropped }
	r.Record(ev(1, 1)) // filtered out
	r.Record(Event{Kind: KindDropped, PacketID: 2})
	if got := r.Events(); len(got) != 1 || got[0].PacketID != 2 {
		t.Fatalf("events = %+v", got)
	}
	if r.Total() != 2 {
		t.Fatalf("Total = %d, want 2 (filtered events still count)", r.Total())
	}
}

func TestZeroCapacityCountsWithoutRetaining(t *testing.T) {
	r := NewRecorder(0)
	for i := uint64(1); i <= 4; i++ {
		r.Record(ev(i, time.Duration(i)))
	}
	if got := r.Events(); len(got) != 0 {
		t.Fatalf("capacity-0 recorder retained %d events: %+v", len(got), got)
	}
	if r.Total() != 4 {
		t.Fatalf("Total = %d, want 4", r.Total())
	}
}

func TestCapacityOneKeepsOnlyNewest(t *testing.T) {
	r := NewRecorder(1)
	// Empty before any event.
	if got := r.Events(); len(got) != 0 {
		t.Fatalf("fresh recorder has events: %+v", got)
	}
	// One event: retained.
	r.Record(ev(1, 1))
	if got := r.Events(); len(got) != 1 || got[0].PacketID != 1 {
		t.Fatalf("events = %+v, want just id 1", got)
	}
	// Every further event wraps the single slot in place.
	for i := uint64(2); i <= 5; i++ {
		r.Record(ev(i, time.Duration(i)))
		got := r.Events()
		if len(got) != 1 || got[0].PacketID != i {
			t.Fatalf("after %d records events = %+v, want just id %d", i, got, i)
		}
	}
	if r.Total() != 5 {
		t.Fatalf("Total = %d, want 5", r.Total())
	}
}

func TestExactCapacityBoundary(t *testing.T) {
	// Exactly filling the ring (no wrap yet) must report all events in
	// order — the filled/next bookkeeping flips exactly at this point.
	r := NewRecorder(3)
	for i := uint64(1); i <= 3; i++ {
		r.Record(ev(i, time.Duration(i)))
	}
	got := r.Events()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i, want := range []uint64{1, 2, 3} {
		if got[i].PacketID != want {
			t.Fatalf("events = %+v, want ids 1,2,3", got)
		}
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRecorder(-1) did not panic")
		}
	}()
	NewRecorder(-1)
}

type sink struct {
	gen, dlv, drp int
}

func (s *sink) DataGenerated(*packet.Packet, time.Duration)                   { s.gen++ }
func (s *sink) DataDelivered(*packet.Packet, time.Duration)                   { s.dlv++ }
func (s *sink) DataDropped(*packet.Packet, network.DropReason, time.Duration) { s.drp++ }

func TestWrapRecorderTees(t *testing.T) {
	inner := &sink{}
	r := NewRecorder(10)
	w := WrapRecorder(inner, r)
	pkt := &packet.Packet{Type: packet.TypeData, ID: 7, Src: 1, Dst: 2, CreatedAt: time.Second}
	w.DataGenerated(pkt, time.Second)
	w.DataDelivered(pkt, 2*time.Second)
	w.DataDropped(pkt, network.DropCongestion, 3*time.Second)
	if inner.gen != 1 || inner.dlv != 1 || inner.drp != 1 {
		t.Fatalf("inner recorder missed events: %+v", inner)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("trace events = %d, want 3", len(evs))
	}
	if evs[0].Kind != KindGenerated || evs[1].Kind != KindDelivered || evs[2].Kind != KindDropped {
		t.Fatalf("kinds = %v %v %v", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if !strings.Contains(evs[1].Detail, "delay=1s") {
		t.Fatalf("delivery detail = %q", evs[1].Detail)
	}
	if evs[2].Detail != "congestion" {
		t.Fatalf("drop detail = %q", evs[2].Detail)
	}
}

func TestControlHook(t *testing.T) {
	r := NewRecorder(4)
	hook := r.ControlHook()
	hook(&packet.Packet{Type: packet.TypeCSIC, Src: 1, Dst: 2}, 5, time.Second)
	evs := r.Events()
	if len(evs) != 1 || evs[0].Kind != KindControl || evs[0].Node != 5 {
		t.Fatalf("events = %+v", evs)
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		At: 1500 * time.Millisecond, Kind: KindDropped, Node: 3,
		PacketType: packet.TypeData, Src: 1, Dst: 2, Detail: "expired",
	}
	s := e.String()
	for _, want := range []string{"DRP", "node=3", "DATA", "1→2", "expired"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestEventStringWithoutDetail(t *testing.T) {
	e := Event{At: time.Second, Kind: KindControl, Node: 7, PacketType: packet.TypeRREQ, Src: 7, Dst: 9}
	s := e.String()
	if strings.Contains(s, "(") {
		t.Fatalf("detail-less String() = %q should carry no parenthetical", s)
	}
	for _, want := range []string{"CTL", "node=7", "7→9"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		KindGenerated:   "GEN",
		KindDelivered:   "DLV",
		KindDropped:     "DRP",
		KindControl:     "CTL",
		KindControlLost: "CTL-LOST",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "Kind(99)" {
		t.Errorf("unknown kind String() = %q, want Kind(99)", got)
	}
}
