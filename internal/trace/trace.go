// Package trace records a simulation's packet-level event history — data
// generation, delivery, drops, and control-channel transmissions — into a
// bounded ring buffer. It exists for observability: debugging a protocol
// or demonstrating its behaviour means seeing the sequence of events, not
// just the end-of-run aggregates.
package trace

import (
	"fmt"
	"sync"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
)

// Kind classifies an event.
type Kind int

// Event kinds.
const (
	KindGenerated   Kind = iota + 1 // data packet created at its source
	KindDelivered                   // data packet reached its destination
	KindDropped                     // data packet discarded
	KindControl                     // routing packet put on the common channel
	KindControlLost                 // routing packet abandoned to congestion
)

var kindNames = map[Kind]string{
	KindGenerated:   "GEN",
	KindDelivered:   "DLV",
	KindDropped:     "DRP",
	KindControl:     "CTL",
	KindControlLost: "CTL-LOST",
}

// String names the kind for log lines.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded occurrence.
type Event struct {
	At         time.Duration
	Kind       Kind
	Node       int // terminal where the event happened
	PacketID   uint64
	PacketType packet.Type
	Src, Dst   int
	Detail     string // drop reason, control packet type, ...
}

// String renders the event as a log line.
func (e Event) String() string {
	base := fmt.Sprintf("%10s %-8s node=%-2d %s %d→%d",
		e.At.Round(time.Microsecond), e.Kind, e.Node, e.PacketType, e.Src, e.Dst)
	if e.Detail != "" {
		return base + " (" + e.Detail + ")"
	}
	return base
}

// Recorder is a bounded ring of events. The zero value is unusable;
// construct with NewRecorder. Filter, when set, keeps only matching
// events (the total count still counts everything offered).
//
// Recorder is safe for concurrent use: the simulation goroutine appends
// while live observability surfaces (the stats heartbeat, the HTTP
// snapshot endpoint) read Total and Events. Set Filter before the run
// starts; it is read under the same lock but not copied.
type Recorder struct {
	mu     sync.Mutex
	events []Event
	next   int
	filled bool
	total  uint64

	Filter func(Event) bool
}

// NewRecorder builds a recorder keeping the most recent capacity events.
// Capacity 0 is valid and retains nothing — Events stays empty while
// Total still counts every offered event — so callers can meter a run
// without storing its history. Negative capacities panic.
func NewRecorder(capacity int) *Recorder {
	if capacity < 0 {
		panic("trace: capacity must not be negative")
	}
	return &Recorder{events: make([]Event, capacity)}
}

// Record offers an event to the ring.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if r.Filter != nil && !r.Filter(e) {
		return
	}
	if len(r.events) == 0 {
		return // capacity 0: count, retain nothing
	}
	r.events[r.next] = e
	r.next++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Total reports how many events were offered (including filtered ones).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.filled {
		out := make([]Event, r.next)
		copy(out, r.events[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// WrapRecorder decorates a network.Recorder so that data-plane lifecycle
// events flow into r as well as into the wrapped metrics collector.
func WrapRecorder(inner network.Recorder, r *Recorder) network.Recorder {
	return &tee{inner: inner, trace: r}
}

type tee struct {
	inner network.Recorder
	trace *Recorder
}

func (t *tee) DataGenerated(pkt *packet.Packet, now time.Duration) {
	t.inner.DataGenerated(pkt, now)
	t.trace.Record(Event{
		At: now, Kind: KindGenerated, Node: pkt.Src,
		PacketID: pkt.ID, PacketType: pkt.Type, Src: pkt.Src, Dst: pkt.Dst,
	})
}

func (t *tee) DataDelivered(pkt *packet.Packet, now time.Duration) {
	t.inner.DataDelivered(pkt, now)
	t.trace.Record(Event{
		At: now, Kind: KindDelivered, Node: pkt.Dst,
		PacketID: pkt.ID, PacketType: pkt.Type, Src: pkt.Src, Dst: pkt.Dst,
		Detail: fmt.Sprintf("delay=%s hops=%d", (now - pkt.CreatedAt).Round(time.Millisecond), pkt.TraversedHops),
	})
}

func (t *tee) DataDropped(pkt *packet.Packet, reason network.DropReason, now time.Duration) {
	t.inner.DataDropped(pkt, reason, now)
	t.trace.Record(Event{
		At: now, Kind: KindDropped, Node: pkt.From,
		PacketID: pkt.ID, PacketType: pkt.Type, Src: pkt.Src, Dst: pkt.Dst,
		Detail: reason.String(),
	})
}

// ControlHook returns a mac.CommonChannel.OnTransmit-compatible function
// that records control transmissions; chain it after the metrics hook.
func (r *Recorder) ControlHook() func(pkt *packet.Packet, from int, now time.Duration) {
	return func(pkt *packet.Packet, from int, now time.Duration) {
		r.Record(Event{
			At: now, Kind: KindControl, Node: from,
			PacketID: pkt.ID, PacketType: pkt.Type, Src: pkt.Src, Dst: pkt.Dst,
		})
	}
}
