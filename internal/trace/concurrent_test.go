package trace

import (
	"sync"
	"testing"
	"time"
)

// TestConcurrentReadersWhileAppending hammers the ring from one appender
// (the simulation goroutine's role) while several readers poll Total and
// Events (the live surfaces' role). Under -race this is the proof that
// the ring is safe to watch mid-run; unconditionally it checks that
// every snapshot a reader sees is internally consistent — chronological
// and no larger than the capacity.
func TestConcurrentReadersWhileAppending(t *testing.T) {
	const capacity = 64
	r := NewRecorder(capacity)
	stop := make(chan struct{})

	var appender sync.WaitGroup
	appender.Add(1)
	go func() {
		defer appender.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.Record(Event{At: time.Duration(i), Kind: KindGenerated, PacketID: uint64(i)})
		}
	}()

	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastTotal uint64
			for i := 0; i < 2000; i++ {
				total := r.Total()
				if total < lastTotal {
					t.Errorf("Total went backwards: %d after %d", total, lastTotal)
					return
				}
				lastTotal = total
				evs := r.Events()
				if len(evs) > capacity {
					t.Errorf("Events returned %d > capacity %d", len(evs), capacity)
					return
				}
				for j := 1; j < len(evs); j++ {
					if evs[j].At < evs[j-1].At {
						t.Errorf("Events out of order at %d: %v after %v", j, evs[j].At, evs[j-1].At)
						return
					}
				}
			}
		}()
	}

	readers.Wait()
	close(stop)
	appender.Wait()

	if r.Total() == 0 {
		t.Fatal("appender recorded nothing")
	}
	if got := len(r.Events()); got != capacity {
		t.Fatalf("retained %d events, want full ring of %d", got, capacity)
	}
}
