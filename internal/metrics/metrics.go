// Package metrics aggregates one run's end-of-run measurements — the
// numbers the paper's evaluation reports: average end-to-end delay,
// successful delivery percentage, routing overhead in bits per second
// (routing packets on the common channel plus data acknowledgments),
// route quality (average link throughput and hop count of delivered
// packets), and the 4-second-bucket aggregate throughput time series of
// Figure 6.
//
// These are whole-run aggregates by design; per-interval observability
// (how delivery dips and recovers around a failure, when the control
// channel saturates) lives in the timeseries package, which attaches
// alongside this collector without perturbing it.
package metrics

import (
	"sort"
	"time"

	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
)

// BucketSize is the paper's throughput sampling interval (Figure 6:
// "the amount of data reaching destination terminals in every 4 seconds").
const BucketSize = 4 * time.Second

// Collector accumulates one simulation run's measurements. It implements
// network.Recorder and is wired to the MAC layer's transmit observers.
// The zero value is not usable; construct with NewCollector.
type Collector struct {
	horizon time.Duration

	generated int
	delivered int
	dropped   map[network.DropReason]int

	delaySum      time.Duration
	traversedHops int
	traversedBps  float64
	traversedCSI  float64
	droppedHops   int
	droppedCSI    float64
	maxHops       int
	deliveredBits int64

	controlBits int64
	ackBits     int64
	controlPkts int64
	controlDrop int64
	// controlByType is indexed by packet.Type (a small dense enum): a map
	// here costs a hashed assign per transmitted control packet.
	controlByType [16]int64

	delays []time.Duration // per-delivery samples for percentiles

	flows map[flowKey]*flowStats

	buckets []int64 // delivered bits per BucketSize interval
}

// flowKey identifies a unidirectional flow for the per-flow breakdown.
type flowKey struct{ src, dst int }

type flowStats struct {
	generated, delivered int
	delaySum             time.Duration
}

var _ network.Recorder = (*Collector)(nil)

// NewCollector builds a collector for a run lasting horizon.
func NewCollector(horizon time.Duration) *Collector {
	nBuckets := int(horizon/BucketSize) + 1
	return &Collector{
		horizon: horizon,
		dropped: make(map[network.DropReason]int),
		buckets: make([]int64, nBuckets),
		flows:   make(map[flowKey]*flowStats),
	}
}

// DataGenerated implements network.Recorder.
func (c *Collector) DataGenerated(pkt *packet.Packet, _ time.Duration) {
	c.generated++
	c.flow(pkt).generated++
}

// flow fetches (or creates) the per-flow accumulator for pkt.
func (c *Collector) flow(pkt *packet.Packet) *flowStats {
	k := flowKey{src: pkt.Src, dst: pkt.Dst}
	f := c.flows[k]
	if f == nil {
		f = &flowStats{}
		c.flows[k] = f
	}
	return f
}

// DataDelivered implements network.Recorder.
func (c *Collector) DataDelivered(pkt *packet.Packet, now time.Duration) {
	c.delivered++
	delay := now - pkt.CreatedAt
	c.delaySum += delay
	c.delays = append(c.delays, delay)
	f := c.flow(pkt)
	f.delivered++
	f.delaySum += delay
	c.traversedHops += pkt.TraversedHops
	c.traversedBps += pkt.TraversedBps
	c.traversedCSI += pkt.TraversedCSI
	if pkt.TraversedHops > c.maxHops {
		c.maxHops = pkt.TraversedHops
	}
	bits := int64(pkt.Size * 8)
	c.deliveredBits += bits
	if b := int(now / BucketSize); b >= 0 && b < len(c.buckets) {
		c.buckets[b] += bits
	}
}

// DataDropped implements network.Recorder.
func (c *Collector) DataDropped(pkt *packet.Packet, reason network.DropReason, _ time.Duration) {
	c.dropped[reason]++
	c.droppedHops += pkt.TraversedHops
	c.droppedCSI += pkt.TraversedCSI
	if pkt.TraversedHops > c.maxHops {
		c.maxHops = pkt.TraversedHops
	}
}

// ControlTransmitted observes a routing packet put on the common channel
// (wire to mac.CommonChannel.OnTransmit).
func (c *Collector) ControlTransmitted(pkt *packet.Packet, _ int, _ time.Duration) {
	c.controlBits += int64(pkt.Size * 8)
	c.controlPkts++
	if t := int(pkt.Type); t >= 0 && t < len(c.controlByType) {
		c.controlByType[t]++
	}
}

// ControlDropped observes a routing packet abandoned to congestion (wire
// to mac.CommonChannel.OnDropped).
func (c *Collector) ControlDropped(*packet.Packet, int, time.Duration) { c.controlDrop++ }

// AckTransmitted observes a data-channel acknowledgment (wire to
// mac.DataPlane.OnAck); the paper counts ACK bits as routing overhead.
func (c *Collector) AckTransmitted(sizeBytes int, _ time.Duration) {
	c.ackBits += int64(sizeBytes * 8)
}

// Summary is one run's aggregated result set.
type Summary struct {
	// Generated and Delivered are end-to-end data packet counts.
	Generated, Delivered int
	// Dropped counts losses by reason.
	Dropped map[network.DropReason]int
	// AvgDelay is the mean end-to-end delay of delivered packets.
	AvgDelay time.Duration
	// DeliveryRatio is Delivered/Generated in [0, 1].
	DeliveryRatio float64
	// OverheadBps is (routing bits + ACK bits) / simulated seconds.
	OverheadBps float64
	// ControlPackets counts common-channel routing transmissions;
	// ControlDropped counts those lost to backoff exhaustion.
	ControlPackets, ControlDropped int64
	// ControlByType breaks ControlPackets down per packet type.
	ControlByType map[packet.Type]int64
	// AvgLinkThroughputBps is Σ per-hop class throughput / Σ hops over
	// delivered packets (Figure 5a).
	AvgLinkThroughputBps float64
	// AvgHops is the mean geographic hop count of delivered packets,
	// loops included.
	AvgHops float64
	// AvgCSIHops is the mean CSI-based hop distance of delivered packets —
	// the paper's "hop" unit, where a class-A link counts 1 and a class-D
	// link counts 5 (Figure 5b).
	AvgCSIHops float64
	// AvgHopsAll is the mean geographic hops traversed per *terminated*
	// packet (delivered or dropped). Routing loops show up here even when
	// the looping packets never reach a destination — the link-state
	// pathology of Figure 5(b).
	AvgHopsAll float64
	// AvgCSIHopsAll is AvgHopsAll in the paper's CSI hop unit.
	AvgCSIHopsAll float64
	// MaxHops is the largest geographic hop count any terminated packet
	// traversed — a routing-loop telltale.
	MaxHops int
	// Delay holds the delivered-delay distribution (median, tail, max).
	Delay DelayPercentiles
	// PerFlow breaks delivery down per (source, destination) pair.
	PerFlow []FlowSummary
	// Energy aggregates transmit-energy accounting when a meter is
	// attached (see the energy package); zero otherwise.
	Energy EnergyStats
	// GoodputBps is delivered data bits / simulated seconds.
	GoodputBps float64
	// Events is the number of kernel events the run dispatched — the
	// denominator-free half of the simulator's events-per-second
	// throughput figure (deterministic: equal runs report equal counts).
	// Populated by the world layer, not the collector.
	Events uint64
	// ThroughputSeries is delivered bits per 4 s bucket converted to bits
	// per second (Figure 6's curve).
	ThroughputSeries []float64
	// Obs is the run's end-of-run observability snapshot (subsystem
	// counters, delay histogram quantiles). Populated by the world layer;
	// nil for bare collector use. Excluded from golden fingerprints, which
	// format an explicit field list.
	Obs *obs.Snapshot
}

// Summary freezes the current counters into a result set.
func (c *Collector) Summary() Summary {
	s := Summary{
		Generated:      c.generated,
		Delivered:      c.delivered,
		Dropped:        make(map[network.DropReason]int, len(c.dropped)),
		ControlPackets: c.controlPkts,
		ControlDropped: c.controlDrop,
	}
	for k, v := range c.dropped {
		s.Dropped[k] = v
	}
	s.ControlByType = make(map[packet.Type]int64)
	for t, v := range c.controlByType {
		if v != 0 {
			s.ControlByType[packet.Type(t)] = v
		}
	}
	if c.delivered > 0 {
		s.AvgDelay = c.delaySum / time.Duration(c.delivered)
		s.AvgHops = float64(c.traversedHops) / float64(c.delivered)
		s.AvgCSIHops = c.traversedCSI / float64(c.delivered)
	}
	if c.generated > 0 {
		s.DeliveryRatio = float64(c.delivered) / float64(c.generated)
	}
	if c.traversedHops > 0 {
		s.AvgLinkThroughputBps = c.traversedBps / float64(c.traversedHops)
	}
	s.MaxHops = c.maxHops
	s.Delay = percentiles(c.delays)
	s.PerFlow = c.flowSummaries()
	if terminated := c.delivered + s.DropTotal(); terminated > 0 {
		s.AvgHopsAll = float64(c.traversedHops+c.droppedHops) / float64(terminated)
		s.AvgCSIHopsAll = (c.traversedCSI + c.droppedCSI) / float64(terminated)
	}
	if secs := c.horizon.Seconds(); secs > 0 {
		s.OverheadBps = float64(c.controlBits+c.ackBits) / secs
		s.GoodputBps = float64(c.deliveredBits) / secs
	}
	s.ThroughputSeries = make([]float64, len(c.buckets))
	for i, bits := range c.buckets {
		s.ThroughputSeries[i] = float64(bits) / BucketSize.Seconds()
	}
	return s
}

// DropTotal sums all drop reasons.
func (s Summary) DropTotal() int {
	total := 0
	for _, v := range s.Dropped {
		total += v
	}
	return total
}

// FlowSummary is one flow's delivery record.
type FlowSummary struct {
	Src, Dst             int
	Generated, Delivered int
	AvgDelay             time.Duration
}

// DeliveryRatio reports the flow's delivered fraction.
func (f FlowSummary) DeliveryRatio() float64 {
	if f.Generated == 0 {
		return 0
	}
	return float64(f.Delivered) / float64(f.Generated)
}

// flowSummaries freezes the per-flow accumulators, sorted by (src, dst)
// for deterministic output.
func (c *Collector) flowSummaries() []FlowSummary {
	out := make([]FlowSummary, 0, len(c.flows))
	for k, f := range c.flows {
		fs := FlowSummary{Src: k.src, Dst: k.dst, Generated: f.generated, Delivered: f.delivered}
		if f.delivered > 0 {
			fs.AvgDelay = f.delaySum / time.Duration(f.delivered)
		}
		out = append(out, fs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	return out
}

// EnergyStats aggregates transmit-energy accounting in joules. Populated
// by the energy meter when one is attached to the run.
type EnergyStats struct {
	// ControlJ is energy spent transmitting routing packets.
	ControlJ float64
	// DataJ is energy spent transmitting data and per-hop ACKs; slower
	// channel classes burn proportionally more airtime per bit.
	DataJ float64
	// PerDeliveredBitJ is (ControlJ+DataJ) / delivered data bits — the
	// figure of merit for battery-constrained terminals.
	PerDeliveredBitJ float64
}

// TotalJ sums all transmit energy.
func (e EnergyStats) TotalJ() float64 { return e.ControlJ + e.DataJ }
