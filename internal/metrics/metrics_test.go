package metrics

import (
	"math"
	"testing"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
)

func mkDelivered(created, size int, hops int, bps float64) *packet.Packet {
	return &packet.Packet{
		Type: packet.TypeData, Size: size,
		CreatedAt:     time.Duration(created) * time.Millisecond,
		TraversedHops: hops, TraversedBps: bps,
	}
}

func TestSummaryBasics(t *testing.T) {
	c := NewCollector(100 * time.Second)
	for i := 0; i < 4; i++ {
		c.DataGenerated(&packet.Packet{}, 0)
	}
	// Two deliveries with 100 ms and 300 ms delay.
	c.DataDelivered(mkDelivered(0, 512, 2, 500_000), 100*time.Millisecond)
	c.DataDelivered(mkDelivered(0, 512, 4, 400_000), 300*time.Millisecond)
	c.DataDropped(&packet.Packet{}, network.DropCongestion, 0)
	c.DataDropped(&packet.Packet{}, network.DropExpired, 0)

	s := c.Summary()
	if s.Generated != 4 || s.Delivered != 2 {
		t.Fatalf("counts: %+v", s)
	}
	if s.AvgDelay != 200*time.Millisecond {
		t.Errorf("AvgDelay = %v, want 200ms", s.AvgDelay)
	}
	if s.DeliveryRatio != 0.5 {
		t.Errorf("DeliveryRatio = %v, want 0.5", s.DeliveryRatio)
	}
	if s.AvgHops != 3 {
		t.Errorf("AvgHops = %v, want 3", s.AvgHops)
	}
	// (500k+400k) summed bps over 6 hops = 150 kbps per hop.
	if want := 900_000.0 / 6; math.Abs(s.AvgLinkThroughputBps-want) > 1e-9 {
		t.Errorf("AvgLinkThroughput = %v, want %v", s.AvgLinkThroughputBps, want)
	}
	if s.DropTotal() != 2 {
		t.Errorf("DropTotal = %d, want 2", s.DropTotal())
	}
}

func TestOverheadAccounting(t *testing.T) {
	c := NewCollector(10 * time.Second)
	rreq := &packet.Packet{Type: packet.TypeRREQ, Size: packet.SizeRREQ}
	for i := 0; i < 100; i++ {
		c.ControlTransmitted(rreq, 0, 0)
	}
	for i := 0; i < 50; i++ {
		c.AckTransmitted(packet.SizeAck, 0)
	}
	c.ControlDropped(rreq, 0, 0)
	s := c.Summary()
	wantBits := float64(100*packet.SizeRREQ*8 + 50*packet.SizeAck*8)
	if got := s.OverheadBps * 10; math.Abs(got-wantBits) > 1e-9 {
		t.Errorf("overhead bits = %v, want %v", got, wantBits)
	}
	if s.ControlPackets != 100 || s.ControlDropped != 1 {
		t.Errorf("control counts: %+v", s)
	}
}

func TestThroughputSeriesBuckets(t *testing.T) {
	c := NewCollector(20 * time.Second)
	// 512-byte packet delivered at t=1s (bucket 0) and two at t=5s (bucket 1).
	c.DataGenerated(&packet.Packet{}, 0)
	c.DataGenerated(&packet.Packet{}, 0)
	c.DataGenerated(&packet.Packet{}, 0)
	c.DataDelivered(mkDelivered(0, 512, 1, 250_000), time.Second)
	c.DataDelivered(mkDelivered(0, 512, 1, 250_000), 5*time.Second)
	c.DataDelivered(mkDelivered(0, 512, 1, 250_000), 5*time.Second)
	s := c.Summary()
	if len(s.ThroughputSeries) != 6 {
		t.Fatalf("series length = %d, want 6 buckets for 20 s", len(s.ThroughputSeries))
	}
	if want := 512 * 8.0 / 4; s.ThroughputSeries[0] != want {
		t.Errorf("bucket 0 = %v, want %v", s.ThroughputSeries[0], want)
	}
	if want := 2 * 512 * 8.0 / 4; s.ThroughputSeries[1] != want {
		t.Errorf("bucket 1 = %v, want %v", s.ThroughputSeries[1], want)
	}
	if s.ThroughputSeries[2] != 0 {
		t.Errorf("bucket 2 = %v, want 0", s.ThroughputSeries[2])
	}
}

func TestEmptyRunSummaryIsFinite(t *testing.T) {
	s := NewCollector(time.Second).Summary()
	if s.AvgDelay != 0 || s.DeliveryRatio != 0 || s.AvgHops != 0 ||
		s.AvgLinkThroughputBps != 0 || s.OverheadBps != 0 {
		t.Fatalf("empty summary has nonzero derived stats: %+v", s)
	}
	if math.IsNaN(s.GoodputBps) {
		t.Fatal("NaN in empty summary")
	}
}

func TestDeliveryPastHorizonDoesNotPanic(t *testing.T) {
	c := NewCollector(8 * time.Second)
	c.DataGenerated(&packet.Packet{}, 0)
	// In-flight packets can land just past the horizon.
	c.DataDelivered(mkDelivered(0, 512, 1, 250_000), 9*time.Second)
	s := c.Summary()
	if s.Delivered != 1 {
		t.Fatal("late delivery lost")
	}
}

func TestSummarySnapshotIndependent(t *testing.T) {
	c := NewCollector(time.Second)
	c.DataDropped(&packet.Packet{}, network.DropNoRoute, 0)
	s := c.Summary()
	s.Dropped[network.DropNoRoute] = 99
	if c.Summary().Dropped[network.DropNoRoute] != 1 {
		t.Fatal("mutating a summary leaked into the collector")
	}
}
