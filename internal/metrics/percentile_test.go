package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rica/internal/packet"
)

func TestPercentilesEmpty(t *testing.T) {
	if p := percentiles(nil); p != (DelayPercentiles{}) {
		t.Fatalf("empty percentiles = %+v", p)
	}
}

func TestPercentilesKnownDistribution(t *testing.T) {
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond // 1..100 ms
	}
	// Shuffle to prove sorting happens.
	rng := rand.New(rand.NewSource(1))
	rng.Shuffle(len(samples), func(i, j int) { samples[i], samples[j] = samples[j], samples[i] })
	p := percentiles(samples)
	if p.P50 < 49*time.Millisecond || p.P50 > 52*time.Millisecond {
		t.Errorf("P50 = %v, want ≈50ms", p.P50)
	}
	if p.P90 < 89*time.Millisecond || p.P90 > 92*time.Millisecond {
		t.Errorf("P90 = %v, want ≈90ms", p.P90)
	}
	if p.Max != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", p.Max)
	}
}

func TestPercentilesOrderedProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]time.Duration, len(raw))
		for i, v := range raw {
			samples[i] = time.Duration(v) * time.Microsecond
		}
		p := percentiles(samples)
		return p.P50 <= p.P90 && p.P90 <= p.P99 && p.P99 <= p.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryIncludesPercentiles(t *testing.T) {
	c := NewCollector(10 * time.Second)
	for i := 1; i <= 10; i++ {
		c.DataGenerated(&packet.Packet{Src: 1, Dst: 2}, 0)
		c.DataDelivered(&packet.Packet{Src: 1, Dst: 2, Size: 512, TraversedHops: 1, TraversedBps: 1},
			time.Duration(i)*100*time.Millisecond)
	}
	s := c.Summary()
	if s.Delay.Max != time.Second {
		t.Fatalf("Delay.Max = %v, want 1s", s.Delay.Max)
	}
	if s.Delay.P50 <= 0 || s.Delay.P50 > s.Delay.P99 {
		t.Fatalf("percentiles inconsistent: %+v", s.Delay)
	}
}

func TestPerFlowBreakdown(t *testing.T) {
	c := NewCollector(10 * time.Second)
	// Flow 1→2: 3 generated, 2 delivered. Flow 4→3: 1 generated, 0 delivered.
	for i := 0; i < 3; i++ {
		c.DataGenerated(&packet.Packet{Src: 1, Dst: 2}, 0)
	}
	c.DataGenerated(&packet.Packet{Src: 4, Dst: 3}, 0)
	c.DataDelivered(&packet.Packet{Src: 1, Dst: 2, Size: 512}, 100*time.Millisecond)
	c.DataDelivered(&packet.Packet{Src: 1, Dst: 2, Size: 512}, 300*time.Millisecond)
	s := c.Summary()
	if len(s.PerFlow) != 2 {
		t.Fatalf("flows = %d, want 2", len(s.PerFlow))
	}
	// Deterministic order: (1,2) before (4,3).
	f0 := s.PerFlow[0]
	if f0.Src != 1 || f0.Dst != 2 || f0.Generated != 3 || f0.Delivered != 2 {
		t.Fatalf("flow 0 = %+v", f0)
	}
	if f0.AvgDelay != 200*time.Millisecond {
		t.Fatalf("flow 0 delay = %v, want 200ms", f0.AvgDelay)
	}
	if r := f0.DeliveryRatio(); r < 0.66 || r > 0.67 {
		t.Fatalf("flow 0 ratio = %v", r)
	}
	f1 := s.PerFlow[1]
	if f1.Src != 4 || f1.Delivered != 0 || f1.DeliveryRatio() != 0 {
		t.Fatalf("flow 1 = %+v", f1)
	}
}

func TestEnergyStatsTotal(t *testing.T) {
	e := EnergyStats{ControlJ: 1.5, DataJ: 2.5}
	if e.TotalJ() != 4 {
		t.Fatalf("TotalJ = %v", e.TotalJ())
	}
}
