package metrics

import (
	"slices"
	"sort"
	"time"
)

// delaySample keeps every delivered packet's end-to-end delay so the
// summary can report distribution statistics, not just the mean — tail
// delay is where routing-loop and queue pathologies hide.
//
// Memory: one int64 per delivered packet; the paper-scale run delivers
// ~10^5 packets, a megabyte at worst.

// DelayPercentiles is the delivered-delay distribution snapshot.
type DelayPercentiles struct {
	P50, P90, P99, Max time.Duration
}

// percentiles computes the distribution points from raw samples.
// The input slice is sorted in place.
func percentiles(samples []time.Duration) DelayPercentiles {
	if len(samples) == 0 {
		return DelayPercentiles{}
	}
	slices.Sort(samples) // ordered sort: no per-call comparator boxing
	at := func(q float64) time.Duration {
		idx := int(q * float64(len(samples)-1))
		return samples[idx]
	}
	return DelayPercentiles{
		P50: at(0.50),
		P90: at(0.90),
		P99: at(0.99),
		Max: samples[len(samples)-1],
	}
}

// Mean returns the arithmetic mean of xs (zero for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Quantile returns the q-quantile (q in [0, 1], nearest-rank on the sorted
// order) of xs, sorting the slice in place. Zero for an empty slice. The
// batch engine's cross-trial p50/p95 aggregates are built on it.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return xs[int(q*float64(len(xs)-1)+0.5)]
}
