package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the snapshot reader: it must never
// panic, never allocate unboundedly from a forged length field, and —
// when it does accept an input — hand back sections that re-encode into
// a snapshot it accepts again (read/write/read fixpoint). Truncations,
// bit flips, and version-skewed magics in the corpus must all fail with
// a clean error.
func FuzzRead(f *testing.F) {
	valid := func() []byte {
		var buf bytes.Buffer
		err := Write(&buf, []Section{
			{Tag: "DESC", Payload: []byte(`{"kind":"sim","protocol":"RICA","horizon_ns":10}`)},
			{Tag: "KERN", Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}},
			{Tag: "EMPT", Payload: nil},
		})
		if err != nil {
			f.Fatalf("Write: %v", err)
		}
		return buf.Bytes()
	}()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                         // truncated
	f.Add(append([]byte(nil), valid[:len(valid)-1]...)) // missing last byte
	skew := append([]byte("RICACKP2"), valid[len(Magic):]...)
	f.Add(skew) // version-skewed magic
	flip := append([]byte(nil), valid...)
	flip[len(flip)/3] ^= 0x10
	f.Add(flip) // bit-flipped
	f.Add([]byte(Magic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		secs, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejection is fine; panicking is not
		}
		// Accepted input: the decoded sections must survive a
		// write/read round trip unchanged.
		var buf bytes.Buffer
		if err := Write(&buf, secs); err != nil {
			t.Fatalf("re-Write of accepted sections: %v", err)
		}
		again, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of re-written snapshot: %v", err)
		}
		if len(again) != len(secs) {
			t.Fatalf("round trip changed section count: %d -> %d", len(secs), len(again))
		}
		for i := range secs {
			if again[i].Tag != secs[i].Tag || !bytes.Equal(again[i].Payload, secs[i].Payload) {
				t.Fatalf("round trip changed section %d", i)
			}
		}
		// The descriptor decoder must also stay panic-free on whatever
		// the container accepted.
		_, _ = DecodeDescriptor(Find(secs, TagDesc))
	})
}
