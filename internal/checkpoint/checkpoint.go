// Package checkpoint defines the on-disk snapshot format for
// checkpoint/resume: a versioned, self-describing container of tagged
// binary sections, each integrity-checked with a CRC, closed by a tail
// record protecting the whole file.
//
// The format is deliberately dumb: it knows nothing about simulations.
// Section payloads are produced by the world layer (see
// world.World.CaptureState) and interpreted by the resume path in the
// public rica package; this package only guarantees that what was
// written is what is read — a truncated, bit-flipped, or
// version-skewed file fails with a clean error, never a panic and
// never a silent partial decode.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "RICACKP1"            format name + version
//	section: tag [4]byte | len uint32 | payload [len]byte | crc32 uint32
//	...                                    (one or more sections)
//	tail:    tag "TAIL" | len 8 | count uint32, filecrc uint32 | crc32
//
// The per-section CRC (IEEE) covers the payload; the tail's filecrc
// covers every byte from the magic through the last ordinary section's
// CRC, so reordering, dropping, or duplicating whole (individually
// valid) sections is also detected. Unknown tags are preserved and
// skipped by readers — a newer writer may add sections without breaking
// an older reader's ability to reject or inspect the file. The magic
// string carries the format version: any incompatible change to the
// container or to a section payload's encoding bumps "RICACKP1" to
// "RICACKP2", and old readers reject new files outright (and vice
// versa) instead of mis-restoring.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"
)

// Magic identifies the container format and its version.
const Magic = "RICACKP1"

// tailTag closes every file; it is not a user section.
const tailTag = "TAIL"

// Section tags written by the world capture (the resume path verifies a
// fresh capture against these byte-for-byte). DESC and POOL are exempt
// from verification: DESC is the run recipe itself, and POOL reports
// process-global pool accounting that other concurrent runs perturb.
const (
	TagDesc = "DESC" // JSON run descriptor (see Descriptor)
	TagKern = "KERN" // kernel clock, sequence counter, pending-event skeleton
	TagRNGs = "RNGS" // every RNG stream's lagged-Fibonacci state, creation order
	TagMobi = "MOBI" // per-terminal waypoint leg state
	TagLink = "LINK" // per-pair fading link state, triangular index order
	TagMACs = "MACS" // common-channel transmissions + data-plane exchanges
	TagNode = "NODE" // per-terminal link-queue skeletons
	TagTraf = "TRAF" // traffic generator and gossip workload state
	TagTser = "TSER" // timeseries collector digest
	TagObsC = "OBSC" // observability counter snapshot (JSON)
	TagPool = "POOL" // process-global pooled-packet accounting (informational)
)

// Limits a strict reader enforces before trusting any length field.
const (
	// MaxSectionLen bounds one payload: the largest legitimate section
	// (RNGS for a dense population) is a few tens of megabytes.
	MaxSectionLen = 1 << 28
	// maxSections bounds the section count; the writer emits ~11.
	maxSections = 256
)

// Section is one tagged payload.
type Section struct {
	Tag     string
	Payload []byte
}

// ErrCorrupt wraps every integrity failure, so callers can distinguish
// "the file is damaged" from I/O errors with errors.Is.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// Write emits the sections to w in order, framed and checksummed, and
// closed with the tail record. Tags must be exactly 4 bytes.
func Write(w io.Writer, sections []Section) error {
	crc := crc32.NewIEEE()
	out := io.MultiWriter(w, crc)
	if _, err := io.WriteString(out, Magic); err != nil {
		return err
	}
	for _, s := range sections {
		if len(s.Tag) != 4 {
			return fmt.Errorf("checkpoint: tag %q is not 4 bytes", s.Tag)
		}
		if s.Tag == tailTag {
			return fmt.Errorf("checkpoint: %q is reserved", tailTag)
		}
		if len(s.Payload) > MaxSectionLen {
			return fmt.Errorf("checkpoint: section %s exceeds %d bytes", s.Tag, MaxSectionLen)
		}
		if err := writeSection(out, s.Tag, s.Payload); err != nil {
			return err
		}
	}
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:], uint32(len(sections)))
	binary.LittleEndian.PutUint32(tail[4:], crc.Sum32())
	// The tail section goes to w only: its own CRC covers its payload,
	// and the filecrc inside it covers everything before it.
	return writeSection(w, tailTag, tail[:])
}

func writeSection(w io.Writer, tag string, payload []byte) error {
	var hdr [8]byte
	copy(hdr[:4], tag)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(sum[:])
	return err
}

// Read parses a complete snapshot from r, verifying the magic, every
// section CRC, and the tail's whole-file CRC. The returned sections are
// in file order and exclude the tail. Any deviation — truncation, a
// flipped bit, a foreign magic, an oversized length — returns an error
// wrapping ErrCorrupt.
func Read(r io.Reader) ([]Section, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	var magic [8]byte
	if _, err := io.ReadFull(tr, magic[:]); err != nil {
		return nil, corruptf("short magic: %v", err)
	}
	if string(magic[:]) != Magic {
		return nil, corruptf("bad magic %q (want %q; incompatible version?)", magic[:], Magic)
	}
	var sections []Section
	for {
		fileCRC := crc.Sum32() // CRC of everything before this section
		var hdr [8]byte
		if _, err := io.ReadFull(tr, hdr[:]); err != nil {
			return nil, corruptf("short section header: %v", err)
		}
		tag := string(hdr[:4])
		n := binary.LittleEndian.Uint32(hdr[4:])
		if n > MaxSectionLen {
			return nil, corruptf("section %q claims %d bytes (max %d)", tag, n, MaxSectionLen)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(tr, payload); err != nil {
			return nil, corruptf("section %q truncated: %v", tag, err)
		}
		var sum [4]byte
		if _, err := io.ReadFull(tr, sum[:]); err != nil {
			return nil, corruptf("section %q missing checksum: %v", tag, err)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(sum[:]); got != want {
			return nil, corruptf("section %q checksum mismatch", tag)
		}
		if tag == tailTag {
			if len(payload) != 8 {
				return nil, corruptf("tail payload is %d bytes, want 8", len(payload))
			}
			count := binary.LittleEndian.Uint32(payload[0:])
			want := binary.LittleEndian.Uint32(payload[4:])
			if int(count) != len(sections) {
				return nil, corruptf("tail records %d sections, file has %d", count, len(sections))
			}
			if fileCRC != want {
				return nil, corruptf("whole-file checksum mismatch")
			}
			// Nothing may follow the tail.
			var extra [1]byte
			if _, err := r.Read(extra[:]); err != io.EOF {
				return nil, corruptf("trailing data after tail")
			}
			return sections, nil
		}
		if len(sections) >= maxSections {
			return nil, corruptf("more than %d sections", maxSections)
		}
		sections = append(sections, Section{Tag: tag, Payload: payload})
	}
}

// Find returns the first section with the given tag, or nil.
func Find(sections []Section, tag string) []byte {
	for _, s := range sections {
		if s.Tag == tag {
			return s.Payload
		}
	}
	return nil
}

// Descriptor is the JSON run recipe embedded in every snapshot (the
// DESC section): everything needed to rebuild the identical world in a
// fresh process and replay it to the capture instant. Durations are
// nanoseconds so the JSON stays integer-exact.
type Descriptor struct {
	// Kind discriminates the run recipe: "scenario" (a declarative
	// scenario spec) or "sim" (a SimConfig-shaped parameter set).
	Kind string `json:"kind"`
	// AtNs is the virtual instant the state sections were captured at.
	AtNs int64 `json:"at_ns"`
	// HorizonNs is the run's full horizon; resume continues to it.
	HorizonNs int64 `json:"horizon_ns"`
	// Protocol names the routing protocol under test.
	Protocol string `json:"protocol"`
	// Seed, SeedZero, Shards and MaxDurationNs mirror the fields of
	// rica.ScenarioRun / rica.SimConfig they came from.
	Seed          int64 `json:"seed,omitempty"`
	SeedZero      bool  `json:"seed_zero,omitempty"`
	Shards        int   `json:"shards,omitempty"`
	MaxDurationNs int64 `json:"max_duration_ns,omitempty"`
	// Scenario is the validated scenario spec, verbatim (kind "scenario").
	Scenario json.RawMessage `json:"scenario,omitempty"`
	// Sim carries the single-run parameters (kind "sim").
	Sim *SimParams `json:"sim,omitempty"`
	// Telemetry, when non-nil, re-enables timeline collection on resume
	// with the same interval and percentile path.
	Telemetry *TelemetryParams `json:"telemetry,omitempty"`
}

// SimParams is the serializable subset of rica.SimConfig.
type SimParams struct {
	MeanSpeedKmh float64 `json:"mean_speed_kmh"`
	Rate         float64 `json:"rate"`
	DurationNs   int64   `json:"duration_ns,omitempty"`
	BufferCap    int     `json:"buffer_cap,omitempty"`
	// Flows is the pinned workload as JSON, when the run set one.
	Flows json.RawMessage `json:"flows,omitempty"`
}

// TelemetryParams records a run's timeline collection settings.
type TelemetryParams struct {
	IntervalNs int64 `json:"interval_ns,omitempty"`
	Streaming  bool  `json:"streaming,omitempty"`
}

// EncodeDescriptor renders d as the DESC payload.
func EncodeDescriptor(d Descriptor) ([]byte, error) { return json.Marshal(d) }

// DecodeDescriptor parses and sanity-checks a DESC payload.
func DecodeDescriptor(payload []byte) (Descriptor, error) {
	var d Descriptor
	if payload == nil {
		return d, corruptf("missing %s section", TagDesc)
	}
	if err := json.Unmarshal(payload, &d); err != nil {
		return d, corruptf("descriptor: %v", err)
	}
	switch d.Kind {
	case "scenario", "sim":
	default:
		return d, corruptf("descriptor kind %q unknown", d.Kind)
	}
	if d.AtNs < 0 || d.HorizonNs < 0 || d.AtNs > d.HorizonNs {
		return d, corruptf("descriptor instant %dns outside horizon %dns", d.AtNs, d.HorizonNs)
	}
	if d.Protocol == "" {
		return d, corruptf("descriptor names no protocol")
	}
	return d, nil
}

// Enc is a little-endian append-only encoder for section payloads. All
// captures go through it so payload bytes are a pure function of the
// captured values — the resume path compares payloads byte-for-byte.
type Enc struct{ buf []byte }

// Bytes returns the encoded payload.
func (e *Enc) Bytes() []byte { return e.buf }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Dur appends a time.Duration as nanoseconds.
func (e *Enc) Dur(v time.Duration) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern (exact, no formatting).
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// Dec is the matching bounds-checked decoder. After any short read it
// latches an error and returns zeros; check Err once at the end.
type Dec struct {
	b   []byte
	err error
}

// NewDec wraps a payload for decoding.
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Err reports the first decode failure, if any.
func (d *Dec) Err() error { return d.err }

// Len reports the unread byte count.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.b) < n {
		d.err = corruptf("payload truncated (want %d bytes, have %d)", n, len(d.b))
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// U32 reads a uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Dec) Int() int { return int(d.I64()) }

// Dur reads a time.Duration.
func (d *Dec) Dur() time.Duration { return time.Duration(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a one-byte bool.
func (d *Dec) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}
