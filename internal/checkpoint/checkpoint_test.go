package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"strings"
	"testing"
	"time"
)

func sampleSections() []Section {
	return []Section{
		{Tag: "DESC", Payload: []byte(`{"kind":"sim"}`)},
		{Tag: "KERN", Payload: []byte{1, 2, 3, 4, 5}},
		{Tag: "EMPT", Payload: nil}, // zero-length payloads are legal
		{Tag: "RNGS", Payload: bytes.Repeat([]byte{0xAB}, 1000)},
	}
}

func mustWrite(t *testing.T, secs []Section) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, secs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	want := sampleSections()
	got, err := Read(bytes.NewReader(mustWrite(t, want)))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("Read returned %d sections, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Tag != want[i].Tag {
			t.Errorf("section %d tag = %q, want %q", i, got[i].Tag, want[i].Tag)
		}
		if !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Errorf("section %d payload mismatch", i)
		}
	}
	if Find(got, "KERN") == nil || Find(got, "MISS") != nil {
		t.Error("Find misbehaved")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	snap := mustWrite(t, sampleSections())
	for n := 0; n < len(snap); n++ {
		if _, err := Read(bytes.NewReader(snap[:n])); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestReadRejectsBitFlips(t *testing.T) {
	snap := mustWrite(t, sampleSections())
	for i := range snap {
		for _, mask := range []byte{0x01, 0x80} {
			bad := append([]byte(nil), snap...)
			bad[i] ^= mask
			if _, err := Read(bytes.NewReader(bad)); err == nil {
				t.Fatalf("flip of bit %02x in byte %d went undetected", mask, i)
			}
		}
	}
}

func TestReadRejectsVersionSkew(t *testing.T) {
	snap := mustWrite(t, sampleSections())
	skewed := append([]byte("RICACKP2"), snap[len(Magic):]...)
	_, err := Read(bytes.NewReader(skewed))
	if !errors.Is(err, ErrCorrupt) || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version magic: err = %v, want ErrCorrupt mentioning version", err)
	}
}

func TestReadRejectsTrailingData(t *testing.T) {
	snap := append(mustWrite(t, sampleSections()), 0x00)
	if _, err := Read(bytes.NewReader(snap)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsOversizedLength(t *testing.T) {
	// Hand-craft a header claiming a payload larger than MaxSectionLen;
	// the reader must refuse before allocating it.
	var buf bytes.Buffer
	buf.WriteString(Magic)
	var hdr [8]byte
	copy(hdr[:4], "HUGE")
	binary.LittleEndian.PutUint32(hdr[4:], MaxSectionLen+1)
	buf.Write(hdr[:])
	if _, err := Read(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsDroppedSection(t *testing.T) {
	// Remove one individually-valid section from the middle: every
	// per-section CRC still passes, so only the tail's whole-file CRC
	// (and count) can catch it.
	secs := sampleSections()
	full := mustWrite(t, secs)
	one := mustWrite(t, secs[1:2]) // framing of the KERN section alone
	kern := one[len(Magic) : len(one)-(8+8+4)]
	idx := bytes.Index(full, kern)
	if idx < 0 {
		t.Fatal("could not locate KERN framing in full snapshot")
	}
	dropped := append(append([]byte(nil), full[:idx]...), full[idx+len(kern):]...)
	if _, err := Read(bytes.NewReader(dropped)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("dropped section: err = %v, want ErrCorrupt", err)
	}
}

func TestReadRejectsForgedTail(t *testing.T) {
	// A tail whose count and filecrc are self-consistent garbage but
	// whose own section CRC is fixed up: the whole-file CRC must differ.
	secs := sampleSections()
	full := mustWrite(t, secs)
	tailLen := 8 + 8 + 4
	body := full[:len(full)-tailLen]
	var tail [8]byte
	binary.LittleEndian.PutUint32(tail[0:], uint32(len(secs)))
	binary.LittleEndian.PutUint32(tail[4:], 0xDEADBEEF) // wrong filecrc
	var buf bytes.Buffer
	buf.Write(body)
	var hdr [8]byte
	copy(hdr[:4], "TAIL")
	binary.LittleEndian.PutUint32(hdr[4:], 8)
	buf.Write(hdr[:])
	buf.Write(tail[:])
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(tail[:]))
	buf.Write(sum[:])
	if _, err := Read(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged tail: err = %v, want ErrCorrupt", err)
	}
}

func TestWriteRejectsBadTags(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Section{{Tag: "TOOLONG"}}); err == nil {
		t.Error("Write accepted a 7-byte tag")
	}
	if err := Write(&buf, []Section{{Tag: tailTag}}); err == nil {
		t.Error("Write accepted the reserved TAIL tag")
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e Enc
	e.U32(7)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(12345)
	e.Dur(3 * time.Second)
	e.F64(math.Pi)
	e.F64(math.Inf(-1))
	e.Bool(true)
	e.Bool(false)
	d := NewDec(e.Bytes())
	if v := d.U32(); v != 7 {
		t.Errorf("U32 = %d", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Errorf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if v := d.Int(); v != 12345 {
		t.Errorf("Int = %d", v)
	}
	if v := d.Dur(); v != 3*time.Second {
		t.Errorf("Dur = %v", v)
	}
	if v := d.F64(); v != math.Pi {
		t.Errorf("F64 = %v", v)
	}
	if v := d.F64(); !math.IsInf(v, -1) {
		t.Errorf("F64 inf = %v", v)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if d.Err() != nil || d.Len() != 0 {
		t.Errorf("decoder state: err=%v len=%d", d.Err(), d.Len())
	}
	// Over-read latches ErrCorrupt and yields zeros from then on.
	if v := d.U64(); v != 0 || !errors.Is(d.Err(), ErrCorrupt) {
		t.Errorf("over-read: v=%d err=%v", v, d.Err())
	}
	if v := d.Int(); v != 0 {
		t.Errorf("post-error read = %d, want 0", v)
	}
}

func TestDescriptorValidation(t *testing.T) {
	good := Descriptor{Kind: "scenario", AtNs: 5, HorizonNs: 10, Protocol: "RICA"}
	payload, err := EncodeDescriptor(good)
	if err != nil {
		t.Fatalf("EncodeDescriptor: %v", err)
	}
	if _, err := DecodeDescriptor(payload); err != nil {
		t.Fatalf("DecodeDescriptor(valid): %v", err)
	}
	bad := []Descriptor{
		{Kind: "mystery", AtNs: 0, HorizonNs: 1, Protocol: "RICA"},
		{Kind: "sim", AtNs: 5, HorizonNs: 1, Protocol: "RICA"}, // instant past horizon
		{Kind: "sim", AtNs: -1, HorizonNs: 1, Protocol: "RICA"},
		{Kind: "sim", AtNs: 0, HorizonNs: 1}, // no protocol
	}
	for i, d := range bad {
		p, err := EncodeDescriptor(d)
		if err != nil {
			t.Fatalf("EncodeDescriptor(bad %d): %v", i, err)
		}
		if _, err := DecodeDescriptor(p); !errors.Is(err, ErrCorrupt) {
			t.Errorf("bad descriptor %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	if _, err := DecodeDescriptor(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil descriptor: err = %v, want ErrCorrupt", err)
	}
	if _, err := DecodeDescriptor([]byte("{")); !errors.Is(err, ErrCorrupt) {
		t.Errorf("malformed JSON: err = %v, want ErrCorrupt", err)
	}
}
