package traffic

import (
	"math/rand"
	"testing"
	"time"
)

// TestOnOffArrivalsStayInWindows: every arrival an on-off flow schedules
// lands inside an on window, wherever the previous arrival left the
// clock — including mid-off, where a zero-truncated exponential draw
// once mapped into the past.
func TestOnOffArrivalsStayInWindows(t *testing.T) {
	const (
		on    = 5 * time.Second
		off   = 5 * time.Second
		cycle = on + off
	)
	f := Flow{Src: 0, Dst: 1, Rate: 1000, Pattern: OnOff, On: on, Off: off}
	rng := rand.New(rand.NewSource(42))
	// Walk arrival-to-arrival for a while, probing from both window kinds.
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		gap := f.nextGap(now, rng)
		if gap <= 0 {
			t.Fatalf("arrival %d: non-positive gap %v at now=%v", i, gap, now)
		}
		now += gap
		if phase := now % cycle; phase > on {
			t.Fatalf("arrival %d at %v lands in an off window (phase %v)", i, now, phase)
		}
	}
	// Probe explicitly from deep inside an off window.
	for probe := on + time.Millisecond; probe < cycle; probe += time.Second {
		gap := f.nextGap(probe, rng)
		if gap <= 0 {
			t.Fatalf("probe at %v: non-positive gap %v", probe, gap)
		}
		if phase := (probe + gap) % cycle; phase > on {
			t.Fatalf("probe at %v schedules into an off window (phase %v)", probe, phase)
		}
	}
}

// TestCBRIsConstant: CBR arrivals are exactly 1/Rate apart and draw no
// randomness.
func TestCBRIsConstant(t *testing.T) {
	f := Flow{Src: 0, Dst: 1, Rate: 10, Pattern: CBR}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if gap := f.nextGap(time.Duration(i)*time.Second, rng); gap != 100*time.Millisecond {
			t.Fatalf("CBR gap = %v, want 100ms", gap)
		}
	}
}
