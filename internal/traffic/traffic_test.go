package traffic

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/geom"
	"rica/internal/mac"
	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/sim"
)

// fixedPos pins a terminal to one point.
type fixedPos geom.Point

func (p fixedPos) Position(time.Duration) geom.Point { return geom.Point(p) }

func TestChoosePairsDisjoint(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		flows := ChoosePairs(50, 10, 10, rand.New(rand.NewSource(seed)))
		if len(flows) != 10 {
			t.Fatalf("got %d flows", len(flows))
		}
		seen := make(map[int]bool)
		for _, f := range flows {
			if f.Src == f.Dst {
				t.Fatalf("self flow %+v", f)
			}
			if seen[f.Src] || seen[f.Dst] {
				t.Fatalf("endpoint reused in %+v", f)
			}
			seen[f.Src] = true
			seen[f.Dst] = true
			if f.Rate != 10 {
				t.Fatalf("rate %v, want 10", f.Rate)
			}
		}
	}
}

func TestChoosePairsDeterministic(t *testing.T) {
	a := ChoosePairs(50, 10, 10, rand.New(rand.NewSource(3)))
	b := ChoosePairs(50, 10, 10, rand.New(rand.NewSource(3)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different pairs")
		}
	}
}

func TestChoosePairsPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 10 pairs from 19 terminals")
		}
	}()
	ChoosePairs(19, 10, 10, rand.New(rand.NewSource(1)))
}

// TestPoissonRate drives a generator against counting sinks and checks the
// realized rate is near the configured one.
func TestPoissonRate(t *testing.T) {
	kernel := sim.NewKernel()
	streams := sim.NewStreams(7)
	nodes, counts := countingNodes(t, kernel, streams, 4)
	gen := NewGenerator(kernel, nodes)
	const rate = 20.0
	const horizon = 100 * time.Second
	gen.Start([]Flow{{Src: 0, Dst: 1, Rate: rate}, {Src: 2, Dst: 3, Rate: rate}}, streams, horizon)
	kernel.Run(horizon)
	for _, src := range []int{0, 2} {
		got := float64(counts[src]) / horizon.Seconds()
		if math.Abs(got-rate) > rate*0.15 {
			t.Errorf("flow from %d realized %.1f packets/s, want ≈%v", src, got, rate)
		}
	}
	if counts[1] != 0 || counts[3] != 0 {
		t.Error("destination terminals generated packets")
	}
}

func TestZeroRateFlowInert(t *testing.T) {
	kernel := sim.NewKernel()
	streams := sim.NewStreams(9)
	nodes, counts := countingNodes(t, kernel, streams, 2)
	NewGenerator(kernel, nodes).Start([]Flow{{Src: 0, Dst: 1, Rate: 0}}, streams, 10*time.Second)
	kernel.Run(10 * time.Second)
	if counts[0] != 0 {
		t.Fatalf("zero-rate flow generated %d packets", counts[0])
	}
}

func TestGenerationStopsAtHorizon(t *testing.T) {
	kernel := sim.NewKernel()
	streams := sim.NewStreams(5)
	nodes, counts := countingNodes(t, kernel, streams, 2)
	NewGenerator(kernel, nodes).Start([]Flow{{Src: 0, Dst: 1, Rate: 50}}, streams, 5*time.Second)
	kernel.Run(20 * time.Second) // run far past the traffic stop
	rate := float64(counts[0]) / 5.0
	if rate < 35 || rate > 65 {
		t.Fatalf("realized %.1f packets/s over the 5 s window, want ≈50", rate)
	}
}

// countingNodes builds real network nodes whose agents count originations
// and drop everything (no routes).
func countingNodes(t *testing.T, kernel *sim.Kernel, streams *sim.Streams, n int) ([]*network.Node, []int) {
	t.Helper()
	counts := make([]int, n)
	pos := make([]channel.Positioner, n)
	for i := range pos {
		pos[i] = fixedPos{X: float64(i) * 50, Y: 0}
	}
	model := channel.NewModel(channel.DefaultConfig(), streams, pos)
	common := mac.NewCommonChannel(kernel, model, streams.Stream(999))
	data := mac.NewDataPlane(kernel, model)
	rec := nopRecorder{}
	nodes := make([]*network.Node, n)
	for i := 0; i < n; i++ {
		i := i
		nd := network.NewNode(i, kernel, common, data, model, streams.Stream(uint64(100+i)), rec, network.DefaultNodeConfig())
		nd.SetAgent(&countingAgent{counts: counts, id: i, env: nd})
		nodes[i] = nd
		nd.Start()
	}
	return nodes, counts
}

type nopRecorder struct{}

func (nopRecorder) DataGenerated(*packet.Packet, time.Duration)                   {}
func (nopRecorder) DataDelivered(*packet.Packet, time.Duration)                   {}
func (nopRecorder) DataDropped(*packet.Packet, network.DropReason, time.Duration) {}

type countingAgent struct {
	counts []int
	id     int
	env    network.Env
}

func (a *countingAgent) Start(time.Duration)                           {}
func (a *countingAgent) HandleControl(*packet.Packet, time.Duration)   {}
func (a *countingAgent) DataArrived(*packet.Packet, time.Duration)     {}
func (a *countingAgent) LinkFailed(int, *packet.Packet, time.Duration) {}
func (a *countingAgent) RouteData(p *packet.Packet, _ time.Duration) {
	a.counts[a.id]++
	a.env.DropData(p, network.DropNoRoute)
}
