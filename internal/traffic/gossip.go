package traffic

import (
	"math/rand"
	"time"

	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
	"rica/internal/sim"
)

// GossipConfig describes an epidemic push-dissemination workload: Rumors
// distinct rumors are seeded at random origin terminals at t = 0, and
// every terminal that learns a rumor pushes it to Pushes uniformly random
// targets, one push per exponential gap at Rate pushes/s. Unlike the
// fixed-pair flow workload, the source set *grows* with the epidemic —
// each infection turns a bystander into a sender with fresh random
// destinations, which is the flood-heaviest shape on-demand route
// discovery can face.
type GossipConfig struct {
	// Rumors is how many independent epidemics to seed.
	Rumors int
	// Rate is each infected terminal's push rate in pushes/s per rumor.
	Rate float64
	// Pushes is each infected terminal's push budget per rumor.
	Pushes int
}

// gossipRumorBase offsets the BroadcastID field on gossip data packets:
// rumor r travels with BroadcastID r+1, so flow-generated data (which
// leaves the field zero) can never alias rumor 0.
const gossipRumorBase = 1

// Gossip drives one epidemic workload. Construct with NewGossip before
// the world's recorder chain is assembled (the delivery tee feeds
// Delivered), Bind the node set once terminals exist, and Start it
// alongside the flow generator.
type Gossip struct {
	kernel *sim.Kernel
	rng    *rand.Rand
	obs    *obs.Registry
	cfg    GossipConfig
	nodes  []*network.Node
	stop   time.Duration
	nextID uint64

	// infected[r][i] records whether terminal i knows rumor r. Infection
	// is monotone: a terminal never forgets, re-receipts are no-ops.
	infected [][]bool
	count    int
}

// gossipIDBase keeps gossip packet IDs disjoint from the flow
// generator's (which count up from 1), so a mixed workload never issues
// the same data-packet ID twice in one run.
const gossipIDBase = 1 << 40

// NewGossip builds an idle gossip workload. rng must be a dedicated
// deterministic stream: every origin draw, push gap, and target draw
// comes from it, in event order.
func NewGossip(kernel *sim.Kernel, cfg GossipConfig, rng *rand.Rand, reg *obs.Registry) *Gossip {
	return &Gossip{kernel: kernel, rng: rng, obs: reg, cfg: cfg, nextID: gossipIDBase}
}

// Bind attaches the terminal set (a second phase, because the world
// builds its recorder chain — which tees deliveries into this gossip —
// before it builds the nodes that consume the chain).
func (g *Gossip) Bind(nodes []*network.Node) { g.nodes = nodes }

// Start seeds every rumor at a random origin at the current instant and
// lets the epidemic run until stop.
func (g *Gossip) Start(stop time.Duration) {
	g.stop = stop
	n := len(g.nodes)
	g.infected = make([][]bool, g.cfg.Rumors)
	for r := range g.infected {
		g.infected[r] = make([]bool, n)
	}
	now := g.kernel.Now()
	for r := 0; r < g.cfg.Rumors; r++ {
		g.infect(r, g.rng.Intn(n), now)
	}
}

// Delivered is the recorder-tee hook: a data packet reached its
// destination; if it carries a rumor, the destination is now infected
// and starts pushing. Non-gossip data (BroadcastID zero, or a rumor
// index this workload never seeded) passes through untouched.
func (g *Gossip) Delivered(pkt *packet.Packet, now time.Duration) {
	if pkt.Type != packet.TypeData || pkt.BroadcastID < gossipRumorBase {
		return
	}
	r := int(pkt.BroadcastID) - gossipRumorBase
	if r >= len(g.infected) {
		return
	}
	g.infect(r, pkt.Dst, now)
}

// Infected reports how many terminal × rumor infections have occurred —
// the epidemic's coverage (origins included).
func (g *Gossip) Infected() int { return g.count }

// infect marks (rumor, terminal) infected and spawns its pusher. A
// re-infection is a no-op, so each terminal pushes each rumor at most
// Pushes times no matter how many copies reach it.
func (g *Gossip) infect(rumor, node int, now time.Duration) {
	if g.infected[rumor][node] {
		return
	}
	g.infected[rumor][node] = true
	g.count++
	g.obs.Inc(obs.CGossipInfections)
	if g.cfg.Pushes < 1 || g.cfg.Rate <= 0 || now >= g.stop {
		return
	}
	p := &pusher{g: g, rumor: rumor, node: node, left: g.cfg.Pushes}
	p.fire = p.tick
	g.kernel.Schedule(g.gap(), p.fire)
}

// gap draws the exponential delay until a pusher's next push.
func (g *Gossip) gap() time.Duration {
	return time.Duration(g.rng.ExpFloat64() / g.cfg.Rate * float64(time.Second))
}

// pusher is one infected (terminal, rumor) pair working through its push
// budget. One bound handler per infection — allocation scales with the
// epidemic's coverage, not its packet count.
type pusher struct {
	g     *Gossip
	rumor int
	node  int
	left  int
	fire  sim.Handler
}

// tick pushes the rumor to one uniformly random other terminal and
// re-arms while budget remains.
func (p *pusher) tick(now time.Duration) {
	g := p.g
	if now >= g.stop {
		return
	}
	target := g.rng.Intn(len(g.nodes) - 1)
	if target >= p.node {
		target++
	}
	g.nextID++
	pkt := packet.Get()
	pkt.Type = packet.TypeData
	pkt.ID = g.nextID
	pkt.Src = p.node
	pkt.Dst = target
	pkt.Size = packet.SizeData
	pkt.CreatedAt = now
	pkt.BroadcastID = uint32(p.rumor + gossipRumorBase)
	g.obs.Inc(obs.CTrafficGenerated)
	g.nodes[p.node].OriginateData(pkt, now)
	p.left--
	if p.left > 0 {
		g.kernel.Schedule(g.gap(), p.fire)
	}
}

// GossipState is the serializable epidemic state: the infection count,
// the rumor-payload id cursor, and the flattened infection bitmap
// (rumor-major). Checkpoint verification compares it across processes.
type GossipState struct {
	Count    int
	NextID   uint64
	Infected []bool
}

// ExportState snapshots the epidemic without touching its RNG.
func (g *Gossip) ExportState() GossipState {
	st := GossipState{Count: g.count, NextID: g.nextID}
	for _, row := range g.infected {
		st.Infected = append(st.Infected, row...)
	}
	return st
}
