// Package traffic generates the paper's workload: a fixed set of
// source/destination terminal pairs, each producing 512-byte data packets
// as a Poisson process (exponential inter-arrival times) at 10 or 20
// packets per second.
package traffic

import (
	"math/rand"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/sim"
)

// Flow is one unidirectional Poisson stream of data packets.
type Flow struct {
	Src, Dst int
	// Rate is the mean packet generation rate in packets per second.
	Rate float64
}

// ChoosePairs draws count flows with all endpoints distinct, uniformly at
// random from n terminals, each at the given rate. It panics when n is too
// small for the requested number of disjoint pairs.
func ChoosePairs(n, count int, rate float64, rng *rand.Rand) []Flow {
	if 2*count > n {
		panic("traffic: not enough terminals for disjoint pairs")
	}
	perm := rng.Perm(n)
	flows := make([]Flow, count)
	for i := range flows {
		flows[i] = Flow{Src: perm[2*i], Dst: perm[2*i+1], Rate: rate}
	}
	return flows
}

// streamKindFlow namespaces per-flow arrival streams.
const streamKindFlow = 0x_F10A

// Generator drives a set of flows against the network layer.
type Generator struct {
	kernel *sim.Kernel
	nodes  []*network.Node
	nextID uint64
}

// NewGenerator builds a generator injecting into nodes.
func NewGenerator(kernel *sim.Kernel, nodes []*network.Node) *Generator {
	return &Generator{kernel: kernel, nodes: nodes}
}

// Start schedules Poisson arrivals for every flow from time zero until
// stop. Each flow draws from its own deterministic stream.
func (g *Generator) Start(flows []Flow, streams *sim.Streams, stop time.Duration) {
	for i, f := range flows {
		if f.Rate <= 0 {
			continue
		}
		rng := streams.StreamAt(streamKindFlow, uint64(i))
		g.scheduleNext(f, rng, stop)
	}
}

// scheduleNext arms the next arrival for flow f.
func (g *Generator) scheduleNext(f Flow, rng *rand.Rand, stop time.Duration) {
	gap := time.Duration(rng.ExpFloat64() / f.Rate * float64(time.Second))
	g.kernel.Schedule(gap, func(now time.Duration) {
		if now >= stop {
			return
		}
		g.nextID++
		pkt := &packet.Packet{
			Type:      packet.TypeData,
			ID:        g.nextID,
			Src:       f.Src,
			Dst:       f.Dst,
			Size:      packet.SizeData,
			CreatedAt: now,
		}
		g.nodes[f.Src].OriginateData(pkt, now)
		g.scheduleNext(f, rng, stop)
	})
}
