// Package traffic generates the paper's workload: a fixed set of
// source/destination terminal pairs, each producing 512-byte data packets
// as a Poisson process (exponential inter-arrival times) at 10 or 20
// packets per second.
package traffic

import (
	"fmt"
	"math/rand"
	"time"

	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
	"rica/internal/sim"
)

// Pattern selects a flow's packet arrival process.
type Pattern int

// The supported arrival processes.
const (
	// Poisson draws exponential inter-arrival times at Rate (the paper's
	// workload and the zero value).
	Poisson Pattern = iota
	// CBR emits packets at a constant 1/Rate interval.
	CBR
	// OnOff is a bursty source: Poisson arrivals at Rate during fixed On
	// windows, silence during the Off windows between them. The on/off
	// cycle is phase-locked to t = 0 so all bursty flows surge together —
	// the worst case for buffer contention.
	OnOff
)

// String names the pattern for tables and JSON.
func (p Pattern) String() string {
	switch p {
	case Poisson:
		return "poisson"
	case CBR:
		return "cbr"
	case OnOff:
		return "onoff"
	default:
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
}

// Flow is one unidirectional stream of data packets.
type Flow struct {
	Src, Dst int
	// Rate is the mean packet generation rate in packets per second
	// (during On windows for OnOff flows).
	Rate float64
	// Pattern is the arrival process; the zero value is Poisson.
	Pattern Pattern
	// On and Off set the OnOff burst cycle; ignored by other patterns.
	On, Off time.Duration
}

// ChoosePairs draws count flows with all endpoints distinct, uniformly at
// random from n terminals, each at the given rate. It panics when n is too
// small for the requested number of disjoint pairs.
func ChoosePairs(n, count int, rate float64, rng *rand.Rand) []Flow {
	if 2*count > n {
		panic("traffic: not enough terminals for disjoint pairs")
	}
	perm := rng.Perm(n)
	flows := make([]Flow, count)
	for i := range flows {
		flows[i] = Flow{Src: perm[2*i], Dst: perm[2*i+1], Rate: rate}
	}
	return flows
}

// streamKindFlow namespaces per-flow arrival streams.
const streamKindFlow = 0x_F10A

// Generator drives a set of flows against the network layer.
type Generator struct {
	kernel *sim.Kernel
	nodes  []*network.Node
	nextID uint64

	// Obs, when set, counts generated packets into the run's registry.
	Obs *obs.Registry
}

// NewGenerator builds a generator injecting into nodes.
func NewGenerator(kernel *sim.Kernel, nodes []*network.Node) *Generator {
	return &Generator{kernel: kernel, nodes: nodes}
}

// Start schedules Poisson arrivals for every flow from time zero until
// stop. Each flow draws from its own deterministic stream.
func (g *Generator) Start(flows []Flow, streams *sim.Streams, stop time.Duration) {
	for i, f := range flows {
		if f.Rate <= 0 {
			continue
		}
		// One runner (and one bound handler) per flow, built once: the
		// per-packet rescheduling then reuses it, so a million arrivals
		// cost the allocator nothing beyond the packets themselves.
		r := &flowRunner{g: g, f: f, rng: streams.StreamAt(streamKindFlow, uint64(i)), stop: stop}
		r.fire = r.tick
		r.schedule()
	}
}

// flowRunner drives one flow's arrival process.
type flowRunner struct {
	g    *Generator
	f    Flow
	rng  *rand.Rand
	stop time.Duration
	fire sim.Handler // bound tick, built once
}

// schedule arms the flow's next arrival.
func (r *flowRunner) schedule() {
	r.g.kernel.Schedule(r.f.nextGap(r.g.kernel.Now(), r.rng), r.fire)
}

// tick emits one data packet and re-arms.
func (r *flowRunner) tick(now time.Duration) {
	if now >= r.stop {
		return
	}
	r.g.nextID++
	// Pooled: the network layer releases the packet when it is delivered
	// or dropped, so the steady-state workload recycles a handful of
	// records instead of allocating one per arrival.
	pkt := packet.Get()
	pkt.Type = packet.TypeData
	pkt.ID = r.g.nextID
	pkt.Src = r.f.Src
	pkt.Dst = r.f.Dst
	pkt.Size = packet.SizeData
	pkt.CreatedAt = now
	r.g.Obs.Inc(obs.CTrafficGenerated)
	r.g.nodes[r.f.Src].OriginateData(pkt, now)
	r.schedule()
}

// nextGap draws the delay from now until the flow's next arrival.
func (f Flow) nextGap(now time.Duration, rng *rand.Rand) time.Duration {
	switch f.Pattern {
	case CBR:
		return time.Duration(float64(time.Second) / f.Rate)
	case OnOff:
		if f.On <= 0 || f.Off <= 0 {
			break // degenerate cycle: behave as plain Poisson
		}
		gap := time.Duration(rng.ExpFloat64() / f.Rate * float64(time.Second))
		if gap <= 0 {
			// A draw that truncates to zero must still land strictly inside
			// an on window: from mid-off, a zero active-time gap would map
			// to the end of the *previous* window, i.e. the past.
			gap = 1
		}
		target := activeTime(now, f.On, f.Off) + gap
		return wallTime(target, f.On, f.Off) - now
	}
	return time.Duration(rng.ExpFloat64() / f.Rate * float64(time.Second))
}

// activeTime maps wall-clock time t onto the flow's cumulative on-air
// time under the phase-locked on/off cycle.
func activeTime(t, on, off time.Duration) time.Duration {
	cycle := on + off
	full := t / cycle
	rem := t % cycle
	if rem > on {
		rem = on
	}
	return time.Duration(int64(full)*int64(on)) + rem
}

// wallTime inverts activeTime: the wall-clock instant at which cumulative
// on-air time a is reached.
func wallTime(a, on, off time.Duration) time.Duration {
	cycle := on + off
	full := a / on
	rem := a % on
	if rem == 0 && full > 0 {
		// A landing exactly on a window boundary belongs to the end of the
		// previous on window, not the start of the next.
		full--
		rem = on
	}
	return time.Duration(int64(full)*int64(cycle)) + rem
}

// NextID reports the last data packet id issued (ids are issued
// sequentially from 1). Checkpoint verification compares it across
// processes to prove the workloads are in lockstep.
func (g *Generator) NextID() uint64 { return g.nextID }
