package channel

import (
	"time"

	"rica/internal/geom"
	"rica/internal/obs"
	"rica/internal/sim"
)

// Positioner supplies a terminal's location at a virtual time. Implemented
// by *mobility.Node; abstracted here so channel tests can use fixed or
// scripted positions.
type Positioner interface {
	Position(at time.Duration) geom.Point
}

// Speeder optionally reports a terminal's instantaneous speed; terminals
// that implement it (mobility.Node does) drive the Doppler scaling of
// their links' fading. Positioners without it are treated as parked.
type Speeder interface {
	Speed(at time.Duration) float64
}

// streamKindChannel namespaces link fading streams within a trial's seed
// space (see sim.Streams).
const streamKindChannel = 0x_C4A1

// Model is the full-network channel: one fading Link per unordered
// terminal pair plus the terminals' positions. It answers the question
// every layer above asks — "what class is the link between i and j right
// now?" — and provides neighbourhood scans for floods and topology
// installation.
//
// Queries route through a per-instant snapshot (see snapshot.go): the
// positions, speeds, and outage states behind them are derived once per
// virtual instant, each pair's distance and class at most once per
// instant, and neighbourhood scans walk per-build candidate lists over a
// spatial grid rather than the terminal set (see fastpath.go). The
// per-pair fading streams are untouched by all of the caching, so
// results are bit-identical to the uncached scans.
type Model struct {
	cfg     Config
	pos     []Positioner
	caps    []caps  // optional per-terminal capabilities, resolved once
	links   []*Link // upper-triangular pair index, created lazily
	streams *sim.Streams
	down    func(i int, at time.Duration) bool
	snap    *snapshot
	trans   transCache // exact AR(1)-coefficient cache shared by all links
	obs     *obs.Registry
	shard   *shardState // sharded scan machinery; nil = serial-only (the default)
}

// NewModel builds the channel for n terminals whose positions are given by
// pos. Each pair's fading process gets an independent deterministic stream
// from streams.
//
// Links are created lazily on first query: a pair's stream is a pure
// function of (seed, pair index), so the fading sample path is bit-for-bit
// the same no matter when the link comes into being — and seeding n(n−1)/2
// generators up front (each a 607-word scramble) was the single largest
// cost of world construction, paid mostly for pairs that never meet.
func NewModel(cfg Config, streams *sim.Streams, pos []Positioner) *Model {
	n := len(pos)
	return &Model{
		cfg:     cfg,
		pos:     pos,
		caps:    resolveCaps(pos),
		links:   make([]*Link, n*(n-1)/2),
		streams: streams,
		snap:    newSnapshot(n, cfg.Range, cfg.Range),
	}
}

// linkAt fetches (creating on first use) the fading process of the pair
// whose triangular index is idx.
func (m *Model) linkAt(idx, i, j int) *Link {
	l := m.links[idx]
	if l == nil {
		l = NewLink(&m.cfg, m.streams.StreamAt(streamKindChannel, uint64(idx)))
		l.trans = &m.trans
		m.links[idx] = l
	}
	return l
}

// N reports the number of terminals.
func (m *Model) N() int { return len(m.pos) }

// SetObs wires the fast-path cache counters (pair class/distance,
// transcendental coefficients, grid rebuilds, annulus checks) into r.
// The model works identically — and counts nothing — without one.
func (m *Model) SetObs(r *obs.Registry) {
	m.obs = r
	m.trans.obs = r
}

// SetOutage installs a radio-outage oracle: while fn reports terminal i
// down, every link touching i behaves exactly as if the pair were out of
// range — no class, no reception, invisible to neighbourhood scans. The
// world layer uses this to run scripted node-failure/heal schedules.
func (m *Model) SetOutage(fn func(i int, at time.Duration) bool) { m.down = fn }

// Down reports whether terminal i's radio is silenced at time at.
func (m *Model) Down(i int, at time.Duration) bool {
	return m.down != nil && m.downAt(m.sync(at), i, at)
}

// pairDown reports whether either endpoint of the pair is silenced.
func (m *Model) pairDown(s *snapshot, i, j int, at time.Duration) bool {
	return m.down != nil && (m.downAt(s, i, at) || m.downAt(s, j, at))
}

// Config returns the model's configuration (a copy).
func (m *Model) Config() Config { return m.cfg }

// pairIndex maps an unordered pair to its slot in the triangular array.
func (m *Model) pairIndex(i, j int) int {
	if i == j {
		panic("channel: self link has no channel")
	}
	if i > j {
		i, j = j, i
	}
	n := len(m.pos)
	// Row-major upper triangle: row i starts after sum_{k<i} (n-1-k) slots.
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// Distance reports the current distance between terminals i and j.
func (m *Model) Distance(i, j int, at time.Duration) float64 {
	if i == j {
		return 0
	}
	s := m.sync(at)
	return m.distAtIdx(s, m.pairIndex(i, j), i, j, at)
}

// relSpeed bounds the pair's relative speed by the sum of the terminals'
// own speeds (exact relative velocity is not worth the extra queries).
func (m *Model) relSpeed(s *snapshot, i, j int, at time.Duration) float64 {
	return m.speedAt(s, i, at) + m.speedAt(s, j, at)
}

// Class reports the channel class between i and j at time at. The link is
// symmetric: Class(i, j) == Class(j, i) by construction. Repeated queries
// of a pair within one instant are answered from the snapshot's class
// cache — the fading link is advanced exactly once per instant either
// way, so the cache never perturbs a sample path.
func (m *Model) Class(i, j int, at time.Duration) Class {
	s := m.sync(at)
	idx := m.pairIndex(i, j)
	if s.pairClassGen[idx] == s.gen {
		m.obs.Inc(obs.CClassHits)
		return s.pairClass[idx]
	}
	return m.classMiss(s, idx, i, j, at)
}

// SNR reports the instantaneous link SNR in dB (ignoring the range
// cutoff); exported for diagnostics and tests. Memoized per pair per
// instant like Class; the SNR cache lane is allocated on first use so
// simulation runs that never ask pay nothing.
func (m *Model) SNR(i, j int, at time.Duration) float64 {
	s := m.sync(at)
	idx := m.pairIndex(i, j)
	if s.pairSNRGen == nil {
		s.pairSNRGen = make([]uint64, len(m.links))
		s.pairSNR = make([]float64, len(m.links))
	}
	if s.pairSNRGen[idx] == s.gen {
		return s.pairSNR[idx]
	}
	d := m.distAtIdx(s, idx, i, j, at)
	v := m.linkAt(idx, i, j).SNR(d, m.relSpeed(s, i, j, at), at)
	s.pairSNR[idx] = v
	s.pairSNRGen[idx] = s.gen
	return v
}

// InRange reports whether i and j are within radio reception range (and
// neither radio is silenced by an outage).
func (m *Model) InRange(i, j int, at time.Duration) bool {
	s := m.sync(at)
	if m.pairDown(s, i, j, at) {
		return false
	}
	if i == j {
		return true // a terminal trivially hears itself
	}
	return m.distAtIdx(s, m.pairIndex(i, j), i, j, at) <= m.cfg.Range
}

// interferenceEps absorbs float rounding in the triangle-inequality
// argument behind Interferes: exclusion is only claimed with a metre-µ
// margin, so a correctly-rounded distance can never flip a verdict that
// matters.
const interferenceEps = 1e-6

// Interferes reports whether a transmission by i can reach any terminal
// that hears j: by the triangle inequality, everything in range of j is
// within 2·Range of j, so i beyond that (plus a float-safety margin)
// cannot touch any of j's receivers. Outage state is deliberately not
// consulted — this is a conservative spatial filter, and the exact
// per-receiver InRange check keeps the final say.
func (m *Model) Interferes(i, j int, at time.Duration) bool {
	if i == j {
		return true
	}
	s := m.sync(at)
	return m.distAtIdx(s, m.pairIndex(i, j), i, j, at) <= 2*m.cfg.Range+interferenceEps
}

// bruteNeighbors is the pre-grid reference scan: every other terminal's
// position derived straight from its Positioner and tested pairwise.
// Property tests and benchmark baselines compare the grid path against
// it; production code must not call it.
func (m *Model) bruteNeighbors(i int, at time.Duration, dst []int) []int {
	if m.down != nil && m.down(i, at) {
		return dst
	}
	pi := m.pos[i].Position(at)
	for j := range m.pos {
		if j == i || (m.down != nil && m.down(j, at)) {
			continue
		}
		if pi.DistanceTo(m.pos[j].Position(at)) <= m.cfg.Range {
			dst = append(dst, j)
		}
	}
	return dst
}

// Position exposes terminal i's current location (diagnostics, examples).
func (m *Model) Position(i int, at time.Duration) geom.Point {
	s := m.sync(at)
	return m.positionAt(s, i, at)
}

// EachLink visits every lazily-created link in triangular index order
// (uncreated pairs are skipped), without advancing any of them. The
// checkpoint capture serializes link states in exactly this order.
func (m *Model) EachLink(fn func(idx int, st LinkState)) {
	for idx, l := range m.links {
		if l != nil {
			fn(idx, l.ExportState())
		}
	}
}
