package channel

import (
	"time"

	"rica/internal/geom"
	"rica/internal/sim"
)

// Positioner supplies a terminal's location at a virtual time. Implemented
// by *mobility.Node; abstracted here so channel tests can use fixed or
// scripted positions.
type Positioner interface {
	Position(at time.Duration) geom.Point
}

// Speeder optionally reports a terminal's instantaneous speed; terminals
// that implement it (mobility.Node does) drive the Doppler scaling of
// their links' fading. Positioners without it are treated as parked.
type Speeder interface {
	Speed(at time.Duration) float64
}

// streamKindChannel namespaces link fading streams within a trial's seed
// space (see sim.Streams).
const streamKindChannel = 0x_C4A1

// Model is the full-network channel: one fading Link per unordered
// terminal pair plus the terminals' positions. It answers the question
// every layer above asks — "what class is the link between i and j right
// now?" — and provides neighbourhood scans for floods and topology
// installation.
type Model struct {
	cfg   Config
	pos   []Positioner
	links []*Link // upper-triangular pair index
	down  func(i int, at time.Duration) bool
}

// NewModel builds the channel for n terminals whose positions are given by
// pos. Each pair's fading process gets an independent deterministic stream
// from streams.
func NewModel(cfg Config, streams *sim.Streams, pos []Positioner) *Model {
	n := len(pos)
	m := &Model{
		cfg:   cfg,
		pos:   pos,
		links: make([]*Link, n*(n-1)/2),
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx := m.pairIndex(i, j)
			m.links[idx] = NewLink(&m.cfg, streams.StreamAt(streamKindChannel, uint64(idx)))
		}
	}
	return m
}

// N reports the number of terminals.
func (m *Model) N() int { return len(m.pos) }

// SetOutage installs a radio-outage oracle: while fn reports terminal i
// down, every link touching i behaves exactly as if the pair were out of
// range — no class, no reception, invisible to neighbourhood scans. The
// world layer uses this to run scripted node-failure/heal schedules.
func (m *Model) SetOutage(fn func(i int, at time.Duration) bool) { m.down = fn }

// Down reports whether terminal i's radio is silenced at time at.
func (m *Model) Down(i int, at time.Duration) bool {
	return m.down != nil && m.down(i, at)
}

// pairDown reports whether either endpoint of the pair is silenced.
func (m *Model) pairDown(i, j int, at time.Duration) bool {
	return m.down != nil && (m.down(i, at) || m.down(j, at))
}

// Config returns the model's configuration (a copy).
func (m *Model) Config() Config { return m.cfg }

// pairIndex maps an unordered pair to its slot in the triangular array.
func (m *Model) pairIndex(i, j int) int {
	if i == j {
		panic("channel: self link has no channel")
	}
	if i > j {
		i, j = j, i
	}
	n := len(m.pos)
	// Row-major upper triangle: row i starts after sum_{k<i} (n-1-k) slots.
	return i*(2*n-i-1)/2 + (j - i - 1)
}

// Distance reports the current distance between terminals i and j.
func (m *Model) Distance(i, j int, at time.Duration) float64 {
	return m.pos[i].Position(at).DistanceTo(m.pos[j].Position(at))
}

// relSpeed bounds the pair's relative speed by the sum of the terminals'
// own speeds (exact relative velocity is not worth the extra queries).
func (m *Model) relSpeed(i, j int, at time.Duration) float64 {
	v := 0.0
	if s, ok := m.pos[i].(Speeder); ok {
		v += s.Speed(at)
	}
	if s, ok := m.pos[j].(Speeder); ok {
		v += s.Speed(at)
	}
	return v
}

// Class reports the channel class between i and j at time at. The link is
// symmetric: Class(i, j) == Class(j, i) by construction.
func (m *Model) Class(i, j int, at time.Duration) Class {
	d := m.Distance(i, j, at)
	if m.pairDown(i, j, at) {
		// Radio-silent endpoint: feed the link an out-of-range distance so
		// its fading process still advances in step with real time.
		d = m.cfg.Range + 1
	}
	return m.links[m.pairIndex(i, j)].ClassAt(d, m.relSpeed(i, j, at), at)
}

// SNR reports the instantaneous link SNR in dB (ignoring the range
// cutoff); exported for diagnostics and tests.
func (m *Model) SNR(i, j int, at time.Duration) float64 {
	return m.links[m.pairIndex(i, j)].SNR(m.Distance(i, j, at), m.relSpeed(i, j, at), at)
}

// InRange reports whether i and j are within radio reception range (and
// neither radio is silenced by an outage).
func (m *Model) InRange(i, j int, at time.Duration) bool {
	return !m.pairDown(i, j, at) && m.Distance(i, j, at) <= m.cfg.Range
}

// Neighbors appends to dst the ids of terminals within radio range of i,
// and returns the extended slice. Pass a reusable buffer to avoid
// allocation in flood hot paths.
func (m *Model) Neighbors(i int, at time.Duration, dst []int) []int {
	if m.Down(i, at) {
		return dst
	}
	pi := m.pos[i].Position(at)
	for j := range m.pos {
		if j == i || m.Down(j, at) {
			continue
		}
		if pi.DistanceTo(m.pos[j].Position(at)) <= m.cfg.Range {
			dst = append(dst, j)
		}
	}
	return dst
}

// Position exposes terminal i's current location (diagnostics, examples).
func (m *Model) Position(i int, at time.Duration) geom.Point {
	return m.pos[i].Position(at)
}
