package channel

import (
	"math"
	"testing"
	"time"

	"rica/internal/geom"
	"rica/internal/mobility"
	"rica/internal/sim"
)

// benchField scales the roaming field with n so terminal density stays at
// the paper's 50 terminals/km². Scaling the population without scaling
// the area would grow every neighbourhood linearly with n, and the
// output size — not the scan — would dominate any algorithm.
func benchField(n int) geom.Field {
	side := 1000 * math.Sqrt(float64(n)/50)
	return geom.Field{Width: side, Height: side}
}

// benchModel builds a model over n random-waypoint terminals at paper
// density — the position-recompute cost of waypoint queries is part of
// what the snapshot layer exists to amortize, so the benchmark keeps it.
func benchModel(n int) *Model {
	streams := sim.NewStreams(11)
	mcfg := mobility.Config{
		Field:    benchField(n),
		MaxSpeed: 10,
		Pause:    3 * time.Second,
	}
	pos := make([]Positioner, n)
	for i := range pos {
		pos[i] = mobility.NewNode(mcfg, streams.StreamAt(0x_30B1, uint64(i)))
	}
	return NewModel(DefaultConfig(), streams, pos)
}

// BenchmarkNeighbors measures a full neighbourhood sweep (every terminal's
// Neighbors at one fresh virtual instant) — the access pattern of flood
// delivery and topology installation.
func BenchmarkNeighbors(b *testing.B) {
	for _, n := range []int{50, 200, 500} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			m := benchModel(n)
			var buf []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := time.Duration(i+1) * time.Millisecond
				for j := 0; j < n; j++ {
					buf = m.Neighbors(j, at, buf[:0])
				}
			}
		})
	}
}

// BenchmarkNeighborsBrute is the same sweep against the retained
// brute-force reference scan — the in-tree baseline the grid path is
// compared to.
func BenchmarkNeighborsBrute(b *testing.B) {
	for _, n := range []int{50, 200, 500} {
		b.Run(sizeLabel(n), func(b *testing.B) {
			m := benchModel(n)
			var buf []int
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := time.Duration(i+1) * time.Millisecond
				for j := 0; j < n; j++ {
					buf = m.bruteNeighbors(j, at, buf[:0])
				}
			}
		})
	}
}

func sizeLabel(n int) string {
	switch n {
	case 50:
		return "N=50"
	case 200:
		return "N=200"
	default:
		return "N=500"
	}
}
