package channel

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"rica/internal/geom"
	"rica/internal/mobility"
	"rica/internal/sim"
)

// refWorld recomputes the channel from first principles, with no Model
// code in the loop: its own mobility trajectories (identical streams),
// its own lazily created Links on the model's pair-index streams, and
// the documented outage semantics (a silenced pair advances its link at
// an out-of-range distance). Driving a Model and a refWorld through the
// same query schedule must produce identical answers — the memoized,
// batched fast path against the unmemoized definition.
type refWorld struct {
	cfg   Config
	nodes []*mobility.Node
	pins  []geom.Point // non-nil entries override nodes (parked terminals)
	parkd []bool
	links []*Link
	strms *sim.Streams
	down  func(i int, at time.Duration) bool
	n     int
}

func (r *refWorld) pos(i int, at time.Duration) geom.Point {
	if r.parkd[i] {
		return r.pins[i]
	}
	return r.nodes[i].Position(at)
}

func (r *refWorld) speed(i int, at time.Duration) float64 {
	if r.parkd[i] {
		return 0
	}
	return r.nodes[i].Speed(at)
}

func (r *refWorld) isDown(i int, at time.Duration) bool {
	return r.down != nil && r.down(i, at)
}

func (r *refWorld) pairIndex(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*(2*r.n-i-1)/2 + (j - i - 1)
}

func (r *refWorld) link(i, j int) *Link {
	idx := r.pairIndex(i, j)
	if r.links[idx] == nil {
		r.links[idx] = NewLink(&r.cfg, r.strms.StreamAt(streamKindChannel, uint64(idx)))
	}
	return r.links[idx]
}

// class mirrors Model.Class's definition verbatim.
func (r *refWorld) class(i, j int, at time.Duration) Class {
	d := r.pos(i, at).DistanceTo(r.pos(j, at))
	if r.isDown(i, at) || r.isDown(j, at) {
		d = r.cfg.Range + 1
	}
	rel := r.speed(i, at) + r.speed(j, at)
	return r.link(i, j).ClassAt(d, rel, at)
}

// neighbors mirrors the brute reference scan.
func (r *refWorld) neighbors(i int, at time.Duration, dst []int) []int {
	if r.isDown(i, at) {
		return dst
	}
	pi := r.pos(i, at)
	for j := 0; j < r.n; j++ {
		if j == i || r.isDown(j, at) {
			continue
		}
		if pi.DistanceTo(r.pos(j, at)) <= r.cfg.Range {
			dst = append(dst, j)
		}
	}
	return dst
}

// buildPair constructs a Model and a refWorld over identical terminals:
// same mobility streams, same parked pins, same outage oracle.
func buildPair(seed int64, n int, outage func(i int, at time.Duration) bool) (*Model, *refWorld) {
	mcfg := mobility.Config{
		Field:    geom.Field{Width: 1100, Height: 800},
		MaxSpeed: 11,
		Pause:    2 * time.Second,
	}
	mkNodes := func(streams *sim.Streams) ([]Positioner, *refWorld) {
		r := &refWorld{
			cfg:   DefaultConfig(),
			n:     n,
			nodes: make([]*mobility.Node, n),
			pins:  make([]geom.Point, n),
			parkd: make([]bool, n),
			links: make([]*Link, n*(n-1)/2),
			strms: streams,
			down:  outage,
		}
		pos := make([]Positioner, n)
		for i := range pos {
			if i%6 == 5 {
				p := geom.Point{X: float64((i * 173) % 1100), Y: float64((i * 229) % 800)}
				r.parkd[i], r.pins[i] = true, p
				pos[i] = parked(p)
			} else {
				nd := mobility.NewNode(mcfg, streams.StreamAt(0x_AB, uint64(i)))
				r.nodes[i] = nd
				pos[i] = nd
			}
		}
		return pos, r
	}

	fastStreams := sim.NewStreams(seed)
	pos, _ := mkNodes(fastStreams)
	m := NewModel(DefaultConfig(), fastStreams, pos)
	if outage != nil {
		m.SetOutage(outage)
	}

	refStreams := sim.NewStreams(seed)
	_, ref := mkNodes(refStreams)
	return m, ref
}

// TestFastPathMatchesUnmemoizedReference drives the memoized/batched
// query surface and the from-first-principles reference through one
// randomized schedule: fused NeighborClasses sweeps, individual Class
// probes, and same-instant re-queries, over a mixed moving/parked field
// with rolling outage windows. Steps are small enough that most sweeps
// hit the stale-grid (nonzero slack) path, and the walk is long enough
// for fading to cross quantizer boundaries both ways, exercising the
// hysteresis upgrade hold. Every answer must be identical.
func TestFastPathMatchesUnmemoizedReference(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		const n = 48
		outage := func(i int, at time.Duration) bool {
			off := time.Duration(i%11) * 2 * time.Second
			return at >= off && at < off+1500*time.Millisecond
		}
		m, ref := buildPair(seed, n, outage)
		sched := rand.New(rand.NewSource(seed * 997))

		var ncBuf []NeighborClass
		var refNbr []int
		for at := time.Duration(0); at <= 30*time.Second; at += time.Duration(50+sched.Intn(250)) * time.Millisecond {
			i := sched.Intn(n)
			switch sched.Intn(3) {
			case 0, 1: // fused sweep, classes included
				ncBuf = m.NeighborClasses(i, at, ncBuf[:0])
				refNbr = ref.neighbors(i, at, refNbr[:0])
				if len(ncBuf) != len(refNbr) {
					t.Fatalf("seed %d at %v: NeighborClasses(%d) ids %v, reference %v",
						seed, at, i, ncBuf, refNbr)
				}
				for k, nc := range ncBuf {
					if nc.ID != refNbr[k] {
						t.Fatalf("seed %d at %v: NeighborClasses(%d)[%d].ID = %d, reference %d",
							seed, at, i, k, nc.ID, refNbr[k])
					}
					want := ref.class(i, nc.ID, at)
					if nc.Class != want {
						t.Fatalf("seed %d at %v: class(%d,%d) = %v, reference %v",
							seed, at, i, nc.ID, nc.Class, want)
					}
					// Same-instant re-query must come from the cache and agree.
					if again := m.Class(i, nc.ID, at); again != nc.Class {
						t.Fatalf("seed %d at %v: cached re-query Class(%d,%d) = %v, sweep said %v",
							seed, at, i, nc.ID, again, nc.Class)
					}
					if sym := m.Class(nc.ID, i, at); sym != nc.Class {
						t.Fatalf("seed %d at %v: Class(%d,%d) = %v, symmetric %v",
							seed, at, nc.ID, i, sym, nc.Class)
					}
				}
			case 2: // individual probe of an arbitrary pair
				j := sched.Intn(n)
				if j == i {
					continue
				}
				got := m.Class(i, j, at)
				want := ref.class(i, j, at)
				if got != want {
					t.Fatalf("seed %d at %v: Class(%d,%d) = %v, reference %v", seed, at, i, j, got, want)
				}
				wd := ref.pos(i, at).DistanceTo(ref.pos(j, at))
				if gd := m.Distance(i, j, at); gd != wd {
					t.Fatalf("seed %d at %v: Distance(%d,%d) = %v, reference %v", seed, at, i, j, gd, wd)
				}
				wantIn := !ref.isDown(i, at) && !ref.isDown(j, at) && wd <= ref.cfg.Range
				if gi := m.InRange(i, j, at); gi != wantIn {
					t.Fatalf("seed %d at %v: InRange(%d,%d) = %v, reference %v", seed, at, i, j, gi, wantIn)
				}
			}
		}
	}
}

// TestNeighborClassesMatchesNeighborsPlusClass pins the fused sweep to
// its expansion on the same model: identical id order as Neighbors, and
// the class of each pair exactly what a following Class probe reports.
func TestNeighborClassesMatchesNeighborsPlusClass(t *testing.T) {
	m, _ := buildPair(9, 40, nil)
	var nc []NeighborClass
	var ids []int
	for at := time.Duration(0); at <= 12*time.Second; at += 333 * time.Millisecond {
		for i := 0; i < 40; i += 7 {
			nc = m.NeighborClasses(i, at, nc[:0])
			ids = m.Neighbors(i, at, ids[:0])
			if len(nc) != len(ids) {
				t.Fatalf("at %v: fused sweep has %d entries, Neighbors %d", at, len(nc), len(ids))
			}
			for k := range ids {
				if nc[k].ID != ids[k] {
					t.Fatalf("at %v: fused sweep id[%d] = %d, Neighbors %d", at, k, nc[k].ID, ids[k])
				}
				if got := m.Class(i, ids[k], at); got != nc[k].Class {
					t.Fatalf("at %v: Class(%d,%d) = %v, fused sweep %v", at, i, ids[k], got, nc[k].Class)
				}
			}
		}
	}
}

// TestTransCacheExactness replays keys through the shared coefficient
// cache and checks every output against the direct transcendental
// computation, bit for bit — on first sight (miss), on replay (hit), and
// after eviction by a colliding key. The cache must be an exact memo,
// never an approximation.
func TestTransCacheExactness(t *testing.T) {
	cfg := DefaultConfig()
	var tc transCache
	rng := rand.New(rand.NewSource(41))

	keys := make([]struct {
		dt    time.Duration
		speed float64
	}, 64)
	for i := range keys {
		keys[i].dt = time.Duration(1 + rng.Int63n(int64(3*time.Second)))
		if i%4 == 0 {
			keys[i].speed = cfg.MinSpeed // the parked-pair floor, heavily shared
		} else {
			keys[i].speed = cfg.MinSpeed + rng.Float64()*25
		}
	}
	check := func(dt time.Duration, speed float64) {
		rhoS, sigS, rhoF, sigF := tc.coeffs(&cfg, dt, speed)
		stretch := cfg.RefSpeed / speed
		wantRhoS := math.Exp(-dt.Seconds() / (cfg.ShadowTau.Seconds() * stretch))
		wantRhoF := math.Exp(-dt.Seconds() / (cfg.FadeTau.Seconds() * stretch))
		if rhoS != wantRhoS || sigS != math.Sqrt(1-wantRhoS*wantRhoS) ||
			rhoF != wantRhoF || sigF != math.Sqrt(1-wantRhoF*wantRhoF) {
			t.Fatalf("coeffs(%v, %v) = (%x %x %x %x), direct math says (%x %x %x %x)",
				dt, speed, rhoS, sigS, rhoF, sigF,
				wantRhoS, math.Sqrt(1-wantRhoS*wantRhoS), wantRhoF, math.Sqrt(1-wantRhoF*wantRhoF))
		}
	}
	// Three passes: fill, replay (hits), and a shuffled replay so keys
	// that collide in the direct-mapped table are recomputed after
	// eviction.
	for pass := 0; pass < 3; pass++ {
		order := rng.Perm(len(keys))
		for _, k := range order {
			check(keys[k].dt, keys[k].speed)
		}
	}
}

// TestLinkWithAndWithoutTransCache drives two links on identical streams
// through the same query schedule, one with the shared cache attached and
// one computing directly: every SNR must match bit for bit, proving the
// cache cannot perturb a sample path.
func TestLinkWithAndWithoutTransCache(t *testing.T) {
	cfg := DefaultConfig()
	var tc transCache
	cached := NewLink(&cfg, rand.New(rand.NewSource(77)))
	cached.trans = &tc
	plain := NewLink(&cfg, rand.New(rand.NewSource(77)))

	rng := rand.New(rand.NewSource(5))
	at := time.Duration(0)
	for k := 0; k < 4000; k++ {
		at += time.Duration(rng.Int63n(int64(40 * time.Millisecond)))
		d := 20 + rng.Float64()*260
		rel := rng.Float64() * 22
		if rng.Intn(3) == 0 {
			rel = 0 // exercise the MinSpeed floor (the shared cache key)
		}
		a := cached.SNR(d, rel, at)
		b := plain.SNR(d, rel, at)
		if a != b {
			t.Fatalf("query %d at %v: cached link SNR %x, plain link %x", k, at, a, b)
		}
	}
}
