package channel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rica/internal/geom"
	"rica/internal/sim"
)

func TestClassOrderingAndLabels(t *testing.T) {
	if ClassNone.Usable() {
		t.Error("ClassNone must not be usable")
	}
	order := []Class{ClassA, ClassB, ClassC, ClassD}
	labels := []string{"A", "B", "C", "D"}
	prevTP := math.Inf(1)
	prevHop := 0.0
	for i, c := range order {
		if !c.Usable() {
			t.Errorf("%v must be usable", c)
		}
		if c.String() != labels[i] {
			t.Errorf("label of %d = %q, want %q", i, c.String(), labels[i])
		}
		if tp := c.ThroughputBps(); tp >= prevTP {
			t.Errorf("throughput must strictly decrease A→D; %v has %v", c, tp)
		} else {
			prevTP = tp
		}
		if h := c.HopDistance(); h <= prevHop {
			t.Errorf("hop distance must strictly increase A→D; %v has %v", c, h)
		} else {
			prevHop = h
		}
	}
}

func TestPaperThroughputsAndHopDistances(t *testing.T) {
	cases := []struct {
		c    Class
		bps  float64
		hops float64
	}{
		{ClassA, 250_000, 1},
		{ClassB, 150_000, 1.67},
		{ClassC, 75_000, 3.33},
		{ClassD, 50_000, 5},
	}
	for _, c := range cases {
		if got := c.c.ThroughputBps(); got != c.bps {
			t.Errorf("%v throughput = %v, want %v", c.c, got, c.bps)
		}
		if got := c.c.HopDistance(); got != c.hops {
			t.Errorf("%v hop distance = %v, want %v", c.c, got, c.hops)
		}
	}
}

func TestTransmitDuration(t *testing.T) {
	// 512 bytes at 250 kbps = 4096 bits / 250000 bps = 16.384 ms.
	got := ClassA.TransmitDuration(512)
	want := time.Duration(16.384 * float64(time.Millisecond))
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("TransmitDuration(512)@A = %v, want ~%v", got, want)
	}
	// Class D is 5x slower than A.
	ratio := float64(ClassD.TransmitDuration(512)) / float64(ClassA.TransmitDuration(512))
	if math.Abs(ratio-5) > 1e-9 {
		t.Errorf("D/A duration ratio = %v, want 5", ratio)
	}
}

func TestTransmitDurationPanicsOnNoLink(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TransmitDuration on ClassNone did not panic")
		}
	}()
	ClassNone.TransmitDuration(1)
}

func TestClassForSNRMonotonic(t *testing.T) {
	cfg := DefaultConfig()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		cLo, cHi := ClassForSNR(lo, &cfg), ClassForSNR(hi, &cfg)
		// Higher SNR must never give a worse (larger) class.
		return cHi <= cLo
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassForSNRBoundaries(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		snr  float64
		want Class
	}{
		{cfg.ThresholdA, ClassA},
		{cfg.ThresholdA - 0.001, ClassB},
		{cfg.ThresholdB, ClassB},
		{cfg.ThresholdB - 0.001, ClassC},
		{cfg.ThresholdC, ClassC},
		{cfg.ThresholdC - 0.001, ClassD},
		{-100, ClassD},
	}
	for _, c := range cases {
		if got := ClassForSNR(c.snr, &cfg); got != c.want {
			t.Errorf("ClassForSNR(%v) = %v, want %v", c.snr, got, c.want)
		}
	}
}

// fixedPos is a Positioner pinned to one point (a parked terminal: its
// links' fading is nearly frozen).
type fixedPos geom.Point

func (p fixedPos) Position(time.Duration) geom.Point { return geom.Point(p) }

// pacedPos is pinned in place but reports RefSpeed-paced motion, so its
// links fade at the nominal decorrelation rates. Statistical tests use it
// to sample the stationary class distribution in reasonable time.
type pacedPos geom.Point

func (p pacedPos) Position(time.Duration) geom.Point { return geom.Point(p) }
func (p pacedPos) Speed(time.Duration) float64       { return 10 }

func newTestModel(points ...geom.Point) *Model {
	pos := make([]Positioner, len(points))
	for i, p := range points {
		pos[i] = fixedPos(p)
	}
	return NewModel(DefaultConfig(), sim.NewStreams(1), pos)
}

func newPacedModel(points ...geom.Point) *Model {
	pos := make([]Positioner, len(points))
	for i, p := range points {
		pos[i] = pacedPos(p)
	}
	return NewModel(DefaultConfig(), sim.NewStreams(1), pos)
}

func TestOutOfRangeHasNoLink(t *testing.T) {
	m := newTestModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 500, Y: 0})
	for at := time.Duration(0); at < 10*time.Second; at += time.Second {
		if c := m.Class(0, 1, at); c != ClassNone {
			t.Fatalf("class at 500 m = %v, want ClassNone", c)
		}
	}
}

func TestInRangeAlwaysUsable(t *testing.T) {
	m := newTestModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 200, Y: 0})
	for at := time.Duration(0); at < 30*time.Second; at += 100 * time.Millisecond {
		if c := m.Class(0, 1, at); !c.Usable() {
			t.Fatalf("in-range link unusable (%v) at t=%v; deep fades must map to class D", c, at)
		}
	}
}

func TestLinkSymmetric(t *testing.T) {
	m := newTestModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 150, Y: 0}, geom.Point{X: 900, Y: 900})
	for at := time.Duration(0); at < 5*time.Second; at += 250 * time.Millisecond {
		if a, b := m.Class(0, 1, at), m.Class(1, 0, at); a != b {
			t.Fatalf("asymmetric link at t=%v: %v vs %v", at, a, b)
		}
	}
}

func TestCloseLinkMostlyClassA(t *testing.T) {
	m := newPacedModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 20, Y: 0})
	counts := map[Class]int{}
	total := 0
	for at := time.Duration(0); at < 200*time.Second; at += 100 * time.Millisecond {
		counts[m.Class(0, 1, at)]++
		total++
	}
	if frac := float64(counts[ClassA]) / float64(total); frac < 0.7 {
		t.Errorf("20 m link class A fraction = %.2f, want > 0.7 (dist %v)", frac, counts)
	}
}

func TestEdgeLinkMostlyPoor(t *testing.T) {
	m := newPacedModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 245, Y: 0})
	counts := map[Class]int{}
	total := 0
	for at := time.Duration(0); at < 200*time.Second; at += 100 * time.Millisecond {
		counts[m.Class(0, 1, at)]++
		total++
	}
	poor := float64(counts[ClassC]+counts[ClassD]) / float64(total)
	if poor < 0.45 {
		t.Errorf("edge link C+D fraction = %.2f, want > 0.45 (dist %v)", poor, counts)
	}
	if classA := float64(counts[ClassA]) / float64(total); classA > 0.35 {
		t.Errorf("edge link class A fraction = %.2f, want < 0.35 (dist %v)", classA, counts)
	}
}

func TestMidRangeLinkVisitsAllClasses(t *testing.T) {
	m := newPacedModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 120, Y: 0})
	counts := map[Class]int{}
	for at := time.Duration(0); at < 500*time.Second; at += 100 * time.Millisecond {
		counts[m.Class(0, 1, at)]++
	}
	for _, c := range []Class{ClassA, ClassB, ClassC, ClassD} {
		if counts[c] == 0 {
			t.Errorf("mid-range link never visited class %v in 500 s: %v", c, counts)
		}
	}
}

// TestFadingStationary verifies the lazy AR(1) advance preserves the
// stationary distribution: the fading quadrature variance stays near 1 and
// shadowing variance near σ² over a long horizon, for irregular sampling.
func TestFadingStationary(t *testing.T) {
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(42))
	l := NewLink(&cfg, rng)
	sampler := rand.New(rand.NewSource(7))
	var sumShadow, sumShadow2 float64
	n := 0
	at := time.Duration(0)
	for i := 0; i < 20000; i++ {
		at += time.Duration(sampler.Intn(900)+100) * time.Millisecond
		l.advance(at, 10)
		sumShadow += l.shadow
		sumShadow2 += l.shadow * l.shadow
		n++
	}
	mean := sumShadow / float64(n)
	variance := sumShadow2/float64(n) - mean*mean
	sd := math.Sqrt(variance)
	if math.Abs(mean) > 1.0 {
		t.Errorf("shadowing mean = %.3f dB, want ~0", mean)
	}
	if sd < cfg.ShadowSigma*0.8 || sd > cfg.ShadowSigma*1.2 {
		t.Errorf("shadowing sd = %.3f dB, want ~%v", sd, cfg.ShadowSigma)
	}
}

func TestDeterministicAcrossModels(t *testing.T) {
	mk := func() *Model {
		return NewModel(DefaultConfig(), sim.NewStreams(5),
			[]Positioner{fixedPos{0, 0}, fixedPos{100, 0}, fixedPos{0, 150}})
	}
	a, b := mk(), mk()
	for at := time.Duration(0); at < 10*time.Second; at += 77 * time.Millisecond {
		for i := 0; i < 3; i++ {
			for j := i + 1; j < 3; j++ {
				if ca, cb := a.Class(i, j, at), b.Class(i, j, at); ca != cb {
					t.Fatalf("same seed diverged: link %d-%d at %v: %v vs %v", i, j, at, ca, cb)
				}
			}
		}
	}
}

func TestRepeatedQuerySameInstantStable(t *testing.T) {
	m := newTestModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 100, Y: 0})
	at := 3 * time.Second
	c1 := m.Class(0, 1, at)
	for i := 0; i < 10; i++ {
		if c := m.Class(0, 1, at); c != c1 {
			t.Fatalf("class changed within one instant: %v then %v", c1, c)
		}
	}
}

func TestPairIndexBijective(t *testing.T) {
	const n = 50
	pos := make([]Positioner, n)
	for i := range pos {
		pos[i] = fixedPos{float64(i), 0}
	}
	m := NewModel(DefaultConfig(), sim.NewStreams(1), pos)
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			idx := m.pairIndex(i, j)
			if idx < 0 || idx >= len(m.links) {
				t.Fatalf("pairIndex(%d,%d) = %d out of bounds %d", i, j, idx, len(m.links))
			}
			if seen[idx] {
				t.Fatalf("pairIndex(%d,%d) = %d collides", i, j, idx)
			}
			seen[idx] = true
			if m.pairIndex(j, i) != idx {
				t.Fatalf("pairIndex not symmetric for (%d,%d)", i, j)
			}
		}
	}
	if len(seen) != n*(n-1)/2 {
		t.Fatalf("pairIndex covered %d slots, want %d", len(seen), n*(n-1)/2)
	}
}

func TestSelfLinkPanics(t *testing.T) {
	m := newTestModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 10, Y: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("Class(i,i) did not panic")
		}
	}()
	m.Class(1, 1, 0)
}

func TestNeighbors(t *testing.T) {
	m := newTestModel(
		geom.Point{X: 0, Y: 0},   // 0
		geom.Point{X: 100, Y: 0}, // 1: in range of 0
		geom.Point{X: 240, Y: 0}, // 2: in range of 0 and 1
		geom.Point{X: 600, Y: 0}, // 3: out of range of all but 4
		geom.Point{X: 700, Y: 0}, // 4
	)
	got := m.Neighbors(0, 0, nil)
	want := []int{1, 2}
	if len(got) != len(want) || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Neighbors(0) = %v, want %v", got, want)
	}
	if got := m.Neighbors(3, 0, nil); len(got) != 1 || got[0] != 4 {
		t.Fatalf("Neighbors(3) = %v, want [4]", got)
	}
	// Buffer reuse must append, not reset.
	buf := []int{99}
	got = m.Neighbors(3, 0, buf)
	if len(got) != 2 || got[0] != 99 || got[1] != 4 {
		t.Fatalf("Neighbors with buffer = %v, want [99 4]", got)
	}
}

func TestSNRDecreasesWithDistance(t *testing.T) {
	cfg := DefaultConfig()
	// Compare median-ish SNR at two distances using many fresh links.
	avg := func(d float64) float64 {
		var sum float64
		for s := int64(0); s < 200; s++ {
			l := NewLink(&cfg, rand.New(rand.NewSource(s)))
			sum += l.SNR(d, 10, 0)
		}
		return sum / 200
	}
	near, far := avg(50), avg(200)
	if near <= far {
		t.Errorf("mean SNR at 50 m (%.1f) not above 200 m (%.1f)", near, far)
	}
	// Path-loss difference should be ~10*3*log10(4) ≈ 18 dB.
	if diff := near - far; diff < 12 || diff > 24 {
		t.Errorf("SNR gap 50→200 m = %.1f dB, want ≈18", diff)
	}
}

func TestModelAccessors(t *testing.T) {
	m := newTestModel(geom.Point{X: 0, Y: 0}, geom.Point{X: 30, Y: 40})
	if m.N() != 2 {
		t.Errorf("N = %d, want 2", m.N())
	}
	if d := m.Distance(0, 1, 0); math.Abs(d-50) > 1e-9 {
		t.Errorf("Distance = %v, want 50", d)
	}
	if !m.InRange(0, 1, 0) {
		t.Error("InRange(50 m) = false")
	}
	if p := m.Position(1, 0); p != (geom.Point{X: 30, Y: 40}) {
		t.Errorf("Position = %v", p)
	}
	if m.Config().Range != 250 {
		t.Errorf("Config().Range = %v", m.Config().Range)
	}
}
