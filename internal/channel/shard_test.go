package channel

import (
	"math/rand"
	"testing"
	"time"

	"rica/internal/geom"
	"rica/internal/mobility"
	"rica/internal/obs"
	"rica/internal/sim"
)

// mkTwin builds one model over a mixed moving/parked field from seed;
// calling it twice with the same seed yields terminals on identical
// trajectory streams, so a serial twin and a sharded twin can be driven
// through the same schedule and compared answer by answer.
func mkTwin(seed int64, n int, outage func(i int, at time.Duration) bool) *Model {
	mcfg := mobility.Config{
		Field:    geom.Field{Width: 1400, Height: 700},
		MaxSpeed: 12,
		Pause:    time.Second,
	}
	streams := sim.NewStreams(seed)
	pos := make([]Positioner, n)
	for i := range pos {
		if i%7 == 6 {
			pos[i] = parked(geom.Point{X: float64((i * 211) % 1400), Y: float64((i * 157) % 700)})
		} else {
			pos[i] = mobility.NewNode(mcfg, streams.StreamAt(0x_AB, uint64(i)))
		}
	}
	m := NewModel(DefaultConfig(), streams, pos)
	if outage != nil {
		m.SetOutage(outage)
	}
	return m
}

// serialScanExpectation computes what BroadcastScan must return, using
// only the serial twin's public query surface: the sender's Neighbors
// list, and the Neighbors list of every distinct interfering candidate.
func serialScanExpectation(m *Model, from int, others []int, at time.Duration) (sender []int, oIDs []int, oLists [][]int) {
	sender = m.Neighbors(from, at, nil)
	seen := map[int]bool{from: true}
	for _, o := range others {
		if seen[o] {
			continue
		}
		seen[o] = true
		if !m.Interferes(o, from, at) {
			continue
		}
		oIDs = append(oIDs, o)
		oLists = append(oLists, m.Neighbors(o, at, nil))
	}
	return sender, oIDs, oLists
}

// TestBroadcastScanMatchesSerial drives a sharded model and a serial twin
// through one randomized schedule of broadcast scans, class probes, and
// range queries across many grid rebuilds. Every scan's lists must be
// identical to the serial derivation, and the interleaved class probes
// pin the fading streams: if the sharded path ever touched a link or
// perturbed a position, the twins' sample paths would split.
func TestBroadcastScanMatchesSerial(t *testing.T) {
	outage := func(i int, at time.Duration) bool {
		off := time.Duration(i%9) * 3 * time.Second
		return at >= off && at < off+2*time.Second
	}
	for _, shards := range []int{2, 3, 8} {
		for seed := int64(1); seed <= 2; seed++ {
			const n = 64
			serial := mkTwin(seed, n, outage)
			sharded := mkTwin(seed, n, outage)
			reg := obs.NewRegistry()
			sharded.SetObs(reg)
			pool := sim.NewShardPool(shards)
			sharded.EnableSharding(pool, -1) // negative grain: every scan fans out

			sched := rand.New(rand.NewSource(seed*131 + int64(shards)))
			others := make([]int, 0, 8)
			for at := time.Duration(0); at <= 25*time.Second; at += time.Duration(40+sched.Intn(300)) * time.Millisecond {
				from := sched.Intn(n)
				others = others[:0]
				for k := sched.Intn(5); k > 0; k-- {
					if o := sched.Intn(n); o != from {
						others = append(others, o)
					}
				}
				if sched.Intn(4) == 0 && len(others) > 0 {
					others = append(others, others[0]) // duplicate transmitter id
				}

				sl := sharded.BroadcastScan(from, others, at)
				if sl == nil {
					t.Fatalf("shards=%d seed=%d at %v: scan declined with negative grain", shards, seed, at)
				}
				wantSender, wantIDs, wantLists := serialScanExpectation(serial, from, others, at)
				if !equalInts(sl.Sender(), wantSender) {
					t.Fatalf("shards=%d seed=%d at %v: sender list %v, serial %v",
						shards, seed, at, sl.Sender(), wantSender)
				}
				if len(sl.Sender()) > 0 {
					if sl.Others() != len(wantIDs) {
						t.Fatalf("shards=%d seed=%d at %v: %d others, serial %d",
							shards, seed, at, sl.Others(), len(wantIDs))
					}
					for k := 0; k < sl.Others(); k++ {
						id, lst := sl.Other(k)
						if id != wantIDs[k] || !equalInts(lst, wantLists[k]) {
							t.Fatalf("shards=%d seed=%d at %v: other[%d] = %d %v, serial %d %v",
								shards, seed, at, k, id, lst, wantIDs[k], wantLists[k])
						}
					}
				}

				// Fading-stream pin: the twins must still agree on classes.
				i, j := sched.Intn(n), sched.Intn(n)
				if i != j {
					if a, b := serial.Class(i, j, at), sharded.Class(i, j, at); a != b {
						t.Fatalf("shards=%d seed=%d at %v: Class(%d,%d) diverged: %v vs %v",
							shards, seed, at, i, j, a, b)
					}
				}
			}
			if reg.Counter(obs.CShardFanouts) == 0 {
				t.Fatalf("shards=%d seed=%d: no fan-outs recorded", shards, seed)
			}
			pool.Close()
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBroadcastScanGrainGate checks the deterministic fall-back: above
// grain the scan engages, below it declines and counts the fallback.
func TestBroadcastScanGrainGate(t *testing.T) {
	m := mkTwin(3, 40, nil)
	reg := obs.NewRegistry()
	m.SetObs(reg)
	pool := sim.NewShardPool(2)
	defer pool.Close()
	m.EnableSharding(pool, 1<<30) // unreachable grain: every scan declines
	if sl := m.BroadcastScan(0, nil, time.Second); sl != nil {
		t.Fatal("scan engaged below grain")
	}
	if reg.Counter(obs.CShardFallbacks) != 1 {
		t.Fatalf("fallbacks = %d, want 1", reg.Counter(obs.CShardFallbacks))
	}
	if reg.Counter(obs.CShardFanouts) != 0 {
		t.Fatalf("fanouts = %d, want 0", reg.Counter(obs.CShardFanouts))
	}
}

// TestBroadcastScanThreeStripes pins the cross-stripe case: a parked line
// of terminals split into three stripes, with the sender's disk spanning
// all of them. The merged list must equal the serial scan and the
// boundary-event counter must fire.
func TestBroadcastScanThreeStripes(t *testing.T) {
	const n = 30
	mk := func() *Model {
		pos := make([]Positioner, n)
		for i := range pos {
			// 30 terminals spaced 60 m apart: the 250 m default range covers
			// ~8 of them, crossing stripe cuts wherever they land.
			pos[i] = parked(geom.Point{X: float64(i) * 60, Y: 50})
		}
		return NewModel(DefaultConfig(), sim.NewStreams(17), pos)
	}
	serial := mk()
	sharded := mk()
	reg := obs.NewRegistry()
	sharded.SetObs(reg)
	pool := sim.NewShardPool(3)
	defer pool.Close()
	sharded.EnableSharding(pool, -1)

	for from := 0; from < n; from++ {
		sl := sharded.BroadcastScan(from, []int{(from + 4) % n}, time.Second)
		wantSender, wantIDs, wantLists := serialScanExpectation(serial, from, []int{(from + 4) % n}, time.Second)
		if !equalInts(sl.Sender(), wantSender) {
			t.Fatalf("from=%d: sender %v, serial %v", from, sl.Sender(), wantSender)
		}
		for k := 0; k < sl.Others() && k < len(wantIDs); k++ {
			id, lst := sl.Other(k)
			if id != wantIDs[k] || !equalInts(lst, wantLists[k]) {
				t.Fatalf("from=%d other[%d]: %d %v, serial %d %v", from, k, id, lst, wantIDs[k], wantLists[k])
			}
		}
	}
	if reg.Counter(obs.CShardBoundary) == 0 {
		t.Fatal("no boundary events recorded on a stripe-spanning field")
	}
}

// TestBroadcastScanBoundaryTerminal pins ownership at an exact stripe
// cut: terminals sitting exactly on column-boundary coordinates must be
// owned by exactly one stripe — never scanned twice, never dropped.
func TestBroadcastScanBoundaryTerminal(t *testing.T) {
	cell := DefaultConfig().Range // grid cell size equals the range
	const n = 12
	mk := func() *Model {
		pos := make([]Positioner, n)
		for i := range pos {
			// Every terminal exactly on a cell-boundary x coordinate.
			pos[i] = parked(geom.Point{X: float64(i%6) * cell, Y: float64(i/6) * 10})
		}
		return NewModel(DefaultConfig(), sim.NewStreams(23), pos)
	}
	serial := mk()
	sharded := mk()
	pool := sim.NewShardPool(2)
	defer pool.Close()
	sharded.EnableSharding(pool, -1)
	for from := 0; from < n; from++ {
		sl := sharded.BroadcastScan(from, nil, 0)
		want := serial.Neighbors(from, 0, nil)
		if !equalInts(sl.Sender(), want) {
			t.Fatalf("from=%d: sender %v, serial %v", from, sl.Sender(), want)
		}
	}
}

// TestBroadcastScanSteadyStateAllocFree pins the per-epoch allocation
// budget of the sharded path at zero on a static field (no rebuilds) once
// the caches are warm.
func TestBroadcastScanSteadyStateAllocFree(t *testing.T) {
	const n = 40
	pos := make([]Positioner, n)
	for i := range pos {
		pos[i] = parked(geom.Point{X: float64(i%8) * 70, Y: float64(i/8) * 70})
	}
	m := NewModel(DefaultConfig(), sim.NewStreams(29), pos)
	pool := sim.NewShardPool(4)
	defer pool.Close()
	m.EnableSharding(pool, -1)
	others := []int{3, 11, 22}
	m.BroadcastScan(0, others, time.Second) // warm: spawns workers, sizes buffers
	for from := 0; from < n; from++ {
		m.BroadcastScan(from, others, time.Second)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		m.BroadcastScan(5, others, 2*time.Second)
	}); allocs != 0 {
		t.Fatalf("steady-state BroadcastScan allocates %.1f/op, want 0", allocs)
	}
}
