package channel

import (
	"testing"
	"time"

	"rica/internal/geom"
	"rica/internal/mobility"
	"rica/internal/sim"
)

// parked is a Positioner that never moves and says so, like the world
// package's pinned terminals: the snapshot layer may cache it forever.
type parked geom.Point

func (p parked) Position(time.Duration) geom.Point { return geom.Point(p) }
func (p parked) PositionStableUntil(time.Duration) time.Duration {
	return mobility.StableForever
}

// TestNeighborsMatchesBruteForce is the refactor's core invariant: the
// grid-backed Neighbors must return exactly what the retained pre-grid
// reference scan returns — same ids, same ascending order — at every
// instant of a mixed moving/parked field with rolling outage windows.
// The walk advances in small steps over tens of virtual seconds, so it
// crosses grid rebuilds and spends most queries on the stale-grid slack
// path (certain hits served without re-deriving positions, annulus
// candidates re-checked exactly).
func TestNeighborsMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		streams := sim.NewStreams(seed)
		mcfg := mobility.Config{
			Field:    geom.Field{Width: 1200, Height: 900},
			MaxSpeed: 12,
			Pause:    2 * time.Second,
		}
		const n = 60
		pos := make([]Positioner, n)
		for i := range pos {
			if i%5 == 4 {
				pos[i] = parked{X: float64((i * 157) % 1200), Y: float64((i * 211) % 900)}
			} else {
				pos[i] = mobility.NewNode(mcfg, streams.StreamAt(0x_AB, uint64(i)))
			}
		}
		m := NewModel(DefaultConfig(), streams, pos)
		m.SetOutage(func(i int, at time.Duration) bool {
			// Rolling silences: terminal i is down during a 3 s window that
			// starts at a phase derived from its id, repeating nothing.
			off := time.Duration(i%13) * 3 * time.Second
			return at >= off && at < off+3*time.Second
		})

		var gbuf, bbuf []int
		for at := time.Duration(0); at <= 40*time.Second; at += 217 * time.Millisecond {
			for i := 0; i < n; i++ {
				gbuf = m.Neighbors(i, at, gbuf[:0])
				bbuf = m.bruteNeighbors(i, at, bbuf[:0])
				if !sameInts(gbuf, bbuf) {
					t.Fatalf("seed %d: Neighbors(%d, %v) = %v, brute force says %v",
						seed, i, at, gbuf, bbuf)
				}
			}
		}
	}
}

// TestNeighborsStaticFieldNeverRebuilds pins every terminal: after the
// first query builds the grid, later instants must keep serving it with
// zero slack (the forever-stable boundary), still matching brute force.
func TestNeighborsStaticFieldNeverRebuilds(t *testing.T) {
	const n = 40
	pos := make([]Positioner, n)
	for i := range pos {
		pos[i] = parked{X: float64((i * 97) % 800), Y: float64((i * 131) % 800)}
	}
	m := NewModel(DefaultConfig(), sim.NewStreams(3), pos)

	var gbuf, bbuf []int
	for at := time.Duration(0); at <= time.Hour; at += 7 * time.Minute {
		for i := 0; i < n; i++ {
			gbuf = m.Neighbors(i, at, gbuf[:0])
			bbuf = m.bruteNeighbors(i, at, bbuf[:0])
			if !sameInts(gbuf, bbuf) {
				t.Fatalf("Neighbors(%d, %v) = %v, brute force says %v", i, at, gbuf, bbuf)
			}
		}
		if at > 0 && m.snap.gridAt != 0 {
			t.Fatalf("static field rebuilt its grid at %v", m.snap.gridAt)
		}
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
