// Channel query fast path: per-instant pair memoization and fused
// neighbour scans (DESIGN.md §9).
//
// Everything here is bit-identical to the plain query path by
// construction. The pair caches answer repeated same-instant queries
// without touching the fading links — Link.advance no-ops at dt ≤ 0, so
// a repeated query never consumed random draws in the first place, and
// re-quantizing an unchanged SNR against the hysteresis state the first
// quantization left behind reproduces the first answer exactly. The
// fused scans change how candidate pairs are enumerated and where their
// distances are computed, never which links get advanced at which
// instants, so every fading stream sees the identical query sequence.
package channel

import (
	"time"

	"rica/internal/geom"
	"rica/internal/obs"
)

// NeighborClass is one entry of a fused neighbourhood scan: a terminal
// in radio range together with the current channel class toward it.
type NeighborClass struct {
	ID    int
	Class Class
}

// distAtIdx returns the pair's memoized distance at the snapshot's
// instant, computing and caching it on miss. idx is the model's
// triangular index for (i, j).
func (m *Model) distAtIdx(s *snapshot, idx, i, j int, at time.Duration) float64 {
	if s.pairDistGen[idx] == s.gen {
		m.obs.Inc(obs.CDistHits)
		return s.pairDist[idx]
	}
	m.obs.Inc(obs.CDistMisses)
	d := m.positionAt(s, i, at).DistanceTo(m.positionAt(s, j, at))
	s.pairDist[idx] = d
	s.pairDistGen[idx] = s.gen
	return d
}

// classMiss computes, caches, and returns the pair's class at the
// snapshot's instant. It is the one place the fading link is consulted,
// so the advance pattern each link observes is exactly the pre-cache
// one: the first class query of a pair at a new instant advances it,
// repeats are answered from the cache without touching it.
func (m *Model) classMiss(s *snapshot, idx, i, j int, at time.Duration) Class {
	m.obs.Inc(obs.CClassMisses)
	d := m.distAtIdx(s, idx, i, j, at)
	if m.pairDown(s, i, j, at) {
		// Radio-silent endpoint: feed the link an out-of-range distance so
		// its fading process still advances in step with real time.
		d = m.cfg.Range + 1
	}
	c := m.linkAt(idx, i, j).ClassAt(d, m.relSpeed(s, i, j, at), at)
	s.pairClass[idx] = c
	s.pairClassGen[idx] = s.gen
	return c
}

// candEntry is one candidate of a per-build neighbour list: the
// terminal, the pair's triangular index (precomputed so the hot walks
// never re-derive it), and the build-time distance.
type candEntry struct {
	id  int32
	idx int32 // triangular pair index of (centre, id)
	d   float64
}

// candidates returns node i's candidate list over the current grid
// build: every other terminal whose build-time distance from i's
// build-time position is within candRadius, ascending by id, each with
// that build-time distance and the pair's cache index. The list is
// computed once per (node, grid build) and reused until the next
// rebuild — it depends only on the indexed positions, not on the query
// instant — so repeated neighbour scans between rebuilds skip the
// bucket walk and sorting entirely.
func (m *Model) candidates(s *snapshot, g *geom.Grid, i int) []candEntry {
	if s.candStamp[i] == s.candGen {
		return s.cand[i]
	}
	s.ndBuf = g.NearDist(g.PointAt(i), s.candRadius, s.ndBuf[:0])
	lst := s.cand[i][:0]
	for _, c := range s.ndBuf {
		j := int(c.ID)
		if j == i {
			continue // the centre is always its own nearest candidate
		}
		lst = append(lst, candEntry{id: c.ID, idx: int32(m.pairIndex(i, j)), d: c.D})
	}
	s.cand[i] = lst
	s.candStamp[i] = s.candGen
	return lst
}

// Neighbors appends to dst the ids of terminals within radio range of i
// in ascending id order, and returns the extended slice. Pass a reusable
// buffer to avoid allocation in flood hot paths. The scan walks the
// node's per-build candidate list: with a fresh grid the recorded
// build-time distances are the current distances bit-for-bit (and are
// fed into the pair-distance cache, so the class probes that follow a
// broadcast reuse them); against a stale grid only the candidates inside
// the drift annulus need an exact distance check.
func (m *Model) Neighbors(i int, at time.Duration, dst []int) []int {
	s := m.sync(at)
	if m.downAt(s, i, at) {
		return dst
	}
	g, slack := m.gridAt(s, at)
	cands := m.candidates(s, g, i)

	if slack == 0 {
		// The indexed positions are the current ones bit-for-bit, so the
		// recorded build distance is exact — no position derivation at all,
		// and the distance cache is warmed for free.
		for _, c := range cands {
			if c.d > m.cfg.Range || m.downAt(s, int(c.id), at) {
				continue
			}
			if s.pairDistGen[c.idx] != s.gen {
				s.pairDist[c.idx] = c.d
				s.pairDistGen[c.idx] = s.gen
			}
			dst = append(dst, int(c.id))
		}
		return dst
	}

	// Stale grid: both endpoints can have drifted at most slack metres
	// since the build, so a build distance ≤ Range−2·safe guarantees the
	// pair is still in range, beyond Range+2·safe it provably is not, and
	// only the annulus needs an exact check against current positions.
	safe := slack + slack*slackEps + slackEps
	in, out := m.cfg.Range-2*safe, m.cfg.Range+2*safe
	for _, c := range cands {
		j := int(c.id)
		if c.d > out || m.downAt(s, j, at) {
			continue
		}
		if c.d > in {
			m.obs.Inc(obs.CAnnulusChecks)
			if m.distAtIdx(s, int(c.idx), i, j, at) > m.cfg.Range {
				continue
			}
		}
		dst = append(dst, j)
	}
	return dst
}

// NeighborClasses appends to dst every terminal within radio range of i
// together with its current channel class, in ascending id order — the
// fused form of a Neighbors sweep followed by a Class probe per
// neighbour. One pass over the candidate list performs the range filter,
// the outage filter, the distance computation, and the class
// quantization, sharing the per-instant pair caches with the individual
// query paths.
//
// The call advances exactly the links a Neighbors-then-Class loop would
// advance (every in-range pair with both radios up, at this instant), so
// use it where that loop is the intended access pattern — topology
// installation, neighbourhood surveys — not as a drop-in for scans that
// consult only a subset of the classes.
func (m *Model) NeighborClasses(i int, at time.Duration, dst []NeighborClass) []NeighborClass {
	s := m.sync(at)
	if m.downAt(s, i, at) {
		return dst
	}
	g, slack := m.gridAt(s, at)
	cands := m.candidates(s, g, i)

	safe := slack + slack*slackEps + slackEps
	in, out := m.cfg.Range-2*safe, m.cfg.Range+2*safe
	if slack == 0 {
		in, out = m.cfg.Range, m.cfg.Range
	}
	for _, c := range cands {
		j := int(c.id)
		idx := int(c.idx)
		if c.d > out || m.downAt(s, j, at) {
			continue
		}
		if slack == 0 && s.pairDistGen[idx] != s.gen {
			s.pairDist[idx] = c.d // exact: build positions are current ones
			s.pairDistGen[idx] = s.gen
		}
		if c.d > in {
			m.obs.Inc(obs.CAnnulusChecks)
			if m.distAtIdx(s, idx, i, j, at) > m.cfg.Range {
				continue
			}
		}
		var cl Class
		if s.pairClassGen[idx] == s.gen {
			m.obs.Inc(obs.CClassHits)
			cl = s.pairClass[idx]
		} else {
			cl = m.classMiss(s, idx, i, j, at)
		}
		dst = append(dst, NeighborClass{ID: j, Class: cl})
	}
	return dst
}
