// Sharded channel oracle: the multicore engine behind broadcast
// completions (DESIGN.md §10).
//
// The simulator's event dispatch stays strictly serial — that is what
// keeps runs bit-identical (the MAC backoff stream, the fading sample
// paths, and the kernel's (at, seq) order are all global) — but the
// geometry underneath a broadcast completion is not: the sender's
// neighbour list and the neighbour list of every overlapping transmitter
// are independent, idempotent derivations from the same per-instant
// snapshot. This file fans exactly that slice out across a
// sim.ShardPool.
//
// Decomposition: the grid's columns are partitioned into P contiguous
// stripes (geom.ShardMap), recomputed at every grid rebuild — the epoch
// barrier. A candidate belongs to the stripe holding its build-time
// bucket column, so each worker owns a disjoint id set and is the sole
// writer of those terminals' snapshot slots (position, outage flag) and
// of the pair slots (centre, owned id). Centres themselves — the sender
// and the interfering transmitters, whose slots workers share read-only —
// are warmed serially before the fan-out. The per-stripe results arrive
// in ascending id order and are k-way merged serially, reproducing the
// serial Neighbors output bit-for-bit; verdicts, deliveries, and every
// RNG draw then happen on the dispatch goroutine exactly as in the
// serial engine.
package channel

import (
	"time"

	"rica/internal/geom"
	"rica/internal/obs"
	"rica/internal/sim"
)

// DefaultShardGrain is the fan-out threshold: a completion whose centre
// disks hold fewer bucketed candidates than this (grid CountRect
// estimate, a deterministic upper bound) stays serial. Crossing the pool
// barrier costs a few microseconds of wake-up and stall, so tiny scans —
// the common case in sparse fields — would lose wall time to win
// nothing; dense flood storms, where one completion touches hundreds of
// candidates, are where the shards pay off.
const DefaultShardGrain = 96

// ScanLists is one sharded broadcast scan's result: the completing
// sender's neighbour list plus, for every interfering transmitter, that
// transmitter's neighbour list (the MAC's collision-marking input). The
// lists alias oracle-owned buffers valid until the next scan; the MAC
// copies what it needs before delivering (handlers can re-enter the
// oracle).
type ScanLists struct {
	from    []int
	oIDs    []int
	oLists  [][]int
	nOthers int
}

// Sender returns the completing sender's in-range neighbour list,
// ascending by id — bit-identical to Model.Neighbors at the same
// instant.
func (sl *ScanLists) Sender() []int { return sl.from }

// Others reports how many interfering transmitters were scanned.
func (sl *ScanLists) Others() int { return sl.nOthers }

// Other returns the k-th interfering transmitter and its neighbour list.
func (sl *ScanLists) Other(k int) (id int, neighbors []int) {
	return sl.oIDs[k], sl.oLists[k]
}

// shardState is the oracle's sharding machinery, hung off the Model when
// EnableSharding is called. Everything per-scan is reused; steady state
// allocates nothing.
type shardState struct {
	pool  *sim.ShardPool
	p     int
	grain int

	smap   geom.ShardMap
	mapGen uint64 // candGen the stripe map was built for; 0 = never

	// Per-stripe, per-centre candidate sublists over the current grid
	// build: stripe s's sublist of node i holds exactly the candidates of
	// i whose build column lies in s's stripe. Their disjoint union over
	// the stripes is the serial candidate list.
	cand  [][][]candEntry // [stripe][node]
	stamp [][]uint64      // [stripe][node] == candGen when valid
	ndBuf [][]geom.IDDist // per-stripe grid-query scratch

	// Per-scan inputs, written serially before the fan-out and read-only
	// during it.
	centers []int32
	snap    *snapshot
	grid    *geom.Grid
	at      time.Duration
	slack   float64

	// Per-stripe, per-centre result lists (ids passing every filter, in
	// ascending order), merged serially after the barrier.
	res [][][]int32 // [stripe][centerIdx]

	out   ScanLists
	heads []int // merge cursors, one per stripe

	seen    []uint64 // centre-set dedupe stamps, by node
	seenGen uint64
}

// EnableSharding attaches a worker pool to the model: broadcast scans
// (BroadcastScan) above the grain threshold fan out across the pool's
// shards. grain 0 selects DefaultShardGrain; a negative grain fans out
// every scan (tests use it to force the parallel path on small worlds).
// The serial query paths are untouched; a model without sharding answers
// BroadcastScan with nil and the MAC falls back to them.
func (m *Model) EnableSharding(pool *sim.ShardPool, grain int) {
	n := len(m.pos)
	p := pool.Shards()
	sh := &shardState{pool: pool, p: p, grain: grain}
	if grain == 0 {
		sh.grain = DefaultShardGrain
	}
	sh.cand = make([][][]candEntry, p)
	sh.stamp = make([][]uint64, p)
	sh.ndBuf = make([][]geom.IDDist, p)
	sh.res = make([][][]int32, p)
	for s := 0; s < p; s++ {
		sh.cand[s] = make([][]candEntry, n)
		sh.stamp[s] = make([]uint64, n)
	}
	sh.heads = make([]int, p)
	sh.seen = make([]uint64, n)
	pool.SetWork(func(shard int) { m.shardScan(shard) })
	m.shard = sh
}

// ShardingEnabled reports whether a pool is attached.
func (m *Model) ShardingEnabled() bool { return m.shard != nil }

// BroadcastScan computes, in one sharded pass, everything a broadcast
// completion needs from the geometry: the sender's neighbour list and —
// for every candidate transmitter in others that interferes with the
// sender — that transmitter's neighbour list. others is the MAC's
// temporal-overlap set (duplicates allowed); the Interferes filter
// applied here is the same probe the serial overlaps() path makes, so
// the returned transmitter set equals the serial obuf's id set.
//
// It returns nil when sharding is disabled or the scan is below the
// fan-out grain; the caller then runs the serial path, which recomputes
// the same values through the warm caches. A non-nil result is
// bit-identical to the serial derivation: same lists, same order, same
// cached distances — only cache hit/miss counters can differ.
func (m *Model) BroadcastScan(from int, others []int, at time.Duration) *ScanLists {
	sh := m.shard
	if sh == nil {
		return nil
	}
	s := m.sync(at)
	if m.downAt(s, from, at) {
		// A silenced sender has no receivers; the serial path would not
		// even build the grid. Hand back an empty result without fanning
		// out so the completion stays as cheap as the serial one.
		sh.out.from = sh.out.from[:0]
		sh.out.nOthers = 0
		return &sh.out
	}

	// Centre set: the sender first, then every distinct interfering
	// transmitter, in caller order (the MAC's stamp loop is
	// order-insensitive, but determinism is free here).
	sh.seenGen++
	sh.centers = append(sh.centers[:0], int32(from))
	sh.seen[from] = sh.seenGen
	for _, o := range others {
		if sh.seen[o] == sh.seenGen {
			continue
		}
		sh.seen[o] = sh.seenGen
		if !m.Interferes(o, from, at) {
			continue
		}
		sh.centers = append(sh.centers, int32(o))
	}

	g, slack := m.gridAt(s, at)
	if sh.mapGen != s.candGen {
		// Epoch barrier: the stripe partition follows the grid build.
		sh.smap.Build(g, sh.p)
		sh.mapGen = s.candGen
	}

	// Fan-out gate: a deterministic work estimate (bucketed candidates
	// under all centre disks) against the grain, plus the boundary-span
	// count while the column spans are in hand.
	est := 0
	boundary := false
	for _, c := range sh.centers {
		pt := g.PointAt(int(c))
		est += g.CountRect(pt, s.candRadius)
		if sLo, sHi := sh.smap.Span(g.ColSpan(pt, s.candRadius)); sHi > sLo {
			boundary = true
		}
	}
	if sh.grain > 0 && est < sh.grain {
		m.obs.Inc(obs.CShardFallbacks)
		return nil
	}

	// Phase A (serial): warm every centre's kinematics and the
	// centre-to-centre pair distances, so workers touching a centre — as
	// a read-only scan origin or as another centre's candidate — hit the
	// caches instead of writing shared slots.
	for _, c := range sh.centers {
		m.positionAt(s, int(c), at)
		m.downAt(s, int(c), at)
	}
	for a := 0; a < len(sh.centers); a++ {
		for b := a + 1; b < len(sh.centers); b++ {
			i, j := int(sh.centers[a]), int(sh.centers[b])
			m.distAtIdx(s, m.pairIndex(i, j), i, j, at)
		}
	}
	for shard := 0; shard < sh.p; shard++ {
		for len(sh.res[shard]) < len(sh.centers) {
			sh.res[shard] = append(sh.res[shard], nil)
		}
	}

	m.obs.Inc(obs.CShardFanouts)
	if boundary {
		m.obs.Inc(obs.CShardBoundary)
	}
	sh.snap, sh.grid, sh.at, sh.slack = s, g, at, slack
	sh.pool.Fanout()
	sh.merge()
	return &sh.out
}

// shardScan is the worker body: for every centre, filter the stripe's
// candidate sublist exactly as the serial Neighbors walk would — fresh
// grids reuse the recorded build distances and warm the pair-distance
// cache, stale grids resolve only the drift annulus — writing results
// and snapshot slots owned by this stripe alone.
func (m *Model) shardScan(shard int) {
	sh := m.shard
	s, g, at, slack := sh.snap, sh.grid, sh.at, sh.slack
	colLo, colHi := sh.smap.Owns(shard)
	safe := slack + slack*slackEps + slackEps
	in, out := m.cfg.Range-2*safe, m.cfg.Range+2*safe
	for k, c := range sh.centers {
		dst := sh.res[shard][k][:0]
		i := int(c)
		if (m.down != nil && s.down[i]) || colLo >= colHi {
			sh.res[shard][k] = dst
			continue
		}
		cands := m.shardCandidates(sh, shard, g, i, colLo, colHi-1)
		if slack == 0 {
			for _, e := range cands {
				if e.d > m.cfg.Range || m.downAt(s, int(e.id), at) {
					continue
				}
				if s.pairDistGen[e.idx] != s.gen {
					s.pairDist[e.idx] = e.d
					s.pairDistGen[e.idx] = s.gen
				}
				dst = append(dst, e.id)
			}
		} else {
			for _, e := range cands {
				j := int(e.id)
				if e.d > out || m.downAt(s, j, at) {
					continue
				}
				if e.d > in {
					m.obs.Inc(obs.CAnnulusChecks)
					if m.distAtIdx(s, int(e.idx), i, j, at) > m.cfg.Range {
						continue
					}
				}
				dst = append(dst, e.id)
			}
		}
		sh.res[shard][k] = dst
	}
}

// shardCandidates returns centre i's candidate sublist for one stripe —
// the stripe-clipped equivalent of the serial candidates() list, cached
// per (stripe, centre, grid build) with the same build-distance and
// pair-index precomputation.
func (m *Model) shardCandidates(sh *shardState, shard int, g *geom.Grid, i, colLo, colHi int) []candEntry {
	if sh.stamp[shard][i] == sh.snap.candGen {
		return sh.cand[shard][i]
	}
	buf := g.NearDistCols(g.PointAt(i), sh.snap.candRadius, colLo, colHi, sh.ndBuf[shard][:0])
	sh.ndBuf[shard] = buf
	lst := sh.cand[shard][i][:0]
	for _, c := range buf {
		j := int(c.ID)
		if j == i {
			continue
		}
		lst = append(lst, candEntry{id: c.ID, idx: int32(m.pairIndex(i, j)), d: c.D})
	}
	sh.cand[shard][i] = lst
	sh.stamp[shard][i] = sh.snap.candGen
	return lst
}

// merge folds the per-stripe result lists into the output envelope: for
// each centre, a P-way merge of already-ascending sublists over disjoint
// id sets — the exact order the serial scan produces.
func (sh *shardState) merge() {
	sh.out.from = sh.mergeCenter(0, sh.out.from[:0])
	sh.out.nOthers = len(sh.centers) - 1
	for len(sh.out.oLists) < sh.out.nOthers {
		sh.out.oLists = append(sh.out.oLists, nil)
		sh.out.oIDs = append(sh.out.oIDs, 0)
	}
	for k := 1; k < len(sh.centers); k++ {
		sh.out.oIDs[k-1] = int(sh.centers[k])
		sh.out.oLists[k-1] = sh.mergeCenter(k, sh.out.oLists[k-1][:0])
	}
}

func (sh *shardState) mergeCenter(k int, dst []int) []int {
	for s := 0; s < sh.p; s++ {
		sh.heads[s] = 0
	}
	for {
		best, bestID := -1, int32(0)
		for s := 0; s < sh.p; s++ {
			lst := sh.res[s][k]
			if sh.heads[s] >= len(lst) {
				continue
			}
			if id := lst[sh.heads[s]]; best < 0 || id < bestID {
				best, bestID = s, id
			}
		}
		if best < 0 {
			return dst
		}
		sh.heads[best]++
		dst = append(dst, int(bestID))
	}
}
