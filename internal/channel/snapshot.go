package channel

import (
	"math"
	"time"

	"rica/internal/geom"
)

// Stabler optionally extends Positioner with an exact staleness bound:
// the first instant after at when Position(at) may change. mobility.Node
// implements it (next leg/pause boundary), as do pinned terminals
// (forever). Positioners without it are treated as always in motion, so
// their cached positions expire at every new virtual instant.
type Stabler interface {
	PositionStableUntil(at time.Duration) time.Duration
}

// SpeedLimiter optionally extends Positioner with a hard upper bound on
// instantaneous speed (m/s). The bound lets the snapshot keep serving a
// stale spatial grid exactly: a terminal can have drifted at most
// limit·Δt from its indexed position, so widening queries by that slack
// yields a guaranteed candidate superset. Positioners without a limit
// (and without a forever-stable position) force a grid rebuild on every
// new instant, which is simply the pre-grid behaviour.
type SpeedLimiter interface {
	SpeedLimit() float64
}

// foreverStable marks a position with no future staleness boundary.
const foreverStable = time.Duration(math.MaxInt64)

// snapshot memoizes the kinematic state of one virtual instant —
// positions, speeds, and outage flags — plus a spatial grid over the
// positions. Every Model query routes through it, so an event that makes
// many queries at one kernel.Now() (a flood delivery, a carrier-sense
// sweep, a topology install) derives each terminal's position once
// instead of once per pair.
//
// Positions additionally persist *across* instants while their terminal
// is paused: the Stabler boundary says exactly when a cached position
// goes stale, so a static or pausing field rebuilds nothing. The fading
// links are deliberately not part of the snapshot — their lazy private
// streams advance exactly as they would without it, keeping runs
// bit-identical to the pre-snapshot scan.
type snapshot struct {
	at  time.Duration
	gen uint64 // 0 = no instant cached yet; bumped whenever at changes

	pos      []geom.Point
	posGen   []uint64
	posAt    []time.Duration // instant each cached position was computed for
	posUntil []time.Duration // exclusive staleness bound of each position

	speed    []float64
	speedGen []uint64

	down    []bool
	downGen []uint64

	certBuf  []int // scratch: certain hits of a split grid query
	maybeBuf []int // scratch: boundary candidates of a split grid query

	grid      geom.Grid
	gridBuilt bool
	gridAt    time.Duration // instant the grid was built for
	gridUntil time.Duration // min posUntil across members at build time
	gridVmax  float64       // max SpeedLimit across mobile members; +Inf if unbounded
	maxSlack  float64       // drift budget before a rebuild (a sixteenth of a cell)
}

func newSnapshot(n int, cell float64) *snapshot {
	if cell <= 0 {
		cell = 1 // degenerate configs (tests) still get a working index
	}
	return &snapshot{
		// The drift budget trades rebuild rate against the width of the
		// exact-check annulus every stale-grid query must walk. Rebuilds
		// are O(n) and cheap, while the annulus is paid on every flood
		// completion's neighbour scan, so a tight budget wins: at the
		// default 250 m range and 10 m/s MaxSpeed a sixteenth of a cell
		// rebuilds every ~1.5 virtual seconds and keeps the annulus under
		// ±16 m.
		maxSlack: cell / 16,
		pos:      make([]geom.Point, n),
		posGen:   make([]uint64, n),
		posAt:    make([]time.Duration, n),
		posUntil: make([]time.Duration, n),
		speed:    make([]float64, n),
		speedGen: make([]uint64, n),
		down:     make([]bool, n),
		downGen:  make([]uint64, n),
		grid:     *geom.NewGrid(cell),
	}
}

// pairDistance returns the distance between i and j at instant at. The
// endpoints' positions are memoized per instant; the subtract-and-sqrt on
// top of them is cheaper than any per-pair stamp table would be.
func (m *Model) pairDistance(s *snapshot, i, j int, at time.Duration) float64 {
	return m.positionAt(s, i, at).DistanceTo(m.positionAt(s, j, at))
}

// sync points the snapshot at virtual instant at. Same-instant calls are
// free; a new instant just bumps the generation (lazy invalidation — no
// per-terminal work happens until something is queried).
func (m *Model) sync(at time.Duration) *snapshot {
	s := m.snap
	if s.gen == 0 || s.at != at {
		s.at = at
		s.gen++
	}
	return s
}

// positionAt returns terminal i's memoized position at instant at,
// deriving it from the Positioner only when the cache misses. A cached
// position survives instant changes while its Stabler boundary holds.
// The hit branch is kept small enough to inline into the range and class
// probes that dominate the flood hot path.
func (m *Model) positionAt(s *snapshot, i int, at time.Duration) geom.Point {
	if s.posGen[i] == s.gen {
		return s.pos[i]
	}
	return m.positionMiss(s, i, at)
}

func (m *Model) positionMiss(s *snapshot, i int, at time.Duration) geom.Point {
	if s.posGen[i] != 0 && s.posAt[i] <= at && at < s.posUntil[i] {
		s.posGen[i] = s.gen // still stable: revalidate for this instant
		return s.pos[i]
	}
	p := m.pos[i].Position(at)
	until := at
	if st, ok := m.pos[i].(Stabler); ok {
		until = st.PositionStableUntil(at)
	}
	s.pos[i] = p
	s.posGen[i] = s.gen
	s.posAt[i] = at
	s.posUntil[i] = until
	return p
}

// speedAt returns terminal i's memoized instantaneous speed at at.
func (m *Model) speedAt(s *snapshot, i int, at time.Duration) float64 {
	if s.speedGen[i] == s.gen {
		return s.speed[i]
	}
	return m.speedMiss(s, i, at)
}

func (m *Model) speedMiss(s *snapshot, i int, at time.Duration) float64 {
	v := 0.0
	if sp, ok := m.pos[i].(Speeder); ok {
		v = sp.Speed(at)
	}
	s.speed[i] = v
	s.speedGen[i] = s.gen
	return v
}

// downAt returns terminal i's memoized outage flag at at.
func (m *Model) downAt(s *snapshot, i int, at time.Duration) bool {
	if m.down == nil {
		return false
	}
	if s.downGen[i] == s.gen {
		return s.down[i]
	}
	s.down[i] = m.down(i, at)
	s.downGen[i] = s.gen
	return s.down[i]
}

// gridAt returns the spatial index together with the query slack that
// makes it exact at instant at. Slack 0 means the indexed positions are
// the current positions bit-for-bit; a positive slack bounds how far any
// terminal can have drifted since the build, so widening a disk query by
// it yields a guaranteed candidate superset (callers then filter against
// exact current positions). The index is rebuilt only when the drift
// budget is exhausted — every maxSlack/vmax of virtual time, not every
// event — and never in a static field.
func (m *Model) gridAt(s *snapshot, at time.Duration) (*geom.Grid, float64) {
	if s.gridBuilt && at >= s.gridAt {
		if at == s.gridAt || at < s.gridUntil {
			return &s.grid, 0
		}
		if !math.IsInf(s.gridVmax, 1) {
			if slack := s.gridVmax * (at - s.gridAt).Seconds(); slack <= s.maxSlack {
				return &s.grid, slack
			}
		}
	}
	s.gridBuilt = false
	until := foreverStable
	vmax := 0.0
	for i := range m.pos {
		m.positionAt(s, i, at)
		if s.posUntil[i] < until {
			until = s.posUntil[i]
		}
		if s.posUntil[i] != foreverStable {
			if sl, ok := m.pos[i].(SpeedLimiter); ok {
				vmax = math.Max(vmax, sl.SpeedLimit())
			} else {
				vmax = math.Inf(1) // unbounded mover: no stale service
			}
		}
	}
	s.grid.Rebuild(s.pos)
	s.gridBuilt = true
	s.gridAt = at
	s.gridUntil = until
	s.gridVmax = vmax
	return &s.grid, 0
}
