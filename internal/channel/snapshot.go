package channel

import (
	"math"
	"time"

	"rica/internal/geom"
	"rica/internal/obs"
)

// Stabler optionally extends Positioner with an exact staleness bound:
// the first instant after at when Position(at) may change. mobility.Node
// implements it (next leg/pause boundary), as do pinned terminals
// (forever). Positioners without it are treated as always in motion, so
// their cached positions expire at every new virtual instant.
type Stabler interface {
	PositionStableUntil(at time.Duration) time.Duration
}

// PositionStabler fuses Positioner and Stabler into a single call: the
// position at at together with the first instant it may change. The
// snapshot prefers it on a cache miss — one trajectory advance and one
// interface dispatch instead of two — and falls back to the split calls
// for Positioners that only implement the narrow interfaces. The fused
// result must equal Position(at) and PositionStableUntil(at) exactly.
type PositionStabler interface {
	PositionStable(at time.Duration) (geom.Point, time.Duration)
}

// SpeedStabler extends Speeder with an exact staleness bound, mirroring
// PositionStabler: the speed at at and the first instant it may change.
// Waypoint terminals travel each leg at constant speed and pause at zero
// speed, so their speed is piecewise constant with known boundaries —
// which lets the snapshot keep a speed cached across instants instead of
// re-deriving it per event. The fused result must equal Speed(at).
type SpeedStabler interface {
	SpeedStable(at time.Duration) (float64, time.Duration)
}

// SpeedLimiter optionally extends Positioner with a hard upper bound on
// instantaneous speed (m/s). The bound lets the snapshot keep serving a
// stale spatial grid exactly: a terminal can have drifted at most
// limit·Δt from its indexed position, so widening queries by that slack
// yields a guaranteed candidate superset. Positioners without a limit
// (and without a forever-stable position) force a grid rebuild on every
// new instant, which is simply the pre-grid behaviour.
type SpeedLimiter interface {
	SpeedLimit() float64
}

// foreverStable marks a position with no future staleness boundary.
const foreverStable = time.Duration(math.MaxInt64)

// caps holds one terminal's optional capabilities, resolved once at
// model construction so the per-miss hot paths dispatch through a nil
// check instead of an interface type assertion.
type caps struct {
	posStable   PositionStabler
	stabler     Stabler
	speeder     Speeder
	speedStable SpeedStabler
	limiter     SpeedLimiter
}

func resolveCaps(pos []Positioner) []caps {
	cs := make([]caps, len(pos))
	for i, p := range pos {
		c := &cs[i]
		c.posStable, _ = p.(PositionStabler)
		c.stabler, _ = p.(Stabler)
		c.speeder, _ = p.(Speeder)
		c.speedStable, _ = p.(SpeedStabler)
		c.limiter, _ = p.(SpeedLimiter)
	}
	return cs
}

// snapshot memoizes the kinematic state of one virtual instant —
// positions, speeds, outage flags, and derived per-pair quantities — plus
// a spatial grid over the positions. Every Model query routes through it,
// so an event that makes many queries at one kernel.Now() (a flood
// delivery, a carrier-sense sweep, a topology install) derives each
// terminal's position once instead of once per pair, and each pair's
// distance, class, and SNR at most once per instant (see fastpath.go for
// the pair caches and the fused neighbour scans).
//
// Positions additionally persist *across* instants while their terminal
// is paused: the Stabler boundary says exactly when a cached position
// goes stale, so a static or pausing field rebuilds nothing. Speeds do
// the same through SpeedStabler — a waypoint terminal's speed is
// piecewise constant, so its cache entry survives until the next
// leg/pause boundary. The fading links are deliberately not part of the
// snapshot — their lazy private streams advance exactly as they would
// without it, keeping runs bit-identical to the pre-snapshot scan.
type snapshot struct {
	at  time.Duration
	gen uint64 // 0 = no instant cached yet; bumped whenever at changes

	pos      []geom.Point
	posGen   []uint64
	posAt    []time.Duration // instant each cached position was computed for
	posUntil []time.Duration // exclusive staleness bound of each position

	speed      []float64
	speedGen   []uint64
	speedFrom  []time.Duration // instant each cached speed was computed for
	speedUntil []time.Duration // exclusive staleness bound of each speed

	down    []bool
	downGen []uint64

	// Per-pair, per-instant memo of derived link quantities, indexed by
	// the model's triangular pair index and stamped with gen. Distance is
	// warmed by the fused neighbour scans, so the Class probe a flood
	// delivery triggers right after a Neighbors sweep reuses the scan's
	// arithmetic. The SNR lane is allocated lazily — only diagnostics ask.
	pairDistGen  []uint64
	pairDist     []float64
	pairClassGen []uint64
	pairClass    []Class
	pairSNRGen   []uint64
	pairSNR      []float64

	// Per-node candidate lists over the current grid build (fastpath.go).
	// candGen identifies the build; a node's list is valid while its stamp
	// matches. candRadius is the build-time distance beyond which a pair
	// provably cannot be in range at any instant the build serves.
	candGen    uint64
	cand       [][]candEntry
	candStamp  []uint64
	ndBuf      []geom.IDDist // scratch for the grid query behind a list build
	safeMax    float64       // per-terminal drift bound incl. float-safety padding
	candRadius float64

	grid      geom.Grid
	gridBuilt bool
	gridAt    time.Duration // instant the grid was built for
	gridUntil time.Duration // min posUntil across members at build time
	gridVmax  float64       // max SpeedLimit across mobile members; +Inf if unbounded
	maxSlack  float64       // drift budget before a rebuild (a sixteenth of a cell)
}

// slackEps keeps float rounding in the drift bound from ever flipping a
// certainty, at the price of a nanometre-wider annulus.
const slackEps = 1e-9

// newSnapshot sizes the per-instant caches for n terminals. rangeM is
// the radio range the neighbour queries use; cell the grid's bucket
// size (currently equal to the range, but the candidate-list radius
// must follow the range even if the bucket size is ever tuned apart).
func newSnapshot(n int, rangeM, cell float64) *snapshot {
	if cell <= 0 {
		cell = 1 // degenerate configs (tests) still get a working index
	}
	if rangeM < 0 {
		rangeM = 0
	}
	maxSlack := cell / 16
	safeMax := maxSlack + maxSlack*slackEps + slackEps
	npairs := n * (n - 1) / 2
	return &snapshot{
		// The drift budget trades rebuild rate against the width of the
		// exact-check annulus every stale-grid query must walk. Rebuilds
		// are O(n) and cheap, while the annulus is paid on every flood
		// completion's neighbour scan, so a tight budget wins: at the
		// default 250 m range and 10 m/s MaxSpeed a sixteenth of a cell
		// rebuilds every ~1.5 virtual seconds and keeps the annulus under
		// ±16 m per terminal.
		maxSlack: maxSlack,
		safeMax:  safeMax,
		// Candidate lists must stay supersets for every instant their grid
		// build serves: both endpoints of a pair can drift up to the slack
		// budget, so the cut is one full annulus width past the range.
		candRadius: rangeM + 2*safeMax,
		pos:        make([]geom.Point, n),
		posGen:     make([]uint64, n),
		posAt:      make([]time.Duration, n),
		posUntil:   make([]time.Duration, n),
		speed:      make([]float64, n),
		speedGen:   make([]uint64, n),
		speedFrom:  make([]time.Duration, n),
		speedUntil: make([]time.Duration, n),
		down:       make([]bool, n),
		downGen:    make([]uint64, n),

		pairDistGen:  make([]uint64, npairs),
		pairDist:     make([]float64, npairs),
		pairClassGen: make([]uint64, npairs),
		pairClass:    make([]Class, npairs),

		cand:      make([][]candEntry, n),
		candStamp: make([]uint64, n),

		grid: *geom.NewGrid(cell),
	}
}

// pairDistance returns the distance between i and j at instant at,
// without touching the pair cache (grid-rebuild internals and the brute
// reference use it). Cached queries go through distAtIdx in fastpath.go.
func (m *Model) pairDistance(s *snapshot, i, j int, at time.Duration) float64 {
	return m.positionAt(s, i, at).DistanceTo(m.positionAt(s, j, at))
}

// sync points the snapshot at virtual instant at. Same-instant calls are
// free; a new instant just bumps the generation (lazy invalidation — no
// per-terminal work happens until something is queried).
func (m *Model) sync(at time.Duration) *snapshot {
	s := m.snap
	if s.gen == 0 || s.at != at {
		s.at = at
		s.gen++
	}
	return s
}

// positionAt returns terminal i's memoized position at instant at,
// deriving it from the Positioner only when the cache misses. A cached
// position survives instant changes while its Stabler boundary holds.
// The hit branch is kept small enough to inline into the range and class
// probes that dominate the flood hot path.
func (m *Model) positionAt(s *snapshot, i int, at time.Duration) geom.Point {
	if s.posGen[i] == s.gen {
		return s.pos[i]
	}
	return m.positionMiss(s, i, at)
}

func (m *Model) positionMiss(s *snapshot, i int, at time.Duration) geom.Point {
	if s.posGen[i] != 0 && s.posAt[i] <= at && at < s.posUntil[i] {
		s.posGen[i] = s.gen // still stable: revalidate for this instant
		return s.pos[i]
	}
	var p geom.Point
	var until time.Duration
	if ps := m.caps[i].posStable; ps != nil {
		p, until = ps.PositionStable(at) // fused: one trajectory advance
	} else {
		p = m.pos[i].Position(at)
		until = at
		if st := m.caps[i].stabler; st != nil {
			until = st.PositionStableUntil(at)
		}
	}
	s.pos[i] = p
	s.posGen[i] = s.gen
	s.posAt[i] = at
	s.posUntil[i] = until
	return p
}

// speedAt returns terminal i's memoized instantaneous speed at at.
func (m *Model) speedAt(s *snapshot, i int, at time.Duration) float64 {
	if s.speedGen[i] == s.gen {
		return s.speed[i]
	}
	return m.speedMiss(s, i, at)
}

func (m *Model) speedMiss(s *snapshot, i int, at time.Duration) float64 {
	if s.speedGen[i] != 0 && s.speedFrom[i] <= at && at < s.speedUntil[i] {
		s.speedGen[i] = s.gen // piecewise-constant segment still holds
		return s.speed[i]
	}
	v := 0.0
	until := at
	if ss := m.caps[i].speedStable; ss != nil {
		v, until = ss.SpeedStable(at)
	} else if sp := m.caps[i].speeder; sp != nil {
		v = sp.Speed(at)
	} else {
		until = foreverStable // no Speeder: parked by definition, forever
	}
	s.speed[i] = v
	s.speedGen[i] = s.gen
	s.speedFrom[i] = at
	s.speedUntil[i] = until
	return v
}

// downAt returns terminal i's memoized outage flag at at.
func (m *Model) downAt(s *snapshot, i int, at time.Duration) bool {
	if m.down == nil {
		return false
	}
	if s.downGen[i] == s.gen {
		return s.down[i]
	}
	s.down[i] = m.down(i, at)
	s.downGen[i] = s.gen
	return s.down[i]
}

// gridAt returns the spatial index together with the query slack that
// makes it exact at instant at. Slack 0 means the indexed positions are
// the current positions bit-for-bit; a positive slack bounds how far any
// terminal can have drifted since the build, so widening a disk query by
// it yields a guaranteed candidate superset (callers then filter against
// exact current positions). The index is rebuilt only when the drift
// budget is exhausted — every maxSlack/vmax of virtual time, not every
// event — and never in a static field. A rebuild also invalidates the
// per-node candidate lists derived from the previous build.
func (m *Model) gridAt(s *snapshot, at time.Duration) (*geom.Grid, float64) {
	if s.gridBuilt && at >= s.gridAt {
		if at == s.gridAt || at < s.gridUntil {
			return &s.grid, 0
		}
		if !math.IsInf(s.gridVmax, 1) {
			if slack := s.gridVmax * (at - s.gridAt).Seconds(); slack <= s.maxSlack {
				return &s.grid, slack
			}
		}
	}
	s.gridBuilt = false
	until := foreverStable
	vmax := 0.0
	for i := range m.pos {
		m.positionAt(s, i, at)
		if s.posUntil[i] < until {
			until = s.posUntil[i]
		}
		if s.posUntil[i] != foreverStable {
			if sl := m.caps[i].limiter; sl != nil {
				vmax = math.Max(vmax, sl.SpeedLimit())
			} else {
				vmax = math.Inf(1) // unbounded mover: no stale service
			}
		}
	}
	m.obs.Inc(obs.CGridRebuilds)
	s.grid.Rebuild(s.pos)
	s.gridBuilt = true
	s.gridAt = at
	s.gridUntil = until
	s.gridVmax = vmax
	s.candGen++ // candidate lists of the old build are dead
	return &s.grid, 0
}
