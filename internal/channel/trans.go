package channel

import (
	"math"
	"time"

	"rica/internal/obs"
)

// The AR(1) advance of every fading link computes four speed-scaled
// coefficients — ρ_S = exp(−dt/τ_S), sqrt(1−ρ_S²), ρ_F = exp(−dt/τ_F),
// sqrt(1−ρ_F²) — from just two inputs: the elapsed interval dt and the
// floored speed scale. Both inputs repeat heavily across the link
// population (quantized airtimes and timer periods produce recurring
// event spacings, per-leg speeds are constant between waypoints, and
// every parked pair shares the MinSpeed floor), while the coefficients
// cost two exponentials and two square roots each time.
//
// transCache memoizes the mapping. The cache is exact, not approximate:
// entries are keyed on the exact bit patterns of (dt, speedScale), and a
// hit returns the exact float64 outputs the direct computation produced
// when the entry was filled — identical inputs give identical IEEE-754
// outputs, so a run with the cache is bit-for-bit the run without it.
// The table is direct-mapped; a colliding key simply overwrites, which
// keeps lookups allocation-free and O(1).
//
// One cache is shared by all links of a Model (the coefficients depend
// only on the shared Config), so a hot spacing computed for one pair
// serves every other pair that sees it.

// transCacheBits sizes the direct-mapped table; 512 entries cover the
// recurring spacings of a paper-scale run while staying cache-resident.
const transCacheBits = 9

type transEntry struct {
	dt    int64  // exact key: advance interval (ns); 0 marks an empty slot
	speed uint64 // exact key: math.Float64bits of the floored speed scale

	rhoS, sigS float64 // shadowing: exp(−dt/τ_S), sqrt(1−ρ_S²)
	rhoF, sigF float64 // fading:    exp(−dt/τ_F), sqrt(1−ρ_F²)
}

// transCache is the direct-mapped coefficient table. The zero value is
// ready to use: advance never probes with dt ≤ 0, so the zero-keyed
// empty slots can never produce a false hit.
type transCache struct {
	entries [1 << transCacheBits]transEntry
	obs     *obs.Registry // hit/miss counters; nil-safe, set via Model.SetObs
}

// coeffs returns the four AR(1) coefficients for (dt, speedScale),
// serving exact-key hits from the table and filling it on miss.
func (c *transCache) coeffs(cfg *Config, dt time.Duration, speedScale float64) (rhoS, sigS, rhoF, sigF float64) {
	sb := math.Float64bits(speedScale)
	h := (uint64(dt)*0x9E3779B97F4A7C15 ^ sb*0xBF58476D1CE4E5B9) >> (64 - transCacheBits)
	e := &c.entries[h]
	if e.dt == int64(dt) && e.speed == sb {
		c.obs.Inc(obs.CTransHits)
		return e.rhoS, e.sigS, e.rhoF, e.sigF
	}
	c.obs.Inc(obs.CTransMisses)
	rhoS, sigS, rhoF, sigF = arCoeffs(cfg, dt, speedScale)
	*e = transEntry{dt: int64(dt), speed: sb, rhoS: rhoS, sigS: sigS, rhoF: rhoF, sigF: sigF}
	return rhoS, sigS, rhoF, sigF
}

// arCoeffs is the direct computation the cache memoizes — kept as one
// function so the cached and uncached paths cannot drift apart.
func arCoeffs(cfg *Config, dt time.Duration, speedScale float64) (rhoS, sigS, rhoF, sigF float64) {
	stretch := cfg.RefSpeed / speedScale
	tauS := cfg.ShadowTau.Seconds() * stretch
	tauF := cfg.FadeTau.Seconds() * stretch

	rhoS = math.Exp(-dt.Seconds() / tauS)
	sigS = math.Sqrt(1 - rhoS*rhoS)
	rhoF = math.Exp(-dt.Seconds() / tauF)
	sigF = math.Sqrt(1 - rhoF*rhoF)
	return rhoS, sigS, rhoF, sigF
}
