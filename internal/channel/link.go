package channel

import (
	"math"
	"math/rand"
	"time"
)

// Config parameterizes the composite SNR process. DefaultConfig returns
// values calibrated so that a link spends meaningful time in every class
// across the 0–250 m usable range (see calibration notes in DESIGN.md §2).
type Config struct {
	// Range is the hard radio reception range in metres (paper: 250 m).
	Range float64
	// PathLossExponent n in the log-distance law (3.0 ≈ urban outdoor).
	PathLossExponent float64
	// RefSNR is the median SNR in dB at 1 m. With the default exponent it
	// leaves the range edge around the class B/C boundary.
	RefSNR float64
	// ShadowSigma is the log-normal shadowing standard deviation in dB.
	ShadowSigma float64
	// ShadowTau is the shadowing decorrelation time constant *at
	// RefSpeed*. Shadowing decorrelates over distance, so the effective
	// time constant scales inversely with how fast the pair moves:
	// τ_eff = ShadowTau · RefSpeed / max(v_rel, MinSpeed).
	ShadowTau time.Duration
	// FadeTau is the fast-fading (effective channel class, as tracked by
	// ABICM) decorrelation time constant at RefSpeed. Like Jakes' Doppler
	// spread, it scales inversely with relative speed; a static pair's
	// channel is nearly frozen, which is exactly why the paper's static
	// link-state scenario performs well while mobile ones collapse.
	FadeTau time.Duration
	// RefSpeed is the relative pair speed (m/s) at which ShadowTau and
	// FadeTau apply verbatim.
	RefSpeed float64
	// MinSpeed floors the speed scaling: even a parked pair sees slow
	// channel drift from environmental motion.
	MinSpeed float64
	// ThresholdA/B/C are the SNR quantizer boundaries in dB; SNR below
	// ThresholdC is class D (a link in range never vanishes from fading).
	ThresholdA, ThresholdB, ThresholdC float64
	// HysteresisDB is the margin above a boundary the SNR must reach
	// before the quantizer *upgrades* a link's class (downgrades apply
	// immediately). Adaptive coding/modulation schemes use exactly this to
	// keep near-boundary links from flapping between rates.
	HysteresisDB float64
}

// DefaultConfig returns the calibration used by all experiments.
func DefaultConfig() Config {
	return Config{
		Range:            250,
		PathLossExponent: 3.0,
		RefSNR:           85, // median 25 dB at 100 m, ~13 dB at 250 m
		ShadowSigma:      8,
		ShadowTau:        8 * time.Second,
		FadeTau:          time.Second,
		RefSpeed:         10,   // m/s (36 km/h)
		MinSpeed:         0.02, // parked pairs are essentially frozen (no Doppler)
		ThresholdA:       21,
		ThresholdB:       14,
		ThresholdC:       7,
		HysteresisDB:     1.5,
	}
}

// Link is the fading state of one unordered terminal pair. It is advanced
// lazily: each query at a later virtual time evolves the shadowing and
// fading processes by the elapsed interval. Queries at or before the last
// update time return the current state unchanged, so all events within one
// simulator instant observe a consistent channel.
type Link struct {
	cfg *Config
	rng *rand.Rand

	// trans, when non-nil, memoizes the speed-scaled AR(1) coefficients
	// shared across a model's links (see trans.go). Links built outside a
	// Model compute them directly; the sampled processes are identical
	// either way, because the cache is exact.
	trans *transCache

	last   time.Duration
	inited bool

	shadow float64 // dB, N(0, ShadowSigma²) marginally
	fi, fq float64 // fading quadratures, N(0,1) marginally

	lastClass Class // hysteresis memory; ClassNone until first quantization

	// lastD/lastPathLoss memoize the deterministic log-distance term of
	// the most recent SNR evaluation. Keyed on the exact distance bits
	// (d ≥ 1 always, so the zero value can never false-hit), the memo is
	// bit-exact; it pays off whenever neither endpoint moved between
	// queries — parked pairs and static topologies.
	lastD        float64
	lastPathLoss float64
}

// NewLink creates a link process with its private random stream. The
// initial state is drawn from the stationary distribution, so t = 0 is not
// special.
func NewLink(cfg *Config, rng *rand.Rand) *Link {
	if rng == nil {
		panic("channel: NewLink requires a random stream")
	}
	l := &Link{cfg: cfg, rng: rng}
	l.shadow = rng.NormFloat64() * cfg.ShadowSigma
	l.fi = rng.NormFloat64()
	l.fq = rng.NormFloat64()
	l.inited = true
	return l
}

// advance evolves shadowing and fading to time at. relSpeed is the pair's
// current relative speed in m/s; it scales both processes' decorrelation
// (Doppler): fast movers see fast fading, parked pairs a nearly frozen
// channel. The current speed is applied across the whole elapsed interval,
// a first-order approximation adequate for the sub-second event spacing
// the simulator produces.
func (l *Link) advance(at time.Duration, relSpeed float64) {
	dt := at - l.last
	if dt <= 0 {
		return
	}
	l.last = at

	speedScale := relSpeed
	if speedScale < l.cfg.MinSpeed {
		speedScale = l.cfg.MinSpeed
	}

	// AR(1) / Ornstein-Uhlenbeck update preserving the stationary law:
	// x' = ρx + sqrt(1-ρ²)·σ·N(0,1), ρ = exp(−dt/τ). The coefficients
	// depend only on (dt, speedScale); the shared exact-key cache answers
	// recurring spacings without recomputing the transcendentals.
	var rhoS, sigS, rhoF, sigF float64
	if l.trans != nil {
		rhoS, sigS, rhoF, sigF = l.trans.coeffs(l.cfg, dt, speedScale)
	} else {
		rhoS, sigS, rhoF, sigF = arCoeffs(l.cfg, dt, speedScale)
	}
	l.shadow = rhoS*l.shadow + sigS*l.cfg.ShadowSigma*l.rng.NormFloat64()
	l.fi = rhoF*l.fi + sigF*l.rng.NormFloat64()
	l.fq = rhoF*l.fq + sigF*l.rng.NormFloat64()
}

// SNR reports the instantaneous SNR in dB at distance d metres and virtual
// time at, for a pair with relative speed relSpeed m/s. It does not apply
// the range cutoff; see ClassAt.
func (l *Link) SNR(d, relSpeed float64, at time.Duration) float64 {
	l.advance(at, relSpeed)
	if d < 1 {
		d = 1 // log-distance law reference distance
	}
	if d != l.lastD {
		l.lastPathLoss = 10 * l.cfg.PathLossExponent * math.Log10(d)
		l.lastD = d
	}
	pathLoss := l.lastPathLoss
	// Rayleigh envelope power in dB: the two quadratures are unit normal,
	// so (fi²+fq²)/2 is Exp(1) with mean 1 (0 dB average fade).
	fadePow := (l.fi*l.fi + l.fq*l.fq) / 2
	if fadePow < 1e-12 {
		fadePow = 1e-12 // bound the deepest representable fade at −120 dB
	}
	fade := 10 * math.Log10(fadePow)
	return l.cfg.RefSNR - pathLoss + l.shadow + fade
}

// ClassAt reports the channel class for the pair at distance d and time at:
// ClassNone beyond the radio range, otherwise the quantized SNR class with
// upgrade hysteresis (a link must clear a boundary by HysteresisDB before
// its rate steps up; degradations bite immediately).
func (l *Link) ClassAt(d, relSpeed float64, at time.Duration) Class {
	if d > l.cfg.Range {
		l.advance(at, relSpeed) // keep the process in sync regardless
		l.lastClass = ClassNone
		return ClassNone
	}
	snr := l.SNR(d, relSpeed, at)
	raw := ClassForSNR(snr, l.cfg)
	if l.lastClass.Usable() && raw < l.lastClass {
		// Candidate upgrade: hold the old class unless the SNR clears the
		// candidate's lower boundary by the hysteresis margin.
		if snr < l.upgradeBoundary(raw)+l.cfg.HysteresisDB {
			raw = l.lastClass
		}
	}
	l.lastClass = raw
	return raw
}

// upgradeBoundary is the lower SNR boundary of class c.
func (l *Link) upgradeBoundary(c Class) float64 {
	switch c {
	case ClassA:
		return l.cfg.ThresholdA
	case ClassB:
		return l.cfg.ThresholdB
	case ClassC:
		return l.cfg.ThresholdC
	default:
		return -1e9 // class D has no lower boundary
	}
}

// LinkState is the serializable fading state of one pair: the AR(1)
// shadowing/fading processes, the advance clock, and the quantizer's
// hysteresis memory. The path-loss memo (lastD/lastPathLoss) is
// included too — it is deterministic derived state, and including it
// makes checkpoint verification strict about the memo staying bit-exact.
type LinkState struct {
	Last                time.Duration
	Shadow, FI, FQ      float64
	LastClass           Class
	LastD, LastPathLoss float64
}

// ExportState observes the link without advancing it.
func (l *Link) ExportState() LinkState {
	return LinkState{
		Last:   l.last,
		Shadow: l.shadow, FI: l.fi, FQ: l.fq,
		LastClass: l.lastClass,
		LastD:     l.lastD, LastPathLoss: l.lastPathLoss,
	}
}
