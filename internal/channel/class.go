// Package channel models the time-varying wireless links between mobile
// terminals. Following the paper (§II.A), the physical layer is abstracted
// by the ABICM adaptive coding/modulation scheme: what the routing layer
// observes is a per-link channel *class* — A, B, C or D — with effective
// throughputs of 250, 150, 75 and 50 kbps respectively, and a CSI-based
// "hop distance" of 1, 1.67, 3.33 and 5 that weights route selection.
//
// Underneath the quantizer this package synthesizes a composite SNR
// process per link:
//
//	SNR(d, t) = RefSNR − 10·n·log10(d) + S(t) + F(t)
//
// where S is long-term log-normal shadowing (an AR(1) Gauss–Markov process
// in dB) and F is fast Rayleigh fading (the envelope of two Gauss–Markov
// quadrature components, approximating Jakes' Doppler correlation). Links
// further apart than the radio range (250 m) do not exist at all; within
// range a link always has one of the four classes, with deep fades mapping
// to class D — so, as in the paper, route *breaks* are caused by mobility
// while route *quality* is caused by fading.
package channel

import (
	"fmt"
	"time"
)

// Class is the quantized channel quality between two terminals in radio
// range. The zero value ClassNone means "no usable link" (out of range).
type Class int

// Channel quality classes, best first. Values are ordered so that a
// larger Class constant means a *worse* channel; use Better for clarity.
const (
	ClassNone Class = iota // out of range; no link
	ClassA                 // 250 kbps
	ClassB                 // 150 kbps
	ClassC                 // 75 kbps
	ClassD                 // 50 kbps
)

// Throughputs after adaptive coding and modulation, per the paper.
const (
	throughputA = 250_000 // bits/s
	throughputB = 150_000
	throughputC = 75_000
	throughputD = 50_000
)

// String returns the single-letter label used in the paper's figures.
func (c Class) String() string {
	switch c {
	case ClassNone:
		return "-"
	case ClassA:
		return "A"
	case ClassB:
		return "B"
	case ClassC:
		return "C"
	case ClassD:
		return "D"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Usable reports whether the class denotes an existing link.
func (c Class) Usable() bool { return c >= ClassA && c <= ClassD }

// ThroughputBps reports the effective data throughput of the class in
// bits per second. ClassNone has zero throughput.
func (c Class) ThroughputBps() float64 {
	switch c {
	case ClassA:
		return throughputA
	case ClassB:
		return throughputB
	case ClassC:
		return throughputC
	case ClassD:
		return throughputD
	default:
		return 0
	}
}

// HopDistance reports the CSI-based hop distance the paper defines: the
// transmission-delay ratio relative to a class-A link. Class A is the
// baseline ONE hop; B, C, D count as 1.67, 3.33 and 5 hops. ClassNone is
// infinitely far; it returns +Inf-like sentinel via InfiniteHops.
func (c Class) HopDistance() float64 {
	switch c {
	case ClassA:
		return 1
	case ClassB:
		return 1.67
	case ClassC:
		return 3.33
	case ClassD:
		return 5
	default:
		return InfiniteHops
	}
}

// InfiniteHops is the hop distance of a non-existent link; any real route
// is shorter than a single InfiniteHops edge.
const InfiniteHops = 1e9

// TransmitDuration reports how long size bytes occupy the link at this
// class's throughput. It panics on an unusable class: callers must check
// link existence first, since "transmit over no link" is a protocol bug.
func (c Class) TransmitDuration(sizeBytes int) time.Duration {
	bps := c.ThroughputBps()
	if bps <= 0 {
		panic(fmt.Sprintf("channel: TransmitDuration on unusable class %v", c))
	}
	bits := float64(sizeBytes * 8)
	return time.Duration(bits / bps * float64(time.Second))
}

// ClassForSNR quantizes an SNR (dB) into a class using the model's
// thresholds. Used by Link; exported for tests and for protocol logic that
// reasons about guard margins.
func ClassForSNR(snrDB float64, cfg *Config) Class {
	switch {
	case snrDB >= cfg.ThresholdA:
		return ClassA
	case snrDB >= cfg.ThresholdB:
		return ClassB
	case snrDB >= cfg.ThresholdC:
		return ClassC
	default:
		return ClassD
	}
}
