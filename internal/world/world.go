// Package world assembles a complete simulation: mobility trajectories,
// the fading channel, both MAC planes, the per-terminal network runtime,
// one routing agent per terminal, the Poisson workload, and a metrics
// collector. It is the integration point the experiment harness, the
// protocol integration tests, and the examples all build on.
package world

import (
	"time"

	"rica/internal/channel"
	"rica/internal/energy"
	"rica/internal/geom"
	"rica/internal/mac"
	"rica/internal/metrics"
	"rica/internal/mobility"
	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
	"rica/internal/routing"
	"rica/internal/sim"
	"rica/internal/timeseries"
	"rica/internal/trace"
	"rica/internal/traffic"
)

// Stream namespaces for the deterministic per-component RNGs.
const (
	streamKindMobility = 0x_30B1
	streamKindMAC      = 0x_3AC0
	streamKindNode     = 0x_40DE
	streamKindPairs    = 0x_9A12
	streamKindGossip   = 0x_605C
)

// Config describes one simulation run. DefaultConfig returns the paper's
// §III.A environment.
type Config struct {
	// N is the number of terminals (paper: 50).
	N int
	// Field is the roaming rectangle (paper: 1000 m × 1000 m).
	Field geom.Field
	// MaxSpeed is MAXSPEED in m/s: per-leg speeds are uniform in
	// [0, MaxSpeed], so the mean speed is MaxSpeed/2. The paper's x-axes
	// plot the mean.
	MaxSpeed float64
	// Pause is the waypoint dwell time (paper: 3 s).
	Pause time.Duration
	// Channel is the fading/quantizer calibration.
	Channel channel.Config
	// Node holds the buffer discipline (cap 10, lifetime 3 s).
	Node network.NodeConfig
	// Flows is the workload; when nil, NumFlows disjoint random pairs at
	// FlowRate packets/s are drawn per trial, each using FlowPattern (with
	// the FlowOn/FlowOff burst cycle for on-off sources).
	Flows       []traffic.Flow
	NumFlows    int
	FlowRate    float64
	FlowPattern traffic.Pattern
	FlowOn      time.Duration
	FlowOff     time.Duration
	// Outages silence terminal radios over scripted windows: while down, a
	// terminal neither sends nor receives on either MAC plane, and heals
	// back into the network when its window ends.
	Outages []Outage
	// Gossip, when non-nil, runs an epidemic push-dissemination workload
	// alongside the flow workload (set Flows to an empty non-nil slice to
	// run gossip alone). Deliveries feed infection state through a
	// recorder tee, so the sender set grows as the epidemic spreads.
	Gossip *traffic.GossipConfig
	// Jammers plants adversarial interferers on the common channel: each
	// puts periodic noise bursts on the air with no carrier sense and no
	// delivery, deafening CSMA/CA around itself (see mac.Jam).
	Jammers []Jammer
	// Droppers makes terminals byzantine: transit data is silently
	// discarded with the given probability while the terminal keeps
	// routing honestly (see network.Node.SetAdversary).
	Droppers []Dropper
	// Duration is the simulated time (paper: 500 s).
	Duration time.Duration
	// Seed selects the trial's random universe; every stochastic component
	// derives its stream from it.
	Seed int64
	// StaticPositions, when non-nil, pins every terminal to a scripted
	// location (N is overridden to its length and MaxSpeed to zero).
	// Failure-injection and topology-specific tests use this to build
	// partitions, chains, and grids deterministically.
	StaticPositions []geom.Point
	// Trace, when non-nil, receives the run's packet-level event history
	// (bounded by the recorder's capacity).
	Trace *trace.Recorder
	// Timeseries, when non-nil, receives the run's interval-bucketed
	// telemetry: data-plane lifecycle events, control-channel and ACK
	// transmissions, and route-table churn all flow into it alongside the
	// aggregate metrics collector.
	Timeseries *timeseries.Collector
	// Obs, when non-nil, is the observability registry every subsystem
	// counts into; when nil, New creates a private one so counters are
	// always live (they are atomic increments into fixed slots — too cheap
	// to gate). The registry never feeds back into the simulation, so the
	// event order and every RNG stream are identical with or without an
	// external registry attached.
	Obs *obs.Registry
	// Shards, when ≥ 2, runs this world's broadcast geometry scans across
	// that many spatial shards (clamped to N) on a worker pool; 0 or 1
	// keeps every scan serial. Event dispatch is serial either way and the
	// summary is bit-identical for every value — shards trade wall-clock
	// time only (see DESIGN.md §10).
	Shards int
	// ShardGrain overrides the fan-out work threshold: 0 selects
	// channel.DefaultShardGrain, negative fans out every scan (tests).
	ShardGrain int
}

// DefaultConfig returns the paper's simulation environment with the given
// mean mobile speed (km/h, the figures' x-axis) and traffic load
// (packets/s per flow).
func DefaultConfig(meanSpeedKmh, pktPerSec float64) Config {
	return Config{
		N:        50,
		Field:    geom.Field{Width: 1000, Height: 1000},
		MaxSpeed: mobility.KmhToMs(2 * meanSpeedKmh), // uniform [0, MAX] has mean MAX/2
		Pause:    3 * time.Second,
		Channel:  channel.DefaultConfig(),
		Node:     network.DefaultNodeConfig(),
		NumFlows: 10,
		FlowRate: pktPerSec,
		Duration: 500 * time.Second,
		Seed:     1,
	}
}

// Outage is one scripted radio failure: terminal Node is down (radio
// silent on both MAC planes) during [From, Until), healing at Until.
type Outage struct {
	Node        int
	From, Until time.Duration
}

// Jammer is one adversarial interferer: terminal Node emits a Size-byte
// noise burst on the common channel every 1/Rate seconds during
// [From, Until). Zero Until means the whole run; zero Size selects
// packet.SizeJam.
type Jammer struct {
	Node        int
	Rate        float64
	Size        int
	From, Until time.Duration
}

// Dropper is one byzantine terminal: during [From, Until) it silently
// discards transit data with probability Prob while routing honestly.
// Zero Until means the whole run.
type Dropper struct {
	Node        int
	Prob        float64
	From, Until time.Duration
}

// AgentFactory builds terminal id's routing agent around its Env. The
// *World gives protocols that need global boot-time information (the
// link-state protocol's installed topology) access to it.
type AgentFactory func(env network.Env, w *World, id int) network.Agent

// World is one fully wired simulation instance.
type World struct {
	Cfg       Config
	Kernel    *sim.Kernel
	Streams   *sim.Streams
	Mobility  []*mobility.Node
	Model     *channel.Model
	Common    *mac.CommonChannel
	Data      *mac.DataPlane
	Nodes     []*network.Node
	Collector *metrics.Collector
	Meter     *energy.Meter
	Flows     []traffic.Flow
	Obs       *obs.Registry

	pool    *sim.ShardPool  // nil unless cfg.Shards ≥ 2
	topo0   *routing.Graph  // lazily built boot topology snapshot
	gossip  *traffic.Gossip // nil unless cfg.Gossip is set
	jammers []*jamRunner    // one per cfg.Jammers entry

	gen     *traffic.Generator // workload, kept for checkpoint capture
	started bool
}

// New assembles a world. Construction is deterministic in cfg.Seed.
func New(cfg Config, factory AgentFactory) *World {
	kernel := sim.NewKernel()
	streams := sim.NewStreams(cfg.Seed)
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg.Node.Obs = reg // nodes expose it to their routing agents
	kernel.SetObs(reg)

	var mob []*mobility.Node
	var pos []channel.Positioner
	if cfg.StaticPositions != nil {
		cfg.N = len(cfg.StaticPositions)
		pos = make([]channel.Positioner, cfg.N)
		for i, p := range cfg.StaticPositions {
			pos[i] = pinned(p)
		}
	} else {
		mob = make([]*mobility.Node, cfg.N)
		pos = make([]channel.Positioner, cfg.N)
		mcfg := mobility.Config{Field: cfg.Field, MaxSpeed: cfg.MaxSpeed, Pause: cfg.Pause}
		for i := range mob {
			mob[i] = mobility.NewNode(mcfg, streams.StreamAt(streamKindMobility, uint64(i)))
			pos[i] = mob[i]
		}
	}

	model := channel.NewModel(cfg.Channel, streams, pos)
	model.SetObs(reg)
	if len(cfg.Outages) > 0 {
		// Per-terminal windows so the hot-path oracle scans only the few
		// outages that concern the queried terminal.
		windows := make([][]Outage, cfg.N)
		for _, o := range cfg.Outages {
			if o.Node < 0 || o.Node >= cfg.N {
				panic("world: outage for unknown terminal")
			}
			windows[o.Node] = append(windows[o.Node], o)
		}
		model.SetOutage(func(i int, at time.Duration) bool {
			for _, o := range windows[i] {
				if at >= o.From && at < o.Until {
					return true
				}
			}
			return false
		})
	}
	var pool *sim.ShardPool
	if shards := cfg.Shards; shards >= 2 {
		if shards > cfg.N {
			shards = cfg.N
		}
		pool = sim.NewShardPool(shards)
		model.EnableSharding(pool, cfg.ShardGrain)
	}
	common := mac.NewCommonChannel(kernel, model, streams.Stream(streamKindMAC))
	common.SetObs(reg)
	data := mac.NewDataPlane(kernel, model)
	collector := metrics.NewCollector(cfg.Duration)
	meter := energy.NewMeter(energy.DefaultModel(), cfg.N)
	traceControl := func(*packet.Packet, int, time.Duration) {}
	if cfg.Trace != nil {
		traceControl = cfg.Trace.ControlHook()
	}
	common.OnTransmit = func(pkt *packet.Packet, from int, now time.Duration) {
		collector.ControlTransmitted(pkt, from, now)
		meter.ControlTransmitted(pkt, from, now)
		traceControl(pkt, from, now)
		if cfg.Timeseries != nil {
			cfg.Timeseries.ControlTransmitted(pkt, from, now)
		}
	}
	common.OnDropped = collector.ControlDropped
	data.OnAck = collector.AckTransmitted
	if ts := cfg.Timeseries; ts != nil {
		common.OnDropped = func(pkt *packet.Packet, from int, now time.Duration) {
			collector.ControlDropped(pkt, from, now)
			ts.ControlDropped(pkt, from, now)
		}
		data.OnAck = func(sizeBytes int, now time.Duration) {
			collector.AckTransmitted(sizeBytes, now)
			ts.AckTransmitted(sizeBytes, now)
		}
	}
	data.OnDataTransmit = meter.DataTransmitted

	// Innermost recorder wrapper: the delivery-delay histogram must see
	// every delivery, and sitting inside the trace/timeseries tees keeps
	// their RouteRecorder promotion (which must stay outermost) intact.
	var recorder network.Recorder = &obsRecorder{inner: collector, reg: reg}
	var gossip *traffic.Gossip
	if cfg.Gossip != nil {
		// The infection tee sits just outside the obs recorder — like it,
		// it must not implement RouteRecorder, so the timeseries tee keeps
		// winning the node runtime's type assertion.
		gossip = traffic.NewGossip(kernel, *cfg.Gossip, streams.Stream(streamKindGossip), reg)
		recorder = &gossipRecorder{inner: recorder, gossip: gossip}
	}
	if cfg.Trace != nil {
		recorder = trace.WrapRecorder(recorder, cfg.Trace)
	}
	if cfg.Timeseries != nil {
		// Outermost wrapper: the node runtime's RouteRecorder type
		// assertion must see the timeseries tee.
		recorder = timeseries.WrapRecorder(recorder, cfg.Timeseries)
	}

	w := &World{
		Cfg:       cfg,
		Kernel:    kernel,
		Streams:   streams,
		Mobility:  mob,
		Model:     model,
		Common:    common,
		Data:      data,
		Collector: collector,
		Meter:     meter,
		Obs:       reg,
		pool:      pool,
		gossip:    gossip,
	}
	for _, j := range cfg.Jammers {
		if j.Node < 0 || j.Node >= cfg.N {
			panic("world: jammer on unknown terminal")
		}
		if j.Rate <= 0 {
			continue
		}
		if j.Size <= 0 {
			j.Size = packet.SizeJam
		}
		if j.Until <= 0 {
			j.Until = cfg.Duration
		}
		r := &jamRunner{w: w, j: j, period: time.Duration(float64(time.Second) / j.Rate)}
		r.fire = r.tick
		w.jammers = append(w.jammers, r)
	}

	w.Nodes = make([]*network.Node, cfg.N)
	for i := 0; i < cfg.N; i++ {
		nd := network.NewNode(i, kernel, common, data, model,
			streams.StreamAt(streamKindNode, uint64(i)), recorder, cfg.Node)
		w.Nodes[i] = nd
	}
	// Agents are attached in a second pass so factories may inspect the
	// fully built world (e.g. the boot topology snapshot).
	for i, nd := range w.Nodes {
		nd.SetAgent(factory(nd, w, i))
	}
	if gossip != nil {
		gossip.Bind(w.Nodes)
	}
	for _, d := range cfg.Droppers {
		if d.Node < 0 || d.Node >= cfg.N {
			panic("world: dropper on unknown terminal")
		}
		until := d.Until
		if until <= 0 {
			until = cfg.Duration
		}
		w.Nodes[d.Node].SetAdversary(d.Prob, d.From, until)
	}

	w.Flows = cfg.Flows
	if w.Flows == nil {
		w.Flows = traffic.ChoosePairs(cfg.N, cfg.NumFlows, cfg.FlowRate,
			streams.Stream(streamKindPairs))
		for i := range w.Flows {
			w.Flows[i].Pattern = cfg.FlowPattern
			w.Flows[i].On = cfg.FlowOn
			w.Flows[i].Off = cfg.FlowOff
		}
	}
	return w
}

// Gossip exposes the run's epidemic workload (nil unless Config.Gossip
// was set) — tests and diagnostics read its infection coverage.
func (w *World) Gossip() *traffic.Gossip { return w.gossip }

// BootTopology snapshots the channel graph at t = 0 with CSI hop-distance
// weights — the "accurate view of the network topology installed in each
// mobile terminal" the paper gives the link-state protocol. The snapshot
// is computed once and shared (it is read-only to agents by convention).
// Each terminal's edges come from one fused NeighborClasses scan — the
// range filter and the class quantization happen in a single pass over
// the channel's spatial index, and the j < i half of each row is answered
// from the per-instant class cache the j > i half already filled.
func (w *World) BootTopology() *routing.Graph {
	if w.topo0 != nil {
		return w.topo0
	}
	g := routing.NewGraph(w.Cfg.N)
	var nbuf []channel.NeighborClass
	for i := 0; i < w.Cfg.N; i++ {
		nbuf = w.Model.NeighborClasses(i, 0, nbuf[:0])
		for _, nc := range nbuf {
			if nc.ID <= i {
				continue // each unordered pair recorded once, in (i, j) order
			}
			if nc.Class.Usable() {
				g.SetEdge(i, nc.ID, nc.Class.HopDistance())
			}
		}
	}
	w.topo0 = g
	return w.topo0
}

// Run starts every terminal and the workload, executes the simulation to
// the configured horizon, and returns the metrics summary. After the
// horizon every pooled packet still parked in a MAC slot, link queue,
// query buffer, or jittered relay is silently drained back to the pool,
// so a run that ends with packet.Live() above its starting level has
// found a genuine leak.
//
// Run is the composition Start → RunTo(horizon) → Finish; checkpointed
// runs call the pieces directly so they can stop at instant boundaries
// in between. Chunking RunTo never changes results: the kernel queue
// orders strictly by (at, seq), so Run(t₁); Run(t₂) dispatches the
// identical sequence one Run(t₂) would.
func (w *World) Run() metrics.Summary {
	w.Start()
	w.RunTo(w.Cfg.Duration)
	return w.Finish()
}

// Start boots every terminal, the flow/gossip workloads, and the
// scripted jammers. It must be called exactly once, before RunTo.
func (w *World) Start() {
	if w.started {
		panic("world: Start called twice")
	}
	w.started = true
	for _, nd := range w.Nodes {
		nd.Start()
	}
	gen := traffic.NewGenerator(w.Kernel, w.Nodes)
	gen.Obs = w.Obs
	gen.Start(w.Flows, w.Streams, w.Cfg.Duration)
	w.gen = gen
	if w.gossip != nil {
		w.gossip.Start(w.Cfg.Duration)
	}
	for _, j := range w.jammers {
		w.Kernel.Schedule(j.j.From, j.fire)
	}
}

// RunTo executes the simulation up to virtual time t (an instant
// boundary: every event at or before t has dispatched when it returns,
// and no fan-out is in flight). Calls must be non-decreasing in t.
func (w *World) RunTo(t time.Duration) {
	w.Kernel.Run(t)
}

// Finish drains the in-flight population back to the pool and
// assembles the metrics summary. Call once, after RunTo reached the
// configured horizon.
func (w *World) Finish() metrics.Summary {
	// The drain splits data from control: the data count is exactly the
	// end-to-end packets still in flight at the horizon, the conservation
	// check's missing term (generated == delivered + dropped + in-flight).
	dataDrained := 0
	// Exchanges caught inside their ACK window have already handed their
	// packet to the receiver; the sender's queue head is a stale alias
	// that must be discarded, not released (a release here would double
	// free the pooled packet and double count the conservation ledger).
	w.Data.EachHandedOff(func(from, to int) { w.Nodes[from].DiscardStaleHead(to) })
	ctlDrained := w.Common.Drain()
	for _, nd := range w.Nodes {
		d, c := nd.Drain()
		dataDrained += d
		ctlDrained += c
	}
	w.Obs.Add(obs.CDrainReleased, uint64(dataDrained+ctlDrained))
	w.Obs.Add(obs.CDrainData, uint64(dataDrained))
	w.pool.Close() // nil-safe; parks the shard workers for good
	s := w.Collector.Summary()
	s.Energy = w.Meter.Stats(s.GoodputBps * w.Cfg.Duration.Seconds())
	s.Events = w.Kernel.Executed()
	snap := w.Obs.Snapshot()
	s.Obs = &snap
	return s
}

// obsRecorder is the innermost recorder decorator: it observes each
// delivery's end-to-end delay into the registry's streaming histogram
// before the aggregate collector sees the event. It deliberately does
// NOT implement network.RouteRecorder — route churn discovery must keep
// resolving to the outermost timeseries tee.
type obsRecorder struct {
	inner network.Recorder
	reg   *obs.Registry
}

func (r *obsRecorder) DataGenerated(pkt *packet.Packet, now time.Duration) {
	r.inner.DataGenerated(pkt, now)
}

func (r *obsRecorder) DataDelivered(pkt *packet.Packet, now time.Duration) {
	r.reg.Observe(obs.HDelayNs, uint64(now-pkt.CreatedAt))
	r.inner.DataDelivered(pkt, now)
}

func (r *obsRecorder) DataDropped(pkt *packet.Packet, reason network.DropReason, now time.Duration) {
	r.inner.DataDropped(pkt, reason, now)
}

// gossipRecorder tees data deliveries into the epidemic's infection
// state before the inner recorders see them. Like obsRecorder it
// deliberately does NOT implement network.RouteRecorder — route churn
// discovery must keep resolving to the outermost timeseries tee.
type gossipRecorder struct {
	inner  network.Recorder
	gossip *traffic.Gossip
}

func (r *gossipRecorder) DataGenerated(pkt *packet.Packet, now time.Duration) {
	r.inner.DataGenerated(pkt, now)
}

func (r *gossipRecorder) DataDelivered(pkt *packet.Packet, now time.Duration) {
	r.gossip.Delivered(pkt, now)
	r.inner.DataDelivered(pkt, now)
}

func (r *gossipRecorder) DataDropped(pkt *packet.Packet, reason network.DropReason, now time.Duration) {
	r.inner.DataDropped(pkt, reason, now)
}

// jamRunner drives one Jammer's periodic noise bursts. One bound handler
// per jammer, one pooled packet per burst (recycled when the burst
// leaves the air), so an always-on jammer costs the allocator nothing in
// steady state.
type jamRunner struct {
	w      *World
	j      Jammer
	period time.Duration
	fire   sim.Handler
}

// tick puts one burst on the air and re-arms until the window closes.
func (r *jamRunner) tick(now time.Duration) {
	if now >= r.j.Until {
		return
	}
	pkt := packet.Get()
	pkt.Type = packet.TypeJam
	pkt.Src = r.j.Node
	pkt.From = r.j.Node
	pkt.To = packet.Broadcast
	pkt.Size = r.j.Size
	pkt.CreatedAt = now
	r.w.Common.Jam(pkt)
	r.w.Kernel.Schedule(r.period, r.fire)
}

// pinned is the Positioner of a scripted static terminal.
type pinned geom.Point

// Position implements channel.Positioner.
func (p pinned) Position(time.Duration) geom.Point { return geom.Point(p) }

// PositionStableUntil implements channel.Stabler: a pinned terminal never
// moves, so the channel snapshot layer never re-derives it.
func (p pinned) PositionStableUntil(time.Duration) time.Duration { return mobility.StableForever }

// PositionStable implements channel.PositionStabler (the fused form the
// snapshot's miss path prefers).
func (p pinned) PositionStable(time.Duration) (geom.Point, time.Duration) {
	return geom.Point(p), mobility.StableForever
}
