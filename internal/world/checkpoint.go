package world

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"rica/internal/channel"
	"rica/internal/checkpoint"
	"rica/internal/mac"
	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing"
	"rica/internal/sim"
)

// routeExporter is the optional seam a routing agent implements to let
// the capture verify its route table (the Core-based protocols do; the
// link-state baseline's SPT state is derived and not exported).
type routeExporter interface {
	ExportRoutes() []routing.Entry
}

// CaptureState serializes the complete simulation state into checkpoint
// sections, in a fixed order with fixed per-section encodings. It is a
// strict read at an instant boundary: no RNG draws, no lazy advances,
// no cache fills — capturing and then continuing the run is
// bit-identical to never having captured.
//
// The resume path re-captures in a fresh process after replaying to the
// same instant and compares payloads byte-for-byte (see the rica
// package), so every encoder here must be a pure function of simulation
// state with deterministic iteration order.
func (w *World) CaptureState() ([]checkpoint.Section, error) {
	if !w.started {
		return nil, errors.New("world: CaptureState before Start")
	}
	rngs, ok := w.Streams.ExportStates()
	if !ok {
		// The stock math/rand fallback is in use (the fast-source replica
		// failed its init self-check on this platform); its internal state
		// cannot be read, so a snapshot could not be verified on resume.
		return nil, errors.New("world: checkpointing unsupported: RNG stream state is not exportable on this platform")
	}

	var secs []checkpoint.Section
	add := func(tag string, payload []byte) {
		secs = append(secs, checkpoint.Section{Tag: tag, Payload: payload})
	}

	add(checkpoint.TagKern, w.encodeKernel())
	add(checkpoint.TagRNGs, encodeRNGs(rngs))
	add(checkpoint.TagMobi, w.encodeMobility())
	add(checkpoint.TagLink, w.encodeLinks())
	add(checkpoint.TagMACs, w.encodeMAC())
	add(checkpoint.TagNode, w.encodeNodes())
	add(checkpoint.TagTraf, w.encodeTraffic())
	add(checkpoint.TagTser, w.encodeTimeseries())
	obsc, err := w.encodeObs()
	if err != nil {
		return nil, fmt.Errorf("world: capture obs: %w", err)
	}
	add(checkpoint.TagObsC, obsc)
	add(checkpoint.TagPool, encodePool())
	return secs, nil
}

func (w *World) encodeKernel() []byte {
	st := w.Kernel.ExportState()
	var e checkpoint.Enc
	e.Dur(st.Now)
	e.U64(st.Seq)
	e.U64(st.Executed)
	e.Int(st.Live)
	e.Int(len(st.Events))
	for _, ev := range st.Events {
		e.Dur(ev.At)
		e.U64(ev.Seq)
		e.Bool(ev.Cancelled)
		e.Bool(ev.Arg)
		e.Int(ev.A0)
		e.Int(ev.A1)
	}
	return e.Bytes()
}

func encodeRNGs(states []sim.StreamState) []byte {
	var e checkpoint.Enc
	e.Int(len(states))
	for i := range states {
		s := &states[i]
		e.U64(s.ID)
		e.Int(s.Tap)
		e.Int(s.Feed)
		for _, v := range s.Vec {
			e.I64(v)
		}
	}
	return e.Bytes()
}

func (w *World) encodeMobility() []byte {
	var e checkpoint.Enc
	e.Int(len(w.Mobility)) // zero for pinned/static topologies
	for _, n := range w.Mobility {
		leg := n.ExportLeg()
		e.F64(leg.FromX)
		e.F64(leg.FromY)
		e.F64(leg.ToX)
		e.F64(leg.ToY)
		e.Dur(leg.Depart)
		e.Dur(leg.Arrive)
	}
	return e.Bytes()
}

func (w *World) encodeLinks() []byte {
	var e checkpoint.Enc
	count := 0
	w.Model.EachLink(func(int, channel.LinkState) { count++ })
	e.Int(count)
	w.Model.EachLink(func(idx int, st channel.LinkState) {
		e.Int(idx)
		e.Dur(st.Last)
		e.F64(st.Shadow)
		e.F64(st.FI)
		e.F64(st.FQ)
		e.Int(int(st.LastClass))
		e.F64(st.LastD)
		e.F64(st.LastPathLoss)
	})
	return e.Bytes()
}

func (w *World) encodeMAC() []byte {
	var e checkpoint.Enc
	cs := w.Common.ExportState()
	e.Dur(cs.MaxAir)
	e.Int(len(cs.Active))
	for _, t := range cs.Active {
		e.Int(t.From)
		e.Dur(t.Start)
		e.Dur(t.End)
		e.Bool(t.Jam)
		e.U64(t.PktID)
		e.Int(t.PktType)
		e.Int(t.Size)
	}
	encSlots := func(slots []mac.SlotPacket) {
		e.Int(len(slots))
		for _, s := range slots {
			e.Int(s.Slot)
			e.U64(s.PktID)
			e.Int(s.PktType)
			e.Int(s.Size)
		}
	}
	encSlots(cs.Slots)
	encSlots(cs.Deferred)
	xs := w.Data.ExportExchanges()
	e.Int(len(xs))
	for _, x := range xs {
		e.Int(x.Slot)
		e.Int(x.From)
		e.Int(x.To)
		e.Int(x.Tries)
		e.Int(int(x.Class))
		e.Bool(x.Handed)
		e.U64(x.PktID)
		e.Int(x.Size)
	}
	return e.Bytes()
}

func (w *World) encodeNodes() []byte {
	var e checkpoint.Enc
	e.Int(len(w.Nodes))
	for id, nd := range w.Nodes {
		qs := nd.ExportQueues()
		routes := exportAgentRoutes(nd)
		if len(qs) == 0 && routes == nil {
			continue // keep the payload sparse; id prefixes disambiguate
		}
		e.Int(id)
		e.Int(len(qs))
		for _, q := range qs {
			e.Int(q.To)
			e.Bool(q.Busy)
			e.Int(len(q.Items))
			for _, it := range q.Items {
				e.U64(it.PktID)
				e.Dur(it.At)
			}
		}
		e.Int(len(routes))
		for _, r := range routes {
			e.Int(r.Dst)
			e.Int(r.Next)
			e.F64(r.HopCount)
			e.Int(r.GeoHops)
			e.Dur(r.UpdatedAt)
			e.Bool(r.Valid)
		}
	}
	return e.Bytes()
}

func exportAgentRoutes(nd *network.Node) []routing.Entry {
	if ex, ok := nd.Agent().(routeExporter); ok {
		return ex.ExportRoutes()
	}
	return nil
}

func (w *World) encodeTraffic() []byte {
	var e checkpoint.Enc
	e.U64(w.gen.NextID())
	if w.gossip == nil {
		e.Bool(false)
		return e.Bytes()
	}
	e.Bool(true)
	gs := w.gossip.ExportState()
	e.Int(gs.Count)
	e.U64(gs.NextID)
	e.Int(len(gs.Infected))
	for _, b := range gs.Infected {
		e.Bool(b)
	}
	return e.Bytes()
}

func (w *World) encodeTimeseries() []byte {
	var e checkpoint.Enc
	if w.Cfg.Timeseries == nil {
		e.Bool(false)
		return e.Bytes()
	}
	e.Bool(true)
	e.U64(w.Cfg.Timeseries.StateDigest())
	return e.Bytes()
}

func (w *World) encodeObs() ([]byte, error) {
	snap := w.Obs.Snapshot()
	// Pool and shard stats are process-global (shared across concurrent
	// runs); everything else in the snapshot is deterministic per run.
	snap.Pool = nil
	snap.Shard = nil
	return json.Marshal(&snap)
}

// encodePool records the process-global pooled-packet accounting. The
// section is informational — other runs in the process perturb it — and
// is exempt from resume verification.
func encodePool() []byte {
	ps := packet.SnapshotPool()
	var e checkpoint.Enc
	e.U64(ps.Gets)
	e.U64(ps.Releases)
	e.I64(ps.Live)
	e.I64(ps.HighWater)
	return e.Bytes()
}

// VerifyExempt reports whether a section tag is exempt from the
// byte-for-byte resume verification: the descriptor is the recipe
// itself, and the pool section is process-global.
func VerifyExempt(tag string) bool {
	return tag == checkpoint.TagDesc || tag == checkpoint.TagPool
}

// CaptureAt reports the instant the kernel clock reads — the boundary a
// capture taken now is stamped with.
func (w *World) CaptureAt() time.Duration { return w.Kernel.Now() }
