package world_test

import (
	"fmt"
	"testing"
	"time"

	"rica/internal/experiment"
	"rica/internal/metrics"
	"rica/internal/scenario"
	"rica/internal/world"
)

// shardTrim caps scenario horizons so the catalog sweep stays CI-sized:
// long enough for floods, collisions, outages, and route churn to all
// occur; short enough to run the full grid under -race.
func shardTrim(d time.Duration) time.Duration {
	const cap = 6 * time.Second
	if d > cap {
		return cap
	}
	return d
}

// runScenario executes one compiled scenario at the given shard count.
// ShardGrain −1 forces every broadcast completion through the fan-out
// path, so the identity check exercises the sharded engine rather than
// the grain gate's serial fallback.
func runScenario(t *testing.T, spec scenario.Spec, protocol experiment.Protocol, shards int) metrics.Summary {
	t.Helper()
	cfg, err := spec.Compile()
	if err != nil {
		t.Fatalf("compile %s: %v", spec.Name, err)
	}
	cfg.Duration = shardTrim(cfg.Duration)
	cfg.Seed = 7
	cfg.Shards = shards
	if shards > 1 {
		cfg.ShardGrain = -1
	}
	s := world.New(cfg, experiment.Factory(protocol, spec.Traffic.Rate)).Run()
	s.Obs = nil // cache hit/miss counters legitimately differ across shard counts
	return s
}

// TestShardedSimulationBitIdentical runs the full scenario catalog
// serial and sharded at 2, 3, and 8 shards and requires byte-identical
// summaries. This is the engine's core contract: shard count changes
// wall-clock time, never results — every RNG draw, collision verdict,
// and delivery must survive the decomposition untouched.
func TestShardedSimulationBitIdentical(t *testing.T) {
	names := scenario.Names()
	if testing.Short() {
		names = names[:3] // keep -short (and the race sweep) quick
	}
	for _, name := range names {
		spec, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			want := fmt.Sprintf("%+v", runScenario(t, spec, experiment.RICA, 1))
			for _, shards := range []int{2, 3, 8} {
				got := fmt.Sprintf("%+v", runScenario(t, spec, experiment.RICA, shards))
				if got != want {
					t.Errorf("shards=%d diverged from serial\n got: %s\nwant: %s", shards, got, want)
				}
			}
		})
	}
}

// TestShardedOutageMidEpochBitIdentical pins the ISSUE's epoch edge
// case: an outage window opening and closing between grid rebuilds (the
// epoch barrier) must produce identical results serial and sharded —
// the down flag is consulted per query, not per epoch, so a terminal
// silenced mid-epoch disappears from scans at the same instant on both
// paths.
func TestShardedOutageMidEpochBitIdentical(t *testing.T) {
	spec, err := scenario.ByName("paper-baseline")
	if err != nil {
		t.Fatal(err)
	}
	run := func(shards int) string {
		cfg, err := spec.Compile()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Duration = shardTrim(time.Duration(spec.Duration))
		cfg.Seed = 11
		// Windows with sub-second, non-aligned edges so they open and
		// close between rebuilds, plus overlapping pairs.
		for i := 0; i < 12; i++ {
			from := time.Duration(i)*380*time.Millisecond + 137*time.Millisecond
			cfg.Outages = append(cfg.Outages, world.Outage{
				Node: (i * 7) % 50, From: from, Until: from + 730*time.Millisecond,
			})
		}
		cfg.Shards = shards
		if shards > 1 {
			cfg.ShardGrain = -1
		}
		s := world.New(cfg, experiment.Factory(experiment.RICA, spec.Traffic.Rate)).Run()
		s.Obs = nil
		return fmt.Sprintf("%+v", s)
	}
	want := run(1)
	for _, shards := range []int{2, 8} {
		if got := run(shards); got != want {
			t.Errorf("shards=%d diverged under mid-epoch outages\n got: %s\nwant: %s", shards, got, want)
		}
	}
}
