package world_test

import (
	"strings"
	"testing"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/world"
)

// dropAgent discards everything; worlds still generate and account traffic.
type dropAgent struct{ env network.Env }

func (a *dropAgent) Start(time.Duration)                           {}
func (a *dropAgent) HandleControl(*packet.Packet, time.Duration)   {}
func (a *dropAgent) DataArrived(*packet.Packet, time.Duration)     {}
func (a *dropAgent) LinkFailed(int, *packet.Packet, time.Duration) {}
func (a *dropAgent) RouteData(p *packet.Packet, _ time.Duration) {
	a.env.DropData(p, network.DropNoRoute)
}

func dropFactory(env network.Env, _ *world.World, _ int) network.Agent {
	return &dropAgent{env: env}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := world.DefaultConfig(36, 10)
	if cfg.N != 50 {
		t.Errorf("N = %d, want 50", cfg.N)
	}
	if cfg.Field.Width != 1000 || cfg.Field.Height != 1000 {
		t.Errorf("field = %+v, want 1000x1000", cfg.Field)
	}
	if cfg.Pause != 3*time.Second {
		t.Errorf("pause = %v, want 3s", cfg.Pause)
	}
	// Mean 36 km/h means MAXSPEED = 72 km/h = 20 m/s.
	if cfg.MaxSpeed != 20 {
		t.Errorf("MaxSpeed = %v m/s, want 20", cfg.MaxSpeed)
	}
	if cfg.NumFlows != 10 || cfg.FlowRate != 10 {
		t.Errorf("flows = %d @ %v", cfg.NumFlows, cfg.FlowRate)
	}
	if cfg.Duration != 500*time.Second {
		t.Errorf("duration = %v, want 500s", cfg.Duration)
	}
	if cfg.Node.BufferCap != 10 || cfg.Node.BufferLifetime != 3*time.Second {
		t.Errorf("buffers = %+v", cfg.Node)
	}
}

func TestWorldFlowsDeterministic(t *testing.T) {
	cfg := world.DefaultConfig(20, 10)
	cfg.Duration = time.Second
	a := world.New(cfg, dropFactory)
	b := world.New(cfg, dropFactory)
	if len(a.Flows) != 10 {
		t.Fatalf("flows = %d", len(a.Flows))
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatal("same seed chose different flows")
		}
	}
	cfg.Seed = 2
	c := world.New(cfg, dropFactory)
	same := true
	for i := range a.Flows {
		if a.Flows[i] != c.Flows[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds chose identical flows")
	}
}

func TestBootTopologySane(t *testing.T) {
	cfg := world.DefaultConfig(20, 10)
	cfg.Duration = time.Second
	w := world.New(cfg, dropFactory)
	g := w.BootTopology()
	if g2 := w.BootTopology(); g2 != g {
		t.Fatal("BootTopology not cached")
	}
	edges := 0
	for i := 0; i < cfg.N; i++ {
		for j := i + 1; j < cfg.N; j++ {
			w12, ok12 := g.Edge(i, j)
			w21, ok21 := g.Edge(j, i)
			if ok12 != ok21 || (ok12 && w12 != w21) {
				t.Fatalf("asymmetric boot edge %d-%d", i, j)
			}
			if !ok12 {
				continue
			}
			edges++
			if d := w.Model.Distance(i, j, 0); d > 250 {
				t.Fatalf("boot edge %d-%d spans %.0f m", i, j, d)
			}
			if w12 < 1 || w12 > 5 {
				t.Fatalf("boot edge weight %v outside CSI hop range", w12)
			}
		}
	}
	// 50 nodes at 250 m range in 1 km² have ~200+ links.
	if edges < 100 {
		t.Fatalf("only %d boot edges; field too sparse?", edges)
	}
}

func TestRunAccountsAllTraffic(t *testing.T) {
	cfg := world.DefaultConfig(20, 10)
	cfg.Duration = 10 * time.Second
	s := world.New(cfg, dropFactory).Run()
	if s.Generated == 0 {
		t.Fatal("no traffic generated")
	}
	// The drop agent kills every packet at its source.
	if s.Dropped[network.DropNoRoute] != s.Generated {
		t.Fatalf("drops %v do not match generated %d", s.Dropped, s.Generated)
	}
	if s.Delivered != 0 {
		t.Fatalf("delivered %d with a drop-everything agent", s.Delivered)
	}
}

func TestFactoryReceivesEveryNode(t *testing.T) {
	cfg := world.DefaultConfig(0, 10)
	cfg.Duration = time.Second
	ids := make(map[int]bool)
	world.New(cfg, func(env network.Env, w *world.World, id int) network.Agent {
		if env.ID() != id {
			t.Errorf("factory id %d != env id %d", id, env.ID())
		}
		ids[id] = true
		return &dropAgent{env: env}
	})
	if len(ids) != cfg.N {
		t.Fatalf("factory called for %d of %d nodes", len(ids), cfg.N)
	}
}

func TestRenderMapShowsEndpointsAndTerminals(t *testing.T) {
	cfg := world.DefaultConfig(0, 10)
	cfg.Duration = time.Second
	w := world.New(cfg, dropFactory)
	m := w.RenderMap(0, 60, 20)
	if !strings.Contains(m, "S") || !strings.Contains(m, "D") {
		t.Fatalf("map missing flow endpoints:\n%s", m)
	}
	lines := strings.Split(strings.TrimSpace(m), "\n")
	if len(lines) != 21 { // header + 20 rows
		t.Fatalf("map has %d lines, want 21", len(lines))
	}
	digits := 0
	for _, ch := range m {
		if ch >= '0' && ch <= '9' {
			digits++
		}
	}
	if digits < 20 {
		t.Fatalf("map shows only %d terminal markers", digits)
	}
}

func TestCountLinksPlausible(t *testing.T) {
	cfg := world.DefaultConfig(0, 10)
	cfg.Duration = time.Second
	w := world.New(cfg, dropFactory)
	links := w.CountLinks(0)
	// 50 nodes, 250 m range on 1 km²: expected ~πr²/A·C(50,2) ≈ 200-260.
	if links < 100 || links > 450 {
		t.Fatalf("links = %d, outside plausible density", links)
	}
}
