package world

import (
	"fmt"
	"strings"
	"time"
)

// RenderMap draws the network at virtual time at as an ASCII field map:
// terminals appear as their id's last digit, flow sources as 'S' and
// destinations as 'D'. It is a debugging and demonstration aid — seeing
// where the terminals wandered explains most delivery mysteries.
func (w *World) RenderMap(at time.Duration, cols, rows int) string {
	if cols < 10 {
		cols = 10
	}
	if rows < 5 {
		rows = 5
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(".", cols))
	}
	mark := func(x, y float64, c byte) {
		cx := int(x / w.Cfg.Field.Width * float64(cols))
		cy := int(y / w.Cfg.Field.Height * float64(rows))
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		grid[cy][cx] = c
	}

	endpoints := make(map[int]byte)
	for _, f := range w.Flows {
		endpoints[f.Src] = 'S'
		endpoints[f.Dst] = 'D'
	}
	for i := 0; i < w.Cfg.N; i++ {
		p := w.Model.Position(i, at)
		c, special := endpoints[i]
		if !special {
			c = byte('0' + i%10)
		}
		mark(p.X, p.Y, c)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "t=%v, %d terminals on %.0fx%.0f m (S=flow source, D=destination)\n",
		at.Round(time.Millisecond), w.Cfg.N, w.Cfg.Field.Width, w.Cfg.Field.Height)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

// CountLinks reports how many terminal pairs are within radio range at
// time at — a connectivity density gauge.
func (w *World) CountLinks(at time.Duration) int {
	links := 0
	for i := 0; i < w.Cfg.N; i++ {
		for j := i + 1; j < w.Cfg.N; j++ {
			if w.Model.InRange(i, j, at) {
				links++
			}
		}
	}
	return links
}
