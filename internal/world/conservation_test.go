package world_test

import (
	"testing"
	"time"

	"rica/internal/experiment"
	"rica/internal/invariant"
	"rica/internal/traffic"
	"rica/internal/world"
)

// TestConservationInsideAckWindow replays the configuration that first
// broke packet conservation: an AODV run whose 3 s horizon lands inside
// a data-plane ACK window, leaving the sender's queue head aliasing a
// packet the receiver already owns. Before the handed-off drain guard
// the ledger read delivered + dropped + in-flight = generated + 1 (and
// the drain double-freed the aliased packet into the pool).
func TestConservationInsideAckWindow(t *testing.T) {
	cfg := world.DefaultConfig(36, 10)
	cfg.Duration = 3 * time.Second
	cfg.Seed = 1
	s := world.New(cfg, experiment.Factory(experiment.AODV, 10)).Run()
	if err := invariant.CheckSummary(s); err != nil {
		t.Fatalf("conservation broken at an ACK-window horizon: %v", err)
	}
	if s.Obs.DrainData == 0 {
		t.Skip("horizon no longer lands with packets in flight; the scenario lost its bite")
	}
}

// TestCatalogSummariesSatisfyInvariants sweeps every adversarial builtin
// shape at the world layer: gossip epidemic, jammers, droppers, churn
// outages — each run must close its conservation and ledger books.
func TestCatalogSummariesSatisfyInvariants(t *testing.T) {
	cases := map[string]func() world.Config{
		"gossip": func() world.Config {
			cfg := world.DefaultConfig(18, 4)
			cfg.N = 12
			cfg.Flows = []traffic.Flow{} // gossip supplies the workload
			cfg.Gossip = &traffic.GossipConfig{Rumors: 2, Rate: 4, Pushes: 3}
			cfg.Duration = 4 * time.Second
			return cfg
		},
		"jammer": func() world.Config {
			cfg := relayConfig(4 * time.Second)
			cfg.Jammers = []world.Jammer{{Node: 1, Rate: 30, Size: 512}}
			return cfg
		},
		"dropper": func() world.Config {
			cfg := relayConfig(4 * time.Second)
			cfg.Droppers = []world.Dropper{{Node: 1, Prob: 0.5}}
			return cfg
		},
		"churn": func() world.Config {
			cfg := relayConfig(6 * time.Second)
			cfg.Outages = []world.Outage{
				{Node: 1, From: time.Second, Until: 2 * time.Second},
				{Node: 1, From: 1500 * time.Millisecond, Until: 3 * time.Second},
			}
			return cfg
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			for _, p := range experiment.AllProtocols() {
				s := world.New(build(), experiment.Factory(p, 10)).Run()
				if err := invariant.CheckSummary(s); err != nil {
					t.Errorf("%s/%s: %v", name, p, err)
				}
			}
		})
	}
}
