package world_test

import (
	"fmt"
	"testing"
	"time"

	"rica/internal/experiment"
	"rica/internal/geom"
	"rica/internal/metrics"
	"rica/internal/network"
	"rica/internal/traffic"
	"rica/internal/world"
)

// chain3 pins a 3-terminal relay chain: 0 and 2 are out of mutual range
// (400 m apart, 250 m radio), so every data packet transits terminal 1.
func chain3() []geom.Point {
	return []geom.Point{{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}}
}

// relayConfig builds a static chain world with one end-to-end flow.
func relayConfig(d time.Duration) world.Config {
	cfg := world.DefaultConfig(0, 10)
	cfg.StaticPositions = chain3()
	cfg.MaxSpeed = 0
	cfg.Flows = []traffic.Flow{{Src: 0, Dst: 2, Rate: 10, Pattern: traffic.CBR}}
	cfg.Duration = d
	cfg.Seed = 11
	return cfg
}

func runRICA(cfg world.Config) metrics.Summary {
	return world.New(cfg, experiment.Factory(experiment.RICA, 10)).Run()
}

func TestGossipEpidemicSpreadsAndAccounts(t *testing.T) {
	cfg := world.DefaultConfig(0, 4)
	pos := make([]geom.Point, 0, 9)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			pos = append(pos, geom.Point{X: float64(c) * 140, Y: float64(r) * 140})
		}
	}
	cfg.StaticPositions = pos
	cfg.MaxSpeed = 0
	cfg.Flows = []traffic.Flow{} // gossip alone
	cfg.Gossip = &traffic.GossipConfig{Rumors: 2, Rate: 4, Pushes: 3}
	cfg.Duration = 8 * time.Second
	cfg.Seed = 5
	w := world.New(cfg, experiment.Factory(experiment.RICA, 4))
	s := w.Run()
	if s.Generated == 0 {
		t.Fatal("gossip workload generated no data")
	}
	if s.Delivered == 0 {
		t.Fatal("gossip workload delivered nothing on a well-connected grid")
	}
	inf := w.Gossip().Infected()
	if inf < 3 {
		t.Errorf("infections = %d; the epidemic never spread past its %d origins", inf, 2)
	}
	if got := s.Obs.GossipInfections; got != uint64(inf) {
		t.Errorf("obs infections = %d, accessor reports %d", got, inf)
	}
	if s.Obs.TrafficGenerated != uint64(s.Generated) {
		t.Errorf("TrafficGenerated = %d, Generated = %d: gossip pushes escaped workload accounting",
			s.Obs.TrafficGenerated, s.Generated)
	}
}

func TestJammerSuppressesDelivery(t *testing.T) {
	quiet := runRICA(relayConfig(10 * time.Second))
	if quiet.Delivered == 0 {
		t.Fatal("baseline chain delivered nothing; the jammer comparison is vacuous")
	}
	cfg := relayConfig(10 * time.Second)
	// 80 bursts/s × 33 ms of carrier each oversubscribes the channel:
	// route discovery can barely get a word in.
	cfg.Jammers = []world.Jammer{{Node: 1, Rate: 80, Size: 1024}}
	jammed := runRICA(cfg)
	if jammed.Obs.JamTransmitted == 0 {
		t.Fatal("jammer never transmitted")
	}
	if jammed.Delivered >= quiet.Delivered {
		t.Errorf("delivered %d under jamming vs %d quiet; the jammer had no effect",
			jammed.Delivered, quiet.Delivered)
	}
}

func TestByzantineDropperAccounted(t *testing.T) {
	cfg := relayConfig(10 * time.Second)
	cfg.Droppers = []world.Dropper{{Node: 1, Prob: 1}}
	s := runRICA(cfg)
	if s.Delivered != 0 {
		t.Errorf("delivered %d packets through a relay dropping everything", s.Delivered)
	}
	drops := s.Dropped[network.DropAdversary]
	if drops == 0 {
		t.Fatal("no adversary drops recorded")
	}
	if s.Obs.AdversaryDrops != uint64(drops) {
		t.Errorf("obs adversary drops = %d, metrics report %d", s.Obs.AdversaryDrops, drops)
	}
}

func TestDropperWindowScopesDrops(t *testing.T) {
	cfg := relayConfig(12 * time.Second)
	cfg.Droppers = []world.Dropper{{Node: 1, Prob: 1, From: 0, Until: 3 * time.Second}}
	s := runRICA(cfg)
	if s.Dropped[network.DropAdversary] == 0 {
		t.Error("no drops during the adversarial window")
	}
	if s.Delivered == 0 {
		t.Error("no deliveries after the adversarial window closed")
	}
}

func TestZeroProbabilityDropperIsBenign(t *testing.T) {
	strip := func(s metrics.Summary) string {
		s.Obs = nil // pointer; its address differs per run
		return fmt.Sprintf("%+v", s)
	}
	quiet := strip(runRICA(relayConfig(6 * time.Second)))
	cfg := relayConfig(6 * time.Second)
	cfg.Droppers = []world.Dropper{{Node: 1, Prob: 0}}
	armed := runRICA(cfg)
	// The drop draw uses the adversarial node's own RNG stream, so a
	// never-firing dropper cannot perturb other terminals. In this static
	// chain the relay's stream is quiescent once the route is up — its
	// jittered relays all precede the first data transit — so the whole
	// run stays bit-identical. (With interleaved draws only the victim
	// node's later draws would shift; this pins the strongest case.)
	if got := strip(armed); quiet != got {
		t.Errorf("zero-probability dropper perturbed the run:\n%s\nvs\n%s", quiet, got)
	}
	if armed.Dropped[network.DropAdversary] != 0 {
		t.Errorf("zero-probability dropper dropped %d packets", armed.Dropped[network.DropAdversary])
	}
}

func TestAdversarialWorldDeterministic(t *testing.T) {
	build := func() world.Config {
		cfg := world.DefaultConfig(18, 5)
		cfg.N = 20
		cfg.Field = geom.Field{Width: 800, Height: 800}
		cfg.Flows = []traffic.Flow{} // gossip supplies the data workload
		cfg.Gossip = &traffic.GossipConfig{Rumors: 2, Rate: 3, Pushes: 4}
		cfg.Jammers = []world.Jammer{{Node: 3, Rate: 15, Size: 256, From: time.Second}}
		cfg.Droppers = []world.Dropper{{Node: 7, Prob: 0.6}}
		cfg.Outages = []world.Outage{{Node: 11, From: 2 * time.Second, Until: 4 * time.Second}}
		cfg.Duration = 6 * time.Second
		cfg.Seed = 99
		return cfg
	}
	format := func(s metrics.Summary) string {
		// Summary.Obs is a pointer; format the snapshot by value so the
		// comparison covers the counters rather than a heap address.
		obs := fmt.Sprintf("%+v", *s.Obs)
		s.Obs = nil
		return fmt.Sprintf("%+v obs=%s", s, obs)
	}
	a := format(runRICA(build()))
	b := format(runRICA(build()))
	if a != b {
		t.Errorf("adversarial world not replay-deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestOutageSpanningFinalInstant(t *testing.T) {
	cfg := relayConfig(8 * time.Second)
	// The relay dies at 5 s and its window runs past the horizon: the
	// world must finish cleanly with the node still down.
	cfg.Outages = []world.Outage{{Node: 1, From: 5 * time.Second, Until: 30 * time.Second}}
	s := runRICA(cfg)
	if s.Delivered == 0 {
		t.Error("nothing delivered before the relay died")
	}
	if s.Generated < s.Delivered {
		t.Errorf("accounting inverted: generated %d < delivered %d", s.Generated, s.Delivered)
	}
}
