package mac

import (
	"math"
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/geom"
	"rica/internal/mobility"
	"rica/internal/packet"
	"rica/internal/sim"
)

// BenchmarkFloodDense measures one full route-discovery flood: a source
// broadcasts an RREQ on the common channel and every terminal
// rebroadcasts the first copy it hears, CSMA contention, collisions and
// all — the paper's route-request propagation, and the simulator's hot
// path. The waypoint field scales with N at the paper's 50 terminals/km²
// density, so each terminal's neighbourhood (and thus the irreducible
// delivery work) stays constant while the number of broadcast scans
// grows with N.
func BenchmarkFloodDense(b *testing.B) {
	for _, n := range []int{50, 200, 500} {
		b.Run(floodLabel(n), func(b *testing.B) {
			k := sim.NewKernel()
			streams := sim.NewStreams(7)
			side := 1000 * math.Sqrt(float64(n)/50)
			mcfg := mobility.Config{
				Field:    geom.Field{Width: side, Height: side},
				MaxSpeed: 10,
				Pause:    3 * time.Second,
			}
			pos := make([]channel.Positioner, n)
			for i := range pos {
				pos[i] = mobility.NewNode(mcfg, streams.StreamAt(0x_30B1, uint64(i)))
			}
			m := channel.NewModel(channel.DefaultConfig(), streams, pos)
			c := NewCommonChannel(k, m, streams.Stream(0x_3AC0))
			seen := make([]bool, n)
			for i := 0; i < n; i++ {
				i := i
				c.Register(i, func(pkt *packet.Packet, now time.Duration) {
					if seen[i] {
						return
					}
					seen[i] = true
					fwd := pkt.Clone()
					fwd.From = i
					c.Send(fwd)
				})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range seen {
					seen[j] = false
				}
				src := i % n
				seen[src] = true
				c.Send(&packet.Packet{
					Type: packet.TypeRREQ, From: src, To: packet.Broadcast,
					Size: packet.SizeOf(packet.TypeRREQ),
				})
				k.RunAll() // drain the whole flood before the next discovery
			}
		})
	}
}

func floodLabel(n int) string {
	switch n {
	case 50:
		return "N=50"
	case 200:
		return "N=200"
	default:
		return "N=500"
	}
}
