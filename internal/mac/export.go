package mac

import (
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
)

// This file is the MAC layer's checkpoint seam. Exports are skeletons:
// in-flight transmissions and exchanges reference pooled packets and
// pending timers that cannot be serialized directly, so the capture
// records their identity (slot indices, packet ids, deadlines) — enough
// for snapshot verification to prove two processes hold the same
// in-flight population at an instant. All exports are pure reads in
// deterministic (list/slot) order.

// TxState is the skeleton of one common-channel transmission.
type TxState struct {
	From       int
	Start, End time.Duration
	Jam        bool
	PktID      uint64
	PktType    int
	Size       int
}

// SlotPacket is the skeleton of one packet parked in a slot arena.
type SlotPacket struct {
	Slot    int
	PktID   uint64
	PktType int
	Size    int
}

// CommonState is a read-only snapshot of the common channel's in-flight
// population.
type CommonState struct {
	MaxAir   time.Duration
	Active   []TxState    // on-air or recently-finished, in list order
	Slots    []SlotPacket // txSlots awaiting their completion timer
	Deferred []SlotPacket // packets waiting out a backoff
}

// ExportState snapshots the common channel.
func (c *CommonChannel) ExportState() CommonState {
	st := CommonState{MaxAir: c.maxAir}
	for _, t := range c.active {
		st.Active = append(st.Active, txState(t))
	}
	for slot, t := range c.txSlots {
		if t == nil {
			continue
		}
		st.Slots = append(st.Slots, slotPacket(slot, t.pkt))
	}
	for slot, pkt := range c.deferred {
		if pkt == nil {
			continue
		}
		st.Deferred = append(st.Deferred, slotPacket(slot, pkt))
	}
	return st
}

func txState(t *transmission) TxState {
	st := TxState{From: t.from, Start: t.start, End: t.end, Jam: t.jam}
	if t.pkt != nil {
		st.PktID = t.pkt.ID
		st.PktType = int(t.pkt.Type)
		st.Size = t.pkt.Size
	}
	return st
}

func slotPacket(slot int, pkt *packet.Packet) SlotPacket {
	sp := SlotPacket{Slot: slot}
	if pkt != nil {
		sp.PktID = pkt.ID
		sp.PktType = int(pkt.Type)
		sp.Size = pkt.Size
	}
	return sp
}

// ExchangeState is the skeleton of one in-flight data-plane exchange.
type ExchangeState struct {
	Slot     int
	From, To int
	Tries    int
	Class    channel.Class
	Handed   bool
	PktID    uint64
	Size     int
}

// ExportExchanges snapshots the data plane's in-flight exchanges in
// slot order.
func (d *DataPlane) ExportExchanges() []ExchangeState {
	var out []ExchangeState
	for slot, x := range d.x {
		if x == nil {
			continue
		}
		st := ExchangeState{
			Slot: slot, From: x.from, To: x.to,
			Tries: x.tries, Class: x.class, Handed: x.handed,
		}
		if x.pkt != nil {
			st.PktID = x.pkt.ID
			st.Size = x.pkt.Size
		}
		out = append(out, st)
	}
	return out
}
