package mac

import (
	"math/rand"
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/geom"
	"rica/internal/packet"
	"rica/internal/sim"
)

// fixedPos pins a terminal to one point.
type fixedPos geom.Point

func (p fixedPos) Position(time.Duration) geom.Point { return geom.Point(p) }

// movingPos moves along +X at Speed m/s from Start.
type movingPos struct {
	Start geom.Point
	Speed float64
}

func (m movingPos) Position(at time.Duration) geom.Point {
	return geom.Point{X: m.Start.X + m.Speed*at.Seconds(), Y: m.Start.Y}
}

func testSetup(points ...channel.Positioner) (*sim.Kernel, *channel.Model) {
	k := sim.NewKernel()
	m := channel.NewModel(channel.DefaultConfig(), sim.NewStreams(1), points)
	return k, m
}

func ctrlPkt(typ packet.Type, from, to int) *packet.Packet {
	return &packet.Packet{Type: typ, From: from, To: to, Size: packet.SizeOf(typ)}
}

func TestCommonBroadcastReachesInRangeOnly(t *testing.T) {
	k, m := testSetup(
		fixedPos{X: 0, Y: 0},
		fixedPos{X: 100, Y: 0},
		fixedPos{X: 200, Y: 0},
		fixedPos{X: 600, Y: 0}, // out of range of node 0
	)
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	got := make(map[int]int)
	for i := 0; i < 4; i++ {
		i := i
		c.Register(i, func(p *packet.Packet, now time.Duration) { got[i]++ })
	}
	c.Send(ctrlPkt(packet.TypeRREQ, 0, packet.Broadcast))
	k.Run(time.Second)
	if got[1] != 1 || got[2] != 1 {
		t.Errorf("in-range receivers got %v, want one delivery each", got)
	}
	if got[3] != 0 {
		t.Errorf("out-of-range receiver heard the broadcast: %v", got)
	}
	if got[0] != 0 {
		t.Errorf("sender heard its own broadcast: %v", got)
	}
}

func TestCommonUnicastOnlyTarget(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0}, fixedPos{X: 150, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	got := make(map[int]int)
	for i := 0; i < 3; i++ {
		i := i
		c.Register(i, func(p *packet.Packet, now time.Duration) { got[i]++ })
	}
	c.Send(ctrlPkt(packet.TypeRREP, 0, 2))
	k.Run(time.Second)
	if got[2] != 1 {
		t.Errorf("unicast target deliveries = %d, want 1", got[2])
	}
	if got[1] != 0 {
		t.Errorf("non-target overheard unicast: %v", got)
	}
}

func TestReceiversGetIndependentCopies(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0}, fixedPos{X: 150, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	c.Register(0, func(*packet.Packet, time.Duration) {})
	// Each receiver mutates the copy it is handed. Receiver 1 additionally
	// Retains its copy (the contract for keeping a packet past the handler
	// return); receiver 2's mutation must not reach it.
	var kept *packet.Packet
	var seenHops []float64
	c.Register(1, func(p *packet.Packet, now time.Duration) {
		seenHops = append(seenHops, p.HopCount)
		p.HopCount += 5
		p.Retain()
		kept = p
	})
	c.Register(2, func(p *packet.Packet, now time.Duration) {
		seenHops = append(seenHops, p.HopCount)
		p.HopCount += 7
	})
	orig := ctrlPkt(packet.TypeRREQ, 0, packet.Broadcast)
	c.Send(orig)
	k.Run(time.Second)
	if len(seenHops) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(seenHops))
	}
	for i, h := range seenHops {
		if h != 0 {
			t.Fatalf("receiver %d saw HopCount %v at delivery; another copy's mutation leaked in", i+1, h)
		}
	}
	if kept == nil || kept.HopCount != 5 {
		t.Fatalf("retained copy HopCount = %v, want the retainer's own mutation 5", kept.HopCount)
	}
	if orig.HopCount != 0 {
		t.Fatal("receiver mutation leaked into the original packet")
	}
	kept.Release()
}

// TestCarrierSenseSerializes verifies two in-range senders do not overlap:
// both packets are eventually delivered because the second sender backs off.
func TestCarrierSenseSerializes(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0}, fixedPos{X: 50, Y: 50})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(2)))
	got := 0
	c.Register(0, func(*packet.Packet, time.Duration) {})
	c.Register(1, func(*packet.Packet, time.Duration) {})
	c.Register(2, func(p *packet.Packet, now time.Duration) { got++ })
	// Big packets so they would surely overlap without carrier sensing.
	big := &packet.Packet{Type: packet.TypeLSA, From: 0, To: packet.Broadcast, Size: 400}
	big2 := &packet.Packet{Type: packet.TypeLSA, From: 1, To: packet.Broadcast, Size: 400}
	c.Send(big)
	k.Schedule(time.Millisecond, func(time.Duration) { c.Send(big2) }) // mid-air of big
	k.Run(time.Second)
	if got != 2 {
		t.Fatalf("receiver got %d packets, want 2 (backoff should avoid the collision)", got)
	}
}

// TestHiddenTerminalCollision: senders 0 and 2 are out of range of each
// other but both in range of 1; simultaneous sends destroy reception at 1.
func TestHiddenTerminalCollision(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 240, Y: 0}, fixedPos{X: 480, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(3)))
	got := 0
	c.Register(0, func(*packet.Packet, time.Duration) {})
	c.Register(1, func(p *packet.Packet, now time.Duration) { got++ })
	c.Register(2, func(*packet.Packet, time.Duration) {})
	c.Send(&packet.Packet{Type: packet.TypeLSA, From: 0, To: packet.Broadcast, Size: 300})
	c.Send(&packet.Packet{Type: packet.TypeLSA, From: 2, To: packet.Broadcast, Size: 300})
	k.Run(time.Second)
	if got != 0 {
		t.Fatalf("middle receiver decoded %d packets during a hidden-terminal collision, want 0", got)
	}
}

func TestOnTransmitObserved(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	c.Register(0, func(*packet.Packet, time.Duration) {})
	c.Register(1, func(*packet.Packet, time.Duration) {})
	var bits int
	c.OnTransmit = func(p *packet.Packet, from int, now time.Duration) { bits += p.Size * 8 }
	c.Send(ctrlPkt(packet.TypeRREQ, 0, packet.Broadcast))
	c.Send(ctrlPkt(packet.TypeRREP, 1, 0))
	k.Run(time.Second)
	want := (packet.SizeRREQ + packet.SizeRREP) * 8
	if bits != want {
		t.Fatalf("observed %d bits, want %d", bits, want)
	}
}

func TestBusyChannelEventuallyDropsPacket(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(4)))
	c.Register(0, func(*packet.Packet, time.Duration) {})
	c.Register(1, func(*packet.Packet, time.Duration) {})
	dropped := 0
	c.OnDropped = func(p *packet.Packet, from int, now time.Duration) { dropped++ }
	// Saturate: a giant packet occupies the air while another waits.
	c.Send(&packet.Packet{Type: packet.TypeLSA, From: 0, To: packet.Broadcast, Size: 100_000}) // 3.2 s airtime
	k.Schedule(time.Millisecond, func(time.Duration) {
		c.Send(ctrlPkt(packet.TypeRREQ, 1, packet.Broadcast))
	})
	k.Run(5 * time.Second)
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (max backoff attempts exhausted)", dropped)
	}
}

func TestDuplicateRegisterPanics(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	c.Register(0, func(*packet.Packet, time.Duration) {})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	c.Register(0, func(*packet.Packet, time.Duration) {})
}

func dataPkt(src, dst int) *packet.Packet {
	return &packet.Packet{Type: packet.TypeData, Src: src, Dst: dst, Size: packet.SizeData}
}

func TestDataDeliveryAndAck(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 50, Y: 0})
	d := NewDataPlane(k, m)
	delivered := 0
	d.Register(0, func(*packet.Packet, time.Duration) {})
	d.Register(1, func(p *packet.Packet, now time.Duration) { delivered++ })
	ackBits := 0
	d.OnAck = func(size int, now time.Duration) { ackBits += size * 8 }
	var res *SendResult
	d.Send(0, 1, dataPkt(0, 1), func(r SendResult) { res = &r })
	k.Run(time.Second)
	if res == nil || !res.OK {
		t.Fatalf("send result = %+v, want OK", res)
	}
	if !res.Class.Usable() {
		t.Fatalf("result class = %v, want usable", res.Class)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if ackBits != packet.SizeAck*8 {
		t.Fatalf("ack bits = %d, want %d", ackBits, packet.SizeAck*8)
	}
}

func TestDataSendFailsWhenOutOfRange(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 400, Y: 0})
	d := NewDataPlane(k, m)
	d.Register(0, func(*packet.Packet, time.Duration) {})
	delivered := 0
	d.Register(1, func(*packet.Packet, time.Duration) { delivered++ })
	var res *SendResult
	d.Send(0, 1, dataPkt(0, 1), func(r SendResult) { res = &r })
	k.Run(time.Second)
	if res == nil || res.OK {
		t.Fatalf("result = %+v, want failure", res)
	}
	if res.Class != channel.ClassNone {
		t.Fatalf("class = %v, want ClassNone", res.Class)
	}
	if delivered != 0 {
		t.Fatal("delivered despite broken link")
	}
}

func TestDataSendFailsWhenReceiverEscapesMidFlight(t *testing.T) {
	// Receiver starts just inside range and sprints outward; the class-D
	// fallback makes the packet slow enough (512 B at 50 kbps = 82 ms) that
	// a fast mover can escape. Use an artificially fast mover to force it.
	k, _ := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 0, Y: 0})
	m := channel.NewModel(channel.DefaultConfig(), sim.NewStreams(9),
		[]channel.Positioner{fixedPos{X: 0, Y: 0}, movingPos{Start: geom.Point{X: 249, Y: 0}, Speed: 100}})
	d := NewDataPlane(k, m)
	d.MaxRetries = 0
	d.Register(0, func(*packet.Packet, time.Duration) {})
	delivered := 0
	d.Register(1, func(*packet.Packet, time.Duration) { delivered++ })
	var res *SendResult
	d.Send(0, 1, dataPkt(0, 1), func(r SendResult) { res = &r })
	k.Run(time.Second)
	if res == nil {
		t.Fatal("done never invoked")
	}
	if res.OK || delivered != 0 {
		t.Fatalf("expected mid-flight escape to fail; result %+v delivered %d", res, delivered)
	}
	if res.Class == channel.ClassNone {
		t.Fatal("class should reflect the attempted transmission, not ClassNone")
	}
}

func TestDataDoneNotSynchronous(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 400, Y: 0})
	d := NewDataPlane(k, m)
	d.Register(0, func(*packet.Packet, time.Duration) {})
	d.Register(1, func(*packet.Packet, time.Duration) {})
	calledDuringSend := true
	d.Send(0, 1, dataPkt(0, 1), func(SendResult) { calledDuringSend = false })
	if !calledDuringSend {
		t.Fatal("done invoked synchronously from Send")
	}
	k.Run(time.Second)
	if calledDuringSend {
		t.Fatal("done never invoked")
	}
}

func TestDataSendToSelfPanics(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0})
	d := NewDataPlane(k, m)
	defer func() {
		if recover() == nil {
			t.Fatal("self send did not panic")
		}
	}()
	d.Send(1, 1, dataPkt(1, 1), func(SendResult) {})
}

func TestDataTransferTimeScalesWithClass(t *testing.T) {
	// Place the pair very close so class A dominates; the end-to-end data
	// exchange (512 B + 16 B ack at 250 kbps) should take ~16.9 ms.
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 5, Y: 0})
	d := NewDataPlane(k, m)
	d.Register(0, func(*packet.Packet, time.Duration) {})
	d.Register(1, func(*packet.Packet, time.Duration) {})
	var doneAt time.Duration
	d.Send(0, 1, dataPkt(0, 1), func(SendResult) { doneAt = k.Now() })
	k.Run(time.Second)
	if doneAt < 15*time.Millisecond || doneAt > 120*time.Millisecond {
		t.Fatalf("exchange took %v, want ~17 ms (class A) and never more than class D's ~106 ms", doneAt)
	}
}
