package mac

import (
	"testing"
	"time"

	"rica/internal/packet"
)

// TestEachHandedOffBracketsAckWindow pins the ownership gap the
// end-of-run drain must respect: between the receiver taking delivery
// and the ACK airtime closing the exchange, EachHandedOff reports the
// link — and outside that window it reports nothing. A run whose horizon
// lands inside the window would otherwise drain the sender's stale queue
// head and double-free the packet the receiver already owns.
func TestEachHandedOffBracketsAckWindow(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0})
	d := NewDataPlane(k, m)

	pkt := packet.Get()
	pkt.Type = packet.TypeData
	pkt.Src, pkt.Dst = 0, 1
	pkt.From, pkt.To = 0, 1
	pkt.Size = 512

	handed := func() (links [][2]int) {
		d.EachHandedOff(func(from, to int) { links = append(links, [2]int{from, to}) })
		return
	}

	if got := handed(); len(got) != 0 {
		t.Fatalf("idle plane reports handed-off exchanges: %v", got)
	}
	var atDelivery [][2]int
	d.Register(1, func(*packet.Packet, time.Duration) { atDelivery = handed() })
	completed := false
	d.Send(0, 1, pkt, func(res SendResult) {
		completed = true
		if !res.OK {
			t.Errorf("in-range send failed: %+v", res)
		}
		if got := handed(); len(got) != 0 {
			t.Errorf("closed exchange still reported handed off: %v", got)
		}
	})
	if got := handed(); len(got) != 0 {
		t.Fatalf("exchange reported handed off before the packet arrived: %v", got)
	}
	k.Run(time.Second)
	if !completed {
		t.Fatal("exchange never completed")
	}
	if len(atDelivery) != 1 || atDelivery[0] != [2]int{0, 1} {
		t.Errorf("at delivery handed-off = %v, want [[0 1]]", atDelivery)
	}
	pkt.Release()
}
