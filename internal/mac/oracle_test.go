package mac

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/sim"
)

// fakeOracle is a hand-scripted LinkOracle: adjacency is whatever the
// test says, with no geometry behind it. It proves the MAC layer
// consumes only the seam — deliveries follow the oracle's answers even
// where no positional model could produce them.
type fakeOracle struct {
	n   int
	adj map[[2]int]channel.Class // unordered pair → class; absent = no link
}

func newFakeOracle(n int) *fakeOracle {
	return &fakeOracle{n: n, adj: make(map[[2]int]channel.Class)}
}

func (f *fakeOracle) link(i, j int, c channel.Class) {
	if i > j {
		i, j = j, i
	}
	f.adj[[2]int{i, j}] = c
}

func (f *fakeOracle) N() int { return f.n }

func (f *fakeOracle) Class(i, j int, at time.Duration) channel.Class {
	if i > j {
		i, j = j, i
	}
	if c, ok := f.adj[[2]int{i, j}]; ok {
		return c
	}
	return channel.ClassNone
}

func (f *fakeOracle) InRange(i, j int, at time.Duration) bool {
	return f.Class(i, j, at).Usable()
}

// Interferes is allowed to be conservative; a geometry-free fake keeps
// every candidate and lets InRange decide.
func (f *fakeOracle) Interferes(i, j int, at time.Duration) bool { return true }

func (f *fakeOracle) Neighbors(i int, at time.Duration, dst []int) []int {
	from := len(dst)
	for j := 0; j < f.n; j++ {
		if j != i && f.InRange(i, j, at) {
			dst = append(dst, j)
		}
	}
	sort.Ints(dst[from:])
	return dst
}

// TestCommonChannelAgainstFakeOracle: broadcast delivery is exactly the
// fake's neighbour set, unicast follows its InRange answer, all without
// any channel.Model in sight.
func TestCommonChannelAgainstFakeOracle(t *testing.T) {
	k := sim.NewKernel()
	f := newFakeOracle(5)
	f.link(0, 2, channel.ClassA)
	f.link(0, 4, channel.ClassD)
	f.link(1, 3, channel.ClassB) // unrelated to sender 0

	c := NewCommonChannel(k, f, rand.New(rand.NewSource(1)))
	got := make(map[int]int)
	for i := 0; i < 5; i++ {
		i := i
		c.Register(i, func(*packet.Packet, time.Duration) { got[i]++ })
	}

	c.Send(ctrlPkt(packet.TypeRREQ, 0, packet.Broadcast))
	k.Run(time.Second)
	for i, want := range map[int]int{0: 0, 1: 0, 2: 1, 3: 0, 4: 1} {
		if got[i] != want {
			t.Fatalf("broadcast deliveries = %v, want exactly the oracle's neighbours {2, 4}", got)
		}
	}

	c.Send(ctrlPkt(packet.TypeRREP, 1, 3))
	c.Send(ctrlPkt(packet.TypeRREP, 1, 4)) // no link 1–4: must vanish
	k.Run(2 * time.Second)
	if got[3] != 1 {
		t.Fatalf("unicast to linked target delivered %d times, want 1", got[3])
	}
	if got[4] != 1 {
		t.Fatalf("unicast without a link reached its target: %v", got)
	}
}

// TestDataPlaneAgainstFakeOracle: the per-link server paces delivery by
// the oracle's class and fails sends the oracle denies.
func TestDataPlaneAgainstFakeOracle(t *testing.T) {
	k := sim.NewKernel()
	f := newFakeOracle(3)
	f.link(0, 1, channel.ClassA)

	d := NewDataPlane(k, f)
	delivered := 0
	d.Register(1, func(*packet.Packet, time.Duration) { delivered++ })
	d.Register(2, func(*packet.Packet, time.Duration) { t.Error("unlinked terminal took delivery") })

	var results []SendResult
	pkt := &packet.Packet{Type: packet.TypeData, From: 0, To: 1, Size: 512}
	d.Send(0, 1, pkt, func(r SendResult) { results = append(results, r) })
	d.Send(0, 2, pkt.Clone(), func(r SendResult) { results = append(results, r) })
	k.RunAll()

	if delivered != 1 {
		t.Fatalf("linked send delivered %d times, want 1", delivered)
	}
	if len(results) != 2 {
		t.Fatalf("got %d send results, want 2", len(results))
	}
	var ok, fail *SendResult
	for i := range results {
		if results[i].OK {
			ok = &results[i]
		} else {
			fail = &results[i]
		}
	}
	if ok == nil || ok.Class != channel.ClassA {
		t.Fatalf("linked send result = %+v, want OK at class A", results)
	}
	if fail == nil || fail.Class != channel.ClassNone {
		t.Fatalf("unlinked send result = %+v, want failure with no class", results)
	}
}
