// Package mac models the paper's multi-code CDMA medium access layer in
// two halves:
//
//   - CommonChannel: the shared 250 kbps signalling channel carrying every
//     routing packet, with unslotted CSMA/CA — carrier sensing within radio
//     range, randomized exponential backoff, and destructive collisions at
//     receivers reached by overlapping transmissions (hidden terminals).
//     The paper assumes this channel is robust against fading, so fading
//     never corrupts it; only contention does.
//
//   - DataPlane: per-link CDMA data transmission. Distinct PN code pairs do
//     not contend with each other, so each link is an independent
//     store-and-forward server whose instantaneous rate is the link's
//     channel class throughput; per-hop ACKs confirm receipt and failed
//     transmissions reveal link breaks.
package mac

import (
	"math/rand"
	"time"

	"rica/internal/channel"
	"rica/internal/obs"
	"rica/internal/packet"
	"rica/internal/sim"
)

// commonBitrate is the common channel's bandwidth (paper §III.A).
const commonBitrate = 250_000 // bits/s

// Backoff and retry tuning for the unslotted CSMA/CA. backoffSlot is on
// the order of one small control packet's airtime.
const (
	backoffSlot     = 2 * time.Millisecond
	maxSendAttempts = 7
)

// LinkOracle is the narrow view of the radio environment the MAC layer
// consumes — defined here, where it is used, so the channel core can
// evolve freely and MAC tests can substitute fakes. *channel.Model is the
// production implementation.
type LinkOracle interface {
	// N reports the number of terminals.
	N() int
	// Class reports the channel class between i and j at time at.
	Class(i, j int, at time.Duration) channel.Class
	// InRange reports whether i and j can currently hear each other.
	InRange(i, j int, at time.Duration) bool
	// Neighbors appends the ids of terminals within radio range of i to
	// dst in ascending order and returns the extended slice. It must
	// agree with InRange — j appears in Neighbors(i, at, ...) exactly
	// when InRange(i, j, at) holds and i ≠ j — because the channel's
	// collision bookkeeping interchanges one neighbourhood scan for many
	// pairwise probes whichever is cheaper.
	Neighbors(i int, at time.Duration, dst []int) []int
	// Interferes reports whether a transmission by i can reach any
	// terminal that hears j — the CSMA collision-relevance question. It
	// must return true whenever i is within radio range of j or of any
	// terminal in range of j (twice the radio range covers both, by the
	// triangle inequality); returning true beyond that is allowed, just
	// slower. Implementations must not consult outage state: the exact
	// InRange verdict stays with the collision check itself.
	Interferes(i, j int, at time.Duration) bool
}

// BroadcastScanner is the optional sharded geometry fast path
// (channel.Model implements it): one call computes the sender's
// neighbour list and the neighbour list of every interfering
// transmitter, fanned out across a worker pool. A nil return means the
// scan declined (sharding disabled, or below the fan-out grain) and the
// serial Neighbors/Interferes path must run instead; a non-nil result is
// bit-identical to what that path would derive.
type BroadcastScanner interface {
	BroadcastScan(from int, others []int, at time.Duration) *channel.ScanLists
}

// ReceiveFunc handles a control packet arriving at a terminal. Each
// receiver gets its own clone, so handlers may mutate the packet freely.
type ReceiveFunc func(pkt *packet.Packet, now time.Duration)

// transmission is one on-air control packet. jam marks an adversarial
// noise burst: it occupies the air (carrier sense and collisions see it)
// but is never delivered to any handler.
type transmission struct {
	from       int
	start, end time.Duration
	pkt        *packet.Packet
	jam        bool
}

// CommonChannel is the shared CSMA/CA signalling channel.
type CommonChannel struct {
	kernel   *sim.Kernel
	model    LinkOracle
	rng      *rand.Rand
	handlers []ReceiveFunc
	active   []*transmission
	nbuf     []int           // reusable neighbour scratch for broadcast delivery
	obuf     []*transmission // reusable overlap-set scratch for one completion
	vbuf     []int           // reusable victim scratch for collision marking
	cbuf     []int           // reusable transmitter-id scratch for sharded scans

	// scanner is the model's sharded broadcast fast path, when it offers
	// one (see BroadcastScanner); nil keeps every completion serial.
	scanner BroadcastScanner

	// colStamp/colEpoch mark, per terminal, whether the current
	// completion's overlapping transmissions reach it: one neighbourhood
	// scan per overlapping transmitter replaces a pairwise range probe
	// per (transmitter, receiver) combination. An epoch bump invalidates
	// the whole array in O(1).
	colStamp []uint64
	colEpoch uint64

	// Per-packet timers ride the kernel's closure-free fast path: the
	// event carries a slot index into these arenas instead of a captured
	// closure. txfree recycles transmission records once pruned.
	txSlots   []*transmission  // in-flight transmissions awaiting completion
	txSlotsFS []int            // free slot indices
	deferred  []*packet.Packet // packets waiting out a backoff, by slot
	defFS     []int
	txfree    []*transmission
	scratch   *packet.Packet // reusable delivery copy (see deliver)
	// completeFn and retryFn are the bound method values scheduled on the
	// fast path, built once in NewCommonChannel.
	completeFn sim.ArgHandler
	retryFn    sim.ArgHandler

	// maxAir is the longest airtime put on this channel so far. It bounds
	// how long a finished transmission stays relevant: a completion at time
	// t checks overlap against [start, end] with start ≥ t − maxAir, so
	// anything ending at or before t − maxAir can never collide again and
	// is safe to prune. Tracking the real maximum (instead of a fixed
	// horizon) keeps the active list at O(concurrent) during dense flood
	// storms and stays correct for packets of any size.
	maxAir time.Duration

	// OnTransmit, if set, observes every packet put on air (routing
	// overhead accounting: each attempt that actually transmits counts).
	OnTransmit func(pkt *packet.Packet, from int, now time.Duration)
	// OnDropped, if set, observes control packets abandoned after the
	// maximum number of busy-channel backoffs — the congestion-collapse
	// signal that cripples the link-state protocol at high mobility.
	OnDropped func(pkt *packet.Packet, from int, now time.Duration)

	// obs, when set, receives backoff and collision counters (nil-safe).
	obs *obs.Registry
}

// NewCommonChannel builds the channel for the terminals covered by model.
// rng drives backoff jitter and must be a dedicated stream.
func NewCommonChannel(kernel *sim.Kernel, model LinkOracle, rng *rand.Rand) *CommonChannel {
	c := &CommonChannel{
		kernel:   kernel,
		model:    model,
		rng:      rng,
		handlers: make([]ReceiveFunc, model.N()),
		colStamp: make([]uint64, model.N()),
	}
	if sc, ok := model.(BroadcastScanner); ok {
		c.scanner = sc
	}
	c.completeFn = c.completeSlot
	c.retryFn = c.retrySlot
	return c
}

// SetObs wires the backoff/collision counters into r. The channel works
// identically — and counts nothing — without one.
func (c *CommonChannel) SetObs(r *obs.Registry) { c.obs = r }

// Drain silently releases every packet the channel still owns: backed-off
// packets whose retry lies past the horizon, in-flight transmissions whose
// completion never fired, and the delivery scratch record. No OnDropped or
// recorder callbacks run — the world layer calls this after the simulation
// horizon, where recording would perturb the run's metrics. It returns how
// many packets were let go.
func (c *CommonChannel) Drain() int {
	n := 0
	for i, pkt := range c.deferred {
		if pkt != nil {
			c.deferred[i] = nil
			pkt.Release()
			n++
		}
	}
	for _, tx := range c.txSlots {
		if tx != nil && tx.pkt != nil {
			pkt := tx.pkt
			tx.pkt = nil
			pkt.Release()
			n++
		}
	}
	if c.scratch != nil {
		c.scratch.Release()
		c.scratch = nil
		n++
	}
	return n
}

// Register installs the receive handler for terminal id. Every terminal
// must register exactly once before traffic starts.
func (c *CommonChannel) Register(id int, h ReceiveFunc) {
	if c.handlers[id] != nil {
		panic("mac: duplicate CommonChannel.Register")
	}
	c.handlers[id] = h
}

// Send queues pkt for transmission from terminal pkt.From. Broadcasts
// (pkt.To == packet.Broadcast) are delivered to every in-range terminal;
// unicasts only to pkt.To, though both occupy the air identically.
// Delivery is best-effort: collisions and repeated busy channel lose the
// packet silently, exactly the failure mode ad hoc routing must tolerate.
//
// Send takes ownership of pkt: a pooled packet is Released once the
// transmission completes or is dropped, and every receiver is handed a
// short-lived pooled copy it must Retain (or Clone) to keep.
func (c *CommonChannel) Send(pkt *packet.Packet) {
	c.attempt(pkt, 0)
}

func (c *CommonChannel) attempt(pkt *packet.Packet, tries int) {
	now := c.kernel.Now()
	if c.senseBusy(pkt.From, now) {
		if tries+1 >= maxSendAttempts {
			if c.OnDropped != nil {
				c.OnDropped(pkt, pkt.From, now)
			}
			pkt.Release()
			return
		}
		c.obs.Inc(obs.CMACBackoffs)
		slot := c.deferSlot(pkt)
		c.kernel.ScheduleArg(c.backoff(tries), c.retryFn, slot, tries+1)
		return
	}

	airtime := time.Duration(float64(pkt.Size*8) / commonBitrate * float64(time.Second))
	if airtime > c.maxAir {
		c.maxAir = airtime
	}
	tx := c.allocTx()
	tx.from, tx.start, tx.end, tx.pkt = pkt.From, now, now+airtime, pkt
	c.active = append(c.active, tx)
	if c.OnTransmit != nil {
		c.OnTransmit(pkt, pkt.From, now)
	}
	c.kernel.ScheduleArg(airtime, c.completeFn, c.txSlot(tx), 0)
}

// Jam puts pkt on the air immediately — no carrier sense, no backoff, no
// retries — and never delivers it to anyone: the transmission exists
// purely as interference. While it is on air, honest senders within
// range hear a busy channel and defer, and any legitimate completion it
// overlaps is destroyed at receivers the jammer reaches — the standard
// always-on jammer stressing unslotted CSMA/CA. The burst deliberately
// skips OnTransmit (it is not routing overhead; the victims' metrics
// must stay attributable to the victims) and is counted in the registry
// instead. Jam takes ownership of pkt, releasing it when the burst
// leaves the air.
func (c *CommonChannel) Jam(pkt *packet.Packet) {
	now := c.kernel.Now()
	airtime := time.Duration(float64(pkt.Size*8) / commonBitrate * float64(time.Second))
	if airtime > c.maxAir {
		c.maxAir = airtime
	}
	tx := c.allocTx()
	tx.from, tx.start, tx.end, tx.pkt, tx.jam = pkt.From, now, now+airtime, pkt, true
	c.active = append(c.active, tx)
	c.obs.Inc(obs.CJamTransmitted)
	c.kernel.ScheduleArg(airtime, c.completeFn, c.txSlot(tx), 0)
}

// retrySlot resumes a backed-off attempt (the ScheduleArg fast path).
func (c *CommonChannel) retrySlot(_ time.Duration, slot, tries int) {
	pkt := c.deferred[slot]
	c.deferred[slot] = nil
	c.defFS = append(c.defFS, slot)
	c.attempt(pkt, tries)
}

// completeSlot finishes the transmission parked in slot.
func (c *CommonChannel) completeSlot(now time.Duration, slot, _ int) {
	tx := c.txSlots[slot]
	c.txSlots[slot] = nil
	c.txSlotsFS = append(c.txSlotsFS, slot)
	c.complete(tx, now)
}

// deferSlot parks pkt in the backoff arena and returns its slot index.
func (c *CommonChannel) deferSlot(pkt *packet.Packet) int {
	if n := len(c.defFS); n > 0 {
		slot := c.defFS[n-1]
		c.defFS = c.defFS[:n-1]
		c.deferred[slot] = pkt
		return slot
	}
	c.deferred = append(c.deferred, pkt)
	return len(c.deferred) - 1
}

// txSlot parks tx in the completion arena and returns its slot index.
func (c *CommonChannel) txSlot(tx *transmission) int {
	if n := len(c.txSlotsFS); n > 0 {
		slot := c.txSlotsFS[n-1]
		c.txSlotsFS = c.txSlotsFS[:n-1]
		c.txSlots[slot] = tx
		return slot
	}
	c.txSlots = append(c.txSlots, tx)
	return len(c.txSlots) - 1
}

// allocTx recycles a pruned transmission record or allocates a fresh one.
func (c *CommonChannel) allocTx() *transmission {
	if n := len(c.txfree); n > 0 {
		tx := c.txfree[n-1]
		c.txfree[n-1] = nil
		c.txfree = c.txfree[:n-1]
		return tx
	}
	return &transmission{}
}

// backoff draws an unslotted binary-exponential backoff delay.
func (c *CommonChannel) backoff(tries int) time.Duration {
	window := backoffSlot << uint(tries)
	return time.Duration(c.rng.Int63n(int64(window))) + time.Millisecond
}

// senseBusyScanMin is the live-transmitter count above which senseBusy
// switches from pairwise range probes to one neighbourhood scan: a scan
// costs about as much as a handful of probes, so small carrier counts
// stay on the probe path. collideScanMin is the same trade for the
// broadcast collision check, in units of (overlaps × receivers)
// pairwise probes.
const (
	senseBusyScanMin = 4
	collideScanMin   = 16
)

// senseBusy reports whether terminal from hears an ongoing transmission.
// With few carriers on air it probes each pairwise; in a dense storm it
// takes one Neighbors scan of from and tests the carriers against it —
// the same verdict (InRange is exactly Neighbors membership) at a cost
// independent of the carrier count.
func (c *CommonChannel) senseBusy(from int, now time.Duration) bool {
	live := 0
	for _, tx := range c.active {
		if tx.end <= now {
			continue
		}
		if tx.from == from {
			return true // own radio transmitting
		}
		live++
	}
	if live == 0 {
		return false
	}
	if live < senseBusyScanMin {
		for _, tx := range c.active {
			if tx.end > now && c.model.InRange(tx.from, from, now) {
				return true
			}
		}
		return false
	}
	c.vbuf = c.model.Neighbors(from, now, c.vbuf[:0])
	c.colEpoch++
	for _, v := range c.vbuf {
		c.colStamp[v] = c.colEpoch
	}
	for _, tx := range c.active {
		if tx.end > now && c.colStamp[tx.from] == c.colEpoch {
			return true
		}
	}
	return false
}

// complete finishes transmission tx: it delivers to every receiver in
// range of the sender that did not experience an overlapping transmission
// (collision), then prunes stale history. Broadcasts scan only the
// sender's neighbourhood (an O(density) grid query) instead of the whole
// terminal set; unicasts test the single target directly.
func (c *CommonChannel) complete(tx *transmission, now time.Duration) {
	if tx.jam {
		// A jam carries nothing deliverable; its whole effect — the busy
		// carrier honest senders deferred to, the collisions it inflicted
		// on overlapping completions — has already happened.
		tx.pkt.Release()
		tx.pkt = nil
		c.prune(now)
		return
	}
	if to := tx.pkt.To; to != packet.Broadcast {
		if to != tx.from && to >= 0 && to < len(c.handlers) && c.handlers[to] != nil &&
			c.model.InRange(tx.from, to, now) {
			c.overlaps(tx, now)
			if !c.collidedAt(to, now) {
				c.deliver(to, tx.pkt, now)
			} else {
				c.obs.Inc(obs.CMACCollisions)
			}
		}
	} else if sl := c.shardScan(tx, now); sl != nil {
		c.finishShardScan(sl, tx, now)
	} else if c.nbuf = c.model.Neighbors(tx.from, now, c.nbuf[:0]); len(c.nbuf) > 0 {
		c.overlaps(tx, now)
		// Settle the survivor set before any handler runs: handlers may
		// send synchronously, and the sends' carrier sensing reuses the
		// collision stamps and scratch this fan-out fills. Small overlap
		// sets stay on the pairwise probes; storms amortize one scan per
		// overlapping transmitter across all receivers.
		w := 0
		if len(c.obuf)*len(c.nbuf) < collideScanMin {
			for _, j := range c.nbuf {
				if c.handlers[j] == nil {
					continue
				}
				if c.collidedAt(j, now) {
					c.obs.Inc(obs.CMACCollisions)
					continue
				}
				c.nbuf[w] = j
				w++
			}
		} else {
			c.markCollided(now)
			for _, j := range c.nbuf {
				if c.handlers[j] == nil {
					continue
				}
				if c.colStamp[j] == c.colEpoch {
					c.obs.Inc(obs.CMACCollisions)
					continue
				}
				c.nbuf[w] = j
				w++
			}
		}
		for _, j := range c.nbuf[:w] {
			c.deliver(j, tx.pkt, now)
		}
	}
	// The on-air packet is dead: deliveries got their own copies and the
	// overlap bookkeeping only needs the transmission's time window.
	tx.pkt.Release()
	tx.pkt = nil
	c.prune(now)
}

// shardScan hands a broadcast completion to the model's sharded scanner:
// the temporal-overlap transmitter set (the same window test overlaps()
// applies, before its interference filter — the scanner applies that
// itself) plus the sender. A nil return routes the completion to the
// serial branch.
func (c *CommonChannel) shardScan(tx *transmission, now time.Duration) *channel.ScanLists {
	if c.scanner == nil {
		return nil
	}
	c.cbuf = c.cbuf[:0]
	for _, other := range c.active {
		if other == tx || other.start >= tx.end || other.end <= tx.start {
			continue
		}
		if other.from == tx.from {
			// The sender's own radio carried a second burst over this
			// completion — only a jammer gets here (honest sends defer to
			// their own carrier) — and Interferes(i, i) makes the serial
			// verdict a full wipe: the jam reaches every receiver the
			// sender does. The scanner's centre set excludes the sender,
			// so decline the fan-out and let the serial branch rule.
			return nil
		}
		c.cbuf = append(c.cbuf, other.from)
	}
	return c.scanner.BroadcastScan(tx.from, c.cbuf, now)
}

// finishShardScan applies the MAC's collision verdict and delivery to a
// sharded scan's lists — the exact markCollided fold: every interfering
// transmitter jams its own radio and everything in range of it, and a
// receiver collided exactly when it carries the completion's stamp. The
// verdict per receiver is identical to the serial branch's, pairwise or
// scanned (see markCollided), so the delivered set is too.
func (c *CommonChannel) finishShardScan(sl *channel.ScanLists, tx *transmission, now time.Duration) {
	sender := sl.Sender()
	if len(sender) == 0 {
		return
	}
	// Settle the survivor set before any handler runs: handlers may send
	// synchronously, and those sends' carrier sensing reuses the stamp
	// array — and may re-enter the scanner, invalidating sl's buffers.
	c.nbuf = append(c.nbuf[:0], sender...)
	c.colEpoch++
	for k := 0; k < sl.Others(); k++ {
		id, lst := sl.Other(k)
		c.colStamp[id] = c.colEpoch
		for _, v := range lst {
			c.colStamp[v] = c.colEpoch
		}
	}
	w := 0
	for _, j := range c.nbuf {
		if c.handlers[j] == nil {
			continue
		}
		if c.colStamp[j] == c.colEpoch {
			c.obs.Inc(obs.CMACCollisions)
			continue
		}
		c.nbuf[w] = j
		w++
	}
	for _, j := range c.nbuf[:w] {
		c.deliver(j, tx.pkt, now)
	}
}

// deliver hands receiver j its own pooled, mutable copy of pkt. The copy
// is reclaimed as soon as the handler returns — a handler keeping the
// packet must Retain or Clone it — so the whole fan-out reuses a single
// channel-local scratch record instead of allocating per receiver (or
// even cycling the shared pool per receiver).
func (c *CommonChannel) deliver(j int, pkt *packet.Packet, now time.Duration) {
	cp := c.scratch
	c.scratch = nil
	if cp == nil {
		cp = packet.Get()
	}
	cp.CopyFrom(pkt)
	c.handlers[j](cp, now)
	if cp.Sole() {
		c.scratch = cp // nobody retained it: keep it for the next delivery
	} else {
		cp.Release()
	}
}

// overlaps fills c.obuf with the transmissions relevant to tx's receivers:
// the temporal-overlap set is the same for every receiver of one
// completion, so it is computed once, and transmitters beyond interference
// range of the sender are dropped — they cannot reach any terminal that
// hears tx.from, so no receiver's InRange check against them could
// succeed. Called only when at least one delivery is actually possible.
func (c *CommonChannel) overlaps(tx *transmission, now time.Duration) {
	c.obuf = c.obuf[:0]
	for _, other := range c.active {
		if other == tx || other.start >= tx.end || other.end <= tx.start {
			continue
		}
		if !c.model.Interferes(other.from, tx.from, now) {
			continue
		}
		c.obuf = append(c.obuf, other)
	}
}

// collidedAt reports whether receiver j heard a transmission overlapping
// the one being completed (the precomputed c.obuf) — the hidden-terminal
// destruction case. Unicast completions, with their single receiver, use
// it directly; broadcast fan-outs precompute the same verdict for every
// receiver at once via markCollided.
func (c *CommonChannel) collidedAt(j int, now time.Duration) bool {
	for _, other := range c.obuf {
		if other.from == j {
			return true // receiver was itself transmitting
		}
		if c.model.InRange(other.from, j, now) {
			return true
		}
	}
	return false
}

// markCollided stamps every terminal that hears (or is) one of the
// completion's overlapping transmitters: one Neighbors scan per
// transmitter instead of one pairwise range probe per (transmitter,
// receiver) combination. After the call, receiver j collided exactly
// when colStamp[j] carries the current epoch — the identical verdict
// collidedAt computes pairwise, since Neighbors membership is InRange.
func (c *CommonChannel) markCollided(now time.Duration) {
	c.colEpoch++
	for _, other := range c.obuf {
		c.colStamp[other.from] = c.colEpoch // a transmitter jams its own radio
		c.vbuf = c.model.Neighbors(other.from, now, c.vbuf[:0])
		for _, v := range c.vbuf {
			c.colStamp[v] = c.colEpoch
		}
	}
}

// prune drops transmissions that can no longer overlap any future
// completion. A transmission still on air at time now started at
// now − airtime ≥ now − maxAir, so anything that ended at or before
// now − maxAir is provably irrelevant (overlap is strict: touching
// boundaries do not collide).
func (c *CommonChannel) prune(now time.Duration) {
	keep := c.active[:0]
	for _, tx := range c.active {
		if tx.end+c.maxAir > now {
			keep = append(keep, tx)
		} else {
			*tx = transmission{}
			c.txfree = append(c.txfree, tx)
		}
	}
	// Clear the tail so recycled transmissions are not referenced twice.
	for i := len(keep); i < len(c.active); i++ {
		c.active[i] = nil
	}
	c.active = keep
}
