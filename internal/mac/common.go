// Package mac models the paper's multi-code CDMA medium access layer in
// two halves:
//
//   - CommonChannel: the shared 250 kbps signalling channel carrying every
//     routing packet, with unslotted CSMA/CA — carrier sensing within radio
//     range, randomized exponential backoff, and destructive collisions at
//     receivers reached by overlapping transmissions (hidden terminals).
//     The paper assumes this channel is robust against fading, so fading
//     never corrupts it; only contention does.
//
//   - DataPlane: per-link CDMA data transmission. Distinct PN code pairs do
//     not contend with each other, so each link is an independent
//     store-and-forward server whose instantaneous rate is the link's
//     channel class throughput; per-hop ACKs confirm receipt and failed
//     transmissions reveal link breaks.
package mac

import (
	"math/rand"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/sim"
)

// commonBitrate is the common channel's bandwidth (paper §III.A).
const commonBitrate = 250_000 // bits/s

// Backoff and retry tuning for the unslotted CSMA/CA. backoffSlot is on
// the order of one small control packet's airtime.
const (
	backoffSlot     = 2 * time.Millisecond
	maxSendAttempts = 7
	// collisionHorizon bounds how long finished transmissions are kept for
	// overlap checks; it must exceed the longest control-packet airtime
	// (a full 50-entry LSA is ~13.6 ms on air).
	collisionHorizon = 50 * time.Millisecond
)

// ReceiveFunc handles a control packet arriving at a terminal. Each
// receiver gets its own clone, so handlers may mutate the packet freely.
type ReceiveFunc func(pkt *packet.Packet, now time.Duration)

// transmission is one on-air control packet.
type transmission struct {
	from       int
	start, end time.Duration
	pkt        *packet.Packet
}

// CommonChannel is the shared CSMA/CA signalling channel.
type CommonChannel struct {
	kernel   *sim.Kernel
	model    *channel.Model
	rng      *rand.Rand
	handlers []ReceiveFunc
	active   []*transmission

	// OnTransmit, if set, observes every packet put on air (routing
	// overhead accounting: each attempt that actually transmits counts).
	OnTransmit func(pkt *packet.Packet, from int, now time.Duration)
	// OnDropped, if set, observes control packets abandoned after the
	// maximum number of busy-channel backoffs — the congestion-collapse
	// signal that cripples the link-state protocol at high mobility.
	OnDropped func(pkt *packet.Packet, from int, now time.Duration)
}

// NewCommonChannel builds the channel for the terminals covered by model.
// rng drives backoff jitter and must be a dedicated stream.
func NewCommonChannel(kernel *sim.Kernel, model *channel.Model, rng *rand.Rand) *CommonChannel {
	return &CommonChannel{
		kernel:   kernel,
		model:    model,
		rng:      rng,
		handlers: make([]ReceiveFunc, model.N()),
	}
}

// Register installs the receive handler for terminal id. Every terminal
// must register exactly once before traffic starts.
func (c *CommonChannel) Register(id int, h ReceiveFunc) {
	if c.handlers[id] != nil {
		panic("mac: duplicate CommonChannel.Register")
	}
	c.handlers[id] = h
}

// Send queues pkt for transmission from terminal pkt.From. Broadcasts
// (pkt.To == packet.Broadcast) are delivered to every in-range terminal;
// unicasts only to pkt.To, though both occupy the air identically.
// Delivery is best-effort: collisions and repeated busy channel lose the
// packet silently, exactly the failure mode ad hoc routing must tolerate.
func (c *CommonChannel) Send(pkt *packet.Packet) {
	c.attempt(pkt, 0)
}

func (c *CommonChannel) attempt(pkt *packet.Packet, tries int) {
	now := c.kernel.Now()
	if c.senseBusy(pkt.From, now) {
		if tries+1 >= maxSendAttempts {
			if c.OnDropped != nil {
				c.OnDropped(pkt, pkt.From, now)
			}
			return
		}
		c.kernel.Schedule(c.backoff(tries), func(time.Duration) {
			c.attempt(pkt, tries+1)
		})
		return
	}

	airtime := time.Duration(float64(pkt.Size*8) / commonBitrate * float64(time.Second))
	tx := &transmission{from: pkt.From, start: now, end: now + airtime, pkt: pkt}
	c.active = append(c.active, tx)
	if c.OnTransmit != nil {
		c.OnTransmit(pkt, pkt.From, now)
	}
	c.kernel.Schedule(airtime, func(end time.Duration) {
		c.complete(tx, end)
	})
}

// backoff draws an unslotted binary-exponential backoff delay.
func (c *CommonChannel) backoff(tries int) time.Duration {
	window := backoffSlot << uint(tries)
	return time.Duration(c.rng.Int63n(int64(window))) + time.Millisecond
}

// senseBusy reports whether terminal from hears an ongoing transmission.
func (c *CommonChannel) senseBusy(from int, now time.Duration) bool {
	for _, tx := range c.active {
		if tx.end <= now {
			continue
		}
		if tx.from == from {
			return true // own radio transmitting
		}
		if c.model.InRange(tx.from, from, now) {
			return true
		}
	}
	return false
}

// complete finishes transmission tx: it delivers to every receiver in
// range of the sender that did not experience an overlapping transmission
// (collision), then prunes stale history.
func (c *CommonChannel) complete(tx *transmission, now time.Duration) {
	for j := range c.handlers {
		if j == tx.from || c.handlers[j] == nil {
			continue
		}
		if tx.pkt.To != packet.Broadcast && tx.pkt.To != j {
			continue
		}
		if !c.model.InRange(tx.from, j, now) {
			continue
		}
		if c.collidedAt(j, tx, now) {
			continue
		}
		c.handlers[j](tx.pkt.Clone(), now)
	}
	c.prune(now)
}

// collidedAt reports whether receiver j heard another transmission that
// overlapped tx in time — the hidden-terminal destruction case.
func (c *CommonChannel) collidedAt(j int, tx *transmission, now time.Duration) bool {
	for _, other := range c.active {
		if other == tx {
			continue
		}
		if other.start >= tx.end || other.end <= tx.start {
			continue // no temporal overlap
		}
		if other.from == j {
			return true // receiver was itself transmitting
		}
		if c.model.InRange(other.from, j, now) {
			return true
		}
	}
	return false
}

// prune drops transmissions too old to matter for future overlap checks.
func (c *CommonChannel) prune(now time.Duration) {
	keep := c.active[:0]
	for _, tx := range c.active {
		if tx.end+collisionHorizon > now {
			keep = append(keep, tx)
		}
	}
	// Clear the tail so completed transmissions can be collected.
	for i := len(keep); i < len(c.active); i++ {
		c.active[i] = nil
	}
	c.active = keep
}
