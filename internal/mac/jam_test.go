package mac

import (
	"math/rand"
	"testing"
	"time"

	"rica/internal/obs"
	"rica/internal/packet"
)

// jamPkt builds a pooled jam burst from the given terminal — pooled
// because Jam takes ownership and Releases it when the burst leaves the
// air, exactly as the world's jam runner does.
func jamPkt(from, size int) *packet.Packet {
	p := packet.Get()
	p.Type = packet.TypeJam
	p.From = from
	p.To = packet.Broadcast
	p.Size = size
	return p
}

func TestJamIsNeverDelivered(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	reg := obs.NewRegistry()
	c.SetObs(reg)
	heard := 0
	c.Register(0, func(*packet.Packet, time.Duration) { heard++ })
	c.Register(1, func(*packet.Packet, time.Duration) { heard++ })
	before := packet.Live()
	c.Jam(jamPkt(0, packet.SizeJam))
	k.Run(time.Second)
	if heard != 0 {
		t.Errorf("jam burst was delivered %d times; it is pure interference", heard)
	}
	if got := reg.Snapshot().JamTransmitted; got != 1 {
		t.Errorf("JamTransmitted = %d, want 1", got)
	}
	if live := packet.Live(); live != before {
		t.Errorf("jam leaked pooled packets: live %d → %d", before, live)
	}
}

func TestJamHoldsHonestSendersInBackoff(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0}, fixedPos{X: 200, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	reg := obs.NewRegistry()
	c.SetObs(reg)
	got := make(map[int]int)
	for i := 0; i < 3; i++ {
		i := i
		c.Register(i, func(*packet.Packet, time.Duration) { got[i]++ })
	}
	// A 1024-byte burst holds the carrier for ~33 ms; node 1 hears it and
	// must back off, then transmit cleanly once the air clears.
	c.Jam(jamPkt(0, 1024))
	k.Schedule(time.Millisecond, func(time.Duration) {
		c.Send(ctrlPkt(packet.TypeRREQ, 1, packet.Broadcast))
	})
	k.Run(time.Second)
	if reg.Snapshot().MACBackoffs == 0 {
		t.Error("honest sender never backed off against the jam carrier")
	}
	if got[0] != 1 || got[2] != 1 {
		t.Errorf("post-jam broadcast deliveries = %v, want nodes 0 and 2 once each", got)
	}
}

func TestJamDestroysOverlappingBroadcast(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0}, fixedPos{X: 200, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	reg := obs.NewRegistry()
	c.SetObs(reg)
	got := make(map[int]int)
	for i := 0; i < 3; i++ {
		i := i
		c.Register(i, func(*packet.Packet, time.Duration) { got[i]++ })
	}
	// Node 0's 512-byte broadcast airs for ~16 ms; node 2 — a hidden
	// terminal from node 0's perspective is not even needed, jam ignores
	// carrier sense — fires a burst overlapping it. The jam reaches node
	// 1, so the broadcast is destroyed there; node 2 is itself
	// transmitting, so it cannot hear either.
	pkt := ctrlPkt(packet.TypeRREQ, 0, packet.Broadcast)
	pkt.Size = 512
	c.Send(pkt)
	k.Schedule(2*time.Millisecond, func(time.Duration) {
		c.Jam(jamPkt(2, 512))
	})
	k.Run(time.Second)
	if got[1] != 0 || got[2] != 0 {
		t.Errorf("jammed broadcast still delivered: %v", got)
	}
	if reg.Snapshot().MACCollisions == 0 {
		t.Error("no collision recorded for the jammed broadcast")
	}
}

func TestSelfJamWipesOwnBroadcast(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0}, fixedPos{X: 200, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	got := make(map[int]int)
	for i := 0; i < 3; i++ {
		i := i
		c.Register(i, func(*packet.Packet, time.Duration) { got[i]++ })
	}
	// The jammer's own radio steps on its honest transmission: Jam skips
	// carrier sense, so node 0 can burst mid-broadcast. Every receiver of
	// the broadcast hears the overlap, so nothing survives — and the
	// sharded engine must agree (its scanner declines this case; see
	// CommonChannel.shardScan).
	pkt := ctrlPkt(packet.TypeRREQ, 0, packet.Broadcast)
	pkt.Size = 512
	c.Send(pkt)
	k.Schedule(2*time.Millisecond, func(time.Duration) {
		c.Jam(jamPkt(0, 256))
	})
	k.Run(time.Second)
	if got[1] != 0 || got[2] != 0 {
		t.Errorf("self-jammed broadcast still delivered: %v", got)
	}
}
