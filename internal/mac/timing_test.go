package mac

import (
	"math/rand"
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
)

// TestBlindFailureTakesDetectionTime: a transmission into a vanished link
// must not fail instantly — the sender burns a worst-class airtime plus
// the ACK timeout per attempt before reporting the break.
func TestBlindFailureTakesDetectionTime(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 400, Y: 0})
	d := NewDataPlane(k, m)
	d.MaxRetries = 1
	d.Register(0, func(*packet.Packet, time.Duration) {})
	d.Register(1, func(*packet.Packet, time.Duration) {})
	var failedAt time.Duration
	d.Send(0, 1, dataPkt(0, 1), func(r SendResult) {
		if r.OK {
			t.Error("send into the void succeeded")
		}
		failedAt = k.Now()
	})
	k.Run(time.Second)
	// Two blind attempts: 2 × (512 B at 50 kbps ≈ 81.9 ms + 10 ms timeout).
	min := 2 * (80*time.Millisecond + 10*time.Millisecond)
	if failedAt < min {
		t.Fatalf("failure reported after %v, want ≥ %v (blind detection latency)", failedAt, min)
	}
	if failedAt > 300*time.Millisecond {
		t.Fatalf("failure detection took %v, implausibly long", failedAt)
	}
}

// TestOnDataTransmitHookSeesEveryAttempt: the energy meter's hook fires
// once per attempt, including blind ones, with the class used.
func TestOnDataTransmitHookSeesEveryAttempt(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 400, Y: 0})
	d := NewDataPlane(k, m)
	d.MaxRetries = 2
	d.Register(0, func(*packet.Packet, time.Duration) {})
	d.Register(1, func(*packet.Packet, time.Duration) {})
	var classes []channel.Class
	d.OnDataTransmit = func(from, to int, class channel.Class, size int, now time.Duration) {
		classes = append(classes, class)
	}
	d.Send(0, 1, dataPkt(0, 1), func(SendResult) {})
	k.Run(time.Second)
	if len(classes) != 3 { // initial + 2 retries
		t.Fatalf("hook fired %d times, want 3", len(classes))
	}
	for _, c := range classes {
		if c != channel.ClassNone {
			t.Fatalf("blind attempt reported class %v, want ClassNone", c)
		}
	}
}

// TestSuccessfulSendReportsUsedClass: for a working link the hook carries
// the class the rate came from.
func TestSuccessfulSendReportsUsedClass(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 30, Y: 0})
	d := NewDataPlane(k, m)
	d.Register(0, func(*packet.Packet, time.Duration) {})
	d.Register(1, func(*packet.Packet, time.Duration) {})
	var hooked channel.Class
	d.OnDataTransmit = func(_, _ int, class channel.Class, _ int, _ time.Duration) { hooked = class }
	var result SendResult
	d.Send(0, 1, dataPkt(0, 1), func(r SendResult) { result = r })
	k.Run(time.Second)
	if !result.OK {
		t.Fatal("short link send failed")
	}
	if hooked != result.Class {
		t.Fatalf("hook class %v != result class %v", hooked, result.Class)
	}
	if !hooked.Usable() {
		t.Fatalf("hook class %v not usable", hooked)
	}
}

// TestBroadcastAirtimeMatchesBitrate: a control packet's propagation delay
// through the common channel equals its size at 250 kbps (plus nothing
// else when the channel is idle).
func TestBroadcastAirtimeMatchesBitrate(t *testing.T) {
	k, m := testSetup(fixedPos{X: 0, Y: 0}, fixedPos{X: 100, Y: 0})
	c := NewCommonChannel(k, m, rand.New(rand.NewSource(1)))
	c.Register(0, func(*packet.Packet, time.Duration) {})
	var deliveredAt time.Duration
	c.Register(1, func(_ *packet.Packet, now time.Duration) { deliveredAt = now })
	pkt := &packet.Packet{Type: packet.TypeRREQ, From: 0, To: packet.Broadcast, Size: 250} // 2000 bits
	c.Send(pkt)
	k.Run(time.Second)
	want := 8 * time.Millisecond // 2000 bits / 250 kbps
	if diff := deliveredAt - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}
