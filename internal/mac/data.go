package mac

import (
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/sim"
)

// DeliverFunc handles a data packet arriving at a terminal over a data
// channel.
type DeliverFunc func(pkt *packet.Packet, now time.Duration)

// SendResult reports the outcome of a data-plane transmission to the
// sending queue.
type SendResult struct {
	// OK is true when the packet was delivered and acknowledged.
	OK bool
	// Class is the channel class the transmission used (ClassNone when the
	// link did not exist at send time). The forwarding layer accumulates it
	// into the per-packet link-throughput trace for Figure 5(a).
	Class channel.Class
}

// DataPlane transmits data packets over per-pair CDMA channels. Each
// ordered pair's PN code is an independent server, so concurrent Send
// calls on different links never contend; serialization of packets on one
// link is the caller's job (the network layer's per-link queue).
type DataPlane struct {
	kernel   *sim.Kernel
	model    LinkOracle
	handlers []DeliverFunc

	// MaxRetries is how many times a transmission that lost its receiver
	// mid-flight is retried before the link is declared broken.
	MaxRetries int

	// OnAck, if set, observes acknowledgment transmissions; the paper's
	// overhead metric includes data ACK bits.
	OnAck func(sizeBytes int, now time.Duration)

	// OnDataTransmit, if set, observes every data transmission attempt
	// with the class it used (ClassNone for blind attempts into a broken
	// link). The energy meter hangs off this hook.
	OnDataTransmit func(from, to int, class channel.Class, sizeBytes int, now time.Duration)
}

// NewDataPlane builds the data plane over the given channel model.
func NewDataPlane(kernel *sim.Kernel, model LinkOracle) *DataPlane {
	return &DataPlane{
		kernel:     kernel,
		model:      model,
		handlers:   make([]DeliverFunc, model.N()),
		MaxRetries: 1,
	}
}

// Register installs the data delivery handler for terminal id.
func (d *DataPlane) Register(id int, h DeliverFunc) {
	if d.handlers[id] != nil {
		panic("mac: duplicate DataPlane.Register")
	}
	d.handlers[id] = h
}

// Send transmits pkt from terminal from to neighbor to, invoking done
// exactly once with the outcome. The sequence modelled per attempt:
//
//  1. Sample the link class; a non-existent link fails immediately (the
//     receiver left radio range — the paper's link-break trigger).
//  2. The packet occupies the link for size/throughput(class).
//  3. If the receiver is still in range at arrival, it takes delivery and
//     returns a per-hop ACK on the reverse PN code (counted as overhead);
//     otherwise the attempt failed and is retried up to MaxRetries times.
//
// done is always invoked via the event queue, never synchronously, so
// callers may hold per-queue state across the call.
func (d *DataPlane) Send(from, to int, pkt *packet.Packet, done func(SendResult)) {
	if from == to {
		panic("mac: data send to self")
	}
	d.attempt(from, to, pkt, 0, done)
}

// ackTimeout is how long a sender waits for the per-hop ACK before
// declaring the attempt failed.
const ackTimeout = 10 * time.Millisecond

func (d *DataPlane) attempt(from, to int, pkt *packet.Packet, tries int, done func(SendResult)) {
	now := d.kernel.Now()
	class := d.model.Class(from, to, now)
	if d.OnDataTransmit != nil {
		d.OnDataTransmit(from, to, class, pkt.Size, now)
	}
	if !class.Usable() {
		// The receiver is gone, but the sender cannot know that yet: it
		// transmits blind at the most robust rate and only concludes
		// failure when no ACK arrives. This detection latency is what
		// stalls a queue behind a broken link.
		blind := channel.ClassD.TransmitDuration(pkt.Size) + ackTimeout
		d.kernel.Schedule(blind, func(time.Duration) {
			if tries < d.MaxRetries {
				d.attempt(from, to, pkt, tries+1, done)
				return
			}
			done(SendResult{OK: false, Class: channel.ClassNone})
		})
		return
	}
	txDur := class.TransmitDuration(pkt.Size)
	d.kernel.Schedule(txDur, func(arrival time.Duration) {
		if !d.model.InRange(from, to, arrival) {
			// Receiver moved out mid-transmission.
			if tries < d.MaxRetries {
				d.attempt(from, to, pkt, tries+1, done)
				return
			}
			done(SendResult{OK: false, Class: class})
			return
		}
		// Delivery succeeded; the short reverse-code ACK completes the
		// exchange. ACK loss is not modelled separately (the data-arrival
		// range check covers the vulnerable window) but its airtime both
		// counts as overhead and occupies the exchange.
		if d.OnAck != nil {
			d.OnAck(packet.SizeAck, arrival)
		}
		// Per-hop quality trace for the paper's route-quality figures:
		// hops taken, per-hop class throughputs, and CSI hop distances.
		pkt.TraversedHops++
		pkt.TraversedBps += class.ThroughputBps()
		pkt.TraversedCSI += class.HopDistance()
		if h := d.handlers[to]; h != nil {
			h(pkt, arrival)
		}
		ackDur := class.TransmitDuration(packet.SizeAck)
		d.kernel.Schedule(ackDur, func(time.Duration) {
			done(SendResult{OK: true, Class: class})
		})
	})
}
