package mac

import (
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/sim"
)

// DeliverFunc handles a data packet arriving at a terminal over a data
// channel.
type DeliverFunc func(pkt *packet.Packet, now time.Duration)

// SendResult reports the outcome of a data-plane transmission to the
// sending queue.
type SendResult struct {
	// OK is true when the packet was delivered and acknowledged.
	OK bool
	// Class is the channel class the transmission used (ClassNone when the
	// link did not exist at send time). The forwarding layer accumulates it
	// into the per-packet link-throughput trace for Figure 5(a).
	Class channel.Class
}

// DataPlane transmits data packets over per-pair CDMA channels. Each
// ordered pair's PN code is an independent server, so concurrent Send
// calls on different links never contend; serialization of packets on one
// link is the caller's job (the network layer's per-link queue).
type DataPlane struct {
	kernel   *sim.Kernel
	model    LinkOracle
	handlers []DeliverFunc

	// In-flight exchange arena: per-packet timers carry a slot index on
	// the kernel's closure-free fast path, and finished exchange records
	// are recycled through xfree.
	x     []*exchange
	xFS   []int
	xfree []*exchange
	// Bound phase handlers, built once in NewDataPlane.
	blindFn  sim.ArgHandler
	arriveFn sim.ArgHandler
	ackFn    sim.ArgHandler

	// MaxRetries is how many times a transmission that lost its receiver
	// mid-flight is retried before the link is declared broken.
	MaxRetries int

	// OnAck, if set, observes acknowledgment transmissions; the paper's
	// overhead metric includes data ACK bits.
	OnAck func(sizeBytes int, now time.Duration)

	// OnDataTransmit, if set, observes every data transmission attempt
	// with the class it used (ClassNone for blind attempts into a broken
	// link). The energy meter hangs off this hook.
	OnDataTransmit func(from, to int, class channel.Class, sizeBytes int, now time.Duration)
}

// NewDataPlane builds the data plane over the given channel model.
func NewDataPlane(kernel *sim.Kernel, model LinkOracle) *DataPlane {
	d := &DataPlane{
		kernel:     kernel,
		model:      model,
		handlers:   make([]DeliverFunc, model.N()),
		MaxRetries: 1,
	}
	d.blindFn = d.blindTimedOut
	d.arriveFn = d.arrive
	d.ackFn = d.ackDone
	return d
}

// exchange is one in-flight data transmission: the state the per-attempt
// timers would otherwise capture in closures.
type exchange struct {
	from, to int
	tries    int
	pkt      *packet.Packet
	done     func(SendResult)
	class    channel.Class
	// handed flips when the receiver takes delivery: from then until the
	// ACK airtime closes the exchange, the sender's queue head is a stale
	// reference to a packet the receiver now owns (see EachHandedOff).
	handed bool
}

// Register installs the data delivery handler for terminal id.
func (d *DataPlane) Register(id int, h DeliverFunc) {
	if d.handlers[id] != nil {
		panic("mac: duplicate DataPlane.Register")
	}
	d.handlers[id] = h
}

// Send transmits pkt from terminal from to neighbor to, invoking done
// exactly once with the outcome. The sequence modelled per attempt:
//
//  1. Sample the link class; a non-existent link fails immediately (the
//     receiver left radio range — the paper's link-break trigger).
//  2. The packet occupies the link for size/throughput(class).
//  3. If the receiver is still in range at arrival, it takes delivery and
//     returns a per-hop ACK on the reverse PN code (counted as overhead);
//     otherwise the attempt failed and is retried up to MaxRetries times.
//
// done is always invoked via the event queue, never synchronously, so
// callers may hold per-queue state across the call.
func (d *DataPlane) Send(from, to int, pkt *packet.Packet, done func(SendResult)) {
	if from == to {
		panic("mac: data send to self")
	}
	x := d.allocX()
	x.from, x.to, x.pkt, x.done = from, to, pkt, done
	d.attempt(x, d.parkX(x))
}

// ackTimeout is how long a sender waits for the per-hop ACK before
// declaring the attempt failed.
const ackTimeout = 10 * time.Millisecond

func (d *DataPlane) attempt(x *exchange, slot int) {
	now := d.kernel.Now()
	x.class = d.model.Class(x.from, x.to, now)
	if d.OnDataTransmit != nil {
		d.OnDataTransmit(x.from, x.to, x.class, x.pkt.Size, now)
	}
	if !x.class.Usable() {
		// The receiver is gone, but the sender cannot know that yet: it
		// transmits blind at the most robust rate and only concludes
		// failure when no ACK arrives. This detection latency is what
		// stalls a queue behind a broken link.
		blind := channel.ClassD.TransmitDuration(x.pkt.Size) + ackTimeout
		d.kernel.ScheduleArg(blind, d.blindFn, slot, 0)
		return
	}
	txDur := x.class.TransmitDuration(x.pkt.Size)
	d.kernel.ScheduleArg(txDur, d.arriveFn, slot, 0)
}

// blindTimedOut ends one blind attempt into a dead link.
func (d *DataPlane) blindTimedOut(_ time.Duration, slot, _ int) {
	x := d.x[slot]
	if x.tries < d.MaxRetries {
		x.tries++
		d.attempt(x, slot)
		return
	}
	d.finish(x, slot, SendResult{OK: false, Class: channel.ClassNone})
}

// arrive completes a transmission's airtime at the receiver.
func (d *DataPlane) arrive(arrival time.Duration, slot, _ int) {
	x := d.x[slot]
	if !d.model.InRange(x.from, x.to, arrival) {
		// Receiver moved out mid-transmission.
		if x.tries < d.MaxRetries {
			x.tries++
			d.attempt(x, slot)
			return
		}
		d.finish(x, slot, SendResult{OK: false, Class: x.class})
		return
	}
	// Delivery succeeded; the short reverse-code ACK completes the
	// exchange. ACK loss is not modelled separately (the data-arrival
	// range check covers the vulnerable window) but its airtime both
	// counts as overhead and occupies the exchange.
	if d.OnAck != nil {
		d.OnAck(packet.SizeAck, arrival)
	}
	// Per-hop quality trace for the paper's route-quality figures:
	// hops taken, per-hop class throughputs, and CSI hop distances.
	x.pkt.TraversedHops++
	x.pkt.TraversedBps += x.class.ThroughputBps()
	x.pkt.TraversedCSI += x.class.HopDistance()
	x.handed = true
	if h := d.handlers[x.to]; h != nil {
		h(x.pkt, arrival)
	}
	ackDur := x.class.TransmitDuration(packet.SizeAck)
	d.kernel.ScheduleArg(ackDur, d.ackFn, slot, 0)
}

// ackDone closes a successful exchange after the ACK's airtime.
func (d *DataPlane) ackDone(_ time.Duration, slot, _ int) {
	x := d.x[slot]
	d.finish(x, slot, SendResult{OK: true, Class: x.class})
}

// finish reports the outcome and recycles the exchange record. The record
// is freed before done runs so the callback can start the next exchange
// without growing the arena.
func (d *DataPlane) finish(x *exchange, slot int, res SendResult) {
	done := x.done
	d.x[slot] = nil
	d.xFS = append(d.xFS, slot)
	*x = exchange{}
	d.xfree = append(d.xfree, x)
	done(res)
}

// EachHandedOff reports every in-flight exchange whose packet the
// receiver has already taken delivery of (the exchange is inside its ACK
// airtime). When a run's horizon lands in that window, the sender's link
// queue still holds a stale head reference to a packet it no longer
// owns; the end-of-run drain must discard those references instead of
// releasing them, or the pool sees a double free.
func (d *DataPlane) EachHandedOff(fn func(from, to int)) {
	for _, x := range d.x {
		if x != nil && x.handed {
			fn(x.from, x.to)
		}
	}
}

// allocX recycles or allocates an exchange record.
func (d *DataPlane) allocX() *exchange {
	if n := len(d.xfree); n > 0 {
		x := d.xfree[n-1]
		d.xfree[n-1] = nil
		d.xfree = d.xfree[:n-1]
		return x
	}
	return &exchange{}
}

// parkX files x in the slot arena and returns its index.
func (d *DataPlane) parkX(x *exchange) int {
	if n := len(d.xFS); n > 0 {
		slot := d.xFS[n-1]
		d.xFS = d.xFS[:n-1]
		d.x[slot] = x
		return slot
	}
	d.x = append(d.x, x)
	return len(d.x) - 1
}
