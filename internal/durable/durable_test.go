package durable

import (
	"os"
	"path/filepath"
	"testing"
)

// observeSyncs installs an OnSync observer collecting synced directory
// paths; tests using it must not run in parallel.
func observeSyncs(t *testing.T) *[]string {
	t.Helper()
	var dirs []string
	OnSync = func(dir string) { dirs = append(dirs, dir) }
	t.Cleanup(func() { OnSync = nil })
	return &dirs
}

func TestRenameSyncsParentDir(t *testing.T) {
	dirs := observeSyncs(t)
	dir := t.TempDir()
	tmp := filepath.Join(dir, "x.tmp")
	dst := filepath.Join(dir, "x")
	if err := os.WriteFile(tmp, []byte("payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Rename(tmp, dst); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	data, err := os.ReadFile(dst)
	if err != nil || string(data) != "payload" {
		t.Fatalf("renamed file: %q, %v", data, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("temp file still present: %v", err)
	}
	if len(*dirs) != 1 || (*dirs)[0] != dir {
		t.Fatalf("synced dirs = %v, want exactly [%s]", *dirs, dir)
	}
}

func TestSyncFileSyncsParentDir(t *testing.T) {
	dirs := observeSyncs(t)
	dir := t.TempDir()
	f, err := os.Create(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteString("header\n"); err != nil {
		t.Fatal(err)
	}
	if err := SyncFile(f); err != nil {
		t.Fatalf("SyncFile: %v", err)
	}
	if len(*dirs) != 1 || (*dirs)[0] != dir {
		t.Fatalf("synced dirs = %v, want exactly [%s]", *dirs, dir)
	}
}

func TestSyncDirMissing(t *testing.T) {
	if err := SyncDir(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}

func TestRenameFailureDoesNotSync(t *testing.T) {
	dirs := observeSyncs(t)
	dir := t.TempDir()
	if err := Rename(filepath.Join(dir, "missing"), filepath.Join(dir, "dst")); err == nil {
		t.Fatal("Rename of a missing file succeeded")
	}
	if len(*dirs) != 0 {
		t.Fatalf("failed rename still synced %v", *dirs)
	}
}
