// Package durable closes the last gap in the repo's atomic-write
// story: directory durability. Writing a temp file, fsyncing it, and
// renaming it over the target makes the *contents* crash-safe, but the
// rename itself lives in the parent directory's entries — until the
// directory is fsynced, a power cut can roll the rename back and the
// "atomically written" file simply is not there on reboot. The same
// applies to freshly created files (a journal's first open): the inode
// is durable, the directory entry pointing at it may not be.
//
// Rename and SyncFile bundle the missing directory sync with the
// operations that need it, so checkpoint snapshots and manifest
// journals survive not just process death but whole-machine crashes.
package durable

import (
	"os"
	"path/filepath"
)

// OnSync, when non-nil, observes every directory sync with the directory
// path. It exists so regression tests can prove the checkpoint and
// manifest write paths actually reach the directory sync; production
// code must never set it.
var OnSync func(dir string)

// SyncDir fsyncs the directory itself, making previously performed
// entry operations (renames, creates, unlinks) in it durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err == nil && OnSync != nil {
		OnSync(dir)
	}
	return err
}

// Rename renames oldpath over newpath and fsyncs newpath's parent
// directory, so a crash immediately after Rename returns cannot lose
// the rename. The file at oldpath must already be fsynced by the
// caller (content durability and entry durability are separate).
func Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(newpath))
}

// SyncFile makes a freshly created (or appended) file fully durable:
// fsync the file, then fsync its parent directory so the entry that
// names it survives a crash too. Use after creating a file whose
// existence matters (a new journal), not on every append — appends to
// an already-durable entry only need the file sync.
func SyncFile(f *os.File) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return SyncDir(filepath.Dir(f.Name()))
}
