package mobility

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rica/internal/geom"
)

var testField = geom.Field{Width: 1000, Height: 1000}

func testCfg(maxSpeed float64) Config {
	return Config{Field: testField, MaxSpeed: maxSpeed, Pause: 3 * time.Second}
}

func TestStaticNodeNeverMoves(t *testing.T) {
	n := NewNode(testCfg(0), rand.New(rand.NewSource(1)))
	p0 := n.Position(0)
	for _, at := range []time.Duration{time.Second, time.Minute, time.Hour} {
		if got := n.Position(at); got != p0 {
			t.Fatalf("static node moved: %v at t=%v, started %v", got, at, p0)
		}
		if n.Moving(at) {
			t.Fatalf("static node reports Moving at %v", at)
		}
	}
}

func TestInitialPositionInField(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		n := NewNode(testCfg(20), rand.New(rand.NewSource(seed)))
		if p := n.Position(0); !testField.Contains(p) {
			t.Fatalf("seed %d: initial position %v outside field", seed, p)
		}
	}
}

func TestPositionAlwaysInField(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		n := NewNode(testCfg(40), rand.New(rand.NewSource(seed)))
		at := time.Duration(0)
		for i := 0; i < int(steps); i++ {
			at += 700 * time.Millisecond
			if !testField.Contains(n.Position(at)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPositionContinuity verifies the trajectory has no teleports: over a
// small dt the displacement is bounded by MaxSpeed*dt.
func TestPositionContinuity(t *testing.T) {
	const maxSpeed = 40.0
	n := NewNode(testCfg(maxSpeed), rand.New(rand.NewSource(7)))
	dt := 50 * time.Millisecond
	prev := n.Position(0)
	for at := dt; at < 10*time.Minute; at += dt {
		cur := n.Position(at)
		moved := cur.DistanceTo(prev)
		bound := maxSpeed*dt.Seconds() + 1e-9
		if moved > bound {
			t.Fatalf("teleport at t=%v: moved %.3f m in %v (bound %.3f)", at, moved, dt, bound)
		}
		prev = cur
	}
}

func TestPausesAtWaypoint(t *testing.T) {
	cfg := testCfg(30)
	n := NewNode(cfg, rand.New(rand.NewSource(3)))
	// Find a moment the node is moving, then find its arrival and check the
	// pause dwell.
	var at time.Duration
	for at = 0; at < time.Hour; at += 100 * time.Millisecond {
		if n.Moving(at) {
			break
		}
	}
	if !n.Moving(at) {
		t.Fatal("node never started moving")
	}
	arrive := n.arrive
	pArrive := n.Position(arrive)
	// During the pause the position must be constant.
	for _, dt := range []time.Duration{0, time.Second, cfg.Pause - time.Millisecond} {
		if got := n.Position(arrive + dt); got != pArrive {
			t.Fatalf("moved during pause: %v at +%v, want %v", got, dt, pArrive)
		}
	}
}

func TestSpeedWithinBounds(t *testing.T) {
	const maxSpeed = 25.0
	n := NewNode(testCfg(maxSpeed), rand.New(rand.NewSource(11)))
	for at := time.Duration(0); at < 20*time.Minute; at += 500 * time.Millisecond {
		s := n.Speed(at)
		if s < 0 || s > maxSpeed+1e-9 {
			t.Fatalf("speed %v at t=%v outside [0, %v]", s, at, maxSpeed)
		}
		if !n.Moving(at) && s != 0 {
			t.Fatalf("nonzero speed %v while paused at t=%v", s, at)
		}
	}
}

func TestDeterministicTrajectory(t *testing.T) {
	a := NewNode(testCfg(20), rand.New(rand.NewSource(99)))
	b := NewNode(testCfg(20), rand.New(rand.NewSource(99)))
	for at := time.Duration(0); at < 5*time.Minute; at += 333 * time.Millisecond {
		if a.Position(at) != b.Position(at) {
			t.Fatalf("same seed diverged at t=%v", at)
		}
	}
}

func TestBackwardQueryWithinLegOK(t *testing.T) {
	n := NewNode(testCfg(20), rand.New(rand.NewSource(5)))
	p1 := n.Position(10 * time.Second)
	_ = p1
	// Re-querying the same instant (as multiple links do within one event)
	// must be stable.
	if n.Position(10*time.Second) != p1 {
		t.Fatal("repeated query at same instant changed position")
	}
}

func TestNegativeTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative-time query did not panic")
		}
	}()
	n := NewNode(testCfg(20), rand.New(rand.NewSource(5)))
	n.Position(-time.Second)
}

func TestNilRNGPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewNode(nil rng) did not panic")
		}
	}()
	NewNode(testCfg(20), nil)
}

func TestNodeEventuallyMoves(t *testing.T) {
	n := NewNode(testCfg(10), rand.New(rand.NewSource(13)))
	p0 := n.Position(0)
	moved := false
	for at := time.Duration(0); at < time.Hour; at += time.Second {
		if n.Position(at).DistanceTo(p0) > 1 {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("mobile node did not move within an hour")
	}
}

func TestUnitConversions(t *testing.T) {
	if got := KmhToMs(72); got != 20 {
		t.Errorf("KmhToMs(72) = %v, want 20", got)
	}
	if got := MsToKmh(20); got != 72 {
		t.Errorf("MsToKmh(20) = %v, want 72", got)
	}
	f := func(v float64) bool {
		return v != v /* NaN */ || MsToKmh(KmhToMs(v)) == v || abs(MsToKmh(KmhToMs(v))-v) < 1e-9*abs(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
