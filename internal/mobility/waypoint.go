// Package mobility implements the random-waypoint mobility model the paper
// evaluates under: a terminal picks a uniformly random destination in the
// field, travels there in a straight line at a speed drawn uniformly from
// [0, MAXSPEED], pauses for a fixed time (3 s in the paper), then repeats.
//
// The model is lazy and closed-form: positions are computed analytically
// from the current leg, and legs are advanced only when a query moves past
// them. No simulator events are consumed, and a node's trajectory is a
// deterministic function of its private random stream — so every protocol
// under comparison sees the identical sample path of motion.
package mobility

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"rica/internal/geom"
)

// StableForever is the PositionStableUntil result of a terminal that
// never moves again: effectively the end of virtual time.
const StableForever = time.Duration(math.MaxInt64)

// minLegSpeed guards against a uniform draw of (almost) exactly zero, which
// would create a leg of essentially infinite duration and freeze the node
// in a way the random-waypoint literature does not intend.
const minLegSpeed = 0.01 // m/s

// Config parameterizes the random-waypoint process.
type Config struct {
	// Field is the rectangle terminals roam in.
	Field geom.Field
	// MaxSpeed is MAXSPEED in m/s; per-leg speed is uniform in
	// (0, MaxSpeed]. Zero means the terminal never moves.
	MaxSpeed float64
	// Pause is the dwell time at each waypoint. The paper uses 3 s.
	Pause time.Duration
}

// Node is one terminal's trajectory. Create with NewNode; the zero value is
// not usable because a trajectory needs its random stream.
type Node struct {
	cfg Config
	rng *rand.Rand

	// Current leg: the node departs from at time depart, arrives at to at
	// time arrive, then rests until arrive+cfg.Pause.
	from, to       geom.Point
	depart, arrive time.Duration
}

// NewNode places a terminal uniformly at random in the field and starts its
// first pause at t = 0 (so motion begins at t = Pause, matching a process
// already in its stationary pause/move cycle at the field boundary of the
// run). rng must be the node's private stream.
func NewNode(cfg Config, rng *rand.Rand) *Node {
	if rng == nil {
		panic("mobility: NewNode requires a random stream")
	}
	start := geom.Point{
		X: rng.Float64() * cfg.Field.Width,
		Y: rng.Float64() * cfg.Field.Height,
	}
	n := &Node{
		cfg:    cfg,
		rng:    rng,
		from:   start,
		to:     start,
		depart: 0,
		arrive: 0, // zero-length leg; first pause runs [0, Pause]
	}
	return n
}

// Position reports the terminal's location at virtual time at. Queries must
// be non-decreasing in time across calls (the simulator clock is
// monotonic); going backwards past the current leg panics, since the
// history needed to answer has been discarded.
func (n *Node) Position(at time.Duration) geom.Point {
	n.advanceTo(at)
	if at < n.depart {
		if at < 0 {
			panic(fmt.Sprintf("mobility: query at negative time %v", at))
		}
		// Within the pause preceding the current leg: parked at from.
		return n.from
	}
	if at >= n.arrive {
		return n.to // pausing at the waypoint
	}
	frac := float64(at-n.depart) / float64(n.arrive-n.depart)
	return n.from.Lerp(n.to, frac)
}

// Moving reports whether the terminal is in motion (not pausing) at time at.
func (n *Node) Moving(at time.Duration) bool {
	n.advanceTo(at)
	return at >= n.depart && at < n.arrive
}

// advanceTo rolls legs forward until the leg/pause containing at is current.
func (n *Node) advanceTo(at time.Duration) {
	if n.cfg.MaxSpeed <= 0 {
		return // static terminal: initial position is permanent
	}
	for at >= n.arrive+n.cfg.Pause {
		n.nextLeg()
	}
}

// nextLeg draws the next waypoint and speed and installs the new leg,
// departing when the current post-arrival pause ends.
func (n *Node) nextLeg() {
	n.from = n.to
	n.depart = n.arrive + n.cfg.Pause
	n.to = geom.Point{
		X: n.rng.Float64() * n.cfg.Field.Width,
		Y: n.rng.Float64() * n.cfg.Field.Height,
	}
	speed := n.rng.Float64() * n.cfg.MaxSpeed
	if speed < minLegSpeed {
		speed = minLegSpeed
	}
	dist := n.from.DistanceTo(n.to)
	n.arrive = n.depart + time.Duration(dist/speed*float64(time.Second))
}

// PositionStableUntil reports the next leg/pause boundary: the first
// virtual instant after at when Position may return something different
// from Position(at). While pausing that is the departure time of the next
// leg; while moving the position changes continuously, so it is at
// itself; a static terminal is stable forever. Caching layers (the
// channel snapshot) use this to know exactly when a memoized position
// goes stale instead of guessing. Like Position, queries must be
// non-decreasing in time.
func (n *Node) PositionStableUntil(at time.Duration) time.Duration {
	if n.cfg.MaxSpeed <= 0 {
		return StableForever
	}
	n.advanceTo(at)
	switch {
	case at < n.depart:
		return n.depart // pausing ahead of the current leg
	case at >= n.arrive:
		return n.arrive + n.cfg.Pause // pausing at the waypoint
	default:
		return at // in motion: stale immediately
	}
}

// PositionStable reports the terminal's location at at together with its
// staleness boundary — the fused form of Position plus
// PositionStableUntil, advancing the trajectory once instead of twice.
// The two results are exactly those of the split calls; the channel
// snapshot prefers this entry point on its cache misses. Queries must be
// non-decreasing in time, like Position.
func (n *Node) PositionStable(at time.Duration) (geom.Point, time.Duration) {
	if n.cfg.MaxSpeed <= 0 {
		if at < 0 {
			panic(fmt.Sprintf("mobility: query at negative time %v", at))
		}
		return n.to, StableForever // static: the start point, permanently
	}
	n.advanceTo(at)
	switch {
	case at < n.depart:
		if at < 0 {
			panic(fmt.Sprintf("mobility: query at negative time %v", at))
		}
		return n.from, n.depart // parked ahead of the current leg
	case at >= n.arrive:
		return n.to, n.arrive + n.cfg.Pause // pausing at the waypoint
	default:
		frac := float64(at-n.depart) / float64(n.arrive-n.depart)
		return n.from.Lerp(n.to, frac), at // in motion: stale immediately
	}
}

// SpeedStable reports the terminal's instantaneous speed at at together
// with the first instant it may change. Waypoint motion is piecewise
// constant in speed — zero through a pause, the leg's drawn speed while
// moving — so the result stays exact until the returned boundary, which
// lets the channel snapshot keep speeds cached across virtual instants.
// The speed equals Speed(at) exactly. Queries must be non-decreasing in
// time.
func (n *Node) SpeedStable(at time.Duration) (float64, time.Duration) {
	if n.cfg.MaxSpeed <= 0 {
		return 0, StableForever
	}
	n.advanceTo(at)
	switch {
	case at < n.depart:
		return 0, n.depart
	case at >= n.arrive:
		return 0, n.arrive + n.cfg.Pause
	default:
		dist := n.from.DistanceTo(n.to)
		return dist / (float64(n.arrive-n.depart) / float64(time.Second)), n.arrive
	}
}

// SpeedLimit reports a hard upper bound on the terminal's instantaneous
// speed over its whole trajectory: per-leg speeds are drawn in
// (0, MaxSpeed], floored at the minimum leg speed. The channel snapshot
// layer uses it to bound position drift against a stale spatial index.
func (n *Node) SpeedLimit() float64 {
	if n.cfg.MaxSpeed <= 0 {
		return 0
	}
	return math.Max(n.cfg.MaxSpeed, minLegSpeed)
}

// Speed reports the terminal's instantaneous speed in m/s at time at
// (zero while pausing).
func (n *Node) Speed(at time.Duration) float64 {
	if !n.Moving(at) {
		return 0
	}
	dist := n.from.DistanceTo(n.to)
	return dist / (float64(n.arrive-n.depart) / float64(time.Second))
}

// KmhToMs converts km/h (the unit the paper's figures use) to m/s.
func KmhToMs(kmh float64) float64 { return kmh / 3.6 }

// MsToKmh converts m/s to km/h.
func MsToKmh(ms float64) float64 { return ms * 3.6 }

// LegState is the serializable state of a trajectory: the current leg's
// endpoints and times. Together with the node's RNG stream state it
// pins the entire future of the trajectory, and checkpoint verification
// compares it across processes.
type LegState struct {
	FromX, FromY   float64
	ToX, ToY       float64
	Depart, Arrive time.Duration
}

// ExportLeg observes the current leg without advancing the trajectory
// (unlike Position, it never rolls legs forward, so capturing state is
// guaranteed not to consume RNG draws).
func (n *Node) ExportLeg() LegState {
	return LegState{
		FromX: n.from.X, FromY: n.from.Y,
		ToX: n.to.X, ToY: n.to.Y,
		Depart: n.depart, Arrive: n.arrive,
	}
}
