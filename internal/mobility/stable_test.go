package mobility

import (
	"math/rand"
	"testing"
	"time"
)

func TestStableUntilStaticForever(t *testing.T) {
	n := NewNode(testCfg(0), rand.New(rand.NewSource(1)))
	if got := n.PositionStableUntil(time.Hour); got != StableForever {
		t.Fatalf("static node stable until %v, want forever", got)
	}
}

// TestStableUntilIsExact: over a long trajectory, the position at any
// instant strictly before the reported boundary equals the position at the
// query instant, and while moving the boundary is the instant itself.
func TestStableUntilIsExact(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		n := NewNode(testCfg(15), rand.New(rand.NewSource(seed)))
		probe := NewNode(testCfg(15), rand.New(rand.NewSource(seed))) // twin for lookahead
		for at := time.Duration(0); at < 5*time.Minute; at += 173 * time.Millisecond {
			until := n.PositionStableUntil(at)
			p := n.Position(at)
			if n.Moving(at) {
				if until != at {
					t.Fatalf("seed %d: moving at %v but stable until %v", seed, at, until)
				}
				continue
			}
			if until <= at {
				t.Fatalf("seed %d: paused at %v but boundary %v not in the future", seed, at, until)
			}
			// The twin checks the promise without disturbing n's laziness.
			mid := at + (until-at)/2
			if q := probe.Position(mid); q != p {
				t.Fatalf("seed %d: position drifted inside stable window [%v, %v): %v -> %v",
					seed, at, until, p, q)
			}
		}
	}
}

// TestStableUntilPauseBoundary: immediately at the reported boundary of a
// pause, the node departs (Moving becomes true within one leg, unless the
// next waypoint draw is degenerate).
func TestStableUntilPauseBoundary(t *testing.T) {
	n := NewNode(testCfg(15), rand.New(rand.NewSource(3)))
	at := 500 * time.Millisecond // inside the initial pause [0, 3s)
	until := n.PositionStableUntil(at)
	if until != 3*time.Second {
		t.Fatalf("initial pause boundary = %v, want 3s", until)
	}
	if !n.Moving(until + time.Millisecond) {
		t.Fatalf("node still parked just after its pause boundary")
	}
}
