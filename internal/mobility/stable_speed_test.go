package mobility

import (
	"math/rand"
	"testing"
	"time"

	"rica/internal/geom"
)

// TestFusedQueriesMatchSplitQueries walks a trajectory and checks, at
// every step, that PositionStable and SpeedStable agree exactly with the
// split Position/PositionStableUntil/Speed calls on the same node (the
// calls are idempotent at one instant, so interleaving them is safe).
func TestFusedQueriesMatchSplitQueries(t *testing.T) {
	cfg := Config{Field: geom.Field{Width: 900, Height: 700}, MaxSpeed: 14, Pause: 2 * time.Second}
	for seed := int64(1); seed <= 5; seed++ {
		n := NewNode(cfg, rand.New(rand.NewSource(seed)))
		rng := rand.New(rand.NewSource(seed + 100))
		at := time.Duration(0)
		for k := 0; k < 3000; k++ {
			at += time.Duration(rng.Int63n(int64(300 * time.Millisecond)))
			wantPos := n.Position(at)
			wantUntil := n.PositionStableUntil(at)
			gotPos, gotUntil := n.PositionStable(at)
			if gotPos != wantPos || gotUntil != wantUntil {
				t.Fatalf("seed %d at %v: PositionStable = (%v, %v), split calls say (%v, %v)",
					seed, at, gotPos, gotUntil, wantPos, wantUntil)
			}
			wantSpeed := n.Speed(at)
			gotSpeed, until := n.SpeedStable(at)
			if gotSpeed != wantSpeed {
				t.Fatalf("seed %d at %v: SpeedStable = %v, Speed = %v", seed, at, gotSpeed, wantSpeed)
			}
			if until <= at {
				t.Fatalf("seed %d at %v: SpeedStable boundary %v not in the future", seed, at, until)
			}
		}
	}
}

// TestSpeedStableBoundaryIsExact asserts the contract the channel
// snapshot relies on: the speed reported at `at` stays the exact Speed
// answer for every instant before the returned boundary, and changes at
// (or after) it only.
func TestSpeedStableBoundaryIsExact(t *testing.T) {
	cfg := Config{Field: geom.Field{Width: 600, Height: 600}, MaxSpeed: 9, Pause: time.Second}
	n := NewNode(cfg, rand.New(rand.NewSource(11)))
	probe := NewNode(cfg, rand.New(rand.NewSource(11))) // identical twin for spot checks

	at := time.Duration(0)
	for k := 0; k < 200; k++ {
		v, until := n.SpeedStable(at)
		if until == StableForever {
			t.Fatal("mobile node claims eternal stability")
		}
		// Sample instants strictly inside [at, until): Speed must not move.
		span := until - at
		for _, frac := range []time.Duration{0, span / 3, span - 1} {
			if got := probe.Speed(at + frac); got != v {
				t.Fatalf("window [%v, %v): Speed(%v) = %v, SpeedStable said %v",
					at, until, at+frac, got, v)
			}
		}
		at = until
	}
}

// TestStaticNodeStableForever pins the degenerate MaxSpeed = 0 node.
func TestStaticNodeStableForever(t *testing.T) {
	n := NewNode(Config{Field: geom.Field{Width: 100, Height: 100}}, rand.New(rand.NewSource(3)))
	p, until := n.PositionStable(5 * time.Second)
	if until != StableForever {
		t.Fatalf("static position boundary = %v, want StableForever", until)
	}
	if p != n.Position(5*time.Second) {
		t.Fatal("static PositionStable disagrees with Position")
	}
	if v, u := n.SpeedStable(time.Hour); v != 0 || u != StableForever {
		t.Fatalf("static SpeedStable = (%v, %v), want (0, forever)", v, u)
	}
}
