package obs

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHandlerServesLiveView exercises both endpoints while writer
// goroutines hammer attached registries and cells attach/detach — the
// exact shape of a batch run with -statsaddr. Run under -race this is
// the concurrency proof for the whole live surface.
func TestHandlerServesLiveView(t *testing.T) {
	hub := NewHub()
	hub.PoolFunc = func() PoolStats { return PoolStats{Gets: 1, Releases: 1} }
	srv := httptest.NewServer(hub.Handler())
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r := NewRegistry()
				hub.Attach(r)
				for j := 0; j < 100; j++ {
					r.Inc(CEventsDispatched)
					r.GaugeAdd(GQueueDepth, 1)
					r.GaugeAdd(GQueueDepth, -1)
					r.Observe(HDelayNs, uint64(seed*1000+j))
					r.SetSimNow(time.Duration(j) * time.Millisecond)
				}
				hub.Detach(r)
			}
		}(w)
	}

	client := srv.Client()
	for i := 0; i < 25; i++ {
		resp, err := client.Get(srv.URL + "/stats.json")
		if err != nil {
			t.Fatalf("GET /stats.json: %v", err)
		}
		var snap Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decoding /stats.json: %v", err)
		}
		resp.Body.Close()
		if snap.Pool == nil || snap.Pool.Gets != 1 {
			t.Fatal("/stats.json missing pool stats")
		}

		resp, err = client.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading /metrics: %v", err)
		}
		text := string(body)
		for _, want := range []string{
			"rica_events_dispatched_total ",
			"rica_queue_depth ",
			"rica_sim_now_seconds ",
			"rica_delay_p50_ns ",
			"rica_pool_gets_total 1",
		} {
			if !strings.Contains(text, want) {
				t.Fatalf("/metrics missing %q in:\n%s", want, text)
			}
		}
	}
	close(stop)
	wg.Wait()

	// After all cells detached, the folded totals must be a multiple of
	// one cell's contribution and every observation must be accounted for.
	s := hub.Snapshot()
	if s.EventsDispatched == 0 || s.EventsDispatched%100 != 0 {
		t.Fatalf("folded events = %d, want positive multiple of 100", s.EventsDispatched)
	}
	if s.DelayCount != s.EventsDispatched {
		t.Fatalf("folded delay count %d != events %d", s.DelayCount, s.EventsDispatched)
	}
	if s.QueueDepth != 0 {
		t.Fatalf("folded queue depth = %d, want 0", s.QueueDepth)
	}
}
