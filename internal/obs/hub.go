// The Hub is the live aggregate view: a process holds one hub, attaches
// each running world's registry to it, and the heartbeat/HTTP surfaces
// snapshot the hub instead of any single run. Detaching folds a
// registry's final totals into the hub so completed batch cells keep
// counting toward the aggregate.

package obs

import (
	"fmt"
	"io"
	"sync"
)

// Hub aggregates registries for the live surfaces. The zero value is not
// usable; construct with NewHub. All methods are safe for concurrent use.
type Hub struct {
	// PoolFunc, when non-nil, supplies the process-global pooled-packet
	// stats attached to snapshots. Set it before serving; it is read
	// without the lock.
	PoolFunc func() PoolStats

	// ShardFunc, when non-nil, supplies the process-global sharded-engine
	// stats (fan-out count, wall time stalled at the epoch barrier).
	// Same contract as PoolFunc: set before serving, read without the
	// lock, process-scoped surfaces only.
	ShardFunc func() ShardStats

	mu     sync.Mutex
	active map[*Registry]struct{}
	done   fold // totals folded in from detached registries
}

// NewHub builds an empty hub.
func NewHub() *Hub {
	return &Hub{active: make(map[*Registry]struct{})}
}

// Attach registers a running world's registry with the live view. Safe
// on a nil hub (standalone runs that never asked for live surfaces).
func (h *Hub) Attach(r *Registry) {
	if h == nil || r == nil {
		return
	}
	h.mu.Lock()
	h.active[r] = struct{}{}
	h.mu.Unlock()
}

// Detach removes a registry, folding its final totals into the hub's
// running aggregate. Safe on a nil hub.
func (h *Hub) Detach(r *Registry) {
	if h == nil || r == nil {
		return
	}
	h.mu.Lock()
	if _, ok := h.active[r]; ok {
		delete(h.active, r)
		h.done.absorb(r)
	}
	h.mu.Unlock()
}

// collect folds the finished totals with every active registry.
func (h *Hub) collect() fold {
	h.mu.Lock()
	f := h.done
	for r := range h.active {
		f.absorb(r)
	}
	h.mu.Unlock()
	return f
}

// Snapshot captures the aggregate view, including pool stats when a
// PoolFunc is installed.
func (h *Hub) Snapshot() Snapshot {
	if h == nil {
		return Snapshot{}
	}
	f := h.collect()
	s := f.snapshot()
	if h.PoolFunc != nil {
		p := h.PoolFunc()
		s.Pool = &p
	}
	if h.ShardFunc != nil {
		sh := h.ShardFunc()
		s.Shard = &sh
	}
	return s
}

// WriteProm writes the aggregate in Prometheus text exposition format
// (counters as *_total, gauges bare), in fixed slot order.
func (h *Hub) WriteProm(w io.Writer) error {
	if h == nil {
		return nil
	}
	f := h.collect()
	for c := Counter(0); c < NumCounters; c++ {
		if _, err := fmt.Fprintf(w, "rica_%s_total %d\n", counterNames[c], f.c[c]); err != nil {
			return err
		}
	}
	for g := Gauge(0); g < NumGauges; g++ {
		if _, err := fmt.Fprintf(w, "rica_%s %d\n", gaugeNames[g], f.g[g]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "rica_sim_now_seconds %g\n", float64(f.simNow)/1e9); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "rica_delay_count %d\nrica_delay_p50_ns %d\nrica_delay_p95_ns %d\n",
		f.delayCount, f.quantile(0.50), f.quantile(0.95)); err != nil {
		return err
	}
	if h.PoolFunc != nil {
		p := h.PoolFunc()
		_, err := fmt.Fprintf(w,
			"rica_pool_gets_total %d\nrica_pool_releases_total %d\nrica_pool_live %d\nrica_pool_high_water %d\n",
			p.Gets, p.Releases, p.Live, p.HighWater)
		if err != nil {
			return err
		}
	}
	if h.ShardFunc != nil {
		sh := h.ShardFunc()
		_, err := fmt.Fprintf(w,
			"rica_shard_pool_fanouts_total %d\nrica_shard_pool_stall_seconds %g\n",
			sh.Fanouts, float64(sh.StallNs)/1e9)
		if err != nil {
			return err
		}
	}
	return nil
}
