// Package obs is the simulator's zero-allocation runtime observability
// core: a fixed-slot registry of atomic counters, gauges, and log-bucketed
// streaming histograms that every hot subsystem records into without
// allocating and without perturbing determinism. Counters never consult a
// RNG and never change event order — they are write-only from the single
// simulation goroutine and read concurrently (hence the atomics) by the
// live surfaces: the CLI heartbeat, the HTTP stats endpoint, and the
// batch progress reporter.
//
// All record methods are nil-receiver safe, so a component wired without
// a registry (the sim.Kernel zero value, a standalone channel model) pays
// only a predictable branch.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter identifies one fixed counter slot. Slots are registered here,
// at compile time, rather than by name at runtime: the hot-path record is
// an array index plus an atomic add, with no map, no interning, and no
// allocation.
type Counter int

// The counter slots, grouped by owning subsystem.
const (
	// Kernel: the discrete-event core.
	CEventsDispatched Counter = iota // handlers actually run
	CEventsScheduled                 // timers enqueued
	CTimersCancelled                 // timers annulled before firing
	CQueueCompactions                // ladder scrubs of cancelled entries
	CLadderFarPushes                 // events past the ladder horizon (far heap)
	// Channel fast path: the PR 5 caches.
	CClassHits     // per-instant pair class answered from cache
	CClassMisses   // pair class derived from fading + quantizer
	CDistHits      // pair distance answered from cache
	CDistMisses    // pair distance recomputed from positions
	CTransHits     // AR(1) coefficient pair answered from trans cache
	CTransMisses   // AR(1) coefficients recomputed (exp/sqrt)
	CGridRebuilds  // spatial index rebuilt for a new instant
	CAnnulusChecks // stale-grid candidates resolved by exact distance
	// MAC.
	CMACBackoffs   // common-channel sends deferred by carrier sense
	CMACCollisions // receptions suppressed by collision
	// Sharded engine (PR 7). All three are deterministic per run: they
	// count decisions of the deterministic fan-out gate, not scheduling.
	CShardFanouts   // broadcast completions scanned across the shard pool
	CShardBoundary  // fan-outs whose centre disks spanned more than one stripe
	CShardFallbacks // completions below the fan-out grain, handled serially
	// Routing.
	CFloodSuppressed // flood copies dropped as duplicate/non-improving
	CHistorySpills   // history entries too wide for the packed table
	CSPTRecomputes   // link-state shortest-path tree rebuilds
	// Traffic and end-of-run accounting.
	CTrafficGenerated // data packets originated by the workload
	CGossipInfections // gossip rumor infections (first receipt per terminal × rumor)
	CDrainReleased    // pooled packets freed by the end-of-run drain
	CDrainData        // the data-packet subset of CDrainReleased (in flight at the horizon)
	// Adversarial tier (PR 8).
	CAdversaryDrops // transit data packets discarded by byzantine droppers
	CJamTransmitted // adversarial noise bursts put on the common channel

	// NumCounters sizes the registry; it is not a valid slot.
	NumCounters
)

// Gauge identifies one fixed signed gauge slot.
type Gauge int

// The gauge slots.
const (
	// GQueueDepth is the kernel's live timer count (scheduled − fired −
	// cancelled).
	GQueueDepth Gauge = iota

	// NumGauges sizes the registry; it is not a valid slot.
	NumGauges
)

// Hist identifies one fixed histogram slot.
type Hist int

// The histogram slots.
const (
	// HDelayNs observes end-to-end data delivery delay in nanoseconds.
	HDelayNs Hist = iota

	// NumHists sizes the registry; it is not a valid slot.
	NumHists
)

// counterNames are the Prometheus-facing slot names, in slot order.
var counterNames = [NumCounters]string{
	CEventsDispatched: "events_dispatched",
	CEventsScheduled:  "events_scheduled",
	CTimersCancelled:  "timers_cancelled",
	CQueueCompactions: "queue_compactions",
	CLadderFarPushes:  "ladder_far_pushes",
	CClassHits:        "chan_class_hits",
	CClassMisses:      "chan_class_misses",
	CDistHits:         "chan_dist_hits",
	CDistMisses:       "chan_dist_misses",
	CTransHits:        "chan_trans_hits",
	CTransMisses:      "chan_trans_misses",
	CGridRebuilds:     "chan_grid_rebuilds",
	CAnnulusChecks:    "chan_annulus_checks",
	CMACBackoffs:      "mac_backoffs",
	CMACCollisions:    "mac_collisions",
	CShardFanouts:     "shard_fanouts",
	CShardBoundary:    "shard_boundary_events",
	CShardFallbacks:   "shard_serial_fallbacks",
	CFloodSuppressed:  "route_flood_suppressed",
	CHistorySpills:    "route_history_spills",
	CSPTRecomputes:    "route_spt_recomputes",
	CTrafficGenerated: "traffic_generated",
	CGossipInfections: "gossip_infections",
	CDrainReleased:    "drain_released",
	CDrainData:        "drain_data_released",
	CAdversaryDrops:   "adversary_drops",
	CJamTransmitted:   "mac_jam_transmitted",
}

// gaugeNames are the Prometheus-facing gauge names, in slot order.
var gaugeNames = [NumGauges]string{
	GQueueDepth: "queue_depth",
}

// Registry is one simulation run's observability state: every slot is
// fixed at construction, every record is an atomic on a preallocated
// array. One registry per world keeps parallel batch cells off each
// other's cache lines; a Hub folds them for the live aggregate view.
type Registry struct {
	counters [NumCounters]atomic.Uint64
	gauges   [NumGauges]atomic.Int64
	hists    [NumHists]Histogram
	simNow   atomic.Int64
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Inc adds one to a counter. Safe on a nil registry.
func (r *Registry) Inc(c Counter) {
	if r == nil {
		return
	}
	r.counters[c].Add(1)
}

// Add adds n to a counter (wrapping modulo 2^64, like any uint64). Safe
// on a nil registry.
func (r *Registry) Add(c Counter, n uint64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// Counter reads a counter. A nil registry reads zero.
func (r *Registry) Counter(c Counter) uint64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// GaugeAdd moves a gauge by delta (which may be negative). Safe on a nil
// registry.
func (r *Registry) GaugeAdd(g Gauge, delta int64) {
	if r == nil {
		return
	}
	r.gauges[g].Add(delta)
}

// Gauge reads a gauge. A nil registry reads zero.
func (r *Registry) Gauge(g Gauge) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[g].Load()
}

// Observe records a value into a histogram. Safe on a nil registry.
func (r *Registry) Observe(h Hist, v uint64) {
	if r == nil {
		return
	}
	r.hists[h].Observe(v)
}

// Histogram exposes a histogram slot for direct reads (quantiles, count).
// A nil registry returns nil, whose methods are in turn nil-safe.
func (r *Registry) Histogram(h Hist) *Histogram {
	if r == nil {
		return nil
	}
	return &r.hists[h]
}

// SetSimNow publishes the simulation clock for concurrent readers. The
// kernel stores it on every dispatch. Safe on a nil registry.
func (r *Registry) SetSimNow(now time.Duration) {
	if r == nil {
		return
	}
	r.simNow.Store(int64(now))
}

// SimNow reads the last published simulation instant.
func (r *Registry) SimNow() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.simNow.Load())
}

// Snapshot captures the registry into the deterministic export form.
func (r *Registry) Snapshot() Snapshot {
	var f fold
	f.absorb(r)
	return f.snapshot()
}

// Histogram bucket geometry: values below histSmall are counted exactly;
// above, each power-of-two octave is split into histSub log-spaced
// sub-buckets, so the bucket midpoint is within 1/(2·histSub) ≈ 1.6 % of
// any value it covers. The layout is fixed-size for the full uint64
// range — no resizing, no allocation, ever.
const (
	histSmall   = 64
	histSub     = 32
	histBuckets = histSmall + (63-5)*histSub // max shift is 64-6 = 58 octaves
)

// bucketIdx maps a value to its bucket.
func bucketIdx(v uint64) int {
	if v < histSmall {
		return int(v)
	}
	shift := bits.Len64(v) - 6 // ≥ 1 here
	return histSmall + (shift-1)*histSub + int(v>>uint(shift)) - histSub
}

// bucketMid is the representative (midpoint) value of a bucket.
func bucketMid(idx int) uint64 {
	if idx < histSmall {
		return uint64(idx)
	}
	shift := (idx-histSmall)/histSub + 1
	sub := (idx - histSmall) % histSub
	lo := uint64(histSub+sub) << uint(shift)
	return lo + uint64(1)<<uint(shift)/2
}

// Histogram is a fixed-size log-bucketed streaming histogram. Observes
// are one atomic add; quantiles are a scan over the bucket array. All
// methods are nil-receiver safe.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count reports how many values were observed.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum reports the running total of observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile approximates the q-th quantile (0 ≤ q ≤ 1) using the same
// nearest-rank convention as the exact timeseries path, returning the
// midpoint of the bucket holding that rank. Zero when empty. The
// midpoint is within 1/(2·histSub) ≈ 1.6 % of every sample the bucket
// absorbed, so the approximation differs from the exact nearest-rank
// sample by at most ~3.2 % relative (two midpoint half-widths) plus any
// rank ties.
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(q*float64(n-1) + 0.5) // nearest rank, 0-based
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum > rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// Reset zeroes the histogram for reuse (the streaming timeseries path
// recycles one histogram across intervals instead of retaining samples).
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// PoolStats is the process-global pooled-packet accounting. It is
// process-wide, not per-run: parallel batch cells share one pool, so
// these numbers belong on the live surfaces and the CLI's single-run
// snapshot, never inside a per-cell deterministic export.
type PoolStats struct {
	Gets      uint64 `json:"gets"`
	Releases  uint64 `json:"releases"`
	Live      int64  `json:"live"`
	HighWater int64  `json:"high_water"`
}

// ShardStats is the process-global sharded-engine accounting: fan-out
// count plus the wall time the simulation goroutine spent blocked at the
// epoch barrier. Wall time is scheduling noise, so like PoolStats these
// numbers belong on the live surfaces and the CLI's process snapshot,
// never inside a per-cell deterministic export (the per-run shard
// counters — fanouts, boundary events, grain fallbacks — are the
// deterministic ones and live in the registry).
type ShardStats struct {
	Fanouts uint64 `json:"fanouts"`
	StallNs uint64 `json:"stall_ns"`
}

// Snapshot is the deterministic export form: fixed fields only — no
// maps, no reflection-ordered output — so embedding it in batch results
// or BENCH JSON never introduces run-to-run noise. Pool is the one
// exception (process-global, see PoolStats) and is attached only by
// process-level surfaces.
type Snapshot struct {
	SimNowNs int64 `json:"sim_now_ns"`

	EventsDispatched uint64 `json:"events_dispatched"`
	EventsScheduled  uint64 `json:"events_scheduled"`
	TimersCancelled  uint64 `json:"timers_cancelled"`
	QueueCompactions uint64 `json:"queue_compactions"`
	LadderFarPushes  uint64 `json:"ladder_far_pushes"`

	ClassHits     uint64 `json:"chan_class_hits"`
	ClassMisses   uint64 `json:"chan_class_misses"`
	DistHits      uint64 `json:"chan_dist_hits"`
	DistMisses    uint64 `json:"chan_dist_misses"`
	TransHits     uint64 `json:"chan_trans_hits"`
	TransMisses   uint64 `json:"chan_trans_misses"`
	GridRebuilds  uint64 `json:"chan_grid_rebuilds"`
	AnnulusChecks uint64 `json:"chan_annulus_checks"`

	MACBackoffs   uint64 `json:"mac_backoffs"`
	MACCollisions uint64 `json:"mac_collisions"`

	ShardFanouts   uint64 `json:"shard_fanouts"`
	ShardBoundary  uint64 `json:"shard_boundary_events"`
	ShardFallbacks uint64 `json:"shard_serial_fallbacks"`

	FloodSuppressed uint64 `json:"route_flood_suppressed"`
	HistorySpills   uint64 `json:"route_history_spills"`
	SPTRecomputes   uint64 `json:"route_spt_recomputes"`

	TrafficGenerated uint64 `json:"traffic_generated"`
	GossipInfections uint64 `json:"gossip_infections"`
	DrainReleased    uint64 `json:"drain_released"`
	DrainData        uint64 `json:"drain_data_released"`
	AdversaryDrops   uint64 `json:"adversary_drops"`
	JamTransmitted   uint64 `json:"mac_jam_transmitted"`

	QueueDepth int64 `json:"queue_depth"`

	DelayCount uint64 `json:"delay_count"`
	DelayP50Ns uint64 `json:"delay_p50_ns"`
	DelayP95Ns uint64 `json:"delay_p95_ns"`

	Pool  *PoolStats  `json:"pool,omitempty"`
	Shard *ShardStats `json:"shard,omitempty"`
}

// counter maps a slot to the snapshot's field, in slot order.
func (s *Snapshot) counter(c Counter) *uint64 {
	switch c {
	case CEventsDispatched:
		return &s.EventsDispatched
	case CEventsScheduled:
		return &s.EventsScheduled
	case CTimersCancelled:
		return &s.TimersCancelled
	case CQueueCompactions:
		return &s.QueueCompactions
	case CLadderFarPushes:
		return &s.LadderFarPushes
	case CClassHits:
		return &s.ClassHits
	case CClassMisses:
		return &s.ClassMisses
	case CDistHits:
		return &s.DistHits
	case CDistMisses:
		return &s.DistMisses
	case CTransHits:
		return &s.TransHits
	case CTransMisses:
		return &s.TransMisses
	case CGridRebuilds:
		return &s.GridRebuilds
	case CAnnulusChecks:
		return &s.AnnulusChecks
	case CMACBackoffs:
		return &s.MACBackoffs
	case CMACCollisions:
		return &s.MACCollisions
	case CShardFanouts:
		return &s.ShardFanouts
	case CShardBoundary:
		return &s.ShardBoundary
	case CShardFallbacks:
		return &s.ShardFallbacks
	case CFloodSuppressed:
		return &s.FloodSuppressed
	case CHistorySpills:
		return &s.HistorySpills
	case CSPTRecomputes:
		return &s.SPTRecomputes
	case CTrafficGenerated:
		return &s.TrafficGenerated
	case CGossipInfections:
		return &s.GossipInfections
	case CDrainReleased:
		return &s.DrainReleased
	case CDrainData:
		return &s.DrainData
	case CAdversaryDrops:
		return &s.AdversaryDrops
	case CJamTransmitted:
		return &s.JamTransmitted
	}
	panic("obs: unknown counter slot")
}

// fold is the summation form shared by Registry.Snapshot and the Hub:
// plain arrays a single reader accumulates registries into.
type fold struct {
	c          [NumCounters]uint64
	g          [NumGauges]int64
	delay      [histBuckets]uint64
	delayCount uint64
	simNow     int64 // max across registries
}

// absorb adds one registry's current state into the fold.
func (f *fold) absorb(r *Registry) {
	if r == nil {
		return
	}
	for i := range f.c {
		f.c[i] += r.counters[i].Load()
	}
	for i := range f.g {
		f.g[i] += r.gauges[i].Load()
	}
	h := &r.hists[HDelayNs]
	for i := range f.delay {
		f.delay[i] += h.buckets[i].Load()
	}
	f.delayCount += h.count.Load()
	if now := r.simNow.Load(); now > f.simNow {
		f.simNow = now
	}
}

// quantile is Histogram.Quantile over the folded delay buckets.
func (f *fold) quantile(q float64) uint64 {
	if f.delayCount == 0 {
		return 0
	}
	rank := uint64(q*float64(f.delayCount-1) + 0.5)
	var cum uint64
	for i := range f.delay {
		cum += f.delay[i]
		if cum > rank {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// snapshot converts the fold into the export form.
func (f *fold) snapshot() Snapshot {
	var s Snapshot
	s.SimNowNs = f.simNow
	for c := Counter(0); c < NumCounters; c++ {
		*s.counter(c) = f.c[c]
	}
	s.QueueDepth = f.g[GQueueDepth]
	s.DelayCount = f.delayCount
	s.DelayP50Ns = f.quantile(0.50)
	s.DelayP95Ns = f.quantile(0.95)
	return s
}
