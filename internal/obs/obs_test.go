package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestNilRegistrySafe: every record and read method must be a no-op on a
// nil registry — that is the contract that lets subsystems skip nil
// checks on their hot paths.
func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Inc(CEventsDispatched)
	r.Add(CEventsDispatched, 10)
	r.GaugeAdd(GQueueDepth, -5)
	r.Observe(HDelayNs, 123)
	r.SetSimNow(time.Second)
	if r.Counter(CEventsDispatched) != 0 || r.Gauge(GQueueDepth) != 0 || r.SimNow() != 0 {
		t.Fatal("nil registry must read zero")
	}
	if h := r.Histogram(HDelayNs); h != nil {
		t.Fatal("nil registry must expose a nil histogram")
	}
	var h *Histogram
	h.Observe(7)
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must read zero")
	}
	s := r.Snapshot()
	if s.EventsDispatched != 0 {
		t.Fatal("nil registry snapshot must be zero")
	}
}

// TestCounterOverflowWraps: counters are plain uint64s — adding past the
// maximum wraps modulo 2^64 rather than saturating or panicking.
func TestCounterOverflowWraps(t *testing.T) {
	r := NewRegistry()
	r.Add(CTrafficGenerated, math.MaxUint64)
	r.Inc(CTrafficGenerated)
	if got := r.Counter(CTrafficGenerated); got != 0 {
		t.Fatalf("MaxUint64+1 = %d, want wrap to 0", got)
	}
	r.Add(CTrafficGenerated, 41)
	r.Inc(CTrafficGenerated)
	if got := r.Counter(CTrafficGenerated); got != 42 {
		t.Fatalf("post-wrap count = %d, want 42", got)
	}
}

// TestGaugeGoesNegative: gauges are signed; transient dips below zero
// (e.g. a cancel observed before its schedule on a fresh registry) must
// be representable, not clamped.
func TestGaugeGoesNegative(t *testing.T) {
	r := NewRegistry()
	r.GaugeAdd(GQueueDepth, -3)
	if got := r.Gauge(GQueueDepth); got != -3 {
		t.Fatalf("gauge = %d, want -3", got)
	}
	r.GaugeAdd(GQueueDepth, 5)
	if got := r.Gauge(GQueueDepth); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	s := r.Snapshot()
	if s.QueueDepth != 2 {
		t.Fatalf("snapshot queue depth = %d, want 2", s.QueueDepth)
	}
}

// TestBucketIdxMonotone: the bucket index must be monotone in the value
// and every bucket's midpoint must land back in the same bucket.
func TestBucketIdxMonotone(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 63, 64, 65, 127, 128, 1 << 20, 1<<20 + 3,
		1 << 40, math.MaxUint64/2 + 1, math.MaxUint64} {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIdx(%d) = %d out of range", v, idx)
		}
		prev = idx
	}
	for idx := 0; idx < histBuckets; idx += 7 {
		mid := bucketMid(idx)
		if got := bucketIdx(mid); got != idx {
			t.Fatalf("bucketMid(%d) = %d maps back to bucket %d", idx, mid, got)
		}
	}
}

// TestHistogramQuantileError: against random samples, the histogram
// quantile must stay within the documented relative error of the exact
// nearest-rank quantile (small values are exact; large ones within
// ~1/(2·histSub) per midpoint half-width, doubled for rank ties at
// bucket boundaries, plus slack for adjacent-rank straddles).
func TestHistogramQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 100 + rng.Intn(5000)
		samples := make([]uint64, n)
		for i := range samples {
			// Log-uniform spread over ~9 decades, the shape of delay data.
			v := uint64(math.Exp(rng.Float64() * 20))
			samples[i] = v
			h.Observe(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range []float64{0, 0.25, 0.50, 0.95, 0.99, 1} {
			exact := samples[int(q*float64(n-1)+0.5)]
			approx := h.Quantile(q)
			if exact < histSmall {
				if approx != exact {
					t.Fatalf("q=%g small-value quantile = %d, want exact %d", q, approx, exact)
				}
				continue
			}
			relErr := math.Abs(float64(approx)-float64(exact)) / float64(exact)
			if relErr > 0.04 {
				t.Fatalf("trial %d q=%g: approx %d vs exact %d (rel err %.4f > 0.04)",
					trial, q, approx, exact, relErr)
			}
		}
	}
}

// TestHistogramCountSumReset exercises the bookkeeping around Observe.
func TestHistogramCountSumReset(t *testing.T) {
	var h Histogram
	h.Observe(10)
	h.Observe(20)
	if h.Count() != 2 || h.Sum() != 30 {
		t.Fatalf("count/sum = %d/%d, want 2/30", h.Count(), h.Sum())
	}
	h.Reset()
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("reset histogram must read zero")
	}
}

// TestSnapshotMapsEverySlot: the snapshot's explicit fields must cover
// every counter slot — a new counter without a snapshot field would
// silently vanish from exports.
func TestSnapshotMapsEverySlot(t *testing.T) {
	r := NewRegistry()
	for c := Counter(0); c < NumCounters; c++ {
		r.Add(c, uint64(c)+1)
	}
	s := r.Snapshot()
	for c := Counter(0); c < NumCounters; c++ {
		if got := *s.counter(c); got != uint64(c)+1 {
			t.Fatalf("snapshot field for %s = %d, want %d", counterNames[c], got, uint64(c)+1)
		}
	}
}

// TestHubFoldsDetached: a detached registry's totals must keep counting
// toward the hub aggregate, and active registries are read live.
func TestHubFoldsDetached(t *testing.T) {
	h := NewHub()
	a, b := NewRegistry(), NewRegistry()
	h.Attach(a)
	h.Attach(b)
	a.Add(CEventsDispatched, 10)
	b.Add(CEventsDispatched, 5)
	a.SetSimNow(3 * time.Second)
	b.SetSimNow(2 * time.Second)
	if s := h.Snapshot(); s.EventsDispatched != 15 || s.SimNowNs != int64(3*time.Second) {
		t.Fatalf("live aggregate = %d events @%dns, want 15 @3s", s.EventsDispatched, s.SimNowNs)
	}
	h.Detach(a)
	a.Add(CEventsDispatched, 100) // after detach: frozen totals, not live
	b.Add(CEventsDispatched, 1)
	if s := h.Snapshot(); s.EventsDispatched != 16 {
		t.Fatalf("post-detach aggregate = %d, want 16", s.EventsDispatched)
	}
	h.Detach(a) // double-detach must not re-fold
	if s := h.Snapshot(); s.EventsDispatched != 16 {
		t.Fatal("double detach re-folded the registry")
	}
	if s := h.Snapshot(); s.Pool != nil {
		t.Fatal("no PoolFunc: snapshot must omit pool stats")
	}
	h.PoolFunc = func() PoolStats { return PoolStats{Gets: 7, Live: 2} }
	if s := h.Snapshot(); s.Pool == nil || s.Pool.Gets != 7 {
		t.Fatal("PoolFunc stats missing from snapshot")
	}
}

// TestRecordPathsDoNotAllocate is the package-level half of the repo's
// allocs/op gate: every hot-path record must be allocation-free.
func TestRecordPathsDoNotAllocate(t *testing.T) {
	r := NewRegistry()
	if n := testing.AllocsPerRun(1000, func() {
		r.Inc(CEventsDispatched)
		r.Add(CClassHits, 3)
		r.GaugeAdd(GQueueDepth, 1)
		r.GaugeAdd(GQueueDepth, -1)
		r.Observe(HDelayNs, 1234567)
		r.SetSimNow(42 * time.Millisecond)
	}); n != 0 {
		t.Fatalf("record paths allocate %.1f allocs/op, want 0", n)
	}
	var nilReg *Registry
	if n := testing.AllocsPerRun(1000, func() {
		nilReg.Inc(CEventsDispatched)
		nilReg.Observe(HDelayNs, 1)
	}); n != 0 {
		t.Fatalf("nil-registry paths allocate %.1f allocs/op, want 0", n)
	}
}
