// HTTP surfaces: a JSON snapshot at /stats.json and Prometheus text
// exposition at /metrics, both served from the hub's live aggregate.

package obs

import (
	"encoding/json"
	"net/http"
)

// Handler serves the hub's live view: GET /stats.json (deterministic
// JSON snapshot) and GET /metrics (Prometheus text exposition).
func (h *Hub) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(h.Snapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = h.WriteProm(w)
	})
	return mux
}
