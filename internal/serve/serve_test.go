package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// The fake-worker harness: the test binary re-execs itself with
// RICASIM_FAKE_WORKER set and plays a scripted worker — crash mid-grid,
// hang with a frozen heartbeat, panic, drain on SIGTERM — so the
// supervisor's healing paths are exercised without simulating anything.
// The real-binary integration (chaos, byte-equality) lives in
// cmd/ricasim's tests.

func TestMain(m *testing.M) {
	if mode := os.Getenv("RICASIM_FAKE_WORKER"); mode != "" {
		os.Exit(fakeWorker(mode, os.Getenv("RICASIM_FAKE_DIR")))
	}
	os.Exit(m.Run())
}

func fakeWorker(mode, dir string) int {
	say := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	writeResult := func() {
		payload := fmt.Sprintf(`{"results":[{"scenario":"chain-10","protocol":"rica","seed":1,"mode":%q}]}`, mode)
		_ = os.WriteFile(filepath.Join(dir, workerResult), []byte(payload), 0o644)
	}
	finish := func(restored int) int {
		if restored > 0 {
			say("manifest: restored %d of 2 cells from %s", restored, filepath.Join(dir, workerManifest))
		}
		say("[2/2] chain-10/rica seed=2 delivery=99.0%%")
		writeResult()
		return 0
	}
	marker := filepath.Join(dir, "attempted")
	firstAttempt := true
	if _, err := os.Stat(marker); err == nil {
		firstAttempt = false
	} else {
		_ = os.WriteFile(marker, nil, 0o644)
	}

	switch mode {
	case "ok":
		say("stats: serving http://127.0.0.1:1/stats.json and http://127.0.0.1:1/metrics")
		say("[1/2] chain-10/rica seed=1 delivery=99.0%%")
		return finish(0)
	case "crash-then-ok":
		if firstAttempt {
			say("[1/2] chain-10/rica seed=1 delivery=99.0%%")
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable
		}
		return finish(1)
	case "hang-then-ok":
		if firstAttempt {
			// A frozen simulation with a healthy heartbeat goroutine:
			// the event counter never moves, so the supervisor must
			// declare a hang even though lines keep arriving.
			for {
				say("stats: sim=5s events=777 gen=10 dlv=9 p50=1ms queue=0")
				time.Sleep(5 * time.Millisecond)
			}
		}
		return finish(1)
	case "fail":
		say("ricasim: 2 poisoned cell(s) — quarantined, see their error/stack fields in the results")
		writeResult() // partial results are still journaled on exit 1
		return 1
	case "panic":
		say("panic: runtime error: index out of range [7] with length 5")
		say("goroutine 1 [running]:")
		return 2
	case "drain":
		if !firstAttempt {
			return finish(1) // the restarted daemon's attempt completes
		}
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGTERM)
		go func() {
			<-sigc
			say("ricasim: interrupted — flushing partial results")
			os.Exit(3)
		}()
		say("[1/2] chain-10/rica seed=1 delivery=99.0%%")
		for i := 0; ; i++ {
			say("stats: sim=%ds events=%d gen=1 dlv=1 p50=1ms queue=0", i, 100+i)
			time.Sleep(5 * time.Millisecond)
		}
	case "block":
		// Runs (with a live heartbeat) until the release file appears.
		for i := 0; ; i++ {
			if _, err := os.Stat(filepath.Join(dir, "release")); err == nil {
				return finish(0)
			}
			say("stats: sim=%ds events=%d gen=1 dlv=1 p50=1ms queue=0", i, 100+i)
			time.Sleep(5 * time.Millisecond)
		}
	}
	say("fake worker: unknown mode %q", mode)
	return 1
}

// newTestServer builds a started server whose workers are fake workers
// in the given mode, tuned for fast tests.
func newTestServer(t *testing.T, mode string, tune func(*Config)) *Server {
	t.Helper()
	cfg := Config{
		Dir:         t.TempDir(),
		MaxRestarts: 3,
		// Generous enough that a race-instrumented re-exec'd binary's
		// startup latency is never mistaken for a hang.
		HungTimeout: 2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Logf:        t.Logf,
		WorkerCommand: func(j *Job) *exec.Cmd {
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(),
				"RICASIM_FAKE_WORKER="+mode,
				"RICASIM_FAKE_DIR="+j.Dir)
			return cmd
		},
	}
	if tune != nil {
		tune(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	return s
}

func submitJob(t *testing.T, s *Server) Status {
	t.Helper()
	st, err := s.Submit(JobSpec{Scenarios: []string{"chain-10"}, Trials: 2, Protocols: []string{"RICA"}})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls a job until it reaches want or the deadline passes.
func waitState(t *testing.T, s *Server, id string, want State) Status {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		st := j.Snapshot()
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s is %s (%s), want %s", id, st.State, st.Reason, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobSpecValidation(t *testing.T) {
	cases := map[string]JobSpec{
		"empty":            {},
		"unknown scenario": {Scenarios: []string{"no-such-place"}},
		"unknown protocol": {Scenarios: []string{"chain-10"}, Protocols: []string{"ospf"}},
		"comma in name":    {Scenarios: []string{"chain-10,grid-8x8"}},
		"negative trials":  {Scenarios: []string{"chain-10"}, Trials: -1},
		"huge trials":      {Scenarios: []string{"chain-10"}, Trials: maxJobTrials + 1},
		"bad inline spec":  {Specs: []json.RawMessage{json.RawMessage(`{"name":""}`)}},
		"too many shards":  {Scenarios: []string{"chain-10"}, Shards: 11},
	}
	for name, spec := range cases {
		if _, _, err := spec.normalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	spec, total, err := JobSpec{Scenarios: []string{"chain-10", "grid-8x8"}}.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Trials != 3 || spec.Seed != 1 {
		t.Errorf("defaults not applied: trials=%d seed=%d", spec.Trials, spec.Seed)
	}
	if want := 2 * 5 * 3; total != want { // 2 scenarios × all 5 protocols × 3 trials
		t.Errorf("total = %d, want %d", total, want)
	}
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	s := newTestServer(t, "ok", nil)
	defer s.Shutdown()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"scenarios":["chain-10"],"protocols":["RICA"],"trials":2}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		t.Fatalf("submit: code %d, status %+v", resp.StatusCode, st)
	}

	final := waitState(t, s, st.ID, StateDone)
	if final.DoneCells != 2 {
		t.Errorf("done cells = %d, want 2", final.DoneCells)
	}

	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(filepath.Join(s.cfg.Dir, "jobs", st.ID, workerResult))
	var got bytes.Buffer
	_, _ = got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got.Bytes(), data) {
		t.Fatalf("result fetch: code %d, %d bytes vs %d on disk", resp.StatusCode, got.Len(), len(data))
	}

	resp, err = http.Get(ts.URL + "/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	events := got.String()
	got.Reset()
	_, _ = got.ReadFrom(resp.Body)
	resp.Body.Close()
	events = got.String()
	for _, want := range []string{`"queued"`, `"started"`, `"progress"`, `"done"`} {
		if !strings.Contains(events, want) {
			t.Errorf("event stream missing %s:\n%s", want, events)
		}
	}

	// Bad submissions are 400, not accepted.
	resp, err = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"scenarios":["nope"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: code %d, want 400", resp.StatusCode)
	}
}

// TestCrashHealing: a worker SIGKILL'd mid-grid is restarted and the
// retry resumes from the journal (the fake worker reports a restore).
func TestCrashHealing(t *testing.T) {
	s := newTestServer(t, "crash-then-ok", nil)
	defer s.Shutdown()
	st := submitJob(t, s)
	final := waitState(t, s, st.ID, StateDone)
	if final.Restarts != 1 || final.Attempts != 2 {
		t.Errorf("restarts=%d attempts=%d, want 1 and 2", final.Restarts, final.Attempts)
	}
	if final.Restored != 1 {
		t.Errorf("restored=%d, want 1 (journal resume)", final.Restored)
	}
}

// TestHangHealing: a worker whose heartbeat freezes (event counter
// stops moving, lines keep flowing) is killed and retried.
func TestHangHealing(t *testing.T) {
	s := newTestServer(t, "hang-then-ok", nil)
	defer s.Shutdown()
	st := submitJob(t, s)
	final := waitState(t, s, st.ID, StateDone)
	if final.Restarts != 1 {
		t.Errorf("restarts=%d, want 1", final.Restarts)
	}
	j, _ := s.Job(st.ID)
	events, _ := j.events.since(0)
	var hung bool
	for _, e := range events {
		hung = hung || e.Type == "hung"
	}
	if !hung {
		t.Error("no hung event recorded")
	}
}

// TestPanicQuarantined: exit code 2 is never retried.
func TestPanicQuarantined(t *testing.T) {
	s := newTestServer(t, "panic", nil)
	defer s.Shutdown()
	st := submitJob(t, s)
	final := waitState(t, s, st.ID, StateFailed)
	if final.Attempts != 1 || final.Restarts != 0 {
		t.Errorf("attempts=%d restarts=%d, want 1 and 0 (panics are not retried)", final.Attempts, final.Restarts)
	}
	if !strings.Contains(final.Reason, "panic") {
		t.Errorf("reason %q does not mention the panic", final.Reason)
	}
}

// TestCleanFailureNotRetried: exit code 1 (poisoned cells) is a
// permanent verdict, and the partial result stays fetchable.
func TestCleanFailureNotRetried(t *testing.T) {
	s := newTestServer(t, "fail", nil)
	defer s.Shutdown()
	st := submitJob(t, s)
	final := waitState(t, s, st.ID, StateFailed)
	if final.Attempts != 1 {
		t.Errorf("attempts=%d, want 1", final.Attempts)
	}
	if _, err := os.Stat(filepath.Join(s.cfg.Dir, "jobs", st.ID, workerResult)); err != nil {
		t.Errorf("partial result missing: %v", err)
	}
}

// TestRestartBudget: endless crashing exhausts MaxRestarts and fails.
func TestRestartBudget(t *testing.T) {
	s := newTestServer(t, "panic", func(c *Config) {
		c.MaxRestarts = 2
		// Reuse the crash worker but delete its marker so every attempt
		// crashes; simplest is a command that always kills itself.
		c.WorkerCommand = func(j *Job) *exec.Cmd {
			_ = os.Remove(filepath.Join(j.Dir, "attempted"))
			cmd := exec.Command(os.Args[0])
			cmd.Env = append(os.Environ(),
				"RICASIM_FAKE_WORKER=crash-then-ok",
				"RICASIM_FAKE_DIR="+j.Dir)
			return cmd
		}
	})
	defer s.Shutdown()
	st := submitJob(t, s)
	final := waitState(t, s, st.ID, StateFailed)
	if final.Restarts != 2 {
		t.Errorf("restarts=%d, want 2 (the budget)", final.Restarts)
	}
	if !strings.Contains(final.Reason, "budget") {
		t.Errorf("reason %q does not mention the budget", final.Reason)
	}
}

// TestAdmissionControl floods the queue and asserts 429 + Retry-After
// rather than unbounded queueing, with /readyz flipping to 503.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, "block", func(c *Config) {
		c.MaxActive = 1
		c.MaxQueue = 2
		c.HungTimeout = 10 * time.Second
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// First job must be dequeued (running) before the queue is flooded,
	// or the flood itself would race the scheduler for the two slots.
	var ids []string
	st := submitJob(t, s)
	ids = append(ids, st.ID)
	waitState(t, s, st.ID, StateRunning)
	for i := 0; i < 2; i++ { // fill MaxQueue
		st := submitJob(t, s)
		ids = append(ids, st.ID)
	}

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"scenarios":["chain-10"],"protocols":["RICA"],"trials":2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("flooded submit: code %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz while flooded: code %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: code %d, want 200 (liveness is not load-dependent)", resp.StatusCode)
	}

	// Release the workers; the backlog drains and readiness returns.
	for _, id := range ids {
		j, _ := s.Job(id)
		_ = os.WriteFile(filepath.Join(j.Dir, "release"), nil, 0o644)
	}
	for _, id := range ids {
		waitState(t, s, id, StateDone)
	}
	if ready, why := s.Ready(); !ready {
		t.Errorf("not ready after drain: %s", why)
	}
	s.Shutdown()
}

// TestShedOldest: a full job store sheds the oldest finished job to
// admit new work, and refuses when nothing is sheddable.
func TestShedOldest(t *testing.T) {
	s := newTestServer(t, "ok", func(c *Config) { c.MaxJobs = 2; c.MaxQueue = 8 })
	defer s.Shutdown()
	first := submitJob(t, s)
	waitState(t, s, first.ID, StateDone)
	second := submitJob(t, s)
	waitState(t, s, second.ID, StateDone)

	third := submitJob(t, s) // store full: the oldest done job is shed
	if _, ok := s.Job(first.ID); ok {
		t.Errorf("oldest job %s not shed", first.ID)
	}
	waitState(t, s, third.ID, StateDone)
}

func TestCancel(t *testing.T) {
	s := newTestServer(t, "block", func(c *Config) {
		c.MaxActive = 1
		c.HungTimeout = 10 * time.Second
	})
	defer s.Shutdown()
	running := submitJob(t, s)
	queued := submitJob(t, s)
	waitState(t, s, running.ID, StateRunning)

	if !s.Cancel(queued.ID) {
		t.Fatal("cancel queued job refused")
	}
	if st := waitState(t, s, queued.ID, StateCanceled); st.Attempts != 0 {
		t.Errorf("queued cancel ran %d attempts", st.Attempts)
	}
	if !s.Cancel(running.ID) {
		t.Fatal("cancel running job refused")
	}
	waitState(t, s, running.ID, StateCanceled)
	if s.Cancel(running.ID) {
		t.Error("cancel of a terminal job accepted")
	}
}

// TestDrainAndRecover: SIGTERM-equivalent drain interrupts a running
// job (the worker journals and exits 3); a new daemon over the same
// data directory re-queues it and finishes it.
func TestDrainAndRecover(t *testing.T) {
	dir := ""
	s := newTestServer(t, "drain", func(c *Config) {
		c.HungTimeout = 10 * time.Second
		c.DrainTimeout = 5 * time.Second
		dir = c.Dir
	})
	st := submitJob(t, s)
	// Wait for worker-reported progress, not just the running state: the
	// drain must land after the worker has installed its signal handler,
	// which its first progress line proves.
	deadline := time.Now().Add(15 * time.Second)
	for {
		j, _ := s.Job(st.ID)
		if j != nil && j.Snapshot().DoneCells >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("worker never reported progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !s.Shutdown() {
		t.Fatal("Shutdown reported nothing interrupted")
	}
	j, _ := s.Job(st.ID)
	if got := j.State(); got != StateInterrupted {
		t.Fatalf("after drain: state %s, want interrupted", got)
	}

	// Second daemon, same data dir: the job must come back queued and
	// run to done (the fake worker's marker makes attempt two finish).
	s2 := newTestServer(t, "drain", func(c *Config) { c.Dir = dir })
	defer s2.Shutdown()
	final := waitState(t, s2, st.ID, StateDone)
	if final.TotalCells != st.TotalCells {
		t.Errorf("recovered total=%d, want %d", final.TotalCells, st.TotalCells)
	}
}

// TestRecoverySkipsTerminal: finished jobs reload as records, not work.
func TestRecoverySkipsTerminal(t *testing.T) {
	dir := ""
	s := newTestServer(t, "ok", func(c *Config) { dir = c.Dir })
	st := submitJob(t, s)
	waitState(t, s, st.ID, StateDone)
	s.Shutdown()

	s2 := newTestServer(t, "panic", func(c *Config) { c.Dir = dir })
	defer s2.Shutdown()
	j, ok := s2.Job(st.ID)
	if !ok {
		t.Fatal("done job not recovered")
	}
	if got := j.State(); got != StateDone {
		t.Fatalf("recovered state %s, want done (must not re-run)", got)
	}
}

func TestRestartBackoffShape(t *testing.T) {
	base, max := 100*time.Millisecond, time.Second
	for n := 0; n < 40; n++ {
		nominal := max
		if n < 34 {
			if d := base << n; d < nominal {
				nominal = d
			}
		}
		for i := 0; i < 50; i++ {
			d := restartBackoff(n, base, max)
			if d < nominal/2 || d >= nominal {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", n, d, nominal/2, nominal)
			}
		}
	}
}

// TestWorkerLineParsing pins the stderr protocol the supervisor reads.
func TestWorkerLineParsing(t *testing.T) {
	cases := []struct {
		line string
		want workerLine
	}{
		{"[3/30] chain-10/rica seed=4 delivery=98.5%", workerLine{kind: "progress", done: 3, total: 30}},
		{"manifest: restored 12 of 30 cells from /tmp/m", workerLine{kind: "restored", restored: 12, total: 30}},
		{"stats: serving http://127.0.0.1:4311/stats.json and http://127.0.0.1:4311/metrics", workerLine{kind: "statsurl", statsURL: "http://127.0.0.1:4311"}},
		{"stats: sim=12s events=48211 gen=1200 dlv=1100 p50=80ms queue=3", workerLine{kind: "heartbeat", events: 48211}},
		{"ricasim: interrupt — draining in-flight work and flushing output; interrupt again to force exit", workerLine{kind: "other"}},
		{"wrote /tmp/result.json", workerLine{kind: "other"}},
	}
	for _, c := range cases {
		if got := parseWorkerLine(c.line); got != c.want {
			t.Errorf("parse(%q) = %+v, want %+v", c.line, got, c.want)
		}
	}
}
