package serve

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// The worker protocol is the ricasim batch CLI itself: the supervisor
// re-execs its own binary with a -manifest journal inside the job
// directory, so crash-restart resumes with zero recompute and the
// exported result.json is byte-identical to an undisturbed run — both
// properties the batch engine already proves. The supervisor learns
// everything it needs from the worker's existing stderr lines; there is
// no bespoke IPC to keep deterministic.

// workerFiles are the fixed names inside a job directory.
const (
	workerManifest = "manifest"
	workerResult   = "result.json"
	workerLogFile  = "worker.log"
	jobFile        = "job.json"
	stateFile      = "state.json"
)

// defaultWorkerCommand builds the ricasim invocation for one attempt at
// a job. Inline specs were written to spec-N.json at admission; catalog
// scenarios travel by name.
func defaultWorkerCommand(bin string, j *Job) *exec.Cmd {
	var scenarios []string
	scenarios = append(scenarios, j.Spec.Scenarios...)
	for i := range j.Spec.Specs {
		scenarios = append(scenarios, filepath.Join(j.Dir, specFileName(i)))
	}
	args := []string{
		"-scenario", strings.Join(scenarios, ","),
		"-trials", strconv.Itoa(j.Spec.Trials),
		"-seed", strconv.FormatInt(j.Spec.Seed, 10),
		"-manifest", filepath.Join(j.Dir, workerManifest),
		"-out", filepath.Join(j.Dir, workerResult),
		"-format", "json",
		"-stats", "1s",
		"-statsaddr", "127.0.0.1:0",
	}
	if len(j.Spec.Protocols) > 0 {
		args = append(args, "-protocols", strings.Join(j.Spec.Protocols, ","))
	}
	if j.Spec.Shards != 0 {
		args = append(args, "-shards", strconv.Itoa(j.Spec.Shards))
	}
	if j.Spec.DurationS > 0 {
		args = append(args, "-duration", time.Duration(j.Spec.DurationS*float64(time.Second)).String())
	}
	cmd := exec.Command(bin, args...)
	cmd.Env = os.Environ()
	return cmd
}

func specFileName(i int) string { return fmt.Sprintf("spec-%d.json", i) }

// Worker stderr line shapes the supervisor understands. Anything else
// still counts as liveness — an unknown line means the process is
// doing something — but these update job state.
var (
	// [3/30] chain-10/rica seed=4 delivery=98.5%
	workerProgressRE = regexp.MustCompile(`^\[(\d+)/(\d+)\] `)
	// manifest: restored 12 of 30 cells from /path/manifest
	workerRestoredRE = regexp.MustCompile(`^manifest: restored (\d+) of (\d+) cells`)
	// stats: serving http://127.0.0.1:43211/stats.json and ...
	workerStatsURLRE = regexp.MustCompile(`^stats: serving (http://\S+)/stats\.json`)
	// stats: sim=12s events=48211 gen=1200 dlv=1100 p50=80ms queue=3
	workerHeartbeatRE = regexp.MustCompile(`^stats: sim=\S+ events=(\d+) `)
)

// workerLine is one parsed stderr line.
type workerLine struct {
	kind     string // progress | restored | statsurl | heartbeat | other
	done     int    // progress
	total    int    // progress, restored
	restored int    // restored
	statsURL string // statsurl
	events   int64  // heartbeat: cumulative kernel event count
}

func parseWorkerLine(line string) workerLine {
	if m := workerProgressRE.FindStringSubmatch(line); m != nil {
		done, _ := strconv.Atoi(m[1])
		total, _ := strconv.Atoi(m[2])
		return workerLine{kind: "progress", done: done, total: total}
	}
	if m := workerRestoredRE.FindStringSubmatch(line); m != nil {
		restored, _ := strconv.Atoi(m[1])
		total, _ := strconv.Atoi(m[2])
		return workerLine{kind: "restored", restored: restored, total: total}
	}
	if m := workerStatsURLRE.FindStringSubmatch(line); m != nil {
		return workerLine{kind: "statsurl", statsURL: m[1]}
	}
	if m := workerHeartbeatRE.FindStringSubmatch(line); m != nil {
		events, _ := strconv.ParseInt(m[1], 10, 64)
		return workerLine{kind: "heartbeat", events: events}
	}
	return workerLine{kind: "other"}
}
