//go:build unix

package serve

import (
	"os/exec"
	"syscall"
)

// setProcessGroup puts the worker in its own process group so a kill
// reaches the worker and anything it spawned, not the daemon.
func setProcessGroup(cmd *exec.Cmd) {
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
}

// signalProcess delivers SIGTERM (force=false: ask the worker to drain,
// journal, and exit 3) or SIGKILL to the whole group (force=true: the
// hang and cancel paths, where cooperation cannot be assumed).
func signalProcess(cmd *exec.Cmd, force bool) {
	if cmd.Process == nil {
		return
	}
	pid := cmd.Process.Pid
	if force {
		if err := syscall.Kill(-pid, syscall.SIGKILL); err != nil {
			_ = cmd.Process.Kill()
		}
		return
	}
	_ = syscall.Kill(pid, syscall.SIGTERM)
}
