package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Handler returns the daemon's control-plane mux:
//
//	POST   /jobs              submit a JobSpec, 202 + status (429/503 under load/drain)
//	GET    /jobs              list job statuses
//	GET    /jobs/{id}         one job's status
//	GET    /jobs/{id}/result  the deterministic batch export (JSON)
//	GET    /jobs/{id}/events  the job's event log as JSONL; ?follow=1 streams
//	GET    /jobs/{id}/stats.json, /jobs/{id}/metrics   proxied from the live worker
//	DELETE /jobs/{id}         cancel
//	GET    /healthz           liveness (200 while the process serves)
//	GET    /readyz            readiness (503 while draining or queue-full)
//	GET    /metrics           daemon counters, Prometheus text format
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/stats.json", s.handleWorkerProxy)
	mux.HandleFunc("GET /jobs/{id}/metrics", s.handleWorkerProxy)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := io.LimitReader(r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	st, err := s.Submit(spec)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, st)
	case IsOverload(err):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case IsDraining(err):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.Jobs()})
}

func (s *Server) jobFor(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return nil, false
	}
	return j, true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.jobFor(w, r); ok {
		writeJSON(w, http.StatusOK, j.Snapshot())
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	path := filepath.Join(j.Dir, workerResult)
	if _, err := os.Stat(path); err != nil {
		writeError(w, http.StatusConflict, "job %s is %s; no result yet", j.ID, j.State())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, path)
}

// handleEvents writes the job's event log as JSONL. With ?follow=1 it
// keeps the connection open, streaming new events until the job
// reaches a state with no more events coming or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	follow := r.URL.Query().Get("follow") != ""
	w.Header().Set("Content-Type", "application/jsonl")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	seq := 0
	for {
		events, changed := j.events.since(seq)
		for _, e := range events {
			_ = enc.Encode(e)
			seq = e.Seq + 1
		}
		if flusher != nil {
			flusher.Flush()
		}
		st := j.State()
		if !follow || st.Terminal() || st == StateInterrupted {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-time.After(30 * time.Second):
			return
		}
	}
}

// handleWorkerProxy relays /stats.json and /metrics from the job's
// live worker (the batch CLI's own -statsaddr server), so one daemon
// port exposes per-job live telemetry.
func (s *Server) handleWorkerProxy(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	j.mu.Lock()
	base := j.statsURL
	j.mu.Unlock()
	if base == "" {
		writeError(w, http.StatusConflict, "job %s has no live worker stats (state %s)", j.ID, j.State())
		return
	}
	resp, err := http.Get(base + "/" + filepath.Base(r.URL.Path))
	if err != nil {
		writeError(w, http.StatusBadGateway, "worker stats: %v", err)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFor(w, r)
	if !ok {
		return
	}
	if !s.Cancel(j.ID) {
		writeError(w, http.StatusConflict, "job %s already %s", j.ID, j.State())
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	ready, why := s.Ready()
	if !ready {
		writeError(w, http.StatusServiceUnavailable, "not ready: %s", why)
		return
	}
	fmt.Fprintln(w, "ok")
}

// handleMetrics exposes daemon-level counters in Prometheus text
// format, alongside the per-worker metrics proxied per job.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	accepted, rejected, shed := s.acceptedTotal, s.rejectedTotal, s.shedTotal
	queued, active, jobs := len(s.queue), s.active, len(s.jobs)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# TYPE ricasim_serve_jobs_accepted_total counter\nricasim_serve_jobs_accepted_total %d\n", accepted)
	fmt.Fprintf(w, "# TYPE ricasim_serve_jobs_rejected_total counter\nricasim_serve_jobs_rejected_total %d\n", rejected)
	fmt.Fprintf(w, "# TYPE ricasim_serve_jobs_shed_total counter\nricasim_serve_jobs_shed_total %d\n", shed)
	fmt.Fprintf(w, "# TYPE ricasim_serve_worker_restarts_total counter\nricasim_serve_worker_restarts_total %d\n", atomic.LoadInt64(&s.restartsTotal))
	fmt.Fprintf(w, "# TYPE ricasim_serve_worker_crashes_total counter\nricasim_serve_worker_crashes_total %d\n", atomic.LoadInt64(&s.crashesTotal))
	fmt.Fprintf(w, "# TYPE ricasim_serve_worker_hangs_total counter\nricasim_serve_worker_hangs_total %d\n", atomic.LoadInt64(&s.hangsTotal))
	fmt.Fprintf(w, "# TYPE ricasim_serve_jobs_queued gauge\nricasim_serve_jobs_queued %d\n", queued)
	fmt.Fprintf(w, "# TYPE ricasim_serve_jobs_active gauge\nricasim_serve_jobs_active %d\n", active)
	fmt.Fprintf(w, "# TYPE ricasim_serve_jobs gauge\nricasim_serve_jobs %d\n", jobs)
}
