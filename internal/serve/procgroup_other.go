//go:build !unix

package serve

import "os/exec"

// Non-unix fallback: no process groups; a force kill reaches only the
// worker itself and a graceful stop degrades to a hard kill.
func setProcessGroup(cmd *exec.Cmd) {}

func signalProcess(cmd *exec.Cmd, force bool) {
	if cmd.Process == nil {
		return
	}
	_ = cmd.Process.Kill()
}
