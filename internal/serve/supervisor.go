package serve

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"time"
)

// Attempt outcomes. The supervisor's healing policy hangs off this
// classification: crashes and hangs are transient (the manifest journal
// makes a retry resume instead of recompute), panics and clean failures
// are permanent, and interrupts are only legitimate when we asked for
// them — an exit-code-3 we didn't request means someone signalled the
// worker externally, which is the chaos-test case, and is healed like a
// crash.
type outcome int

const (
	outcomeDone outcome = iota
	outcomeFailed
	outcomePanic
	outcomeCrash
	outcomeHung
	outcomeCanceled
	outcomeInterrupted
)

// Worker exit codes, per the CLI contract (docs/OPERATIONS.md): 0
// success, 1 error or poisoned cells, 2 Go panic, 3 interrupted with
// resumable journal, 130 forced second interrupt.
const (
	workerExitOK          = 0
	workerExitError       = 1
	workerExitPanic       = 2
	workerExitInterrupted = 3
	workerExitForced      = 130
)

// runJob drives one job to a terminal-or-interrupted state: run an
// attempt, classify, heal or stop. It owns the job's state transitions
// after dequeue.
func (s *Server) runJob(j *Job) {
	defer s.jobFinished(j)
	for {
		if j.cancelRequested() {
			j.setState(StateCanceled, "canceled before start")
			return
		}
		if s.isDraining() {
			j.setState(StateInterrupted, "daemon draining")
			return
		}
		j.mu.Lock()
		j.attempts++
		attempt := j.attempts
		restarts := j.restarts
		j.mu.Unlock()
		if attempt == 1 {
			j.setState(StateRunning, "")
		}

		switch out, detail := s.runAttempt(j); out {
		case outcomeDone:
			j.setState(StateDone, "")
			return
		case outcomeFailed:
			j.setState(StateFailed, detail)
			return
		case outcomePanic:
			// A panic is deterministic under a deterministic engine:
			// retrying replays the same crash. Quarantine instead.
			j.setState(StateFailed, "worker panicked (never retried): "+detail)
			return
		case outcomeCanceled:
			j.setState(StateCanceled, detail)
			return
		case outcomeInterrupted:
			j.setState(StateInterrupted, detail)
			return
		case outcomeCrash, outcomeHung:
			if restarts >= s.cfg.MaxRestarts {
				j.setState(StateFailed, fmt.Sprintf("restart budget (%d) exhausted after: %s", s.cfg.MaxRestarts, detail))
				return
			}
			j.mu.Lock()
			j.restarts++
			n := j.restarts
			j.mu.Unlock()
			atomic.AddInt64(&s.restartsTotal, 1)
			delay := restartBackoff(n-1, s.cfg.BackoffBase, s.cfg.BackoffMax)
			j.events.append(Event{Type: "restart", Note: fmt.Sprintf("%s; retry %d in %v", detail, n, delay.Round(time.Millisecond))})
			if !s.sleepInterruptible(j, delay) {
				continue // cancel/drain noticed; loop head handles it
			}
		}
	}
}

// restartBackoff is equal-jitter exponential backoff: nominal doubles
// from base up to max, the delay lands uniformly in [nominal/2,
// nominal) so simultaneous restarts do not stampede.
func restartBackoff(n int, base, max time.Duration) time.Duration {
	nominal := max
	if n < 34 {
		if d := base << n; d < nominal {
			nominal = d
		}
	}
	half := nominal / 2
	if half <= 0 {
		return nominal
	}
	return half + time.Duration(rand.Int63n(int64(half)))
}

// sleepInterruptible waits out a backoff delay, returning early (false)
// if the job is canceled or the daemon starts draining.
func (s *Server) sleepInterruptible(j *Job, d time.Duration) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if j.cancelRequested() || s.isDraining() {
			return false
		}
		step := time.Until(deadline)
		if step > 20*time.Millisecond {
			step = 20 * time.Millisecond
		}
		time.Sleep(step)
	}
	return true
}

// runAttempt launches one worker process for the job and supervises it
// to exit: parse stderr for progress and liveness, detect hangs by
// heartbeat deadline, and classify the exit.
func (s *Server) runAttempt(j *Job) (outcome, string) {
	cmd := s.cfg.WorkerCommand(j)
	setProcessGroup(cmd)

	logf, err := os.OpenFile(filepath.Join(j.Dir, workerLogFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return outcomeFailed, "worker log: " + err.Error()
	}
	defer logf.Close()

	stderr, err := cmd.StderrPipe()
	if err != nil {
		return outcomeFailed, "stderr pipe: " + err.Error()
	}
	cmd.Stdout = logf
	if err := cmd.Start(); err != nil {
		return outcomeCrash, "start: " + err.Error()
	}
	pid := cmd.Process.Pid
	fmt.Fprintf(logf, "--- attempt pid=%d ---\n", pid)

	// lastLive is the supervisor's liveness clock (unix nanos). Any
	// stderr line advances it except a heartbeat whose cumulative event
	// count has not moved: a wedged simulation with a healthy heartbeat
	// goroutine must still be declared hung.
	var lastLive atomic.Int64
	lastLive.Store(time.Now().UnixNano())
	var lastEvents atomic.Int64
	lastEvents.Store(-1)
	var hung atomic.Bool
	var termSent atomic.Bool // we asked the worker to drain (cancel or daemon drain)
	var graceSent atomic.Bool

	kill := func(graceful bool) {
		if graceful {
			graceSent.Store(true)
			termSent.Store(true)
			signalProcess(cmd, false)
			return
		}
		termSent.Store(true)
		signalProcess(cmd, true)
	}
	j.mu.Lock()
	j.workerPID = pid
	j.killWorker = kill
	canceledAlready := j.cancel
	j.mu.Unlock()
	if canceledAlready {
		kill(false)
	}

	// Hang monitor: if the liveness clock stalls past HungTimeout, kill
	// the whole process group (SIGKILL — a hung worker may not honor
	// SIGTERM) and let the classifier report a hang.
	attemptDone := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		tick := s.cfg.HungTimeout / 8
		if tick < 5*time.Millisecond {
			tick = 5 * time.Millisecond
		}
		for {
			select {
			case <-attemptDone:
				return
			case <-time.After(tick):
			}
			idle := time.Duration(time.Now().UnixNano() - lastLive.Load())
			if idle >= s.cfg.HungTimeout && !termSent.Load() {
				hung.Store(true)
				signalProcess(cmd, true)
				return
			}
		}
	}()

	sc := bufio.NewScanner(stderr)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(logf, line)
		w := parseWorkerLine(line)
		switch w.kind {
		case "heartbeat":
			if w.events != lastEvents.Swap(w.events) {
				lastLive.Store(time.Now().UnixNano())
			}
			continue
		case "progress":
			j.mu.Lock()
			j.done = w.done
			if w.total > 0 {
				j.total = w.total
			}
			done, total := j.done, j.total
			j.mu.Unlock()
			j.events.append(Event{Type: "progress", Done: done, Total: total})
		case "restored":
			j.mu.Lock()
			j.restored = w.restored
			if w.total > 0 {
				j.total = w.total
			}
			j.done = w.restored
			j.mu.Unlock()
			j.events.append(Event{Type: "restored", Done: w.restored, Total: w.total,
				Note: fmt.Sprintf("resumed %d finished cells from the journal", w.restored)})
		case "statsurl":
			j.mu.Lock()
			j.statsURL = w.statsURL
			j.mu.Unlock()
		}
		lastLive.Store(time.Now().UnixNano())
	}

	waitErr := cmd.Wait()
	close(attemptDone)
	<-monitorDone
	j.mu.Lock()
	j.killWorker = nil
	j.workerPID = 0
	j.statsURL = ""
	j.mu.Unlock()

	return s.classifyExit(j, waitErr, hung.Load(), termSent.Load(), graceSent.Load())
}

// classifyExit maps a worker's exit status onto the healing policy.
func (s *Server) classifyExit(j *Job, waitErr error, hung, termSent, graceSent bool) (outcome, string) {
	code, signaled := exitStatus(waitErr)
	note := fmt.Sprintf("worker exit code %d", code)
	if signaled {
		note = "worker killed by signal"
	}
	j.events.append(Event{Type: "worker-exit", Note: note})

	if hung {
		atomic.AddInt64(&s.hangsTotal, 1)
		j.events.append(Event{Type: "hung", Note: fmt.Sprintf("no liveness for %v; process group killed", s.cfg.HungTimeout)})
		return outcomeHung, "worker hung (heartbeat deadline exceeded)"
	}
	if j.cancelRequested() {
		return outcomeCanceled, "canceled"
	}
	if graceSent {
		// We sent SIGTERM for a daemon drain; the worker journals and
		// exits 3 per the contract. Any exit at this point counts.
		return outcomeInterrupted, "daemon draining (worker journaled in-flight grid)"
	}

	switch {
	case waitErr == nil:
		if _, err := os.Stat(filepath.Join(j.Dir, workerResult)); err != nil {
			return outcomeCrash, "worker exited 0 without writing " + workerResult
		}
		return outcomeDone, ""
	case signaled:
		// kill -9 from outside (or the chaos test). Heal: the manifest
		// journal turns the retry into a resume.
		atomic.AddInt64(&s.crashesTotal, 1)
		return outcomeCrash, "worker killed by signal"
	case code == workerExitPanic:
		return outcomePanic, tailOf(filepath.Join(j.Dir, workerLogFile), 4)
	case code == workerExitError:
		return outcomeFailed, "worker exited 1 (error or poisoned cells); partial results may be journaled"
	case code == workerExitInterrupted, code == workerExitForced:
		if termSent {
			return outcomeInterrupted, "worker interrupted on request"
		}
		// Someone else signalled it; the journal is intact, so heal.
		atomic.AddInt64(&s.crashesTotal, 1)
		return outcomeCrash, fmt.Sprintf("worker interrupted externally (exit %d)", code)
	default:
		atomic.AddInt64(&s.crashesTotal, 1)
		return outcomeCrash, fmt.Sprintf("worker exited %d", code)
	}
}

// exitStatus extracts (code, killed-by-signal) from cmd.Wait's error.
func exitStatus(err error) (int, bool) {
	if err == nil {
		return 0, false
	}
	var ee *exec.ExitError
	if errors.As(err, &ee) {
		if code := ee.ExitCode(); code >= 0 {
			return code, false
		}
		return -1, true
	}
	return -1, true
}

// tailOf returns the last n lines of a file, best effort, for panic
// diagnostics in job status.
func tailOf(path string, n int) string {
	data, err := os.ReadFile(path)
	if err != nil {
		return "worker panicked"
	}
	lines := splitTail(string(data), n)
	return "worker panicked: " + lines
}

func splitTail(s string, n int) string {
	end := len(s)
	for end > 0 && (s[end-1] == '\n' || s[end-1] == '\r') {
		end--
	}
	start := end
	for i := 0; i < n && start > 0; i++ {
		j := start - 1
		for j > 0 && s[j-1] != '\n' {
			j--
		}
		start = j
		if start == 0 {
			break
		}
	}
	return s[start:end]
}
