package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"rica/internal/experiment"
	"rica/internal/scenario"
)

// JobSpec is the grid a client submits: the same scenario × protocol ×
// seed space the batch CLI spans, JSON-shaped for the control plane.
type JobSpec struct {
	// Scenarios names built-in catalog entries.
	Scenarios []string `json:"scenarios,omitempty"`
	// Specs carries inline scenario specs (the same JSON the CLI loads
	// from files); they are validated at admission and written into the
	// job directory for the worker.
	Specs []json.RawMessage `json:"specs,omitempty"`
	// Protocols subsets the protocol comparison; empty means all five.
	Protocols []string `json:"protocols,omitempty"`
	// Trials is the seeds-per-cell count; 0 means 3.
	Trials int `json:"trials,omitempty"`
	// Seed is the base seed; 0 means 1 (matching the CLI default).
	Seed int64 `json:"seed,omitempty"`
	// Shards enables the sharded engine inside each cell (≥ 2); results
	// are bit-identical for every value.
	Shards int `json:"shards,omitempty"`
	// DurationS overrides every scenario's horizon, in simulated seconds.
	DurationS float64 `json:"duration_s,omitempty"`
}

// jobSpecLimits bound what one job may ask for; admission rejects
// anything larger with a 400 rather than letting a typo queue a
// year-long grid.
const (
	maxJobScenarios = 64
	maxJobTrials    = 1000
)

// normalize validates the spec and fills defaults, returning the
// per-cell totals the supervisor needs. The returned spec is what the
// job persists and the worker runs.
func (s JobSpec) normalize() (JobSpec, int, error) {
	if len(s.Scenarios)+len(s.Specs) == 0 {
		return s, 0, fmt.Errorf("job needs at least one scenario (names in 'scenarios', inline specs in 'specs')")
	}
	if len(s.Scenarios)+len(s.Specs) > maxJobScenarios {
		return s, 0, fmt.Errorf("job spans %d scenarios, max %d", len(s.Scenarios)+len(s.Specs), maxJobScenarios)
	}
	if s.Trials == 0 {
		s.Trials = 3
	}
	if s.Trials < 0 || s.Trials > maxJobTrials {
		return s, 0, fmt.Errorf("trials %d outside [1, %d]", s.Trials, maxJobTrials)
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Shards < 0 {
		return s, 0, fmt.Errorf("shards %d is negative", s.Shards)
	}
	if s.DurationS < 0 {
		return s, 0, fmt.Errorf("duration_s %g is negative", s.DurationS)
	}
	if d := time.Duration(s.DurationS * float64(time.Second)); scenario.Duration(d) > scenario.MaxDuration {
		return s, 0, fmt.Errorf("duration_s %g exceeds the %v bound", s.DurationS, time.Duration(scenario.MaxDuration))
	}
	minNodes := 0
	note := func(spec scenario.Spec) {
		if n := spec.Topology.NodeCount(); minNodes == 0 || n < minNodes {
			minNodes = n
		}
	}
	for _, name := range s.Scenarios {
		// Names travel to the worker on a comma-separated flag, and a
		// ".json" suffix would be read as a file path there.
		if strings.ContainsAny(name, ", \t\n") || strings.HasSuffix(name, ".json") {
			return s, 0, fmt.Errorf("scenario name %q is not a catalog name", name)
		}
		spec, err := scenario.ByName(name)
		if err != nil {
			return s, 0, err
		}
		note(spec)
	}
	for i, raw := range s.Specs {
		spec, err := scenario.ParseJSON(raw)
		if err != nil {
			return s, 0, fmt.Errorf("specs[%d]: %w", i, err)
		}
		note(spec)
	}
	if s.Shards > 1 && s.Shards > minNodes {
		return s, 0, fmt.Errorf("shards %d exceeds the smallest scenario's %d nodes", s.Shards, minNodes)
	}
	protocols := len(s.Protocols)
	if protocols == 0 {
		protocols = len(experiment.AllProtocols())
	}
	for _, p := range s.Protocols {
		if _, err := experiment.ParseProtocol(p); err != nil {
			return s, 0, err
		}
	}
	total := (len(s.Scenarios) + len(s.Specs)) * protocols * s.Trials
	return s, total, nil
}

// State is a job's lifecycle position.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	// StateInterrupted marks a job the daemon drained mid-run (SIGTERM):
	// its finished cells are journaled, and a restarted daemon re-queues
	// it to resume with zero recompute. Not terminal.
	StateInterrupted State = "interrupted"
)

// Terminal reports whether the state is final for this daemon process.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one line of a job's JSONL event stream.
type Event struct {
	Seq   int    `json:"seq"`
	Type  string `json:"type"` // queued started progress restored restart hung worker-exit done failed canceled interrupted
	At    string `json:"at"`   // wall clock, RFC3339
	Done  int    `json:"done,omitempty"`
	Total int    `json:"total,omitempty"`
	Note  string `json:"note,omitempty"`
}

// Status is the API view of one job.
type Status struct {
	ID         string  `json:"id"`
	State      State   `json:"state"`
	Reason     string  `json:"reason,omitempty"`
	CreatedAt  string  `json:"created_at"`
	StartedAt  string  `json:"started_at,omitempty"`
	FinishedAt string  `json:"finished_at,omitempty"`
	Attempts   int     `json:"attempts"`
	Restarts   int     `json:"restarts"`
	Restored   int     `json:"restored"`
	DoneCells  int     `json:"done_cells"`
	TotalCells int     `json:"total_cells"`
	WorkerPID  int     `json:"worker_pid,omitempty"`
	Spec       JobSpec `json:"spec"`
}

// Job is one submitted grid and its supervision state. All mutable
// fields are guarded by mu; the identity fields are immutable after
// admission.
type Job struct {
	ID   string
	Spec JobSpec
	Dir  string

	mu         sync.Mutex
	state      State
	reason     string
	created    time.Time
	started    time.Time
	finished   time.Time
	attempts   int
	restarts   int
	restored   int
	done       int
	total      int
	workerPID  int
	statsURL   string // worker's live-stats base URL, when it told us
	cancel     bool
	killWorker func(graceful bool) // set while a worker runs

	events eventLog
}

func newJob(id, dir string, spec JobSpec, total int) *Job {
	j := &Job{ID: id, Spec: spec, Dir: dir, state: StateQueued, total: total, created: time.Now()}
	j.events.append(Event{Type: "queued", Total: total})
	return j
}

// Snapshot renders the API status view.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:         j.ID,
		State:      j.state,
		Reason:     j.reason,
		CreatedAt:  j.created.UTC().Format(time.RFC3339),
		Attempts:   j.attempts,
		Restarts:   j.restarts,
		Restored:   j.restored,
		DoneCells:  j.done,
		TotalCells: j.total,
		Spec:       j.Spec,
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339)
	}
	if j.state == StateRunning {
		st.WorkerPID = j.workerPID
	}
	return st
}

// setState moves the job and appends the transition event.
func (j *Job) setState(s State, reason string) {
	j.mu.Lock()
	j.state = s
	j.reason = reason
	switch s {
	case StateRunning:
		if j.started.IsZero() {
			j.started = time.Now()
		}
	case StateDone, StateFailed, StateCanceled, StateInterrupted:
		j.finished = time.Now()
		j.workerPID = 0
		j.statsURL = ""
		j.killWorker = nil
	}
	done, total := j.done, j.total
	j.mu.Unlock()
	typ := map[State]string{
		StateRunning: "started", StateDone: "done", StateFailed: "failed",
		StateCanceled: "canceled", StateInterrupted: "interrupted", StateQueued: "queued",
	}[s]
	j.events.append(Event{Type: typ, Note: reason, Done: done, Total: total})
}

// cancelRequested reads the cancel flag.
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cancel
}

// requestCancel marks the job for cancellation and, if a worker is
// running, kills it. Returns false if the job is already terminal.
func (j *Job) requestCancel() bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.cancel = true
	kill := j.killWorker
	j.mu.Unlock()
	if kill != nil {
		kill(false)
	}
	return true
}

// State reads the current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// eventLog is an append-only in-memory event sequence with a broadcast
// channel that streaming readers wait on.
type eventLog struct {
	mu      sync.Mutex
	events  []Event
	changed chan struct{}
}

func (l *eventLog) append(e Event) {
	l.mu.Lock()
	e.Seq = len(l.events)
	e.At = time.Now().UTC().Format(time.RFC3339)
	l.events = append(l.events, e)
	if l.changed != nil {
		close(l.changed)
		l.changed = nil
	}
	l.mu.Unlock()
}

// since returns the events from seq n on, plus a channel that closes
// when anything later is appended.
func (l *eventLog) since(n int) ([]Event, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if n < len(l.events) {
		out = append(out, l.events[n:]...)
	}
	if l.changed == nil {
		l.changed = make(chan struct{})
	}
	return out, l.changed
}
