// Package serve is the self-healing simulation service: a long-lived
// daemon that accepts scenario × protocol × seed grid jobs over an
// HTTP/JSON control plane and runs each one in a supervised child
// worker process (the ricasim batch CLI itself, journaling to a
// manifest). The supervisor heals the failures a long-running service
// actually meets — crashed or kill-9'd workers are restarted and
// resume from the journal with zero recompute, hung workers are
// detected by heartbeat deadline and killed, retries back off with
// jitter, panics are quarantined — and admission control sheds load
// with 429s instead of collapsing. Because every worker attempt
// resumes the same fsync'd manifest, the exported results are
// byte-identical to an undisturbed run no matter how many times the
// worker died; the chaos test in this package holds the daemon to
// exactly that.
package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rica/internal/durable"
)

// Config tunes the daemon. Zero values take the defaults noted on each
// field.
type Config struct {
	// Dir is the data directory; each job lives in Dir/jobs/<id>/ with
	// its manifest journal, result export, and worker log. Required.
	Dir string
	// WorkerBin is the binary to exec as a worker (default: this
	// process's own executable, i.e. ricasim re-execs itself in batch
	// mode).
	WorkerBin string
	// WorkerCommand overrides worker construction entirely (tests).
	WorkerCommand func(*Job) *exec.Cmd
	// MaxActive is the number of jobs running at once (default 1: one
	// worker saturates the cores via the batch engine's own pool).
	MaxActive int
	// MaxQueue bounds the queued-but-not-running jobs; submissions past
	// it get 429 + Retry-After (default 16).
	MaxQueue int
	// MaxJobs bounds the job store; when full, the oldest finished job
	// is shed to admit a new one, and if nothing is sheddable the
	// submission gets 429 (default 64).
	MaxJobs int
	// MaxRestarts is the per-job crash/hang healing budget (default 10).
	MaxRestarts int
	// HungTimeout declares a worker hung when its liveness clock (any
	// stderr output, or a heartbeat whose event counter moved) stalls
	// this long (default 2m).
	HungTimeout time.Duration
	// DrainTimeout bounds how long Shutdown waits for workers to
	// journal and exit after SIGTERM before force-killing (default 10s).
	DrainTimeout time.Duration
	// BackoffBase/BackoffMax shape the restart backoff (defaults 250ms
	// and 10s; jittered, see restartBackoff).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Logf receives daemon log lines (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.WorkerBin == "" {
		if exe, err := os.Executable(); err == nil {
			c.WorkerBin = exe
		}
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 1
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 64
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 10
	}
	if c.HungTimeout <= 0 {
		c.HungTimeout = 2 * time.Minute
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 10 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is the daemon: job store, admission control, and supervisor.
type Server struct {
	cfg Config

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // admission order; shedding walks it oldest-first
	queue    []string // FIFO of queued job IDs
	active   int
	draining bool
	nextID   int

	kick    chan struct{}
	stop    chan struct{}
	wg      sync.WaitGroup // job runner goroutines
	schedWG sync.WaitGroup // the scheduler loop

	// Daemon counters, exposed on /metrics.
	acceptedTotal, rejectedTotal, shedTotal int64
	restartsTotal, crashesTotal, hangsTotal int64
}

// New builds a Server. Call Start to recover persisted jobs and begin
// scheduling.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: Config.Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:  cfg,
		jobs: make(map[string]*Job),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
	}
	if s.cfg.WorkerCommand == nil {
		s.cfg.WorkerCommand = func(j *Job) *exec.Cmd {
			return defaultWorkerCommand(s.cfg.WorkerBin, j)
		}
	}
	return s, nil
}

// persistedJob is the job.json shape written at admission.
type persistedJob struct {
	ID      string  `json:"id"`
	Spec    JobSpec `json:"spec"`
	Total   int     `json:"total_cells"`
	Created string  `json:"created_at"`
}

// persistedState is the state.json shape written on every state
// transition after dequeue, so a restarted daemon knows which jobs are
// finished and which to resume.
type persistedState struct {
	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`
	Done   int    `json:"done_cells"`
}

// Start recovers persisted jobs from the data directory — terminal jobs
// reload as records, anything else re-queues and resumes from its
// manifest with zero recompute — then starts the scheduler.
func (s *Server) Start() error {
	root := filepath.Join(s.cfg.Dir, "jobs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return err
	}
	var recovered []*Job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(root, e.Name())
		data, err := os.ReadFile(filepath.Join(dir, jobFile))
		if err != nil {
			s.cfg.Logf("serve: skipping %s: %v", dir, err)
			continue
		}
		var pj persistedJob
		if err := json.Unmarshal(data, &pj); err != nil || pj.ID == "" {
			s.cfg.Logf("serve: skipping %s: bad job.json", dir)
			continue
		}
		j := newJob(pj.ID, dir, pj.Spec, pj.Total)
		if t, err := time.Parse(time.RFC3339, pj.Created); err == nil {
			j.created = t
		}
		if data, err := os.ReadFile(filepath.Join(dir, stateFile)); err == nil {
			var ps persistedState
			if json.Unmarshal(data, &ps) == nil && ps.State.Terminal() {
				j.state = ps.State
				j.reason = ps.Reason
				j.done = ps.Done
				j.finished = j.created
			}
		}
		recovered = append(recovered, j)
		if n := idNumber(pj.ID); n >= s.nextID {
			s.nextID = n + 1
		}
	}
	sort.Slice(recovered, func(a, b int) bool { return idNumber(recovered[a].ID) < idNumber(recovered[b].ID) })
	s.mu.Lock()
	for _, j := range recovered {
		s.jobs[j.ID] = j
		s.order = append(s.order, j.ID)
		if !j.state.Terminal() {
			j.state = StateQueued
			j.reason = ""
			s.queue = append(s.queue, j.ID)
			s.cfg.Logf("serve: recovered %s: re-queued (manifest resume)", j.ID)
		}
	}
	s.mu.Unlock()

	s.schedWG.Add(1)
	go s.scheduler()
	s.poke()
	return nil
}

func idNumber(id string) int {
	n, _ := strconv.Atoi(strings.TrimPrefix(id, "j"))
	return n
}

// poke nudges the scheduler without blocking.
func (s *Server) poke() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// scheduler dequeues jobs into the active slots.
func (s *Server) scheduler() {
	defer s.schedWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		for {
			s.mu.Lock()
			if s.draining || s.active >= s.cfg.MaxActive || len(s.queue) == 0 {
				s.mu.Unlock()
				break
			}
			id := s.queue[0]
			s.queue = s.queue[1:]
			j := s.jobs[id]
			s.active++
			s.mu.Unlock()
			if j == nil {
				s.mu.Lock()
				s.active--
				s.mu.Unlock()
				continue
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.runJob(j)
			}()
		}
	}
}

// jobFinished persists the job's final state and frees its slot.
func (s *Server) jobFinished(j *Job) {
	st := j.Snapshot()
	s.persistState(j, persistedState{State: st.State, Reason: st.Reason, Done: st.DoneCells})
	s.cfg.Logf("serve: %s %s (%d/%d cells, %d restarts)%s",
		j.ID, st.State, st.DoneCells, st.TotalCells, st.Restarts, reasonSuffix(st.Reason))
	s.mu.Lock()
	s.active--
	s.mu.Unlock()
	s.poke()
}

func reasonSuffix(r string) string {
	if r == "" {
		return ""
	}
	return ": " + r
}

// persistState writes state.json atomically (temp + rename + dir sync).
func (s *Server) persistState(j *Job, ps persistedState) {
	data, _ := json.Marshal(ps)
	tmp := filepath.Join(j.Dir, stateFile+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		s.cfg.Logf("serve: %s: persist state: %v", j.ID, err)
		return
	}
	if err := durable.Rename(tmp, filepath.Join(j.Dir, stateFile)); err != nil {
		s.cfg.Logf("serve: %s: persist state: %v", j.ID, err)
	}
}

// ErrOverloaded is returned by Submit when admission control rejects
// the job; the HTTP layer maps it to 429 + Retry-After.
type overloadError struct{ why string }

func (e overloadError) Error() string { return "serve: overloaded: " + e.why }

// IsOverload reports whether err is an admission-control rejection.
func IsOverload(err error) bool {
	_, ok := err.(overloadError)
	return ok
}

// errDraining is returned by Submit once Shutdown has begun.
var errDraining = fmt.Errorf("serve: draining, not accepting jobs")

// IsDraining reports whether err means the daemon is shutting down.
func IsDraining(err error) bool { return err == errDraining }

// Submit validates and admits a job, returning its status snapshot.
// Admission can shed the oldest finished job to bound the store; a
// full queue or an unsheddable full store rejects with an overload
// error rather than queueing without bound.
func (s *Server) Submit(spec JobSpec) (Status, error) {
	spec, total, err := spec.normalize()
	if err != nil {
		return Status{}, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.countReject()
		return Status{}, errDraining
	}
	if len(s.queue) >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.countReject()
		return Status{}, overloadError{fmt.Sprintf("queue full (%d jobs waiting)", s.cfg.MaxQueue)}
	}
	if len(s.jobs) >= s.cfg.MaxJobs && !s.shedOldestLocked() {
		s.mu.Unlock()
		s.countReject()
		return Status{}, overloadError{fmt.Sprintf("job store full (%d jobs, none finished)", s.cfg.MaxJobs)}
	}
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	s.mu.Unlock()

	dir := filepath.Join(s.cfg.Dir, "jobs", id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Status{}, err
	}
	for i, raw := range spec.Specs {
		if err := os.WriteFile(filepath.Join(dir, specFileName(i)), raw, 0o644); err != nil {
			return Status{}, err
		}
	}
	j := newJob(id, dir, spec, total)
	pj := persistedJob{ID: id, Spec: spec, Total: total, Created: j.created.UTC().Format(time.RFC3339)}
	data, _ := json.MarshalIndent(pj, "", "  ")
	if err := os.WriteFile(filepath.Join(dir, jobFile), append(data, '\n'), 0o644); err != nil {
		return Status{}, err
	}
	if err := durable.SyncDir(dir); err != nil {
		return Status{}, err
	}

	s.mu.Lock()
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.acceptedTotal++
	s.mu.Unlock()
	s.cfg.Logf("serve: %s queued (%d cells)", id, total)
	s.poke()
	return j.Snapshot(), nil
}

func (s *Server) countReject() {
	s.mu.Lock()
	s.rejectedTotal++
	s.mu.Unlock()
}

// shedOldestLocked evicts the oldest terminal job (and its directory)
// to admit a new one. Caller holds s.mu.
func (s *Server) shedOldestLocked() bool {
	for i, id := range s.order {
		j := s.jobs[id]
		if j == nil || !j.State().Terminal() {
			continue
		}
		delete(s.jobs, id)
		s.order = append(s.order[:i], s.order[i+1:]...)
		s.shedTotal++
		dir := j.Dir
		logf := s.cfg.Logf
		go func() {
			if err := os.RemoveAll(dir); err != nil {
				logf("serve: shed %s: %v", id, err)
			}
		}()
		logf("serve: shed %s to admit new work", id)
		return true
	}
	return false
}

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job in admission order.
func (s *Server) Jobs() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Cancel cancels a queued or running job. Returns false if unknown or
// already terminal.
func (s *Server) Cancel(id string) bool {
	j, ok := s.Job(id)
	if !ok {
		return false
	}
	if !j.requestCancel() {
		return false
	}
	// A queued job has no runner to notice the flag; finalize it here.
	s.mu.Lock()
	for i, qid := range s.queue {
		if qid == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			s.mu.Unlock()
			j.setState(StateCanceled, "canceled while queued")
			s.persistState(j, persistedState{State: StateCanceled, Reason: "canceled while queued"})
			return true
		}
	}
	s.mu.Unlock()
	return true
}

// Ready reports whether the daemon would accept a submission right now;
// the reason is human-readable when not.
func (s *Server) Ready() (bool, string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.draining:
		return false, "draining"
	case len(s.queue) >= s.cfg.MaxQueue:
		return false, "queue full"
	default:
		return true, "ok"
	}
}

// Shutdown drains the daemon: stop admitting, SIGTERM running workers
// (they journal in-flight grids and exit per the interrupt contract),
// wait up to DrainTimeout, then force-kill stragglers. Returns true if
// any job was left interrupted (resumable on restart) — the caller
// maps that onto the CLI's exit-code contract.
func (s *Server) Shutdown() bool {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		s.schedWG.Wait()
		return s.anyInterrupted()
	}
	s.draining = true
	close(s.stop) // scheduler exits; no new jobs dequeue
	var kills []func(bool)
	for _, id := range s.queue {
		if j := s.jobs[id]; j != nil {
			j.setState(StateInterrupted, "daemon draining")
			s.persistState(j, persistedState{State: StateInterrupted, Reason: "daemon draining"})
		}
	}
	s.queue = nil
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.killWorker != nil {
			kills = append(kills, j.killWorker)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()

	for _, kill := range kills {
		kill(true) // graceful: SIGTERM, worker journals and exits
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.cfg.Logf("serve: drain timeout; force-killing workers")
		s.mu.Lock()
		for _, j := range s.jobs {
			j.mu.Lock()
			kill := j.killWorker
			j.mu.Unlock()
			if kill != nil {
				kill(false)
			}
		}
		s.mu.Unlock()
		<-done
	}
	s.schedWG.Wait()
	return s.anyInterrupted()
}

func (s *Server) anyInterrupted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.jobs {
		if j.State() == StateInterrupted {
			return true
		}
	}
	return false
}
