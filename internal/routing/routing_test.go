package routing

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing/routingtest"
)

func TestTableLookupInstallInvalidate(t *testing.T) {
	tb := NewTable(time.Second)
	if tb.Lookup(5, 0) != nil {
		t.Fatal("empty table returned an entry")
	}
	tb.Install(5, 2, 3.33, 2, 0)
	e := tb.Lookup(5, 100*time.Millisecond)
	if e == nil || e.Next != 2 || e.HopCount != 3.33 {
		t.Fatalf("Lookup = %+v", e)
	}
	tb.Invalidate(5)
	if tb.Lookup(5, 200*time.Millisecond) != nil {
		t.Fatal("invalidated entry still returned")
	}
	if tb.Peek(5) == nil {
		t.Fatal("Peek must still see invalidated entries")
	}
}

func TestTableIdleExpiry(t *testing.T) {
	tb := NewTable(time.Second)
	tb.Install(3, 1, 1, 1, 0)
	if tb.Lookup(3, 900*time.Millisecond) == nil {
		t.Fatal("entry expired too early")
	}
	if tb.Lookup(3, 1100*time.Millisecond) != nil {
		t.Fatal("idle entry not expired after 1 s (paper's route expiry)")
	}
	// Touch resets the idle clock.
	tb.Install(4, 1, 1, 1, 0)
	tb.Touch(4, 900*time.Millisecond)
	if tb.Lookup(4, 1800*time.Millisecond) == nil {
		t.Fatal("touched entry expired despite recent use")
	}
}

func TestTableZeroTimeoutNeverExpires(t *testing.T) {
	tb := NewTable(0)
	tb.Install(1, 2, 1, 1, 0)
	if tb.Lookup(1, time.Hour) == nil {
		t.Fatal("zero-timeout table expired an entry")
	}
}

func TestInvalidateNext(t *testing.T) {
	tb := NewTable(0)
	tb.Install(1, 9, 1, 1, 0)
	tb.Install(2, 9, 2, 2, 0)
	tb.Install(3, 7, 1, 1, 0)
	affected := tb.InvalidateNext(9)
	if len(affected) != 2 {
		t.Fatalf("affected = %v, want destinations 1 and 2", affected)
	}
	if tb.Lookup(1, 0) != nil || tb.Lookup(2, 0) != nil {
		t.Fatal("routes through dead neighbour still valid")
	}
	if tb.Lookup(3, 0) == nil {
		t.Fatal("unrelated route was invalidated")
	}
}

func TestHistoryFirstCopy(t *testing.T) {
	h := NewHistory()
	pkt := &packet.Packet{Type: packet.TypeRREQ, Src: 1, Dst: 2, BroadcastID: 1, From: 4, HopCount: 1.67, GeoHops: 1}
	rec, first := h.FirstCopy(pkt, time.Second)
	if !first {
		t.Fatal("first copy not recognized")
	}
	if rec.FirstFrom != 4 || rec.HopCount != 1.67 {
		t.Fatalf("record = %+v", rec)
	}
	dup := pkt.Clone()
	dup.From = 9
	dup.HopCount = 1.0
	rec2, first2 := h.FirstCopy(dup, 2*time.Second)
	if first2 {
		t.Fatal("duplicate treated as first copy")
	}
	if rec2.FirstFrom != 4 {
		t.Fatal("duplicate overwrote the reverse pointer")
	}
	if got, ok := h.Lookup(pkt.Key()); !ok || got != rec {
		t.Fatal("Lookup did not find the record")
	}
}

func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		j := Jitter(rng)
		if j < time.Millisecond || j >= RebroadcastJitter {
			t.Fatalf("jitter %v outside [1ms, %v)", j, RebroadcastJitter)
		}
	}
}

// envStub implements the slice of network.Env Pending needs.
type envStub struct {
	network.Env
	drops map[network.DropReason]int
}

func (e *envStub) DropData(_ *packet.Packet, r network.DropReason) { e.drops[r]++ }

func TestPendingFlushAndExpiry(t *testing.T) {
	env := &envStub{drops: map[network.DropReason]int{}}
	var p Pending
	old := &packet.Packet{ID: 1}
	fresh := &packet.Packet{ID: 2}
	p.Add(old, 0, env)
	p.Add(fresh, 2*time.Second, env)
	var flushed []uint64
	p.Flush(4*time.Second, env, func(pkt *packet.Packet) { flushed = append(flushed, pkt.ID) })
	if len(flushed) != 1 || flushed[0] != 2 {
		t.Fatalf("flushed %v, want just the fresh packet", flushed)
	}
	if env.drops[network.DropExpired] != 1 {
		t.Fatalf("drops = %v, want one expired", env.drops)
	}
	if p.Len() != 0 {
		t.Fatal("buffer not empty after flush")
	}
}

func TestPendingCapOverflow(t *testing.T) {
	env := &envStub{drops: map[network.DropReason]int{}}
	var p Pending
	for i := 0; i < PendingCap+5; i++ {
		p.Add(&packet.Packet{ID: uint64(i)}, 0, env)
	}
	if p.Len() != PendingCap {
		t.Fatalf("Len = %d, want cap %d", p.Len(), PendingCap)
	}
	if env.drops[network.DropCongestion] != 5 {
		t.Fatalf("drops = %v, want 5 congestion", env.drops)
	}
}

func TestPendingDropAll(t *testing.T) {
	env := &envStub{drops: map[network.DropReason]int{}}
	var p Pending
	for i := 0; i < 3; i++ {
		p.Add(&packet.Packet{ID: uint64(i)}, 0, env)
	}
	p.DropAll(env, network.DropNoRoute)
	if p.Len() != 0 || env.drops[network.DropNoRoute] != 3 {
		t.Fatalf("after DropAll: len %d drops %v", p.Len(), env.drops)
	}
}

func TestDijkstraLineGraph(t *testing.T) {
	g := NewGraph(4)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 2, 1.67)
	g.SetEdge(2, 3, 5)
	next, dist := g.ShortestPaths(0, nil, nil)
	if next[3] != 1 {
		t.Fatalf("next hop toward 3 = %d, want 1", next[3])
	}
	if want := 1 + 1.67 + 5; dist[3] != want {
		t.Fatalf("dist[3] = %v, want %v", dist[3], want)
	}
	if next[0] != -1 {
		t.Fatalf("next hop to self = %d, want -1", next[0])
	}
}

func TestDijkstraPrefersCheapLongPath(t *testing.T) {
	// Direct edge expensive (class D = 5), two-hop path cheap (1 + 1).
	g := NewGraph(3)
	g.SetEdge(0, 2, 5)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 2, 1)
	next, dist := g.ShortestPaths(0, nil, nil)
	if next[2] != 1 {
		t.Fatalf("next hop = %d, want detour via 1", next[2])
	}
	if dist[2] != 2 {
		t.Fatalf("dist = %v, want 2", dist[2])
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := NewGraph(4)
	g.SetEdge(0, 1, 1)
	// 2,3 disconnected.
	next, dist := g.ShortestPaths(0, nil, nil)
	if next[2] != -1 || dist[2] < InfiniteHops {
		t.Fatalf("unreachable node: next %d dist %v", next[2], dist[2])
	}
}

func TestDijkstraEdgeRemoval(t *testing.T) {
	g := NewGraph(3)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 2, 1)
	g.RemoveEdge(1, 2)
	next, _ := g.ShortestPaths(0, nil, nil)
	if next[2] != -1 {
		t.Fatal("removed edge still routable")
	}
	if _, ok := g.Edge(1, 2); ok {
		t.Fatal("Edge reports removed edge")
	}
}

func TestDijkstraClearNode(t *testing.T) {
	g := NewGraph(4)
	g.SetEdge(0, 1, 1)
	g.SetEdge(1, 2, 1)
	g.SetEdge(1, 3, 1)
	g.ClearNode(1)
	next, _ := g.ShortestPaths(0, nil, nil)
	for _, dst := range []int{1, 2, 3} {
		if next[dst] != -1 {
			t.Fatalf("route to %d survived ClearNode(1)", dst)
		}
	}
}

func TestDijkstraDeterministic(t *testing.T) {
	// Equal-cost diamond: 0-1-3 and 0-2-3 both cost 2. Repeated runs must
	// pick the same next hop.
	g := NewGraph(4)
	g.SetEdge(0, 1, 1)
	g.SetEdge(0, 2, 1)
	g.SetEdge(1, 3, 1)
	g.SetEdge(2, 3, 1)
	first, _ := g.ShortestPaths(0, nil, nil)
	for i := 0; i < 50; i++ {
		next, _ := g.ShortestPaths(0, nil, nil)
		if next[3] != first[3] {
			t.Fatal("equal-cost tie-break is nondeterministic")
		}
	}
	if first[3] != 1 {
		t.Fatalf("tie-break picked %d, want lowest id 1", first[3])
	}
}

// TestDijkstraMatchesBruteForce cross-checks optimal distances against
// exhaustive path enumeration on small random graphs.
func TestDijkstraMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const n = 7
		g := NewGraph(n)
		weights := []float64{1, 1.67, 3.33, 5}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(2) == 0 {
					g.SetEdge(i, j, weights[rng.Intn(len(weights))])
				}
			}
		}
		_, dist := g.ShortestPaths(0, nil, nil)
		brute := bruteDistances(g, 0)
		for v := 0; v < n; v++ {
			if diff := dist[v] - brute[v]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// bruteDistances is Bellman-Ford style relaxation to convergence.
func bruteDistances(g *Graph, src int) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = InfiniteHops
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if w, ok := g.Edge(u, v); ok && dist[u]+w < dist[v] {
					dist[v] = dist[u] + w
				}
			}
		}
	}
	return dist
}

// TestHistoryPackedTableMatchesMap drives the open-addressed history and
// a plain map reference through a randomized flood-copy schedule —
// including keys that overflow the packed ranges and spill — asserting
// identical FirstCopy/Improved/Lookup answers throughout.
func TestHistoryPackedTableMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistory()
	ref := make(map[packet.FloodKey]FloodRecord)

	for step := 0; step < 20000; step++ {
		pkt := &packet.Packet{
			Type:        packet.Type(1 + rng.Intn(11)),
			Src:         rng.Intn(200),
			Dst:         rng.Intn(200),
			From:        rng.Intn(200),
			BroadcastID: uint32(rng.Intn(300)),
			HopCount:    float64(rng.Intn(40)),
			GeoHops:     rng.Intn(12),
		}
		if step%97 == 0 {
			pkt.Src = 1 << 20 // beyond the packed origin range: spill tier
		}
		key := pkt.Key()
		now := time.Duration(step) * time.Millisecond

		var wantRec FloodRecord
		var wantNew bool
		if rec, ok := ref[key]; ok {
			wantRec, wantNew = rec, false
		} else {
			wantRec = FloodRecord{FirstFrom: pkt.From, HopCount: pkt.HopCount, GeoHops: pkt.GeoHops, At: now}
			ref[key] = wantRec
			wantNew = true
		}

		if rng.Intn(2) == 0 {
			got, first := h.FirstCopy(pkt, now)
			if first != wantNew || got != wantRec {
				t.Fatalf("step %d: FirstCopy = (%+v, %v), reference (%+v, %v)", step, got, first, wantRec, wantNew)
			}
		} else {
			wantImproved := wantNew
			if !wantNew && pkt.HopCount < wantRec.HopCount-metricImprovement {
				wantRec = FloodRecord{FirstFrom: pkt.From, HopCount: pkt.HopCount, GeoHops: pkt.GeoHops, At: now}
				ref[key] = wantRec
				wantImproved = true
			}
			got, improved := h.Improved(pkt, now)
			if improved != wantImproved || got != wantRec {
				t.Fatalf("step %d: Improved = (%+v, %v), reference (%+v, %v)", step, got, improved, wantRec, wantImproved)
			}
		}
		if got, ok := h.Lookup(key); !ok || got != ref[key] {
			t.Fatalf("step %d: Lookup = (%+v, %v), reference (%+v, true)", step, got, ok, ref[key])
		}
	}
}

// releasingEnv mimics the production network.Node contract that
// DropData is a terminal sink: the dropped packet is released back to
// the pool (where it is zeroed and may be reused immediately).
type releasingEnv struct {
	*routingtest.Env
}

func (e releasingEnv) DropData(pkt *packet.Packet, reason network.DropReason) {
	e.Env.DropData(pkt, reason)
	pkt.Release()
}

// TestBufferAndDiscoverSurvivesCongestionRecycle regression-tests the
// pooled-packet congestion path: when the pending buffer is already at
// capacity, Add drops and recycles the incoming packet — the discovery
// flood must still target the packet's real destination, not whatever a
// recycled (zeroed) record reports.
func TestBufferAndDiscoverSurvivesCongestionRecycle(t *testing.T) {
	env := releasingEnv{routingtest.New(3, 10)}
	core := NewCore(env, CoreConfig{Accumulate: func(*packet.Packet) {}})

	const dst = 7
	for i := 0; i < PendingCap; i++ {
		filler := packet.Get()
		filler.Type, filler.Src, filler.Dst = packet.TypeData, env.ID(), dst
		core.BufferAndDiscover(filler, 0)
	}
	env.Reset() // keep only the traffic caused by the overflowing packet

	over := packet.Get()
	over.Type, over.Src, over.Dst = packet.TypeData, env.ID(), dst
	core.BufferAndDiscover(over, 0)

	drops := env.Drops
	if len(drops) != 1 || drops[0].Reason != network.DropCongestion {
		t.Fatalf("overflow packet not dropped as congestion: %+v", drops)
	}
	// The query toward dst is already outstanding from the fill phase, so
	// no packet may have been sent at all — and in particular no spurious
	// RREQ toward terminal 0 (the zero value a recycled packet reports).
	for _, p := range env.Sent {
		if p.Type == packet.TypeRREQ && p.Dst != dst {
			t.Fatalf("discovery flood targeted %d, want %d", p.Dst, dst)
		}
	}
	if _, running := core.queries[0]; running {
		t.Fatal("spurious discovery toward terminal 0 after congestion recycle")
	}
	if _, running := core.queries[dst]; !running {
		t.Fatal("discovery toward the real destination was lost")
	}
}
