package routing

import (
	"sort"
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/sim"
)

// FlowKey identifies one unidirectional data flow.
type FlowKey struct {
	Src, Dst int
}

// Candidate is one route offer gathered at a query's destination (an RREQ
// or LQ copy). The packet snapshot carries the protocol's accumulated
// metric fields.
type Candidate struct {
	From    int // neighbour that delivered this copy
	Metric  float64
	GeoHops int
	Payload any
}

// CoreConfig parameterizes the shared on-demand machinery. The five
// points of variation across AODV, RICA, BGCA and ABR are the metric
// accumulation, the destination's gathering window, the candidate
// ordering, the route idle timeout, and what happens on failures.
type CoreConfig struct {
	// Accumulate updates a query packet's metric fields for the link it
	// just traversed (called once per copy, on arrival, before dedupe).
	// AODV adds one hop; RICA/BGCA add the measured CSI hop distance; ABR
	// folds in associativity and load.
	Accumulate func(pkt *packet.Packet)
	// CollectWindow is how long a destination gathers competing copies
	// before replying. Zero reproduces AODV's "first RREQ wins".
	CollectWindow time.Duration
	// Better reports whether candidate a beats b. Nil means smaller
	// Metric wins (ties: earlier arrival).
	Better func(a, b Candidate) bool
	// RouteIdle is the table's idle expiry (paper: 1 s for RICA).
	RouteIdle time.Duration
	// QueryTimeout and MaxRetries bound full discovery floods.
	QueryTimeout time.Duration
	MaxRetries   int
	// RepairTTL and RepairTimeout bound localized queries (LQ). A zero
	// RepairTTL disables local repair (AODV, RICA).
	RepairTTL     int
	RepairTimeout time.Duration
	// RebroadcastImproved makes terminals rebroadcast flood copies whose
	// accumulated metric improves on the best copy seen, instead of only
	// the first copy. Channel-adaptive protocols need this for their CSI
	// distances to converge to real shortest routes; it is also the main
	// source of their extra routing overhead (paper §III.D).
	RebroadcastImproved bool
	// OnRouteInstalled runs after a route to dst is installed or refreshed
	// by an RREP/LREP (not by protocol-specific installs).
	OnRouteInstalled func(dst int, e *Entry, now time.Duration)
	// OnQueryAtDestination runs when this terminal, as the destination of
	// a query flood, first sees a given flood instance (RICA bootstraps
	// its CSI checker here).
	OnQueryAtDestination func(src int, pkt *packet.Packet, now time.Duration)
	// OnQueryFailed runs when a flood of the given kind exhausted its
	// retries; pending packets have already been dropped.
	OnQueryFailed func(dst int, kind packet.Type, now time.Duration)
	// SuppressREER, when set, is consulted before a source reacts to an
	// arriving REER by re-flooding; RICA ignores REERs while CSI checking
	// packets are flowing (paper §II.D).
	SuppressREER func(dst int, now time.Duration) bool
}

// Core implements the protocol-independent part of on-demand routing:
// query floods (full RREQ or TTL-scoped LQ), reverse-path replies, route
// tables with idle expiry, pending-packet buffers, upstream pointers for
// REER relay, and link-failure bookkeeping.
type Core struct {
	env network.Env
	cfg CoreConfig

	Table    *Table
	hist     *History
	pending  map[int]*Pending
	queries  map[int]*queryState
	gather   map[packet.FloodKey]*gatherState
	upstream map[FlowKey]upstreamRec
	delayed  *DelayedSender
	bcast    uint32
}

type queryState struct {
	kind    packet.Type
	retries int
	timer   sim.Timer
}

type gatherState struct {
	best    Candidate
	replied bool
}

type upstreamRec struct {
	node int
	at   time.Duration
}

// upstreamLifetime bounds how long an upstream pointer learned from data
// traffic stays usable for REER relay.
const upstreamLifetime = 3 * time.Second

// NewCore builds the shared machinery around env.
func NewCore(env network.Env, cfg CoreConfig) *Core {
	if cfg.Accumulate == nil {
		panic("routing: CoreConfig.Accumulate is required")
	}
	if cfg.Better == nil {
		cfg.Better = func(a, b Candidate) bool { return a.Metric < b.Metric }
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = DiscoveryTimeout
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = MaxDiscoveryRetries
	}
	table := NewTable(cfg.RouteIdle)
	// Env implementations wired for telemetry (network.Node) receive the
	// table's churn; scripted test envs simply don't implement the
	// observer and stay unaffected.
	if to, ok := env.(TableObserver); ok {
		table.OnInstall = to.NoteRouteInstalled
		table.OnInvalidate = to.NoteRouteInvalidated
	}
	hist := NewHistory()
	// The same pattern discovers the run's observability registry: an Env
	// exposing Obs (network.Node) gets its flood-suppression and
	// history-spill counts; bare test envs count nothing.
	if op, ok := env.(ObsProvider); ok {
		hist.SetObs(op.Obs())
	}
	return &Core{
		env:      env,
		cfg:      cfg,
		Table:    table,
		hist:     hist,
		pending:  make(map[int]*Pending),
		queries:  make(map[int]*queryState),
		gather:   make(map[packet.FloodKey]*gatherState),
		upstream: make(map[FlowKey]upstreamRec),
		delayed:  NewDelayedSender(env),
	}
}

// Delayed exposes the core's closure-free delayed sender so protocols
// sharing the core (RICA's CSIC relay) reuse its arena for their own
// jittered rebroadcasts.
func (c *Core) Delayed() *DelayedSender { return c.delayed }

// Env returns the agent's environment (for protocol code sharing the core).
func (c *Core) Env() network.Env { return c.env }

// History exposes the flood dedupe table to protocol-specific floods.
func (c *Core) History() *History { return c.hist }

// DrainPending implements network.Drainer for agents built on the core:
// it silently releases every data packet still parked behind an
// unanswered route query and every control packet waiting on a jittered
// rebroadcast. Called only after the simulation horizon, so nothing is
// recorded or sent. The query-buffered packets are end-to-end data (the
// conservation check's in-flight term); the jittered relays are control.
func (c *Core) DrainPending() (data, control int) {
	for _, p := range c.pending {
		data += p.ReleaseAll()
	}
	control = c.delayed.Drain()
	return data, control
}

// Forward tries to send pkt along a live table route; it reports whether
// it did. Split horizon: a packet is never returned to the neighbour it
// just arrived from, which prevents the transient two-node loops stale
// route updates can otherwise create.
func (c *Core) Forward(pkt *packet.Packet, now time.Duration) bool {
	e := c.Table.Lookup(pkt.Dst, now)
	if e == nil {
		return false
	}
	if pkt.Src != c.env.ID() && e.Next == pkt.From {
		return false
	}
	c.Table.Touch(pkt.Dst, now)
	c.env.EnqueueData(pkt, e.Next)
	return true
}

// BufferAndDiscover holds pkt and ensures a full discovery flood toward
// its destination is running.
func (c *Core) BufferAndDiscover(pkt *packet.Packet, now time.Duration) {
	dst := pkt.Dst // a full buffer drops (and recycles) pkt inside Add
	p := c.pending[dst]
	if p == nil {
		p = &Pending{}
		c.pending[dst] = p
	}
	p.Add(pkt, now, c.env)
	c.StartQuery(dst, packet.TypeRREQ, 0, now)
}

// BufferForRepair holds pkt while a localized repair query runs (BGCA,
// ABR pivots).
func (c *Core) BufferForRepair(pkt *packet.Packet, now time.Duration) {
	p := c.pending[pkt.Dst]
	if p == nil {
		p = &Pending{}
		c.pending[pkt.Dst] = p
	}
	p.Add(pkt, now, c.env)
}

// PendingLen reports how many packets wait for a route to dst.
func (c *Core) PendingLen(dst int) int {
	if p := c.pending[dst]; p != nil {
		return p.Len()
	}
	return 0
}

// StartQuery launches (or joins) a query flood toward dst of the given
// kind: TypeRREQ floods the whole network, TypeLQ is TTL-scoped. No-op if
// a query of that kind is already outstanding.
func (c *Core) StartQuery(dst int, kind packet.Type, ttl int, now time.Duration) {
	if _, running := c.queries[dst]; running {
		return
	}
	qs := &queryState{kind: kind}
	c.queries[dst] = qs
	c.sendQuery(dst, qs, ttl)
}

func (c *Core) sendQuery(dst int, qs *queryState, ttl int) {
	c.bcast++
	pkt := packet.Get() // recycled by the MAC layer after the flood airs
	pkt.CopyFrom(&packet.Packet{
		Type:        qs.kind,
		Src:         c.env.ID(),
		Dst:         dst,
		To:          packet.Broadcast,
		Size:        packet.SizeOf(qs.kind),
		BroadcastID: c.bcast,
		TTL:         ttl,
		CreatedAt:   c.env.Now(),
	})
	// Mark our own flood seen so echoes are ignored.
	c.hist.FirstCopy(pkt, c.env.Now())
	c.env.SendControl(pkt)

	timeout := c.cfg.QueryTimeout
	if qs.kind == packet.TypeLQ && c.cfg.RepairTimeout > 0 {
		timeout = c.cfg.RepairTimeout
	}
	qs.timer = c.env.Schedule(timeout, func(now time.Duration) {
		c.queryTimedOut(dst, qs, ttl, now)
	})
}

func (c *Core) queryTimedOut(dst int, qs *queryState, ttl int, now time.Duration) {
	if c.queries[dst] != qs {
		return // superseded
	}
	// Local repair queries get a single shot; full floods retry.
	maxRetries := c.cfg.MaxRetries
	if qs.kind == packet.TypeLQ {
		maxRetries = 0
	}
	if qs.retries < maxRetries {
		qs.retries++
		c.sendQuery(dst, qs, ttl)
		return
	}
	delete(c.queries, dst)
	if p := c.pending[dst]; p != nil {
		p.DropAll(c.env, network.DropNoRoute)
	}
	if c.cfg.OnQueryFailed != nil {
		c.cfg.OnQueryFailed(dst, qs.kind, now)
	}
}

// HandleControl processes the core's packet kinds; it reports false for
// kinds the protocol must handle itself (CSIC, beacons, LSAs, RUPD).
func (c *Core) HandleControl(pkt *packet.Packet, now time.Duration) bool {
	switch pkt.Type {
	case packet.TypeRREQ, packet.TypeLQ:
		c.handleQuery(pkt, now)
	case packet.TypeRREP, packet.TypeLREP:
		c.handleReply(pkt, now)
	case packet.TypeREER:
		c.handleREER(pkt, now)
	default:
		return false
	}
	return true
}

// handleQuery processes an RREQ/LQ copy: accumulate the metric, dedupe,
// gather at the destination, or rebroadcast within TTL.
func (c *Core) handleQuery(pkt *packet.Packet, now time.Duration) {
	self := c.env.ID()
	if pkt.Src == self {
		return // own flood echoed back
	}
	c.cfg.Accumulate(pkt)
	pkt.GeoHops++

	if pkt.Dst == self {
		c.gatherAtDestination(pkt, now)
		return
	}
	var forward bool
	if c.cfg.RebroadcastImproved {
		_, forward = c.hist.Improved(pkt, now)
	} else {
		_, forward = c.hist.FirstCopy(pkt, now)
	}
	if !forward {
		return
	}
	if pkt.TTL != 0 {
		pkt.TTL--
		if pkt.TTL <= 0 {
			return // scope exhausted
		}
	}
	fwd := pkt.Clone()
	fwd.To = packet.Broadcast
	c.delayed.SendJittered(fwd)
}

// gatherAtDestination collects copies of one flood and answers the best.
func (c *Core) gatherAtDestination(pkt *packet.Packet, now time.Duration) {
	key := pkt.Key()
	cand := Candidate{From: pkt.From, Metric: pkt.HopCount, GeoHops: pkt.GeoHops, Payload: pkt.Payload}
	gs := c.gather[key]
	if gs == nil {
		gs = &gatherState{best: cand}
		c.gather[key] = gs
		if c.cfg.OnQueryAtDestination != nil {
			c.cfg.OnQueryAtDestination(pkt.Src, pkt, now)
		}
		if c.cfg.CollectWindow <= 0 {
			c.reply(pkt.Src, key, gs, now) // AODV: first copy wins
			return
		}
		// Copy the scalar out: pkt is a pooled delivery copy that is long
		// recycled by the time the collection window closes.
		src := pkt.Src
		c.env.Schedule(c.cfg.CollectWindow, func(at time.Duration) {
			c.reply(src, key, gs, at)
		})
		return
	}
	if !gs.replied && c.cfg.Better(cand, gs.best) {
		gs.best = cand
	}
}

// reply unicasts the RREP/LREP for the chosen candidate back along the
// reverse path.
func (c *Core) reply(src int, key packet.FloodKey, gs *gatherState, now time.Duration) {
	if gs.replied {
		return
	}
	gs.replied = true
	kind := packet.TypeRREP
	if key.Type() == packet.TypeLQ {
		kind = packet.TypeLREP
	}
	rep := packet.Get() // recycled by the MAC layer after transmission
	rep.CopyFrom(&packet.Packet{
		Type:        kind,
		Src:         src,          // travels toward the query's origin
		Dst:         int(key.Dst), // the flow destination routes point toward
		To:          gs.best.From,
		Size:        packet.SizeOf(kind),
		BroadcastID: key.BroadcastID,
		GeoHops:     0,
		HopCount:    0,
		CreatedAt:   now,
	})
	c.env.SendControl(rep)
}

// handleReply installs the forward route and retraces the reverse path.
func (c *Core) handleReply(pkt *packet.Packet, now time.Duration) {
	self := c.env.ID()
	if pkt.Dst == self {
		return // our own reply echoed
	}
	c.cfg.Accumulate(pkt)
	pkt.GeoHops++
	e := c.Table.Install(pkt.Dst, pkt.From, pkt.HopCount, pkt.GeoHops, now)
	if c.cfg.OnRouteInstalled != nil {
		c.cfg.OnRouteInstalled(pkt.Dst, e, now)
	}

	if pkt.Src == self {
		// Query answered: flush whatever waited on it.
		if qs := c.queries[pkt.Dst]; qs != nil {
			qs.timer.Cancel()
			delete(c.queries, pkt.Dst)
		}
		c.FlushPending(pkt.Dst, now)
		return
	}
	// Retrace the reverse pointer recorded when the query flood passed:
	// the flood's key was {origin: query source, dst: replying terminal}.
	queryKind := packet.TypeRREQ
	if pkt.Type == packet.TypeLREP {
		queryKind = packet.TypeLQ
	}
	rec, ok := c.hist.Lookup(packet.MakeFloodKey(pkt.Src, pkt.Dst, pkt.BroadcastID, queryKind))
	if !ok {
		return // reverse path lost; the query will time out and retry
	}
	fwd := pkt.Clone()
	fwd.To = rec.FirstFrom
	c.env.SendControl(fwd)
}

// NoteData records forwarding state gleaned from data packets in transit:
// the upstream pointer for REER relay and the forward entry's freshness.
func (c *Core) NoteData(pkt *packet.Packet, now time.Duration) {
	self := c.env.ID()
	if pkt.Dst != self {
		c.upstream[FlowKey{Src: pkt.Src, Dst: pkt.Dst}] = upstreamRec{node: pkt.From, at: now}
	}
}

// FlushPending re-presents every packet waiting on dst to the forwarding
// path; packets that still have no route are dropped.
func (c *Core) FlushPending(dst int, now time.Duration) {
	p := c.pending[dst]
	if p == nil {
		return
	}
	p.Flush(now, c.env, func(pkt *packet.Packet) {
		if !c.Forward(pkt, now) {
			c.env.DropData(pkt, network.DropNoRoute)
		}
	})
}

// LinkFailed is the default data-plane failure reaction: invalidate routes
// through the dead neighbour, and either re-discover (at the source) or
// drop and report upstream with a REER (in transit). Protocols with local
// repair intercept before calling this.
func (c *Core) LinkFailed(next int, pkt *packet.Packet, now time.Duration) {
	c.Table.InvalidateNext(next)
	if pkt.Src == c.env.ID() {
		c.BufferAndDiscover(pkt, now)
		return
	}
	src, dst := pkt.Src, pkt.Dst // DropData recycles the packet
	c.env.DropData(pkt, network.DropLinkBreak)
	c.SendREER(src, dst, now)
}

// SendREER unicasts a route error toward the flow's source along the
// upstream pointer, if one is fresh.
func (c *Core) SendREER(src, dst int, now time.Duration) {
	up, ok := c.upstream[FlowKey{Src: src, Dst: dst}]
	if !ok || now-up.at > upstreamLifetime {
		return
	}
	reer := packet.Get() // recycled by the MAC layer after transmission
	reer.CopyFrom(&packet.Packet{
		Type:      packet.TypeREER,
		Src:       src,
		Dst:       dst,
		To:        up.node,
		Via:       c.env.ID(),
		Size:      packet.SizeREER,
		CreatedAt: now,
	})
	c.env.SendControl(reer)
}

// REERAll reports the loss of every known flow through this terminal
// toward dst to the respective sources (a repair pivot giving up).
func (c *Core) REERAll(dst int, now time.Duration) {
	var srcs []int
	for fk, rec := range c.upstream {
		if fk.Dst == dst && now-rec.at <= upstreamLifetime {
			srcs = append(srcs, fk.Src)
		}
	}
	sort.Ints(srcs) // map order is random; transmissions must be deterministic
	for _, src := range srcs {
		c.SendREER(src, dst, now)
	}
}

// handleREER applies the paper's REER discipline: a REER is honoured only
// when its sender is this terminal's current downstream for the flow
// (otherwise it concerns an abandoned route and is ignored); the source
// re-floods unless the protocol suppresses it.
func (c *Core) handleREER(pkt *packet.Packet, now time.Duration) {
	self := c.env.ID()
	e := c.Table.Peek(pkt.Dst)
	if e == nil || e.Next != pkt.From {
		return // stale route's error: ignore (paper §II.D)
	}
	c.Table.Invalidate(pkt.Dst)
	if pkt.Src != self {
		c.SendREER(pkt.Src, pkt.Dst, now)
		return
	}
	if c.cfg.SuppressREER != nil && c.cfg.SuppressREER(pkt.Dst, now) {
		return
	}
	if c.PendingLen(pkt.Dst) > 0 {
		c.StartQuery(pkt.Dst, packet.TypeRREQ, 0, now)
	}
}

// ExportRoutes snapshots the core's route table (see Table.ExportEntries).
// Protocol agents forward to it so the checkpoint capture can verify
// route state without knowing each protocol's internals.
func (c *Core) ExportRoutes() []Entry { return c.Table.ExportEntries() }
