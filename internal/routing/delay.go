package routing

import (
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/sim"
)

// DelayedSender transmits control packets after a delay without allocating
// a closure per packet: the pending packet parks in a slot arena and the
// timer carries the slot index over the kernel's ScheduleArg fast path.
// Flood rebroadcasts are the simulator's most frequent delayed sends (every
// received RREQ/CSIC/LSA copy re-arms one behind Jitter), which made the
// captured-closure variant a dominant allocation source.
type DelayedSender struct {
	env   network.Env
	slots []*packet.Packet
	free  []int
	fire  sim.ArgHandler // bound send, built once
}

// NewDelayedSender builds a sender around env.
func NewDelayedSender(env network.Env) *DelayedSender {
	d := &DelayedSender{env: env}
	d.fire = d.send
	return d
}

// SendAfter transmits pkt on the common channel after delay.
func (d *DelayedSender) SendAfter(delay time.Duration, pkt *packet.Packet) {
	var slot int
	if n := len(d.free); n > 0 {
		slot = d.free[n-1]
		d.free = d.free[:n-1]
		d.slots[slot] = pkt
	} else {
		slot = len(d.slots)
		d.slots = append(d.slots, pkt)
	}
	d.env.ScheduleArg(delay, d.fire, slot, 0)
}

// SendJittered transmits pkt after the standard rebroadcast jitter drawn
// from the environment's randomness.
func (d *DelayedSender) SendJittered(pkt *packet.Packet) {
	d.SendAfter(Jitter(d.env.Rand()), pkt)
}

func (d *DelayedSender) send(_ time.Duration, slot, _ int) {
	pkt := d.slots[slot]
	d.slots[slot] = nil
	d.free = append(d.free, slot)
	d.env.SendControl(pkt)
}

// Drain silently releases every parked packet whose timer lies past the
// simulation horizon. Nothing is sent or recorded; the end-of-run drain
// uses it for exact pool-leak accounting. Returns how many packets were
// released.
func (d *DelayedSender) Drain() int {
	n := 0
	for i, pkt := range d.slots {
		if pkt != nil {
			d.slots[i] = nil
			d.free = append(d.free, i)
			pkt.Release()
			n++
		}
	}
	return n
}
