package aodv

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing"
	"rica/internal/routing/routingtest"
)

func newUnit(id int) (*Agent, *routingtest.Env) {
	env := routingtest.New(id, 10)
	for j := 0; j < 10; j++ {
		env.Classes[j] = channel.ClassB
	}
	return New(env), env
}

func rreq(src, dst, from int, bid uint32, hops float64) *packet.Packet {
	return &packet.Packet{
		Type: packet.TypeRREQ, Src: src, Dst: dst, From: from,
		To: packet.Broadcast, Size: packet.SizeRREQ,
		BroadcastID: bid, HopCount: hops,
	}
}

func TestSourceFloodsWhenNoRoute(t *testing.T) {
	a, env := newUnit(0)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, Size: packet.SizeData}
	a.RouteData(data, env.Now())
	if len(env.Drops) != 0 {
		t.Fatalf("source dropped instead of buffering: %+v", env.Drops)
	}
	reqs := env.SentOfType(packet.TypeRREQ)
	if len(reqs) != 1 {
		t.Fatalf("RREQ count = %d, want 1", len(reqs))
	}
	if reqs[0].Dst != 5 || reqs[0].TTL != 0 {
		t.Fatalf("RREQ = %+v, want full flood toward 5", reqs[0])
	}
	// A second packet joins the same discovery without a new flood.
	a.RouteData(&packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, Size: packet.SizeData}, env.Now())
	if len(env.SentOfType(packet.TypeRREQ)) != 1 {
		t.Fatal("second packet re-flooded while discovery pending")
	}
}

func TestIntermediateDropsWithoutRoute(t *testing.T) {
	a, env := newUnit(3)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.RouteData(data, env.Now())
	if len(env.Drops) != 1 || env.Drops[0].Reason != network.DropNoRoute {
		t.Fatalf("drops = %+v, want one no-route (AODV has no local repair)", env.Drops)
	}
}

func TestDestinationRepliesToFirstRREQOnly(t *testing.T) {
	a, env := newUnit(5)
	a.HandleControl(rreq(0, 5, 2, 1, 3), env.Now())
	a.HandleControl(rreq(0, 5, 3, 1, 1), env.Now()) // better but late: ignored
	env.Pump(100 * time.Millisecond)
	reps := env.SentOfType(packet.TypeRREP)
	if len(reps) != 1 {
		t.Fatalf("RREP count = %d, want 1 (first RREQ wins)", len(reps))
	}
	if reps[0].To != 2 {
		t.Fatalf("RREP went to %d, want the first copy's sender 2", reps[0].To)
	}
	if reps[0].Src != 0 || reps[0].Dst != 5 {
		t.Fatalf("RREP flow identity = (%d,%d)", reps[0].Src, reps[0].Dst)
	}
}

func TestIntermediateRebroadcastsOncePerFlood(t *testing.T) {
	a, env := newUnit(3)
	a.HandleControl(rreq(0, 5, 2, 1, 0), env.Now())
	a.HandleControl(rreq(0, 5, 4, 1, 0), env.Now()) // duplicate copy
	env.Pump(50 * time.Millisecond)
	if n := len(env.SentOfType(packet.TypeRREQ)); n != 1 {
		t.Fatalf("rebroadcasts = %d, want 1 (plain AODV dedupes strictly)", n)
	}
	// A new broadcast id floods again.
	a.HandleControl(rreq(0, 5, 2, 2, 0), env.Now())
	env.Pump(50 * time.Millisecond)
	if n := len(env.SentOfType(packet.TypeRREQ)); n != 2 {
		t.Fatalf("new flood not rebroadcast (total %d)", n)
	}
}

func TestRREPInstallsRouteAndRetraces(t *testing.T) {
	a, env := newUnit(3)
	// The flood passed through us from terminal 2.
	a.HandleControl(rreq(0, 5, 2, 1, 0), env.Now())
	env.Pump(50 * time.Millisecond)
	env.Reset()
	// The reply comes back from terminal 4 (downstream toward 5).
	a.HandleControl(&packet.Packet{
		Type: packet.TypeRREP, Src: 0, Dst: 5, From: 4, To: 3,
		Size: packet.SizeRREP, BroadcastID: 1,
	}, env.Now())
	reps := env.SentOfType(packet.TypeRREP)
	if len(reps) != 1 || reps[0].To != 2 {
		t.Fatalf("RREP relay = %+v, want unicast to reverse pointer 2", reps)
	}
	// Forward route toward 5 through 4 must now exist.
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.RouteData(data, env.Now())
	if len(env.Enqueues) != 1 || env.Enqueues[0].Next != 4 {
		t.Fatalf("enqueues = %+v, want via 4", env.Enqueues)
	}
}

func TestRREPAtSourceFlushesPending(t *testing.T) {
	a, env := newUnit(0)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, Size: packet.SizeData}
	a.RouteData(data, env.Now()) // buffered + flood
	env.Reset()
	a.HandleControl(&packet.Packet{
		Type: packet.TypeRREP, Src: 0, Dst: 5, From: 1, To: 0,
		Size: packet.SizeRREP, BroadcastID: 1,
	}, env.Now())
	if len(env.Enqueues) != 1 || env.Enqueues[0].Next != 1 {
		t.Fatalf("pending packet not flushed onto the fresh route: %+v", env.Enqueues)
	}
}

func TestDiscoveryRetriesThenGivesUp(t *testing.T) {
	a, env := newUnit(0)
	a.RouteData(&packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, Size: packet.SizeData}, env.Now())
	// No reply ever arrives: expect MaxDiscoveryRetries re-floods, then a
	// no-route drop of the pending packet.
	env.Pump(10 * time.Second)
	wantFloods := 1 + routing.MaxDiscoveryRetries
	if n := len(env.SentOfType(packet.TypeRREQ)); n != wantFloods {
		t.Fatalf("floods = %d, want %d", n, wantFloods)
	}
	if len(env.Drops) != 1 || env.Drops[0].Reason != network.DropNoRoute {
		t.Fatalf("drops = %+v, want the buffered packet dropped no-route", env.Drops)
	}
}

func TestLinkFailedAtIntermediateSendsREER(t *testing.T) {
	a, env := newUnit(3)
	// Learn the upstream pointer from transiting data.
	a.DataArrived(&packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2}, env.Now())
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.LinkFailed(4, data, env.Now())
	if len(env.Drops) != 1 || env.Drops[0].Reason != network.DropLinkBreak {
		t.Fatalf("drops = %+v, want link-break", env.Drops)
	}
	reers := env.SentOfType(packet.TypeREER)
	if len(reers) != 1 || reers[0].To != 2 {
		t.Fatalf("REER = %+v, want unicast upstream to 2", reers)
	}
}

func TestRouteIdleExpires(t *testing.T) {
	a, env := newUnit(3)
	a.HandleControl(rreq(0, 5, 2, 1, 0), env.Now())
	env.Pump(50 * time.Millisecond)
	a.HandleControl(&packet.Packet{
		Type: packet.TypeRREP, Src: 0, Dst: 5, From: 4, To: 3,
		Size: packet.SizeRREP, BroadcastID: 1,
	}, env.Now())
	env.Reset()
	env.Pump(ActiveRouteTimeout + time.Second)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.RouteData(data, env.Now())
	if len(env.Enqueues) != 0 {
		t.Fatal("idle route still used after ActiveRouteTimeout")
	}
	if len(env.Drops) != 1 {
		t.Fatalf("drops = %+v, want stale-route drop", env.Drops)
	}
}
