// Package aodv implements the AODV-style baseline the paper compares
// against: on-demand route discovery with plain hop counts where the
// destination answers only the first arriving RREQ (paper §III.B), route
// errors propagate to the source, and the source recovers with a fresh
// full flood. It is deliberately channel-oblivious — the protocol never
// consults CSI — which is exactly the shortcoming RICA addresses.
package aodv

import (
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing"
)

// ActiveRouteTimeout is how long an unused AODV route stays valid.
const ActiveRouteTimeout = 3 * time.Second

// Agent is one terminal's AODV instance.
type Agent struct {
	routing.BaseAgent
	env  network.Env
	core *routing.Core
}

var _ network.Agent = (*Agent)(nil)

// New builds the terminal's AODV agent.
func New(env network.Env) *Agent {
	a := &Agent{env: env}
	a.core = routing.NewCore(env, routing.CoreConfig{
		// Plain hop count, no channel awareness.
		Accumulate:    func(pkt *packet.Packet) { pkt.HopCount++ },
		CollectWindow: 0, // destination replies to the first RREQ only
		RouteIdle:     ActiveRouteTimeout,
	})
	return a
}

// HandleControl implements network.Agent.
func (a *Agent) HandleControl(pkt *packet.Packet, now time.Duration) {
	a.core.HandleControl(pkt, now)
}

// RouteData implements network.Agent: use the table, or buffer and flood
// at the source; intermediates without a route drop (AODV has no local
// repair — the paper attributes its link-break losses to this).
func (a *Agent) RouteData(pkt *packet.Packet, now time.Duration) {
	if a.core.Forward(pkt, now) {
		return
	}
	if pkt.Src == a.env.ID() {
		a.core.BufferAndDiscover(pkt, now)
		return
	}
	a.env.DropData(pkt, network.DropNoRoute)
}

// DataArrived implements network.Agent.
func (a *Agent) DataArrived(pkt *packet.Packet, now time.Duration) {
	a.core.NoteData(pkt, now)
}

// LinkFailed implements network.Agent.
func (a *Agent) LinkFailed(next int, pkt *packet.Packet, now time.Duration) {
	a.core.LinkFailed(next, pkt, now)
}

// DrainPending implements network.Drainer: once the simulation horizon
// has passed, packets parked behind route queries or jittered relays in
// the shared core are silently released for exact pool-leak accounting.
func (a *Agent) DrainPending() (data, control int) { return a.core.DrainPending() }

// ExportRoutes snapshots the agent's route table for checkpoint
// verification (see routing.Core.ExportRoutes).
func (a *Agent) ExportRoutes() []routing.Entry { return a.core.ExportRoutes() }
