package aodv_test

import (
	"testing"
	"time"

	"rica/internal/metrics"
	"rica/internal/network"
	"rica/internal/routing/aodv"
	"rica/internal/world"
)

func factory(env network.Env, _ *world.World, _ int) network.Agent { return aodv.New(env) }

func run(t *testing.T, speedKmh, rate float64, dur time.Duration, seed int64) metrics.Summary {
	t.Helper()
	cfg := world.DefaultConfig(speedKmh, rate)
	cfg.Duration = dur
	cfg.Seed = seed
	return world.New(cfg, factory).Run()
}

func TestStaticNetworkDeliversMost(t *testing.T) {
	s := run(t, 0, 10, 30*time.Second, 1)
	if s.Generated < 1000 {
		t.Fatalf("generated only %d packets; traffic generator broken?", s.Generated)
	}
	if s.DeliveryRatio < 0.6 {
		t.Fatalf("static delivery ratio = %.2f (delivered %d/%d, drops %v), want > 0.6",
			s.DeliveryRatio, s.Delivered, s.Generated, s.Dropped)
	}
	if s.AvgDelay <= 0 || s.AvgDelay > time.Second {
		t.Fatalf("avg delay = %v, implausible", s.AvgDelay)
	}
}

func TestMobileNetworkStillFunctions(t *testing.T) {
	s := run(t, 40, 10, 30*time.Second, 2)
	if s.DeliveryRatio < 0.3 {
		t.Fatalf("mobile delivery ratio = %.2f, want > 0.3 (drops %v)", s.DeliveryRatio, s.Dropped)
	}
	if s.OverheadBps <= 0 {
		t.Fatal("no routing overhead recorded; discovery never ran?")
	}
}

func TestHopCountsArePlausible(t *testing.T) {
	s := run(t, 0, 10, 20*time.Second, 3)
	if s.AvgHops < 1 || s.AvgHops > 10 {
		t.Fatalf("avg hops = %.2f, want within [1, 10] on a 1000 m field with 250 m radios", s.AvgHops)
	}
	if s.AvgLinkThroughputBps < 50_000 || s.AvgLinkThroughputBps > 250_000 {
		t.Fatalf("avg link throughput = %.0f outside class range", s.AvgLinkThroughputBps)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := run(t, 20, 10, 10*time.Second, 7)
	b := run(t, 20, 10, 10*time.Second, 7)
	if a.Generated != b.Generated || a.Delivered != b.Delivered ||
		a.AvgDelay != b.AvgDelay || a.OverheadBps != b.OverheadBps {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := run(t, 20, 10, 10*time.Second, 8)
	b := run(t, 20, 10, 10*time.Second, 9)
	if a.Generated == b.Generated && a.Delivered == b.Delivered && a.AvgDelay == b.AvgDelay {
		t.Fatal("different seeds produced identical runs; streams not independent")
	}
}

func TestPacketConservation(t *testing.T) {
	s := run(t, 40, 20, 20*time.Second, 4)
	accounted := s.Delivered + s.DropTotal()
	// In-flight and still-buffered packets at the horizon are the slack.
	if accounted > s.Generated {
		t.Fatalf("delivered %d + dropped %d exceeds generated %d",
			s.Delivered, s.DropTotal(), s.Generated)
	}
	if slack := s.Generated - accounted; float64(slack) > 0.2*float64(s.Generated) {
		t.Fatalf("%d packets unaccounted (generated %d, delivered %d, dropped %v)",
			slack, s.Generated, s.Delivered, s.Dropped)
	}
}
