// Package abr implements Associativity-Based Routing, the long-lived-route
// baseline in the paper's comparison. Terminals broadcast periodic beacons
// on the common channel; each neighbour counts consecutive beacons as
// "associativity ticks", a proxy for link stability (a pair that has been
// in range a long time will likely stay in range). Route discovery floods
// like AODV, but the destination gathers candidates and picks the *most
// stable* route — highest summed associativity, with queue load and hop
// count as tie-breakers, which is why ABR's routes run longer than other
// protocols' (paper §III.E). When a route link breaks, the upstream pivot
// holds the flow's packets and performs a TTL-scoped localized query (LQ);
// the queue that builds up while the LQ runs is exactly the delay source
// the paper observes for ABR at high mobility.
package abr

import (
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing"
)

// Config tunes the protocol.
type Config struct {
	// BeaconInterval is the associativity beacon period.
	BeaconInterval time.Duration
	// TickCap bounds a link's stability contribution, so one ancient link
	// cannot dominate a whole path's score.
	TickCap int
	// NeighborTimeout resets a neighbour's ticks after this silence.
	NeighborTimeout time.Duration
	// RepairTTL and RepairTimeout bound localized repair queries.
	RepairTTL     int
	RepairTimeout time.Duration
	// RouteIdle expires unused routes.
	RouteIdle time.Duration
}

// DefaultConfig returns the experiment settings.
func DefaultConfig() Config {
	return Config{
		BeaconInterval:  time.Second,
		TickCap:         10,
		NeighborTimeout: 2500 * time.Millisecond,
		RepairTTL:       3,
		RepairTimeout:   300 * time.Millisecond,
		// Long-lived routes are ABR's signature; a lazy idle expiry keeps
		// re-flood churn (and with it, routing overhead) minimal.
		RouteIdle: 10 * time.Second,
	}
}

// meta is the per-copy accumulator ABR floods carry in Packet.Payload:
// summed link stability and summed queue load along the path.
type meta struct {
	Stab float64
	Load int
}

// assoc tracks one neighbour's associativity.
type assoc struct {
	ticks    int
	lastSeen time.Duration
}

// Agent is one terminal's ABR instance.
type Agent struct {
	routing.BaseAgent
	env  network.Env
	cfg  Config
	core *routing.Core

	neighbors map[int]*assoc
}

var _ network.Agent = (*Agent)(nil)

// New builds the terminal's ABR agent.
func New(env network.Env, cfg Config) *Agent {
	a := &Agent{
		env:       env,
		cfg:       cfg,
		neighbors: make(map[int]*assoc),
	}
	a.core = routing.NewCore(env, routing.CoreConfig{
		Accumulate:    a.accumulate,
		CollectWindow: routing.CollectWindow,
		Better:        better,
		RouteIdle:     cfg.RouteIdle,
		RepairTTL:     cfg.RepairTTL,
		RepairTimeout: cfg.RepairTimeout,
		OnQueryFailed: a.onQueryFailed,
	})
	return a
}

// accumulate folds this terminal's view of the arrival link into a flood
// copy: hop count, the link's capped associativity ticks, and the local
// queue backlog (load).
func (a *Agent) accumulate(pkt *packet.Packet) {
	pkt.HopCount++
	m := meta{}
	if prev, ok := pkt.Payload.(meta); ok {
		m = prev
	}
	m.Stab += float64(a.stability(pkt.From))
	m.Load += a.env.QueueBacklog()
	pkt.Payload = m
}

// stability reports the capped associativity of the link to neighbour j.
func (a *Agent) stability(j int) int {
	n := a.neighbors[j]
	if n == nil || a.env.Now()-n.lastSeen > a.cfg.NeighborTimeout {
		return 0
	}
	if n.ticks > a.cfg.TickCap {
		return a.cfg.TickCap
	}
	return n.ticks
}

// better orders candidates by ABR's selection rule: highest per-link
// stability (summed associativity normalized by path length, so stability
// does not simply reward longer paths), then lightest load, then fewest
// hops. Stable routes still run longer than AODV's because the stability
// criterion overrides hop count whenever an older pairing exists off the
// shortest path.
func better(x, y routing.Candidate) bool {
	// Stability compares in coarse bands so that, once the network has
	// been associated a while (every link near the tick cap), the
	// load criterion actually decides — the load balancing the paper
	// credits for ABR's low-mobility delay advantage.
	bx, by := int(meanStab(x)/2.5), int(meanStab(y)/2.5)
	if bx != by {
		return bx > by
	}
	mx, _ := x.Payload.(meta)
	my, _ := y.Payload.(meta)
	if lx, ly := mx.Load/4, my.Load/4; lx != ly {
		return lx < ly // clearly lighter path wins
	}
	if x.Metric != y.Metric {
		return x.Metric < y.Metric
	}
	return mx.Load < my.Load
}

// meanStab is the candidate's associativity per traversed link.
func meanStab(c routing.Candidate) float64 {
	m, _ := c.Payload.(meta)
	hops := c.Metric
	if hops < 1 {
		hops = 1
	}
	return m.Stab / hops
}

// Start implements network.Agent: begin the beacon cycle with a random
// phase spread over the whole interval so beacons interleave instead of
// colliding in one burst.
func (a *Agent) Start(time.Duration) {
	phase := time.Duration(a.env.Rand().Int63n(int64(a.cfg.BeaconInterval)))
	a.env.Schedule(phase, func(now time.Duration) {
		a.beacon(now)
	})
}

// beacon broadcasts one associativity beacon and re-arms.
func (a *Agent) beacon(time.Duration) {
	b := packet.Get() // recycled by the MAC layer after transmission
	b.CopyFrom(&packet.Packet{
		Type: packet.TypeBeacon,
		Src:  a.env.ID(),
		To:   packet.Broadcast,
		Size: packet.SizeBeacon,
	})
	a.env.SendControl(b)
	a.env.Schedule(a.cfg.BeaconInterval+routing.Jitter(a.env.Rand()), func(now time.Duration) {
		a.beacon(now)
	})
}

// HandleControl implements network.Agent.
func (a *Agent) HandleControl(pkt *packet.Packet, now time.Duration) {
	if pkt.Type == packet.TypeBeacon {
		a.noteBeacon(pkt.From, now)
		return
	}
	a.core.HandleControl(pkt, now)
}

// noteBeacon counts a neighbour's beacon, resetting ticks after silence
// (the pair separated and re-associated).
func (a *Agent) noteBeacon(from int, now time.Duration) {
	n := a.neighbors[from]
	if n == nil {
		n = &assoc{}
		a.neighbors[from] = n
	}
	if now-n.lastSeen > a.cfg.NeighborTimeout {
		n.ticks = 0
	}
	n.ticks++
	n.lastSeen = now
}

// RouteData implements network.Agent.
func (a *Agent) RouteData(pkt *packet.Packet, now time.Duration) {
	if a.core.Forward(pkt, now) {
		return
	}
	if pkt.Src == a.env.ID() {
		a.core.BufferAndDiscover(pkt, now)
		return
	}
	// An intermediate without a route holds the packet and repairs — ABR's
	// local-query discipline (the source of its long queues).
	a.core.BufferForRepair(pkt, now)
	a.core.StartQuery(pkt.Dst, packet.TypeLQ, a.cfg.RepairTTL, now)
}

// DataArrived implements network.Agent.
func (a *Agent) DataArrived(pkt *packet.Packet, now time.Duration) {
	a.core.NoteData(pkt, now)
}

// LinkFailed implements network.Agent: the pivot holds packets and queries
// locally.
func (a *Agent) LinkFailed(next int, pkt *packet.Packet, now time.Duration) {
	a.core.Table.InvalidateNext(next)
	dst := pkt.Dst // a full pending buffer drops (and recycles) pkt inside BufferForRepair
	if pkt.Src == a.env.ID() {
		// The source pivot also repairs locally first; a failed repair
		// falls back to a broadcast query via onQueryFailed.
		a.core.BufferForRepair(pkt, now)
		a.core.StartQuery(dst, packet.TypeLQ, a.cfg.RepairTTL, now)
		return
	}
	a.core.BufferForRepair(pkt, now)
	a.core.StartQuery(dst, packet.TypeLQ, a.cfg.RepairTTL, now)
}

// onQueryFailed: a failed localized query reports the break to the flow
// sources; a source falls back to a full flood with the next packet.
func (a *Agent) onQueryFailed(dst int, kind packet.Type, now time.Duration) {
	if kind != packet.TypeLQ {
		return
	}
	a.core.REERAll(dst, now)
}

// DrainPending implements network.Drainer: once the simulation horizon
// has passed, packets parked behind route queries or jittered relays in
// the shared core are silently released for exact pool-leak accounting.
func (a *Agent) DrainPending() (data, control int) { return a.core.DrainPending() }

// ExportRoutes snapshots the agent's route table for checkpoint
// verification (see routing.Core.ExportRoutes).
func (a *Agent) ExportRoutes() []routing.Entry { return a.core.ExportRoutes() }
