package abr

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/routing"
	"rica/internal/routing/routingtest"
)

func newUnit(id int) (*Agent, *routingtest.Env) {
	env := routingtest.New(id, 10)
	for j := 0; j < 10; j++ {
		env.Classes[j] = channel.ClassB
	}
	return New(env, DefaultConfig()), env
}

func beacon(from int) *packet.Packet {
	return &packet.Packet{Type: packet.TypeBeacon, Src: from, From: from, To: packet.Broadcast, Size: packet.SizeBeacon}
}

func TestBeaconsAccumulateTicks(t *testing.T) {
	a, env := newUnit(1)
	for i := 0; i < 5; i++ {
		a.HandleControl(beacon(7), env.Now())
		env.Pump(time.Second)
	}
	if got := a.stability(7); got != 5 {
		t.Fatalf("stability = %d after 5 beacons, want 5", got)
	}
	if got := a.stability(8); got != 0 {
		t.Fatalf("unknown neighbour stability = %d, want 0", got)
	}
}

func TestTicksCapAtTickCap(t *testing.T) {
	a, env := newUnit(1)
	for i := 0; i < 3*DefaultConfig().TickCap; i++ {
		a.HandleControl(beacon(7), env.Now())
		env.Pump(time.Second)
	}
	if got := a.stability(7); got != DefaultConfig().TickCap {
		t.Fatalf("stability = %d, want capped at %d", got, DefaultConfig().TickCap)
	}
}

func TestSilenceResetsAssociativity(t *testing.T) {
	a, env := newUnit(1)
	for i := 0; i < 4; i++ {
		a.HandleControl(beacon(7), env.Now())
		env.Pump(time.Second)
	}
	env.Pump(DefaultConfig().NeighborTimeout + time.Second)
	if got := a.stability(7); got != 0 {
		t.Fatalf("stability after silence = %d, want 0 (stale)", got)
	}
	// The next beacon restarts the count from 1, not 5.
	a.HandleControl(beacon(7), env.Now())
	if got := a.stability(7); got != 1 {
		t.Fatalf("stability after re-association = %d, want 1", got)
	}
}

func TestOwnBeaconCycleRuns(t *testing.T) {
	a, env := newUnit(1)
	a.Start(env.Now())
	env.Pump(5500 * time.Millisecond)
	n := len(env.SentOfType(packet.TypeBeacon))
	if n < 4 || n > 6 {
		t.Fatalf("beacons in 5.5 s = %d, want ≈5", n)
	}
}

func TestBetterPrefersStability(t *testing.T) {
	strongLong := routing.Candidate{Metric: 5, Payload: meta{Stab: 40, Load: 9}}
	weakShort := routing.Candidate{Metric: 2, Payload: meta{Stab: 4, Load: 0}}
	if !better(strongLong, weakShort) {
		t.Fatal("high mean-stability route must beat a short unstable one")
	}
}

func TestBetterTieBreaksOnLoadThenHops(t *testing.T) {
	// Equal per-hop stability bands, clearly different load.
	light := routing.Candidate{Metric: 4, Payload: meta{Stab: 40, Load: 1}}
	heavy := routing.Candidate{Metric: 4, Payload: meta{Stab: 40, Load: 9}}
	if !better(light, heavy) || better(heavy, light) {
		t.Fatal("load must break stability ties")
	}
	// Equal stability band and load band: fewer hops wins.
	short := routing.Candidate{Metric: 3, Payload: meta{Stab: 30, Load: 2}}
	long := routing.Candidate{Metric: 5, Payload: meta{Stab: 50, Load: 2}}
	if !better(short, long) {
		t.Fatal("hop count must break remaining ties")
	}
}

func TestAccumulateFoldsStabilityAndLoad(t *testing.T) {
	a, env := newUnit(1)
	for i := 0; i < 6; i++ {
		a.HandleControl(beacon(7), env.Now())
		env.Pump(time.Second)
	}
	env.Backlog = 3
	pkt := &packet.Packet{Type: packet.TypeRREQ, Src: 0, Dst: 5, From: 7, HopCount: 2, Payload: meta{Stab: 10, Load: 1}}
	a.accumulate(pkt)
	if pkt.HopCount != 3 {
		t.Fatalf("HopCount = %v, want 3", pkt.HopCount)
	}
	m := pkt.Payload.(meta)
	if m.Stab != 16 { // 10 + 6 ticks
		t.Fatalf("Stab = %v, want 16", m.Stab)
	}
	if m.Load != 4 { // 1 + backlog 3
		t.Fatalf("Load = %v, want 4", m.Load)
	}
}

func TestPivotHoldsAndRepairsOnBreak(t *testing.T) {
	a, env := newUnit(3)
	a.core.Table.Install(5, 4, 3, 3, env.Now())
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.LinkFailed(4, data, env.Now())
	if len(env.Drops) != 0 {
		t.Fatalf("ABR pivot dropped instead of holding: %+v", env.Drops)
	}
	if n := len(env.SentOfType(packet.TypeLQ)); n != 1 {
		t.Fatalf("LQ count = %d, want 1", n)
	}
	// Packets arriving during the repair also wait.
	a.RouteData(&packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}, env.Now())
	if len(env.Drops) != 0 || len(env.Enqueues) != 0 {
		t.Fatalf("in-repair packet mishandled: drops %+v enqueues %+v", env.Drops, env.Enqueues)
	}
}

func TestDestinationPrefersStableRoute(t *testing.T) {
	a, env := newUnit(5)
	// Neighbour 2 is an old associate, neighbour 3 brand new.
	for i := 0; i < 10; i++ {
		a.HandleControl(beacon(2), env.Now())
		env.Pump(time.Second)
	}
	a.HandleControl(beacon(3), env.Now())
	env.Reset()
	mk := func(from int, m meta) *packet.Packet {
		return &packet.Packet{
			Type: packet.TypeRREQ, Src: 0, Dst: 5, From: from,
			To: packet.Broadcast, Size: packet.SizeRREQ, BroadcastID: 1,
			HopCount: 2, Payload: m,
		}
	}
	a.HandleControl(mk(3, meta{Stab: 2, Load: 0}), env.Now())  // unstable path first
	a.HandleControl(mk(2, meta{Stab: 25, Load: 0}), env.Now()) // stable path later
	env.Pump(100 * time.Millisecond)
	reps := env.SentOfType(packet.TypeRREP)
	if len(reps) != 1 || reps[0].To != 2 {
		t.Fatalf("destination chose %+v, want the stable candidate via 2", reps)
	}
}
