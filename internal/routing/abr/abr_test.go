package abr_test

import (
	"testing"
	"time"

	"rica/internal/metrics"
	"rica/internal/network"
	"rica/internal/routing/abr"
	"rica/internal/routing/aodv"
	"rica/internal/world"
)

func abrFactory(env network.Env, _ *world.World, _ int) network.Agent {
	return abr.New(env, abr.DefaultConfig())
}

func aodvFactory(env network.Env, _ *world.World, _ int) network.Agent { return aodv.New(env) }

func run(t *testing.T, f world.AgentFactory, speedKmh, rate float64, dur time.Duration, seed int64) metrics.Summary {
	t.Helper()
	cfg := world.DefaultConfig(speedKmh, rate)
	cfg.Duration = dur
	cfg.Seed = seed
	return world.New(cfg, f).Run()
}

func TestStaticDelivery(t *testing.T) {
	s := run(t, abrFactory, 0, 10, 30*time.Second, 1)
	if s.DeliveryRatio < 0.7 {
		t.Fatalf("static delivery = %.3f (drops %v), want > 0.7", s.DeliveryRatio, s.Dropped)
	}
}

func TestMobileDelivery(t *testing.T) {
	s := run(t, abrFactory, 40, 10, 30*time.Second, 2)
	if s.DeliveryRatio < 0.45 {
		t.Fatalf("mobile delivery = %.3f (drops %v), want > 0.45", s.DeliveryRatio, s.Dropped)
	}
}

func TestBeaconsProduceBaselineOverhead(t *testing.T) {
	// Even with zero traffic, 50 beaconing terminals emit ~50 packets/s.
	cfg := world.DefaultConfig(10, 10)
	cfg.Seed = 3
	cfg.Duration = 20 * time.Second
	cfg.Flows = nil
	cfg.NumFlows = 10
	cfg.FlowRate = 0 // flows exist but never fire
	w := world.New(cfg, abrFactory)
	s := w.Run()
	if s.ControlPackets < 500 {
		t.Fatalf("control packets = %d, want ≥ 500 from beaconing alone", s.ControlPackets)
	}
}

// TestDeliversAboveAODVWhenMobile mirrors the paper's §III.C: ABR's stable
// routes and local repair out-deliver AODV under mobility.
func TestDeliversAboveAODVWhenMobile(t *testing.T) {
	var abrSum, aodvSum float64
	for seed := int64(20); seed < 23; seed++ {
		abrSum += run(t, abrFactory, 40, 10, 40*time.Second, seed).DeliveryRatio
		aodvSum += run(t, aodvFactory, 40, 10, 40*time.Second, seed).DeliveryRatio
	}
	if abrSum <= aodvSum {
		t.Fatalf("ABR mean delivery %.3f not above AODV %.3f at 40 km/h", abrSum/3, aodvSum/3)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, abrFactory, 30, 10, 15*time.Second, 5)
	b := run(t, abrFactory, 30, 10, 15*time.Second, 5)
	if a.Delivered != b.Delivered || a.AvgDelay != b.AvgDelay || a.OverheadBps != b.OverheadBps {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
