// Package routing holds the machinery shared by the five protocol
// implementations: route tables with idle expiry, flood duplicate
// suppression, pending-packet buffers for packets awaiting discovery,
// rebroadcast jitter, and a Dijkstra solver for the link-state baseline.
package routing

import (
	"math/rand"
	"sort"
	"time"

	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
)

// Tunables shared across protocols. Values follow the paper where it
// specifies them (40 ms source collection window, 1 s idle route expiry)
// and common MANET practice elsewhere.
const (
	// CollectWindow is how long a terminal gathers competing route
	// candidates (RREQs at the destination, CSI checking packets and RREPs
	// at the source) before deciding (paper §II.D: 40 ms).
	CollectWindow = 40 * time.Millisecond
	// DiscoveryTimeout bounds one RREQ flood round trip.
	DiscoveryTimeout = 1 * time.Second
	// MaxDiscoveryRetries is how many times a source re-floods before
	// dropping the pending packets.
	MaxDiscoveryRetries = 2
	// RebroadcastJitter desynchronizes flood rebroadcasts so neighbours do
	// not systematically collide on the common channel.
	RebroadcastJitter = 8 * time.Millisecond
	// PendingLifetime mirrors the data-buffer residency limit: a packet
	// waiting for a route longer than this is dropped.
	PendingLifetime = 3 * time.Second
	// PendingCap bounds the per-destination discovery buffer.
	PendingCap = 64
)

// BaseAgent provides no-op implementations of the optional Agent hooks so
// protocols embed it and override what they need.
type BaseAgent struct{}

// Start implements network.Agent.
func (BaseAgent) Start(time.Duration) {}

// HandleControl implements network.Agent.
func (BaseAgent) HandleControl(*packet.Packet, time.Duration) {}

// DataArrived implements network.Agent.
func (BaseAgent) DataArrived(*packet.Packet, time.Duration) {}

// Jitter draws a rebroadcast delay in [1, RebroadcastJitter).
func Jitter(rng *rand.Rand) time.Duration {
	return time.Millisecond + time.Duration(rng.Int63n(int64(RebroadcastJitter-time.Millisecond)))
}

// Entry is one route-table row: the next hop toward Dst and the metrics
// the protocol attached when it learned the route.
type Entry struct {
	Dst       int
	Next      int
	HopCount  float64 // protocol metric (CSI distance or plain hops)
	GeoHops   int     // geographic length, where known
	UpdatedAt time.Duration
	Valid     bool
}

// TableObserver is optionally implemented by network.Env implementations
// that want route-table churn forwarded to telemetry (network.Node
// forwards it to the run's timeseries collector). NewCore wires a
// conforming Env's methods into the table's churn hooks.
type TableObserver interface {
	// NoteRouteInstalled observes one entry installed or replaced.
	NoteRouteInstalled()
	// NoteRouteInvalidated observes one entry transitioning valid→invalid.
	NoteRouteInvalidated()
}

// ObsProvider is optionally implemented by network.Env implementations
// that carry the run's observability registry (network.Node). Routing
// internals discover it by type assertion, exactly like TableObserver;
// scripted test envs that don't implement it simply count nothing, since
// every registry method is nil-safe.
type ObsProvider interface {
	Obs() *obs.Registry
}

// Table maps destinations to route entries with idle expiry: an entry not
// refreshed within the table's timeout is treated as absent, implementing
// the paper's "original route automatically expires" rule.
type Table struct {
	entries     map[int]*Entry
	IdleTimeout time.Duration // zero disables expiry

	// OnInstall and OnInvalidate, when set, observe table churn: OnInstall
	// fires after every Install, OnInvalidate once per entry transitioning
	// from valid to invalid — whether by explicit invalidation, link-break
	// fan-out, or lazily discovered idle expiry.
	OnInstall    func()
	OnInvalidate func()
}

// NewTable returns an empty table with the given idle timeout.
func NewTable(idle time.Duration) *Table {
	return &Table{entries: make(map[int]*Entry), IdleTimeout: idle}
}

// Lookup returns the live entry for dst, or nil when none exists, it was
// invalidated, or it idled out.
func (t *Table) Lookup(dst int, now time.Duration) *Entry {
	e := t.entries[dst]
	if e == nil || !e.Valid {
		return nil
	}
	if t.IdleTimeout > 0 && now-e.UpdatedAt > t.IdleTimeout {
		e.Valid = false
		if t.OnInvalidate != nil {
			t.OnInvalidate()
		}
		return nil
	}
	return e
}

// Peek returns the entry regardless of validity or age (diagnostics and
// REER downstream checks, which must consult the stored next hop even for
// stale routes).
func (t *Table) Peek(dst int) *Entry { return t.entries[dst] }

// Install inserts or replaces the route toward dst. The destination's
// existing entry record is overwritten in place when one exists, so
// steady-state route churn recycles rather than allocates; holders of a
// stale *Entry observe the replacement route, which matches the table's
// "latest install wins" semantics.
func (t *Table) Install(dst, next int, hopCount float64, geoHops int, now time.Duration) *Entry {
	e := t.entries[dst]
	if e == nil {
		e = &Entry{}
		t.entries[dst] = e
	}
	*e = Entry{Dst: dst, Next: next, HopCount: hopCount, GeoHops: geoHops, UpdatedAt: now, Valid: true}
	if t.OnInstall != nil {
		t.OnInstall()
	}
	return e
}

// Touch refreshes the entry's idle clock when data flows through it.
func (t *Table) Touch(dst int, now time.Duration) {
	if e := t.entries[dst]; e != nil {
		e.UpdatedAt = now
	}
}

// Invalidate marks the route toward dst unusable.
func (t *Table) Invalidate(dst int) {
	if e := t.entries[dst]; e != nil && e.Valid {
		e.Valid = false
		if t.OnInvalidate != nil {
			t.OnInvalidate()
		}
	}
}

// InvalidateNext marks every route through neighbour next unusable and
// returns the affected destinations (REER generation fans out per flow).
func (t *Table) InvalidateNext(next int) []int {
	var dsts []int
	for dst, e := range t.entries {
		if e.Valid && e.Next == next {
			e.Valid = false
			if t.OnInvalidate != nil {
				t.OnInvalidate()
			}
			dsts = append(dsts, dst)
		}
	}
	return dsts
}

// History performs duplicate suppression for flood packets and remembers
// the reverse pointer (the upstream terminal the first copy arrived from),
// which the RREP later retraces. Records are stored by value: a network
// sees one new flood instance per received copy of every query round, and
// boxing each record was the simulator's largest residual allocation.
//
// Storage is a linear-probed open-addressing table keyed on flood keys
// packed into one uint64 — every received flood copy performs at least
// one history lookup, and the packed probe (a multiply-shift hash, no
// write barriers, records inline) is the cheapest exact structure for
// it. Keys that cannot pack (beyond 2^17 terminals or 2^26 flood rounds)
// spill into an ordinary map; the two tiers partition the key space, so
// behaviour is identical to a single map.
type History struct {
	keys []uint64 // packed keys; 0 marks an empty slot (Kind is never 0)
	recs []FloodRecord
	used int

	spill map[packet.FloodKey]FloodRecord // unpackable keys only

	// One-entry MRU cache. Flood copies arrive in bursts keyed by the
	// same instance, and the common case (a non-improving duplicate) is a
	// pure read — the cache answers it without touching the table. The
	// table is written through on every update, so the cache is never the
	// only holder of a record.
	lastKey packet.FloodKey
	lastRec FloodRecord
	lastOK  bool

	// obs, when set, counts suppressed flood copies and spill-tier
	// insertions (nil-safe).
	obs *obs.Registry
}

// SetObs wires the suppression/spill counters into r.
func (h *History) SetObs(r *obs.Registry) { h.obs = r }

// historyInitSlots sizes a fresh table; grows by doubling at ~3/4 load.
const historyInitSlots = 64

// packKey folds a FloodKey into a nonzero uint64: origin and dst in 17
// bits each (covering scenario.MaxNodes), the kind in 4, the broadcast
// id in 26. Reports false for keys outside those ranges, which take the
// spill path.
func packKey(k packet.FloodKey) (uint64, bool) {
	if uint32(k.Origin) >= 1<<17 || uint32(k.Dst) >= 1<<17 ||
		k.BroadcastID >= 1<<26 || k.Kind >= 1<<4 || k.Kind == 0 {
		return 0, false
	}
	return uint64(k.Origin)<<47 | uint64(k.Dst)<<30 | uint64(k.Kind)<<26 | uint64(k.BroadcastID), true
}

// find returns the slot holding pk, or the empty slot where it belongs.
func (h *History) find(pk uint64) int {
	mask := uint64(len(h.keys) - 1)
	i := (pk * 0x9E3779B97F4A7C15) >> 32 & mask
	for {
		if k := h.keys[i]; k == pk || k == 0 {
			return int(i)
		}
		i = (i + 1) & mask
	}
}

// get looks a key up across both tiers.
func (h *History) get(key packet.FloodKey) (FloodRecord, bool) {
	if pk, ok := packKey(key); ok {
		if len(h.keys) == 0 {
			return FloodRecord{}, false
		}
		i := h.find(pk)
		return h.recs[i], h.keys[i] == pk
	}
	rec, ok := h.spill[key]
	return rec, ok
}

// put inserts or overwrites a record.
func (h *History) put(key packet.FloodKey, rec FloodRecord) {
	pk, ok := packKey(key)
	if !ok {
		if h.spill == nil {
			h.spill = make(map[packet.FloodKey]FloodRecord)
		}
		h.obs.Inc(obs.CHistorySpills)
		h.spill[key] = rec
		return
	}
	if h.used*4 >= len(h.keys)*3 { // includes the empty-table case
		h.grow()
	}
	i := h.find(pk)
	if h.keys[i] == 0 {
		h.keys[i] = pk
		h.used++
	}
	h.recs[i] = rec
}

func (h *History) grow() {
	oldKeys, oldRecs := h.keys, h.recs
	n := 2 * len(oldKeys)
	if n == 0 {
		n = historyInitSlots
	}
	h.keys = make([]uint64, n)
	h.recs = make([]FloodRecord, n)
	for i, k := range oldKeys {
		if k != 0 {
			j := h.find(k)
			h.keys[j] = k
			h.recs[j] = oldRecs[i]
		}
	}
}

// FloodRecord is what the history keeps per flood instance.
type FloodRecord struct {
	// FirstFrom is the neighbour that delivered the first copy.
	FirstFrom int
	// HopCount and GeoHops are the metrics carried by that first copy
	// after this terminal's own link was added.
	HopCount float64
	GeoHops  int
	At       time.Duration
}

// NewHistory returns an empty flood history.
func NewHistory() *History {
	return &History{}
}

// FirstCopy records pkt's flood instance if unseen and reports whether
// this was the first copy. Duplicate copies return (record, false) with
// the original record, which callers use for reverse-path forwarding.
func (h *History) FirstCopy(pkt *packet.Packet, now time.Duration) (FloodRecord, bool) {
	key := pkt.Key()
	if h.lastOK && key == h.lastKey {
		h.obs.Inc(obs.CFloodSuppressed)
		return h.lastRec, false
	}
	if rec, ok := h.get(key); ok {
		h.obs.Inc(obs.CFloodSuppressed)
		h.lastKey, h.lastRec, h.lastOK = key, rec, true
		return rec, false
	}
	rec := FloodRecord{FirstFrom: pkt.From, HopCount: pkt.HopCount, GeoHops: pkt.GeoHops, At: now}
	h.put(key, rec)
	h.lastKey, h.lastRec, h.lastOK = key, rec, true
	return rec, true
}

// metricImprovement is the minimum accumulated-metric gain that justifies
// another rebroadcast of the same flood; it suppresses churn from
// floating-point noise and near-ties.
const metricImprovement = 1e-6

// Improved records pkt's flood instance and reports whether this copy
// either is the first or carries a strictly better (smaller) accumulated
// metric than the best copy seen so far; the record is updated to the
// improving copy. Channel-adaptive floods (RICA, BGCA) rebroadcast
// improving copies so the accumulated CSI distances converge to the true
// shortest routes; the metric strictly decreases per terminal, so the
// flood always terminates.
func (h *History) Improved(pkt *packet.Packet, now time.Duration) (FloodRecord, bool) {
	key := pkt.Key()
	rec, cached := h.lastRec, h.lastOK && key == h.lastKey
	if !cached {
		var ok bool
		rec, ok = h.get(key)
		if !ok {
			rec = FloodRecord{FirstFrom: pkt.From, HopCount: pkt.HopCount, GeoHops: pkt.GeoHops, At: now}
			h.put(key, rec)
			h.lastKey, h.lastRec, h.lastOK = key, rec, true
			return rec, true
		}
	}
	if pkt.HopCount < rec.HopCount-metricImprovement {
		rec = FloodRecord{FirstFrom: pkt.From, HopCount: pkt.HopCount, GeoHops: pkt.GeoHops, At: now}
		h.put(key, rec)
		h.lastKey, h.lastRec, h.lastOK = key, rec, true
		return rec, true
	}
	if !cached {
		h.lastKey, h.lastRec, h.lastOK = key, rec, true
	}
	h.obs.Inc(obs.CFloodSuppressed)
	return rec, false
}

// Lookup fetches the record for a previously seen flood, if any.
func (h *History) Lookup(key packet.FloodKey) (FloodRecord, bool) {
	return h.get(key)
}

// Pending buffers data packets waiting for a route to one destination.
type Pending struct {
	items []pendingItem
}

type pendingItem struct {
	pkt *packet.Packet
	at  time.Duration
}

// Add buffers pkt; when the buffer is full the packet is dropped as
// congestion, matching the paper's finite-buffer discipline.
func (p *Pending) Add(pkt *packet.Packet, now time.Duration, env network.Env) {
	if len(p.items) >= PendingCap {
		env.DropData(pkt, network.DropCongestion)
		return
	}
	p.items = append(p.items, pendingItem{pkt: pkt, at: now})
}

// Len reports how many packets wait.
func (p *Pending) Len() int { return len(p.items) }

// Flush hands every still-fresh packet to deliver and drops expired ones;
// the buffer is left empty.
func (p *Pending) Flush(now time.Duration, env network.Env, deliver func(pkt *packet.Packet)) {
	items := p.items
	p.items = nil
	for _, it := range items {
		if now-it.at > PendingLifetime {
			env.DropData(it.pkt, network.DropExpired)
			continue
		}
		deliver(it.pkt)
	}
}

// DropAll discards every buffered packet with the given reason.
func (p *Pending) DropAll(env network.Env, reason network.DropReason) {
	for _, it := range p.items {
		env.DropData(it.pkt, reason)
	}
	p.items = nil
}

// ReleaseAll silently frees every buffered packet — no drop is recorded.
// The end-of-run drain uses it, where recording would perturb the run's
// metrics. It returns how many packets were released.
func (p *Pending) ReleaseAll() int {
	n := len(p.items)
	for _, it := range p.items {
		it.pkt.Release()
	}
	p.items = nil
	return n
}

// ExportEntries snapshots the table's entries — valid and invalidated
// alike, idle expiry NOT lazily applied — in ascending destination
// order. A pure read in deterministic order: the checkpoint capture
// serializes route tables through it for cross-process verification.
func (t *Table) ExportEntries() []Entry {
	if len(t.entries) == 0 {
		return nil
	}
	dsts := make([]int, 0, len(t.entries))
	for dst := range t.entries {
		dsts = append(dsts, dst)
	}
	sort.Ints(dsts)
	out := make([]Entry, 0, len(dsts))
	for _, dst := range dsts {
		out = append(out, *t.entries[dst])
	}
	return out
}
