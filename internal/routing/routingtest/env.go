// Package routingtest provides a scripted network.Env for white-box unit
// tests of the routing protocols: control sends, data enqueues and drops
// are recorded; time and timers run on a real simulation kernel the test
// pumps; per-neighbour channel classes are set directly.
package routingtest

import (
	"math/rand"
	"time"

	"rica/internal/channel"
	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/sim"
)

// Enqueued records one data packet handed to the link layer.
type Enqueued struct {
	Pkt  *packet.Packet
	Next int
}

// Dropped records one discarded data packet.
type Dropped struct {
	Pkt    *packet.Packet
	Reason network.DropReason
}

// Env is the scripted environment. Construct with New, mutate Classes to
// shape what the agent measures, and advance time with Pump.
type Env struct {
	IDVal  int
	NVal   int
	Kernel *sim.Kernel
	RNG    *rand.Rand

	// Classes maps neighbour id to the channel class LinkClass reports;
	// missing entries read as ClassNone (out of range).
	Classes map[int]channel.Class
	// Backlog is what QueueBacklog reports.
	Backlog int

	Sent     []*packet.Packet
	Enqueues []Enqueued
	Drops    []Dropped
}

var _ network.Env = (*Env)(nil)

// New builds a scripted Env for terminal id in an n-terminal network.
func New(id, n int) *Env {
	return &Env{
		IDVal:   id,
		NVal:    n,
		Kernel:  sim.NewKernel(),
		RNG:     rand.New(rand.NewSource(1)),
		Classes: make(map[int]channel.Class),
	}
}

// Pump advances virtual time by d, firing due timers.
func (e *Env) Pump(d time.Duration) { e.Kernel.Run(e.Kernel.Now() + d) }

// ID implements network.Env.
func (e *Env) ID() int { return e.IDVal }

// NumNodes implements network.Env.
func (e *Env) NumNodes() int { return e.NVal }

// Now implements network.Env.
func (e *Env) Now() time.Duration { return e.Kernel.Now() }

// Schedule implements network.Env.
func (e *Env) Schedule(d time.Duration, fn func(now time.Duration)) sim.Timer {
	return e.Kernel.Schedule(d, fn)
}

// ScheduleArg implements network.Env.
func (e *Env) ScheduleArg(d time.Duration, fn sim.ArgHandler, a0, a1 int) sim.Timer {
	return e.Kernel.ScheduleArg(d, fn, a0, a1)
}

// SendControl implements network.Env.
func (e *Env) SendControl(pkt *packet.Packet) {
	pkt.From = e.IDVal
	e.Sent = append(e.Sent, pkt)
}

// EnqueueData implements network.Env.
func (e *Env) EnqueueData(pkt *packet.Packet, next int) {
	e.Enqueues = append(e.Enqueues, Enqueued{Pkt: pkt, Next: next})
}

// DropData implements network.Env.
func (e *Env) DropData(pkt *packet.Packet, reason network.DropReason) {
	e.Drops = append(e.Drops, Dropped{Pkt: pkt, Reason: reason})
}

// LinkClass implements network.Env.
func (e *Env) LinkClass(j int) channel.Class { return e.Classes[j] }

// QueueBacklog implements network.Env.
func (e *Env) QueueBacklog() int { return e.Backlog }

// Rand implements network.Env.
func (e *Env) Rand() *rand.Rand { return e.RNG }

// SentOfType filters recorded control packets by type.
func (e *Env) SentOfType(t packet.Type) []*packet.Packet {
	var out []*packet.Packet
	for _, p := range e.Sent {
		if p.Type == t {
			out = append(out, p)
		}
	}
	return out
}

// Reset clears the recorded traffic (state and clock are kept).
func (e *Env) Reset() {
	e.Sent = nil
	e.Enqueues = nil
	e.Drops = nil
}
