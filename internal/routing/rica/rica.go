// Package rica implements the paper's contribution: the Receiver-Initiated
// Channel-Adaptive routing protocol (§II).
//
// Route discovery is an RREQ flood whose hop counts accumulate the
// CSI-based hop distance of every traversed link (class A = 1 hop,
// B = 1.67, C = 3.33, D = 5); the destination gathers the competing RREQs
// for a short window and answers the minimum-distance route with an RREP.
//
// The receiver-initiated part is the CSI checker: while a flow is active,
// its destination periodically broadcasts TTL-scoped CSI-checking packets
// (CSIC). Each forwarder measures the channel class the packet arrived
// over, adds the corresponding hop distance, remembers the terminal it
// first heard the packet from as its "possible downstream" toward the
// destination, and rebroadcasts once. The source gathers the checking
// packets that reach it and switches the entire route to the momentarily
// shortest one with a route-update (RUPD) to the new first hop; the rest
// of the path activates lazily as the first data packet flows, and the
// abandoned route simply idles out after a second. Route errors from
// links that are no longer on the current route are ignored, and a source
// that is still receiving checking packets never needs a new flood.
package rica

import (
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing"
	"rica/internal/sim"
)

// Config tunes the protocol. Values outside the paper's text are marked.
type Config struct {
	// CheckInterval is the destination's CSIC broadcast period (paper
	// suggests "for example every second").
	CheckInterval time.Duration
	// CollectWindow is the source/destination gathering window (paper:
	// 40 ms).
	CollectWindow time.Duration
	// RouteIdle is the idle expiry of route entries (paper: "for example
	// 1 second").
	RouteIdle time.Duration
	// ActivityTimeout stops a destination's checker after the flow goes
	// quiet (not in the paper; ~3 buffer lifetimes).
	ActivityTimeout time.Duration
	// TTLSlack widens the checking packets' scope beyond the last known
	// geographic path length, letting slightly longer detours be found.
	TTLSlack int
	// FullFloodCSIC disables TTL scoping entirely (ablation switch; the
	// paper argues scoping saves bandwidth).
	FullFloodCSIC bool

	// AdaptiveCheck implements the paper's aside that the checking period
	// "has to be decided by the change speed of the link CSI": the
	// destination tracks how much the CSI distance of arriving data
	// fluctuates and tunes its broadcast period between MinCheckInterval
	// (volatile channel) and MaxCheckInterval (quiet channel).
	AdaptiveCheck    bool
	MinCheckInterval time.Duration
	MaxCheckInterval time.Duration
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{
		CheckInterval:    time.Second,
		CollectWindow:    routing.CollectWindow,
		RouteIdle:        time.Second,
		ActivityTimeout:  3 * time.Second,
		TTLSlack:         1,
		MinCheckInterval: 250 * time.Millisecond,
		MaxCheckInterval: 2 * time.Second,
	}
}

// candidateLifetime bounds how long an intermediate's "possible
// downstream" pointer learned from a checking packet stays usable; two
// check intervals keeps one lost broadcast from erasing the path.
const candidateLifetime = 2

// Agent is one terminal's RICA instance.
type Agent struct {
	routing.BaseAgent
	env  network.Env
	cfg  Config
	core *routing.Core

	// Intermediate state: possible downstream per destination, learned
	// from the first copy of each checking packet. Dense slices indexed
	// by destination id — every received checking packet writes here, and
	// a map assignment per copy was a measurable slice of the flood path.
	cand    []candidate
	candSet []bool

	// Source state: per destination, the gathering of checking packets
	// and the time the last one arrived (REER suppression; dense slices
	// for the same reason as cand).
	collect  map[int]*csicCollect
	lastCSIC []time.Duration
	csicSeen []bool

	// Destination state: one checker per incoming flow source.
	checkers map[int]*checker
	csicID   uint32
}

type candidate struct {
	next int
	hop  float64
	geo  int
	at   time.Duration
}

type csicCollect struct {
	best  candidate
	timer sim.Timer
}

type checker struct {
	srcID        int
	timer        sim.Timer
	lastActivity time.Duration
	ttl          int
	running      bool

	// CSI-volatility tracking for the adaptive check period: an
	// exponentially weighted mean of how much consecutive data packets'
	// accumulated CSI distance differs.
	lastCSI    float64
	haveCSI    bool
	volatility float64
}

var _ network.Agent = (*Agent)(nil)

// New builds the terminal's RICA agent.
func New(env network.Env, cfg Config) *Agent {
	a := &Agent{
		env:      env,
		cfg:      cfg,
		cand:     make([]candidate, env.NumNodes()),
		candSet:  make([]bool, env.NumNodes()),
		collect:  make(map[int]*csicCollect),
		lastCSIC: make([]time.Duration, env.NumNodes()),
		csicSeen: make([]bool, env.NumNodes()),
		checkers: make(map[int]*checker),
	}
	a.core = routing.NewCore(env, routing.CoreConfig{
		Accumulate: func(pkt *packet.Packet) {
			pkt.HopCount += env.LinkClass(pkt.From).HopDistance()
		},
		CollectWindow:        cfg.CollectWindow,
		RouteIdle:            cfg.RouteIdle,
		RebroadcastImproved:  true, // CSI distances must converge to real shortest routes
		OnQueryAtDestination: a.onQueryAtDestination,
		SuppressREER:         a.suppressREER,
	})
	return a
}

// HandleControl implements network.Agent.
func (a *Agent) HandleControl(pkt *packet.Packet, now time.Duration) {
	if a.core.HandleControl(pkt, now) {
		return
	}
	switch pkt.Type {
	case packet.TypeCSIC:
		a.handleCSIC(pkt, now)
	case packet.TypeRUPD:
		a.handleRUPD(pkt, now)
	}
}

// RouteData implements network.Agent. Beyond the table, an intermediate
// may activate a fresh "possible downstream" pointer — the lazy path
// activation the paper describes for the first data packet after a route
// update.
func (a *Agent) RouteData(pkt *packet.Packet, now time.Duration) {
	if a.core.Forward(pkt, now) {
		return
	}
	if c := a.cand[pkt.Dst]; a.candSet[pkt.Dst] && now-c.at <= time.Duration(candidateLifetime)*a.cfg.CheckInterval {
		if pkt.Src == a.env.ID() || c.next != pkt.From { // split horizon
			a.core.Table.Install(pkt.Dst, c.next, c.hop, c.geo, now)
			a.env.EnqueueData(pkt, c.next)
			return
		}
	}
	if pkt.Src == a.env.ID() {
		a.core.BufferAndDiscover(pkt, now)
		return
	}
	a.env.DropData(pkt, network.DropNoRoute)
}

// DataArrived implements network.Agent: refresh upstream pointers, and at
// the destination feed the flow's checker (activity, TTL, and the CSI
// volatility estimate driving the adaptive check period).
func (a *Agent) DataArrived(pkt *packet.Packet, now time.Duration) {
	a.core.NoteData(pkt, now)
	if pkt.Dst == a.env.ID() {
		ch := a.touchChecker(pkt.Src, pkt.TraversedHops, now)
		if ch.haveCSI {
			delta := pkt.TraversedCSI - ch.lastCSI
			if delta < 0 {
				delta = -delta
			}
			ch.volatility = 0.8*ch.volatility + 0.2*delta
		}
		ch.lastCSI = pkt.TraversedCSI
		ch.haveCSI = true
	}
}

// LinkFailed implements network.Agent. A source that is still receiving
// checking packets does not re-flood: the next check round supplies a
// fresh route (paper §II.D); its packet waits in the pending buffer.
func (a *Agent) LinkFailed(next int, pkt *packet.Packet, now time.Duration) {
	a.core.Table.InvalidateNext(next)
	if pkt.Src == a.env.ID() {
		if a.suppressREER(pkt.Dst, now) {
			a.core.BufferForRepair(pkt, now)
			return
		}
		a.core.BufferAndDiscover(pkt, now)
		return
	}
	src, dst := pkt.Src, pkt.Dst // DropData recycles the packet
	a.env.DropData(pkt, network.DropLinkBreak)
	a.core.SendREER(src, dst, now)
}

// suppressREER reports whether checking packets for dst arrived recently
// enough that rediscovery is unnecessary.
func (a *Agent) suppressREER(dst int, now time.Duration) bool {
	return a.csicSeen[dst] && now-a.lastCSIC[dst] <= 2*a.cfg.CheckInterval
}

// --- Destination side: the CSI checker ----------------------------------

// onQueryAtDestination bootstraps the checker when a discovery flood for
// a new flow arrives.
func (a *Agent) onQueryAtDestination(src int, pkt *packet.Packet, now time.Duration) {
	if pkt.Type != packet.TypeRREQ {
		return
	}
	a.touchChecker(src, pkt.GeoHops, now)
}

// touchChecker refreshes (or starts) the checker serving flow src→self.
// geoHops is the latest known geographic path length, which sets the
// checking packets' TTL.
func (a *Agent) touchChecker(src, geoHops int, now time.Duration) *checker {
	ch := a.checkers[src]
	if ch == nil {
		ch = &checker{srcID: src}
		a.checkers[src] = ch
	}
	ch.lastActivity = now
	if geoHops > 0 {
		ch.ttl = geoHops
	}
	if !ch.running {
		ch.running = true
		a.scheduleCheck(ch)
	}
	return ch
}

// checkInterval picks ch's next broadcast period. The fixed configuration
// returns CheckInterval; the adaptive one maps the flow's CSI volatility
// onto [MinCheckInterval, MaxCheckInterval] — one whole hop-distance unit
// of average fluctuation already pins the fastest rate.
func (a *Agent) checkInterval(ch *checker) time.Duration {
	if !a.cfg.AdaptiveCheck {
		return a.cfg.CheckInterval
	}
	frac := ch.volatility // ≈0 quiet … ≥1 volatile
	if frac > 1 {
		frac = 1
	}
	span := a.cfg.MaxCheckInterval - a.cfg.MinCheckInterval
	return a.cfg.MaxCheckInterval - time.Duration(frac*float64(span))
}

// scheduleCheck arms the next periodic CSIC broadcast for ch.
func (a *Agent) scheduleCheck(ch *checker) {
	ch.timer = a.env.Schedule(a.checkInterval(ch), func(now time.Duration) {
		if now-ch.lastActivity > a.cfg.ActivityTimeout {
			ch.running = false // flow went quiet; stop broadcasting
			return
		}
		a.sendCSIC(ch, now)
		a.scheduleCheck(ch)
	})
}

// sendCSIC broadcasts one checking packet for ch's flow.
func (a *Agent) sendCSIC(ch *checker, now time.Duration) {
	a.csicID++
	ttl := 0 // unlimited
	if !a.cfg.FullFloodCSIC {
		ttl = ch.ttl + a.cfg.TTLSlack
		if ttl <= 0 {
			ttl = a.cfg.TTLSlack + 1
		}
	}
	csic := packet.Get() // recycled by the MAC layer after the flood airs
	csic.CopyFrom(&packet.Packet{
		Type:        packet.TypeCSIC,
		Src:         ch.srcID,   // the flow's source: where the info must arrive
		Dst:         a.env.ID(), // the broadcasting destination
		To:          packet.Broadcast,
		Size:        packet.SizeCSIC,
		BroadcastID: a.csicID,
		TTL:         ttl,
		CreatedAt:   now,
	})
	a.env.SendControl(csic)
}

// --- Checking packet propagation ----------------------------------------

// handleCSIC processes one checking-packet copy.
func (a *Agent) handleCSIC(pkt *packet.Packet, now time.Duration) {
	self := a.env.ID()
	if pkt.Dst == self {
		return // our own broadcast echoed back
	}
	pkt.HopCount += a.env.LinkClass(pkt.From).HopDistance()
	pkt.GeoHops++

	if pkt.Src == self {
		// We are the source this checker serves: gather candidates.
		a.gatherAtSource(pkt, now)
		return
	}
	if _, improved := a.core.History().Improved(pkt, now); !improved {
		return // only first/improving copies are rebroadcast
	}
	// Remember the downstream terminal the best copy came from: it is the
	// next hop toward the destination if the source adopts a route through
	// us, keeping lazy path activation consistent with the metric the
	// source compared.
	a.cand[pkt.Dst] = candidate{next: pkt.From, hop: pkt.HopCount, geo: pkt.GeoHops, at: now}
	a.candSet[pkt.Dst] = true

	if pkt.TTL != 0 {
		pkt.TTL--
		if pkt.TTL <= 0 {
			return
		}
	}
	fwd := pkt.Clone()
	fwd.To = packet.Broadcast
	fwd.Via = pkt.From // paper: rebroadcasts name the terminal they heard
	a.core.Delayed().SendJittered(fwd)
}

// gatherAtSource accumulates checking packets at the flow's source and,
// one collection window after the first arrival, switches to the shortest
// offered route.
func (a *Agent) gatherAtSource(pkt *packet.Packet, now time.Duration) {
	dst := pkt.Dst
	a.lastCSIC[dst] = now
	a.csicSeen[dst] = true
	cand := candidate{next: pkt.From, hop: pkt.HopCount, geo: pkt.GeoHops, at: now}
	col := a.collect[dst]
	if col == nil {
		col = &csicCollect{best: cand}
		a.collect[dst] = col
		col.timer = a.env.Schedule(a.cfg.CollectWindow, func(at time.Duration) {
			a.decideRoute(dst, at)
		})
		return
	}
	if cand.hop < col.best.hop {
		col.best = cand
	}
}

// decideRoute installs the gathered best route and tells the new first
// hop with a RUPD; pending packets flush onto the fresh route.
func (a *Agent) decideRoute(dst int, now time.Duration) {
	col := a.collect[dst]
	if col == nil {
		return
	}
	delete(a.collect, dst)
	prev := a.core.Table.Peek(dst)
	changed := prev == nil || !prev.Valid || prev.Next != col.best.next
	a.core.Table.Install(dst, col.best.next, col.best.hop, col.best.geo, now)
	if changed {
		rupd := packet.Get() // recycled by the MAC layer after transmission
		rupd.CopyFrom(&packet.Packet{
			Type:      packet.TypeRUPD,
			Src:       a.env.ID(),
			Dst:       dst,
			To:        col.best.next,
			Size:      packet.SizeRUPD,
			CreatedAt: now,
		})
		a.env.SendControl(rupd)
	}
	a.core.FlushPending(dst, now)
}

// handleRUPD activates this terminal's pending downstream pointer: the
// source has adopted a route whose first hop is us.
func (a *Agent) handleRUPD(pkt *packet.Packet, now time.Duration) {
	if a.candSet[pkt.Dst] {
		c := a.cand[pkt.Dst]
		a.core.Table.Install(pkt.Dst, c.next, c.hop, c.geo, now)
	}
}

// DrainPending implements network.Drainer: once the simulation horizon
// has passed, packets parked behind route queries or jittered relays in
// the shared core are silently released for exact pool-leak accounting.
func (a *Agent) DrainPending() (data, control int) { return a.core.DrainPending() }

// ExportRoutes snapshots the agent's route table for checkpoint
// verification (see routing.Core.ExportRoutes).
func (a *Agent) ExportRoutes() []routing.Entry { return a.core.ExportRoutes() }
