package rica

// Tests for the paper's §II.D source-side arrival races: after a route
// error, the source may receive an RREP (from its own re-flood) and CSI
// checking packets in any order. The paper resolves all three scenarios
// the same way — whichever information arrives later re-decides the
// route — and these tests pin that behaviour.

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/routing/routingtest"
)

// raceSetup builds a source agent (id 2) with neighbours of fixed classes.
func raceSetup() (*Agent, *routingtest.Env) {
	env := routingtest.New(2, 10)
	env.Classes[6] = channel.ClassA
	env.Classes[7] = channel.ClassA
	return New(env, DefaultConfig()), env
}

func rrepFrom(from int) *packet.Packet {
	return &packet.Packet{
		Type: packet.TypeRREP, Src: 2, Dst: 9, From: from, To: 2,
		Size: packet.SizeRREP, BroadcastID: 1,
	}
}

func next(t *testing.T, a *Agent, env *routingtest.Env) int {
	t.Helper()
	e := a.core.Table.Lookup(9, env.Now())
	if e == nil {
		t.Fatal("no route installed")
	}
	return e.Next
}

// Scenario: the RREP arrives first, checking packets later — "the source
// chooses route based on RREP, afterwards ... the route is decided based
// on CSI checking packets."
func TestRaceRREPThenCSIC(t *testing.T) {
	a, env := raceSetup()
	a.HandleControl(rrepFrom(6), env.Now())
	if got := next(t, a, env); got != 6 {
		t.Fatalf("after RREP: next = %d, want 6", got)
	}
	// Checking packets arrive later offering a better route via 7.
	a.HandleControl(csic(2, 9, 7, 3, 1.0, 4), env.Now())
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	if got := next(t, a, env); got != 7 {
		t.Fatalf("after later CSIC: next = %d, want re-decided 7", got)
	}
}

// Scenario: checking packets arrive first, the RREP afterwards — "the
// source decides the route based on these CSI checking packets;
// afterwards, if RREP also arrives, the source chooses the route based on
// RREP."
func TestRaceCSICThenRREP(t *testing.T) {
	a, env := raceSetup()
	a.HandleControl(csic(2, 9, 7, 3, 1.0, 4), env.Now())
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	if got := next(t, a, env); got != 7 {
		t.Fatalf("after CSIC: next = %d, want 7", got)
	}
	a.HandleControl(rrepFrom(6), env.Now())
	if got := next(t, a, env); got != 6 {
		t.Fatalf("after later RREP: next = %d, want re-decided 6", got)
	}
}

// Scenario: both arrive within the same collection window; the source's
// 40 ms wait lets the checking packets win the tie (they carry fresher
// whole-route CSI).
func TestRaceSimultaneousWindow(t *testing.T) {
	a, env := raceSetup()
	a.HandleControl(csic(2, 9, 7, 3, 1.0, 4), env.Now())
	env.Pump(10 * time.Millisecond) // inside the window
	a.HandleControl(rrepFrom(6), env.Now())
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	// The CSIC decision fires after the RREP install and re-decides.
	if got := next(t, a, env); got != 7 {
		t.Fatalf("window decision: next = %d, want the CSI choice 7", got)
	}
}

// A REER with no recent checking packets must trigger a fresh flood when
// traffic is pending (paper scenario 2 precondition).
func TestREERWithoutCSICTriggersFlood(t *testing.T) {
	a, env := raceSetup()
	// Install a route via 6 and make it current, with pending traffic
	// queued behind a failure.
	a.HandleControl(rrepFrom(6), env.Now())
	data := &packet.Packet{Type: packet.TypeData, Src: 2, Dst: 9, Size: packet.SizeData}
	a.core.BufferForRepair(data, env.Now())
	env.Reset()
	a.HandleControl(&packet.Packet{
		Type: packet.TypeREER, Src: 2, Dst: 9, From: 6, Via: 6, Size: packet.SizeREER,
	}, env.Now())
	if n := len(env.SentOfType(packet.TypeRREQ)); n != 1 {
		t.Fatalf("RREQ floods = %d, want 1 (no checking packets flowing)", n)
	}
	if a.core.Table.Lookup(9, env.Now()) != nil {
		t.Fatal("REER from the current downstream did not invalidate the route")
	}
}

// A REER while checking packets flow is ignored by the source — scenario
// 1: "the source terminal ignores the REER and chooses the shortest route
// based on CSI checking packet."
func TestREERWithCSICSuppressed(t *testing.T) {
	a, env := raceSetup()
	a.HandleControl(csic(2, 9, 7, 3, 1.0, 4), env.Now())
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	// Pending traffic exists; the REER names the current downstream 7.
	a.core.BufferForRepair(&packet.Packet{Type: packet.TypeData, Src: 2, Dst: 9, Size: packet.SizeData}, env.Now())
	env.Reset()
	a.HandleControl(&packet.Packet{
		Type: packet.TypeREER, Src: 2, Dst: 9, From: 7, Via: 7, Size: packet.SizeREER,
	}, env.Now())
	if n := len(env.SentOfType(packet.TypeRREQ)); n != 0 {
		t.Fatalf("source flooded despite live CSI checking (%d RREQs)", n)
	}
}
