package rica_test

import (
	"testing"
	"time"

	"rica/internal/metrics"
	"rica/internal/network"
	"rica/internal/routing/aodv"
	"rica/internal/routing/rica"
	"rica/internal/traffic"
	"rica/internal/world"
)

func ricaFactory(env network.Env, _ *world.World, _ int) network.Agent {
	return rica.New(env, rica.DefaultConfig())
}

func aodvFactory(env network.Env, _ *world.World, _ int) network.Agent { return aodv.New(env) }

func run(t *testing.T, f world.AgentFactory, speedKmh, rate float64, dur time.Duration, seed int64) metrics.Summary {
	t.Helper()
	cfg := world.DefaultConfig(speedKmh, rate)
	cfg.Duration = dur
	cfg.Seed = seed
	return world.New(cfg, f).Run()
}

func TestStaticDelivery(t *testing.T) {
	s := run(t, ricaFactory, 0, 10, 30*time.Second, 1)
	if s.DeliveryRatio < 0.75 {
		t.Fatalf("static delivery = %.3f (drops %v), want > 0.75", s.DeliveryRatio, s.Dropped)
	}
}

func TestMobileDelivery(t *testing.T) {
	s := run(t, ricaFactory, 40, 10, 30*time.Second, 2)
	if s.DeliveryRatio < 0.5 {
		t.Fatalf("mobile delivery = %.3f (drops %v), want > 0.5", s.DeliveryRatio, s.Dropped)
	}
}

// TestChannelAdaptivityBeatsAODVLinkQuality is the paper's core claim in
// miniature (Figure 5a): RICA's routes traverse distinctly better links
// than AODV's on the same random universe.
func TestChannelAdaptivityBeatsAODVLinkQuality(t *testing.T) {
	const seed = 5
	ricaS := run(t, ricaFactory, 20, 10, 40*time.Second, seed)
	aodvS := run(t, aodvFactory, 20, 10, 40*time.Second, seed)
	if ricaS.AvgLinkThroughputBps <= aodvS.AvgLinkThroughputBps {
		t.Fatalf("RICA link throughput %.0f not above AODV %.0f",
			ricaS.AvgLinkThroughputBps, aodvS.AvgLinkThroughputBps)
	}
	// The margin the paper shows is large (≈180 vs ≈110 kbps); require a
	// solid gap, not a statistical accident.
	if ricaS.AvgLinkThroughputBps < aodvS.AvgLinkThroughputBps*1.15 {
		t.Fatalf("RICA link quality advantage too small: %.0f vs %.0f",
			ricaS.AvgLinkThroughputBps, aodvS.AvgLinkThroughputBps)
	}
}

func TestGeneratesMoreOverheadThanAODV(t *testing.T) {
	const seed = 6
	ricaS := run(t, ricaFactory, 20, 10, 40*time.Second, seed)
	aodvS := run(t, aodvFactory, 20, 10, 40*time.Second, seed)
	if ricaS.OverheadBps <= aodvS.OverheadBps {
		t.Fatalf("RICA overhead %.0f not above AODV %.0f — periodic CSI checking missing?",
			ricaS.OverheadBps, aodvS.OverheadBps)
	}
}

func TestLowerDelayThanAODVWhenMobile(t *testing.T) {
	var ricaDelay, aodvDelay time.Duration
	// Average over a few universes: a single seed can be unlucky.
	for seed := int64(10); seed < 13; seed++ {
		ricaDelay += run(t, ricaFactory, 40, 10, 40*time.Second, seed).AvgDelay
		aodvDelay += run(t, aodvFactory, 40, 10, 40*time.Second, seed).AvgDelay
	}
	if ricaDelay >= aodvDelay {
		t.Fatalf("RICA delay %v not below AODV %v at 40 km/h", ricaDelay/3, aodvDelay/3)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, ricaFactory, 30, 10, 15*time.Second, 7)
	b := run(t, ricaFactory, 30, 10, 15*time.Second, 7)
	if a.Delivered != b.Delivered || a.AvgDelay != b.AvgDelay || a.OverheadBps != b.OverheadBps {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestFullFloodAblationCostsMoreOverhead(t *testing.T) {
	cfg := rica.DefaultConfig()
	cfg.FullFloodCSIC = true
	full := func(env network.Env, _ *world.World, _ int) network.Agent { return rica.New(env, cfg) }
	scoped := run(t, ricaFactory, 20, 10, 30*time.Second, 8)
	flood := run(t, full, 20, 10, 30*time.Second, 8)
	if flood.OverheadBps <= scoped.OverheadBps {
		t.Fatalf("full-flood CSIC overhead %.0f not above TTL-scoped %.0f; TTL scoping inert?",
			flood.OverheadBps, scoped.OverheadBps)
	}
}

func TestCheckerStopsWhenFlowGoesQuiet(t *testing.T) {
	// Run a world whose traffic stops at t=10s but simulate to 40s: CSIC
	// broadcasts must stop, so control packet count should plateau.
	cfg := world.DefaultConfig(10, 10)
	cfg.Seed = 9
	cfg.Duration = 40 * time.Second
	w := world.New(cfg, ricaFactory)
	for _, nd := range w.Nodes {
		nd.Start()
	}
	// Only 10 seconds of traffic.
	traffic.NewGenerator(w.Kernel, w.Nodes).Start(w.Flows, w.Streams, 10*time.Second)
	w.Kernel.Run(cfg.Duration)
	s := w.Collector.Summary()
	if s.ControlPackets == 0 {
		t.Fatal("no control packets at all")
	}
	// If checkers never stopped, ~10 flows * 1/s * 25s of quiet time would
	// add thousands of CSIC transmissions (each rebroadcast by several
	// terminals). We can't observe the timeline retroactively here, so
	// assert via a second world with traffic running the whole time: it
	// must emit clearly more control packets.
	cfg2 := cfg
	cfg2.Duration = 40 * time.Second
	w2 := world.New(cfg2, ricaFactory)
	s2 := w2.Run()
	if float64(s.ControlPackets) > 0.8*float64(s2.ControlPackets) {
		t.Fatalf("quiet-flow run emitted %d control packets vs %d with continuous traffic; checkers likely never stop",
			s.ControlPackets, s2.ControlPackets)
	}
}
