package rica

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/routing/routingtest"
)

func adaptiveUnit(id int) (*Agent, *routingtest.Env) {
	env := routingtest.New(id, 10)
	for j := 0; j < 10; j++ {
		env.Classes[j] = channel.ClassB
	}
	cfg := DefaultConfig()
	cfg.AdaptiveCheck = true
	return New(env, cfg), env
}

// feedData delivers n data packets to the destination agent with the
// given CSI distances, one per 100 ms.
func feedData(a *Agent, env *routingtest.Env, src int, csis []float64) {
	for _, csi := range csis {
		a.DataArrived(&packet.Packet{
			Type: packet.TypeData, Src: src, Dst: a.env.ID(), From: 4,
			TraversedHops: 3, TraversedCSI: csi,
		}, env.Now())
		env.Pump(100 * time.Millisecond)
	}
}

func TestAdaptiveQuietFlowSlowsDown(t *testing.T) {
	a, env := adaptiveUnit(9)
	feedData(a, env, 2, []float64{6, 6, 6, 6, 6, 6, 6, 6})
	ch := a.checkers[2]
	if ch == nil {
		t.Fatal("no checker started")
	}
	if got := a.checkInterval(ch); got != a.cfg.MaxCheckInterval {
		t.Fatalf("quiet flow interval = %v, want the maximum %v", got, a.cfg.MaxCheckInterval)
	}
}

func TestAdaptiveVolatileFlowSpeedsUp(t *testing.T) {
	a, env := adaptiveUnit(9)
	feedData(a, env, 2, []float64{4, 9, 3, 10, 4, 11, 3, 9})
	ch := a.checkers[2]
	if got := a.checkInterval(ch); got != a.cfg.MinCheckInterval {
		t.Fatalf("volatile flow interval = %v, want the minimum %v", got, a.cfg.MinCheckInterval)
	}
}

func TestAdaptiveIntervalMonotoneInVolatility(t *testing.T) {
	a, _ := adaptiveUnit(9)
	prev := time.Duration(1 << 62)
	for _, vol := range []float64{0, 0.25, 0.5, 0.75, 1.0, 2.0} {
		ch := &checker{volatility: vol}
		got := a.checkInterval(ch)
		if got > prev {
			t.Fatalf("interval grew with volatility: %v at vol=%v", got, vol)
		}
		if got < a.cfg.MinCheckInterval || got > a.cfg.MaxCheckInterval {
			t.Fatalf("interval %v outside [%v, %v]", got, a.cfg.MinCheckInterval, a.cfg.MaxCheckInterval)
		}
		prev = got
	}
}

func TestFixedConfigIgnoresVolatility(t *testing.T) {
	env := routingtest.New(9, 10)
	a := New(env, DefaultConfig()) // AdaptiveCheck off
	ch := &checker{volatility: 5}
	if got := a.checkInterval(ch); got != a.cfg.CheckInterval {
		t.Fatalf("fixed interval = %v, want %v", got, a.cfg.CheckInterval)
	}
}

func TestAdaptiveBroadcastRateFollowsVolatility(t *testing.T) {
	// Integration-flavoured: a volatile destination must emit more CSIC
	// broadcasts per unit time than a quiet one.
	run := func(csis []float64) int {
		a, env := adaptiveUnit(9)
		// Prime activity so the checker keeps running.
		a.HandleControl(&packet.Packet{
			Type: packet.TypeRREQ, Src: 2, Dst: 9, From: 4,
			To: packet.Broadcast, Size: packet.SizeRREQ, BroadcastID: 1, GeoHops: 3,
		}, env.Now())
		for i := 0; i < 40; i++ {
			a.DataArrived(&packet.Packet{
				Type: packet.TypeData, Src: 2, Dst: 9, From: 4,
				TraversedHops: 3, TraversedCSI: csis[i%len(csis)],
			}, env.Now())
			env.Pump(250 * time.Millisecond)
		}
		return len(env.SentOfType(packet.TypeCSIC))
	}
	quiet := run([]float64{6})
	volatile := run([]float64{3, 11})
	if volatile <= quiet {
		t.Fatalf("volatile flow sent %d CSICs vs quiet %d; adaptation inert", volatile, quiet)
	}
	if volatile < 2*quiet {
		t.Fatalf("adaptation too weak: %d vs %d", volatile, quiet)
	}
}
