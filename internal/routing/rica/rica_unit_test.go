package rica

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing/routingtest"
)

// newUnit builds a RICA agent on a scripted env.
func newUnit(id int) (*Agent, *routingtest.Env) {
	env := routingtest.New(id, 10)
	return New(env, DefaultConfig()), env
}

func csic(src, dst, from int, bid uint32, hop float64, ttl int) *packet.Packet {
	return &packet.Packet{
		Type: packet.TypeCSIC, Src: src, Dst: dst, From: from,
		To: packet.Broadcast, Size: packet.SizeCSIC,
		BroadcastID: bid, HopCount: hop, TTL: ttl,
	}
}

func TestCSICRebroadcastDecrementsTTL(t *testing.T) {
	a, env := newUnit(5)
	env.Classes[3] = channel.ClassA
	a.HandleControl(csic(8, 9, 3, 1, 0, 4), env.Now())
	env.Pump(50 * time.Millisecond) // let the jittered rebroadcast fire
	sent := env.SentOfType(packet.TypeCSIC)
	if len(sent) != 1 {
		t.Fatalf("rebroadcasts = %d, want 1", len(sent))
	}
	if sent[0].TTL != 3 {
		t.Errorf("TTL = %d, want 3", sent[0].TTL)
	}
	if sent[0].HopCount != 1 { // class A adds hop distance 1
		t.Errorf("HopCount = %v, want 1", sent[0].HopCount)
	}
	if sent[0].Via != 3 {
		t.Errorf("Via = %d, want the upstream terminal 3", sent[0].Via)
	}
}

func TestCSICExpiresAtTTLZero(t *testing.T) {
	a, env := newUnit(5)
	env.Classes[3] = channel.ClassB
	a.HandleControl(csic(8, 9, 3, 1, 0, 1), env.Now()) // TTL 1: consume and stop
	env.Pump(50 * time.Millisecond)
	if n := len(env.SentOfType(packet.TypeCSIC)); n != 0 {
		t.Fatalf("TTL-exhausted packet rebroadcast %d times", n)
	}
}

func TestCSICOnlyImprovedCopiesRebroadcast(t *testing.T) {
	a, env := newUnit(5)
	env.Classes[3] = channel.ClassD // hop distance 5
	env.Classes[4] = channel.ClassA // hop distance 1
	a.HandleControl(csic(8, 9, 3, 1, 0, 5), env.Now())
	a.HandleControl(csic(8, 9, 4, 1, 0, 5), env.Now()) // better: via class A link
	a.HandleControl(csic(8, 9, 4, 1, 2, 5), env.Now()) // worse metric: suppressed
	env.Pump(50 * time.Millisecond)
	sent := env.SentOfType(packet.TypeCSIC)
	if len(sent) != 2 {
		t.Fatalf("rebroadcasts = %d, want 2 (first + improved)", len(sent))
	}
	// The surviving downstream candidate must be the improved one.
	if c := a.cand[9]; c.next != 4 || c.hop != 1 {
		t.Fatalf("candidate = %+v, want next 4 hop 1", c)
	}
}

func TestSourceCollectsWindowThenSwitches(t *testing.T) {
	a, env := newUnit(2) // we are the flow source
	env.Classes[6] = channel.ClassC
	env.Classes[7] = channel.ClassA
	// Two CSI-checking copies arrive within the window; the class-A one
	// has the lower total distance.
	a.HandleControl(csic(2, 9, 6, 1, 2.0, 3), env.Now()) // total 2 + 3.33
	a.HandleControl(csic(2, 9, 7, 1, 2.0, 3), env.Now()) // total 2 + 1
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	rupd := env.SentOfType(packet.TypeRUPD)
	if len(rupd) != 1 {
		t.Fatalf("RUPD count = %d, want 1", len(rupd))
	}
	if rupd[0].To != 7 {
		t.Errorf("RUPD went to %d, want the class-A neighbour 7", rupd[0].To)
	}
	if e := a.core.Table.Lookup(9, env.Now()); e == nil || e.Next != 7 {
		t.Fatalf("route entry = %+v, want next hop 7", e)
	}
}

func routingCollectWindow() time.Duration { return DefaultConfig().CollectWindow }

func TestNoRUPDWhenRouteUnchanged(t *testing.T) {
	a, env := newUnit(2)
	env.Classes[7] = channel.ClassA
	a.HandleControl(csic(2, 9, 7, 1, 1.0, 3), env.Now())
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	if n := len(env.SentOfType(packet.TypeRUPD)); n != 1 {
		t.Fatalf("first decision sent %d RUPDs, want 1", n)
	}
	env.Reset()
	// Next round offers the same next hop: refresh without a new RUPD.
	a.HandleControl(csic(2, 9, 7, 2, 1.2, 3), env.Now())
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	if n := len(env.SentOfType(packet.TypeRUPD)); n != 0 {
		t.Fatalf("unchanged route sent %d RUPDs, want 0", n)
	}
}

func TestCheckerStartsOnRREQAndBroadcasts(t *testing.T) {
	a, env := newUnit(9) // we are the destination
	env.Classes[4] = channel.ClassB
	rreq := &packet.Packet{
		Type: packet.TypeRREQ, Src: 2, Dst: 9, From: 4,
		To: packet.Broadcast, Size: packet.SizeRREQ, BroadcastID: 1, GeoHops: 2,
	}
	a.HandleControl(rreq, env.Now())
	env.Pump(DefaultConfig().CheckInterval + 100*time.Millisecond)
	cs := env.SentOfType(packet.TypeCSIC)
	if len(cs) != 1 {
		t.Fatalf("CSIC broadcasts after one interval = %d, want 1", len(cs))
	}
	if cs[0].Src != 2 || cs[0].Dst != 9 {
		t.Errorf("CSIC flow identity = (%d,%d), want (2,9)", cs[0].Src, cs[0].Dst)
	}
	if cs[0].TTL <= 0 {
		t.Errorf("CSIC TTL = %d, want scoped positive", cs[0].TTL)
	}
}

func TestCheckerStopsWhenQuiet(t *testing.T) {
	a, env := newUnit(9)
	env.Classes[4] = channel.ClassB
	a.HandleControl(&packet.Packet{
		Type: packet.TypeRREQ, Src: 2, Dst: 9, From: 4,
		To: packet.Broadcast, Size: packet.SizeRREQ, BroadcastID: 1, GeoHops: 2,
	}, env.Now())
	// No data ever arrives: after ActivityTimeout the checker must go
	// silent.
	env.Pump(10 * time.Second)
	cs := env.SentOfType(packet.TypeCSIC)
	if len(cs) > 4 {
		t.Fatalf("checker kept broadcasting a dead flow: %d CSICs in 10 s", len(cs))
	}
	// Fresh data resurrects it.
	env.Reset()
	a.DataArrived(&packet.Packet{
		Type: packet.TypeData, Src: 2, Dst: 9, From: 4, TraversedHops: 3,
	}, env.Now())
	env.Pump(1500 * time.Millisecond)
	if len(env.SentOfType(packet.TypeCSIC)) == 0 {
		t.Fatal("checker did not restart when the flow resumed")
	}
}

func TestRouteDataUsesFreshCandidate(t *testing.T) {
	a, env := newUnit(5)
	env.Classes[3] = channel.ClassA
	a.HandleControl(csic(8, 9, 3, 1, 0, 5), env.Now()) // downstream candidate: 3
	data := &packet.Packet{Type: packet.TypeData, Src: 8, Dst: 9, From: 2, Size: packet.SizeData}
	a.RouteData(data, env.Now())
	if len(env.Enqueues) != 1 || env.Enqueues[0].Next != 3 {
		t.Fatalf("enqueues = %+v, want via candidate 3", env.Enqueues)
	}
}

func TestRouteDataSplitHorizon(t *testing.T) {
	a, env := newUnit(5)
	env.Classes[3] = channel.ClassA
	a.HandleControl(csic(8, 9, 3, 1, 0, 5), env.Now())
	// The packet came FROM terminal 3; sending it back would loop.
	data := &packet.Packet{Type: packet.TypeData, Src: 8, Dst: 9, From: 3, Size: packet.SizeData}
	a.RouteData(data, env.Now())
	if len(env.Enqueues) != 0 {
		t.Fatalf("packet bounced back to its sender: %+v", env.Enqueues)
	}
	if len(env.Drops) != 1 || env.Drops[0].Reason != network.DropNoRoute {
		t.Fatalf("drops = %+v, want one no-route", env.Drops)
	}
}

func TestREERIgnoredFromNonDownstream(t *testing.T) {
	a, env := newUnit(2)
	env.Classes[7] = channel.ClassA
	a.HandleControl(csic(2, 9, 7, 1, 1.0, 3), env.Now())
	env.Pump(routingCollectWindow() + 20*time.Millisecond) // route via 7 installed
	env.Reset()
	// REER arrives from terminal 6, which is not our downstream: ignore.
	a.HandleControl(&packet.Packet{
		Type: packet.TypeREER, Src: 2, Dst: 9, From: 6, Via: 6, Size: packet.SizeREER,
	}, env.Now())
	if e := a.core.Table.Lookup(9, env.Now()); e == nil {
		t.Fatal("REER from a stale route invalidated the current route")
	}
}

func TestLinkFailedSuppressedWhileChecking(t *testing.T) {
	a, env := newUnit(2)
	env.Classes[7] = channel.ClassA
	a.HandleControl(csic(2, 9, 7, 1, 1.0, 3), env.Now()) // recent CSIC
	env.Pump(routingCollectWindow() + 20*time.Millisecond)
	env.Reset()
	data := &packet.Packet{Type: packet.TypeData, Src: 2, Dst: 9, Size: packet.SizeData}
	a.LinkFailed(7, data, env.Now())
	if n := len(env.SentOfType(packet.TypeRREQ)); n != 0 {
		t.Fatalf("source re-flooded despite live CSI checking (%d RREQs)", n)
	}
	if len(env.Drops) != 0 {
		t.Fatalf("source dropped the packet instead of buffering: %+v", env.Drops)
	}
}
