package linkstate

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing"
	"rica/internal/routing/routingtest"
)

// bootLine builds a 5-terminal line topology 0-1-2-3-4, all class B.
func bootLine() *routing.Graph {
	g := routing.NewGraph(5)
	for i := 0; i < 4; i++ {
		g.SetEdge(i, i+1, channel.ClassB.HopDistance())
	}
	return g
}

func newUnit(id int) (*Agent, *routingtest.Env) {
	env := routingtest.New(id, 5)
	for j := 0; j < 5; j++ {
		env.Classes[j] = channel.ClassB
	}
	return New(env, DefaultConfig(), bootLine()), env
}

func TestBootTopologyForwards(t *testing.T) {
	a, env := newUnit(1)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 4, From: 0, Size: packet.SizeData}
	a.RouteData(data, env.Now())
	if len(env.Enqueues) != 1 || env.Enqueues[0].Next != 2 {
		t.Fatalf("enqueues = %+v, want next hop 2 on the line", env.Enqueues)
	}
}

func TestUnreachableDrops(t *testing.T) {
	env := routingtest.New(1, 5)
	g := routing.NewGraph(5)
	g.SetEdge(0, 1, 1) // 2,3,4 disconnected
	a := New(env, DefaultConfig(), g)
	a.RouteData(&packet.Packet{Type: packet.TypeData, Src: 0, Dst: 4, From: 0, Size: packet.SizeData}, env.Now())
	if len(env.Drops) != 1 || env.Drops[0].Reason != network.DropNoRoute {
		t.Fatalf("drops = %+v, want no-route", env.Drops)
	}
}

func TestClassChangeFloodsLSA(t *testing.T) {
	a, env := newUnit(1)
	// Neighbour 2's beacon arrives with the boot class: no flood.
	a.HandleControl(&packet.Packet{Type: packet.TypeBeacon, Src: 2, From: 2, Size: packet.SizeBeacon}, env.Now())
	env.Pump(100 * time.Millisecond)
	if n := len(env.SentOfType(packet.TypeLSA)); n != 0 {
		t.Fatalf("unchanged class flooded %d LSAs", n)
	}
	// The link to 2 degrades to class D: flood.
	env.Classes[2] = channel.ClassD
	a.HandleControl(&packet.Packet{Type: packet.TypeBeacon, Src: 2, From: 2, Size: packet.SizeBeacon}, env.Now())
	env.Pump(100 * time.Millisecond)
	lsas := env.SentOfType(packet.TypeLSA)
	if len(lsas) != 1 {
		t.Fatalf("LSA count = %d, want 1", len(lsas))
	}
	entries := lsas[0].Payload.([]LinkEntry)
	found := false
	for _, e := range entries {
		if e.Neighbor == 2 && e.Cost == channel.ClassD.HopDistance() {
			found = true
		}
	}
	if !found {
		t.Fatalf("LSA entries %+v missing the degraded link", entries)
	}
}

func TestLSAAppliesAndRelaysOncePerGeneration(t *testing.T) {
	a, env := newUnit(1)
	lsa := &packet.Packet{
		Type: packet.TypeLSA, Src: 3, From: 2, To: packet.Broadcast,
		Size: packet.LSASize(1), BroadcastID: 1,
		Payload: []LinkEntry{{Neighbor: 4, Cost: 5}},
	}
	a.HandleControl(lsa, env.Now())
	a.HandleControl(lsa.Clone(), env.Now()) // duplicate copy
	env.Pump(100 * time.Millisecond)
	if n := len(env.SentOfType(packet.TypeLSA)); n != 1 {
		t.Fatalf("relays = %d, want 1", n)
	}
	// The view must now cost 3-4 at 5 (class D), and 3-2 must be gone
	// (the LSA replaces 3's whole neighbour list).
	if w, ok := a.topo.Edge(3, 4); !ok || w != 5 {
		t.Fatalf("edge 3-4 = %v,%v; LSA not applied", w, ok)
	}
	if _, ok := a.topo.Edge(3, 2); ok {
		t.Fatal("stale edge 3-2 survived the replacing LSA")
	}
}

func TestStaleLSAGenerationIgnoredForState(t *testing.T) {
	a, env := newUnit(1)
	newer := &packet.Packet{
		Type: packet.TypeLSA, Src: 3, From: 2, To: packet.Broadcast,
		Size: packet.LSASize(1), BroadcastID: 5,
		Payload: []LinkEntry{{Neighbor: 4, Cost: 1}},
	}
	older := &packet.Packet{
		Type: packet.TypeLSA, Src: 3, From: 4, To: packet.Broadcast,
		Size: packet.LSASize(1), BroadcastID: 4,
		Payload: []LinkEntry{{Neighbor: 4, Cost: 5}},
	}
	a.HandleControl(newer, env.Now())
	a.HandleControl(older, env.Now())
	if w, _ := a.topo.Edge(3, 4); w != 1 {
		t.Fatalf("older generation overwrote newer state: cost %v", w)
	}
}

func TestSilentNeighborSweptAndFlooded(t *testing.T) {
	a, env := newUnit(1)
	a.Start(env.Now())
	// Keep neighbour 0 alive, let neighbour 2 go silent.
	stop := env.Now() + 6*time.Second
	for env.Now() < stop {
		a.HandleControl(&packet.Packet{Type: packet.TypeBeacon, Src: 0, From: 0, Size: packet.SizeBeacon}, env.Now())
		env.Pump(time.Second)
	}
	if _, ok := a.topo.Edge(1, 2); ok {
		t.Fatal("silent neighbour's edge survived the sweep")
	}
	if _, ok := a.topo.Edge(0, 1); !ok {
		t.Fatal("live neighbour's edge was swept")
	}
	if len(env.SentOfType(packet.TypeLSA)) == 0 {
		t.Fatal("sweep did not flood the topology change")
	}
}

func TestLinkFailedDropsWithoutRepair(t *testing.T) {
	a, env := newUnit(1)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 4, From: 0, Size: packet.SizeData}
	a.LinkFailed(2, data, env.Now())
	if len(env.Drops) != 1 || env.Drops[0].Reason != network.DropLinkBreak {
		t.Fatalf("drops = %+v, want link-break (no data-plane repair)", env.Drops)
	}
	// The local view must be unchanged: detection is beacon-driven only.
	if _, ok := a.topo.Edge(1, 2); !ok {
		t.Fatal("data-plane failure removed the edge; the paper's protocol learns only from beacons")
	}
}

func TestNewerSeqWraparound(t *testing.T) {
	if !newerSeq(1, 0) || newerSeq(0, 1) {
		t.Fatal("basic ordering broken")
	}
	// Wraparound: 0 is newer than MaxUint32.
	if !newerSeq(0, ^uint32(0)) {
		t.Fatal("wraparound ordering broken")
	}
}

func TestOwnLSAEchoIgnored(t *testing.T) {
	a, env := newUnit(1)
	env.Classes[2] = channel.ClassD
	a.HandleControl(&packet.Packet{Type: packet.TypeBeacon, Src: 2, From: 2, Size: packet.SizeBeacon}, env.Now())
	env.Pump(100 * time.Millisecond)
	own := env.SentOfType(packet.TypeLSA)[0]
	env.Reset()
	echo := own.Clone()
	echo.From = 2
	a.HandleControl(echo, env.Now())
	env.Pump(100 * time.Millisecond)
	if n := len(env.SentOfType(packet.TypeLSA)); n != 0 {
		t.Fatalf("own echoed LSA relayed %d times", n)
	}
}
