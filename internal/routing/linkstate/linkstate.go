// Package linkstate implements the table-driven baseline of the paper's
// comparison: a link-state protocol with Dijkstra forwarding over
// CSI-weighted edges. At t = 0 every terminal is installed with an
// accurate view of the whole topology (paper §III.A). From then on each
// terminal monitors its incident links through periodic beacons — when a
// link's channel class changes or a neighbour falls silent, it floods a
// link-state advertisement (LSA) through the common channel. Every
// terminal forwards data packets hop by hop using Dijkstra over its own,
// possibly stale, view.
//
// The paper's finding — and this implementation deliberately reproduces
// the conditions for it — is that the wireless common channel cannot carry
// the flood load: LSAs collide, views diverge, and routing loops form that
// inflate delay and drown packets until their buffer lifetime kills them.
// Nothing here "patches" the loops; they are the measured phenomenon.
package linkstate

import (
	"sort"
	"time"

	"rica/internal/channel"
	"rica/internal/network"
	"rica/internal/obs"
	"rica/internal/packet"
	"rica/internal/routing"
)

// Config tunes the protocol.
type Config struct {
	// BeaconInterval is the neighbour-probing period.
	BeaconInterval time.Duration
	// NeighborTimeout declares a silent neighbour gone.
	NeighborTimeout time.Duration
	// MinFloodInterval optionally batches link changes into at most one
	// LSA per interval. The paper's protocol floods *every* change
	// immediately (interval 0) — which is precisely what saturates the
	// common channel and produces the routing loops §III reports. The
	// knob exists for the damping ablation benchmark.
	MinFloodInterval time.Duration
}

// DefaultConfig returns the paper-faithful settings: undamped flooding.
func DefaultConfig() Config {
	return Config{
		BeaconInterval:  time.Second,
		NeighborTimeout: 3500 * time.Millisecond, // three missed beacons

	}
}

// LinkEntry is one advertised incident link.
type LinkEntry struct {
	Neighbor int
	Cost     float64 // CSI hop distance
}

// Agent is one terminal's link-state instance.
type Agent struct {
	routing.BaseAgent
	env  network.Env
	cfg  Config
	hist *routing.History

	topo     *routing.Graph // this terminal's view of the network
	myLinks  map[int]float64
	lastSeen map[int]time.Duration
	knownSeq map[int]uint32
	seq      uint32

	lastFlood    time.Duration
	floodPending bool
	relay        *routing.DelayedSender
	obs          *obs.Registry

	sptNext  []int
	sptDist  []float64 // recycled alongside sptNext between recomputes
	sptDirty bool
}

var _ network.Agent = (*Agent)(nil)

// New builds the terminal's agent with boot's accurate topology installed.
// boot is shared read-only across terminals; each agent copies it.
func New(env network.Env, cfg Config, boot *routing.Graph) *Agent {
	a := &Agent{
		env:      env,
		cfg:      cfg,
		relay:    routing.NewDelayedSender(env),
		hist:     routing.NewHistory(),
		topo:     routing.NewGraph(env.NumNodes()),
		myLinks:  make(map[int]float64),
		lastSeen: make(map[int]time.Duration),
		knownSeq: make(map[int]uint32),
		sptDirty: true,
	}
	if op, ok := env.(routing.ObsProvider); ok {
		a.obs = op.Obs()
		a.hist.SetObs(a.obs)
	}
	n := env.NumNodes()
	a.topo.CopyFrom(boot)
	self := env.ID()
	for j := 0; j < n; j++ {
		if w, ok := boot.Edge(self, j); ok {
			a.myLinks[j] = w
			a.lastSeen[j] = 0
		}
	}
	return a
}

// Start implements network.Agent: begin beaconing with a random phase
// spread over the whole interval, so the network's beacons interleave
// instead of colliding in one burst.
func (a *Agent) Start(time.Duration) {
	phase := time.Duration(a.env.Rand().Int63n(int64(a.cfg.BeaconInterval)))
	a.env.Schedule(phase, func(now time.Duration) {
		a.beacon(now)
	})
}

// beacon broadcasts a probe, sweeps silent neighbours, and re-arms.
func (a *Agent) beacon(now time.Duration) {
	b := packet.Get() // recycled by the MAC layer after transmission
	b.CopyFrom(&packet.Packet{
		Type: packet.TypeBeacon,
		Src:  a.env.ID(),
		To:   packet.Broadcast,
		Size: packet.SizeBeacon,
	})
	a.env.SendControl(b)
	a.sweepSilent(now)
	a.env.Schedule(a.cfg.BeaconInterval+routing.Jitter(a.env.Rand()), func(at time.Duration) {
		a.beacon(at)
	})
}

// sweepSilent removes links whose neighbour has not beaconed lately.
func (a *Agent) sweepSilent(now time.Duration) {
	changed := false
	var gone []int
	for j := range a.myLinks {
		if now-a.lastSeen[j] > a.cfg.NeighborTimeout {
			gone = append(gone, j)
		}
	}
	sort.Ints(gone)
	for _, j := range gone {
		delete(a.myLinks, j)
		a.topo.RemoveEdge(a.env.ID(), j)
		changed = true
	}
	if changed {
		a.sptDirty = true
		a.scheduleFlood(now)
	}
}

// HandleControl implements network.Agent.
func (a *Agent) HandleControl(pkt *packet.Packet, now time.Duration) {
	switch pkt.Type {
	case packet.TypeBeacon:
		a.noteBeacon(pkt.From, now)
	case packet.TypeLSA:
		a.handleLSA(pkt, now)
	}
}

// noteBeacon measures the beaconing neighbour's current class and floods
// an update when the link cost changed class.
func (a *Agent) noteBeacon(from int, now time.Duration) {
	a.lastSeen[from] = now
	class := a.env.LinkClass(from)
	if !class.Usable() {
		// Heard the beacon but the class says out of range: boundary race;
		// treat as worst class rather than flapping.
		class = channel.ClassD
	}
	cost := class.HopDistance()
	if prev, ok := a.myLinks[from]; ok && prev == cost {
		return
	}
	a.myLinks[from] = cost
	a.topo.SetEdge(a.env.ID(), from, cost)
	a.sptDirty = true
	a.scheduleFlood(now)
}

// scheduleFlood rate-limits LSA origination to MinFloodInterval.
func (a *Agent) scheduleFlood(now time.Duration) {
	if a.floodPending {
		return
	}
	wait := a.cfg.MinFloodInterval - (now - a.lastFlood)
	if wait < 0 {
		wait = 0
	}
	a.floodPending = true
	a.env.Schedule(wait, func(at time.Duration) {
		a.floodPending = false
		a.lastFlood = at
		a.originateLSA(at)
	})
}

// originateLSA floods this terminal's current incident-link list.
func (a *Agent) originateLSA(now time.Duration) {
	a.seq++
	entries := make([]LinkEntry, 0, len(a.myLinks))
	var nbrs []int
	for j := range a.myLinks {
		nbrs = append(nbrs, j)
	}
	sort.Ints(nbrs)
	for _, j := range nbrs {
		entries = append(entries, LinkEntry{Neighbor: j, Cost: a.myLinks[j]})
	}
	pkt := packet.Get() // recycled by the MAC layer after the flood airs
	pkt.CopyFrom(&packet.Packet{
		Type:        packet.TypeLSA,
		Src:         a.env.ID(),
		To:          packet.Broadcast,
		Size:        packet.LSASize(len(entries)),
		BroadcastID: a.seq,
		Payload:     entries,
		CreatedAt:   now,
	})
	a.hist.FirstCopy(pkt, now) // ignore our own echo
	a.env.SendControl(pkt)
}

// handleLSA applies and relays a received advertisement.
func (a *Agent) handleLSA(pkt *packet.Packet, now time.Duration) {
	if pkt.Src == a.env.ID() {
		return
	}
	if _, first := a.hist.FirstCopy(pkt, now); !first {
		return
	}
	if prev, ok := a.knownSeq[pkt.Src]; !ok || newerSeq(pkt.BroadcastID, prev) {
		a.knownSeq[pkt.Src] = pkt.BroadcastID
		a.applyLSA(pkt)
	}
	// Relay the first copy of each generation; duplicates were filtered
	// above, and out-of-date generations still relay (their origin's newer
	// LSA carries its own flood), matching plain LSA flooding.
	fwd := pkt.Clone()
	fwd.To = packet.Broadcast
	a.relay.SendJittered(fwd)
}

// newerSeq compares LSA generations with wraparound tolerance.
func newerSeq(a, b uint32) bool { return int32(a-b) > 0 }

// applyLSA replaces the origin's incident links in this terminal's view.
func (a *Agent) applyLSA(pkt *packet.Packet) {
	entries, ok := pkt.Payload.([]LinkEntry)
	if !ok {
		return
	}
	origin := pkt.Src
	a.topo.ClearNode(origin)
	for _, e := range entries {
		a.topo.SetEdge(origin, e.Neighbor, e.Cost)
	}
	a.sptDirty = true
}

// nextHop answers from the cached shortest-path tree, recomputing only
// when the view changed. A table-driven protocol has no per-destination
// install/invalidate churn, so each SPT recompute is reported as one
// route install to telemetry-wired environments — the closest analogue
// of "the forwarding state changed".
func (a *Agent) nextHop(dst int) int {
	if a.sptDirty {
		a.sptNext, a.sptDist = a.topo.ShortestPaths(a.env.ID(), a.sptNext, a.sptDist)
		a.sptDirty = false
		a.obs.Inc(obs.CSPTRecomputes)
		if to, ok := a.env.(routing.TableObserver); ok {
			to.NoteRouteInstalled()
		}
	}
	return a.sptNext[dst]
}

// RouteData implements network.Agent: pure Dijkstra forwarding. There is
// no on-demand fallback; an unreachable destination is a drop.
func (a *Agent) RouteData(pkt *packet.Packet, now time.Duration) {
	next := a.nextHop(pkt.Dst)
	if next < 0 {
		a.env.DropData(pkt, network.DropNoRoute)
		return
	}
	a.env.EnqueueData(pkt, next)
}

// LinkFailed implements network.Agent. A pure table-driven protocol has no
// data-plane repair: the packet is lost, and the broken edge stays in the
// local view until the beacon timeout notices the silent neighbour (the
// paper's terminals learn topology only through flooded updates). This lag
// is the mechanism behind link state's collapse under mobility: packets
// keep marching into dead links for seconds, and the eventual flood races
// stale views into routing loops.
func (a *Agent) LinkFailed(next int, pkt *packet.Packet, now time.Duration) {
	a.env.DropData(pkt, network.DropLinkBreak)
}

// DrainPending implements network.Drainer: after the horizon, LSA relays
// still parked behind rebroadcast jitter are silently returned to the
// pool so end-of-run leak accounting comes out exact. A table-driven
// protocol parks no data packets, so the data count is always zero.
func (a *Agent) DrainPending() (data, control int) { return 0, a.relay.Drain() }
