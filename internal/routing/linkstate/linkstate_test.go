package linkstate_test

import (
	"testing"
	"time"

	"rica/internal/metrics"
	"rica/internal/network"
	"rica/internal/routing/linkstate"
	"rica/internal/world"
)

func lsFactory(env network.Env, w *world.World, _ int) network.Agent {
	return linkstate.New(env, linkstate.DefaultConfig(), w.BootTopology())
}

func run(t *testing.T, speedKmh, rate float64, dur time.Duration, seed int64) metrics.Summary {
	t.Helper()
	cfg := world.DefaultConfig(speedKmh, rate)
	cfg.Duration = dur
	cfg.Seed = seed
	return world.New(cfg, lsFactory).Run()
}

// TestStaticNetworkWorksWell reproduces the paper's observation that with
// an installed accurate topology and no motion, link state performs fine
// (its delay can even be the lowest).
func TestStaticNetworkWorksWell(t *testing.T) {
	s := run(t, 0, 10, 30*time.Second, 1)
	if s.DeliveryRatio < 0.6 {
		t.Fatalf("static delivery = %.3f (drops %v), want > 0.6", s.DeliveryRatio, s.Dropped)
	}
}

// TestMobilityDegradesSharply is the collapse the paper reports: at high
// speed the flooded updates cannot keep views consistent and delivery
// falls well below the static case.
func TestMobilityDegradesSharply(t *testing.T) {
	static := run(t, 0, 10, 30*time.Second, 2)
	fast := run(t, 72, 10, 30*time.Second, 2)
	if fast.DeliveryRatio >= static.DeliveryRatio {
		t.Fatalf("mobility did not degrade link state: %.3f static vs %.3f at 72 km/h",
			static.DeliveryRatio, fast.DeliveryRatio)
	}
	if fast.DeliveryRatio > 0.85*static.DeliveryRatio {
		t.Fatalf("degradation too mild: %.3f → %.3f", static.DeliveryRatio, fast.DeliveryRatio)
	}
}

// TestRoutingLoopsForm: stale views forward packets in circles. A 50-node
// network on a 1000 m field with 250 m radios has a diameter under ~8
// hops; any packet traversing far more than that has looped (paper Figure
// 5b's "highest number of hops" pathology).
func TestRoutingLoopsForm(t *testing.T) {
	static := run(t, 0, 10, 30*time.Second, 3)
	fast := run(t, 72, 10, 30*time.Second, 3)
	if fast.MaxHops < 15 {
		t.Fatalf("max hops at 72 km/h = %d; no packet ever looped", fast.MaxHops)
	}
	if fast.MaxHops <= static.MaxHops/2 {
		t.Fatalf("loops not worse under mobility: static max %d vs mobile max %d",
			static.MaxHops, fast.MaxHops)
	}
}

// TestFloodOverheadDominates: the paper's Figure 4 shows link state
// overhead far above every on-demand protocol once terminals move.
func TestFloodOverheadDominates(t *testing.T) {
	s := run(t, 40, 10, 30*time.Second, 4)
	if s.OverheadBps < 50_000 {
		t.Fatalf("link-state overhead = %.0f bps, implausibly low for LSA flooding", s.OverheadBps)
	}
	if s.ControlDropped == 0 {
		t.Fatal("no control packets lost to congestion; the common channel should be saturated")
	}
}

func TestHighestLinkThroughput(t *testing.T) {
	// Dijkstra over CSI costs picks high-class links (paper Figure 5a puts
	// link state top). Verify the per-hop link quality is at least high in
	// absolute terms even when mobile.
	s := run(t, 40, 10, 30*time.Second, 5)
	if s.AvgLinkThroughputBps < 120_000 {
		t.Fatalf("link-state avg link throughput %.0f too low; Dijkstra not using CSI costs?",
			s.AvgLinkThroughputBps)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, 30, 10, 15*time.Second, 7)
	b := run(t, 30, 10, 15*time.Second, 7)
	if a.Delivered != b.Delivered || a.AvgDelay != b.AvgDelay || a.OverheadBps != b.OverheadBps {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
