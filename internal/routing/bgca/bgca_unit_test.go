package bgca

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/routing/routingtest"
)

func newUnit(id int, rate float64) (*Agent, *routingtest.Env) {
	env := routingtest.New(id, 10)
	for j := 0; j < 10; j++ {
		env.Classes[j] = channel.ClassA
	}
	return New(env, DefaultConfig(rate)), env
}

// installRoute gives the agent a route to dst via next.
func installRoute(a *Agent, dst, next int, env *routingtest.Env) {
	a.core.Table.Install(dst, next, 2, 2, env.Now())
}

func TestGuardRequirementScalesWithLoad(t *testing.T) {
	lo := DefaultConfig(10)
	hi := DefaultConfig(20)
	if lo.RequiredBps != 10*packet.SizeData*8 {
		t.Fatalf("10 pkt/s requirement = %v", lo.RequiredBps)
	}
	if hi.RequiredBps != 2*lo.RequiredBps {
		t.Fatalf("requirement does not scale: %v vs %v", hi.RequiredBps, lo.RequiredBps)
	}
	// Class D (50 kbps) violates the 10 pkt/s requirement (41 kbps)? No —
	// 50 > 41, so only sub-D would. Class C (75 kbps) violates 20 pkt/s
	// (82 kbps).
	if channel.ClassD.ThroughputBps() < lo.RequiredBps {
		t.Fatalf("class D (%v) should satisfy the 10 pkt/s requirement (%v)",
			channel.ClassD.ThroughputBps(), lo.RequiredBps)
	}
	if channel.ClassC.ThroughputBps() >= hi.RequiredBps {
		t.Fatalf("class C (%v) should violate the 20 pkt/s requirement (%v)",
			channel.ClassC.ThroughputBps(), hi.RequiredBps)
	}
}

func TestGuardNeedsPersistentDeficiency(t *testing.T) {
	a, env := newUnit(1, 20) // requirement 82 kbps
	installRoute(a, 5, 3, env)
	env.Classes[3] = channel.ClassC // 75 kbps: deficient for 20 pkt/s
	data := func() *packet.Packet {
		return &packet.Packet{Type: packet.TypeData, Src: 1, Dst: 5, Size: packet.SizeData}
	}
	// First observation arms the debounce; no query yet.
	a.RouteData(data(), env.Now())
	if n := len(env.SentOfType(packet.TypeLQ)); n != 0 {
		t.Fatalf("guard fired on first observation (%d LQs)", n)
	}
	// Still within the debounce window: no query.
	env.Pump(100 * time.Millisecond)
	a.RouteData(data(), env.Now())
	if n := len(env.SentOfType(packet.TypeLQ)); n != 0 {
		t.Fatalf("guard fired inside debounce window (%d LQs)", n)
	}
	// Past half a cooldown with the deficiency persisting: query.
	env.Pump(500 * time.Millisecond)
	a.RouteData(data(), env.Now())
	if n := len(env.SentOfType(packet.TypeLQ)); n != 1 {
		t.Fatalf("guard LQs = %d, want 1", n)
	}
	lq := env.SentOfType(packet.TypeLQ)[0]
	if lq.TTL != DefaultConfig(20).RepairTTL {
		t.Fatalf("LQ TTL = %d, want scoped %d", lq.TTL, DefaultConfig(20).RepairTTL)
	}
	// Data kept flowing on the degraded link the whole time.
	if len(env.Enqueues) != 3 {
		t.Fatalf("enqueues = %d, want all 3 (guard must not stall traffic)", len(env.Enqueues))
	}
}

func TestGuardRecoveryClearsDebounce(t *testing.T) {
	a, env := newUnit(1, 20)
	installRoute(a, 5, 3, env)
	env.Classes[3] = channel.ClassC
	a.RouteData(&packet.Packet{Type: packet.TypeData, Src: 1, Dst: 5, Size: packet.SizeData}, env.Now())
	// Link recovers before the second observation.
	env.Classes[3] = channel.ClassA
	env.Pump(600 * time.Millisecond)
	a.RouteData(&packet.Packet{Type: packet.TypeData, Src: 1, Dst: 5, Size: packet.SizeData}, env.Now())
	// Degrades again: the debounce must restart, not fire immediately.
	env.Classes[3] = channel.ClassC
	a.RouteData(&packet.Packet{Type: packet.TypeData, Src: 1, Dst: 5, Size: packet.SizeData}, env.Now())
	if n := len(env.SentOfType(packet.TypeLQ)); n != 0 {
		t.Fatalf("guard fired without persistent deficiency (%d LQs)", n)
	}
}

func TestGuardFailureKeepsRoute(t *testing.T) {
	a, env := newUnit(1, 20)
	installRoute(a, 5, 3, env)
	env.Classes[3] = channel.ClassC
	deficient := func() *packet.Packet {
		return &packet.Packet{Type: packet.TypeData, Src: 1, Dst: 5, Size: packet.SizeData}
	}
	a.RouteData(deficient(), env.Now())
	env.Pump(600 * time.Millisecond)
	a.RouteData(deficient(), env.Now()) // guard LQ launches
	// Let the repair timeout expire with no LREP.
	env.Pump(2 * time.Second)
	if e := a.core.Table.Lookup(5, env.Now()); e == nil {
		t.Fatal("failed guard query tore down a working (degraded) route")
	}
	if n := len(env.SentOfType(packet.TypeREER)); n != 0 {
		t.Fatalf("failed guard query sent %d REERs; guards are non-destructive", n)
	}
}

func TestBreakRepairHoldsPacketsAndQueries(t *testing.T) {
	a, env := newUnit(3, 10)
	installRoute(a, 5, 4, env)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.LinkFailed(4, data, env.Now())
	if len(env.Drops) != 0 {
		t.Fatalf("pivot dropped the packet instead of holding it: %+v", env.Drops)
	}
	if n := len(env.SentOfType(packet.TypeLQ)); n != 1 {
		t.Fatalf("break repair LQs = %d, want 1", n)
	}
}

func TestBreakRepairFailureSendsREER(t *testing.T) {
	a, env := newUnit(3, 10)
	installRoute(a, 5, 4, env)
	// Upstream pointer learned from transiting data.
	a.DataArrived(&packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2}, env.Now())
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.LinkFailed(4, data, env.Now())
	env.Pump(2 * time.Second) // repair times out
	reers := env.SentOfType(packet.TypeREER)
	if len(reers) != 1 || reers[0].To != 2 {
		t.Fatalf("REER = %+v, want unicast upstream to 2 after failed repair", reers)
	}
}

func TestLREPSplicesRoute(t *testing.T) {
	a, env := newUnit(3, 10)
	installRoute(a, 5, 4, env)
	data := &packet.Packet{Type: packet.TypeData, Src: 0, Dst: 5, From: 2, Size: packet.SizeData}
	a.LinkFailed(4, data, env.Now()) // holds the packet, LQ out
	env.Reset()
	a.HandleControl(&packet.Packet{
		Type: packet.TypeLREP, Src: 3, Dst: 5, From: 7, To: 3,
		Size: packet.SizeLREP, BroadcastID: 1,
	}, env.Now())
	if len(env.Enqueues) != 1 || env.Enqueues[0].Next != 7 {
		t.Fatalf("held packet not flushed onto spliced route: %+v", env.Enqueues)
	}
}

func TestDiscoveryUsesCSIMetric(t *testing.T) {
	a, env := newUnit(5, 10) // destination
	env.Classes[2] = channel.ClassD
	env.Classes[3] = channel.ClassA
	mk := func(from int) *packet.Packet {
		return &packet.Packet{
			Type: packet.TypeRREQ, Src: 0, Dst: 5, From: from,
			To: packet.Broadcast, Size: packet.SizeRREQ, BroadcastID: 1,
		}
	}
	a.HandleControl(mk(2), env.Now()) // first copy: class D link (distance 5)
	a.HandleControl(mk(3), env.Now()) // later copy: class A link (distance 1)
	env.Pump(100 * time.Millisecond)  // collect window expires
	reps := env.SentOfType(packet.TypeRREP)
	if len(reps) != 1 {
		t.Fatalf("RREP count = %d, want 1", len(reps))
	}
	if reps[0].To != 3 {
		t.Fatalf("destination chose %d, want the class-A candidate 3 (min CSI distance)", reps[0].To)
	}
}
