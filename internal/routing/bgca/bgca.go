// Package bgca implements the authors' earlier Bandwidth-Guarded Channel
// Adaptive protocol (WCNC 2002), the paper's second channel-adaptive
// contender. Route discovery is channel-adaptive exactly like RICA's
// (CSI-weighted RREQ flood, destination gathers and answers the minimum
// CSI-distance route), but maintenance is reactive rather than
// receiver-initiated: there are no periodic checking packets. Instead,
// every terminal forwarding a flow *guards* its outgoing link's bandwidth —
// when the link's class throughput falls below the flow's requirement, the
// terminal launches a TTL-scoped localized query (LQ) toward the
// destination and splices in the partial route the LREP confirms. Link
// breaks trigger the same localized repair with the packets held at the
// pivot; only when repair fails does a REER travel back to the source for
// a full re-flood. The paper characterizes this as the "passive or
// reactive" counterpart to RICA's aggressiveness.
package bgca

import (
	"time"

	"rica/internal/network"
	"rica/internal/packet"
	"rica/internal/routing"
)

// Config tunes the protocol.
type Config struct {
	// RequiredBps is the flow bandwidth requirement the guard enforces;
	// the experiments derive it from the offered load (rate × packet
	// bits), e.g. 41 kbps at 10 packets/s.
	RequiredBps float64
	// GuardCooldown bounds how often one terminal re-queries for the same
	// destination while its link stays degraded.
	GuardCooldown time.Duration
	// RepairTTL scopes localized queries in geographic hops.
	RepairTTL int
	// RepairTimeout bounds one localized query round.
	RepairTimeout time.Duration
	// RouteIdle expires unused routes.
	RouteIdle time.Duration
}

// DefaultConfig returns the settings used by the experiments at the given
// offered load in packets/second.
func DefaultConfig(pktPerSec float64) Config {
	return Config{
		RequiredBps:   pktPerSec * packet.SizeData * 8,
		GuardCooldown: time.Second,
		RepairTTL:     4,
		RepairTimeout: 400 * time.Millisecond,
		RouteIdle:     3 * time.Second,
	}
}

// Agent is one terminal's BGCA instance.
type Agent struct {
	routing.BaseAgent
	env  network.Env
	cfg  Config
	core *routing.Core

	lastGuard map[int]time.Duration // destination -> last LQ launch
	lastWeak  map[int]time.Duration // destination -> last observed deficiency
	guarding  map[int]bool          // outstanding LQ was a guard, not a break repair
}

var _ network.Agent = (*Agent)(nil)

// New builds the terminal's BGCA agent.
func New(env network.Env, cfg Config) *Agent {
	a := &Agent{
		env:       env,
		cfg:       cfg,
		lastGuard: make(map[int]time.Duration),
		lastWeak:  make(map[int]time.Duration),
		guarding:  make(map[int]bool),
	}
	a.core = routing.NewCore(env, routing.CoreConfig{
		Accumulate: func(pkt *packet.Packet) {
			pkt.HopCount += env.LinkClass(pkt.From).HopDistance()
		},
		CollectWindow:       routing.CollectWindow,
		RouteIdle:           cfg.RouteIdle,
		RebroadcastImproved: true,
		RepairTTL:           cfg.RepairTTL,
		RepairTimeout:       cfg.RepairTimeout,
		OnQueryFailed:       a.onQueryFailed,
	})
	return a
}

// HandleControl implements network.Agent.
func (a *Agent) HandleControl(pkt *packet.Packet, now time.Duration) {
	a.core.HandleControl(pkt, now)
}

// RouteData implements network.Agent: forward along the table, guarding
// the outgoing link's bandwidth; buffer and flood at the source.
func (a *Agent) RouteData(pkt *packet.Packet, now time.Duration) {
	if e := a.core.Table.Lookup(pkt.Dst, now); e != nil {
		a.guard(pkt.Dst, e.Next, now)
		a.core.Table.Touch(pkt.Dst, now)
		a.env.EnqueueData(pkt, e.Next)
		return
	}
	if pkt.Src == a.env.ID() {
		a.core.BufferAndDiscover(pkt, now)
		return
	}
	a.env.DropData(pkt, network.DropNoRoute)
}

// guard launches a localized repair query when the link toward next can no
// longer carry the flow's required bandwidth (the link is in deep fading
// but not broken, so traffic keeps using it while the query runs). The
// deficiency must persist across two observations at least half a cooldown
// apart — momentary fades are the adaptive modulator's job, not routing's.
func (a *Agent) guard(dst, next int, now time.Duration) {
	if a.env.LinkClass(next).ThroughputBps() >= a.cfg.RequiredBps {
		delete(a.lastWeak, dst)
		return
	}
	first, weak := a.lastWeak[dst]
	if !weak {
		a.lastWeak[dst] = now
		return
	}
	if now-first < a.cfg.GuardCooldown/2 {
		return
	}
	if last, ok := a.lastGuard[dst]; ok && now-last < a.cfg.GuardCooldown {
		return
	}
	a.lastGuard[dst] = now
	a.guarding[dst] = true
	a.core.StartQuery(dst, packet.TypeLQ, a.cfg.RepairTTL, now)
}

// DataArrived implements network.Agent.
func (a *Agent) DataArrived(pkt *packet.Packet, now time.Duration) {
	a.core.NoteData(pkt, now)
}

// LinkFailed implements network.Agent: hold the packet and repair locally;
// the source is told only if the localized query fails.
func (a *Agent) LinkFailed(next int, pkt *packet.Packet, now time.Duration) {
	a.core.Table.InvalidateNext(next)
	dst := pkt.Dst // a full pending buffer drops (and recycles) pkt inside BufferForRepair
	a.core.BufferForRepair(pkt, now)
	a.guarding[dst] = false // a break escalates past guard semantics
	a.core.StartQuery(dst, packet.TypeLQ, a.cfg.RepairTTL, now)
}

// onQueryFailed reports repair failure upstream. A failed *guard* query is
// benign — the degraded route keeps working and nothing is torn down. A
// failed *break* repair reports upstream so the sources re-flood.
func (a *Agent) onQueryFailed(dst int, kind packet.Type, now time.Duration) {
	if kind != packet.TypeLQ {
		return
	}
	if a.guarding[dst] {
		a.guarding[dst] = false
		return
	}
	a.core.REERAll(dst, now)
	// A source whose own local repair failed falls back to a full flood on
	// the next packet; nothing further to do here.
}

// DrainPending implements network.Drainer: once the simulation horizon
// has passed, packets parked behind route queries or jittered relays in
// the shared core are silently released for exact pool-leak accounting.
func (a *Agent) DrainPending() (data, control int) { return a.core.DrainPending() }

// ExportRoutes snapshots the agent's route table for checkpoint
// verification (see routing.Core.ExportRoutes).
func (a *Agent) ExportRoutes() []routing.Entry { return a.core.ExportRoutes() }
