package bgca_test

import (
	"testing"
	"time"

	"rica/internal/metrics"
	"rica/internal/network"
	"rica/internal/routing/aodv"
	"rica/internal/routing/bgca"
	"rica/internal/world"
)

func bgcaFactory(rate float64) world.AgentFactory {
	return func(env network.Env, _ *world.World, _ int) network.Agent {
		return bgca.New(env, bgca.DefaultConfig(rate))
	}
}

func aodvFactory(env network.Env, _ *world.World, _ int) network.Agent { return aodv.New(env) }

func run(t *testing.T, f world.AgentFactory, speedKmh, rate float64, dur time.Duration, seed int64) metrics.Summary {
	t.Helper()
	cfg := world.DefaultConfig(speedKmh, rate)
	cfg.Duration = dur
	cfg.Seed = seed
	return world.New(cfg, f).Run()
}

func TestStaticDelivery(t *testing.T) {
	s := run(t, bgcaFactory(10), 0, 10, 30*time.Second, 1)
	if s.DeliveryRatio < 0.75 {
		t.Fatalf("static delivery = %.3f (drops %v), want > 0.75", s.DeliveryRatio, s.Dropped)
	}
}

func TestMobileDelivery(t *testing.T) {
	s := run(t, bgcaFactory(10), 40, 10, 30*time.Second, 2)
	if s.DeliveryRatio < 0.5 {
		t.Fatalf("mobile delivery = %.3f (drops %v), want > 0.5", s.DeliveryRatio, s.Dropped)
	}
}

func TestChannelAdaptiveLinkQuality(t *testing.T) {
	const seed = 5
	b := run(t, bgcaFactory(10), 20, 10, 40*time.Second, seed)
	a := run(t, aodvFactory, 20, 10, 40*time.Second, seed)
	if b.AvgLinkThroughputBps <= a.AvgLinkThroughputBps {
		t.Fatalf("BGCA link throughput %.0f not above AODV %.0f",
			b.AvgLinkThroughputBps, a.AvgLinkThroughputBps)
	}
}

func TestOverheadAboveAODV(t *testing.T) {
	const seed = 6
	b := run(t, bgcaFactory(10), 30, 10, 40*time.Second, seed)
	a := run(t, aodvFactory, 30, 10, 40*time.Second, seed)
	if b.OverheadBps <= a.OverheadBps {
		t.Fatalf("BGCA overhead %.0f not above AODV %.0f (guard queries missing?)",
			b.OverheadBps, a.OverheadBps)
	}
}

func TestHigherLoadRaisesGuardRequirement(t *testing.T) {
	// At 20 pkt/s the requirement (82 kbps) exceeds classes C and D, so
	// guard queries fire more often than at 10 pkt/s (41 kbps, only class
	// D violates). Compare control packet counts on the same universe.
	lo := run(t, bgcaFactory(10), 20, 10, 30*time.Second, 7)
	hi := run(t, bgcaFactory(20), 20, 20, 30*time.Second, 7)
	if hi.ControlPackets <= lo.ControlPackets {
		t.Fatalf("guard at 20 pkt/s sent %d control packets, not above %d at 10 pkt/s",
			hi.ControlPackets, lo.ControlPackets)
	}
}

func TestDeterministic(t *testing.T) {
	a := run(t, bgcaFactory(10), 30, 10, 15*time.Second, 9)
	b := run(t, bgcaFactory(10), 30, 10, 15*time.Second, 9)
	if a.Delivered != b.Delivered || a.AvgDelay != b.AvgDelay || a.OverheadBps != b.OverheadBps {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}
