package routing

import (
	"container/heap"
	"sort"
)

// Graph is a weighted adjacency structure over terminals 0..N-1, used by
// the link-state protocol's per-node topology views. Edge weights are the
// CSI hop distances of the paper's cost model.
type Graph struct {
	n   int
	adj []map[int]float64
}

// NewGraph returns an empty graph over n terminals.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, adj: make([]map[int]float64, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]float64)
	}
	return g
}

// N reports the number of terminals.
func (g *Graph) N() int { return g.n }

// SetEdge installs the undirected edge (u, v) with weight w, replacing any
// previous weight. Non-positive or infinite weights remove the edge.
func (g *Graph) SetEdge(u, v int, w float64) {
	if u == v {
		return
	}
	if w <= 0 || w >= InfiniteHops {
		delete(g.adj[u], v)
		delete(g.adj[v], u)
		return
	}
	g.adj[u][v] = w
	g.adj[v][u] = w
}

// RemoveEdge deletes the undirected edge (u, v).
func (g *Graph) RemoveEdge(u, v int) { g.SetEdge(u, v, 0) }

// Edge reports the weight of (u, v) and whether it exists.
func (g *Graph) Edge(u, v int) (float64, bool) {
	w, ok := g.adj[u][v]
	return w, ok
}

// ClearNode removes every edge incident to u (a terminal whose LSA now
// advertises a different neighbour set).
func (g *Graph) ClearNode(u int) {
	for v := range g.adj[u] {
		delete(g.adj[v], u)
	}
	g.adj[u] = make(map[int]float64)
}

// InfiniteHops mirrors channel.Class.HopDistance's sentinel without
// importing the channel package here.
const InfiniteHops = 1e9

// ShortestPaths runs Dijkstra from src and returns, for every terminal,
// the first hop on a shortest path from src (or -1 if unreachable) and the
// total distance. The next-hop array is what link-state forwarding uses.
func (g *Graph) ShortestPaths(src int) (next []int, dist []float64) {
	next = make([]int, g.n)
	dist = make([]float64, g.n)
	for i := range next {
		next[i] = -1
		dist[i] = InfiniteHops
	}
	dist[src] = 0

	pq := &distHeap{}
	heap.Push(pq, distItem{node: src, dist: 0})
	done := make([]bool, g.n)
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		// Iterate neighbours in sorted order: map order is randomized per
		// process, and equal-cost tie-breaks must be deterministic for
		// reproducible trials.
		nbrs := make([]int, 0, len(g.adj[u]))
		for v := range g.adj[u] {
			nbrs = append(nbrs, v)
		}
		sort.Ints(nbrs)
		for _, v := range nbrs {
			w := g.adj[u][v]
			nd := dist[u] + w
			if nd < dist[v] {
				dist[v] = nd
				if u == src {
					next[v] = v
				} else {
					next[v] = next[u]
				}
				heap.Push(pq, distItem{node: v, dist: nd})
			}
		}
	}
	return next, dist
}

type distItem struct {
	node int
	dist float64
}

type distHeap []distItem

func (h distHeap) Len() int { return len(h) }
func (h distHeap) Less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
