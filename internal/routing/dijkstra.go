package routing

// Graph is a weighted adjacency structure over terminals 0..N-1, used by
// the link-state protocol's per-node topology views. Edge weights are the
// CSI hop distances of the paper's cost model.
//
// Adjacency is kept as per-node edge lists sorted by neighbour id: the
// paper-scale degree is around ten, where a binary-searched slice beats a
// map on every operation, iteration order is deterministic without a
// per-visit sort, and the Dijkstra inner loop walks contiguous memory.
type Graph struct {
	n   int
	adj [][]gedge

	// spt is the reusable ShortestPaths workspace. A link-state terminal
	// recomputes its tree on every topology change — the single largest
	// allocation source of the figure pipeline before the scratch was
	// recycled.
	spt sptScratch
}

// gedge is one directed half of an undirected edge.
type gedge struct {
	to int32
	w  float64
}

type sptScratch struct {
	heap []distItem
	done []bool
}

// NewGraph returns an empty graph over n terminals.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]gedge, n)}
}

// N reports the number of terminals.
func (g *Graph) N() int { return g.n }

// edgeIdx returns the position of v in u's sorted edge list and whether
// it is present; absent, the position is the insertion point.
func (g *Graph) edgeIdx(u, v int) (int, bool) {
	es := g.adj[u]
	lo, hi := 0, len(es)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(es[mid].to) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(es) && int(es[lo].to) == v
}

func (g *Graph) setHalf(u, v int, w float64) {
	i, ok := g.edgeIdx(u, v)
	if ok {
		g.adj[u][i].w = w
		return
	}
	es := append(g.adj[u], gedge{})
	copy(es[i+1:], es[i:])
	es[i] = gedge{to: int32(v), w: w}
	g.adj[u] = es
}

func (g *Graph) dropHalf(u, v int) {
	if i, ok := g.edgeIdx(u, v); ok {
		es := g.adj[u]
		g.adj[u] = append(es[:i], es[i+1:]...)
	}
}

// SetEdge installs the undirected edge (u, v) with weight w, replacing any
// previous weight. Non-positive or infinite weights remove the edge.
func (g *Graph) SetEdge(u, v int, w float64) {
	if u == v {
		return
	}
	if w <= 0 || w >= InfiniteHops {
		g.dropHalf(u, v)
		g.dropHalf(v, u)
		return
	}
	g.setHalf(u, v, w)
	g.setHalf(v, u, w)
}

// RemoveEdge deletes the undirected edge (u, v).
func (g *Graph) RemoveEdge(u, v int) { g.SetEdge(u, v, 0) }

// Edge reports the weight of (u, v) and whether it exists.
func (g *Graph) Edge(u, v int) (float64, bool) {
	if i, ok := g.edgeIdx(u, v); ok {
		return g.adj[u][i].w, true
	}
	return 0, false
}

// ClearNode removes every edge incident to u (a terminal whose LSA now
// advertises a different neighbour set).
func (g *Graph) ClearNode(u int) {
	for _, e := range g.adj[u] {
		g.dropHalf(int(e.to), u)
	}
	g.adj[u] = g.adj[u][:0]
}

// CopyFrom replaces g's edges with src's. Both graphs must cover the same
// terminal count; the receiver's storage is reused. Link-state agents
// install the shared boot topology into their private views with it.
func (g *Graph) CopyFrom(src *Graph) {
	if g.n != src.n {
		panic("routing: CopyFrom across different graph sizes")
	}
	for i := range g.adj {
		g.adj[i] = append(g.adj[i][:0], src.adj[i]...)
	}
}

// InfiniteHops mirrors channel.Class.HopDistance's sentinel without
// importing the channel package here.
const InfiniteHops = 1e9

// ShortestPaths runs Dijkstra from src and returns, for every terminal,
// the first hop on a shortest path from src (or -1 if unreachable) and the
// total distance. The next-hop array is what link-state forwarding uses.
// The two result slices are appended to next and dist (pass buffers from
// the previous recompute to make the call allocation-free in the steady
// state); the internal queue and visit set are recycled on the graph.
func (g *Graph) ShortestPaths(src int, next []int, dist []float64) ([]int, []float64) {
	next = next[:0]
	dist = dist[:0]
	for i := 0; i < g.n; i++ {
		next = append(next, -1)
		dist = append(dist, InfiniteHops)
	}
	dist[src] = 0

	if cap(g.spt.done) < g.n {
		g.spt.done = make([]bool, g.n)
	}
	done := g.spt.done[:g.n]
	for i := range done {
		done[i] = false
	}
	pq := distHeap(g.spt.heap[:0])
	pq.push(distItem{node: src, dist: 0})
	for len(pq) > 0 {
		it := pq.pop()
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		// Edge lists are sorted by neighbour id, so equal-cost tie-breaks
		// relax in deterministic order for reproducible trials.
		for _, e := range g.adj[u] {
			v := int(e.to)
			nd := dist[u] + e.w
			if nd < dist[v] {
				dist[v] = nd
				if u == src {
					next[v] = v
				} else {
					next[v] = next[u]
				}
				pq.push(distItem{node: v, dist: nd})
			}
		}
	}
	g.spt.heap = pq[:0]
	return next, dist
}

type distItem struct {
	node int
	dist float64
}

// distHeap is a hand-rolled binary min-heap over (dist, node). The
// ordering has no ties — node ids break them — so the pop sequence is the
// unique sorted frontier regardless of internal layout, and avoiding
// container/heap spares an interface boxing per operation.
type distHeap []distItem

func (h distHeap) less(i, j int) bool {
	if h[i].dist != h[j].dist {
		return h[i].dist < h[j].dist
	}
	return h[i].node < h[j].node
}

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	*h = old[:n-1]
	n--
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			break
		}
		(*h)[i], (*h)[least] = (*h)[least], (*h)[i]
		i = least
	}
	return top
}
