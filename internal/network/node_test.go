package network

import (
	"testing"
	"time"

	"rica/internal/channel"
	"rica/internal/geom"
	"rica/internal/mac"
	"rica/internal/packet"
	"rica/internal/sim"
)

// fixedPos pins a terminal to a point.
type fixedPos geom.Point

func (p fixedPos) Position(time.Duration) geom.Point { return geom.Point(p) }

// recorder captures data lifecycle events.
type recorder struct {
	generated int
	delivered []*packet.Packet
	dropped   map[DropReason]int
}

func newRecorder() *recorder { return &recorder{dropped: make(map[DropReason]int)} }

func (r *recorder) DataGenerated(*packet.Packet, time.Duration) { r.generated++ }
func (r *recorder) DataDelivered(p *packet.Packet, _ time.Duration) {
	r.delivered = append(r.delivered, p)
}
func (r *recorder) DataDropped(_ *packet.Packet, reason DropReason, _ time.Duration) {
	r.dropped[reason]++
}

// staticAgent forwards data along a fixed next-hop table.
type staticAgent struct {
	env      Env
	next     map[int]int // dst -> next hop
	controls []*packet.Packet
	failures []int
}

func (a *staticAgent) Start(time.Duration) {}
func (a *staticAgent) HandleControl(p *packet.Packet, _ time.Duration) {
	a.controls = append(a.controls, p)
}
func (a *staticAgent) RouteData(p *packet.Packet, _ time.Duration) {
	next, ok := a.next[p.Dst]
	if !ok {
		a.env.DropData(p, DropNoRoute)
		return
	}
	a.env.EnqueueData(p, next)
}
func (a *staticAgent) DataArrived(*packet.Packet, time.Duration) {}
func (a *staticAgent) LinkFailed(next int, p *packet.Packet, _ time.Duration) {
	a.failures = append(a.failures, next)
	a.env.DropData(p, DropLinkBreak)
}

// chainWorld builds terminals on a line, 150 m apart (adjacent terminals
// in range, non-adjacent ones not), with static routes between all pairs
// through the intermediates.
type chainWorld struct {
	kernel *sim.Kernel
	nodes  []*Node
	agents []*staticAgent
	rec    *recorder
}

func newChainWorld(t *testing.T, n int, cfg NodeConfig) *chainWorld {
	t.Helper()
	kernel := sim.NewKernel()
	streams := sim.NewStreams(7)
	pos := make([]channel.Positioner, n)
	for i := range pos {
		pos[i] = fixedPos{X: float64(i) * 150, Y: 0}
	}
	model := channel.NewModel(channel.DefaultConfig(), streams, pos)
	common := mac.NewCommonChannel(kernel, model, streams.Stream(1000))
	data := mac.NewDataPlane(kernel, model)
	rec := newRecorder()
	w := &chainWorld{kernel: kernel, rec: rec}
	for i := 0; i < n; i++ {
		nd := NewNode(i, kernel, common, data, model, streams.Stream(2000+uint64(i)), rec, cfg)
		ag := &staticAgent{env: nd, next: map[int]int{}}
		for dst := 0; dst < n; dst++ {
			if dst > i {
				ag.next[dst] = i + 1
			} else if dst < i {
				ag.next[dst] = i - 1
			}
		}
		nd.SetAgent(ag)
		w.nodes = append(w.nodes, nd)
		w.agents = append(w.agents, ag)
	}
	for _, nd := range w.nodes {
		nd.Start()
	}
	return w
}

var nextPacketID uint64

func mkData(src, dst int, at time.Duration) *packet.Packet {
	nextPacketID++
	return &packet.Packet{
		Type: packet.TypeData, ID: nextPacketID, Src: src, Dst: dst,
		Size: packet.SizeData, CreatedAt: at,
	}
}

func TestMultiHopDelivery(t *testing.T) {
	w := newChainWorld(t, 4, DefaultNodeConfig())
	pkt := mkData(0, 3, 0)
	w.nodes[0].OriginateData(pkt, 0)
	w.kernel.Run(5 * time.Second)
	if len(w.rec.delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1 (drops: %v)", len(w.rec.delivered), w.rec.dropped)
	}
	got := w.rec.delivered[0]
	if got.TraversedHops != 3 {
		t.Errorf("TraversedHops = %d, want 3", got.TraversedHops)
	}
	if got.TraversedBps < 3*50_000 || got.TraversedBps > 3*250_000 {
		t.Errorf("TraversedBps = %v outside plausible bounds", got.TraversedBps)
	}
	if w.rec.generated != 1 {
		t.Errorf("generated = %d, want 1", w.rec.generated)
	}
}

func TestSelfFlowDeliversImmediately(t *testing.T) {
	w := newChainWorld(t, 2, DefaultNodeConfig())
	w.nodes[0].OriginateData(mkData(0, 0, 0), 0)
	if len(w.rec.delivered) != 1 {
		t.Fatalf("self flow not delivered")
	}
}

func TestNoRouteDrops(t *testing.T) {
	w := newChainWorld(t, 3, DefaultNodeConfig())
	w.agents[0].next = map[int]int{} // wipe node 0's table
	w.nodes[0].OriginateData(mkData(0, 2, 0), 0)
	w.kernel.Run(time.Second)
	if w.rec.dropped[DropNoRoute] != 1 {
		t.Fatalf("drops = %v, want one no-route", w.rec.dropped)
	}
}

func TestBufferOverflowDropsCongestion(t *testing.T) {
	cfg := NodeConfig{BufferCap: 10, BufferLifetime: 3 * time.Second}
	w := newChainWorld(t, 2, cfg)
	// Inject a burst far faster than one link can serve. Capacity is 10;
	// one more is in flight, so a burst of 30 must overflow.
	for i := 0; i < 30; i++ {
		w.nodes[0].OriginateData(mkData(0, 1, 0), 0)
	}
	w.kernel.Run(10 * time.Second)
	if w.rec.dropped[DropCongestion] == 0 {
		t.Fatalf("no congestion drops after 30-packet burst into cap-10 buffer: %v", w.rec.dropped)
	}
	if len(w.rec.delivered)+w.rec.dropped[DropCongestion]+w.rec.dropped[DropExpired] != 30 {
		t.Fatalf("conservation violated: delivered %d + drops %v != 30",
			len(w.rec.delivered), w.rec.dropped)
	}
}

func TestBufferLifetimeExpiry(t *testing.T) {
	// Even the best link serves a 512 B packet in ~17 ms; with a 100 ms
	// lifetime a burst of 10 cannot all leave the buffer in time.
	cfg := NodeConfig{BufferCap: 10, BufferLifetime: 100 * time.Millisecond}
	w := newChainWorld(t, 2, cfg)
	for i := 0; i < 10; i++ {
		w.nodes[0].OriginateData(mkData(0, 1, 0), 0)
	}
	w.kernel.Run(10 * time.Second)
	if w.rec.dropped[DropExpired] == 0 {
		t.Fatalf("no expiry drops with 200 ms lifetime: delivered %d, drops %v",
			len(w.rec.delivered), w.rec.dropped)
	}
}

func TestLinkBreakNotifiesAgent(t *testing.T) {
	// Node 1 placed out of range: the first transmission fails.
	kernel := sim.NewKernel()
	streams := sim.NewStreams(3)
	model := channel.NewModel(channel.DefaultConfig(), streams,
		[]channel.Positioner{fixedPos{X: 0, Y: 0}, fixedPos{X: 500, Y: 0}})
	common := mac.NewCommonChannel(kernel, model, streams.Stream(1))
	data := mac.NewDataPlane(kernel, model)
	rec := newRecorder()
	nd := NewNode(0, kernel, common, data, model, streams.Stream(2), rec, DefaultNodeConfig())
	ag := &staticAgent{env: nd, next: map[int]int{1: 1}}
	nd.SetAgent(ag)
	nd2 := NewNode(1, kernel, common, data, model, streams.Stream(4), rec, DefaultNodeConfig())
	nd2.SetAgent(&staticAgent{env: nd2, next: map[int]int{}})
	nd.Start()
	nd2.Start()

	nd.OriginateData(mkData(0, 1, 0), 0)
	kernel.Run(time.Second)
	if len(ag.failures) != 1 || ag.failures[0] != 1 {
		t.Fatalf("LinkFailed calls = %v, want [1]", ag.failures)
	}
	if rec.dropped[DropLinkBreak] != 1 {
		t.Fatalf("drops = %v, want one link-break", rec.dropped)
	}
}

func TestControlPacketsReachAgent(t *testing.T) {
	w := newChainWorld(t, 3, DefaultNodeConfig())
	w.nodes[0].SendControl(&packet.Packet{
		Type: packet.TypeRREQ, Src: 0, Dst: 2, To: packet.Broadcast, Size: packet.SizeRREQ,
	})
	w.kernel.Run(time.Second)
	if len(w.agents[1].controls) != 1 {
		t.Fatalf("neighbour agent received %d control packets, want 1", len(w.agents[1].controls))
	}
	if len(w.agents[2].controls) != 0 {
		t.Fatalf("distant agent received a control packet it cannot hear")
	}
	if got := w.agents[1].controls[0]; got.From != 0 {
		t.Fatalf("control From = %d, want stamped sender 0", got.From)
	}
}

func TestEnqueueTowardSelfPanics(t *testing.T) {
	w := newChainWorld(t, 2, DefaultNodeConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("enqueue toward self did not panic")
		}
	}()
	w.nodes[0].EnqueueData(mkData(0, 1, 0), 0)
}

func TestForeignSrcPanics(t *testing.T) {
	w := newChainWorld(t, 2, DefaultNodeConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("foreign Src did not panic")
		}
	}()
	w.nodes[0].OriginateData(mkData(1, 0, 0), 0)
}

func TestQueueLen(t *testing.T) {
	w := newChainWorld(t, 2, DefaultNodeConfig())
	if w.nodes[0].QueueLen(1) != 0 {
		t.Fatal("fresh queue not empty")
	}
	for i := 0; i < 5; i++ {
		w.nodes[0].OriginateData(mkData(0, 1, 0), 0)
	}
	// One packet is in flight (popped on completion), the rest queued.
	if got := w.nodes[0].QueueLen(1); got != 5 {
		t.Fatalf("QueueLen = %d, want 5 (head in flight stays queued)", got)
	}
	w.kernel.Run(5 * time.Second)
	if got := w.nodes[0].QueueLen(1); got != 0 {
		t.Fatalf("QueueLen after drain = %d, want 0", got)
	}
}

func TestLinkQueueFIFOAndCompaction(t *testing.T) {
	var q linkQueue
	for i := 0; i < 500; i++ {
		q.push(queued{pkt: &packet.Packet{ID: uint64(i)}})
	}
	for i := 0; i < 500; i++ {
		e, ok := q.pop()
		if !ok {
			t.Fatalf("pop %d failed", i)
		}
		if e.pkt.ID != uint64(i) {
			t.Fatalf("pop %d returned packet %d; FIFO violated", i, e.pkt.ID)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop from empty queue succeeded")
	}
}

func TestDeliveredPacketsOrderPreservedPerLink(t *testing.T) {
	w := newChainWorld(t, 2, DefaultNodeConfig())
	for i := 0; i < 8; i++ {
		w.nodes[0].OriginateData(mkData(0, 1, 0), 0)
	}
	w.kernel.Run(10 * time.Second)
	if len(w.rec.delivered) != 8 {
		t.Fatalf("delivered %d, want 8", len(w.rec.delivered))
	}
	for i := 1; i < len(w.rec.delivered); i++ {
		if w.rec.delivered[i].ID < w.rec.delivered[i-1].ID {
			t.Fatal("per-link FIFO order violated in delivery")
		}
	}
}
