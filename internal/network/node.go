package network

import (
	"math/rand"
	"time"

	"rica/internal/channel"
	"rica/internal/mac"
	"rica/internal/obs"
	"rica/internal/packet"
	"rica/internal/sim"
)

// NodeConfig sets the store-and-forward parameters. Defaults follow the
// paper: 10-packet buffers per adjacent-terminal connection, 3 s maximum
// buffer residency.
type NodeConfig struct {
	BufferCap      int
	BufferLifetime time.Duration

	// Obs, when set, is exposed to the attached routing agent through
	// Node.Obs so protocol internals (flood history, SPT rebuilds) can
	// count into the run's registry. All registry methods are nil-safe.
	Obs *obs.Registry
}

// DefaultNodeConfig returns the paper's settings.
func DefaultNodeConfig() NodeConfig {
	return NodeConfig{BufferCap: 10, BufferLifetime: 3 * time.Second}
}

// Node is one mobile terminal's network runtime. It owns the per-neighbour
// link queues, bridges the MAC layer to the routing Agent, and implements
// Env for that agent.
type Node struct {
	id     int
	n      int
	kernel *sim.Kernel
	common *mac.CommonChannel
	data   *mac.DataPlane
	model  LinkOracle
	rng    *rand.Rand
	rec    Recorder
	routes RouteRecorder // non-nil only when rec wants route churn
	cfg    NodeConfig
	agent  Agent

	queues   []*linkQueue // per-neighbour link queues, dense by terminal id
	drainBuf []queued     // reusable scratch for linkFailed backlog re-presentation

	adv *adversary // nil on honest terminals
}

// adversary is a terminal's byzantine drop behaviour: transit data (never
// locally destined or locally originated packets) is silently discarded
// with probability prob during [from, until).
type adversary struct {
	prob        float64
	from, until time.Duration
}

var _ Env = (*Node)(nil)

// NewNode wires a terminal into both MAC planes. The agent is attached
// separately (SetAgent) because agents are constructed around the Env the
// node provides.
func NewNode(id int, kernel *sim.Kernel, common *mac.CommonChannel, data *mac.DataPlane,
	model LinkOracle, rng *rand.Rand, rec Recorder, cfg NodeConfig) *Node {
	if cfg.BufferCap <= 0 {
		panic("network: BufferCap must be positive")
	}
	nd := &Node{
		id:     id,
		n:      model.N(),
		kernel: kernel,
		common: common,
		data:   data,
		model:  model,
		rng:    rng,
		rec:    rec,
		cfg:    cfg,
		queues: make([]*linkQueue, model.N()),
	}
	if rr, ok := rec.(RouteRecorder); ok {
		nd.routes = rr
	}
	common.Register(id, nd.onControl)
	data.Register(id, nd.onData)
	return nd
}

// SetAgent attaches the routing protocol instance. Must be called before
// Start.
func (nd *Node) SetAgent(a Agent) { nd.agent = a }

// Agent returns the attached routing agent (diagnostics, tests).
func (nd *Node) Agent() Agent { return nd.agent }

// SetAdversary turns the terminal into a selective transit dropper:
// during [from, until) every data packet it would forward for someone
// else is instead discarded with probability prob, recorded under
// DropAdversary. The terminal keeps routing honestly — queries are
// answered, routes advertised — which is exactly what makes the loss
// hard for the protocols to attribute. The drop draw uses the node's
// own RNG stream, so honest terminals consume no extra randomness and
// benign runs stay bit-identical.
func (nd *Node) SetAdversary(prob float64, from, until time.Duration) {
	nd.adv = &adversary{prob: prob, from: from, until: until}
}

// Obs returns the run's observability registry (nil when none was
// configured). Routing packages discover it by type-asserting their Env
// against this method, the same way TableObserver is discovered.
func (nd *Node) Obs() *obs.Registry { return nd.cfg.Obs }

// Drain silently releases every data packet still buffered in the link
// queues and forwards to the agent's DrainPending when it has one. No
// recorder callbacks run — the world layer calls this after the
// simulation horizon, where recording drops would perturb the metrics.
// It returns how many packets were let go, split into end-to-end data
// packets (link-queue backlog plus the agent's parked data — the packets
// "in flight at the horizon" for conservation accounting) and
// control/relay packets.
func (nd *Node) Drain() (data, control int) {
	for _, q := range nd.queues {
		if q == nil {
			continue
		}
		for {
			e, ok := q.pop()
			if !ok {
				break
			}
			e.pkt.Release()
			data++
		}
		q.busy = false
	}
	if d, ok := nd.agent.(Drainer); ok {
		dd, cc := d.DrainPending()
		data += dd
		control += cc
	}
	return data, control
}

// DiscardStaleHead forgets the busy head packet queued toward next
// without releasing it. The data plane hands a packet to its receiver
// before the closing per-hop ACK airs; a run ending inside that window
// leaves this queue's head pointing at a packet the next terminal now
// owns, so the end-of-run drain must not count or release it here (the
// world consults mac.DataPlane.EachHandedOff and calls this first).
func (nd *Node) DiscardStaleHead(next int) {
	if q := nd.queues[next]; q != nil && q.busy {
		q.pop()
		q.busy = false
	}
}

// Start boots the routing agent.
func (nd *Node) Start() {
	if nd.agent == nil {
		panic("network: Start before SetAgent")
	}
	nd.agent.Start(nd.kernel.Now())
}

// OriginateData injects a locally generated data packet (the traffic
// generator's entry point). The packet's Src must be this terminal.
//
// The node owns every data packet it carries: a pooled packet is
// recycled at its terminal sink — delivery at the destination or a
// recorded drop — after the recorders have read it. Packets built as
// plain literals (tests) keep GC semantics, as Release is a no-op there.
func (nd *Node) OriginateData(pkt *packet.Packet, now time.Duration) {
	if pkt.Src != nd.id {
		panic("network: OriginateData with foreign Src")
	}
	nd.rec.DataGenerated(pkt, now)
	if pkt.Dst == nd.id {
		nd.rec.DataDelivered(pkt, now) // degenerate self-flow
		pkt.Release()
		return
	}
	nd.agent.RouteData(pkt, now)
}

// onControl delivers a common-channel packet to the agent.
func (nd *Node) onControl(pkt *packet.Packet, now time.Duration) {
	nd.agent.HandleControl(pkt, now)
}

// onData handles a data packet arriving over a data channel. A byzantine
// terminal intercepts here — after the agent has observed the arrival
// (CSI measurement, route refresh: the adversary keeps looking healthy)
// but before the packet is rerouted onward.
func (nd *Node) onData(pkt *packet.Packet, now time.Duration) {
	nd.agent.DataArrived(pkt, now)
	if pkt.Dst == nd.id {
		nd.rec.DataDelivered(pkt, now)
		pkt.Release()
		return
	}
	if a := nd.adv; a != nil && now >= a.from && now < a.until && nd.rng.Float64() < a.prob {
		nd.cfg.Obs.Inc(obs.CAdversaryDrops)
		nd.rec.DataDropped(pkt, DropAdversary, now)
		pkt.Release()
		return
	}
	nd.agent.RouteData(pkt, now)
}

// --- Env implementation -------------------------------------------------

// ID implements Env.
func (nd *Node) ID() int { return nd.id }

// NumNodes implements Env.
func (nd *Node) NumNodes() int { return nd.n }

// Now implements Env.
func (nd *Node) Now() time.Duration { return nd.kernel.Now() }

// Schedule implements Env.
func (nd *Node) Schedule(d time.Duration, fn func(now time.Duration)) sim.Timer {
	return nd.kernel.Schedule(d, fn)
}

// ScheduleArg implements Env.
func (nd *Node) ScheduleArg(d time.Duration, fn sim.ArgHandler, a0, a1 int) sim.Timer {
	return nd.kernel.ScheduleArg(d, fn, a0, a1)
}

// SendControl implements Env.
func (nd *Node) SendControl(pkt *packet.Packet) {
	pkt.From = nd.id
	nd.common.Send(pkt)
}

// DropData implements Env. The drop is a terminal sink: after the
// recorders observe the packet it returns to the pool, so agents must
// not touch it after the call (capture any fields they still need
// first).
func (nd *Node) DropData(pkt *packet.Packet, reason DropReason) {
	nd.rec.DataDropped(pkt, reason, nd.kernel.Now())
	pkt.Release()
}

// LinkClass implements Env.
func (nd *Node) LinkClass(j int) channel.Class {
	return nd.model.Class(nd.id, j, nd.kernel.Now())
}

// Rand implements Env.
func (nd *Node) Rand() *rand.Rand { return nd.rng }

// NoteRouteInstalled implements routing.TableObserver: the attached
// agent's route table installed an entry. Forwarded to the recorder when
// it implements RouteRecorder, dropped otherwise.
func (nd *Node) NoteRouteInstalled() {
	if nd.routes != nil {
		nd.routes.RouteInstalled(nd.id, nd.kernel.Now())
	}
}

// NoteRouteInvalidated implements routing.TableObserver: one of the
// agent's route entries became invalid.
func (nd *Node) NoteRouteInvalidated() {
	if nd.routes != nil {
		nd.routes.RouteInvalidated(nd.id, nd.kernel.Now())
	}
}

// EnqueueData implements Env: store-and-forward toward neighbour next.
func (nd *Node) EnqueueData(pkt *packet.Packet, next int) {
	if next == nd.id {
		panic("network: enqueue toward self")
	}
	q := nd.queues[next]
	if q == nil {
		q = &linkQueue{}
		// One completion callback per queue, built once: every data send on
		// this link reuses it, so the steady-state forwarding path does not
		// allocate a closure per packet.
		q.done = func(res mac.SendResult) {
			head, _ := q.pop()
			q.busy = false
			if !res.OK {
				nd.linkFailed(next, q, head.pkt)
				return
			}
			if q.len() > 0 {
				nd.serve(next, q)
			}
		}
		nd.queues[next] = q
	}
	if q.len() >= nd.cfg.BufferCap {
		nd.rec.DataDropped(pkt, DropCongestion, nd.kernel.Now())
		pkt.Release()
		return
	}
	q.push(queued{pkt: pkt, at: nd.kernel.Now()})
	if !q.busy {
		nd.serve(next, q)
	}
}

// QueueLen reports the backlog toward neighbour next.
func (nd *Node) QueueLen(next int) int {
	if q := nd.queues[next]; q != nil {
		return q.len()
	}
	return 0
}

// QueueBacklog implements Env: total packets buffered across all links.
func (nd *Node) QueueBacklog() int {
	total := 0
	for _, q := range nd.queues {
		if q != nil {
			total += q.len()
		}
	}
	return total
}

// serve transmits the head of q toward next, then continues until the
// queue drains. Expired packets are discarded at dequeue time, matching
// the paper's "kept in the buffer for no more than three seconds" rule.
func (nd *Node) serve(next int, q *linkQueue) {
	now := nd.kernel.Now()
	for {
		head, ok := q.peek()
		if !ok {
			return
		}
		if now-head.at > nd.cfg.BufferLifetime {
			q.pop()
			nd.rec.DataDropped(head.pkt, DropExpired, now)
			head.pkt.Release()
			continue
		}
		break
	}
	head, _ := q.peek()
	q.busy = true
	pkt := head.pkt
	pkt.From = nd.id
	pkt.To = next
	nd.data.Send(nd.id, next, pkt, q.done)
}

// linkFailed hands the failed packet to the agent, then re-presents every
// packet still queued toward the dead neighbour so the (now updated)
// routing state can redirect or drop them.
func (nd *Node) linkFailed(next int, q *linkQueue, failed *packet.Packet) {
	now := nd.kernel.Now()
	// Drain before notifying the agent: LinkFailed may synchronously
	// enqueue onto this same queue (restarting its server), and the drain
	// must not steal that new in-flight packet. The node-level scratch is
	// safe to reuse: re-presentation never nests another synchronous
	// linkFailed (data-plane failures only arrive via scheduled events).
	backlog := q.drainInto(nd.drainBuf[:0])
	nd.agent.LinkFailed(next, failed, now)
	for _, entry := range backlog {
		if now-entry.at > nd.cfg.BufferLifetime {
			nd.rec.DataDropped(entry.pkt, DropExpired, now)
			entry.pkt.Release()
			continue
		}
		nd.agent.RouteData(entry.pkt, now)
	}
	for i := range backlog {
		backlog[i] = queued{} // release packet references
	}
	nd.drainBuf = backlog[:0]
}

// queued is one buffered data packet with its enqueue time.
type queued struct {
	pkt *packet.Packet
	at  time.Duration
}

// linkQueue is a FIFO ring over a slice; head compaction is amortized.
// done is the queue's reusable data-plane completion callback.
type linkQueue struct {
	items []queued
	head  int
	busy  bool
	done  func(mac.SendResult)
}

func (q *linkQueue) len() int { return len(q.items) - q.head }

func (q *linkQueue) push(e queued) {
	if q.head > 0 && len(q.items) == cap(q.items) {
		// Reclaim the popped prefix instead of growing: the buffer cap
		// bounds the live window, so after warmup pushes never allocate.
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = queued{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
	q.items = append(q.items, e)
}

func (q *linkQueue) peek() (queued, bool) {
	if q.len() == 0 {
		return queued{}, false
	}
	return q.items[q.head], true
}

func (q *linkQueue) pop() (queued, bool) {
	if q.len() == 0 {
		return queued{}, false
	}
	e := q.items[q.head]
	q.items[q.head] = queued{} // release the packet reference
	q.head++
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return e, true
}

// drainInto removes all queued entries, appending them to dst (reused
// across calls to avoid a per-failure allocation).
func (q *linkQueue) drainInto(dst []queued) []queued {
	for {
		e, ok := q.pop()
		if !ok {
			return dst
		}
		dst = append(dst, e)
	}
}
