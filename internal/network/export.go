package network

import "time"

// This file is the node runtime's checkpoint seam: a read-only skeleton
// of each terminal's per-neighbour link queues, captured in dense
// neighbour-id order so snapshot verification can compare two
// processes' queue populations byte-for-byte.

// QueuedPacket is the skeleton of one buffered data packet.
type QueuedPacket struct {
	PktID uint64
	At    time.Duration // enqueue time (drives the buffer-lifetime expiry)
}

// QueueState is the skeleton of one per-neighbour link queue.
type QueueState struct {
	To    int
	Busy  bool
	Items []QueuedPacket // live window, head first
}

// ExportQueues snapshots terminal nd's link queues in neighbour order
// (empty idle queues are skipped; an empty queue that is still busy —
// its head handed to the MAC — is reported).
func (nd *Node) ExportQueues() []QueueState {
	var out []QueueState
	for to, q := range nd.queues {
		if q == nil || (q.len() == 0 && !q.busy) {
			continue
		}
		st := QueueState{To: to, Busy: q.busy}
		for _, it := range q.items[q.head:] {
			qp := QueuedPacket{At: it.at}
			if it.pkt != nil {
				qp.PktID = it.pkt.ID
			}
			st.Items = append(st.Items, qp)
		}
		out = append(out, st)
	}
	return out
}
