// Package network provides the per-terminal runtime that sits between the
// MAC layer and a routing protocol: store-and-forward link queues with the
// paper's capacity (10 packets per adjacent-terminal connection) and
// residency limit (3 s), local delivery, and the Agent/Env contract that
// the five routing protocols plug into.
package network

import (
	"fmt"
	"math/rand"
	"time"

	"rica/internal/channel"
	"rica/internal/packet"
	"rica/internal/sim"
)

// DropReason classifies why a data packet died; the delivery-ratio
// analysis in the paper (§III.C) attributes losses to congestion (buffer
// overflow), buffer-lifetime expiry, link breaks, and routing failure.
type DropReason int

// Drop reasons.
const (
	DropCongestion DropReason = iota + 1 // per-link buffer full
	DropExpired                          // exceeded 3 s buffer residency
	DropNoRoute                          // routing gave up finding a route
	DropLinkBreak                        // transmission failed, not repaired
	DropAdversary                        // discarded by a byzantine transit terminal
)

var dropNames = map[DropReason]string{
	DropCongestion: "congestion",
	DropExpired:    "expired",
	DropNoRoute:    "no-route",
	DropLinkBreak:  "link-break",
	DropAdversary:  "adversary",
}

// String names the reason for reports.
func (r DropReason) String() string {
	if s, ok := dropNames[r]; ok {
		return s
	}
	return fmt.Sprintf("DropReason(%d)", int(r))
}

// LinkOracle is the slice of the channel model the node runtime consumes:
// the network size and the instantaneous CSI measurement behind
// Env.LinkClass. Defined here, where it is used, so node tests can
// substitute fakes; *channel.Model is the production implementation.
type LinkOracle interface {
	// N reports the number of terminals.
	N() int
	// Class reports the channel class between i and j at time at.
	Class(i, j int, at time.Duration) channel.Class
}

// Recorder receives the data-plane lifecycle events the metrics layer
// aggregates. Implemented by metrics.Collector.
type Recorder interface {
	DataGenerated(pkt *packet.Packet, now time.Duration)
	DataDelivered(pkt *packet.Packet, now time.Duration)
	DataDropped(pkt *packet.Packet, reason DropReason, now time.Duration)
}

// RouteRecorder is an optional extension of Recorder: a recorder that
// also implements it receives route-table churn — entries installed and
// entries invalidated, per terminal — which the timeseries telemetry
// buckets into per-interval convergence curves. Node runtimes detect the
// extension with a type assertion at construction, so plain Recorders
// pay nothing.
type RouteRecorder interface {
	// RouteInstalled reports that terminal node installed or replaced one
	// route-table entry.
	RouteInstalled(node int, now time.Duration)
	// RouteInvalidated reports that one of terminal node's route entries
	// transitioned from valid to invalid.
	RouteInvalidated(node int, now time.Duration)
}

// Agent is one terminal's routing protocol instance. The network layer
// calls it; it acts through the Env it was constructed with.
type Agent interface {
	// Start runs once when the simulation begins (schedule periodic work
	// here: beacons, CSI checks, LSA refresh).
	Start(now time.Duration)
	// HandleControl processes a routing packet from the common channel.
	HandleControl(pkt *packet.Packet, now time.Duration)
	// RouteData chooses what to do with a data packet that needs a next
	// hop at this terminal — enqueue it (Env.EnqueueData), buffer it
	// pending discovery, or drop it (Env.DropData).
	RouteData(pkt *packet.Packet, now time.Duration)
	// DataArrived observes every data packet arriving at this terminal
	// over a data channel (both in transit and at the destination), before
	// forwarding or delivery. pkt.From is the transmitting neighbour.
	DataArrived(pkt *packet.Packet, now time.Duration)
	// LinkFailed reports that sending pkt to neighbour next failed after
	// MAC retries: the link is gone. The failed packet is the agent's to
	// reroute or drop; queued packets behind it are re-presented through
	// RouteData afterwards.
	LinkFailed(next int, pkt *packet.Packet, now time.Duration)
}

// Drainer is the optional end-of-run extension of Agent: agents that
// park pooled packets (query buffers, delayed relays) implement it to
// silently release them once the simulation horizon has passed, so the
// pool's leak accounting comes out exact. DrainPending must not record
// drops or send anything — the run is over — and returns how many
// packets were released, split into end-to-end data packets and
// control/relay packets: the data count is the invariant harness's
// "in flight at the horizon" term in the packet-conservation check
// (generated == delivered + dropped + data drained). Node.Drain
// discovers it by type assertion, the same pattern as RouteRecorder.
type Drainer interface {
	DrainPending() (data, control int)
}

// Env is the service surface a Node exposes to its Agent.
//
// Concurrency: every Agent callback and every Env method runs on the
// single event-dispatch goroutine, even when the world is configured
// with Shards > 1. The sharded engine parallelizes only the geometry
// oracle inside a broadcast completion (see internal/channel's
// BroadcastScan); by the time any Receive/LinkFailed fires, the fan-out
// has joined. Agents therefore never need locks, and Rand() draws stay
// in the same global order regardless of shard count.
type Env interface {
	// ID is this terminal's identifier.
	ID() int
	// NumNodes is the network size (terminals are 0..NumNodes-1).
	NumNodes() int
	// Now is the current virtual time.
	Now() time.Duration
	// Schedule runs fn after d; the returned timer can cancel it.
	Schedule(d time.Duration, fn func(now time.Duration)) sim.Timer
	// ScheduleArg is the allocation-free flavour of Schedule: fn receives
	// a0 and a1 back verbatim instead of capturing state in a closure.
	// Per-packet timers should ride this path; see sim.Kernel.ScheduleArg.
	ScheduleArg(d time.Duration, fn sim.ArgHandler, a0, a1 int) sim.Timer
	// SendControl transmits a routing packet on the common channel,
	// stamping pkt.From with this terminal's id.
	SendControl(pkt *packet.Packet)
	// EnqueueData places a data packet on the link queue toward next.
	EnqueueData(pkt *packet.Packet, next int)
	// DropData discards a data packet, recording the reason.
	DropData(pkt *packet.Packet, reason DropReason)
	// LinkClass measures the instantaneous CSI of the link to neighbour j
	// (the measurement the paper's terminals make on packet reception).
	LinkClass(j int) channel.Class
	// QueueBacklog reports the total number of data packets buffered at
	// this terminal (ABR's load-aware route selection reads it).
	QueueBacklog() int
	// Rand is this terminal's private randomness (jitter, backoff).
	Rand() *rand.Rand
}
