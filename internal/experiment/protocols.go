// Package experiment reproduces the paper's evaluation (§III): it runs
// multi-trial simulations of the five routing protocols across the
// mobility and load grid and regenerates every figure's rows — end-to-end
// delay (Figure 2), delivery percentage (Figure 3), routing overhead
// (Figure 4), route quality (Figure 5), and the aggregate-throughput time
// series (Figure 6).
package experiment

import (
	"fmt"

	"rica/internal/network"
	"rica/internal/routing/abr"
	"rica/internal/routing/aodv"
	"rica/internal/routing/bgca"
	"rica/internal/routing/linkstate"
	"rica/internal/routing/rica"
	"rica/internal/world"
)

// Protocol selects one of the five compared routing protocols.
type Protocol int

// The five protocols of the paper's comparison.
const (
	RICA Protocol = iota + 1
	BGCA
	AODV
	ABR
	LinkState
)

var protocolNames = map[Protocol]string{
	RICA:      "RICA",
	BGCA:      "BGCA",
	AODV:      "AODV",
	ABR:       "ABR",
	LinkState: "LinkState",
}

// String names the protocol as in the paper's legends.
func (p Protocol) String() string {
	if s, ok := protocolNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// ParseProtocol resolves a case-sensitive protocol name.
func ParseProtocol(name string) (Protocol, error) {
	for p, s := range protocolNames {
		if s == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("experiment: unknown protocol %q", name)
}

// AllProtocols lists the paper's comparison set in its plotting order.
func AllProtocols() []Protocol {
	return []Protocol{AODV, RICA, BGCA, ABR, LinkState}
}

// Factory returns the world.AgentFactory for p. rate is the per-flow
// offered load in packets/s; BGCA derives its bandwidth-guard requirement
// from it.
func Factory(p Protocol, rate float64) world.AgentFactory {
	switch p {
	case RICA:
		return func(env network.Env, _ *world.World, _ int) network.Agent {
			return rica.New(env, rica.DefaultConfig())
		}
	case BGCA:
		return func(env network.Env, _ *world.World, _ int) network.Agent {
			return bgca.New(env, bgca.DefaultConfig(rate))
		}
	case AODV:
		return func(env network.Env, _ *world.World, _ int) network.Agent {
			return aodv.New(env)
		}
	case ABR:
		return func(env network.Env, _ *world.World, _ int) network.Agent {
			return abr.New(env, abr.DefaultConfig())
		}
	case LinkState:
		return func(env network.Env, w *world.World, _ int) network.Agent {
			return linkstate.New(env, linkstate.DefaultConfig(), w.BootTopology())
		}
	default:
		panic(fmt.Sprintf("experiment: Factory(%v)", p))
	}
}
