package experiment

import (
	"testing"
	"time"

	"rica/internal/geom"
	"rica/internal/metrics"
	"rica/internal/traffic"
	"rica/internal/world"
)

// scriptedRun builds a static scripted topology and runs one protocol.
func scriptedRun(t *testing.T, p Protocol, positions []geom.Point, flows []traffic.Flow, dur time.Duration) metrics.Summary {
	t.Helper()
	cfg := world.DefaultConfig(0, 10)
	cfg.StaticPositions = positions
	cfg.Flows = flows
	cfg.Duration = dur
	cfg.Seed = 3
	return world.New(cfg, Factory(p, 10)).Run()
}

// TestPartitionIsolation injects a network partition: two 3-terminal
// islands 600 m apart. Flows within an island must deliver; flows across
// the gap must drop every packet without crashing or wedging any
// protocol.
func TestPartitionIsolation(t *testing.T) {
	positions := []geom.Point{
		// Island A
		{X: 0, Y: 0}, {X: 150, Y: 0}, {X: 75, Y: 120},
		// Island B, far out of radio range of island A
		{X: 900, Y: 900}, {X: 900, Y: 750}, {X: 780, Y: 870},
	}
	flows := []traffic.Flow{
		{Src: 0, Dst: 2, Rate: 10}, // intra-island A
		{Src: 3, Dst: 5, Rate: 10}, // intra-island B
		{Src: 0, Dst: 4, Rate: 10}, // across the partition: hopeless
	}
	for _, p := range AllProtocols() {
		s := scriptedRun(t, p, positions, flows, 20*time.Second)
		var crossDelivered, intraRatioSum float64
		intraFlows := 0
		for _, f := range s.PerFlow {
			switch {
			case f.Src == 0 && f.Dst == 4:
				crossDelivered = float64(f.Delivered)
			default:
				intraRatioSum += f.DeliveryRatio()
				intraFlows++
			}
		}
		if crossDelivered != 0 {
			t.Errorf("%v: delivered %v packets across a partition", p, crossDelivered)
		}
		if intraFlows != 2 || intraRatioSum/2 < 0.9 {
			t.Errorf("%v: intra-island delivery %.2f, want > 0.9 (flows %d)",
				p, intraRatioSum/2, intraFlows)
		}
		// Conservation: everything generated is delivered, dropped, or in
		// flight at the horizon.
		if s.Delivered+s.DropTotal() > s.Generated {
			t.Errorf("%v: conservation violated", p)
		}
	}
}

// TestChainTopologyAllHopsUsed verifies multi-hop relaying on a 4-hop
// chain for every protocol: the endpoints are far outside mutual range,
// so delivery proves the intermediates forwarded.
func TestChainTopologyAllHopsUsed(t *testing.T) {
	positions := []geom.Point{
		{X: 0, Y: 0}, {X: 200, Y: 0}, {X: 400, Y: 0}, {X: 600, Y: 0}, {X: 800, Y: 0},
	}
	flows := []traffic.Flow{{Src: 0, Dst: 4, Rate: 10}}
	for _, p := range AllProtocols() {
		s := scriptedRun(t, p, positions, flows, 20*time.Second)
		if s.DeliveryRatio < 0.75 {
			t.Errorf("%v: chain delivery %.2f, want > 0.75 (drops %v)",
				p, s.DeliveryRatio, s.Dropped)
		}
		if s.Delivered > 0 && s.AvgHops < 3.9 {
			t.Errorf("%v: avg hops %.2f on a 4-hop chain", p, s.AvgHops)
		}
	}
}

// TestIsolatedSourceDegradesGracefully: a source with no neighbours at
// all must drop its offered load as no-route without stalling the run.
func TestIsolatedSourceDegradesGracefully(t *testing.T) {
	positions := []geom.Point{
		{X: 0, Y: 0},                       // isolated source
		{X: 900, Y: 900}, {X: 750, Y: 900}, // a connected pair elsewhere
	}
	flows := []traffic.Flow{
		{Src: 0, Dst: 2, Rate: 20},
		{Src: 1, Dst: 2, Rate: 10},
	}
	for _, p := range AllProtocols() {
		s := scriptedRun(t, p, positions, flows, 15*time.Second)
		for _, f := range s.PerFlow {
			if f.Src == 0 && f.Delivered != 0 {
				t.Errorf("%v: isolated source delivered %d packets", p, f.Delivered)
			}
			if f.Src == 1 && f.DeliveryRatio() < 0.9 {
				t.Errorf("%v: healthy flow starved at %.2f by the isolated one", p, f.DeliveryRatio())
			}
		}
	}
}

// TestSingleSharedRelayCongestion: two flows forced through one relay
// terminal. The relay's buffers are the bottleneck; delivery must stay
// sane and all losses must be accounted as congestion/expiry, not
// mysterious vanishing.
func TestSingleSharedRelayCongestion(t *testing.T) {
	positions := []geom.Point{
		{X: 0, Y: 0},     // source A
		{X: 0, Y: 200},   // source B
		{X: 200, Y: 100}, // the only relay in range of everyone
		{X: 400, Y: 0},   // sink A
		{X: 400, Y: 200}, // sink B
	}
	flows := []traffic.Flow{
		{Src: 0, Dst: 3, Rate: 25},
		{Src: 1, Dst: 4, Rate: 25},
	}
	for _, p := range AllProtocols() {
		s := scriptedRun(t, p, positions, flows, 20*time.Second)
		// The offered 50 packets/s exceed the relay's ~25-30 packet/s
		// service rate, so roughly half the load must die as congestion —
		// but not much more than that.
		if s.DeliveryRatio < 0.25 {
			t.Errorf("%v: shared-relay delivery %.2f too low (drops %v)", p, s.DeliveryRatio, s.Dropped)
		}
		slack := s.Generated - s.Delivered - s.DropTotal()
		if slack < 0 || float64(slack) > 0.1*float64(s.Generated) {
			t.Errorf("%v: %d packets unaccounted", p, slack)
		}
	}
}
