package experiment

import "math"

// metricOf extracts a sweep metric from one trial summary.
func (m Metric) trialValue(r Result, trial int) float64 {
	s := r.Trials[trial]
	switch m {
	case MetricDelay:
		return float64(s.AvgDelay.Milliseconds())
	case MetricDelivery:
		return s.DeliveryRatio * 100
	case MetricOverhead:
		return s.OverheadBps / 1000
	default:
		return 0
	}
}

// TrialValues lists a metric's per-trial values for a cell.
func (r Result) TrialValues(m Metric) []float64 {
	out := make([]float64, len(r.Trials))
	for i := range r.Trials {
		out[i] = m.trialValue(r, i)
	}
	return out
}

// StdDev reports the sample standard deviation of a metric across the
// cell's trials (zero for fewer than two trials).
func (r Result) StdDev(m Metric) float64 {
	vals := r.TrialValues(m)
	if len(vals) < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	ss := 0.0
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)-1))
}

// CI95 reports the 95% confidence half-width of a metric's mean across
// the cell's trials, using the normal approximation (the paper averages
// 25 trials, where it is adequate).
func (r Result) CI95(m Metric) float64 {
	n := len(r.Trials)
	if n < 2 {
		return 0
	}
	return 1.96 * r.StdDev(m) / math.Sqrt(float64(n))
}
