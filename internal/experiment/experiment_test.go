package experiment

import (
	"strings"
	"testing"
	"time"
)

// ciOptions is the scaled-down grid used to keep CI fast; the shapes the
// paper reports are already visible at this scale.
func ciOptions() Options {
	return Options{
		Speeds:   []float64{0, 36, 72},
		Trials:   2,
		Duration: 40 * time.Second,
		BaseSeed: 1,
	}
}

func TestParseProtocol(t *testing.T) {
	for _, p := range AllProtocols() {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Fatalf("ParseProtocol(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseProtocol("OSPF"); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunAveragesTrials(t *testing.T) {
	res := Run(RunConfig{
		Protocol: AODV, MeanSpeedKmh: 20, Rate: 10,
		Duration: 15 * time.Second, Trials: 3, BaseSeed: 5,
	})
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if res.Mean.DeliveryPercent <= 0 || res.Mean.DeliveryPercent > 100 {
		t.Fatalf("delivery%% = %v", res.Mean.DeliveryPercent)
	}
	// The mean must lie within the trial envelope.
	lo, hi := 101.0, -1.0
	for _, s := range res.Trials {
		v := s.DeliveryRatio * 100
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if res.Mean.DeliveryPercent < lo-1e-9 || res.Mean.DeliveryPercent > hi+1e-9 {
		t.Fatalf("mean %.2f outside trial envelope [%.2f, %.2f]", res.Mean.DeliveryPercent, lo, hi)
	}
}

func TestRunParallelDeterminism(t *testing.T) {
	cfg := RunConfig{
		Protocol: RICA, MeanSpeedKmh: 30, Rate: 10,
		Duration: 15 * time.Second, Trials: 4, BaseSeed: 2, Parallelism: 4,
	}
	a := Run(cfg)
	cfg.Parallelism = 1
	b := Run(cfg)
	for i := range a.Trials {
		if a.Trials[i].Delivered != b.Trials[i].Delivered || a.Trials[i].AvgDelay != b.Trials[i].AvgDelay {
			t.Fatalf("trial %d differs between parallel and serial execution", i)
		}
	}
}

// TestPaperShapes runs the CI-scale grid once and asserts the qualitative
// results of every figure in §III.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol sweep")
	}
	o := ciOptions()
	sweep := Sweep(10, o)
	at := func(p Protocol, speedIdx int) Averages { return sweep.Cells[p][speedIdx].Mean }
	const static, mid, fast = 0, 1, 2

	// Figure 2 — delay. The channel-adaptive protocols transmit over
	// better links and beat AODV at every mobility point.
	for _, idx := range []int{static, mid, fast} {
		if at(RICA, idx).DelayMs >= at(AODV, idx).DelayMs {
			t.Errorf("fig2: RICA delay %.0f not below AODV %.0f at speed idx %d",
				at(RICA, idx).DelayMs, at(AODV, idx).DelayMs, idx)
		}
		if at(BGCA, idx).DelayMs >= at(AODV, idx).DelayMs {
			t.Errorf("fig2: BGCA delay %.0f not below AODV %.0f at speed idx %d",
				at(BGCA, idx).DelayMs, at(AODV, idx).DelayMs, idx)
		}
	}
	// Link state: best delay when static, degrading under mobility.
	if at(LinkState, static).DelayMs >= at(AODV, static).DelayMs {
		t.Errorf("fig2: static link-state delay %.0f not below AODV %.0f",
			at(LinkState, static).DelayMs, at(AODV, static).DelayMs)
	}
	if at(LinkState, fast).DelayMs <= at(LinkState, static).DelayMs {
		t.Errorf("fig2: link-state delay did not rise with mobility: %.0f → %.0f",
			at(LinkState, static).DelayMs, at(LinkState, fast).DelayMs)
	}
	// AODV overtakes ABR at high mobility (paper §III.B).
	if at(ABR, fast).DelayMs <= at(AODV, fast).DelayMs*0.95 {
		t.Errorf("fig2: ABR delay %.0f clearly below AODV %.0f at 72 km/h; paper expects the opposite",
			at(ABR, fast).DelayMs, at(AODV, fast).DelayMs)
	}

	// Figure 3 — delivery. RICA top across the sweep; AODV and link state
	// fall off sharply with speed.
	for _, p := range []Protocol{BGCA, AODV, ABR, LinkState} {
		if at(RICA, fast).DeliveryPercent < at(p, fast).DeliveryPercent {
			t.Errorf("fig3: RICA delivery %.1f%% below %v %.1f%% at 72 km/h",
				at(RICA, fast).DeliveryPercent, p, at(p, fast).DeliveryPercent)
		}
	}
	if drop := at(AODV, static).DeliveryPercent - at(AODV, fast).DeliveryPercent; drop < 15 {
		t.Errorf("fig3: AODV delivery fell only %.1f points with mobility, want a sharp fall", drop)
	}
	if drop := at(LinkState, static).DeliveryPercent - at(LinkState, fast).DeliveryPercent; drop < 15 {
		t.Errorf("fig3: link-state delivery fell only %.1f points with mobility", drop)
	}
	if at(RICA, fast).DeliveryPercent-at(RICA, static).DeliveryPercent < -15 {
		t.Errorf("fig3: RICA delivery collapsed with mobility (%.1f → %.1f); it should stay high",
			at(RICA, static).DeliveryPercent, at(RICA, fast).DeliveryPercent)
	}

	// Figure 4 — overhead ordering at mobility: ABR ≤ AODV < BGCA < RICA
	// ≪ link state, with BGCA ≈ 1.5× and RICA ≈ 4× AODV.
	ao, ab := at(AODV, fast).OverheadKbps, at(ABR, fast).OverheadKbps
	bg, ri, ls := at(BGCA, fast).OverheadKbps, at(RICA, fast).OverheadKbps, at(LinkState, fast).OverheadKbps
	if ab > ao*1.05 {
		t.Errorf("fig4: ABR overhead %.0f above AODV %.0f; paper has ABR least", ab, ao)
	}
	if bg <= ao || bg >= ri {
		t.Errorf("fig4: BGCA overhead %.0f not between AODV %.0f and RICA %.0f", bg, ao, ri)
	}
	if ri < ao*2 {
		t.Errorf("fig4: RICA overhead %.0f not well above AODV %.0f (paper: ≈4×)", ri, ao)
	}
	if ls < ri*2 {
		t.Errorf("fig4: link-state overhead %.0f not dominating RICA %.0f", ls, ri)
	}

	// Figure 5 — route quality at 72 km/h.
	q := Quality(72, 10, o)
	qa := func(p Protocol) Averages { return q.Cells[p].Mean }
	// 5(a): channel-adaptive protocols and Dijkstra pick better links.
	if qa(RICA).LinkThroughputK <= qa(AODV).LinkThroughputK ||
		qa(BGCA).LinkThroughputK <= qa(AODV).LinkThroughputK {
		t.Errorf("fig5a: RICA %.0f / BGCA %.0f not above AODV %.0f",
			qa(RICA).LinkThroughputK, qa(BGCA).LinkThroughputK, qa(AODV).LinkThroughputK)
	}
	if qa(LinkState).LinkThroughputK <= qa(AODV).LinkThroughputK {
		t.Errorf("fig5a: link state %.0f not above AODV %.0f (Dijkstra should pick good links)",
			qa(LinkState).LinkThroughputK, qa(AODV).LinkThroughputK)
	}
	diff := qa(ABR).LinkThroughputK - qa(AODV).LinkThroughputK
	if diff < -15 || diff > 15 {
		t.Errorf("fig5a: ABR %.0f and AODV %.0f should be close (both channel-oblivious)",
			qa(ABR).LinkThroughputK, qa(AODV).LinkThroughputK)
	}
	// 5(b): ABR's stable routes run longer than AODV's; link-state loops
	// show up as packets traversing far beyond the network diameter.
	if qa(ABR).CSIHops <= qa(AODV).CSIHops {
		t.Errorf("fig5b: ABR hops %.2f not above AODV %.2f", qa(ABR).CSIHops, qa(AODV).CSIHops)
	}
	if qa(LinkState).MaxHops < 15 {
		t.Errorf("fig5b: link-state max hops %d shows no loops", qa(LinkState).MaxHops)
	}

	// Figure 6 — aggregate throughput: RICA and BGCA carry the most data.
	series := Series(20, 36, Options{Speeds: o.Speeds, Trials: 2, Duration: 60 * time.Second, BaseSeed: 1})
	for _, p := range []Protocol{AODV, LinkState} {
		if series.MeanSeries(RICA) <= series.MeanSeries(p) {
			t.Errorf("fig6: RICA mean throughput %.0f not above %v %.0f",
				series.MeanSeries(RICA), p, series.MeanSeries(p))
		}
		if series.MeanSeries(BGCA) <= series.MeanSeries(p) {
			t.Errorf("fig6: BGCA mean throughput %.0f not above %v %.0f",
				series.MeanSeries(BGCA), p, series.MeanSeries(p))
		}
	}

	// Keep the rendered tables sane.
	tbl := sweep.Table(MetricDelay)
	if !strings.Contains(tbl, "RICA") || !strings.Contains(tbl, "km/h") {
		t.Errorf("table rendering broken:\n%s", tbl)
	}
}

func TestSeriesTableRendering(t *testing.T) {
	s := Series(10, 20, Options{Trials: 1, Duration: 20 * time.Second, Protocols: []Protocol{AODV}})
	tbl := s.Table()
	if !strings.Contains(tbl, "t (s)") || !strings.Contains(tbl, "AODV") {
		t.Fatalf("series table broken:\n%s", tbl)
	}
	lines := strings.Count(tbl, "\n")
	if lines < 6 {
		t.Fatalf("series table too short (%d lines):\n%s", lines, tbl)
	}
}

func TestQualityTableRendering(t *testing.T) {
	q := Quality(36, 10, Options{Trials: 1, Duration: 15 * time.Second, Protocols: []Protocol{AODV, RICA}})
	tbl := q.Table()
	if !strings.Contains(tbl, "linkTP") || !strings.Contains(tbl, "RICA") {
		t.Fatalf("quality table broken:\n%s", tbl)
	}
}
