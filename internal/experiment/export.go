package experiment

import (
	"fmt"
	"strings"
)

// CSV renders one metric of the sweep as comma-separated values with a
// header row, suitable for regenerating the paper's plots in any plotting
// tool.
func (s SweepResult) CSV(m Metric) string {
	var b strings.Builder
	b.WriteString("speed_kmh")
	for _, p := range s.Order {
		fmt.Fprintf(&b, ",%s", p.String())
	}
	b.WriteByte('\n')
	for i, sp := range s.Speeds {
		fmt.Fprintf(&b, "%g", sp)
		for _, p := range s.Order {
			fmt.Fprintf(&b, ",%.3f", m.value(s.Cells[p][i].Mean))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the route-quality table (Figure 5) as comma-separated
// values.
func (q QualityResult) CSV() string {
	var b strings.Builder
	b.WriteString("protocol,link_throughput_kbps,csi_hops,geo_hops,max_hops\n")
	for _, p := range q.Order {
		m := q.Cells[p].Mean
		fmt.Fprintf(&b, "%s,%.3f,%.3f,%.3f,%d\n",
			p.String(), m.LinkThroughputK, m.CSIHops, m.GeoHops, m.MaxHops)
	}
	return b.String()
}

// CSV renders the throughput time series (Figure 6) as comma-separated
// values, one row per 4 s bucket.
func (s SeriesResult) CSV() string {
	var b strings.Builder
	b.WriteString("t_seconds")
	for _, p := range s.Order {
		fmt.Fprintf(&b, ",%s", p.String())
	}
	b.WriteByte('\n')
	buckets := 0
	for _, p := range s.Order {
		if n := len(s.Cells[p].Mean.ThroughputSeries); n > buckets {
			buckets = n
		}
	}
	for i := 0; i < buckets; i++ {
		fmt.Fprintf(&b, "%d", i*4)
		for _, p := range s.Order {
			series := s.Cells[p].Mean.ThroughputSeries
			v := 0.0
			if i < len(series) {
				v = series[i]
			}
			fmt.Fprintf(&b, ",%.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// chartHeight is the number of value rows an ASCII chart uses.
const chartHeight = 14

// protocolGlyphs mark each protocol's curve in ASCII charts.
var protocolGlyphs = map[Protocol]byte{
	RICA:      'R',
	BGCA:      'B',
	AODV:      'A',
	ABR:       'S', // stability
	LinkState: 'L',
}

// Chart renders the throughput series as a rough ASCII line chart — the
// visual shape of Figure 6 in a terminal. Later-plotted protocols
// overdraw earlier ones on collisions; the legend gives the order.
func (s SeriesResult) Chart() string {
	buckets := 0
	maxVal := 0.0
	for _, p := range s.Order {
		series := s.Cells[p].Mean.ThroughputSeries
		if len(series) > buckets {
			buckets = len(series)
		}
		for _, v := range series {
			if v > maxVal {
				maxVal = v
			}
		}
	}
	if buckets == 0 || maxVal <= 0 {
		return "(no data)\n"
	}
	// Drop the final, partial bucket if it is empty.
	if buckets > 1 {
		empty := true
		for _, p := range s.Order {
			series := s.Cells[p].Mean.ThroughputSeries
			if len(series) == buckets && series[buckets-1] > 0 {
				empty = false
			}
		}
		if empty {
			buckets--
		}
	}

	grid := make([][]byte, chartHeight)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", buckets))
	}
	for _, p := range s.Order {
		glyph := protocolGlyphs[p]
		for i, v := range s.Cells[p].Mean.ThroughputSeries {
			if i >= buckets {
				break
			}
			row := int(v / maxVal * float64(chartHeight-1))
			grid[chartHeight-1-row][i] = glyph
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Aggregate throughput (kbps), %.0f packets/s per flow, %.0f km/h — 4 s buckets\n",
		s.Load, s.SpeedKmh)
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = fmt.Sprintf("%7.0f", maxVal)
		case chartHeight - 1:
			label = fmt.Sprintf("%7.0f", 0.0)
		case chartHeight / 2:
			label = fmt.Sprintf("%7.0f", maxVal/2)
		default:
			label = strings.Repeat(" ", 7)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, rowBytes)
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 7), strings.Repeat("-", buckets))
	fmt.Fprintf(&b, "%s  0%*s%d s\n", strings.Repeat(" ", 7), buckets-len(fmt.Sprint((buckets-1)*4))-1, "", (buckets-1)*4)
	b.WriteString("legend: ")
	for _, p := range s.Order {
		fmt.Fprintf(&b, "%c=%s ", protocolGlyphs[p], p.String())
	}
	b.WriteByte('\n')
	return b.String()
}
