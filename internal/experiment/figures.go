package experiment

import (
	"fmt"
	"strings"
	"time"
)

// Options sets the sweep grid; zero values fall back to paper-scale
// defaults (500 s, 25 trials, 0–72 km/h in 12 km/h steps, all protocols).
// CI-scale callers shrink Trials and Duration.
type Options struct {
	Speeds    []float64
	Protocols []Protocol
	Trials    int
	Duration  time.Duration
	BaseSeed  int64
	// Parallelism caps concurrent trials per cell; 0 means GOMAXPROCS.
	Parallelism int
	// Shards spreads each trial's broadcast geometry scans across spatial
	// shards (see world.Config.Shards); 0 or 1 keeps trials serial.
	// Parallelism spans trials, Shards works within one.
	Shards int
}

func (o Options) withDefaults() Options {
	if o.Speeds == nil {
		o.Speeds = []float64{0, 12, 24, 36, 48, 60, 72}
	}
	if o.Protocols == nil {
		o.Protocols = AllProtocols()
	}
	if o.Trials <= 0 {
		o.Trials = 25
	}
	if o.Duration <= 0 {
		o.Duration = 500 * time.Second
	}
	if o.BaseSeed == 0 {
		o.BaseSeed = 1
	}
	return o
}

// SweepResult is the full mobility sweep at one load. Figures 2, 3 and 4
// are three projections of the same sweep (delay, delivery, overhead).
type SweepResult struct {
	Load   float64
	Speeds []float64
	Cells  map[Protocol][]Result
	Order  []Protocol
}

// Sweep runs every (protocol, speed) cell at the given per-flow load.
func Sweep(load float64, o Options) SweepResult {
	o = o.withDefaults()
	out := SweepResult{
		Load:   load,
		Speeds: o.Speeds,
		Cells:  make(map[Protocol][]Result, len(o.Protocols)),
		Order:  o.Protocols,
	}
	for _, p := range o.Protocols {
		rows := make([]Result, len(o.Speeds))
		for i, speed := range o.Speeds {
			rows[i] = Run(RunConfig{
				Protocol:     p,
				MeanSpeedKmh: speed,
				Rate:         load,
				Duration:     o.Duration,
				Trials:       o.Trials,
				BaseSeed:     o.BaseSeed,
				Parallelism:  o.Parallelism,
				Shards:       o.Shards,
			})
		}
		out.Cells[p] = rows
	}
	return out
}

// Metric selects the projection of a sweep a figure plots.
type Metric int

// The sweep projections.
const (
	MetricDelay    Metric = iota + 1 // Figure 2: mean end-to-end delay (ms)
	MetricDelivery                   // Figure 3: successful delivery (%)
	MetricOverhead                   // Figure 4: routing overhead (kbps)
)

func (m Metric) String() string {
	switch m {
	case MetricDelay:
		return "Average End-to-End Delay (ms)"
	case MetricDelivery:
		return "Successful Packet Delivery (%)"
	case MetricOverhead:
		return "Routing Overhead (kbps)"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

func (m Metric) value(a Averages) float64 {
	switch m {
	case MetricDelay:
		return a.DelayMs
	case MetricDelivery:
		return a.DeliveryPercent
	case MetricOverhead:
		return a.OverheadKbps
	default:
		return 0
	}
}

// Table renders one metric of the sweep as the figure's data table:
// one row per protocol, one column per mean speed.
func (s SweepResult) Table(m Metric) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %.0f packets/s per flow\n", m, s.Load)
	fmt.Fprintf(&b, "%-10s", "km/h:")
	for _, sp := range s.Speeds {
		fmt.Fprintf(&b, "%9.0f", sp)
	}
	b.WriteByte('\n')
	for _, p := range s.Order {
		fmt.Fprintf(&b, "%-10s", p.String())
		for i := range s.Speeds {
			fmt.Fprintf(&b, "%9.1f", m.value(s.Cells[p][i].Mean))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// QualityResult is Figure 5's data: route quality per protocol at one
// mobility point (the paper tests 72 km/h).
type QualityResult struct {
	SpeedKmh float64
	Order    []Protocol
	Cells    map[Protocol]Result
}

// Quality runs the Figure 5 experiment.
func Quality(speedKmh, load float64, o Options) QualityResult {
	o = o.withDefaults()
	out := QualityResult{
		SpeedKmh: speedKmh,
		Order:    o.Protocols,
		Cells:    make(map[Protocol]Result, len(o.Protocols)),
	}
	for _, p := range o.Protocols {
		out.Cells[p] = Run(RunConfig{
			Protocol:     p,
			MeanSpeedKmh: speedKmh,
			Rate:         load,
			Duration:     o.Duration,
			Trials:       o.Trials,
			BaseSeed:     o.BaseSeed,
			Parallelism:  o.Parallelism,
			Shards:       o.Shards,
		})
	}
	return out
}

// Table renders Figure 5(a) and 5(b): average link throughput and average
// hop count (in the paper's CSI hop unit, with geographic hops and the
// loop telltale alongside).
func (q QualityResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Route quality at %.0f km/h\n", q.SpeedKmh)
	fmt.Fprintf(&b, "%-10s%18s%12s%12s%10s\n", "", "linkTP (kbps)", "CSI hops", "geo hops", "max hops")
	for _, p := range q.Order {
		m := q.Cells[p].Mean
		fmt.Fprintf(&b, "%-10s%18.1f%12.2f%12.2f%10d\n",
			p.String(), m.LinkThroughputK, m.CSIHops, m.GeoHops, m.MaxHops)
	}
	return b.String()
}

// SeriesResult is Figure 6's data: the aggregate delivered-throughput
// time series per protocol at one load.
type SeriesResult struct {
	Load     float64
	SpeedKmh float64
	Order    []Protocol
	Cells    map[Protocol]Result
}

// Series runs the Figure 6 experiment: throughput sampled every 4 s.
func Series(load, speedKmh float64, o Options) SeriesResult {
	o = o.withDefaults()
	out := SeriesResult{
		Load:     load,
		SpeedKmh: speedKmh,
		Order:    o.Protocols,
		Cells:    make(map[Protocol]Result, len(o.Protocols)),
	}
	for _, p := range o.Protocols {
		out.Cells[p] = Run(RunConfig{
			Protocol:     p,
			MeanSpeedKmh: speedKmh,
			Rate:         load,
			Duration:     o.Duration,
			Trials:       o.Trials,
			BaseSeed:     o.BaseSeed,
			Parallelism:  o.Parallelism,
			Shards:       o.Shards,
		})
	}
	return out
}

// Table renders the series with one row per 4 s bucket.
func (s SeriesResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Aggregate network throughput (kbps per 4 s bucket) — %.0f packets/s per flow, %.0f km/h\n",
		s.Load, s.SpeedKmh)
	fmt.Fprintf(&b, "%-8s", "t (s)")
	for _, p := range s.Order {
		fmt.Fprintf(&b, "%11s", p.String())
	}
	b.WriteByte('\n')
	buckets := 0
	for _, p := range s.Order {
		if n := len(s.Cells[p].Mean.ThroughputSeries); n > buckets {
			buckets = n
		}
	}
	for i := 0; i < buckets; i++ {
		fmt.Fprintf(&b, "%-8d", i*4)
		for _, p := range s.Order {
			series := s.Cells[p].Mean.ThroughputSeries
			v := 0.0
			if i < len(series) {
				v = series[i]
			}
			fmt.Fprintf(&b, "%11.1f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MeanSeries reports the time-average of a protocol's Figure 6 curve,
// skipping the warm-up bucket.
func (s SeriesResult) MeanSeries(p Protocol) float64 {
	series := s.Cells[p].Mean.ThroughputSeries
	if len(series) <= 1 {
		return 0
	}
	sum := 0.0
	for _, v := range series[1:] {
		sum += v
	}
	return sum / float64(len(series)-1)
}
