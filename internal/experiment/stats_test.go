package experiment

import (
	"math"
	"testing"
	"time"

	"rica/internal/metrics"
)

// fakeResult builds a Result with scripted delivery ratios.
func fakeResult(ratios ...float64) Result {
	r := Result{}
	for _, ratio := range ratios {
		r.Trials = append(r.Trials, metrics.Summary{
			Generated:     100,
			Delivered:     int(ratio * 100),
			DeliveryRatio: ratio,
			AvgDelay:      200 * time.Millisecond,
		})
	}
	return r
}

func TestTrialValues(t *testing.T) {
	r := fakeResult(0.5, 0.7, 0.9)
	vals := r.TrialValues(MetricDelivery)
	want := []float64{50, 70, 90}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-9 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestStdDevKnownValues(t *testing.T) {
	r := fakeResult(0.4, 0.6) // 40 and 60 percent: sd = 14.142...
	got := r.StdDev(MetricDelivery)
	if math.Abs(got-14.142135) > 1e-3 {
		t.Fatalf("StdDev = %v, want ≈14.14", got)
	}
}

func TestStdDevSingleTrialZero(t *testing.T) {
	r := fakeResult(0.5)
	if r.StdDev(MetricDelivery) != 0 || r.CI95(MetricDelivery) != 0 {
		t.Fatal("single-trial spread must be zero")
	}
}

func TestCI95ShrinksWithTrials(t *testing.T) {
	few := fakeResult(0.4, 0.6)
	many := fakeResult(0.4, 0.6, 0.4, 0.6, 0.4, 0.6, 0.4, 0.6)
	if many.CI95(MetricDelivery) >= few.CI95(MetricDelivery) {
		t.Fatalf("CI did not shrink: %v (8 trials) vs %v (2 trials)",
			many.CI95(MetricDelivery), few.CI95(MetricDelivery))
	}
}

func TestCIRealRunIsFinite(t *testing.T) {
	r := Run(RunConfig{
		Protocol: AODV, MeanSpeedKmh: 20, Rate: 10,
		Duration: 10 * time.Second, Trials: 3, BaseSeed: 1,
	})
	for _, m := range []Metric{MetricDelay, MetricDelivery, MetricOverhead} {
		ci := r.CI95(m)
		if math.IsNaN(ci) || ci < 0 {
			t.Fatalf("CI95(%v) = %v", m, ci)
		}
	}
}
