package experiment

import (
	"runtime"
	"sync"
	"time"

	"rica/internal/metrics"
	"rica/internal/world"
)

// RunConfig describes one experimental cell: a protocol at a mobility and
// load point, repeated over trials.
type RunConfig struct {
	Protocol Protocol
	// MeanSpeedKmh is the mean terminal speed, the paper's x-axis; the
	// waypoint model draws uniform speeds in [0, 2×mean].
	MeanSpeedKmh float64
	// Rate is the per-flow offered load in packets/s (paper: 10 and 20,
	// plus 60 in Figure 6b).
	Rate float64
	// Duration is the simulated horizon (paper: 500 s).
	Duration time.Duration
	// Trials is how many seeds to average (paper: 25).
	Trials int
	// BaseSeed offsets the trial seeds; trial t uses BaseSeed + t.
	BaseSeed int64
	// Parallelism caps concurrent trials; 0 means GOMAXPROCS.
	Parallelism int
	// Shards spreads each trial's broadcast geometry scans across spatial
	// shards (see world.Config.Shards); 0 or 1 keeps trials serial.
	Shards int
}

// Result is the across-trial average of one cell.
type Result struct {
	Config RunConfig
	Trials []metrics.Summary
	Mean   Averages
}

// Averages holds the across-trial means of the reported metrics.
type Averages struct {
	DelayMs          float64
	DeliveryPercent  float64
	OverheadKbps     float64
	LinkThroughputK  float64 // kbps per traversed hop (Figure 5a)
	CSIHops          float64 // the paper's hop unit (Figure 5b)
	GeoHops          float64
	MaxHops          int
	GoodputKbps      float64
	ThroughputSeries []float64 // kbps per 4 s bucket (Figure 6)
}

// Run executes the cell's trials (in parallel, each fully deterministic in
// its seed) and averages them.
func Run(cfg RunConfig) Result {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	par := cfg.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > cfg.Trials {
		par = cfg.Trials
	}

	summaries := make([]metrics.Summary, cfg.Trials)
	var wg sync.WaitGroup
	sem := make(chan struct{}, par)
	for t := 0; t < cfg.Trials; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			summaries[t] = runTrial(cfg, cfg.BaseSeed+int64(t))
		}(t)
	}
	wg.Wait()
	return Result{Config: cfg, Trials: summaries, Mean: average(summaries)}
}

// runTrial builds and runs one world.
func runTrial(cfg RunConfig, seed int64) metrics.Summary {
	wcfg := world.DefaultConfig(cfg.MeanSpeedKmh, cfg.Rate)
	wcfg.Duration = cfg.Duration
	wcfg.Seed = seed
	wcfg.Shards = cfg.Shards
	return world.New(wcfg, Factory(cfg.Protocol, cfg.Rate)).Run()
}

// average folds trial summaries into Averages.
func average(ss []metrics.Summary) Averages {
	var a Averages
	if len(ss) == 0 {
		return a
	}
	maxSeries := 0
	for _, s := range ss {
		if len(s.ThroughputSeries) > maxSeries {
			maxSeries = len(s.ThroughputSeries)
		}
	}
	a.ThroughputSeries = make([]float64, maxSeries)
	n := float64(len(ss))
	for _, s := range ss {
		a.DelayMs += float64(s.AvgDelay.Milliseconds()) / n
		a.DeliveryPercent += s.DeliveryRatio * 100 / n
		a.OverheadKbps += s.OverheadBps / 1000 / n
		a.LinkThroughputK += s.AvgLinkThroughputBps / 1000 / n
		a.CSIHops += s.AvgCSIHops / n
		a.GeoHops += s.AvgHops / n
		a.GoodputKbps += s.GoodputBps / 1000 / n
		if s.MaxHops > a.MaxHops {
			a.MaxHops = s.MaxHops
		}
		for i, v := range s.ThroughputSeries {
			a.ThroughputSeries[i] += v / 1000 / n
		}
	}
	return a
}
