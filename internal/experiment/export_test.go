package experiment

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func tinyOptions(protocols ...Protocol) Options {
	return Options{
		Speeds:    []float64{0, 36},
		Protocols: protocols,
		Trials:    1,
		Duration:  10 * time.Second,
		BaseSeed:  1,
	}
}

func TestSweepCSVWellFormed(t *testing.T) {
	sweep := Sweep(10, tinyOptions(AODV, RICA))
	csv := sweep.CSV(MetricDelivery)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 { // header + 2 speeds
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "speed_kmh,AODV,RICA" {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		cells := strings.Split(line, ",")
		if len(cells) != 3 {
			t.Fatalf("row %q has %d cells", line, len(cells))
		}
		for _, cell := range cells {
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				t.Fatalf("cell %q not numeric: %v", cell, err)
			}
		}
	}
}

func TestQualityCSVWellFormed(t *testing.T) {
	q := Quality(36, 10, tinyOptions(AODV))
	csv := q.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[1], "AODV,") {
		t.Fatalf("row = %q", lines[1])
	}
	if got := strings.Count(lines[1], ","); got != 4 {
		t.Fatalf("row has %d commas, want 4", got)
	}
}

func TestSeriesCSVAndChart(t *testing.T) {
	s := Series(10, 18, tinyOptions(AODV, RICA))
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "t_seconds,AODV,RICA" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 3 {
		t.Fatalf("series too short:\n%s", csv)
	}
	chart := s.Chart()
	if !strings.Contains(chart, "legend:") {
		t.Fatalf("chart missing legend:\n%s", chart)
	}
	if !strings.Contains(chart, "A=AODV") || !strings.Contains(chart, "R=RICA") {
		t.Fatalf("chart legend incomplete:\n%s", chart)
	}
	// Both glyphs must actually appear in the plot area.
	body := chart[:strings.Index(chart, "legend:")]
	if !strings.Contains(body, "A") || !strings.Contains(body, "R") {
		t.Fatalf("chart body missing curves:\n%s", chart)
	}
	if h := strings.Count(chart, "\n"); h < chartHeight {
		t.Fatalf("chart height %d too small", h)
	}
}

func TestChartEmptySeries(t *testing.T) {
	s := SeriesResult{Order: []Protocol{AODV}, Cells: map[Protocol]Result{AODV: {}}}
	if got := s.Chart(); got != "(no data)\n" {
		t.Fatalf("empty chart = %q", got)
	}
}
