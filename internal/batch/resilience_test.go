package batch

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rica/internal/experiment"
	"rica/internal/scenario"
)

// setCellHook installs the test-only per-attempt hook; hook-using tests
// must not run in parallel with each other.
func setCellHook(t *testing.T, fn func(scenarioName string, p experiment.Protocol, seed int64)) {
	t.Helper()
	testCellHook = fn
	t.Cleanup(func() { testCellHook = nil })
}

// scenarioSpecList is the fast one-scenario grid the resilience tests
// share (a 2 s static chain; each healthy cell runs in milliseconds).
func scenarioSpecList(t *testing.T) []scenario.Spec {
	t.Helper()
	return []scenario.Spec{testSpec(2 * time.Second)}
}

// TestBatchPanicQuarantine: a cell that panics is quarantined with grid
// attribution and its stack, the rest of the grid completes, and the
// aggregates exclude the poisoned row.
func TestBatchPanicQuarantine(t *testing.T) {
	setCellHook(t, func(name string, p experiment.Protocol, seed int64) {
		if p == experiment.AODV && seed == 2 {
			panic("injected cell failure")
		}
	})
	res, err := Run(Config{
		Scenarios: scenarioSpecList(t),
		Protocols: []experiment.Protocol{experiment.RICA, experiment.AODV},
		Trials:    2,
		Workers:   4,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", res.Poisoned)
	}
	var poisoned *CellResult
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Poisoned() {
			poisoned = c
		} else if c.Generated == 0 {
			t.Errorf("healthy cell %s/%s/%d generated nothing", c.Scenario, c.Protocol, c.Seed)
		}
	}
	if poisoned == nil {
		t.Fatal("no poisoned cell in results")
	}
	if poisoned.Protocol != "AODV" || poisoned.Seed != 2 {
		t.Errorf("poison attributed to %s/%d, want AODV/2", poisoned.Protocol, poisoned.Seed)
	}
	if !strings.Contains(poisoned.Error, "injected cell failure") {
		t.Errorf("poison error = %q, want the panic value", poisoned.Error)
	}
	if !strings.Contains(poisoned.Stack, "runCellAttempt") && poisoned.Stack == "" {
		t.Errorf("poison carries no stack")
	}
	for _, a := range res.Aggregates {
		if a.Protocol == "AODV" && a.Trials != 1 {
			t.Errorf("AODV aggregate counts %d trials, want 1 (poisoned cell excluded)", a.Trials)
		}
	}
}

// TestBatchTimeoutPoison: a cell that stalls past CellTimeout on every
// attempt is quarantined; retries disabled keeps it to one attempt.
func TestBatchTimeoutPoison(t *testing.T) {
	setCellHook(t, func(name string, p experiment.Protocol, seed int64) {
		if seed == 1 {
			time.Sleep(2 * time.Second)
		}
	})
	res, err := Run(Config{
		Scenarios:   scenarioSpecList(t),
		Protocols:   []experiment.Protocol{experiment.RICA},
		Trials:      2,
		Workers:     2,
		CellTimeout: 100 * time.Millisecond,
		CellRetries: -1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Poisoned != 1 {
		t.Fatalf("Poisoned = %d, want 1", res.Poisoned)
	}
	for _, c := range res.Cells {
		if c.Seed == 1 && !strings.Contains(c.Error, "timed out") {
			t.Errorf("stalled cell error = %q, want timeout", c.Error)
		}
		if c.Seed == 2 && c.Poisoned() {
			t.Errorf("healthy cell poisoned: %q", c.Error)
		}
	}
}

// TestBatchTimeoutRetry: a cell that stalls only on its first attempt
// succeeds on the retry.
func TestBatchTimeoutRetry(t *testing.T) {
	var attempts atomic.Int32
	setCellHook(t, func(name string, p experiment.Protocol, seed int64) {
		if attempts.Add(1) == 1 {
			time.Sleep(2 * time.Second)
		}
	})
	res, err := Run(Config{
		Scenarios:   scenarioSpecList(t),
		Protocols:   []experiment.Protocol{experiment.RICA},
		Trials:      1,
		Workers:     1,
		CellTimeout: 150 * time.Millisecond,
		CellRetries: 1,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Poisoned != 0 {
		t.Fatalf("Poisoned = %d, want 0 (retry should have succeeded)", res.Poisoned)
	}
	if got := attempts.Load(); got != 2 {
		t.Errorf("attempts = %d, want 2", got)
	}
	if res.Cells[0].Generated == 0 {
		t.Error("retried cell carries no measurements")
	}
}

// TestBatchManifestResume: a finished grid re-run against its manifest
// recomputes zero cells and exports byte-identical rows and aggregates.
func TestBatchManifestResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.manifest")
	cfg := Config{
		Scenarios: scenarioSpecList(t),
		Protocols: []experiment.Protocol{experiment.RICA, experiment.ABR},
		Trials:    2,
		Workers:   3,
		Manifest:  path,
	}
	first, err := Run(cfg)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if first.Restored != 0 {
		t.Fatalf("first run Restored = %d", first.Restored)
	}
	var computed atomic.Int32
	setCellHook(t, func(string, experiment.Protocol, int64) { computed.Add(1) })
	second, err := Run(cfg)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if n := computed.Load(); n != 0 {
		t.Errorf("resume recomputed %d cells, want 0", n)
	}
	if second.Restored != len(first.Cells) {
		t.Errorf("Restored = %d, want %d", second.Restored, len(first.Cells))
	}
	mustJSON := func(v any) string {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got, want := mustJSON(second.Cells), mustJSON(first.Cells); got != want {
		t.Errorf("restored cells are not byte-identical\n got: %.200s\nwant: %.200s", got, want)
	}
	if got, want := mustJSON(second.Aggregates), mustJSON(first.Aggregates); got != want {
		t.Errorf("restored aggregates are not byte-identical")
	}
}

// TestBatchInterruptThenManifestResume: Stop ends a batch mid-grid with
// ErrInterrupted; re-running with the manifest restores exactly the
// journaled cells and computes only the remainder.
func TestBatchInterruptThenManifestResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.manifest")
	stop := make(chan struct{})
	var stopOnce atomic.Bool
	cfg := Config{
		Scenarios: scenarioSpecList(t),
		Protocols: []experiment.Protocol{experiment.RICA, experiment.BGCA},
		Trials:    3,
		Workers:   1,
		Manifest:  path,
		Stop:      stop,
		OnProgress: func(p Progress) {
			if p.Done >= 2 && stopOnce.CompareAndSwap(false, true) {
				close(stop)
			}
		},
	}
	partial, err := Run(cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted Run err = %v, want ErrInterrupted", err)
	}
	journaled := 0
	for _, c := range partial.Cells {
		if c.Scenario != "" {
			journaled++
		}
	}
	if journaled == 0 || journaled == len(partial.Cells) {
		t.Fatalf("interrupt landed at %d/%d finished cells; wanted a partial grid", journaled, len(partial.Cells))
	}
	var computed atomic.Int32
	setCellHook(t, func(string, experiment.Protocol, int64) { computed.Add(1) })
	cfg.Stop = nil
	cfg.OnProgress = nil
	full, err := Run(cfg)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if full.Restored != journaled {
		t.Errorf("Restored = %d, want %d", full.Restored, journaled)
	}
	if got, want := int(computed.Load()), len(full.Cells)-journaled; got != want {
		t.Errorf("resume computed %d cells, want %d", got, want)
	}
	if full.Poisoned != 0 {
		t.Errorf("Poisoned = %d after clean resume", full.Poisoned)
	}
}

// TestBatchManifestRejectsForeignGrid: a journal written by one grid
// must not resume a different one.
func TestBatchManifestRejectsForeignGrid(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.manifest")
	cfg := Config{
		Scenarios: scenarioSpecList(t),
		Protocols: []experiment.Protocol{experiment.RICA},
		Trials:    1,
		Manifest:  path,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	other := cfg
	other.BaseSeed = 7 // different grid, same manifest path
	if _, err := Run(other); err == nil || !strings.Contains(err.Error(), "different grid") {
		t.Fatalf("foreign-grid resume err = %v, want grid-signature rejection", err)
	}
}

// TestBatchManifestToleratesTornTail: a crash mid-append leaves a
// newline-less partial final line; resume drops it and recomputes that
// cell only. Damage to an interior line is corruption and refuses.
func TestBatchManifestToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "grid.manifest")
	cfg := Config{
		Scenarios: scenarioSpecList(t),
		Protocols: []experiment.Protocol{experiment.RICA},
		Trials:    2,
		Manifest:  path,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	// Tear the tail: append half a JSON object with no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":1,"cell":{"scena`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("resume over torn tail: %v", err)
	}
	if res.Restored != len(res.Cells) {
		t.Errorf("Restored = %d, want %d (torn tail should not cost valid lines)", res.Restored, len(res.Cells))
	}
	// Now corrupt an interior line: that is not a torn tail, so refuse.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 3 {
		t.Fatalf("manifest has %d lines, want >= 3", len(lines))
	}
	lines[1] = "{broken json}\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("interior corruption err = %v, want corruption rejection", err)
	}
}

// TestBatchManifestExcludesTelemetry: the two are mutually exclusive.
func TestBatchManifestExcludesTelemetry(t *testing.T) {
	_, err := Run(Config{
		Scenarios: scenarioSpecList(t),
		Manifest:  filepath.Join(t.TempDir(), "m"),
		Telemetry: &Telemetry{Sink: nil},
	})
	if err == nil {
		t.Fatal("Run accepted Manifest together with Telemetry")
	}
}
