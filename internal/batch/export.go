package batch

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// csvField quotes a string field per RFC 4180 when it contains a comma,
// quote, or newline, so free-text scenario names cannot shift columns.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n\r") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteJSON streams the result as indented JSON. Cell and aggregate rows
// are in grid order and contain no maps, so equal batches serialize to
// identical bytes.
func (r Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV streams the aggregate rows as comma-separated values.
func (r Result) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"scenario,protocol,trials,"+
			"delivery_pct_mean,delivery_pct_p50,delivery_pct_p95,"+
			"avg_delay_ms_mean,avg_delay_ms_p50,avg_delay_ms_p95,"+
			"overhead_kbps_mean,overhead_kbps_p50,overhead_kbps_p95,"+
			"goodput_kbps_mean,goodput_kbps_p50,goodput_kbps_p95\n"); err != nil {
		return err
	}
	for _, a := range r.Aggregates {
		_, err := fmt.Fprintf(w, "%s,%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			csvField(a.Scenario), csvField(a.Protocol), a.Trials,
			a.DeliveryPct.Mean, a.DeliveryPct.P50, a.DeliveryPct.P95,
			a.AvgDelayMs.Mean, a.AvgDelayMs.P50, a.AvgDelayMs.P95,
			a.OverheadKbps.Mean, a.OverheadKbps.P50, a.OverheadKbps.P95,
			a.GoodputKbps.Mean, a.GoodputKbps.P50, a.GoodputKbps.P95)
		if err != nil {
			return err
		}
	}
	return nil
}

// Table renders the aggregates as a human-readable comparison table, one
// row per (scenario, protocol).
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s%-11s%12s%14s%16s%15s\n",
		"scenario", "protocol", "delivery %", "delay (ms)", "overhead kbps", "goodput kbps")
	prev := ""
	for _, a := range r.Aggregates {
		name := a.Scenario
		if name == prev {
			name = ""
		} else {
			prev = name
		}
		fmt.Fprintf(&b, "%-16s%-11s%12.1f%14.1f%16.1f%15.1f\n",
			name, a.Protocol,
			a.DeliveryPct.Mean, a.AvgDelayMs.Mean, a.OverheadKbps.Mean, a.GoodputKbps.Mean)
	}
	return b.String()
}
