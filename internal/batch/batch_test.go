package batch

import (
	"bytes"
	"testing"
	"time"

	"rica/internal/experiment"
	"rica/internal/scenario"
	"rica/internal/world"
)

// testSpec is a fast deterministic grid cell: a short static chain.
func testSpec(dur time.Duration) scenario.Spec {
	return scenario.Spec{
		Name:     "test-chain",
		Topology: scenario.Topology{Kind: scenario.TopoChain, N: 5, Spacing: 200},
		Traffic: scenario.Traffic{
			Kind: scenario.TrafficPoisson, Rate: 10,
			Pairs: []scenario.Pair{{Src: 0, Dst: 4}},
		},
		Duration: scenario.Duration(dur),
	}
}

// TestBatchDeterministic: the same grid and base seed export bit-equal
// results regardless of worker count or repetition.
func TestBatchDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		res, err := Run(Config{
			Scenarios: []scenario.Spec{testSpec(15 * time.Second)},
			Protocols: []experiment.Protocol{experiment.RICA, experiment.AODV},
			Trials:    2,
			BaseSeed:  7,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	first := run(1)
	if !bytes.Equal(first, run(1)) {
		t.Error("two serial runs differ")
	}
	if !bytes.Equal(first, run(8)) {
		t.Error("parallel run differs from serial run")
	}
}

// TestBatchGridOrderAndProgress: results come back in grid order
// (scenario-major, then protocol, then seed) no matter which worker
// finished first, and every cell reports progress exactly once.
func TestBatchGridOrderAndProgress(t *testing.T) {
	var seen int
	res, err := Run(Config{
		Scenarios: []scenario.Spec{testSpec(10 * time.Second)},
		Protocols: []experiment.Protocol{experiment.RICA, experiment.AODV},
		Trials:    3,
		Workers:   4,
		OnProgress: func(p Progress) {
			seen++
			if p.Done != seen || p.Total != 6 {
				t.Errorf("progress %d/%d, want %d/6", p.Done, p.Total, seen)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 6 {
		t.Errorf("progress fired %d times, want 6", seen)
	}
	if len(res.Cells) != 6 || len(res.Aggregates) != 2 {
		t.Fatalf("got %d cells, %d aggregates", len(res.Cells), len(res.Aggregates))
	}
	for i, c := range res.Cells {
		wantProto := "RICA"
		if i >= 3 {
			wantProto = "AODV"
		}
		wantSeed := int64(1 + i%3)
		if c.Protocol != wantProto || c.Seed != wantSeed {
			t.Errorf("cell %d is %s seed %d, want %s seed %d",
				i, c.Protocol, c.Seed, wantProto, wantSeed)
		}
	}
	for _, a := range res.Aggregates {
		if a.DeliveryPct.Mean <= 0 {
			t.Errorf("%s/%s: empty aggregate", a.Scenario, a.Protocol)
		}
		if a.DeliveryPct.P95 < a.DeliveryPct.P50 {
			t.Errorf("%s/%s: p95 < p50", a.Scenario, a.Protocol)
		}
	}
}

// TestBatchSeedZero: SeedZero starts the grid at the actual seed 0,
// which the BaseSeed zero-sentinel (default 1) cannot express.
func TestBatchSeedZero(t *testing.T) {
	res, err := Run(Config{
		Scenarios: []scenario.Spec{testSpec(5 * time.Second)},
		Protocols: []experiment.Protocol{experiment.RICA},
		Trials:    2,
		SeedZero:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BaseSeed != 0 {
		t.Errorf("BaseSeed = %d, want 0", res.BaseSeed)
	}
	for i, c := range res.Cells {
		if c.Seed != int64(i) {
			t.Errorf("cell %d ran seed %d, want %d", i, c.Seed, i)
		}
	}
}

// TestBatchRejectsInvalidSpec: a broken scenario fails the whole batch
// before any cell runs.
func TestBatchRejectsInvalidSpec(t *testing.T) {
	bad := testSpec(10 * time.Second)
	bad.Traffic.Rate = -1
	if _, err := Run(Config{Scenarios: []scenario.Spec{bad}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := Run(Config{}); err == nil {
		t.Fatal("empty batch accepted")
	}
}

// TestFailureScheduleDropsThenRecovers: with the chain's only bridge dead
// for the first 20 s, end-to-end delivery is zero during the outage and
// resumes after the heal — the failure-schedule semantics the
// partition-heal built-in is built on.
func TestFailureScheduleDropsThenRecovers(t *testing.T) {
	const (
		outage  = 20 * time.Second
		horizon = 40 * time.Second
	)
	spec := testSpec(horizon)
	spec.Outages = []scenario.Outage{{Node: 2, From: 0, Until: scenario.Duration(outage)}}

	run := func(s scenario.Spec) []float64 {
		cfg, err := s.Compile()
		if err != nil {
			t.Fatal(err)
		}
		cfg.Seed = 5
		sum := world.New(cfg, experiment.Factory(experiment.AODV, s.Traffic.Rate)).Run()
		return sum.ThroughputSeries // bits/s per 4 s bucket
	}

	// Control: without the outage the chain delivers from the first bucket.
	control := run(testSpec(horizon))
	if control[0] <= 0 {
		t.Fatalf("control run idle in bucket 0: %v", control)
	}

	series := run(spec)
	outBuckets := int(outage / (4 * time.Second))
	for i := 0; i < outBuckets && i < len(series); i++ {
		if series[i] > 0 {
			t.Errorf("bucket %d delivered %.0f bps across a dead bridge", i, series[i])
		}
	}
	healed := 0.0
	// Skip the first post-heal bucket: rediscovery may straddle it.
	for i := outBuckets + 1; i < len(series); i++ {
		healed += series[i]
	}
	if healed <= 0 {
		t.Errorf("no delivery after heal: %v", series)
	}
}
