package batch

import (
	"math/rand"
	"testing"
	"time"
)

// TestRetryBackoffBoundsAndCap: every delay lies in [nominal/2, nominal)
// where nominal doubles from the base and saturates at the cap, for any
// rng draw.
func TestRetryBackoffBoundsAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for attempt := 0; attempt < 64; attempt++ {
		nominal := retryBackoffMax
		if attempt < 34 {
			if d := retryBackoffBase << attempt; d < nominal {
				nominal = d
			}
		}
		for i := 0; i < 200; i++ {
			d := retryBackoff(attempt, rng)
			if d < nominal/2 || d >= nominal {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, nominal/2, nominal)
			}
		}
	}
	// The cap must hold even at absurd attempt counts (shift overflow).
	if d := retryBackoff(1000, rng); d >= retryBackoffMax {
		t.Fatalf("attempt 1000: backoff %v >= cap %v", d, retryBackoffMax)
	}
}

// TestRetryBackoffDeterministicSeed: the jitter stream is a pure
// function of the rng seed — equal seeds yield the exact same delay
// sequence, and the sequence actually varies (jitter is live).
func TestRetryBackoffDeterministicSeed(t *testing.T) {
	sequence := func(seed int64) []time.Duration {
		rng := rand.New(rand.NewSource(seed))
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = retryBackoff(i, rng)
		}
		return out
	}
	a, b := sequence(42), sequence(42)
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("attempt %d: same seed produced %v then %v", i, a[i], b[i])
		}
		nominal := retryBackoffBase << i
		if nominal > retryBackoffMax {
			nominal = retryBackoffMax
		}
		if a[i] != nominal/2 {
			varied = true // not pinned to the deterministic floor
		}
	}
	if !varied {
		t.Fatal("every delay sat on the floor — jitter appears dead")
	}
	c := sequence(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical delay sequences")
	}
}

// TestRetryRNGPerCell: distinct grid cells seed distinct jitter streams
// (desynchronized retries), while the same cell always reseeds the same
// stream (reproducible schedules).
func TestRetryRNGPerCell(t *testing.T) {
	spec := testSpec(time.Second)
	mk := func(seed int64, name string) cell {
		s := spec
		s.Name = name
		return cell{spec: s, seed: seed}
	}
	a := retryRNG(mk(1, "test-chain"))
	b := retryRNG(mk(1, "test-chain"))
	if a.Int63() != b.Int63() {
		t.Fatal("identical cells seeded different backoff streams")
	}
	av := retryRNG(mk(1, "test-chain")).Int63()
	if av == retryRNG(mk(2, "test-chain")).Int63() && av == retryRNG(mk(1, "other")).Int63() {
		t.Fatal("distinct cells all seeded the same backoff stream")
	}
}
