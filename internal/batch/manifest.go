package batch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"

	"rica/internal/durable"
)

// The grid manifest is the batch engine's crash journal: an append-only
// JSON-Lines file recording every finished cell the moment it finishes,
// fsync'd per line so a killed process loses at most its in-flight
// cells. The first line is a header binding the journal to one exact
// grid (a signature over the scenario specs, protocols, trials, seeds,
// and shards); re-running that grid with the same manifest path
// restores journaled cells verbatim — cell rows JSON round-trip exactly
// (integers verbatim, floats by shortest representation), so a resumed
// batch's exported Result is byte-identical to an uninterrupted one —
// and recomputes only the rest. A manifest written by any other grid is
// rejected rather than silently mixed in.

// manifestFormat names the journal layout; bump on incompatible change.
const manifestFormat = "rica-batch-manifest-v1"

type manifestHeader struct {
	Format string `json:"format"`
	Grid   string `json:"grid"`
	Cells  int    `json:"cells"`
}

type manifestEntry struct {
	Index int        `json:"index"`
	Cell  CellResult `json:"cell"`
}

// manifest is the open journal; record appends one durable line.
type manifest struct {
	mu sync.Mutex
	f  *os.File
}

// gridSignature fingerprints the expanded grid: any change to the
// scenario specs, protocol set, trial count, seeds, or sharding yields
// a different signature, so a stale journal can never resume the wrong
// grid.
func gridSignature(cells []cell, baseSeed int64, trials, shards int) string {
	h := fnv.New64a()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	w("base=%d trials=%d shards=%d cells=%d\n", baseSeed, trials, shards, len(cells))
	for i := range cells {
		c := &cells[i]
		spec, err := json.Marshal(c.spec)
		if err != nil {
			// Specs compiled before expansion; Marshal of a compilable spec
			// cannot fail, but feed something signature-changing regardless.
			spec = []byte(err.Error())
		}
		w("%d %s %d %s\n", i, c.protocol, c.seed, spec)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// openManifest opens (or creates) the journal at path for the grid with
// the given signature and cell count, returning the journal and every
// valid cell it already holds. A truncated final line — the signature
// of a crash mid-append — is tolerated and dropped; damage anywhere
// else, or a header from another grid, is an error.
func openManifest(path, sig string, cells int) (*manifest, map[int]CellResult, error) {
	restored := map[int]CellResult{}
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		// Fresh journal.
	case err != nil:
		return nil, nil, fmt.Errorf("batch: manifest: %w", err)
	case len(data) > 0:
		if err := readManifest(data, sig, cells, restored); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("batch: manifest: %w", err)
	}
	m := &manifest{f: f}
	if len(data) == 0 {
		hdr, err := json.Marshal(manifestHeader{Format: manifestFormat, Grid: sig, Cells: cells})
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := m.appendLine(hdr); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("batch: manifest: %w", err)
		}
		// A fresh journal is a new directory entry: sync the directory
		// too, or a machine crash can forget the file ever existed even
		// though every line in it was fsync'd.
		if err := durable.SyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("batch: manifest: %w", err)
		}
	}
	return m, restored, nil
}

// readManifest validates an existing journal against this grid and
// collects its cell rows.
func readManifest(data []byte, sig string, cells int, restored map[int]CellResult) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 16<<20) // cell rows with obs snapshots are long lines
	if !sc.Scan() {
		return fmt.Errorf("batch: manifest: empty or unreadable header")
	}
	var hdr manifestHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("batch: manifest: bad header: %w", err)
	}
	if hdr.Format != manifestFormat {
		return fmt.Errorf("batch: manifest format %q is not %q", hdr.Format, manifestFormat)
	}
	if hdr.Grid != sig || hdr.Cells != cells {
		return fmt.Errorf("batch: manifest belongs to a different grid (signature %s/%d cells, this grid is %s/%d); delete it or point Manifest elsewhere", hdr.Grid, hdr.Cells, sig, cells)
	}
	truncatedTail := !bytes.HasSuffix(data, []byte("\n"))
	for line := 1; sc.Scan(); line++ {
		var e manifestEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			// A crash mid-append can tear exactly one line: the file's
			// last, newline-less one. Drop it — its cell recomputes.
			// Damage anywhere else is real corruption.
			if !sc.Scan() && truncatedTail {
				return nil
			}
			return fmt.Errorf("batch: manifest line %d corrupt: %w", line+1, err)
		}
		if e.Index < 0 || e.Index >= cells {
			return fmt.Errorf("batch: manifest line %d indexes cell %d of %d", line+1, e.Index, cells)
		}
		if e.Cell.Poisoned() {
			// Quarantine rows are journaled for attribution but never
			// restored: a resume retries the cell (a transient stall may
			// pass now; a deterministic panic simply re-poisons). Last
			// line wins per index, so the retry's row supersedes this one.
			delete(restored, e.Index)
			continue
		}
		restored[e.Index] = e.Cell
	}
	return sc.Err()
}

// record journals one finished cell durably.
func (m *manifest) record(index int, c CellResult) error {
	line, err := json.Marshal(manifestEntry{Index: index, Cell: c})
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.appendLine(line)
}

// appendLine writes line + "\n" and fsyncs. Callers hold mu (or have
// exclusive access during open).
func (m *manifest) appendLine(line []byte) error {
	if _, err := m.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return m.f.Sync()
}

func (m *manifest) Close() error { return m.f.Close() }
