package batch

import (
	"math/rand"
	"time"
)

// Cell-retry backoff. Unjittered exponential backoff synchronizes
// retries: when one slow machine stalls a whole worker pool's cells at
// once, every retry lands at the same instants and the thundering herd
// stalls again. The fix is the standard equal-jitter scheme — half the
// exponential delay deterministic, half uniformly random — bounded by a
// hard cap so attempt counts can grow without delays growing past it.
const (
	// retryBackoffBase is attempt 0's nominal delay; attempt k's nominal
	// delay is base << k.
	retryBackoffBase = 100 * time.Millisecond
	// retryBackoffMax caps the nominal delay (and therefore the jittered
	// delay, which never exceeds the nominal one).
	retryBackoffMax = 2 * time.Second
)

// retryBackoff returns the sleep before retry attempt (0-based): an
// equal-jitter exponential delay in [nominal/2, nominal), where nominal
// = min(base<<attempt, max). Deterministic given the rng state, so a
// seeded sequence is reproducible — the unit tests pin it.
func retryBackoff(attempt int, rng *rand.Rand) time.Duration {
	nominal := retryBackoffMax
	// base<<attempt overflows past attempt 34; the cap makes large
	// attempts irrelevant long before then.
	if attempt < 34 {
		if d := retryBackoffBase << attempt; d < nominal {
			nominal = d
		}
	}
	half := nominal / 2
	return half + time.Duration(rng.Int63n(int64(half)))
}

// retryRNG seeds the per-cell backoff stream deterministically from the
// cell's grid coordinates, so equal grids retry on equal schedules (and
// distinct cells desynchronize from each other).
func retryRNG(c cell) *rand.Rand {
	seed := c.seed*1000003 + int64(c.protocol)*8191 + int64(len(c.spec.Name))
	for _, b := range []byte(c.spec.Name) {
		seed = seed*131 + int64(b)
	}
	return rand.New(rand.NewSource(seed))
}
