package batch

import (
	"bytes"
	"testing"
	"time"

	"rica/internal/experiment"
	"rica/internal/scenario"
	"rica/internal/timeseries"
)

// telemetryGrid is the failure/heal workload the telemetry acceptance
// rides on: the partition-heal built-in under one protocol, two seeds.
func telemetryGrid(t *testing.T) Config {
	t.Helper()
	spec, err := scenario.ByName("partition-heal")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Scenarios: []scenario.Spec{spec},
		Protocols: []experiment.Protocol{experiment.RICA},
		Trials:    2,
	}
}

func TestTelemetrySerialParallelByteIdentical(t *testing.T) {
	runOnce := func(workers int) []byte {
		var buf bytes.Buffer
		cfg := telemetryGrid(t)
		cfg.Workers = workers
		cfg.Telemetry = &Telemetry{Interval: 2 * time.Second, Sink: timeseries.NewJSONLSink(&buf)}
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := runOnce(1)
	parallel := runOnce(4)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("telemetry streams differ between serial (%d bytes) and parallel (%d bytes)",
			len(serial), len(parallel))
	}
	if len(serial) == 0 {
		t.Fatal("telemetry stream is empty")
	}
}

func TestTelemetryShowsFailureDipAndRecovery(t *testing.T) {
	var sink timeseries.MemorySink
	cfg := telemetryGrid(t)
	cfg.Trials = 1
	cfg.Telemetry = &Telemetry{Interval: 5 * time.Second, Sink: &sink}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(sink.Runs) != 1 {
		t.Fatalf("emitted %d timelines, want 1", len(sink.Runs))
	}
	tl := sink.Runs[0].Timeline
	// partition-heal: terminal 3 (the only bridge of a 7-node chain) is
	// down until t=40s, so the 0→6 cross flow cannot deliver; after the
	// heal every flow can. Compare mean per-interval delivery ratio in the
	// outage steady state vs the healed steady state (skipping warmup and
	// convergence edges).
	mean := func(fromS, toS float64) float64 {
		sum, n := 0.0, 0
		for _, p := range tl.Points {
			if p.StartS >= fromS && p.StartS < toS && p.Generated > 0 {
				sum += p.DeliveryRatio
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no generating intervals in [%g, %g)", fromS, toS)
		}
		return sum / float64(n)
	}
	down := mean(5, 40)
	healed := mean(60, 115)
	if healed <= down {
		t.Fatalf("no recovery visible: delivery %.3f while partitioned vs %.3f healed", down, healed)
	}
	// The dip must be substantial — a third of the flows are severed.
	if healed-down < 0.15 {
		t.Fatalf("recovery too shallow: %.3f → %.3f", down, healed)
	}

	// The run must also surface control traffic and route churn.
	var ctl, installs int64
	for _, p := range tl.Points {
		ctl += p.ControlPackets
		installs += int64(p.RouteInstalls)
	}
	if ctl == 0 {
		t.Fatal("timeline recorded no control packets")
	}
	if installs == 0 {
		t.Fatal("timeline recorded no route installs")
	}
}

func TestTelemetryNeedsSink(t *testing.T) {
	cfg := telemetryGrid(t)
	cfg.Telemetry = &Telemetry{Interval: time.Second}
	if _, err := Run(cfg); err == nil {
		t.Fatal("Run accepted Telemetry without a Sink")
	}
}

func TestAggregatesUnchangedByTelemetry(t *testing.T) {
	// Collecting a timeline must not perturb the simulation: the
	// aggregate rows with and without telemetry attached are identical.
	plain := telemetryGrid(t)
	res1, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	withTL := telemetryGrid(t)
	var sink timeseries.MemorySink
	withTL.Telemetry = &Telemetry{Interval: time.Second, Sink: &sink}
	res2, err := Run(withTL)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := res1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := res2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("telemetry changed the aggregate results")
	}
}
