package batch

import (
	"path/filepath"
	"testing"
	"time"

	"rica/internal/durable"
	"rica/internal/experiment"
	"rica/internal/scenario"
)

// TestManifestCreationSyncsDir: creating a fresh manifest journal must
// fsync the parent directory, or a machine crash can forget the rename
// chain that made the journal exist at all. Regression test for the
// missing-dir-sync durability gap; uses the durable package's test
// observer, so it must not run in parallel with other sync users.
func TestManifestCreationSyncsDir(t *testing.T) {
	dir := t.TempDir()
	var synced []string
	durable.OnSync = func(d string) { synced = append(synced, d) }
	defer func() { durable.OnSync = nil }()

	_, err := Run(Config{
		Scenarios: []scenario.Spec{testSpec(2 * time.Second)},
		Protocols: []experiment.Protocol{experiment.RICA},
		Trials:    1,
		Manifest:  filepath.Join(dir, "grid.manifest"),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	found := false
	for _, d := range synced {
		if d == dir {
			found = true
		}
	}
	if !found {
		t.Fatalf("fresh manifest did not sync its directory; synced = %v", synced)
	}

	// Re-opening an existing journal appends only — no new entry, no
	// extra directory sync required (and none should happen).
	synced = nil
	if _, err := Run(Config{
		Scenarios: []scenario.Spec{testSpec(2 * time.Second)},
		Protocols: []experiment.Protocol{experiment.RICA},
		Trials:    1,
		Manifest:  filepath.Join(dir, "grid.manifest"),
	}); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if len(synced) != 0 {
		t.Fatalf("append-only reopen synced %v, want none", synced)
	}
}
