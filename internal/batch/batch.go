// Package batch mass-executes scenarios. It expands a scenario ×
// protocol × seed grid into independent cells, runs them across a worker
// pool sized to the hardware (or an explicit parallelism cap), streams
// progress as cells finish, and folds the per-cell summaries into
// mean/p50/p95 aggregates per (scenario, protocol). Every cell's seed is
// a deterministic function of the grid, and results are assembled in grid
// order regardless of completion order — so the same specs and base seed
// produce bit-identical exported output no matter how many workers ran.
package batch

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"rica/internal/experiment"
	"rica/internal/metrics"
	"rica/internal/obs"
	"rica/internal/scenario"
	"rica/internal/timeseries"
	"rica/internal/world"
)

// Config describes one batch: the grid to expand and how hard to run it.
type Config struct {
	// Scenarios and Protocols span the grid; empty Protocols means the
	// paper's full five-protocol comparison set.
	Scenarios []scenario.Spec
	Protocols []experiment.Protocol
	// Trials is the number of seeds per (scenario, protocol) cell;
	// defaults to 3.
	Trials int
	// BaseSeed offsets the trial seeds: trial t runs seed BaseSeed+t, the
	// same universe across scenarios and protocols so comparisons share
	// sample paths. The zero value is a sentinel for the default (1); to
	// start the grid at the actual seed 0, set SeedZero.
	BaseSeed int64
	// SeedZero forces BaseSeed 0, which the BaseSeed field's zero
	// sentinel cannot express on its own. Ignored when BaseSeed is
	// nonzero (mirrors SimConfig.SeedZero).
	SeedZero bool
	// Workers caps concurrent cells; 0 means GOMAXPROCS.
	Workers int
	// OnProgress, if set, is called after every finished cell (from worker
	// goroutines, serialized by the engine).
	OnProgress func(p Progress)
	// Telemetry, when non-nil, makes every cell collect an interval
	// timeline alongside its aggregate row. Timelines are emitted to the
	// sink serially, in grid order, after all cells complete — so equal
	// batches stream byte-identical telemetry regardless of Workers.
	Telemetry *Telemetry
	// Shards, when ≥ 2, runs every cell's broadcast geometry scans across
	// that many spatial shards inside the run (see rica.SimConfig.Shards).
	// Orthogonal to Workers: Workers parallelizes across cells, Shards
	// within each. Cell summaries are bit-identical for every value, so
	// exports stay reproducible regardless of either knob.
	Shards int
	// Hub, when non-nil, has every in-flight cell's observability registry
	// attached for the duration of its run, so live surfaces (the stats
	// heartbeat, the HTTP endpoint) see batch-wide aggregate counters while
	// the grid executes. Purely additive: per-cell snapshots stay exactly
	// as deterministic as without a hub.
	Hub *obs.Hub
}

// Telemetry configures per-cell timeline collection for a batch.
type Telemetry struct {
	// Interval is the bucket width; zero means timeseries.DefaultInterval.
	Interval time.Duration
	// Sink receives one Emit per cell, in grid order. Required.
	Sink timeseries.Sink
	// Streaming switches each cell's delay percentiles to the
	// bounded-memory histogram path (see timeseries.NewStreamingCollector):
	// constant memory per interval at ~3 % relative quantile error.
	Streaming bool
}

// Progress reports one finished cell.
type Progress struct {
	Done, Total int
	Cell        CellResult
}

// CellResult is one (scenario, protocol, seed) run's headline numbers.
type CellResult struct {
	Scenario     string  `json:"scenario"`
	Protocol     string  `json:"protocol"`
	Seed         int64   `json:"seed"`
	Generated    int     `json:"generated"`
	Delivered    int     `json:"delivered"`
	DeliveryPct  float64 `json:"delivery_pct"`
	AvgDelayMs   float64 `json:"avg_delay_ms"`
	P99DelayMs   float64 `json:"p99_delay_ms"`
	OverheadKbps float64 `json:"overhead_kbps"`
	GoodputKbps  float64 `json:"goodput_kbps"`
	AvgHops      float64 `json:"avg_hops"`
	// Events is the kernel's dispatched-event count for the run —
	// deterministic, so equal cells export byte-identically.
	Events uint64 `json:"events"`
	// Obs is the cell's end-of-run observability snapshot. Every field in
	// it is deterministic per seed (the process-global pool stats are
	// deliberately excluded), so it exports byte-identically too.
	Obs *obs.Snapshot `json:"obs,omitempty"`
}

// Stat is one metric's cross-trial distribution snapshot.
type Stat struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// Aggregate folds one (scenario, protocol) cell group across its trials.
type Aggregate struct {
	Scenario     string `json:"scenario"`
	Protocol     string `json:"protocol"`
	Trials       int    `json:"trials"`
	DeliveryPct  Stat   `json:"delivery_pct"`
	AvgDelayMs   Stat   `json:"avg_delay_ms"`
	OverheadKbps Stat   `json:"overhead_kbps"`
	GoodputKbps  Stat   `json:"goodput_kbps"`
}

// Result is the whole batch's output, in deterministic grid order.
type Result struct {
	BaseSeed   int64        `json:"base_seed"`
	Trials     int          `json:"trials"`
	Cells      []CellResult `json:"cells"`
	Aggregates []Aggregate  `json:"aggregates"`
}

// cell is one expanded grid point.
type cell struct {
	spec     scenario.Spec
	cfg      world.Config
	protocol experiment.Protocol
	seed     int64
}

// Run expands and executes the grid. It fails fast — before running
// anything — if any scenario does not compile.
func Run(cfg Config) (Result, error) {
	if len(cfg.Scenarios) == 0 {
		return Result{}, fmt.Errorf("batch: no scenarios")
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Sink == nil {
		return Result{}, fmt.Errorf("batch: Telemetry needs a Sink")
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = experiment.AllProtocols()
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 3
	}
	baseSeed := cfg.BaseSeed
	if baseSeed == 0 && !cfg.SeedZero {
		baseSeed = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Compile every scenario once, then expand scenario-major so exported
	// rows group naturally.
	var cells []cell
	for _, spec := range cfg.Scenarios {
		wcfg, err := spec.Compile()
		if err != nil {
			return Result{}, err
		}
		for _, p := range protocols {
			for t := 0; t < trials; t++ {
				c := cell{spec: spec, cfg: wcfg, protocol: p, seed: baseSeed + int64(t)}
				cells = append(cells, c)
			}
		}
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	results := make([]CellResult, len(cells))
	var timelines []timeseries.Timeline
	if cfg.Telemetry != nil {
		timelines = make([]timeseries.Timeline, len(cells))
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		progress sync.Mutex
		done     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var tl *timeseries.Timeline
				if timelines != nil {
					tl = &timelines[i]
				}
				results[i] = runCell(cells[i], &cfg, tl)
				if cfg.OnProgress != nil {
					progress.Lock()
					done++
					cfg.OnProgress(Progress{Done: done, Total: len(cells), Cell: results[i]})
					progress.Unlock()
				}
			}
		}()
	}
	for i := range cells {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	// Telemetry drains serially in grid order: each cell collected into
	// its own collector, so the emitted byte stream is independent of how
	// many workers ran or in what order cells finished.
	if cfg.Telemetry != nil {
		for i, c := range cells {
			run := timeseries.Run{Scenario: c.spec.Name, Protocol: c.protocol.String(), Seed: c.seed}
			if err := cfg.Telemetry.Sink.Emit(run, timelines[i]); err != nil {
				return Result{}, fmt.Errorf("batch: telemetry sink: %w", err)
			}
		}
	}

	return Result{
		BaseSeed:   baseSeed,
		Trials:     trials,
		Cells:      results,
		Aggregates: aggregate(results, len(cfg.Scenarios), len(protocols), trials),
	}, nil
}

// runCell executes one fully deterministic simulation; when telemetry is
// enabled it attaches a fresh per-run collector and stores the finished
// timeline through tl.
func runCell(c cell, cfg *Config, tl *timeseries.Timeline) CellResult {
	tele, hub := cfg.Telemetry, cfg.Hub
	wcfg := c.cfg // each cell mutates its own copy
	wcfg.Seed = c.seed
	wcfg.Shards = cfg.Shards
	if tele != nil {
		if tele.Streaming {
			wcfg.Timeseries = timeseries.NewStreamingCollector(tele.Interval, wcfg.Duration)
		} else {
			wcfg.Timeseries = timeseries.NewCollector(tele.Interval, wcfg.Duration)
		}
	}
	wcfg.Obs = obs.NewRegistry()
	if hub != nil {
		hub.Attach(wcfg.Obs)
		defer hub.Detach(wcfg.Obs)
	}
	s := world.New(wcfg, experiment.Factory(c.protocol, c.spec.Traffic.Rate)).Run()
	if tele != nil {
		*tl = wcfg.Timeseries.Timeline()
	}
	return CellResult{
		Scenario:     c.spec.Name,
		Protocol:     c.protocol.String(),
		Seed:         c.seed,
		Generated:    s.Generated,
		Delivered:    s.Delivered,
		DeliveryPct:  s.DeliveryRatio * 100,
		AvgDelayMs:   float64(s.AvgDelay) / float64(time.Millisecond),
		P99DelayMs:   float64(s.Delay.P99) / float64(time.Millisecond),
		OverheadKbps: s.OverheadBps / 1000,
		GoodputKbps:  s.GoodputBps / 1000,
		AvgHops:      s.AvgHops,
		Events:       s.Events,
		Obs:          s.Obs,
	}
}

// aggregate folds the grid-ordered cell rows into per-(scenario,
// protocol) statistics.
func aggregate(cells []CellResult, nScenarios, nProtocols, trials int) []Aggregate {
	out := make([]Aggregate, 0, nScenarios*nProtocols)
	for g := 0; g+trials <= len(cells); g += trials {
		group := cells[g : g+trials]
		a := Aggregate{
			Scenario: group[0].Scenario,
			Protocol: group[0].Protocol,
			Trials:   trials,
		}
		a.DeliveryPct = stat(group, func(c CellResult) float64 { return c.DeliveryPct })
		a.AvgDelayMs = stat(group, func(c CellResult) float64 { return c.AvgDelayMs })
		a.OverheadKbps = stat(group, func(c CellResult) float64 { return c.OverheadKbps })
		a.GoodputKbps = stat(group, func(c CellResult) float64 { return c.GoodputKbps })
		out = append(out, a)
	}
	return out
}

// stat projects one metric out of the group and snapshots its
// distribution via the metrics package's estimators.
func stat(group []CellResult, get func(CellResult) float64) Stat {
	xs := make([]float64, len(group))
	for i, c := range group {
		xs[i] = get(c)
	}
	return Stat{
		Mean: metrics.Mean(xs),
		P50:  metrics.Quantile(xs, 0.50),
		P95:  metrics.Quantile(xs, 0.95),
	}
}
