// Package batch mass-executes scenarios. It expands a scenario ×
// protocol × seed grid into independent cells, runs them across a worker
// pool sized to the hardware (or an explicit parallelism cap), streams
// progress as cells finish, and folds the per-cell summaries into
// mean/p50/p95 aggregates per (scenario, protocol). Every cell's seed is
// a deterministic function of the grid, and results are assembled in grid
// order regardless of completion order — so the same specs and base seed
// produce bit-identical exported output no matter how many workers ran.
package batch

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"rica/internal/experiment"
	"rica/internal/metrics"
	"rica/internal/obs"
	"rica/internal/scenario"
	"rica/internal/timeseries"
	"rica/internal/world"
)

// Config describes one batch: the grid to expand and how hard to run it.
type Config struct {
	// Scenarios and Protocols span the grid; empty Protocols means the
	// paper's full five-protocol comparison set.
	Scenarios []scenario.Spec
	Protocols []experiment.Protocol
	// Trials is the number of seeds per (scenario, protocol) cell;
	// defaults to 3.
	Trials int
	// BaseSeed offsets the trial seeds: trial t runs seed BaseSeed+t, the
	// same universe across scenarios and protocols so comparisons share
	// sample paths. The zero value is a sentinel for the default (1); to
	// start the grid at the actual seed 0, set SeedZero.
	BaseSeed int64
	// SeedZero forces BaseSeed 0, which the BaseSeed field's zero
	// sentinel cannot express on its own. Ignored when BaseSeed is
	// nonzero (mirrors SimConfig.SeedZero).
	SeedZero bool
	// Workers caps concurrent cells; 0 means GOMAXPROCS.
	Workers int
	// OnProgress, if set, is called after every finished cell (from worker
	// goroutines, serialized by the engine).
	OnProgress func(p Progress)
	// Telemetry, when non-nil, makes every cell collect an interval
	// timeline alongside its aggregate row. Timelines are emitted to the
	// sink serially, in grid order, after all cells complete — so equal
	// batches stream byte-identical telemetry regardless of Workers.
	Telemetry *Telemetry
	// Shards, when ≥ 2, runs every cell's broadcast geometry scans across
	// that many spatial shards inside the run (see rica.SimConfig.Shards).
	// Orthogonal to Workers: Workers parallelizes across cells, Shards
	// within each. Cell summaries are bit-identical for every value, so
	// exports stay reproducible regardless of either knob.
	Shards int
	// Hub, when non-nil, has every in-flight cell's observability registry
	// attached for the duration of its run, so live surfaces (the stats
	// heartbeat, the HTTP endpoint) see batch-wide aggregate counters while
	// the grid executes. Purely additive: per-cell snapshots stay exactly
	// as deterministic as without a hub.
	Hub *obs.Hub
	// CellTimeout, when positive, bounds each cell's wall-clock runtime.
	// A cell that exceeds it is retried (the attempt's goroutine is
	// abandoned) up to CellRetries more times with exponential backoff;
	// if every attempt times out the cell is quarantined as poisoned
	// (CellResult.Error set) and the rest of the grid keeps running.
	CellTimeout time.Duration
	// CellRetries caps extra attempts after a timeout: 0 means the
	// default (2), negative disables retries. Panics are never retried —
	// cells are deterministic, so a run that panicked once panics again;
	// the cell is quarantined immediately with its stack.
	CellRetries int
	// Manifest, when set, journals every finished cell to this
	// append-only JSON-Lines file, fsync'd per line. Re-running the same
	// grid with the same manifest path resumes it: journaled cells are
	// restored verbatim instead of recomputed, so a killed batch loses
	// at most the cells that were in flight. A manifest written by a
	// different grid is rejected. Mutually exclusive with Telemetry
	// (timelines are not journaled).
	Manifest string
	// Stop, when non-nil, ends the batch gracefully when closed: no new
	// cells start, in-flight cells finish (and are journaled), and Run
	// returns the partial result with an error wrapping ErrInterrupted.
	Stop <-chan struct{}
}

// ErrInterrupted is wrapped by Run's error when Config.Stop ended the
// batch before every cell ran. The returned Result holds every cell
// that did finish; with a manifest, re-running resumes from them.
var ErrInterrupted = errors.New("batch: interrupted")

// Telemetry configures per-cell timeline collection for a batch.
type Telemetry struct {
	// Interval is the bucket width; zero means timeseries.DefaultInterval.
	Interval time.Duration
	// Sink receives one Emit per cell, in grid order. Required.
	Sink timeseries.Sink
	// Streaming switches each cell's delay percentiles to the
	// bounded-memory histogram path (see timeseries.NewStreamingCollector):
	// constant memory per interval at ~3 % relative quantile error.
	Streaming bool
}

// Progress reports one finished cell.
type Progress struct {
	Done, Total int
	Cell        CellResult
}

// CellResult is one (scenario, protocol, seed) run's headline numbers.
type CellResult struct {
	Scenario     string  `json:"scenario"`
	Protocol     string  `json:"protocol"`
	Seed         int64   `json:"seed"`
	Generated    int     `json:"generated"`
	Delivered    int     `json:"delivered"`
	DeliveryPct  float64 `json:"delivery_pct"`
	AvgDelayMs   float64 `json:"avg_delay_ms"`
	P99DelayMs   float64 `json:"p99_delay_ms"`
	OverheadKbps float64 `json:"overhead_kbps"`
	GoodputKbps  float64 `json:"goodput_kbps"`
	AvgHops      float64 `json:"avg_hops"`
	// Events is the kernel's dispatched-event count for the run —
	// deterministic, so equal cells export byte-identically.
	Events uint64 `json:"events"`
	// Obs is the cell's end-of-run observability snapshot. Every field in
	// it is deterministic per seed (the process-global pool stats are
	// deliberately excluded), so it exports byte-identically too.
	Obs *obs.Snapshot `json:"obs,omitempty"`
	// Error marks a poisoned cell: its run panicked or timed out and was
	// quarantined so the rest of the grid could finish. Poisoned cells
	// carry no measurements and are excluded from aggregates.
	Error string `json:"error,omitempty"`
	// Stack is the recovered panic's stack trace (panic poisoning only).
	Stack string `json:"stack,omitempty"`
}

// Poisoned reports whether the cell was quarantined instead of measured.
func (c CellResult) Poisoned() bool { return c.Error != "" }

// Stat is one metric's cross-trial distribution snapshot.
type Stat struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// Aggregate folds one (scenario, protocol) cell group across its trials.
type Aggregate struct {
	Scenario     string `json:"scenario"`
	Protocol     string `json:"protocol"`
	Trials       int    `json:"trials"`
	DeliveryPct  Stat   `json:"delivery_pct"`
	AvgDelayMs   Stat   `json:"avg_delay_ms"`
	OverheadKbps Stat   `json:"overhead_kbps"`
	GoodputKbps  Stat   `json:"goodput_kbps"`
}

// Result is the whole batch's output, in deterministic grid order.
type Result struct {
	BaseSeed   int64        `json:"base_seed"`
	Trials     int          `json:"trials"`
	Cells      []CellResult `json:"cells"`
	Aggregates []Aggregate  `json:"aggregates"`
	// Restored counts cells replayed from the manifest journal instead
	// of recomputed. It is deliberately absent from the export: it
	// records this process's resume history, not the grid's results, and
	// exports must be byte-identical whether or not a run was resumed
	// (the serve chaos test holds them to that). It is reported on
	// stderr instead. Poisoned counts quarantined cells and IS exported:
	// the same grid poisons the same cells.
	Restored int `json:"-"`
	Poisoned int `json:"poisoned,omitempty"`
}

// cell is one expanded grid point.
type cell struct {
	spec     scenario.Spec
	cfg      world.Config
	protocol experiment.Protocol
	seed     int64
}

// Run expands and executes the grid. It fails fast — before running
// anything — if any scenario does not compile.
func Run(cfg Config) (Result, error) {
	if len(cfg.Scenarios) == 0 {
		return Result{}, fmt.Errorf("batch: no scenarios")
	}
	if cfg.Telemetry != nil && cfg.Telemetry.Sink == nil {
		return Result{}, fmt.Errorf("batch: Telemetry needs a Sink")
	}
	if cfg.Manifest != "" && cfg.Telemetry != nil {
		return Result{}, fmt.Errorf("batch: Manifest and Telemetry are mutually exclusive (timelines are not journaled)")
	}
	protocols := cfg.Protocols
	if len(protocols) == 0 {
		protocols = experiment.AllProtocols()
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 3
	}
	baseSeed := cfg.BaseSeed
	if baseSeed == 0 && !cfg.SeedZero {
		baseSeed = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Compile every scenario once, then expand scenario-major so exported
	// rows group naturally.
	var cells []cell
	for _, spec := range cfg.Scenarios {
		wcfg, err := spec.Compile()
		if err != nil {
			return Result{}, err
		}
		for _, p := range protocols {
			for t := 0; t < trials; t++ {
				c := cell{spec: spec, cfg: wcfg, protocol: p, seed: baseSeed + int64(t)}
				cells = append(cells, c)
			}
		}
	}
	if workers > len(cells) {
		workers = len(cells)
	}

	// Open the manifest journal (when configured) and restore every cell
	// a previous run of this exact grid already journaled.
	var man *manifest
	restoredCells := map[int]CellResult{}
	if cfg.Manifest != "" {
		var err error
		man, restoredCells, err = openManifest(cfg.Manifest, gridSignature(cells, baseSeed, trials, cfg.Shards), len(cells))
		if err != nil {
			return Result{}, err
		}
		defer man.Close()
	}

	results := make([]CellResult, len(cells))
	finished := make([]bool, len(cells)) // distinct indices per worker; read after wg.Wait
	var timelines []timeseries.Timeline
	if cfg.Telemetry != nil {
		timelines = make([]timeseries.Timeline, len(cells))
	}
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		progress sync.Mutex
		done     int
		manErr   error
	)
	report := func(i int) {
		if cfg.OnProgress == nil {
			return
		}
		progress.Lock()
		done++
		cfg.OnProgress(Progress{Done: done, Total: len(cells), Cell: results[i]})
		progress.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				var tl *timeseries.Timeline
				if timelines != nil {
					tl = &timelines[i]
				}
				results[i] = runCellResilient(cells[i], &cfg, tl)
				finished[i] = true
				if man != nil {
					if err := man.record(i, results[i]); err != nil {
						progress.Lock()
						if manErr == nil {
							manErr = err
						}
						progress.Unlock()
					}
				}
				report(i)
			}
		}()
	}
	for i, rc := range restoredCells {
		results[i] = rc
		finished[i] = true
		report(i)
	}
	stopped := func() bool {
		select {
		case <-cfg.Stop:
			return true
		default:
			return false
		}
	}
	interrupted := false
	for i := range cells {
		if _, ok := restoredCells[i]; ok {
			continue
		}
		if stopped() {
			interrupted = true
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	res := Result{
		BaseSeed: baseSeed,
		Trials:   trials,
		Cells:    results,
		Restored: len(restoredCells),
	}
	for _, c := range results {
		if c.Poisoned() {
			res.Poisoned++
		}
	}
	if manErr != nil {
		return res, fmt.Errorf("batch: manifest journal: %w", manErr)
	}
	// Telemetry drains serially in grid order: each cell collected into
	// its own collector, so the emitted byte stream is independent of how
	// many workers ran or in what order cells finished. An interrupted
	// batch emits the contiguous finished prefix — a deterministic prefix
	// of the uninterrupted batch's stream — rather than dropping it.
	if cfg.Telemetry != nil {
		for i, c := range cells {
			if !finished[i] {
				break
			}
			run := timeseries.Run{Scenario: c.spec.Name, Protocol: c.protocol.String(), Seed: c.seed}
			if err := cfg.Telemetry.Sink.Emit(run, timelines[i]); err != nil {
				return res, fmt.Errorf("batch: telemetry sink: %w", err)
			}
		}
	}
	if interrupted {
		// Partial result: every finished cell is present (and journaled);
		// aggregates over a half-run grid would mislead, so they stay empty.
		return res, fmt.Errorf("%w: stopped before the grid completed", ErrInterrupted)
	}

	res.Aggregates = aggregate(results, len(cfg.Scenarios), len(protocols), trials)
	return res, nil
}

// testCellHook, when non-nil, runs at the top of every cell attempt —
// the tests' injection point for panics and stalls. Never set outside
// tests.
var testCellHook func(scenarioName string, protocol experiment.Protocol, seed int64)

// runCellResilient executes one cell under the crash shield: panics are
// quarantined immediately (deterministic cells panic again on retry),
// wall-clock timeouts are retried with capped, jittered exponential
// backoff (see backoff.go) up to the configured attempt budget, then
// quarantined.
func runCellResilient(c cell, cfg *Config, tl *timeseries.Timeline) CellResult {
	retries := cfg.CellRetries
	switch {
	case retries == 0:
		retries = 2
	case retries < 0:
		retries = 0
	}
	var rng *rand.Rand // lazily seeded; most cells never retry
	for attempt := 0; ; attempt++ {
		res, timedOut := runCellAttempt(c, cfg, tl)
		if !timedOut {
			return res
		}
		if attempt >= retries {
			return poisonCell(c, fmt.Sprintf("timed out after %d attempt(s) of %v", attempt+1, cfg.CellTimeout), "")
		}
		if rng == nil {
			rng = retryRNG(c)
		}
		time.Sleep(retryBackoff(attempt, rng))
	}
}

// runCellAttempt is one supervised try: the simulation runs in its own
// goroutine reporting through a buffered channel, so when the deadline
// fires the supervisor walks away and the abandoned attempt (which
// cannot be killed) parks its late result harmlessly in the buffer. The
// timeline lands in an attempt-local variable and is only copied out on
// success, keeping abandoned attempts from scribbling into shared rows.
func runCellAttempt(c cell, cfg *Config, tl *timeseries.Timeline) (CellResult, bool) {
	type outcome struct {
		res CellResult
		tl  timeseries.Timeline
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{res: poisonCell(c, fmt.Sprintf("panic: %v", r), string(debug.Stack()))}
			}
		}()
		if testCellHook != nil {
			testCellHook(c.spec.Name, c.protocol, c.seed)
		}
		var local timeseries.Timeline
		var lp *timeseries.Timeline
		if tl != nil {
			lp = &local
		}
		ch <- outcome{res: runCell(c, cfg, lp), tl: local}
	}()
	deliver := func(o outcome) (CellResult, bool) {
		if tl != nil {
			*tl = o.tl
		}
		return o.res, false
	}
	if cfg.CellTimeout <= 0 {
		return deliver(<-ch)
	}
	timer := time.NewTimer(cfg.CellTimeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return deliver(o)
	case <-timer.C:
		return CellResult{}, true
	}
}

// poisonCell builds the quarantine row for a cell that could not be
// measured: grid coordinates for attribution, the failure, and (for
// panics) the stack.
func poisonCell(c cell, reason, stack string) CellResult {
	return CellResult{
		Scenario: c.spec.Name,
		Protocol: c.protocol.String(),
		Seed:     c.seed,
		Error:    reason,
		Stack:    stack,
	}
}

// runCell executes one fully deterministic simulation; when telemetry is
// enabled it attaches a fresh per-run collector and stores the finished
// timeline through tl.
func runCell(c cell, cfg *Config, tl *timeseries.Timeline) CellResult {
	tele, hub := cfg.Telemetry, cfg.Hub
	wcfg := c.cfg // each cell mutates its own copy
	wcfg.Seed = c.seed
	wcfg.Shards = cfg.Shards
	if tele != nil {
		if tele.Streaming {
			wcfg.Timeseries = timeseries.NewStreamingCollector(tele.Interval, wcfg.Duration)
		} else {
			wcfg.Timeseries = timeseries.NewCollector(tele.Interval, wcfg.Duration)
		}
	}
	wcfg.Obs = obs.NewRegistry()
	if hub != nil {
		hub.Attach(wcfg.Obs)
		defer hub.Detach(wcfg.Obs)
	}
	s := world.New(wcfg, experiment.Factory(c.protocol, c.spec.Traffic.Rate)).Run()
	if tele != nil {
		*tl = wcfg.Timeseries.Timeline()
	}
	return CellResult{
		Scenario:     c.spec.Name,
		Protocol:     c.protocol.String(),
		Seed:         c.seed,
		Generated:    s.Generated,
		Delivered:    s.Delivered,
		DeliveryPct:  s.DeliveryRatio * 100,
		AvgDelayMs:   float64(s.AvgDelay) / float64(time.Millisecond),
		P99DelayMs:   float64(s.Delay.P99) / float64(time.Millisecond),
		OverheadKbps: s.OverheadBps / 1000,
		GoodputKbps:  s.GoodputBps / 1000,
		AvgHops:      s.AvgHops,
		Events:       s.Events,
		Obs:          s.Obs,
	}
}

// aggregate folds the grid-ordered cell rows into per-(scenario,
// protocol) statistics. Poisoned cells carry no measurements, so they
// are excluded and the group's Trials reports the healthy count.
func aggregate(cells []CellResult, nScenarios, nProtocols, trials int) []Aggregate {
	out := make([]Aggregate, 0, nScenarios*nProtocols)
	for g := 0; g+trials <= len(cells); g += trials {
		group := cells[g : g+trials]
		var healthy []CellResult
		for _, c := range group {
			if !c.Poisoned() {
				healthy = append(healthy, c)
			}
		}
		a := Aggregate{
			Scenario: group[0].Scenario,
			Protocol: group[0].Protocol,
			Trials:   len(healthy),
		}
		if len(healthy) > 0 {
			a.DeliveryPct = stat(healthy, func(c CellResult) float64 { return c.DeliveryPct })
			a.AvgDelayMs = stat(healthy, func(c CellResult) float64 { return c.AvgDelayMs })
			a.OverheadKbps = stat(healthy, func(c CellResult) float64 { return c.OverheadKbps })
			a.GoodputKbps = stat(healthy, func(c CellResult) float64 { return c.GoodputKbps })
		}
		out = append(out, a)
	}
	return out
}

// stat projects one metric out of the group and snapshots its
// distribution via the metrics package's estimators.
func stat(group []CellResult, get func(CellResult) float64) Stat {
	xs := make([]float64, len(group))
	for i, c := range group {
		xs[i] = get(c)
	}
	return Stat{
		Mean: metrics.Mean(xs),
		P50:  metrics.Quantile(xs, 0.50),
		P95:  metrics.Quantile(xs, 0.95),
	}
}
