package sim

import (
	"math/rand"
	"reflect"
	"unsafe"
)

// This file makes stream *creation* cheap without changing a single drawn
// value. math/rand's NewSource seeds a 607-word additive generator by
// walking a Park–Miller LCG (x' = 48271·x mod 2³¹−1) through 1841 serial
// steps — a dependency chain the CPU cannot pipeline, and the dominant
// cost of creating the thousands of lazily-born fading-link streams a
// trial population needs. But the k-th value of a Lehmer chain is just
// 48271^k·x₀ mod M: with the multiplier powers precomputed, all 1841
// values are independent modmuls of the same x₀, which the CPU overlaps
// freely. fastSource reproduces math/rand's rngSource bit-for-bit — the
// identical vec, tap/feed walk, and Uint64 mixing — so every rand.Rand
// built on top draws the identical sequence; an init-time self-check
// verifies this against math/rand itself and silently falls back to the
// stock source if the replication ever goes stale.

const (
	lcgM = 1<<31 - 1 // Park–Miller modulus (Mersenne prime 2³¹−1)
	lcgA = 48271     // Park–Miller multiplier (the MINSTD revision math/rand uses)

	rngLen   = 607 // additive generator degree, as in math/rand
	rngTap   = 273 // additive generator tap, as in math/rand
	rngMax   = 1 << 63
	rngMask  = rngMax - 1
	seedBase = 89482311 // math/rand's replacement for a zero LCG seed

	// lcgSteps is how many LCG values one seeding consumes: a 20-step
	// warmup plus three values per vec word.
	lcgSteps = 20 + 3*rngLen
)

// lcgPow[k] = 48271^k mod M, for jumping straight to the k-th chain value.
var lcgPow [lcgSteps + 1]int64

// rngCooked is math/rand's additive-entropy table, recovered at init from
// an observed stdlib source (see recoverCooked); fastSource xors it into
// the seeded vec exactly as rngSource does.
var rngCooked [rngLen]uint64

// fastSourceOK reports whether the init-time self-check proved fastSource
// identical to math/rand's source. When false, Streams falls back to the
// stock rand.NewSource.
var fastSourceOK = false

// mulmod returns a·b mod 2³¹−1 for canonical inputs in [0, M). The
// product fits int64; two shift-and-add folds reduce it (Mersenne
// modulus), landing in the same canonical range the Schrage-form LCG in
// math/rand produces.
func mulmod(a, b int64) int64 {
	p := a * b
	r := (p >> 31) + (p & lcgM)
	r = (r >> 31) + (r & lcgM)
	if r >= lcgM {
		r -= lcgM
	}
	return r
}

// lcgSeed0 maps an int64 seed to the LCG's starting value, exactly as
// rngSource.Seed does.
func lcgSeed0(seed int64) int64 {
	seed %= lcgM
	if seed < 0 {
		seed += lcgM
	}
	if seed == 0 {
		seed = seedBase
	}
	return seed
}

// fastSource is a bit-exact replica of math/rand's rngSource with O(1)-
// depth seeding. It implements rand.Source64.
type fastSource struct {
	tap, feed int
	vec       [rngLen]int64
}

var _ rand.Source64 = (*fastSource)(nil)

// newFastSource returns a seeded source whose sequence is identical to
// rand.NewSource(seed)'s.
func newFastSource(seed int64) *fastSource {
	s := &fastSource{}
	s.Seed(seed)
	return s
}

// Seed re-seeds, reproducing rngSource.Seed's vec verbatim: vec[i] mixes
// three LCG values (bits 40, 20, 0) with the cooked table. The LCG values
// are jumped to independently instead of chained.
func (s *fastSource) Seed(seed int64) {
	s.tap = 0
	s.feed = rngLen - rngTap
	x0 := lcgSeed0(seed)
	for i := 0; i < rngLen; i++ {
		base := 20 + 3*i
		u := uint64(mulmod(lcgPow[base+1], x0)) << 40
		u ^= uint64(mulmod(lcgPow[base+2], x0)) << 20
		u ^= uint64(mulmod(lcgPow[base+3], x0))
		u ^= rngCooked[i]
		s.vec[i] = int64(u)
	}
}

// Uint64 mirrors rngSource.Uint64: one additive-generator step.
func (s *fastSource) Uint64() uint64 {
	s.tap--
	if s.tap < 0 {
		s.tap += rngLen
	}
	s.feed--
	if s.feed < 0 {
		s.feed += rngLen
	}
	x := s.vec[s.feed] + s.vec[s.tap]
	s.vec[s.feed] = x
	return uint64(x)
}

// Int63 mirrors rngSource.Int63.
func (s *fastSource) Int63() int64 { return int64(s.Uint64() & rngMask) }

// stdRngLayout mirrors math/rand.rngSource's memory layout, which has
// been stable since Go 1 (the package's sequences are frozen by the
// compatibility promise). Used only to observe one seeded vec at init;
// if the layout or algorithm ever changes, the self-check below fails
// and fastSource is simply not used.
type stdRngLayout struct {
	tap, feed int
	vec       [rngLen]int64
}

// recoverCooked derives math/rand's cooked entropy table by seeding one
// stdlib source and xor-ing out the known LCG contribution.
func recoverCooked() bool {
	src := rand.NewSource(1)
	v := reflect.ValueOf(src)
	if v.Kind() != reflect.Ptr {
		return false
	}
	// Refuse the cast outright unless the pointee is at least as large as
	// the layout we are about to read — the value checks below would
	// themselves be out-of-bounds reads against a smaller future source.
	if v.Type().Elem().Size() < unsafe.Sizeof(stdRngLayout{}) {
		return false
	}
	std := (*stdRngLayout)(unsafe.Pointer(v.Pointer()))
	if std.tap != 0 || std.feed != rngLen-rngTap {
		return false // not the layout we expect: leave fastSource disabled
	}
	x0 := lcgSeed0(1)
	for i := 0; i < rngLen; i++ {
		base := 20 + 3*i
		u := uint64(mulmod(lcgPow[base+1], x0)) << 40
		u ^= uint64(mulmod(lcgPow[base+2], x0)) << 20
		u ^= uint64(mulmod(lcgPow[base+3], x0))
		rngCooked[i] = uint64(std.vec[i]) ^ u
	}
	return true
}

// verifyFastSource proves the replica on a spread of seeds: every draw of
// the first few vec laps must match the stdlib source bit-for-bit.
func verifyFastSource() bool {
	seeds := []int64{0, 1, 2, -7, seedBase, lcgM, lcgM + 1, 1<<62 + 12345, -1 << 40}
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		got := newFastSource(seed)
		for k := 0; k < 2*rngLen; k++ {
			if got.Uint64() != ref.Uint64() {
				return false
			}
		}
	}
	return true
}

func init() {
	p := int64(1)
	for k := 1; k <= lcgSteps; k++ {
		p = mulmod(p, lcgA)
		lcgPow[k] = p
	}
	fastSourceOK = recoverCooked() && verifyFastSource()
}

// newSource returns the fastest available source for seed whose sequence
// is bit-identical to rand.NewSource(seed)'s.
func newSource(seed int64) rand.Source {
	if fastSourceOK {
		return newFastSource(seed)
	}
	return rand.NewSource(seed)
}
