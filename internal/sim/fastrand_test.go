package sim

import (
	"math/rand"
	"testing"
)

// TestFastSourceVerified asserts the init-time proof ran and passed on
// this toolchain: if math/rand's source ever changes shape, this fails
// loudly (and Streams silently falls back to the stock source, so
// correctness never depended on it).
func TestFastSourceVerified(t *testing.T) {
	if !fastSourceOK {
		t.Fatal("fastSource self-check failed: jump-ahead seeding no longer matches math/rand")
	}
}

// TestFastSourceMatchesStdlibDraws compares full rand.Rand streams —
// Uint64, Int63n, Float64, NormFloat64, ExpFloat64 — over the replica
// and the stock source across seeds, far past the 607-word lap so the
// additive feedback has fully taken over from the seeded state.
func TestFastSourceMatchesStdlibDraws(t *testing.T) {
	for _, seed := range []int64{0, 1, -1, 42, 1 << 40, -(1 << 50), 1<<31 - 1, 1 << 31} {
		fast := rand.New(newFastSource(seed))
		std := rand.New(rand.NewSource(seed))
		for k := 0; k < 3000; k++ {
			if a, b := fast.Uint64(), std.Uint64(); a != b {
				t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, k, a, b)
			}
			if a, b := fast.Int63n(1_000_003), std.Int63n(1_000_003); a != b {
				t.Fatalf("seed %d draw %d: Int63n %d != %d", seed, k, a, b)
			}
			if a, b := fast.Float64(), std.Float64(); a != b {
				t.Fatalf("seed %d draw %d: Float64 %x != %x", seed, k, a, b)
			}
			if a, b := fast.NormFloat64(), std.NormFloat64(); a != b {
				t.Fatalf("seed %d draw %d: NormFloat64 %x != %x", seed, k, a, b)
			}
			if a, b := fast.ExpFloat64(), std.ExpFloat64(); a != b {
				t.Fatalf("seed %d draw %d: ExpFloat64 %x != %x", seed, k, a, b)
			}
		}
	}
}

// TestFastSourceReseed checks Seed reuses a source correctly: a reseeded
// replica must restart the exact stdlib sequence for the new seed.
func TestFastSourceReseed(t *testing.T) {
	s := newFastSource(1)
	for k := 0; k < 100; k++ {
		s.Uint64()
	}
	s.Seed(999)
	ref := rand.NewSource(999).(rand.Source64)
	for k := 0; k < 1300; k++ {
		if a, b := s.Uint64(), ref.Uint64(); a != b {
			t.Fatalf("draw %d after reseed: %d != %d", k, a, b)
		}
	}
}

// BenchmarkSourceSeedingStd and BenchmarkSourceSeedingFast quantify the
// seeding speedup the lazy fading-link path rides.
func BenchmarkSourceSeedingStd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rand.NewSource(int64(i + 1))
	}
}

func BenchmarkSourceSeedingFast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		newFastSource(int64(i + 1))
	}
}
