package sim

import "math/rand"

// Streams derives independent, deterministic random number streams from a
// single trial seed. Every stochastic component of the simulator (each
// link's fading process, each node's mobility, each traffic flow, each MAC
// backoff source) obtains its own stream, keyed by a stable component
// identifier. This guarantees two properties the experiments rely on:
//
//  1. Reproducibility — a (seed, id) pair always yields the same sequence.
//  2. Isolation — adding a consumer, or reordering draws in one component,
//     never perturbs the sequences seen by other components, so protocol
//     comparisons run against identical mobility and fading sample paths.
type Streams struct {
	seed uint64

	// recs records every created stream in creation order, each with its
	// concrete source when the fast replica is in use. Creation order is
	// deterministic (stream creation is itself simulation work), so the
	// record doubles as the canonical iteration order for checkpoint
	// capture. Sources created through the stock math/rand fallback are
	// recorded with a nil src — their internal state is unreadable, and
	// ExportStates reports the whole factory as unexportable.
	recs []streamRec
}

// streamRec remembers one created stream.
type streamRec struct {
	id  uint64
	src *fastSource // nil when the stock fallback source was used
}

// NewStreams returns a stream factory for the given trial seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: uint64(seed)}
}

// Stream returns the deterministic stream for component id. Calling it
// twice with the same id returns two generators with identical sequences;
// callers should fetch each component's stream exactly once.
//
// The generator is math/rand's lagged-Fibonacci source, seeded through
// the jump-ahead replica in fastrand.go when its init-time verification
// passed — identical draws, a fraction of the seeding cost that
// dominates lazy fading-link creation.
func (s *Streams) Stream(id uint64) *rand.Rand {
	src := newSource(int64(mix(s.seed, id)))
	fs, _ := src.(*fastSource)
	s.recs = append(s.recs, streamRec{id: id, src: fs})
	return rand.New(src)
}

// ExportStates snapshots every stream created so far, in creation
// order, without advancing any of them. ok is false when any stream
// rode the stock math/rand fallback (its state cannot be read) — the
// caller should report checkpointing unsupported rather than write a
// snapshot that cannot be verified.
func (s *Streams) ExportStates() (states []StreamState, ok bool) {
	states = make([]StreamState, 0, len(s.recs))
	for _, rec := range s.recs {
		if rec.src == nil {
			return nil, false
		}
		st := StreamState{ID: rec.id}
		st.Tap, st.Feed, st.Vec = rec.src.state()
		states = append(states, st)
	}
	return states, true
}

// StreamAt is a convenience for two-part component identifiers, e.g.
// (streamKindChannel, linkIndex).
func (s *Streams) StreamAt(kind, index uint64) *rand.Rand {
	return s.Stream(mix(kind, index))
}

// mix combines two 64-bit values with the SplitMix64 finalizer, giving a
// well-dispersed seed even for small consecutive ids.
func mix(a, b uint64) uint64 {
	z := a ^ (b + 0x9e3779b97f4a7c15 + (a << 6) + (a >> 2))
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
