package sim

import "time"

// event is a single queue entry. Events are ordered by (at, seq): seq is a
// strictly increasing scheduling counter, so two events scheduled for the
// same instant fire in the order they were scheduled (FIFO). Cancellation
// is lazy: cancelled entries stay in the heap and are skipped on pop,
// which makes Timer.Cancel O(1).
type event struct {
	at        time.Duration
	seq       uint64
	fn        Handler
	cancelled bool
}

// eventHeap is a hand-rolled binary min-heap. We avoid container/heap's
// interface indirection because the event queue is the hottest structure
// in the simulator (hundreds of thousands of pushes per run).
type eventHeap []*event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil // allow the popped event to be collected
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return top
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
