package sim

import (
	"math/bits"
	"time"
)

// trailingZeros is bits.TrailingZeros64 under a local name (the bitmap
// scan reads better with it).
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// event is a single queue entry. Events are ordered by (at, seq): seq is a
// strictly increasing scheduling counter, so two events scheduled for the
// same instant fire in the order they were scheduled (FIFO). Cancellation
// is lazy: cancelled entries stay queued and are skipped (and recycled) on
// pop, which makes Timer.Cancel O(1).
//
// Events are pooled: once dispatched or compacted away they return to the
// kernel's free list and are reused by later Schedule calls, so the steady
// state allocates nothing. gen is bumped on every recycle; Timer handles
// remember the gen they were issued for, which turns a stale handle's
// Cancel into a harmless no-op instead of a use-after-free on whatever
// event happens to occupy the slot now. pooled flags free-list membership
// so a double release fails loudly.
type event struct {
	at        time.Duration
	seq       uint64
	gen       uint32
	cancelled bool
	pooled    bool

	// Exactly one of fn (closure path) and afn (argument fast path) is
	// set. afn avoids a per-event closure allocation: the two int
	// arguments index whatever per-layer state arena the caller keeps.
	fn  Handler
	afn ArgHandler
	a0  int
	a1  int
}

// less orders events by (at, seq) — the kernel's total dispatch order.
func (e *event) less(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// Ladder-queue geometry. The near tier is a circular array of buckets
// each spanning 2^ladderShift nanoseconds; together the buckets cover a
// ~268 ms horizon in front of the clock, which comfortably holds the
// dense MAC band (backoff slots, control airtimes, ACK timeouts are all
// single-digit milliseconds). Events beyond the horizon wait in a binary
// heap and migrate into buckets as the clock approaches them — so the
// heap only ever sees the sparse far population (beacon intervals, CSI
// check periods), while the hot band pays O(1) insertion.
const (
	ladderShift   = 20 // bucket width 2^20 ns ≈ 1.05 ms
	ladderBuckets = 256
	ladderMask    = ladderBuckets - 1
)

// ladderWin maps an instant to its bucket window number.
func ladderWin(t time.Duration) int64 { return int64(t) >> ladderShift }

// eventQueue is the kernel's two-tier pending-event store.
type eventQueue struct {
	slots [ladderBuckets][]*event
	// busy is a bitmap of nonempty slots (bit k ↔ slots[k]): pop jumps
	// over runs of empty windows with a trailing-zeros scan instead of
	// probing them one by one — the dominant cost of sparse phases.
	busy [ladderBuckets / 64]uint64
	// slotCount is how many events (live + cancelled) sit in slots.
	slotCount int
	// minWin is a lower bound on the window number of every slotted
	// event; pop scans forward from it and tightens it as windows drain.
	minWin int64
	// far holds events beyond the bucket horizon, ordered by (at, seq).
	far eventHeap
}

// markBusy/clearBusy maintain the nonempty-slot bitmap.
func (q *eventQueue) markBusy(slot int64)  { q.busy[slot>>6] |= 1 << (slot & 63) }
func (q *eventQueue) clearBusy(slot int64) { q.busy[slot>>6] &^= 1 << (slot & 63) }

// nextBusyWin returns the smallest window w' ≥ w whose slot is nonempty.
// The caller guarantees at least one slot is nonempty; every slotted
// event's window lies within [w, w+ladderBuckets) whenever w is a valid
// lower bound, so the circular scan terminates within one lap.
func (q *eventQueue) nextBusyWin(w int64) int64 {
	slot := w & ladderMask
	word := slot >> 6
	// Mask off bits below the starting slot in its word.
	bits := q.busy[word] >> (slot & 63)
	if bits != 0 {
		return w + int64(trailingZeros(bits))
	}
	advanced := 64 - (slot & 63) // to the start of the next word
	for i := int64(1); i <= ladderBuckets/64; i++ {
		bits = q.busy[(word+i)&(ladderBuckets/64-1)]
		if bits != 0 {
			return w + advanced + 64*(i-1) + int64(trailingZeros(bits))
		}
	}
	return w // unreachable under the caller's nonempty guarantee
}

// size reports queued events, cancelled ones included.
func (q *eventQueue) size() int { return q.slotCount + len(q.far) }

// push files ev under the current clock reading now.
func (q *eventQueue) push(ev *event, now time.Duration) {
	w := ladderWin(ev.at)
	if w < ladderWin(now)+ladderBuckets {
		q.pushSlot(ev, w)
		return
	}
	q.far.push(ev)
}

// slotInitCap seeds a bucket's first allocation. Growing a nil slice to
// useful size costs a ladder of tiny allocations (1, 2, 4, 8 capacities)
// per active window; starting at the dense-band's typical occupancy
// makes it one.
const slotInitCap = 8

func (q *eventQueue) pushSlot(ev *event, w int64) {
	s := q.slots[w&ladderMask]
	if s == nil {
		s = make([]*event, 0, slotInitCap)
	}
	q.slots[w&ladderMask] = append(s, ev)
	q.markBusy(w & ladderMask)
	q.slotCount++
	if w < q.minWin || q.slotCount == 1 {
		q.minWin = w
	}
}

// pop removes and returns the earliest live event in (at, seq) order, or
// nil when none remain. Cancelled events encountered along the way are
// compacted out and handed to recycle.
func (q *eventQueue) pop(now time.Duration, recycle func(*event)) *event {
	q.migrate(now)
	if q.slotCount == 0 {
		return nil
	}
	// Scan windows from the lower bound, jumping empty runs via the busy
	// bitmap. A slot can also hold events one lap ahead (window
	// w+ladderBuckets maps to the same slot while stale cancelled entries
	// linger), so the per-window min considers only events whose window
	// matches; later-lap events stay put.
	for w := q.minWin; ; w++ {
		w = q.nextBusyWin(w)
		s := q.slots[w&ladderMask]
		// Fast path: no cancelled entries (the common case) needs no
		// compaction writes — one scan picks the minimum, one swap removes
		// it.
		best := -1
		dirty := false
		for i, ev := range s {
			if ev.cancelled {
				dirty = true
				break
			}
			if ladderWin(ev.at) == w && (best < 0 || ev.less(s[best])) {
				best = i
			}
		}
		if dirty {
			best = q.scrubSlot(w, recycle)
			s = q.slots[w&ladderMask]
		}
		if best >= 0 {
			ev := s[best]
			last := len(s) - 1
			s[best] = s[last]
			s[last] = nil
			q.slots[w&ladderMask] = s[:last]
			if last == 0 {
				q.clearBusy(w & ladderMask)
			}
			q.slotCount--
			q.minWin = w
			return ev
		}
		if q.slotCount == 0 {
			// Only cancelled events remained; the far tier may still hold
			// work that now migrates into an empty near tier.
			q.migrate(now)
			if q.slotCount == 0 {
				return nil
			}
			w = q.minWin - 1
			continue
		}
		q.minWin = w + 1
	}
}

// scrubSlot compacts cancelled events out of window w's slot, handing them
// to recycle, and returns the index of the minimum event belonging to
// window w among the survivors (-1 when only later-lap events remain).
func (q *eventQueue) scrubSlot(w int64, recycle func(*event)) int {
	s := q.slots[w&ladderMask]
	keep := s[:0]
	best := -1
	for _, ev := range s {
		if ev.cancelled {
			q.slotCount--
			recycle(ev)
			continue
		}
		keep = append(keep, ev)
		if ladderWin(ev.at) == w && (best < 0 || ev.less(keep[best])) {
			best = len(keep) - 1
		}
	}
	for i := len(keep); i < len(s); i++ {
		s[i] = nil // release compacted references
	}
	q.slots[w&ladderMask] = keep
	if len(keep) == 0 {
		q.clearBusy(w & ladderMask)
	}
	return best
}

// migrate pulls far events that fall inside the bucket horizon into the
// near tier. When the near tier is empty the horizon jumps forward to the
// heap's minimum, so a sparse far-future schedule never strands events.
func (q *eventQueue) migrate(now time.Duration) {
	if len(q.far) == 0 {
		return
	}
	curWin := ladderWin(now)
	for len(q.far) > 0 {
		topWin := ladderWin(q.far[0].at)
		if q.slotCount == 0 && topWin > curWin {
			curWin = topWin
		}
		if topWin >= curWin+ladderBuckets {
			return
		}
		q.pushSlot(q.far.pop(), topWin)
	}
}

// compact removes every cancelled event from both tiers, handing each to
// recycle, and restores the far tier's heap invariant in one pass.
func (q *eventQueue) compact(recycle func(*event)) {
	for i := range q.slots {
		s := q.slots[i]
		keep := s[:0]
		for _, ev := range s {
			if ev.cancelled {
				q.slotCount--
				recycle(ev)
				continue
			}
			keep = append(keep, ev)
		}
		for j := len(keep); j < len(s); j++ {
			s[j] = nil
		}
		q.slots[i] = keep
		if len(keep) == 0 {
			q.clearBusy(int64(i))
		}
	}
	live := q.far[:0]
	for _, ev := range q.far {
		if ev.cancelled {
			recycle(ev)
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(q.far); i++ {
		q.far[i] = nil
	}
	q.far = live
	q.far.init()
}

// eventHeap is a hand-rolled binary min-heap over (at, seq) — the far
// tier of the ladder queue. We avoid container/heap's interface
// indirection because even the far tier sees thousands of pushes per run.
type eventHeap []*event

func (h eventHeap) less(i, j int) bool { return h[i].less(h[j]) }

func (h *eventHeap) push(ev *event) {
	*h = append(*h, ev)
	h.up(len(*h) - 1)
}

func (h *eventHeap) pop() *event {
	old := *h
	n := len(old)
	top := old[0]
	old[0] = old[n-1]
	old[n-1] = nil // allow the popped event to be collected
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	return top
}

// init establishes the heap invariant over arbitrary contents (used after
// in-place compaction).
func (h eventHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}
