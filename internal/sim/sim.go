// Package sim provides the discrete-event simulation kernel used by every
// other subsystem in this repository: a virtual clock, a cancellable timer
// facility backed by a binary heap, and deterministic per-component random
// number streams.
//
// The kernel is strictly single-goroutine: all events execute sequentially
// in non-decreasing virtual-time order, with FIFO ordering among events
// scheduled for the same instant. Determinism is a design requirement —
// two runs with the same seed must produce bit-identical results — so the
// kernel never consults wall-clock time or global randomness.
package sim

import (
	"fmt"
	"time"
)

// Handler is a callback invoked when a scheduled event fires. The argument
// is the virtual time at which the event fires, which equals Kernel.Now()
// during the call.
type Handler func(now time.Duration)

// Kernel is a discrete-event scheduler. The zero value is ready to use.
//
// Virtual time is expressed as a time.Duration offset from the beginning of
// the simulation (t = 0). Using time.Duration rather than float64 seconds
// keeps event ordering exact: there is no floating-point fuzz around
// simultaneity, and ties are broken by scheduling order.
type Kernel struct {
	queue   eventHeap
	now     time.Duration
	seq     uint64
	stopped bool

	// executed counts events dispatched since construction; useful for
	// progress accounting and for benchmarks.
	executed uint64
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many events are queued, including cancelled events
// that have not yet been compacted away.
func (k *Kernel) Pending() int { return len(k.queue) }

// Schedule arranges for h to run delay after the current virtual time and
// returns a handle that can cancel it. A negative delay is treated as zero:
// the event fires at the current time, after all previously scheduled
// events for that time.
func (k *Kernel) Schedule(delay time.Duration, h Handler) *Timer {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, h)
}

// At arranges for h to run at absolute virtual time t. Scheduling in the
// past is an error in the caller; the kernel clamps it to "now" rather than
// corrupting clock monotonicity.
func (k *Kernel) At(t time.Duration, h Handler) *Timer {
	if h == nil {
		panic("sim: At called with nil handler")
	}
	if t < k.now {
		t = k.now
	}
	ev := &event{at: t, seq: k.seq, fn: h}
	k.seq++
	k.queue.push(ev)
	return &Timer{ev: ev}
}

// Step dispatches the single earliest pending event. It reports false when
// the queue is empty. Cancelled events are skipped silently.
func (k *Kernel) Step() bool {
	for len(k.queue) > 0 {
		ev := k.queue.pop()
		if ev.cancelled {
			continue
		}
		if ev.at < k.now {
			// Heap corruption or clock tampering; fail loudly because a
			// silently non-monotonic clock invalidates every metric.
			panic(fmt.Sprintf("sim: time went backwards: %v -> %v", k.now, ev.at))
		}
		k.now = ev.at
		k.executed++
		ev.fn(k.now)
		return true
	}
	return false
}

// Run dispatches events until the queue drains, the virtual clock passes
// until, or Stop is called. Events scheduled exactly at until still run.
// On return the clock reads min(until, time of last event) unless the
// queue held later events, in which case it reads until.
func (k *Kernel) Run(until time.Duration) {
	k.stopped = false
	for !k.stopped {
		ev := k.peekRunnable()
		if ev == nil {
			break
		}
		if ev.at > until {
			k.now = until
			return
		}
		k.Step()
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
}

// RunAll dispatches events until the queue drains or Stop is called.
// Intended for small tests; production runs should bound time with Run.
func (k *Kernel) RunAll() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// Stop makes the active Run/RunAll return after the current event handler
// finishes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// peekRunnable discards leading cancelled events and returns the earliest
// live one without dispatching it, or nil when none remain.
func (k *Kernel) peekRunnable() *event {
	for len(k.queue) > 0 {
		ev := k.queue[0]
		if !ev.cancelled {
			return ev
		}
		k.queue.pop()
	}
	return nil
}

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel is idempotent.
func (t *Timer) Cancel() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// Cancelled reports whether Cancel has been called.
func (t *Timer) Cancelled() bool { return t != nil && t.ev != nil && t.ev.cancelled }

// When reports the virtual time the event is (or was) scheduled to fire.
// Like Cancel and Cancelled, it is nil-safe: a nil or zero timer reports
// zero rather than panicking.
func (t *Timer) When() time.Duration {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}
