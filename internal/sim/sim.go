// Package sim provides the discrete-event simulation kernel used by every
// other subsystem in this repository: a virtual clock, a cancellable timer
// facility backed by a two-tier ladder queue, and deterministic
// per-component random number streams.
//
// The kernel is strictly single-goroutine: all events execute sequentially
// in non-decreasing virtual-time order, with FIFO ordering among events
// scheduled for the same instant. Determinism is a design requirement —
// two runs with the same seed must produce bit-identical results — so the
// kernel never consults wall-clock time or global randomness.
//
// The kernel is also allocation-free in the steady state: event records
// are pooled and recycled under generation counters (see DESIGN.md §8),
// and the ScheduleArg fast path carries two integer arguments instead of
// a captured closure, so a million-event run costs the garbage collector
// nothing beyond the layers' own packet traffic.
package sim

import (
	"fmt"
	"time"

	"rica/internal/obs"
)

// Handler is a callback invoked when a scheduled event fires. The argument
// is the virtual time at which the event fires, which equals Kernel.Now()
// during the call.
type Handler func(now time.Duration)

// ArgHandler is the closure-free flavour of Handler: the two integers
// given to ScheduleArg are passed back verbatim, so hot paths can index a
// state arena instead of capturing variables (each capture is a heap
// allocation per event). Store the bound method value once — building it
// at every call site would reintroduce the allocation.
type ArgHandler func(now time.Duration, a0, a1 int)

// compactMin is the queue size below which cancelled-event compaction is
// not worth the sweep.
const compactMin = 128

// Kernel is a discrete-event scheduler. The zero value is ready to use.
//
// Virtual time is expressed as a time.Duration offset from the beginning of
// the simulation (t = 0). Using time.Duration rather than float64 seconds
// keeps event ordering exact: there is no floating-point fuzz around
// simultaneity, and ties are broken by scheduling order.
type Kernel struct {
	queue   eventQueue
	now     time.Duration
	seq     uint64
	stopped bool

	// live counts scheduled events that have neither fired nor been
	// cancelled; queue.size() − live is the lazily-cancelled backlog.
	live int

	// free is the event recycling pool; fresh records come from chunk, a
	// bump arena refilled eventChunk records at a time. recycle is the
	// bound method value handed to queue operations (built once to stay
	// allocation-free).
	free      []*event
	chunk     []event
	chunkUsed int
	recycle   func(*event)

	// executed counts events dispatched since construction; useful for
	// progress accounting and for benchmarks.
	executed uint64

	// obs, when set, receives dispatch/schedule/cancel counters and the
	// published simulation clock. All obs methods are nil-safe, so the
	// zero-value kernel stays ready to use.
	obs *obs.Registry
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// SetObs wires the observability registry. Call before Run; the kernel
// works identically (and counts nothing) without one.
func (k *Kernel) SetObs(r *obs.Registry) { k.obs = r }

// Now reports the current virtual time.
func (k *Kernel) Now() time.Duration { return k.now }

// Executed reports how many events have been dispatched so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// Pending reports how many live (non-cancelled, not yet fired) events are
// queued. Lazily-cancelled entries awaiting compaction are not counted.
func (k *Kernel) Pending() int { return k.live }

// eventChunk is how many event records one arena refill carves at once.
// Chunking trades one allocation per record for one per chunk: a fresh
// kernel warming up to a thousand in-flight events pays ~16 allocations
// instead of ~1000, and the records of a chunk sit contiguously, which
// the dispatch loop's access pattern rewards.
const eventChunk = 64

// alloc takes an event from the recycle pool, falling back to a bump
// allocation out of the current chunk (carving a fresh chunk when that
// is spent). Records never leave the kernel, so chunks live exactly as
// long as it does.
func (k *Kernel) alloc() *event {
	n := len(k.free)
	if n == 0 {
		if k.chunkUsed == len(k.chunk) {
			k.chunk = make([]event, eventChunk)
			k.chunkUsed = 0
		}
		ev := &k.chunk[k.chunkUsed]
		k.chunkUsed++
		return ev
	}
	ev := k.free[n-1]
	k.free[n-1] = nil
	k.free = k.free[:n-1]
	if !ev.pooled {
		panic("sim: event pool corruption (free-list entry not marked pooled)")
	}
	ev.pooled = false
	return ev
}

// release recycles a fired or compacted event. The generation bump makes
// every outstanding Timer handle for this record stale, so a late Cancel
// cannot touch whatever event reuses the slot. Releasing twice panics:
// a double free would put the same record in the pool twice and hand it
// to two different Schedule calls.
func (k *Kernel) release(ev *event) {
	if ev.pooled {
		panic("sim: event double-free")
	}
	ev.pooled = true
	ev.gen++
	ev.cancelled = false
	ev.fn = nil
	ev.afn = nil
	k.free = append(k.free, ev)
}

// recycleFn returns the bound release callback, built once.
func (k *Kernel) recycleFn() func(*event) {
	if k.recycle == nil {
		k.recycle = k.release
	}
	return k.recycle
}

// Schedule arranges for h to run delay after the current virtual time and
// returns a handle that can cancel it. A negative delay is treated as zero:
// the event fires at the current time, after all previously scheduled
// events for that time.
func (k *Kernel) Schedule(delay time.Duration, h Handler) Timer {
	if delay < 0 {
		delay = 0
	}
	return k.At(k.now+delay, h)
}

// At arranges for h to run at absolute virtual time t. Scheduling in the
// past is an error in the caller; the kernel clamps it to "now" rather than
// corrupting clock monotonicity.
func (k *Kernel) At(t time.Duration, h Handler) Timer {
	if h == nil {
		panic("sim: At called with nil handler")
	}
	ev := k.enqueue(t)
	ev.fn = h
	return Timer{k: k, ev: ev, gen: ev.gen, at: ev.at}
}

// ScheduleArg is the allocation-free scheduling fast path: fn runs delay
// after the current time with a0 and a1 passed back verbatim. Unlike
// Schedule there is no closure to allocate — the event record itself is
// pooled — so per-packet timers (MAC backoff, airtime completion, ACK
// waits) ride this path at zero steady-state allocation.
func (k *Kernel) ScheduleArg(delay time.Duration, fn ArgHandler, a0, a1 int) Timer {
	if delay < 0 {
		delay = 0
	}
	return k.AtArg(k.now+delay, fn, a0, a1)
}

// AtArg is ScheduleArg with an absolute deadline; see At for clamping.
func (k *Kernel) AtArg(t time.Duration, fn ArgHandler, a0, a1 int) Timer {
	if fn == nil {
		panic("sim: AtArg called with nil handler")
	}
	ev := k.enqueue(t)
	ev.afn = fn
	ev.a0 = a0
	ev.a1 = a1
	return Timer{k: k, ev: ev, gen: ev.gen, at: ev.at}
}

// enqueue files a fresh event for time t (clamped to now) with the next
// sequence number; the caller fills in the handler.
func (k *Kernel) enqueue(t time.Duration) *event {
	if t < k.now {
		t = k.now
	}
	ev := k.alloc()
	ev.at = t
	ev.seq = k.seq
	k.seq++
	k.live++
	k.obs.Inc(obs.CEventsScheduled)
	k.obs.GaugeAdd(obs.GQueueDepth, 1)
	if ladderWin(t) >= ladderWin(k.now)+ladderBuckets {
		k.obs.Inc(obs.CLadderFarPushes)
	}
	k.queue.push(ev, k.now)
	return ev
}

// Step dispatches the single earliest pending event. It reports false when
// no live events remain.
func (k *Kernel) Step() bool {
	ev := k.queue.pop(k.now, k.recycleFn())
	if ev == nil {
		return false
	}
	k.dispatch(ev)
	return true
}

// dispatch advances the clock to ev, recycles the record, and runs the
// handler. The event is released before the handler runs: its generation
// is already bumped, so a handler cancelling its own timer is a no-op (the
// same outcome the pre-pool kernel gave), and the record is immediately
// available for the handler's own scheduling.
func (k *Kernel) dispatch(ev *event) {
	if ev.at < k.now {
		// Queue corruption or clock tampering; fail loudly because a
		// silently non-monotonic clock invalidates every metric.
		panic(fmt.Sprintf("sim: time went backwards: %v -> %v", k.now, ev.at))
	}
	k.now = ev.at
	k.executed++
	k.live--
	k.obs.Inc(obs.CEventsDispatched)
	k.obs.GaugeAdd(obs.GQueueDepth, -1)
	k.obs.SetSimNow(k.now)
	fn, afn, a0, a1 := ev.fn, ev.afn, ev.a0, ev.a1
	k.release(ev)
	if fn != nil {
		fn(k.now)
		return
	}
	afn(k.now, a0, a1)
}

// Run dispatches events until the queue drains, the virtual clock passes
// until, or Stop is called. Events scheduled exactly at until still run.
// On return the clock reads min(until, time of last event) unless the
// queue held later events, in which case it reads until.
func (k *Kernel) Run(until time.Duration) {
	k.stopped = false
	for !k.stopped {
		ev := k.queue.pop(k.now, k.recycleFn())
		if ev == nil {
			break
		}
		if ev.at > until {
			// Past the horizon: put it back (its (at, seq) identity is
			// unchanged, so ordering is unaffected) and stop here.
			k.queue.push(ev, k.now)
			k.now = until
			return
		}
		k.dispatch(ev)
	}
	if k.now < until && !k.stopped {
		k.now = until
	}
}

// RunAll dispatches events until the queue drains or Stop is called.
// Intended for small tests; production runs should bound time with Run.
func (k *Kernel) RunAll() {
	k.stopped = false
	for !k.stopped && k.Step() {
	}
}

// Stop makes the active Run/RunAll return after the current event handler
// finishes. Pending events remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// noteCancel maintains the live count and compacts the queue when lazily
// cancelled entries dominate it — without this, a cancel-heavy CSMA
// retransmission load grows Pending and memory without bound.
func (k *Kernel) noteCancel() {
	k.live--
	k.obs.Inc(obs.CTimersCancelled)
	k.obs.GaugeAdd(obs.GQueueDepth, -1)
	if queued := k.queue.size(); queued >= compactMin && queued-k.live > queued/2 {
		k.obs.Inc(obs.CQueueCompactions)
		k.queue.compact(k.recycleFn())
	}
}

// Timer is a handle to a scheduled event. It is a value: copying it is
// cheap and allocation-free. The handle remembers the event record's
// generation, so once the event fires (and the record is recycled) the
// handle goes stale and Cancel degrades to a no-op.
type Timer struct {
	k         *Kernel
	ev        *event
	gen       uint32
	at        time.Duration
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel is idempotent.
func (t *Timer) Cancel() {
	if t == nil || t.ev == nil || t.cancelled {
		return
	}
	t.cancelled = true
	if t.ev.gen != t.gen || t.ev.cancelled {
		// Stale (the event already fired and was recycled) or already
		// cancelled through another copy of this handle: the live count
		// was settled the first time.
		return
	}
	t.ev.cancelled = true
	t.k.noteCancel()
}

// Cancelled reports whether Cancel has been called through this handle.
func (t *Timer) Cancelled() bool { return t != nil && t.cancelled }

// When reports the virtual time the event is (or was) scheduled to fire.
// Like Cancel and Cancelled, it is nil-safe: a nil or zero timer reports
// zero rather than panicking.
func (t *Timer) When() time.Duration {
	if t == nil {
		return 0
	}
	return t.at
}
