package sim

import (
	"sort"
	"time"
)

// This file is the kernel's checkpoint seam: read-only state exports
// used to build (and verify) simulation snapshots. Exports are pure
// observations — no counters move, no RNG draws, no cache fills — so
// capturing at an instant boundary cannot perturb the run.

// EventState is the serializable skeleton of one pending event. The
// handler itself is a Go function value and cannot be serialized; the
// skeleton pins the event's identity ((At, Seq) dispatch order), its
// cancellation flag, and the closure-free path's arguments, which is
// exactly what snapshot verification needs to prove two kernels hold
// the same schedule.
type EventState struct {
	At        time.Duration
	Seq       uint64
	Cancelled bool
	// Arg reports a closure-free (ScheduleArg) event; A0/A1 carry its
	// arguments. Closure events have Arg false and zero A0/A1.
	Arg    bool
	A0, A1 int
}

// KernelState is a read-only snapshot of the scheduler: the clock, the
// identity counters, and every queued event (lazily-cancelled entries
// included) sorted into dispatch order.
type KernelState struct {
	Now      time.Duration
	Seq      uint64
	Executed uint64
	Live     int
	Events   []EventState
}

// ExportState snapshots the kernel. Safe only between dispatches (never
// from inside a running handler's schedule churn).
func (k *Kernel) ExportState() KernelState {
	st := KernelState{
		Now:      k.now,
		Seq:      k.seq,
		Executed: k.executed,
		Live:     k.live,
		Events:   make([]EventState, 0, k.queue.size()),
	}
	k.queue.each(func(ev *event) {
		st.Events = append(st.Events, EventState{
			At:        ev.at,
			Seq:       ev.seq,
			Cancelled: ev.cancelled,
			Arg:       ev.afn != nil,
			A0:        ev.a0,
			A1:        ev.a1,
		})
	})
	sort.Slice(st.Events, func(i, j int) bool {
		a, b := &st.Events[i], &st.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Seq < b.Seq
	})
	return st
}

// each visits every queued event (both tiers, cancelled included) in
// arbitrary order.
func (q *eventQueue) each(fn func(*event)) {
	for i := range q.slots {
		for _, ev := range q.slots[i] {
			fn(ev)
		}
	}
	for _, ev := range q.far {
		fn(ev)
	}
}

// StreamState is the complete state of one RNG stream: the component id
// it was created under and the lagged-Fibonacci generator's tap/feed
// cursor and 607-word vector, exactly as math/rand's source holds them.
type StreamState struct {
	ID        uint64
	Tap, Feed int
	Vec       [rngLen]int64
}

// state observes the source without advancing it.
func (s *fastSource) state() (tap, feed int, vec [rngLen]int64) {
	return s.tap, s.feed, s.vec
}
