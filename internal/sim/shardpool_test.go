package sim

import "testing"

// TestShardPoolRunsEveryShard checks each shard index runs exactly once
// per fan-out and the barrier holds (all writes visible afterwards).
func TestShardPoolRunsEveryShard(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8} {
		p := NewShardPool(n)
		hits := make([]int, n)
		p.SetWork(func(shard int) { hits[shard]++ })
		const rounds = 50
		for r := 0; r < rounds; r++ {
			p.Fanout()
		}
		p.Close()
		for s, h := range hits {
			if h != rounds {
				t.Fatalf("n=%d shard %d ran %d times, want %d", n, s, h, rounds)
			}
		}
	}
}

// TestShardPoolSingleShardInline checks a 1-shard pool is a plain call:
// no goroutines ever start, so the serial configuration cannot differ
// from not having a pool at all.
func TestShardPoolSingleShardInline(t *testing.T) {
	p := NewShardPool(1)
	defer p.Close()
	ran := false
	p.SetWork(func(shard int) { ran = shard == 0 })
	p.Fanout()
	if !ran {
		t.Fatal("shard 0 did not run")
	}
	if p.started {
		t.Fatal("1-shard pool spawned workers")
	}
}

// TestShardPoolFanoutAllocFree pins the per-epoch allocation budget at
// zero: a steady-state fan-out must not allocate.
func TestShardPoolFanoutAllocFree(t *testing.T) {
	p := NewShardPool(4)
	defer p.Close()
	var sink [4]uint64
	p.SetWork(func(shard int) { sink[shard]++ })
	p.Fanout() // warm: spawns the workers
	if allocs := testing.AllocsPerRun(100, p.Fanout); allocs != 0 {
		t.Fatalf("Fanout allocates %.1f/op, want 0", allocs)
	}
}

// TestShardPoolCloseIdempotent checks Close is safe twice, nil-safe, and
// safe without any fan-out.
func TestShardPoolCloseIdempotent(t *testing.T) {
	p := NewShardPool(3)
	p.Close()
	p.Close()
	var nilPool *ShardPool
	nilPool.Close()
}

// TestShardStatsAdvance checks the process-global accounting moves.
func TestShardStatsAdvance(t *testing.T) {
	before := ShardStatsNow()
	p := NewShardPool(2)
	defer p.Close()
	p.SetWork(func(int) {})
	p.Fanout()
	if after := ShardStatsNow(); after.Fanouts <= before.Fanouts {
		t.Fatalf("fanouts did not advance: %d -> %d", before.Fanouts, after.Fanouts)
	}
}
