// ShardPool: the fork-join barrier the sharded channel oracle runs on
// (DESIGN.md §10). One pool serves one world; the simulation goroutine is
// worker 0, so a P-shard pool spawns P−1 goroutines, started lazily on
// the first fan-out and parked on their wake channels between epochs.
package sim

import (
	"sync"
	"sync/atomic"
	"time"

	"rica/internal/obs"
)

// ShardPool executes one work function across P shards with a full
// barrier per Fanout: every shard's call returns before Fanout does, and
// the channel/WaitGroup pair carries the happens-before edges that make
// the caller's pre-fan-out writes visible to workers and all worker
// writes visible to the caller afterwards. Steady-state fan-outs are
// allocation-free.
//
// The pool is not itself deterministic work — it is a transport. The
// sharded oracle keeps runs bit-identical by construction (owner-computes
// writes, serial merge); the pool only guarantees the barrier.
type ShardPool struct {
	n       int
	work    func(shard int)
	wake    []chan struct{}
	wg      sync.WaitGroup
	started bool
	closed  bool
}

// Process-global wall-clock accounting, mirroring the packet pool's
// stats: barrier stalls are scheduling noise, not simulation state, so
// they live here and never enter a per-run deterministic export.
var (
	shardFanouts atomic.Uint64
	shardStallNs atomic.Uint64
)

// ShardStatsNow snapshots the process-wide sharded-engine accounting:
// total fan-outs and the wall time callers spent blocked at the barrier
// after finishing their own shard.
func ShardStatsNow() obs.ShardStats {
	return obs.ShardStats{
		Fanouts: shardFanouts.Load(),
		StallNs: shardStallNs.Load(),
	}
}

// NewShardPool builds a pool for n shards (minimum 1). No goroutines
// start until the first Fanout, so building a world with sharding enabled
// and never running it leaks nothing.
func NewShardPool(n int) *ShardPool {
	if n < 1 {
		n = 1
	}
	return &ShardPool{n: n}
}

// Shards reports the pool's shard count.
func (p *ShardPool) Shards() int { return p.n }

// SetWork installs the per-shard work function. Call it before the first
// Fanout and never during one.
func (p *ShardPool) SetWork(fn func(shard int)) { p.work = fn }

// Fanout runs work(s) for every shard s and returns once all have
// finished. The caller runs shard 0 itself, so a 1-shard pool is a plain
// call.
func (p *ShardPool) Fanout() {
	if p.n == 1 {
		p.work(0)
		return
	}
	if !p.started {
		p.start()
	}
	p.wg.Add(p.n - 1)
	for _, ch := range p.wake {
		ch <- struct{}{}
	}
	p.work(0)
	wait := time.Now()
	p.wg.Wait()
	shardStallNs.Add(uint64(time.Since(wait)))
	shardFanouts.Add(1)
}

// start spawns the P−1 worker goroutines, each parked on its own
// buffered wake channel so Fanout's signal never blocks on wake-up.
func (p *ShardPool) start() {
	p.wake = make([]chan struct{}, p.n-1)
	for i := range p.wake {
		ch := make(chan struct{}, 1)
		p.wake[i] = ch
		shard := i + 1
		go func() {
			for range ch {
				p.work(shard)
				p.wg.Done()
			}
		}()
	}
	p.started = true
}

// Close stops the worker goroutines. Idempotent, nil-safe, and safe on a
// pool that never fanned out. The pool must not be used after Close.
func (p *ShardPool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if p.started {
		for _, ch := range p.wake {
			close(ch)
		}
	}
}
