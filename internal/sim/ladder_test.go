package sim

import (
	"math/rand"
	"testing"
	"time"
)

// --- Ladder queue vs reference-heap ordering oracle ----------------------

// refEvent mirrors one scheduled event for the oracle.
type refEvent struct {
	at  time.Duration
	seq int
}

// TestLadderMatchesReferenceOrder drives the kernel with adversarial
// schedules — dense same-instant bursts, far-future beacons that cross the
// bucket horizon, chained scheduling from inside handlers, random cancels
// — and checks the dispatch order against the (at, seq) total order a
// plain sorted reference produces.
func TestLadderMatchesReferenceOrder(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var want []refEvent // live events in scheduling order
		var got []refEvent
		seq := 0

		schedule := func(d time.Duration) {
			me := refEvent{at: k.Now() + d, seq: seq}
			seq++
			want = append(want, me)
			k.Schedule(d, func(now time.Duration) {
				got = append(got, refEvent{at: now, seq: me.seq})
			})
		}
		var timers []Timer
		scheduleCancellable := func(d time.Duration) {
			me := refEvent{at: k.Now() + d, seq: seq}
			seq++
			want = append(want, me)
			timers = append(timers, k.Schedule(d, func(now time.Duration) {
				got = append(got, refEvent{at: now, seq: me.seq})
			}))
		}

		// A mix of bands: sub-bucket delays, exact ties, multi-bucket,
		// and far beyond the ladder horizon (≥ 1 s with 1 ms buckets).
		bands := []time.Duration{
			0, time.Microsecond, 500 * time.Microsecond,
			3 * time.Millisecond, 200 * time.Millisecond,
			2 * time.Second, time.Minute,
		}
		for i := 0; i < 300; i++ {
			d := bands[rng.Intn(len(bands))]
			if rng.Intn(2) == 0 {
				d += time.Duration(rng.Intn(1_000_000))
			}
			if rng.Intn(4) == 0 {
				scheduleCancellable(d)
			} else {
				schedule(d)
			}
		}
		// Cancel a third of the cancellable timers before running.
		for i := range timers {
			if rng.Intn(3) == 0 {
				timers[i].Cancel()
			}
		}
		// Handlers occasionally schedule more work mid-run.
		k.Schedule(time.Millisecond, func(time.Duration) {
			for i := 0; i < 20; i++ {
				schedule(time.Duration(rng.Intn(5_000_000)))
			}
		})
		k.RunAll()

		// Expected order: the events that actually fired, sorted by
		// (at, seq) — cancelled ones never appear in got.
		fired := make(map[int]bool, len(got))
		for _, g := range got {
			fired[g.seq] = true
		}
		expect := make([]refEvent, 0, len(got))
		for _, w := range want {
			if fired[w.seq] {
				expect = append(expect, w)
			}
		}
		sortRef(expect)

		if len(got) != len(expect) {
			t.Fatalf("seed %d: fired %d events, expected %d", seed, len(got), len(expect))
		}
		for i := range got {
			if got[i].seq != expect[i].seq || got[i].at != expect[i].at {
				t.Fatalf("seed %d: position %d fired (at=%v seq=%d), want (at=%v seq=%d)",
					seed, i, got[i].at, got[i].seq, expect[i].at, expect[i].seq)
			}
		}
	}
}

// sortRef orders by (at, seq) — the kernel's contractual dispatch order.
func sortRef(evs []refEvent) {
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0; j-- {
			a, b := evs[j], evs[j-1]
			if a.at < b.at || (a.at == b.at && a.seq < b.seq) {
				evs[j], evs[j-1] = evs[j-1], evs[j]
				continue
			}
			break
		}
	}
}

// TestLadderFarFutureOnly exercises the horizon-jump path: nothing in the
// near tier, everything in the overflow heap.
func TestLadderFarFutureOnly(t *testing.T) {
	k := NewKernel()
	var got []time.Duration
	for _, d := range []time.Duration{time.Hour, time.Minute, 24 * time.Hour, 2 * time.Minute} {
		k.Schedule(d, func(now time.Duration) { got = append(got, now) })
	}
	k.RunAll()
	wantOrder := []time.Duration{time.Minute, 2 * time.Minute, time.Hour, 24 * time.Hour}
	if len(got) != len(wantOrder) {
		t.Fatalf("fired %d, want %d", len(got), len(wantOrder))
	}
	for i := range got {
		if got[i] != wantOrder[i] {
			t.Fatalf("order %v, want %v", got, wantOrder)
		}
	}
}

// --- Pool and generation-counter edge cases ------------------------------

// TestTimerReuseAfterFire: once a timer's event fires, the pooled record is
// recycled for later events. A stale Cancel through the old handle must not
// touch the new occupant.
func TestTimerReuseAfterFire(t *testing.T) {
	k := NewKernel()
	stale := k.Schedule(time.Millisecond, func(time.Duration) {})
	k.RunAll() // fires; record returns to the pool

	fired := false
	fresh := k.Schedule(time.Millisecond, func(time.Duration) { fired = true })
	stale.Cancel() // stale generation: must be a no-op
	k.RunAll()
	if !fired {
		t.Fatal("stale Cancel suppressed a recycled event (generation counter failed)")
	}
	if fresh.Cancelled() {
		t.Fatal("fresh handle reports cancelled")
	}
}

// TestTimerReuseAfterCancelAndCompaction: a cancelled event recycled by a
// pop sweep must equally ignore a second Cancel through the old handle.
func TestTimerReuseAfterCancelAndCompaction(t *testing.T) {
	k := NewKernel()
	old := k.Schedule(time.Millisecond, func(time.Duration) {})
	old.Cancel()
	k.Schedule(2*time.Millisecond, func(time.Duration) {})
	k.RunAll() // pop sweeps the cancelled record back into the pool

	fired := false
	k.Schedule(time.Millisecond, func(time.Duration) { fired = true })
	old.Cancel() // second cancel through a long-dead handle
	k.RunAll()
	if !fired {
		t.Fatal("re-cancel of a dead handle reached a recycled event")
	}
}

// TestCancelOwnTimerInsideHandler: a handler cancelling the timer that is
// currently firing must be a harmless no-op.
func TestCancelOwnTimerInsideHandler(t *testing.T) {
	k := NewKernel()
	var self Timer
	ran := false
	self = k.Schedule(time.Millisecond, func(time.Duration) {
		ran = true
		self.Cancel()
	})
	k.RunAll()
	if !ran {
		t.Fatal("handler did not run")
	}
	// The pool must still hand out working events afterwards.
	again := false
	k.Schedule(time.Millisecond, func(time.Duration) { again = true })
	k.RunAll()
	if !again {
		t.Fatal("kernel wedged after self-cancel")
	}
}

// TestCancelThroughCopiedHandleCountsOnce: Timer is a value, so handles
// copy freely; cancelling through two copies must settle the live count
// exactly once.
func TestCancelThroughCopiedHandleCountsOnce(t *testing.T) {
	k := NewKernel()
	a := k.Schedule(time.Millisecond, func(time.Duration) {})
	k.Schedule(2*time.Millisecond, func(time.Duration) {})
	b := a // copied handle
	a.Cancel()
	b.Cancel()
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d after double cancel via copies, want 1", k.Pending())
	}
	if !a.Cancelled() || !b.Cancelled() {
		t.Fatal("both handles should report cancelled")
	}
	k.RunAll()
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", k.Pending())
	}
}

// TestEventDoubleFreePanics: releasing the same pooled record twice is a
// bug that would hand one event to two Schedule calls; the kernel must
// fail loudly instead.
func TestEventDoubleFreePanics(t *testing.T) {
	k := NewKernel()
	ev := k.alloc()
	k.release(ev)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	k.release(ev)
}

// TestStopInsideHandlerDuringRun: Stop called from within a handler halts
// the run after that handler, leaving later events queued and runnable.
func TestStopInsideHandlerDuringRun(t *testing.T) {
	k := NewKernel()
	order := []int{}
	k.Schedule(time.Millisecond, func(time.Duration) { order = append(order, 1) })
	k.Schedule(2*time.Millisecond, func(time.Duration) {
		order = append(order, 2)
		k.Stop()
	})
	k.Schedule(3*time.Millisecond, func(time.Duration) { order = append(order, 3) })
	k.Run(time.Second)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("events before stop = %v, want [1 2]", order)
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d after Stop, want the un-run event", k.Pending())
	}
	k.Run(time.Second) // resumable
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("resume did not fire the remaining event: %v", order)
	}
}

// TestAtInPastDuringDispatch: an At for an instant the clock has already
// passed — issued from inside a handler mid-dispatch — clamps to now and
// still fires, after the currently-queued same-instant events.
func TestAtInPastDuringDispatch(t *testing.T) {
	k := NewKernel()
	var got []int
	k.Schedule(5*time.Millisecond, func(now time.Duration) {
		got = append(got, 1)
		k.At(time.Millisecond, func(inner time.Duration) { // in the past
			if inner != 5*time.Millisecond {
				t.Errorf("past At fired at %v, want clamp to 5ms", inner)
			}
			got = append(got, 3)
		})
		k.Schedule(0, func(time.Duration) { got = append(got, 2) })
	})
	k.RunAll()
	// The past-At event was scheduled before the 0-delay one, so FIFO at
	// the clamped instant preserves issue order: 1, 3, 2.
	want := []int{1, 3, 2}
	for i := range want {
		if i >= len(got) || got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// --- Live Pending and compaction -----------------------------------------

// TestPendingCountsLiveOnly: cancelled events vanish from Pending
// immediately, not when they are lazily swept.
func TestPendingCountsLiveOnly(t *testing.T) {
	k := NewKernel()
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, k.Schedule(time.Duration(i+1)*time.Millisecond, func(time.Duration) {}))
	}
	if k.Pending() != 10 {
		t.Fatalf("Pending() = %d, want 10", k.Pending())
	}
	for i := 0; i < 4; i++ {
		timers[i].Cancel()
	}
	if k.Pending() != 6 {
		t.Fatalf("Pending() = %d after 4 cancels, want 6", k.Pending())
	}
	timers[0].Cancel() // idempotent: must not double-decrement
	if k.Pending() != 6 {
		t.Fatalf("Pending() = %d after repeated cancel, want 6", k.Pending())
	}
	k.RunAll()
	if k.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", k.Pending())
	}
}

// TestCancelHeavyLoadCompacts: under a cancel-dominated load (the CSMA
// retransmission pattern) the queue must shed cancelled entries instead of
// accumulating them until dispatch.
func TestCancelHeavyLoadCompacts(t *testing.T) {
	k := NewKernel()
	// One far-future survivor keeps the queue non-empty throughout.
	k.Schedule(time.Hour, func(time.Duration) {})
	for round := 0; round < 200; round++ {
		var batch []Timer
		for i := 0; i < 100; i++ {
			batch = append(batch, k.Schedule(time.Duration(i+1)*time.Millisecond, func(time.Duration) {}))
		}
		for _, tm := range batch {
			tm.Cancel()
		}
		if size := k.queue.size(); size > 2*compactMin {
			t.Fatalf("round %d: queued %d entries for 1 live event; compaction is not keeping up", round, size)
		}
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1 survivor", k.Pending())
	}
}

// TestCompactionPreservesOrder: compaction mid-stream must not perturb the
// dispatch order of surviving events.
func TestCompactionPreservesOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	k := NewKernel()
	var want []refEvent
	var got []refEvent
	id := 0
	for i := 0; i < 500; i++ {
		d := time.Duration(rng.Intn(1_000_000_000))
		if rng.Intn(2) == 0 {
			me := refEvent{at: d, seq: id}
			id++
			want = append(want, me)
			k.Schedule(d, func(now time.Duration) { got = append(got, refEvent{at: now, seq: me.seq}) })
		} else {
			id++ // cancelled events still consume a slot in schedule order
			tm := k.Schedule(d, func(time.Duration) { t.Error("cancelled event fired") })
			tm.Cancel()
		}
	}
	k.RunAll()
	sortRef(want)
	if len(got) != len(want) {
		t.Fatalf("fired %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].seq != want[i].seq {
			t.Fatalf("position %d fired seq %d, want %d", i, got[i].seq, want[i].seq)
		}
	}
}
