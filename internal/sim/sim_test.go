package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestKernelZeroValueUsable(t *testing.T) {
	var k Kernel
	fired := false
	k.Schedule(time.Second, func(now time.Duration) { fired = true })
	k.RunAll()
	if !fired {
		t.Fatal("event did not fire")
	}
	if k.Now() != time.Second {
		t.Fatalf("Now() = %v, want 1s", k.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []time.Duration
	delays := []time.Duration{5 * time.Second, time.Second, 3 * time.Second, 2 * time.Second, 4 * time.Second}
	for _, d := range delays {
		k.Schedule(d, func(now time.Duration) { got = append(got, now) })
	}
	k.RunAll()
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatalf("events fired out of order: %v", got)
	}
	if len(got) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(got), len(delays))
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		k.Schedule(time.Second, func(time.Duration) { got = append(got, i) })
	}
	k.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("position %d got event %d; simultaneous events must be FIFO", i, v)
		}
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, func(now time.Duration) {
		k.Schedule(-time.Minute, func(inner time.Duration) {
			if inner != time.Second {
				t.Errorf("negative delay fired at %v, want 1s", inner)
			}
		})
	})
	k.RunAll()
}

func TestAtInPastClampsToNow(t *testing.T) {
	k := NewKernel()
	k.Schedule(2*time.Second, func(now time.Duration) {
		k.At(time.Second, func(inner time.Duration) {
			if inner != 2*time.Second {
				t.Errorf("past At fired at %v, want 2s", inner)
			}
		})
	})
	k.RunAll()
}

func TestCancelPreventsFiring(t *testing.T) {
	k := NewKernel()
	fired := false
	tm := k.Schedule(time.Second, func(time.Duration) { fired = true })
	tm.Cancel()
	k.RunAll()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !tm.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	k := NewKernel()
	tm := k.Schedule(time.Second, func(time.Duration) {})
	tm.Cancel()
	tm.Cancel() // must not panic
	var nilTimer *Timer
	nilTimer.Cancel() // nil receiver must be safe
	k.RunAll()
}

func TestWhenNilSafe(t *testing.T) {
	var nilTimer *Timer
	if got := nilTimer.When(); got != 0 {
		t.Fatalf("nil Timer.When() = %v, want 0", got)
	}
	if got := (&Timer{}).When(); got != 0 {
		t.Fatalf("zero Timer.When() = %v, want 0", got)
	}
	k := NewKernel()
	tm := k.Schedule(3*time.Second, func(time.Duration) {})
	if got := tm.When(); got != 3*time.Second {
		t.Fatalf("When() = %v, want 3s", got)
	}
}

func TestCancelFromWithinEarlierEvent(t *testing.T) {
	k := NewKernel()
	fired := false
	later := k.Schedule(2*time.Second, func(time.Duration) { fired = true })
	k.Schedule(time.Second, func(time.Duration) { later.Cancel() })
	k.RunAll()
	if fired {
		t.Fatal("event cancelled by an earlier event still fired")
	}
}

func TestRunStopsAtHorizon(t *testing.T) {
	k := NewKernel()
	var fired []time.Duration
	for _, d := range []time.Duration{1, 2, 3, 4, 5} {
		k.Schedule(d*time.Second, func(now time.Duration) { fired = append(fired, now) })
	}
	k.Run(3 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events before horizon, want 3 (inclusive)", len(fired))
	}
	if k.Now() != 3*time.Second {
		t.Fatalf("clock = %v after Run(3s), want 3s", k.Now())
	}
	k.Run(10 * time.Second)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
}

func TestRunAdvancesClockToHorizonWhenQueueDrains(t *testing.T) {
	k := NewKernel()
	k.Schedule(time.Second, func(time.Duration) {})
	k.Run(10 * time.Second)
	if k.Now() != 10*time.Second {
		t.Fatalf("clock = %v, want horizon 10s", k.Now())
	}
}

func TestStopInterruptsRun(t *testing.T) {
	k := NewKernel()
	count := 0
	for i := 1; i <= 10; i++ {
		k.Schedule(time.Duration(i)*time.Second, func(time.Duration) {
			count++
			if count == 3 {
				k.Stop()
			}
		})
	}
	k.Run(time.Hour)
	if count != 3 {
		t.Fatalf("Stop did not interrupt Run: %d events fired", count)
	}
}

func TestHandlerCanScheduleMoreEvents(t *testing.T) {
	k := NewKernel()
	depth := 0
	var recurse Handler
	recurse = func(now time.Duration) {
		depth++
		if depth < 50 {
			k.Schedule(time.Millisecond, recurse)
		}
	}
	k.Schedule(0, recurse)
	k.RunAll()
	if depth != 50 {
		t.Fatalf("chained scheduling depth = %d, want 50", depth)
	}
	if k.Now() != 49*time.Millisecond {
		t.Fatalf("clock = %v, want 49ms", k.Now())
	}
}

func TestExecutedCounts(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 7; i++ {
		k.Schedule(time.Duration(i), func(time.Duration) {})
	}
	cancelled := k.Schedule(time.Hour, func(time.Duration) {})
	cancelled.Cancel()
	k.RunAll()
	if k.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7 (cancelled events do not count)", k.Executed())
	}
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil handler) did not panic")
		}
	}()
	NewKernel().Schedule(time.Second, nil)
}

// TestHeapPropertyOrdering pushes random event times and checks pops come
// out sorted, for many random configurations.
func TestHeapPropertyOrdering(t *testing.T) {
	f := func(delaysRaw []uint32) bool {
		var h eventHeap
		for i, d := range delaysRaw {
			h.push(&event{at: time.Duration(d) * time.Microsecond, seq: uint64(i)})
		}
		var prev *event
		for len(h) > 0 {
			ev := h.pop()
			if prev != nil {
				if ev.at < prev.at {
					return false
				}
				if ev.at == prev.at && ev.seq < prev.seq {
					return false // FIFO violated among ties
				}
			}
			prev = ev
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKernelPropertyMonotonicClock(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		last := time.Duration(-1)
		ok := true
		var schedule func(time.Duration)
		schedule = func(now time.Duration) {
			if now < last {
				ok = false
			}
			last = now
			if rng.Intn(3) > 0 {
				k.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, schedule)
			}
		}
		for i := 0; i < int(n)%32+1; i++ {
			k.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, schedule)
		}
		k.Run(30 * time.Second)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsDeterministic(t *testing.T) {
	a := NewStreams(42).Stream(7)
	b := NewStreams(42).Stream(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,id) produced different sequences")
		}
	}
}

func TestStreamsIndependentAcrossIDs(t *testing.T) {
	s := NewStreams(42)
	a, b := s.Stream(1), s.Stream(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for different ids collided %d/64 times", same)
	}
}

func TestStreamsDifferentSeedsDiffer(t *testing.T) {
	a := NewStreams(1).Stream(7)
	b := NewStreams(2).Stream(7)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for different seeds collided %d/64 times", same)
	}
}

func TestStreamAtMatchesMixedStream(t *testing.T) {
	s := NewStreams(9)
	a := s.StreamAt(3, 4)
	b := s.Stream(mix(3, 4))
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("StreamAt(kind,idx) != Stream(mix(kind,idx))")
		}
	}
}

func TestMixDispersesSmallIDs(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		v := mix(42, i)
		if seen[v] {
			t.Fatalf("mix collision at id %d", i)
		}
		seen[v] = true
	}
}

func BenchmarkKernelScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := NewKernel()
		for j := 0; j < 1000; j++ {
			k.Schedule(time.Duration(j%97)*time.Millisecond, func(time.Duration) {})
		}
		k.RunAll()
	}
}
