package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestDistance(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
		{Point{0, 0}, Point{0, -7}, 7},
	}
	for _, c := range cases {
		if got := c.p.DistanceTo(c.q); !almostEqual(got, c.want) {
			t.Errorf("DistanceTo(%v, %v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		d1, d2 := p.DistanceTo(q), q.DistanceTo(p)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubAddRoundTrip(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		// Constrain coordinates to field-like magnitudes; the simulator
		// never leaves a ~1 km rectangle and extreme exponents lose the
		// round trip to floating-point cancellation by design.
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 1e4)
		}
		ax, ay, bx, by = clamp(ax), clamp(ay), clamp(bx), clamp(by)
		p, q := Point{ax, ay}, Point{bx, by}
		r := q.Add(p.Sub(q))
		return almostEqual(r.X, p.X) || math.Abs(r.X-p.X) < math.Abs(p.X)*1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLerpEndpoints(t *testing.T) {
	p, q := Point{1, 2}, Point{5, -6}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	mid := p.Lerp(q, 0.5)
	if !almostEqual(mid.X, 3) || !almostEqual(mid.Y, -2) {
		t.Errorf("Lerp(0.5) = %v, want (3, -2)", mid)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	n := v.Normalize()
	if !almostEqual(n.Length(), 1) {
		t.Errorf("normalized length = %v, want 1", n.Length())
	}
	if !almostEqual(n.X, 0.6) || !almostEqual(n.Y, 0.8) {
		t.Errorf("Normalize = %v, want (0.6, 0.8)", n)
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	if got := (Vector{}).Normalize(); got != (Vector{}) {
		t.Errorf("Normalize(zero) = %v, want zero vector", got)
	}
}

func TestScale(t *testing.T) {
	v := Vector{2, -3}.Scale(-2)
	if v != (Vector{-4, 6}) {
		t.Errorf("Scale = %v, want (-4, 6)", v)
	}
}

func TestFieldContains(t *testing.T) {
	f := Field{1000, 1000}
	for _, p := range []Point{{0, 0}, {1000, 1000}, {500, 999}} {
		if !f.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range []Point{{-0.1, 0}, {1000.1, 0}, {5, -1}, {5, 1001}} {
		if f.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestFieldClamp(t *testing.T) {
	f := Field{100, 50}
	cases := []struct{ in, want Point }{
		{Point{-5, 25}, Point{0, 25}},
		{Point{200, 25}, Point{100, 25}},
		{Point{50, -3}, Point{50, 0}},
		{Point{50, 60}, Point{50, 50}},
		{Point{30, 30}, Point{30, 30}},
	}
	for _, c := range cases {
		if got := f.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFieldClampProperty(t *testing.T) {
	fld := Field{1000, 1000}
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return true
		}
		return fld.Contains(fld.Clamp(Point{x, y}))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiagonal(t *testing.T) {
	if got := (Field{300, 400}).Diagonal(); !almostEqual(got, 500) {
		t.Errorf("Diagonal = %v, want 500", got)
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1.234, 5}).String(); got != "(1.23, 5.00)" {
		t.Errorf("String = %q", got)
	}
}
