// Package geom provides the small amount of 2-D geometry the simulator
// needs: points, displacement vectors, distances, and the rectangular
// field terminals roam in.
package geom

import (
	"fmt"
	"math"
)

// Point is a position in metres within the simulation field.
type Point struct {
	X, Y float64
}

// String formats the point with centimetre precision for debug output.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Sub returns the displacement vector from q to p.
func (p Point) Sub(q Point) Vector { return Vector{p.X - q.X, p.Y - q.Y} }

// Add returns p displaced by v.
func (p Point) Add(v Vector) Point { return Point{p.X + v.X, p.Y + v.Y} }

// DistanceTo reports the Euclidean distance in metres between p and q.
// Field coordinates are bounded (kilometres, not 1e150), so the naive
// square-and-root form is safe from overflow and ~5× faster than
// math.Hypot's scaling dance; this is the hottest arithmetic in the
// simulator (every carrier-sense, range and class probe lands here).
func (p Point) DistanceTo(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Lerp linearly interpolates between p (frac = 0) and q (frac = 1).
// frac outside [0, 1] extrapolates along the same line.
func (p Point) Lerp(q Point, frac float64) Point {
	return Point{p.X + (q.X-p.X)*frac, p.Y + (q.Y-p.Y)*frac}
}

// Vector is a 2-D displacement in metres.
type Vector struct {
	X, Y float64
}

// Length reports the Euclidean norm of v.
func (v Vector) Length() float64 { return math.Hypot(v.X, v.Y) }

// Scale returns v multiplied componentwise by s.
func (v Vector) Scale(s float64) Vector { return Vector{v.X * s, v.Y * s} }

// Normalize returns the unit vector in the direction of v. The zero vector
// normalizes to itself, so callers need not special-case coincident points.
func (v Vector) Normalize() Vector {
	l := v.Length()
	if l == 0 {
		return Vector{}
	}
	return Vector{v.X / l, v.Y / l}
}

// Field is the axis-aligned rectangle [0, Width] x [0, Height] in which
// terminals move. The paper's testing field is 1000 m x 1000 m.
type Field struct {
	Width, Height float64
}

// Contains reports whether p lies within the field (boundaries inclusive).
func (f Field) Contains(p Point) bool {
	return p.X >= 0 && p.X <= f.Width && p.Y >= 0 && p.Y <= f.Height
}

// Clamp returns the nearest point to p inside the field.
func (f Field) Clamp(p Point) Point {
	return Point{
		X: math.Min(math.Max(p.X, 0), f.Width),
		Y: math.Min(math.Max(p.Y, 0), f.Height),
	}
}

// Diagonal reports the field's diagonal length, an upper bound on any
// inter-terminal distance.
func (f Field) Diagonal() float64 { return math.Hypot(f.Width, f.Height) }
