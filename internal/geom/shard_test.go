package geom

import (
	"math/rand"
	"testing"
)

func randPts(rng *rand.Rand, n int, w, h float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return pts
}

// TestShardMapPartition checks the stripe map is a partition of the
// columns: contiguous, monotone, covering [0, cols).
func TestShardMapPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 17, 300} {
		for _, p := range []int{1, 2, 3, 8, 64} {
			g := NewGrid(50)
			g.Rebuild(randPts(rng, n, 1000, 400))
			var sm ShardMap
			sm.Build(g, p)
			if sm.Shards() != p {
				t.Fatalf("n=%d p=%d: Shards()=%d", n, p, sm.Shards())
			}
			prev := 0
			total := 0
			for s := 0; s < p; s++ {
				lo, hi := sm.Owns(s)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d p=%d stripe %d: [%d,%d) after %d", n, p, s, lo, hi, prev)
				}
				prev = hi
				total += hi - lo
			}
			if total != g.cols {
				t.Fatalf("n=%d p=%d: stripes cover %d of %d columns", n, p, total, g.cols)
			}
		}
	}
}

// TestShardMapBalance checks the greedy cut lands near 1/P occupancy on a
// uniform field: no stripe should hold more than twice its fair share
// (one dense column can overshoot, but uniform fields have none).
func TestShardMapBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGrid(50)
	g.Rebuild(randPts(rng, 2000, 1600, 400))
	var sm ShardMap
	for _, p := range []int{2, 4, 8} {
		sm.Build(g, p)
		for s := 0; s < p; s++ {
			lo, hi := sm.Owns(s)
			count := 0
			for cy := 0; cy < g.rows; cy++ {
				row := cy * g.cols
				count += int(g.start[row+hi] - g.start[row+lo])
			}
			if fair := 2000 / p; count > 2*fair {
				t.Errorf("p=%d stripe %d holds %d points (fair share %d)", p, s, count, fair)
			}
		}
	}
}

// TestNearDistColsPartition checks that the union of column-clipped
// queries over any stripe partition reproduces NearDist exactly —
// membership, distances, and disjointness.
func TestNearDistColsPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := NewGrid(40)
	g.Rebuild(randPts(rng, 400, 900, 300))
	var sm ShardMap
	for _, p := range []int{1, 2, 3, 8} {
		sm.Build(g, p)
		for trial := 0; trial < 200; trial++ {
			q := Point{X: rng.Float64()*1100 - 100, Y: rng.Float64()*500 - 100}
			r := rng.Float64() * 120
			want := g.NearDist(q, r, nil)

			got := make(map[int32]float64)
			for s := 0; s < p; s++ {
				lo, hi := sm.Owns(s)
				if lo >= hi {
					continue
				}
				for _, e := range g.NearDistCols(q, r, lo, hi-1, nil) {
					if _, dup := got[e.ID]; dup {
						t.Fatalf("p=%d: id %d returned by two stripes", p, e.ID)
					}
					got[e.ID] = e.D
				}
			}
			if len(got) != len(want) {
				t.Fatalf("p=%d r=%.1f: union has %d ids, NearDist %d", p, r, len(got), len(want))
			}
			for _, e := range want {
				if d, ok := got[e.ID]; !ok || d != e.D {
					t.Fatalf("p=%d id %d: clipped d=%v ok=%v, want %v", p, e.ID, d, ok, e.D)
				}
			}
		}
	}
}

// TestNearDistColsOrdered checks each clipped result is ascending by id,
// like NearDist.
func TestNearDistColsOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := NewGrid(40)
	g.Rebuild(randPts(rng, 300, 600, 600))
	for trial := 0; trial < 100; trial++ {
		q := Point{X: rng.Float64() * 600, Y: rng.Float64() * 600}
		hits := g.NearDistCols(q, 150, 3, 7, nil)
		for i := 1; i < len(hits); i++ {
			if hits[i-1].ID >= hits[i].ID {
				t.Fatalf("ids not ascending: %d then %d", hits[i-1].ID, hits[i].ID)
			}
		}
	}
}

// TestCountRectCoversNear checks the work estimate is a true upper bound
// on the disk query's hit count and exact for block-aligned queries.
func TestCountRectCoversNear(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := NewGrid(40)
	g.Rebuild(randPts(rng, 500, 800, 800))
	for trial := 0; trial < 200; trial++ {
		q := Point{X: rng.Float64() * 800, Y: rng.Float64() * 800}
		r := rng.Float64() * 130
		if est, hits := g.CountRect(q, r), len(g.Near(q, r, nil)); est < hits {
			t.Fatalf("CountRect=%d < %d actual hits (r=%.1f)", est, hits, r)
		}
	}
	if got := g.CountRect(Point{X: 400, Y: 400}, 4000); got != 500 {
		t.Fatalf("whole-grid CountRect = %d, want 500", got)
	}
}

// TestShardSpan checks disk→stripe span resolution.
func TestShardSpan(t *testing.T) {
	g := NewGrid(10)
	pts := make([]Point, 0, 80)
	for c := 0; c < 8; c++ {
		for k := 0; k < 10; k++ {
			pts = append(pts, Point{X: float64(c)*10 + 5, Y: float64(k)})
		}
	}
	g.Rebuild(pts)
	var sm ShardMap
	sm.Build(g, 4) // 8 uniform columns → 2 per stripe
	for s := 0; s < 4; s++ {
		if lo, hi := sm.Owns(s); lo != 2*s || hi != 2*s+2 {
			t.Fatalf("stripe %d owns [%d,%d), want [%d,%d)", s, lo, hi, 2*s, 2*s+2)
		}
	}
	cases := []struct {
		c0, c1   int
		sLo, sHi int
	}{
		{0, 0, 0, 0}, {0, 7, 0, 3}, {2, 3, 1, 1}, {3, 4, 1, 2}, {1, 6, 0, 3}, {7, 7, 3, 3},
	}
	for _, c := range cases {
		if sLo, sHi := sm.Span(c.c0, c.c1); sLo != c.sLo || sHi != c.sHi {
			t.Fatalf("Span(%d,%d) = (%d,%d), want (%d,%d)", c.c0, c.c1, sLo, sHi, c.sLo, c.sHi)
		}
	}
	if sLo, sHi := sm.Span(3, 2); sHi >= sLo {
		t.Fatalf("empty span not signalled: (%d,%d)", sLo, sHi)
	}
}
