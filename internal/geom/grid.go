package geom

import (
	"math"
	"sort"
)

// Grid is a uniform-cell spatial index over a point set. Points are
// bucketed into square cells of a fixed size (the radio range, for the
// channel layer), so a disk query touches only the few cells the disk
// overlaps instead of the whole set.
//
// A Grid is rebuilt in place: Rebuild re-buckets a new point slice while
// reusing the previous allocation, so steady-state rebuilds are
// allocation-free. The zero value is not usable; construct with NewGrid.
type Grid struct {
	cell       float64
	cols, rows int
	minX, minY float64

	// Counting-sort bucket layout: bucket k holds ids[start[k]:start[k+1]],
	// with ids ascending within each bucket (the fill pass preserves
	// insertion order).
	start []int32
	ids   []int32

	pts []Point // the indexed points, by id; a private copy, see Rebuild
}

// NewGrid creates an index with the given cell size. Cell size should be
// the query radius used most often: then every Near call scans at most a
// 3×3 block of cells.
func NewGrid(cell float64) *Grid {
	if cell <= 0 || math.IsNaN(cell) || math.IsInf(cell, 0) {
		panic("geom: NewGrid needs a positive, finite cell size")
	}
	return &Grid{cell: cell}
}

// Len reports how many points the grid currently indexes.
func (g *Grid) Len() int { return len(g.pts) }

// Rebuild re-indexes the grid over pts. The points are copied into the
// grid (reusing its buffer), so callers may keep mutating their slice;
// queries answer against the snapshot taken here until the next Rebuild.
func (g *Grid) Rebuild(pts []Point) {
	g.pts = append(g.pts[:0], pts...)
	pts = g.pts
	if len(pts) == 0 {
		g.cols, g.rows = 0, 0
		g.ids = g.ids[:0]
		return
	}

	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	g.minX, g.minY = minX, minY
	g.cols = int((maxX-minX)/g.cell) + 1
	g.rows = int((maxY-minY)/g.cell) + 1

	nb := g.cols*g.rows + 1
	if cap(g.start) < nb {
		g.start = make([]int32, nb)
	} else {
		g.start = g.start[:nb]
		for i := range g.start {
			g.start[i] = 0
		}
	}
	if cap(g.ids) < len(pts) {
		g.ids = make([]int32, len(pts))
	} else {
		g.ids = g.ids[:len(pts)]
	}

	// Pass 1: bucket sizes, shifted one slot right so the prefix sum below
	// turns start[k] into the bucket's first index.
	for _, p := range pts {
		g.start[g.bucket(p)+1]++
	}
	for k := 1; k < nb; k++ {
		g.start[k] += g.start[k-1]
	}
	// Pass 2: fill in id order; start[k] walks to the bucket's end, leaving
	// start shifted back to [k] = first index of bucket k when done.
	for i, p := range pts {
		k := g.bucket(p)
		g.ids[g.start[k]] = int32(i)
		g.start[k]++
	}
	for k := nb - 1; k > 0; k-- {
		g.start[k] = g.start[k-1]
	}
	g.start[0] = 0
}

// bucket maps a point to its cell index. Points are clamped into the
// indexed bounds, so out-of-bounds queries degrade to edge cells rather
// than missing.
func (g *Grid) bucket(p Point) int {
	cx := g.clampCol(int((p.X - g.minX) / g.cell))
	cy := g.clampRow(int((p.Y - g.minY) / g.cell))
	return cy*g.cols + cx
}

func (g *Grid) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= g.cols {
		return g.cols - 1
	}
	return c
}

func (g *Grid) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= g.rows {
		return g.rows - 1
	}
	return r
}

// Near appends to dst the ids of all indexed points within distance r of
// p (boundary inclusive, matching Point.DistanceTo exactly) in ascending
// id order, and returns the extended slice. Pass a reusable buffer to
// keep flood hot paths allocation-free.
func (g *Grid) Near(p Point, r float64, dst []int) []int {
	if len(g.pts) == 0 || r < 0 {
		return dst
	}
	cx0 := g.clampCol(int(math.Floor((p.X - r - g.minX) / g.cell)))
	cx1 := g.clampCol(int(math.Floor((p.X + r - g.minX) / g.cell)))
	cy0 := g.clampRow(int(math.Floor((p.Y - r - g.minY) / g.cell)))
	cy1 := g.clampRow(int(math.Floor((p.Y + r - g.minY) / g.cell)))

	from := len(dst)
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.cols
		for cx := cx0; cx <= cx1; cx++ {
			k := row + cx
			for _, id := range g.ids[g.start[k]:g.start[k+1]] {
				if p.DistanceTo(g.pts[id]) <= r {
					dst = append(dst, int(id))
				}
			}
		}
	}
	// Ids ascend within one bucket but not across the scanned block; the
	// hit count is O(density), so an insertion-friendly sort is cheap.
	sort.Ints(dst[from:])
	return dst
}

// IDDist pairs an indexed point id with its distance from a query
// center, as appended by NearDist.
type IDDist struct {
	ID int32
	D  float64
}

// PointAt returns the indexed (build-time) position of point id. Callers
// that cache query results across a build use it to anchor those results
// to the same coordinates the index answers from.
func (g *Grid) PointAt(id int) Point { return g.pts[id] }

// NearDist appends to dst every indexed point within distance r of p
// (boundary inclusive, matching Point.DistanceTo exactly) together with
// that distance, in ascending id order, and returns the extended slice.
// It is Near with the distances kept: callers that filter or classify by
// distance afterwards avoid recomputing the square roots.
func (g *Grid) NearDist(p Point, r float64, dst []IDDist) []IDDist {
	if len(g.pts) == 0 || r < 0 {
		return dst
	}
	cx0 := g.clampCol(int(math.Floor((p.X - r - g.minX) / g.cell)))
	cx1 := g.clampCol(int(math.Floor((p.X + r - g.minX) / g.cell)))
	cy0 := g.clampRow(int(math.Floor((p.Y - r - g.minY) / g.cell)))
	cy1 := g.clampRow(int(math.Floor((p.Y + r - g.minY) / g.cell)))

	from := len(dst)
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.cols
		for cx := cx0; cx <= cx1; cx++ {
			k := row + cx
			for _, id := range g.ids[g.start[k]:g.start[k+1]] {
				if d := p.DistanceTo(g.pts[id]); d <= r {
					dst = append(dst, IDDist{ID: id, D: d})
				}
			}
		}
	}
	// Ids ascend within one bucket but not across the scanned block; hit
	// counts are O(density), where insertion sort beats the generic sort
	// without allocating.
	hits := dst[from:]
	for i := 1; i < len(hits); i++ {
		e := hits[i]
		j := i - 1
		for j >= 0 && hits[j].ID > e.ID {
			hits[j+1] = hits[j]
			j--
		}
		hits[j+1] = e
	}
	return dst
}
