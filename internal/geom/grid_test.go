package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// bruteNear is the O(n) reference the grid must match exactly.
func bruteNear(pts []Point, p Point, r float64) []int {
	var out []int
	for i, q := range pts {
		if p.DistanceTo(q) <= r {
			out = append(out, i)
		}
	}
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(120)
		w := 100 + rng.Float64()*2000
		h := 100 + rng.Float64()*2000
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * w, Y: rng.Float64() * h}
		}
		cell := 50 + rng.Float64()*400
		g := NewGrid(cell)
		g.Rebuild(pts)
		for q := 0; q < 20; q++ {
			p := Point{X: rng.Float64()*w*1.2 - 0.1*w, Y: rng.Float64()*h*1.2 - 0.1*h}
			r := rng.Float64() * 500
			got := g.Near(p, r, nil)
			want := bruteNear(pts, p, r)
			if !equalInts(got, want) {
				t.Fatalf("trial %d query %d: grid %v, brute %v (p=%v r=%g cell=%g)",
					trial, q, got, want, p, r, cell)
			}
		}
	}
}

func TestGridNearAscendingAndAppending(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {20, 0}, {500, 500}, {5, 5}}
	g := NewGrid(250)
	g.Rebuild(pts)
	dst := []int{99}
	dst = g.Near(Point{0, 0}, 30, dst)
	if dst[0] != 99 {
		t.Fatal("Near must append, not overwrite")
	}
	hits := dst[1:]
	if !sort.IntsAreSorted(hits) {
		t.Fatalf("hits not ascending: %v", hits)
	}
	if !equalInts(hits, []int{0, 1, 2, 4}) {
		t.Fatalf("hits = %v, want [0 1 2 4]", hits)
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	pts := []Point{{0, 0}, {250, 0}}
	g := NewGrid(250)
	g.Rebuild(pts)
	if got := g.Near(Point{0, 0}, 250, nil); !equalInts(got, []int{0, 1}) {
		t.Fatalf("boundary point excluded: %v", got)
	}
	if got := g.Near(Point{0, 0}, 249.999, nil); !equalInts(got, []int{0}) {
		t.Fatalf("beyond-radius point included: %v", got)
	}
}

func TestGridRebuildReuses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	g := NewGrid(250)
	g.Rebuild(pts)
	if g.Len() != 200 {
		t.Fatalf("Len = %d, want 200", g.Len())
	}
	allocs := testing.AllocsPerRun(100, func() {
		g.Rebuild(pts)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Rebuild allocates %.0f times", allocs)
	}
}

func TestGridEmptyAndDegenerate(t *testing.T) {
	g := NewGrid(250)
	g.Rebuild(nil)
	if got := g.Near(Point{0, 0}, 100, nil); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
	// All points coincident: a single cell.
	g.Rebuild([]Point{{5, 5}, {5, 5}, {5, 5}})
	if got := g.Near(Point{5, 5}, 0, nil); !equalInts(got, []int{0, 1, 2}) {
		t.Fatalf("coincident points: %v", got)
	}
	if got := g.Near(Point{5, 5}, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius returned %v", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
