// Spatial sharding support: a stripe-of-columns partition of a Grid and
// the column-clipped disk queries the sharded channel oracle fans out
// (DESIGN.md §10). A stripe owns a contiguous run of grid columns, so
// every indexed point belongs to exactly one stripe and the union of the
// per-stripe clipped queries over any partition reproduces the unclipped
// query exactly — membership, distances, and per-stripe ascending id
// order all match NearDist bit-for-bit.
package geom

import "math"

// ShardMap is an occupancy-balanced partition of a grid's columns into P
// contiguous stripes. It is rebuilt whenever the grid is (the epoch
// barrier of the sharded engine): column geometry, and therefore stripe
// ownership, is stable for exactly as long as the build it was derived
// from. The zero value is usable; Build sizes it.
type ShardMap struct {
	p  int
	lo []int32 // len p+1: stripe s owns columns [lo[s], lo[s+1])

	colCount []int32 // scratch: ids per column, reused across builds
}

// Build recomputes the partition for the grid's current build. Stripes
// are cut greedily so each holds about 1/P of the indexed points —
// columns, not points, are the unit of ownership, so a dense column is
// never split. Grids with fewer columns than stripes leave the surplus
// stripes empty.
func (sm *ShardMap) Build(g *Grid, p int) {
	if p < 1 {
		p = 1
	}
	sm.p = p
	if cap(sm.lo) < p+1 {
		sm.lo = make([]int32, p+1)
	} else {
		sm.lo = sm.lo[:p+1]
	}
	cols := g.cols
	if cols == 0 || len(g.pts) == 0 {
		for i := range sm.lo {
			sm.lo[i] = 0
		}
		return
	}
	if cap(sm.colCount) < cols {
		sm.colCount = make([]int32, cols)
	} else {
		sm.colCount = sm.colCount[:cols]
		for i := range sm.colCount {
			sm.colCount[i] = 0
		}
	}
	for cy := 0; cy < g.rows; cy++ {
		row := cy * cols
		for cx := 0; cx < cols; cx++ {
			sm.colCount[cx] += g.start[row+cx+1] - g.start[row+cx]
		}
	}
	remaining := int32(len(g.pts))
	col := 0
	sm.lo[0] = 0
	for s := 0; s < p; s++ {
		target := remaining / int32(p-s) // ceil-free: later stripes absorb slack
		var acc int32
		// Leave enough columns for the stripes still to come; emptiness is
		// allowed only once the columns run out.
		for col < cols && (acc < target || target == 0) && cols-col > p-s-1 {
			acc += sm.colCount[col]
			col++
		}
		remaining -= acc
		sm.lo[s+1] = int32(col)
	}
	sm.lo[p] = int32(cols) // the last stripe owns every trailing column
}

// Shards reports the stripe count of the last Build.
func (sm *ShardMap) Shards() int { return sm.p }

// Owns reports the half-open column range [lo, hi) stripe s owns.
func (sm *ShardMap) Owns(s int) (lo, hi int) {
	return int(sm.lo[s]), int(sm.lo[s+1])
}

// Span reports the stripes whose columns intersect the column range
// [c0, c1] as an inclusive stripe range. c0 > c1 (an empty column range)
// yields sHi < sLo.
func (sm *ShardMap) Span(c0, c1 int) (sLo, sHi int) {
	if c0 > c1 {
		return 0, -1
	}
	sLo, sHi = 0, sm.p-1
	for s := 0; s < sm.p; s++ {
		if int(sm.lo[s+1]) > c0 {
			sLo = s
			break
		}
	}
	for s := sLo; s < sm.p; s++ {
		if int(sm.lo[s+1]) > c1 {
			sHi = s
			break
		}
	}
	return sLo, sHi
}

// ColSpan reports the clamped inclusive column range a disk query of
// radius r around p touches — exactly the columns Near and NearDist scan
// for the same disk. An empty grid yields (0, -1).
func (g *Grid) ColSpan(p Point, r float64) (c0, c1 int) {
	if len(g.pts) == 0 || r < 0 {
		return 0, -1
	}
	c0 = g.clampCol(int(math.Floor((p.X - r - g.minX) / g.cell)))
	c1 = g.clampCol(int(math.Floor((p.X + r - g.minX) / g.cell)))
	return c0, c1
}

// CountRect reports how many indexed points are bucketed in the cell
// block a disk query of radius r around p scans — a cheap deterministic
// upper-bound work estimate for that query (bucket membership, not exact
// distance, so it counts the block's corners too). Cells in one row are
// contiguous in the counting-sort layout, so the count is two prefix
// lookups per row.
func (g *Grid) CountRect(p Point, r float64) int {
	if len(g.pts) == 0 || r < 0 {
		return 0
	}
	cx0, cx1 := g.ColSpan(p, r)
	cy0 := g.clampRow(int(math.Floor((p.Y - r - g.minY) / g.cell)))
	cy1 := g.clampRow(int(math.Floor((p.Y + r - g.minY) / g.cell)))
	n := 0
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.cols
		n += int(g.start[row+cx1+1] - g.start[row+cx0])
	}
	return n
}

// NearDistCols is NearDist restricted to the columns [colLo, colHi]: it
// appends every indexed point within distance r of p whose bucket column
// falls in that range, with its distance, in ascending id order. Over any
// partition of the grid's columns the per-stripe results are disjoint and
// their union is exactly NearDist's result — same membership, same
// distances, bit-for-bit.
func (g *Grid) NearDistCols(p Point, r float64, colLo, colHi int, dst []IDDist) []IDDist {
	if len(g.pts) == 0 || r < 0 {
		return dst
	}
	cx0, cx1 := g.ColSpan(p, r)
	if colLo > cx0 {
		cx0 = colLo
	}
	if colHi < cx1 {
		cx1 = colHi
	}
	if cx0 > cx1 {
		return dst
	}
	cy0 := g.clampRow(int(math.Floor((p.Y - r - g.minY) / g.cell)))
	cy1 := g.clampRow(int(math.Floor((p.Y + r - g.minY) / g.cell)))

	from := len(dst)
	for cy := cy0; cy <= cy1; cy++ {
		row := cy * g.cols
		for cx := cx0; cx <= cx1; cx++ {
			k := row + cx
			for _, id := range g.ids[g.start[k]:g.start[k+1]] {
				if d := p.DistanceTo(g.pts[id]); d <= r {
					dst = append(dst, IDDist{ID: id, D: d})
				}
			}
		}
	}
	hits := dst[from:]
	for i := 1; i < len(hits); i++ {
		e := hits[i]
		j := i - 1
		for j >= 0 && hits[j].ID > e.ID {
			hits[j+1] = hits[j]
			j--
		}
		hits[j+1] = e
	}
	return dst
}
