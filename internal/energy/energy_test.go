package energy

import (
	"math"
	"testing"

	"rica/internal/channel"
	"rica/internal/packet"
)

func TestControlEnergy(t *testing.T) {
	m := NewMeter(DefaultModel(), 4)
	pkt := &packet.Packet{Type: packet.TypeRREQ, Size: packet.SizeRREQ}
	m.ControlTransmitted(pkt, 2, 0)
	// 24 bytes at 250 kbps at 1 W = 192/250000 J.
	want := 192.0 / 250_000
	s := m.Stats(0)
	if math.Abs(s.ControlJ-want) > 1e-12 {
		t.Fatalf("ControlJ = %v, want %v", s.ControlJ, want)
	}
	if s.DataJ != 0 {
		t.Fatalf("DataJ = %v, want 0", s.DataJ)
	}
	per := m.PerNode()
	if math.Abs(per[2]-want) > 1e-12 || per[0] != 0 {
		t.Fatalf("per-node = %v", per)
	}
}

func TestDataEnergyScalesWithClass(t *testing.T) {
	m := NewMeter(DefaultModel(), 2)
	m.DataTransmitted(0, 1, channel.ClassA, packet.SizeData, 0)
	a := m.Stats(0).DataJ
	m2 := NewMeter(DefaultModel(), 2)
	m2.DataTransmitted(0, 1, channel.ClassD, packet.SizeData, 0)
	d := m2.Stats(0).DataJ
	if ratio := d / a; math.Abs(ratio-5) > 1e-9 {
		t.Fatalf("class D / class A energy ratio = %v, want 5", ratio)
	}
}

func TestBlindTransmissionBilledAtWorstClass(t *testing.T) {
	m := NewMeter(DefaultModel(), 2)
	m.DataTransmitted(0, 1, channel.ClassNone, packet.SizeData, 0)
	blind := m.Stats(0).DataJ
	m2 := NewMeter(DefaultModel(), 2)
	m2.DataTransmitted(0, 1, channel.ClassD, packet.SizeData, 0)
	if blind != m2.Stats(0).DataJ {
		t.Fatalf("blind attempt billed %v, want class-D cost %v", blind, m2.Stats(0).DataJ)
	}
}

func TestPerDeliveredBitNormalization(t *testing.T) {
	m := NewMeter(DefaultModel(), 2)
	m.DataTransmitted(0, 1, channel.ClassA, packet.SizeData, 0)
	s := m.Stats(4096) // one delivered 512-byte packet
	wantPerBit := s.TotalJ() / 4096
	if math.Abs(s.PerDeliveredBitJ-wantPerBit) > 1e-18 {
		t.Fatalf("PerDeliveredBitJ = %v, want %v", s.PerDeliveredBitJ, wantPerBit)
	}
	if z := m.Stats(0); z.PerDeliveredBitJ != 0 {
		t.Fatalf("zero delivered bits must not divide: %v", z.PerDeliveredBitJ)
	}
}

func TestPerNodeCopyIsolated(t *testing.T) {
	m := NewMeter(DefaultModel(), 2)
	m.DataTransmitted(0, 1, channel.ClassA, 100, 0)
	per := m.PerNode()
	per[0] = 99
	if m.PerNode()[0] == 99 {
		t.Fatal("PerNode returned internal slice")
	}
}
