// Package energy adds transmit-energy accounting to a simulation — the
// extension the paper motivates by the "limited battery power in each
// mobile terminal" when it criticizes the link-state protocol's flooding
// ([11], [14]). The model is deliberately simple and first-order: a
// radio burns a constant transmit power for the duration a packet is on
// air, so energy per packet is power × airtime. Because the data channels
// run at the channel class's throughput, a class-D hop costs five times
// the energy per bit of a class-A hop — which makes channel-adaptive
// routing an energy optimization as well as a latency one.
package energy

import (
	"time"

	"rica/internal/channel"
	"rica/internal/metrics"
	"rica/internal/packet"
)

// Model holds the radio power parameters.
type Model struct {
	// TxPowerW is the transmit power draw in watts while sending.
	TxPowerW float64
	// CommonBitrate is the common channel's rate (routing packets).
	CommonBitrate float64
}

// DefaultModel uses a 1 W transceiver (typical early-2000s 802.11-class
// hardware) and the paper's 250 kbps common channel.
func DefaultModel() Model {
	return Model{TxPowerW: 1.0, CommonBitrate: 250_000}
}

// Meter accumulates transmit energy for one simulation run. Attach its
// hook methods to the MAC observers, then fold Stats into the summary.
type Meter struct {
	model    Model
	controlJ float64
	dataJ    float64

	// PerNode tracks per-terminal totals for fairness analysis.
	perNode []float64
}

// NewMeter builds a meter for n terminals.
func NewMeter(model Model, n int) *Meter {
	return &Meter{model: model, perNode: make([]float64, n)}
}

// ControlTransmitted accounts one routing packet on the common channel
// (chain with the metrics collector on mac.CommonChannel.OnTransmit).
func (m *Meter) ControlTransmitted(pkt *packet.Packet, from int, _ time.Duration) {
	airtime := float64(pkt.Size*8) / m.model.CommonBitrate
	j := m.model.TxPowerW * airtime
	m.controlJ += j
	if from >= 0 && from < len(m.perNode) {
		m.perNode[from] += j
	}
}

// DataTransmitted accounts one data-channel transmission at the given
// class (wire to mac.DataPlane.OnDataTransmit). Blind transmissions into
// a broken link pass ClassNone and are billed at the most robust rate,
// matching the airtime the MAC actually spends.
func (m *Meter) DataTransmitted(from, to int, class channel.Class, sizeBytes int, _ time.Duration) {
	if !class.Usable() {
		class = channel.ClassD
	}
	airtime := float64(sizeBytes*8) / class.ThroughputBps()
	j := m.model.TxPowerW * airtime
	m.dataJ += j
	if from >= 0 && from < len(m.perNode) {
		m.perNode[from] += j
	}
}

// Stats freezes the totals; deliveredBits normalizes the per-bit cost.
func (m *Meter) Stats(deliveredBits float64) metrics.EnergyStats {
	s := metrics.EnergyStats{ControlJ: m.controlJ, DataJ: m.dataJ}
	if deliveredBits > 0 {
		s.PerDeliveredBitJ = s.TotalJ() / deliveredBits
	}
	return s
}

// PerNode returns a copy of the per-terminal energy totals in joules.
func (m *Meter) PerNode() []float64 {
	out := make([]float64, len(m.perNode))
	copy(out, m.perNode)
	return out
}
